#!/usr/bin/env bash
# benchguard.sh — benchmark regression guard.
#
# Runs the repository benchmarks once (-benchtime=1x) and compares every
# ns/op against the committed baseline in BENCH_seed.json with a ±20%
# tolerance: a benchmark more than 20% slower than its baseline fails
# the guard; faster-than-baseline results are reported as improvements.
#
# One-shot timings are noisy and baselines are machine-specific, so CI
# runs this step advisorily (continue-on-error); locally, regenerate the
# baseline after an intentional change with:
#
#   scripts/benchguard.sh --update
#
# Exit codes: 0 = within tolerance, 1 = regression(s), 2 = harness error.
set -u
cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_TOLERANCE:-0.20}"
BASELINE=BENCH_seed.json
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

if ! go test -bench=. -benchtime=1x -run '^$' . >"$OUT" 2>&1; then
    echo "benchguard: benchmark run failed:" >&2
    cat "$OUT" >&2
    exit 2
fi

if [ "${1:-}" = "--update" ]; then
    python3 - "$OUT" "$BASELINE" <<'EOF'
import json, re, sys
out, baseline = sys.argv[1], sys.argv[2]
bench = {}
for line in open(out):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op', line)
    if m:
        bench[m.group(1)] = {"ns_per_op": float(m.group(2))}
doc = {
    "note": "baseline from go test -bench=. -benchtime=1x (1-shot timings; "
            "machine-specific — compare trajectories, not single runs; "
            "regenerate with scripts/benchguard.sh --update)",
    "benchmarks": bench,
}
with open(baseline, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"benchguard: wrote {baseline} with {len(bench)} benchmarks")
EOF
    exit $?
fi

python3 - "$OUT" "$BASELINE" "$TOLERANCE" <<'EOF'
import json, re, sys
out, baseline, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(baseline))["benchmarks"]
got = {}
for line in open(out):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op', line)
    if m:
        got[m.group(1)] = float(m.group(2))
regressions, missing = [], []
for name, entry in sorted(base.items()):
    want = entry["ns_per_op"]
    if name not in got:
        missing.append(name)
        continue
    ratio = got[name] / want
    if ratio > 1 + tol:
        regressions.append((name, want, got[name], ratio))
    elif ratio < 1 - tol:
        print(f"improvement: {name}: {want:.0f} -> {got[name]:.0f} ns/op ({ratio:.2f}x)")
new = sorted(set(got) - set(base))
if new:
    print(f"note: benchmarks missing from {baseline} (add with --update): {', '.join(new)}")
if missing:
    print(f"note: baseline benchmarks that did not run: {', '.join(missing)}")
if regressions:
    print(f"benchguard: {len(regressions)} regression(s) beyond +{tol:.0%}:")
    for name, want, have, ratio in regressions:
        print(f"  {name}: {want:.0f} -> {have:.0f} ns/op ({ratio:.2f}x)")
    sys.exit(1)
print(f"benchguard: {len(got)} benchmarks within +{tol:.0%} of {baseline}")
EOF
