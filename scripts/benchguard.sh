#!/usr/bin/env bash
# benchguard.sh — benchmark regression guard.
#
# Runs the repository benchmarks multiple times (-benchtime, -count) and
# compares the best-of-N ns/op of every benchmark against the committed
# baseline in BENCH_seed.json: a benchmark more than TOLERANCE slower
# than its baseline fails the guard; faster-than-baseline results are
# reported as improvements. Best-of-N is the right statistic for a
# regression guard: the minimum is the least noisy estimate of the code's
# actual cost, and one-shot timings on shared machines routinely swing
# far beyond any honest tolerance.
#
# Modes:
#
#   scripts/benchguard.sh           full advisory sweep (every benchmark,
#                                   BENCH_TOLERANCE, default ±20%)
#   scripts/benchguard.sh --gate    binding CI gate: only the hot-path
#                                   allowlist below, with the generous
#                                   BENCH_GATE_TOLERANCE (default +150%)
#                                   that absorbs runner-to-runner noise
#                                   while still catching order-of-magnitude
#                                   regressions
#   scripts/benchguard.sh --update  regenerate BENCH_seed.json in place.
#                                   Existing JSON is round-tripped: key
#                                   order and any extra fields (per-entry
#                                   or top-level) are preserved; only
#                                   ns_per_op and the method stanza are
#                                   rewritten.
#
# Environment: BENCH_BENCHTIME (default 3x), BENCH_COUNT (default 2),
# BENCH_TOLERANCE (default 0.20), BENCH_GATE_TOLERANCE (default 1.50).
#
# Exit codes: 0 = within tolerance, 1 = regression(s), 2 = harness error.
set -u
cd "$(dirname "$0")/.."

BENCHTIME="${BENCH_BENCHTIME:-3x}"
COUNT="${BENCH_COUNT:-2}"
TOLERANCE="${BENCH_TOLERANCE:-0.20}"
GATE_TOLERANCE="${BENCH_GATE_TOLERANCE:-1.50}"
BASELINE=BENCH_seed.json

# Hot-path allowlist for --gate: the end-to-end attack benchmark plus the
# per-access microbenchmarks its hot path is made of. Keep this list in
# sync with the "Hot path" section of ARCHITECTURE.md.
GATE_PATTERN='^(BenchmarkE2E_FullAttack|BenchmarkMicro_HierarchyAccess|BenchmarkMicro_HostReset|BenchmarkMicro_GF2m571Mul|BenchmarkMicro_LadderSign163|BenchmarkTenant_Burst|BenchmarkTenant_Stream|BenchmarkTenant_Churn|BenchmarkDefense_Partition|BenchmarkDefense_Randomize|BenchmarkObs_DisabledHooks)$'

MODE="${1:-}"
BENCH_RE='.'
TOL="$TOLERANCE"
if [ "$MODE" = "--gate" ]; then
    BENCH_RE="$GATE_PATTERN"
    TOL="$GATE_TOLERANCE"
fi

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

if ! go test -bench="$BENCH_RE" -benchtime="$BENCHTIME" -count="$COUNT" -run '^$' . >"$OUT" 2>&1; then
    echo "benchguard: benchmark run failed:" >&2
    cat "$OUT" >&2
    exit 2
fi

if [ "$MODE" = "--update" ]; then
    python3 - "$OUT" "$BASELINE" "$BENCHTIME" "$COUNT" <<'EOF'
import json, os, re, sys
out, baseline, benchtime, count = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
best = {}
for line in open(out):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op', line)
    if m:
        name, ns = m.group(1), float(m.group(2))
        if name not in best or ns < best[name]:
            best[name] = ns

# Round-trip the existing baseline: preserve top-level and per-entry key
# order and any fields this script does not know about; rewrite only
# ns_per_op, note and method.
doc = {}
if os.path.exists(baseline):
    with open(baseline) as f:
        doc = json.load(f)
doc["note"] = (
    "baseline from scripts/benchguard.sh --update "
    f"(best of -count={count} runs at -benchtime={benchtime}; timings are "
    "machine-specific — compare trajectories on one machine, not single "
    "runs across machines)"
)
doc["method"] = {"benchtime": benchtime, "count": count, "statistic": "min"}
entries = doc.setdefault("benchmarks", {})
for name, entry in entries.items():
    if name in best:
        entry["ns_per_op"] = best[name]
for name in best:
    if name not in entries:
        entries[name] = {"ns_per_op": best[name]}
stale = sorted(set(entries) - set(best))
if stale:
    print(f"benchguard: note: baseline entries that did not run "
          f"(left untouched): {', '.join(stale)}")
with open(baseline, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"benchguard: wrote {baseline} with {len(best)} fresh of {len(entries)} benchmarks")
EOF
    exit $?
fi

python3 - "$OUT" "$BASELINE" "$TOL" "$MODE" <<'EOF'
import json, re, sys
out, baseline, tol, mode = sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4]
base = json.load(open(baseline))["benchmarks"]
got = {}
for line in open(out):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op', line)
    if m:
        name, ns = m.group(1), float(m.group(2))
        if name not in got or ns < got[name]:
            got[name] = ns
regressions, missing = [], []
for name, entry in sorted(base.items()):
    want = entry["ns_per_op"]
    if name not in got:
        missing.append(name)
        continue
    ratio = got[name] / want
    if ratio > 1 + tol:
        regressions.append((name, want, got[name], ratio))
    elif ratio < 1 - tol:
        print(f"improvement: {name}: {want:.0f} -> {got[name]:.0f} ns/op ({ratio:.2f}x)")
new = sorted(set(got) - set(base))
if new:
    print(f"note: benchmarks missing from {baseline} (add with --update): {', '.join(new)}")
if missing and mode != "--gate":
    print(f"note: baseline benchmarks that did not run: {', '.join(missing)}")
if regressions:
    print(f"benchguard: {len(regressions)} regression(s) beyond +{tol:.0%}:")
    for name, want, have, ratio in regressions:
        print(f"  {name}: {want:.0f} -> {have:.0f} ns/op ({ratio:.2f}x)")
    sys.exit(1)
print(f"benchguard: {len(got)} benchmarks within +{tol:.0%} of {baseline}")
EOF
