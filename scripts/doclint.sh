#!/usr/bin/env bash
# doclint.sh — documentation lint.
#
# Fails when:
#   1. gofmt would reformat any file;
#   2. go vet reports anything;
#   3. any internal/ package (nested ones included) lacks a real
#      package comment ("// Package <name> ..." above the package
#      clause), or any cmd/ package lacks a "// Command <name> ..."
#      comment;
#   4. any exported top-level symbol in internal/tenant,
#      internal/defense, internal/artifact, internal/campaign,
#      internal/fleet or internal/cache/model (func, method, type,
#      var, const) has no doc comment.
#
# Exit codes: 0 = clean, 1 = lint findings, 2 = harness error.
set -u
cd "$(dirname "$0")/.."
fail=0

out=$(gofmt -l .) || exit 2
if [ -n "$out" ]; then
    echo "doclint: gofmt needed on:" >&2
    echo "$out" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

for d in internal/*/ internal/*/*/; do
    ls "$d"*.go >/dev/null 2>&1 || continue # no Go files (e.g. testdata)
    pkg=$(basename "$d")
    if ! grep -q "^// Package $pkg" "$d"*.go; then
        echo "doclint: ${d%/} has no package comment" >&2
        fail=1
    fi
done

# Every command documents itself: the main package comment must open
# with "// Command <name>" so `go doc ./cmd/<name>` explains the tool.
for d in cmd/*/; do
    ls "$d"*.go >/dev/null 2>&1 || continue
    cmd=$(basename "$d")
    if ! grep -q "^// Command $cmd" "$d"*.go; then
        echo "doclint: ${d%/} has no \"// Command $cmd\" comment" >&2
        fail=1
    fi
done

# Exported-symbol doc audit for the declarative model registries:
# every top-level exported declaration must be immediately preceded by
# a comment line.
for f in internal/tenant/*.go internal/defense/*.go internal/specstr/*.go internal/cache/model/*.go internal/artifact/*.go internal/campaign/*.go internal/fleet/*.go internal/obs/*.go; do
    case "$f" in *_test.go) continue ;; esac
    awk -v file="$f" '
        # Top-level exported funcs/types/vars/consts, and exported
        # methods on EXPORTED receiver types (methods on unexported
        # types are not part of the package surface).
        /^(func|type|var|const) [A-Z]/ || /^func \([[:alnum:]_]+ \*?[A-Z][^)]*\) [A-Z]/ {
            if (prev !~ /^\/\//) {
                printf "doclint: %s:%d: exported symbol without doc comment: %s\n", file, NR, $0
                bad = 1
            }
        }
        { prev = $0 }
        END { exit bad }
    ' "$f" >&2 || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "doclint: findings above" >&2
    exit 1
fi
echo "doclint: clean"
