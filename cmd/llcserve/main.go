// Command llcserve is the long-running campaign daemon: it accepts
// sweep specs over HTTP/JSON, runs them as resumable checkpointed
// campaigns (internal/campaign), and serves progress, per-cell
// completion events, and final artifacts. Every job is durable — the
// checkpoint log under -data survives crashes and restarts, and
// resubmitting the same spec after either resumes from the verified
// cells instead of recomputing them.
//
//	llcserve -addr 127.0.0.1:8077 -data /var/lib/llcserve
//
// Endpoints (all under /api/v1):
//
//	POST /api/v1/jobs              submit a sweep.Spec (JSON body); returns the job
//	GET  /api/v1/jobs              list jobs in submission order
//	GET  /api/v1/jobs/{id}         one job's status and progress
//	GET  /api/v1/jobs/{id}/result  final sweep artifact JSON (done jobs only)
//	GET  /api/v1/jobs/{id}/events  ndjson stream of per-cell completions: backlog, then live
//	POST /api/v1/jobs/{id}/cancel  stop a queued or running job at the next trial boundary
//	GET  /healthz                  liveness probe
//
// The job ID is the spec's campaign fingerprint (16 hex digits), so a
// job IS its spec: submitting a byte-different spec makes a new job,
// resubmitting an identical one attaches to the existing job in any
// state — including interrupted jobs from a previous process, which
// re-enqueue and resume. Up to -jobs campaigns run concurrently in
// submission order, splitting the -parallel cell-worker budget evenly;
// neither knob changes any artifact byte (determinism clauses 4 and
// 8). The submit queue is unbounded — accepting a job is a map insert
// and a slice append, so submission never blocks on the runners. On
// SIGINT/SIGTERM the daemon drains: in-flight cells finish their
// trials, the checkpoint log keeps every completed cell, and the job
// is marked interrupted for the next incarnation to resume.
//
// With -retain-age and/or -retain-count the daemon garbage-collects
// DONE jobs' spec/cells/result triples (oldest first, by completion
// time) once they are older than the age or beyond the count. Queued,
// running, failed, cancelled and interrupted jobs are never touched:
// retention only reaps campaigns whose artifact was served durable,
// and a reaped spec can always be resubmitted to recompute
// byte-identical results.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/sweep"

	// Register the end-to-end attack scenarios as sweepable cell
	// experiments, mirroring cmd/llcsweep.
	_ "repro/internal/scenario"
)

func main() {
	fs := flag.NewFlagSet("llcserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address")
		dataDir  = fs.String("data", "", "directory for specs, checkpoint logs and results (required)")
		parallel = fs.Int("parallel", 0, "total campaign cell workers across jobs (0 = GOMAXPROCS); never changes any artifact")
		jobs     = fs.Int("jobs", 1, "concurrent campaign jobs; the -parallel budget is split evenly between them")
		retAge   = fs.Duration("retain-age", 0, "garbage-collect done jobs older than this (0 = keep forever)")
		retCount = fs.Int("retain-count", 0, "keep at most this many done jobs, oldest reaped first (0 = keep all)")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "usage: llcserve -data DIR [-addr HOST:PORT] [-parallel K] [-jobs K] [-retain-age D] [-retain-count N]")
		os.Exit(2)
	}
	if *jobs < 1 || *retAge < 0 || *retCount < 0 {
		fmt.Fprintln(os.Stderr, "llcserve: -jobs must be >= 1 and -retain-age/-retain-count must not be negative")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	srv, err := newServer(*dataDir, serverOptions{
		workers:     *parallel,
		jobs:        *jobs,
		retainAge:   *retAge,
		retainCount: *retCount,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "llcserve: %v\n", err)
		os.Exit(1)
	}
	srv.start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llcserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "llcserve: listening on %s, data in %s\n", ln.Addr(), *dataDir)
	hs := &http.Server{Handler: srv.handler()}
	go func() {
		<-ctx.Done()
		// Drain: stop accepting, let in-flight responses finish briefly,
		// then fall through to srv.wait() which interrupts the running
		// campaign (checkpointed cells stay durable).
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "llcserve: %v\n", err)
		os.Exit(1)
	}
	srv.wait()
	fmt.Fprintln(os.Stderr, "llcserve: drained")
}

// jobState is the lifecycle: queued -> running -> one of the terminal
// states. interrupted (daemon shut down mid-run) and cancelled/failed
// jobs re-enqueue when their spec is submitted again; done jobs only
// serve their result.
type jobState string

const (
	stateQueued      jobState = "queued"
	stateRunning     jobState = "running"
	stateDone        jobState = "done"
	stateFailed      jobState = "failed"
	stateCancelled   jobState = "cancelled"
	stateInterrupted jobState = "interrupted"
)

// job is one submitted spec. Its mutable fields are guarded by the
// server mutex; cond broadcasts on every event append and state
// change, which is what the ndjson streams block on.
type job struct {
	ID    string     `json:"id"`
	State jobState   `json:"state"`
	Total int        `json:"total_cells"`
	Done  int        `json:"done_cells"`
	Skip  int        `json:"skipped_cells"`
	Error string     `json:"error,omitempty"`
	Spec  sweep.Spec `json:"spec"`

	seq       int // submission order for listing
	events    []campaign.Event
	gen       int // bumped when a rerun resets events, so streams replay
	doneAt    time.Time
	cancel    context.CancelFunc
	cancelled bool // cancel endpoint (vs daemon drain) hit while active
}

// serverOptions configures a daemon instance.
type serverOptions struct {
	// workers is the total cell-worker budget shared by all concurrent
	// jobs (0 = GOMAXPROCS). It never changes any artifact byte.
	workers int
	// jobs is how many campaigns run concurrently (<= 0 means 1). Each
	// running job gets max(1, workers/jobs) cell workers.
	jobs int
	// retainAge garbage-collects done jobs finished longer ago than
	// this (0 = no age limit).
	retainAge time.Duration
	// retainCount keeps at most this many done jobs, reaping the oldest
	// first (0 = no count limit).
	retainCount int
}

type server struct {
	dataDir     string
	workers     int // cell workers per running job
	jobSlots    int // concurrent job runners
	retainAge   time.Duration
	retainCount int

	mu    sync.Mutex
	cond  *sync.Cond
	jobs  map[string]*job
	next  int      // next submission sequence number
	queue []string // unbounded FIFO of queued job IDs; cond signals appends

	stopped chan struct{} // closed when every runner has exited
}

// newServer loads the data directory's jobs: a spec with a result is
// done, one without is a campaign the previous incarnation never
// finished — exposed as interrupted so a resubmit resumes it.
func newServer(dataDir string, opts serverOptions) (*server, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	budget := opts.workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	slots := max(1, opts.jobs)
	s := &server{
		dataDir:     dataDir,
		workers:     max(1, budget/slots),
		jobSlots:    slots,
		retainAge:   opts.retainAge,
		retainCount: opts.retainCount,
		jobs:        make(map[string]*job),
		stopped:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	specs, err := filepath.Glob(filepath.Join(dataDir, "*.spec.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(specs)
	for _, p := range specs {
		id := strings.TrimSuffix(filepath.Base(p), ".spec.json")
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var spec sweep.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("job %s: %w", id, err)
		}
		spec.Normalize()
		if got := jobID(spec); got != id {
			return nil, fmt.Errorf("job %s: spec fingerprints as %s (foreign or edited spec file)", id, got)
		}
		j := &job{ID: id, Spec: spec, Total: len(sweep.Expand(spec)), State: stateInterrupted, seq: s.next}
		s.next++
		if fi, err := os.Stat(s.resultPath(id)); err == nil {
			j.State = stateDone
			j.Done = j.Total
			// The artifact's install time stands in for the completion
			// time, so retention ages reloaded jobs sensibly.
			j.doneAt = fi.ModTime()
		}
		s.jobs[id] = j
	}
	return s, nil
}

func jobID(spec sweep.Spec) string { return fmt.Sprintf("%016x", campaign.Fingerprint(spec)) }

func (s *server) specPath(id string) string   { return filepath.Join(s.dataDir, id+".spec.json") }
func (s *server) cellsPath(id string) string  { return filepath.Join(s.dataDir, id+".cells") }
func (s *server) resultPath(id string) string { return filepath.Join(s.dataDir, id+".result.json") }

// start launches the job-runner pool: jobSlots goroutines each pop the
// oldest queued ID and run it, so jobs still start in submission order
// even though up to jobSlots of them run concurrently. ctx is the
// daemon lifetime: when it cancels, running campaigns stop at the next
// trial boundary and the runners exit after marking their jobs
// interrupted. Retention, when configured, sweeps at startup and then
// once a minute.
func (s *server) start(ctx context.Context) {
	// Runners block on the cond (not the ctx), so translate cancellation
	// into a broadcast to wake the idle ones.
	stopWake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	var wg sync.WaitGroup
	for range s.jobSlots {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				for len(s.queue) == 0 && ctx.Err() == nil {
					s.cond.Wait()
				}
				if ctx.Err() != nil {
					s.mu.Unlock()
					return
				}
				id := s.queue[0]
				s.queue = s.queue[1:]
				s.mu.Unlock()
				s.runJob(ctx, id)
				s.gc()
			}
		}()
	}
	if s.retainAge > 0 || s.retainCount > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.gc()
			t := time.NewTicker(time.Minute)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s.gc()
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		stopWake()
		close(s.stopped)
	}()
}

// wait blocks until every runner has exited (drain complete).
func (s *server) wait() { <-s.stopped }

// enqueue appends a job ID to the FIFO and wakes an idle runner. The
// caller must hold s.mu; the queue is a slice, so enqueueing never
// blocks no matter how many jobs are backed up (a bounded channel here
// once deadlocked the whole daemon at 1024 queued jobs, because the
// send happened under the same mutex the runner needs to make
// progress).
func (s *server) enqueue(id string) {
	s.queue = append(s.queue, id)
	s.cond.Broadcast()
}

// gc applies the retention policy: done jobs beyond -retain-count or
// older than -retain-age lose their spec/cells/result triple and their
// jobs-map entry. Only stateDone jobs are candidates — queued, running,
// failed, cancelled and interrupted jobs keep their files, since those
// states still need the spec and checkpoint log to resume.
func (s *server) gc() {
	if s.retainAge <= 0 && s.retainCount <= 0 {
		return
	}
	s.mu.Lock()
	var done []*job
	for _, j := range s.jobs {
		if j.State == stateDone {
			done = append(done, j)
		}
	}
	// Newest first, so the count limit keeps the most recent artifacts.
	sort.Slice(done, func(a, b int) bool { return done[a].doneAt.After(done[b].doneAt) })
	var evict []*job
	now := time.Now()
	for i, j := range done {
		switch {
		case s.retainCount > 0 && i >= s.retainCount:
			evict = append(evict, j)
		case s.retainAge > 0 && now.Sub(j.doneAt) > s.retainAge:
			evict = append(evict, j)
		}
	}
	for _, j := range evict {
		delete(s.jobs, j.ID)
	}
	s.mu.Unlock()
	for _, j := range evict {
		for _, p := range []string{s.specPath(j.ID), s.cellsPath(j.ID), s.resultPath(j.ID)} {
			if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "llcserve: retention: %v\n", err)
			}
		}
		fmt.Fprintf(os.Stderr, "llcserve: retention: reaped done job %s (finished %s)\n",
			j.ID, j.doneAt.Format(time.RFC3339))
	}
}

func (s *server) runJob(ctx context.Context, id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j.State != stateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.State = stateRunning
	j.Done, j.Skip = 0, 0
	j.Error = ""
	// Resetting the backlog invalidates every connected event stream's
	// cursor; the generation bump tells them to replay from the start of
	// the new run instead of silently skipping its first events.
	j.events = nil
	j.gen++
	j.cancel = cancel
	j.cancelled = false
	s.cond.Broadcast()
	s.mu.Unlock()

	// OpenOrCreate recreates a torn-header log (a crash between Create
	// and the header sync leaves a short file with zero verified
	// records) instead of failing the job on every resubmit forever.
	ckpt, err := artifact.OpenOrCreate(s.cellsPath(id), campaign.Fingerprint(j.Spec))
	var res *sweep.Result
	if err == nil {
		defer ckpt.Close()
		res, _, err = campaign.Run(jctx, j.Spec, campaign.Options{
			Workers: s.workers,
			Log:     ckpt,
			OnCell: func(ev campaign.Event) {
				s.mu.Lock()
				defer s.mu.Unlock()
				j.events = append(j.events, ev)
				j.Done = ev.Done
				if ev.Skipped {
					j.Skip++
				}
				s.cond.Broadcast()
			},
		})
	}
	if err == nil {
		err = writeResult(s.resultPath(id), res)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.State = stateDone
		j.doneAt = time.Now()
	case j.cancelled:
		j.State = stateCancelled
		j.Error = err.Error()
	case ctx.Err() != nil:
		// Daemon drain, not a job failure: completed cells are in the
		// checkpoint log and the next incarnation resumes this job.
		j.State = stateInterrupted
		j.Error = err.Error()
	default:
		j.State = stateFailed
		j.Error = err.Error()
	}
	s.cond.Broadcast()
}

// writeResult installs the final artifact atomically (temp + rename,
// the CLI convention) so a crash mid-write can never leave a truncated
// result that a restart would mistake for a finished job.
func writeResult(path string, res *sweep.Result) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = res.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
	}
	return err
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /api/v1/jobs", s.submit)
	mux.HandleFunc("GET /api/v1/jobs", s.list)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.events)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.cancelJob)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// submit decodes and validates a spec, then either creates a new job
// or attaches to the existing one with the same fingerprint. Jobs in a
// resumable terminal state (interrupted, cancelled, failed) re-enqueue
// — the checkpoint log makes the rerun skip verified cells.
func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	id := jobID(spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		// Persist the spec before acknowledging: the job must be
		// recoverable the moment the client learns its ID.
		data, err := json.MarshalIndent(spec, "", "  ")
		if err == nil {
			err = os.WriteFile(s.specPath(id), append(data, '\n'), 0o644)
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "persisting spec: %v", err)
			return
		}
		j = &job{ID: id, Spec: spec, Total: len(sweep.Expand(spec)), State: stateQueued, seq: s.next}
		s.next++
		s.jobs[id] = j
		s.enqueue(id)
		writeJSON(w, http.StatusCreated, j)
		return
	}
	switch j.State {
	case stateInterrupted, stateCancelled, stateFailed:
		j.State = stateQueued
		j.Error = ""
		s.enqueue(id)
		writeJSON(w, http.StatusAccepted, j)
	default: // queued, running, done: idempotent attach
		writeJSON(w, http.StatusOK, j)
	}
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	// Snapshot under the lock: the runner mutates jobs concurrently.
	data := make([]job, len(out))
	for i, j := range out {
		data[i] = *j
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, data)
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		httpError(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	snap := *j
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

// result streams the installed artifact file. Only done jobs have one;
// everything else is 409 so a poller can distinguish "not yet" from
// "never submitted" (404).
func (s *server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	st := j.State
	s.mu.Unlock()
	if st != stateDone {
		httpError(w, http.StatusConflict, "job %s is %s, not done", j.ID, st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.resultPath(j.ID))
}

// events streams the job's per-cell completions as ndjson: the full
// backlog first, then live events until the job reaches a terminal
// state or the client disconnects.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// A client disconnect only surfaces as a write error; wake the cond
	// loop when the request dies so the handler can notice and return.
	stop := context.AfterFunc(r.Context(), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	enc := json.NewEncoder(w)
	i, gen := 0, -1
	for {
		s.mu.Lock()
		for {
			if j.gen != gen {
				// A rerun replaced the backlog: restart the cursor so the
				// client sees the new run from its first event instead of
				// silently skipping the first i of them.
				gen, i = j.gen, 0
			}
			if i < len(j.events) || (j.State != stateQueued && j.State != stateRunning) || r.Context().Err() != nil {
				break
			}
			s.cond.Wait()
		}
		if r.Context().Err() != nil || (i >= len(j.events) && j.State != stateQueued && j.State != stateRunning) {
			s.mu.Unlock()
			return
		}
		ev := j.events[i]
		i++
		s.mu.Unlock()
		if enc.Encode(ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// cancelJob stops a queued or running job. Running jobs stop at the
// next trial boundary; cells already checkpointed stay durable, so a
// later resubmit resumes rather than restarts.
func (s *server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.State {
	case stateQueued:
		j.State = stateCancelled
		j.cancelled = true
		s.cond.Broadcast()
		writeJSON(w, http.StatusOK, j)
	case stateRunning:
		j.cancelled = true
		j.cancel()
		writeJSON(w, http.StatusAccepted, j)
	default:
		httpError(w, http.StatusConflict, "job %s is %s, not cancellable", j.ID, j.State)
	}
}
