// Command llcserve is the long-running campaign daemon: it accepts
// sweep specs over HTTP/JSON, runs them as resumable checkpointed
// campaigns (internal/campaign), and serves progress, per-cell
// completion events, final artifacts and raw checkpoint logs. Every
// job is durable — the checkpoint log under -data survives crashes and
// restarts, and resubmitting the same spec after either resumes from
// the verified cells instead of recomputing them.
//
//	llcserve -addr 127.0.0.1:8077 -data /var/lib/llcserve
//
// Endpoints (all under /api/v1):
//
//	POST /api/v1/jobs               submit a sweep.Spec (JSON body); ?start=I&end=J submits the cell range [I, J)
//	GET  /api/v1/jobs               list jobs in submission order
//	GET  /api/v1/jobs/{id}          one job's status and progress
//	GET  /api/v1/jobs/{id}/result   final sweep artifact JSON (done full-grid jobs only)
//	GET  /api/v1/jobs/{id}/artifact the job's raw .cells checkpoint log (done jobs only)
//	GET  /api/v1/jobs/{id}/events   ndjson stream of per-cell completions: backlog, then live
//	POST /api/v1/jobs/{id}/cancel   stop a queued or running job at the next trial boundary
//	GET  /healthz                   liveness probe: JSON {status, uptime_s, jobs_running, queue_depth}
//	GET  /metrics                   Prometheus text: queue depth, jobs by state, cells/s, GC reaps, event-stream clients
//
// The job ID is the spec's campaign fingerprint (16 hex digits), plus
// "-r<start>-<end>" for cell-range jobs, so a job IS its
// spec-plus-range: submitting a byte-different spec or different range
// makes a new job, resubmitting an identical one attaches to the
// existing job in any state — including interrupted jobs from a
// previous process, which re-enqueue and resume. Range jobs are the
// lease unit of the fleet coordinator (cmd/llcfleet): they compute no
// aggregate result, and their artifact endpoint serves the raw
// checkpoint log for central merging. Up to -jobs campaigns run
// concurrently in submission order, splitting the -parallel
// cell-worker budget evenly; neither knob changes any artifact byte
// (determinism clauses 4 and 8). The submit queue is unbounded —
// accepting a job is a map insert and a slice append, so submission
// never blocks on the runners. On SIGINT/SIGTERM the daemon drains:
// in-flight cells finish their trials, the checkpoint log keeps every
// completed cell, and the job is marked interrupted for the next
// incarnation to resume.
//
// With -retain-age and/or -retain-count the daemon garbage-collects
// DONE jobs' spec/cells/result triples (oldest first, by completion
// time) once they are older than the age or beyond the count. Queued,
// running, failed, cancelled and interrupted jobs are never touched:
// retention only reaps campaigns whose artifact was served durable,
// and a reaped spec can always be resubmitted to recompute
// byte-identical results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"

	// Register the end-to-end attack scenarios as sweepable cell
	// experiments, mirroring cmd/llcsweep.
	_ "repro/internal/scenario"
)

func main() {
	fs := flag.NewFlagSet("llcserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address")
		dataDir  = fs.String("data", "", "directory for specs, checkpoint logs and results (required)")
		parallel = fs.Int("parallel", 0, "total campaign cell workers across jobs (0 = GOMAXPROCS); never changes any artifact")
		jobs     = fs.Int("jobs", 1, "concurrent campaign jobs; the -parallel budget is split evenly between them")
		retAge   = fs.Duration("retain-age", 0, "garbage-collect done jobs older than this (0 = keep forever)")
		retCount = fs.Int("retain-count", 0, "keep at most this many done jobs, oldest reaped first (0 = keep all)")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "usage: llcserve -data DIR [-addr HOST:PORT] [-parallel K] [-jobs K] [-retain-age D] [-retain-count N]")
		os.Exit(2)
	}
	if *jobs < 1 || *retAge < 0 || *retCount < 0 {
		fmt.Fprintln(os.Stderr, "llcserve: -jobs must be >= 1 and -retain-age/-retain-count must not be negative")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	srv, err := serve.New(*dataDir, serve.Options{
		Workers:     *parallel,
		Jobs:        *jobs,
		RetainAge:   *retAge,
		RetainCount: *retCount,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "llcserve: %v\n", err)
		os.Exit(1)
	}
	srv.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llcserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "llcserve: listening on %s, data in %s\n", ln.Addr(), *dataDir)
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		// Drain: stop accepting, let in-flight responses finish briefly,
		// then fall through to srv.Wait() which interrupts the running
		// campaign (checkpointed cells stay durable).
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "llcserve: %v\n", err)
		os.Exit(1)
	}
	srv.Wait()
	fmt.Fprintln(os.Stderr, "llcserve: drained")
}
