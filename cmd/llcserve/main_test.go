package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/sweep"
)

// tinySpec is a fast 4-cell grid; its artifact doubles as the
// byte-identity reference (sweep.Run must produce the same JSON).
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU"},
		Trials:      3,
		Seed:        7,
	}
}

// slowSpec is a 4-cell grid where each cell takes long enough (~1s)
// that a test can reliably cancel between cells.
func slowSpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      400,
		Seed:        3,
	}
}

func startServer(t *testing.T, dir string) (*server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	s, err := newServer(dir, 1)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.start(ctx)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.wait()
	})
	return s, ts, cancel
}

func postSpec(t *testing.T, ts *httptest.Server, spec sweep.Spec) (int, job) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding job: %v", err)
	}
	return resp.StatusCode, j
}

func getStatus(t *testing.T, ts *httptest.Server, id string) job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", resp.StatusCode)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return j
}

// waitState polls the status endpoint until pred holds or the deadline
// passes.
func waitState(t *testing.T, ts *httptest.Server, id string, what string, pred func(job) bool) job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j := getStatus(t, ts, id)
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last: %s %d/%d (%s)", id, what, j.State, j.Done, j.Total, j.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitRunResult(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := tinySpec()

	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d, want 201", code)
	}
	if j.ID != jobID(specNormalized(spec)) || j.Total != 4 {
		t.Fatalf("job = %+v", j)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Done != 4 || done.Error != "" {
		t.Fatalf("done job = %+v", done)
	}

	// Resubmitting the identical spec attaches idempotently.
	code, j2 := postSpec(t, ts, spec)
	if code != http.StatusOK || j2.ID != j.ID || j2.State != stateDone {
		t.Fatalf("resubmit: status %d job %+v", code, j2)
	}

	// The served artifact must be byte-identical to the flattened
	// sweep.Run path — the campaign layer's central contract.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", resp.StatusCode, got.String())
	}
	res, err := sweep.Run(context.Background(), spec, 1)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatalf("encoding reference: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("served artifact differs from sweep.Run artifact")
	}
}

func specNormalized(spec sweep.Spec) sweep.Spec {
	spec.Normalize()
	return spec
}

func TestEventsStreamBacklogAndCounts(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	_, j := postSpec(t, ts, tinySpec())
	waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var evs []campaign.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Done != i+1 || ev.Total != 4 || ev.Skipped {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	for _, body := range []string{
		"{not json",
		`{"unknown_field": 1}`,
		`{"experiments": ["no/such/experiment"], "trials": 3}`,
		`{"trials": -1}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestUnknownJobIs404AndEarlyResultIs409(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/api/v1/jobs/deadbeefdeadbeef")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}

	_, j := postSpec(t, ts, slowSpec())
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before done: status %d, want 409", resp.StatusCode)
	}
}

// TestCancelThenResubmitResumes is the durability round-trip: cancel a
// running job after at least one cell checkpoints, resubmit the same
// spec, and require the finished artifact byte-identical to an
// uninterrupted run — with the resumed pass skipping verified cells.
func TestCancelThenResubmitResumes(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := slowSpec()
	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, j.ID, "first cell done", func(j job) bool { return j.Done >= 1 })

	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	waitState(t, ts, j.ID, "cancelled", func(j job) bool { return j.State == stateCancelled })

	// Cancelling a terminal job is refused.
	resp, err = http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", resp.StatusCode)
	}

	code, _ = postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d, want 202", code)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Skip < 1 {
		t.Fatalf("resumed run skipped %d cells, want >= 1", done.Skip)
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	res, err := sweep.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	res.WriteJSON(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed artifact differs from uninterrupted sweep artifact")
	}
}

// TestDrainMarksInterruptedAndRestartResumes shuts the daemon down
// mid-campaign and brings a new incarnation up on the same data
// directory: the job must surface as interrupted, resubmit must
// resume, and the artifact must match an uninterrupted run.
func TestDrainMarksInterruptedAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	spec := slowSpec()

	s1, err := newServer(dir, 1)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.start(ctx1)
	ts1 := httptest.NewServer(s1.handler())
	_, j := postSpec(t, ts1, spec)
	waitState(t, ts1, j.ID, "first cell done", func(j job) bool { return j.Done >= 1 })
	cancel1() // daemon drain: the campaign stops at the next trial boundary
	s1.wait()
	ts1.Close()

	s2, ts2, _ := startServer(t, dir)
	s2.mu.Lock()
	j2, ok := s2.jobs[j.ID]
	st := stateQueued
	if ok {
		st = j2.State
	}
	s2.mu.Unlock()
	if !ok || st != stateInterrupted {
		t.Fatalf("restarted server sees job as %v (ok=%v), want interrupted", st, ok)
	}

	code, _ := postSpec(t, ts2, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after restart: status %d, want 202", code)
	}
	done := waitState(t, ts2, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Skip < 1 {
		t.Fatalf("restarted run skipped %d cells, want >= 1", done.Skip)
	}

	resp, err := http.Get(ts2.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	res, err := sweep.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	res.WriteJSON(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("post-restart artifact differs from uninterrupted sweep artifact")
	}

	// A third incarnation over the finished directory lists it as done.
	s3, err := newServer(dir, 1)
	if err != nil {
		t.Fatalf("newServer (third): %v", err)
	}
	s3.mu.Lock()
	j3 := s3.jobs[j.ID]
	s3.mu.Unlock()
	if j3 == nil || j3.State != stateDone {
		t.Fatalf("third incarnation sees %+v, want done", j3)
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	a := tinySpec()
	b := tinySpec()
	b.Seed = 99 // different fingerprint
	_, ja := postSpec(t, ts, a)
	_, jb := postSpec(t, ts, b)
	if ja.ID == jb.ID {
		t.Fatalf("distinct specs share job ID %s", ja.ID)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var jobs []job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != ja.ID || jobs[1].ID != jb.ID {
		ids := make([]string, len(jobs))
		for i, j := range jobs {
			ids[i] = fmt.Sprintf("%s(%s)", j.ID, j.State)
		}
		t.Fatalf("list = %v, want [%s %s]", ids, ja.ID, jb.ID)
	}
}
