package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/sweep"
)

// tinySpec is a fast 4-cell grid; its artifact doubles as the
// byte-identity reference (sweep.Run must produce the same JSON).
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU"},
		Trials:      3,
		Seed:        7,
	}
}

// slowSpec is a 4-cell grid where each cell takes long enough (~1s)
// that a test can reliably cancel between cells.
func slowSpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      400,
		Seed:        3,
	}
}

func startServer(t *testing.T, dir string) (*server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	s, err := newServer(dir, serverOptions{workers: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.start(ctx)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.wait()
	})
	return s, ts, cancel
}

func postSpec(t *testing.T, ts *httptest.Server, spec sweep.Spec) (int, job) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding job: %v", err)
	}
	return resp.StatusCode, j
}

func getStatus(t *testing.T, ts *httptest.Server, id string) job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", resp.StatusCode)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return j
}

// waitState polls the status endpoint until pred holds or the deadline
// passes.
func waitState(t *testing.T, ts *httptest.Server, id string, what string, pred func(job) bool) job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j := getStatus(t, ts, id)
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last: %s %d/%d (%s)", id, what, j.State, j.Done, j.Total, j.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitRunResult(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := tinySpec()

	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d, want 201", code)
	}
	if j.ID != jobID(specNormalized(spec)) || j.Total != 4 {
		t.Fatalf("job = %+v", j)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Done != 4 || done.Error != "" {
		t.Fatalf("done job = %+v", done)
	}

	// Resubmitting the identical spec attaches idempotently.
	code, j2 := postSpec(t, ts, spec)
	if code != http.StatusOK || j2.ID != j.ID || j2.State != stateDone {
		t.Fatalf("resubmit: status %d job %+v", code, j2)
	}

	// The served artifact must be byte-identical to the flattened
	// sweep.Run path — the campaign layer's central contract.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", resp.StatusCode, got.String())
	}
	res, err := sweep.Run(context.Background(), spec, 1)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatalf("encoding reference: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("served artifact differs from sweep.Run artifact")
	}
}

func specNormalized(spec sweep.Spec) sweep.Spec {
	spec.Normalize()
	return spec
}

func TestEventsStreamBacklogAndCounts(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	_, j := postSpec(t, ts, tinySpec())
	waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var evs []campaign.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Done != i+1 || ev.Total != 4 || ev.Skipped {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	for _, body := range []string{
		"{not json",
		`{"unknown_field": 1}`,
		`{"experiments": ["no/such/experiment"], "trials": 3}`,
		`{"trials": -1}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestUnknownJobIs404AndEarlyResultIs409(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/api/v1/jobs/deadbeefdeadbeef")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}

	_, j := postSpec(t, ts, slowSpec())
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before done: status %d, want 409", resp.StatusCode)
	}
}

// TestCancelThenResubmitResumes is the durability round-trip: cancel a
// running job after at least one cell checkpoints, resubmit the same
// spec, and require the finished artifact byte-identical to an
// uninterrupted run — with the resumed pass skipping verified cells.
func TestCancelThenResubmitResumes(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := slowSpec()
	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, j.ID, "first cell done", func(j job) bool { return j.Done >= 1 })

	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	waitState(t, ts, j.ID, "cancelled", func(j job) bool { return j.State == stateCancelled })

	// Cancelling a terminal job is refused.
	resp, err = http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", resp.StatusCode)
	}

	code, _ = postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d, want 202", code)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Skip < 1 {
		t.Fatalf("resumed run skipped %d cells, want >= 1", done.Skip)
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	res, err := sweep.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	res.WriteJSON(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed artifact differs from uninterrupted sweep artifact")
	}
}

// TestDrainMarksInterruptedAndRestartResumes shuts the daemon down
// mid-campaign and brings a new incarnation up on the same data
// directory: the job must surface as interrupted, resubmit must
// resume, and the artifact must match an uninterrupted run.
func TestDrainMarksInterruptedAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	spec := slowSpec()

	s1, err := newServer(dir, serverOptions{workers: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.start(ctx1)
	ts1 := httptest.NewServer(s1.handler())
	_, j := postSpec(t, ts1, spec)
	waitState(t, ts1, j.ID, "first cell done", func(j job) bool { return j.Done >= 1 })
	cancel1() // daemon drain: the campaign stops at the next trial boundary
	s1.wait()
	ts1.Close()

	s2, ts2, _ := startServer(t, dir)
	s2.mu.Lock()
	j2, ok := s2.jobs[j.ID]
	st := stateQueued
	if ok {
		st = j2.State
	}
	s2.mu.Unlock()
	if !ok || st != stateInterrupted {
		t.Fatalf("restarted server sees job as %v (ok=%v), want interrupted", st, ok)
	}

	code, _ := postSpec(t, ts2, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after restart: status %d, want 202", code)
	}
	done := waitState(t, ts2, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Skip < 1 {
		t.Fatalf("restarted run skipped %d cells, want >= 1", done.Skip)
	}

	resp, err := http.Get(ts2.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	res, err := sweep.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	res.WriteJSON(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("post-restart artifact differs from uninterrupted sweep artifact")
	}

	// A third incarnation over the finished directory lists it as done.
	s3, err := newServer(dir, serverOptions{workers: 1})
	if err != nil {
		t.Fatalf("newServer (third): %v", err)
	}
	s3.mu.Lock()
	j3 := s3.jobs[j.ID]
	s3.mu.Unlock()
	if j3 == nil || j3.State != stateDone {
		t.Fatalf("third incarnation sees %+v, want done", j3)
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	a := tinySpec()
	b := tinySpec()
	b.Seed = 99 // different fingerprint
	_, ja := postSpec(t, ts, a)
	_, jb := postSpec(t, ts, b)
	if ja.ID == jb.ID {
		t.Fatalf("distinct specs share job ID %s", ja.ID)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var jobs []job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != ja.ID || jobs[1].ID != jb.ID {
		ids := make([]string, len(jobs))
		for i, j := range jobs {
			ids[i] = fmt.Sprintf("%s(%s)", j.ID, j.State)
		}
		t.Fatalf("list = %v, want [%s %s]", ids, ja.ID, jb.ID)
	}
}

// Regression: submit used to send the job ID on a bounded channel
// (capacity 1024) while still holding s.mu. Once enough jobs backed up
// the send blocked inside the lock, and every other handler — plus the
// runner itself, whose OnCell callback needs s.mu — deadlocked behind
// it. The queue is an unbounded slice now, so well over 1024 submits
// must complete even when nothing is draining the queue at all.
func TestSubmitManyQueuedDoesNotDeadlock(t *testing.T) {
	s, err := newServer(t.TempDir(), serverOptions{workers: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	// Deliberately never s.start: the queue only grows.
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const submits = 1100
	errc := make(chan error, 1)
	go func() {
		for i := range submits {
			spec := tinySpec()
			spec.Seed = uint64(1000 + i) // distinct fingerprint per submit
			body, err := json.Marshal(spec)
			if err == nil {
				var resp *http.Response
				resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusCreated {
						err = fmt.Errorf("submit %d: status %d", i, resp.StatusCode)
					}
				}
			}
			if err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("submitting: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("submit deadlocked with a full queue and no runner")
	}
	s.mu.Lock()
	queued := len(s.queue)
	s.mu.Unlock()
	if queued != submits {
		t.Fatalf("queue holds %d of %d submitted jobs", queued, submits)
	}
}

// Regression: a crash between artifact.Create and the header
// write/sync leaves a .cells file shorter than one header. runJob used
// to artifact.Open it, fail, and fail identically on every resubmit —
// the job was wedged forever even though the log provably held zero
// verified records. OpenOrCreate recreates such a file, so the
// resubmit must now run to done.
func TestTornHeaderCellsRecovers(t *testing.T) {
	dir := t.TempDir()
	spec := specNormalized(tinySpec())
	id := jobID(spec)
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+".spec.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing spec: %v", err)
	}
	// 7 bytes: torn mid-header, no record could have been appended.
	if err := os.WriteFile(filepath.Join(dir, id+".cells"), []byte("LLCA\x01\x00\x00"), 0o644); err != nil {
		t.Fatalf("writing torn log: %v", err)
	}

	_, ts, _ := startServer(t, dir)
	code, j := postSpec(t, ts, tinySpec())
	if code != http.StatusAccepted {
		t.Fatalf("resubmit of interrupted job: status %d, want 202", code)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Error != "" || done.Done != 4 {
		t.Fatalf("job after torn-header recovery = %+v", done)
	}
}

// Regression: runJob resets j.events when a rerun starts, but a
// connected /events client kept its old slice index and silently
// skipped the first i events of the new run. The generation counter
// must make the stream replay the rerun from its first event.
func TestEventsReplayAfterResubmit(t *testing.T) {
	s, err := newServer(t.TempDir(), serverOptions{workers: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// No runner yet: the job stays queued, exactly the window between a
	// resubmit and its rerun starting.
	_, j0 := postSpec(t, ts, tinySpec())

	// A resubmit re-enqueues without clearing events, so a stale backlog
	// from the previous run is still attached. Fabricate one with Done
	// values no real 4-cell run produces.
	const fakes = 4
	s.mu.Lock()
	jj := s.jobs[j0.ID]
	for i := range fakes {
		jj.events = append(jj.events, campaign.Event{Cell: i, Done: 100 + i, Total: 4})
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j0.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	stale := 0
	for stale < fakes && sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("decoding stale event: %v", err)
		}
		if ev.Done < 100 {
			t.Fatalf("expected fabricated backlog first, got %+v", ev)
		}
		stale++
	}
	if stale != fakes {
		t.Fatalf("read %d of %d stale events before stream ended", stale, fakes)
	}

	// The client is parked at index == fakes. Now let the rerun start
	// and reset the backlog.
	ctx, cancel := context.WithCancel(context.Background())
	s.start(ctx)
	t.Cleanup(func() {
		cancel()
		s.wait()
	})

	var live []campaign.Event
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("decoding live event: %v", err)
		}
		live = append(live, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("events stream: %v", err)
	}
	if len(live) != 4 || live[0].Done != 1 || live[3].Done != 4 {
		t.Fatalf("rerun stream = %+v, want the full run replayed from Done=1", live)
	}
}

// Two jobs must run simultaneously under -jobs 2; the FIFO-of-one this
// replaced could never reach that state.
func TestConcurrentJobsRunTogether(t *testing.T) {
	s, err := newServer(t.TempDir(), serverOptions{workers: 2, jobs: 2})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.start(ctx)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.wait()
	})

	a := slowSpec()
	b := slowSpec()
	b.Seed = 11
	_, ja := postSpec(t, ts, a)
	_, jb := postSpec(t, ts, b)
	deadline := time.Now().Add(time.Minute)
	for {
		sa := getStatus(t, ts, ja.ID).State
		sb := getStatus(t, ts, jb.ID).State
		if sa == stateRunning && sb == stateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never ran concurrently: %s / %s", sa, sb)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range []string{ja.ID, jb.ID} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatalf("cancel: %v", err)
		}
		resp.Body.Close()
		waitState(t, ts, id, "terminal", func(j job) bool {
			return j.State == stateCancelled || j.State == stateDone
		})
	}
}

// Retention reaps only done jobs — oldest first past the count limit or
// the age limit — and removes the whole spec/cells/result triple plus
// the jobs-map entry. Non-terminal jobs keep their files no matter how
// old they are.
func TestRetentionGC(t *testing.T) {
	dir := t.TempDir()
	s, err := newServer(dir, serverOptions{workers: 1, retainAge: time.Hour, retainCount: 1})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	plant := func(id string, state jobState, doneAt time.Time) {
		t.Helper()
		for _, p := range []string{s.specPath(id), s.cellsPath(id), s.resultPath(id)} {
			if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
				t.Fatalf("planting %s: %v", p, err)
			}
		}
		s.jobs[id] = &job{ID: id, State: state, doneAt: doneAt}
	}
	const (
		oldDone = "00000000000000aa" // reaped: past the count limit and the age limit
		newDone = "00000000000000bb" // kept: newest done job, within age
		wedged  = "00000000000000cc" // interrupted: never a GC candidate
	)
	plant(oldDone, stateDone, time.Now().Add(-2*time.Hour))
	plant(newDone, stateDone, time.Now())
	plant(wedged, stateInterrupted, time.Now().Add(-48*time.Hour))

	s.gc()

	s.mu.Lock()
	_, hasOld := s.jobs[oldDone]
	_, hasNew := s.jobs[newDone]
	_, hasWedged := s.jobs[wedged]
	s.mu.Unlock()
	if hasOld || !hasNew || !hasWedged {
		t.Fatalf("jobs after gc: old=%v new=%v interrupted=%v, want false/true/true", hasOld, hasNew, hasWedged)
	}
	for id, want := range map[string]bool{oldDone: false, newDone: true, wedged: true} {
		for _, p := range []string{s.specPath(id), s.cellsPath(id), s.resultPath(id)} {
			_, err := os.Stat(p)
			if got := err == nil; got != want {
				t.Fatalf("%s: exists=%v, want %v", p, got, want)
			}
		}
	}
}
