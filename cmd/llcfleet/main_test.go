package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func tinySpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU"},
		Trials:      3,
		Seed:        7,
	}
}

func writeSpec(t *testing.T, spec sweep.Spec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("writing spec: %v", err)
	}
	return p
}

func startWorker(t *testing.T) string {
	t.Helper()
	s, err := serve.New(t.TempDir(), serve.Options{Workers: 1})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.Wait()
	})
	return ts.URL
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-workers", "http://x", "-spec", "s.json"},  // no -o
		{"-workers", "http://x", "-o", "out.cells"},  // no -spec
		{"-spec", "s.json", "-o", "out.cells"},       // no -workers
		{"-workers", " , ", "-spec", "s", "-o", "o"}, // empty worker list
		{"-workers", "http://x", "-bogus-flag", "1"}, // unknown flag
	} {
		var stderr bytes.Buffer
		if code := run(context.Background(), args, &stderr); code != 2 {
			t.Fatalf("args %v: exit %d, want 2; stderr: %s", args, code, stderr.String())
		}
	}
}

func TestMissingSpecFileFails(t *testing.T) {
	var stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-workers", "http://127.0.0.1:1",
		"-spec", filepath.Join(t.TempDir(), "absent.json"),
		"-o", filepath.Join(t.TempDir(), "out.cells"),
	}, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
}

// TestFleetCLIByteIdentical drives the whole CLI against three real
// in-process daemons and byte-compares the merged artifact with a
// sequential single-process campaign — the command-level clause 9 pin.
func TestFleetCLIByteIdentical(t *testing.T) {
	spec := tinySpec()
	workers := []string{startWorker(t), startWorker(t), startWorker(t)}
	out := filepath.Join(t.TempDir(), "merged.cells")

	var stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-workers", strings.Join(workers, ","),
		"-spec", writeSpec(t, spec),
		"-o", out,
		"-lease-size", "1",
		"-lease-timeout", "20s",
		"-poll", "10ms",
	}, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "merged 4 cells") {
		t.Fatalf("summary line missing from stderr: %s", stderr.String())
	}

	norm := spec
	norm.Normalize()
	refPath := filepath.Join(t.TempDir(), "ref.cells")
	ref, err := artifact.Create(refPath, campaign.Fingerprint(norm))
	if err != nil {
		t.Fatalf("creating reference log: %v", err)
	}
	if _, _, err := campaign.Run(context.Background(), norm, campaign.Options{Workers: 1, Log: ref}); err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	ref.Close()

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading merged artifact: %v", err)
	}
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatalf("reading reference artifact: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CLI-merged artifact differs from single-process run")
	}
}
