// Command llcfleet coordinates one campaign across a fleet of
// llcserve daemons: it splits the sweep grid's Expand order into
// cell-range leases, hands them to workers over the daemon HTTP API,
// expires and reassigns leases from lagging or crashed workers,
// downloads each finished range's checkpoint log with verification and
// retry, and merges them centrally into an artifact byte-identical to
// an uninterrupted single-process run (determinism clause 9) —
// SIGKILLing a worker mid-lease changes nothing but the wall clock.
//
//	llcfleet -spec sweep.json -o merged.cells \
//	    -workers http://a:8077,http://b:8077,http://c:8077 \
//	    -lease-size 8 -lease-timeout 30s
//
// The output is a campaign checkpoint log, the same format llcsweep
// -checkpoint writes: feed it back to llcsweep (which skips every
// verified cell and emits the aggregate) or to llccells for per-trial
// export. Exit status: 0 on success, 1 on failure, 2 on usage errors.
//
// While the run is in flight the coordinator reports on stderr: a
// periodic one-line progress summary (cells done, lease-range states,
// cells/s, ETA; cadence set by -progress) plus per-event scheduling
// lines. -q silences the routine lines but NOT lease expiries or
// worker failures — those always print, since they are how an operator
// learns a worker died. -metrics-addr additionally serves the same
// telemetry as Prometheus text (fleet_leases_total by event,
// fleet_cells_completed_total, per-worker cells/s, ETA) at GET
// /metrics; none of it changes the merged artifact (determinism
// clause 10).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sweep"

	// Register the end-to-end attack scenarios as sweepable cell
	// experiments, mirroring cmd/llcsweep.
	_ "repro/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	os.Exit(run(ctx, os.Args[1:], os.Stderr))
}

func run(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("llcfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workersFlag  = fs.String("workers", "", "comma-separated llcserve base URLs (required)")
		specPath     = fs.String("spec", "", "sweep spec JSON file (required)")
		out          = fs.String("o", "", "merged checkpoint log to write (required; must not exist)")
		leaseSize    = fs.Int("lease-size", 0, "cells per lease (0 = about four leases per worker)")
		leaseTimeout = fs.Duration("lease-timeout", 30*time.Second, "reassign a lease after this long without progress")
		poll         = fs.Duration("poll", 250*time.Millisecond, "scheduling loop tick")
		workDir      = fs.String("workdir", "", "directory for downloaded range logs (default: a temp dir, removed on success)")
		quiet        = fs.Bool("q", false, "suppress scheduling-event log lines (lease expiries and worker failures still print)")
		metricsAddr  = fs.String("metrics-addr", "", "serve Prometheus-text coordinator metrics on this address at GET /metrics")
		progress     = fs.Duration("progress", 10*time.Second, "period for the one-line progress summary on stderr (0 = default 10s)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *workersFlag == "" || *specPath == "" || *out == "" {
		fmt.Fprintln(stderr, "usage: llcfleet -workers URL[,URL...] -spec FILE -o FILE [-lease-size N] [-lease-timeout D] [-poll D] [-workdir DIR] [-q]")
		return 2
	}
	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, strings.TrimRight(w, "/"))
		}
	}
	if len(workers) == 0 {
		fmt.Fprintln(stderr, "llcfleet: -workers lists no URLs")
		return 2
	}

	data, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "llcfleet: %v\n", err)
		return 1
	}
	var spec sweep.Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fmt.Fprintf(stderr, "llcfleet: decoding %s: %v\n", *specPath, err)
		return 1
	}

	logf := func(format string, fargs ...any) {
		fmt.Fprintf(stderr, format+"\n", fargs...)
	}
	// -q silences routine scheduling chatter and the progress line, but
	// never the error channel: lease expiries and worker failures are how
	// an operator learns a box died, so Errorf always reaches stderr.
	errf := logf
	progf := logf
	if *quiet {
		logf = nil
		progf = nil
	}

	// -metrics-addr exports the coordinator's counters and gauges while
	// the run is in flight; reading them never changes the merged
	// artifact (determinism clause 10).
	metrics := obs.NewRegistry()
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "llcfleet: %v\n", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics.WritePrometheus(w)
		})
		ms := &http.Server{Handler: mux}
		defer ms.Close()
		go ms.Serve(ln)
		fmt.Fprintf(stderr, "llcfleet: metrics on http://%s/metrics\n", ln.Addr())
	}

	st, err := fleet.Run(ctx, spec, *out, fleet.Options{
		Workers:       workers,
		LeaseSize:     *leaseSize,
		LeaseTimeout:  *leaseTimeout,
		Poll:          *poll,
		WorkDir:       *workDir,
		Logf:          logf,
		Errorf:        errf,
		Progressf:     progf,
		ProgressEvery: *progress,
		Metrics:       metrics,
	})
	if err != nil {
		fmt.Fprintf(stderr, "llcfleet: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr,
		"llcfleet: merged %d cells from %d sources into %s (%d leases, %d grants, %d renewed, %d expired, %d superseded, %d duplicate completions, %d deduped records)\n",
		st.Merge.Records, st.Merge.Sources, *out, st.Ranges, st.Grants, st.Renewed, st.Expired, st.Superseded, st.Duplicates, st.Merge.Deduped)
	return 0
}
