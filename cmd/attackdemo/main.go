// Command attackdemo narrates one end-to-end, cross-tenant attack on the
// vulnerable ECDSA victim (paper §7): train the classifiers on a
// controlled host, then on a fresh co-located pair build eviction sets,
// identify the target SF set with the PSD scanner, monitor signings with
// Parallel Probing and extract the nonce bits.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/ec2m"
	"repro/internal/hierarchy"
	"repro/internal/psd"
	"repro/internal/xrand"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 7, "deterministic seed")
		full   = flag.Bool("full", false, "paper-scale host and sect571r1 victim (slow)")
		traces = flag.Int("traces", 5, "signings to monitor in Step 3")
	)
	flag.Parse()

	cfg := hierarchy.Scaled(4).WithCloudNoise()
	curve := ec2m.Sect163()
	if *full {
		cfg = hierarchy.SkylakeSP(28).WithCloudNoise()
		curve = ec2m.Sect571()
	}
	fmt.Printf("host: %s, %d slices, %d SF sets/slice, Cloud Run noise (%.1f acc/ms/set)\n",
		cfg.Name, cfg.Slices, cfg.LLCSets, cfg.NoiseRate*2e6)
	fmt.Printf("victim: ECDSA Montgomery ladder on %s (%d-bit nonces)\n\n", curve.Name, curve.N.BitLen())

	wall := time.Now()
	fmt.Println("[0] training classifiers on a controlled host (attacker+victim co-resident)...")
	train := attack.NewSession(cfg, curve, *seed^0xaaaa)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	scanner, ex, ts := train.TrainAll(p, xrand.New(*seed^0x111))
	fmt.Printf("    SVM validation: %.2f%% false negatives, %.2f%% false positives\n\n",
		100*ts.FalseNegative, 100*ts.FalsePositive)

	s := attack.NewSession(cfg, curve, *seed)
	fmt.Println("[1] building SF eviction sets at the victim's page offset (L2 filtering + binary search)...")
	opt := attack.DefaultE2EOptions()
	opt.Traces = *traces
	res := s.RunEndToEnd(scanner, ex, opt)
	fmt.Printf("    %d eviction sets in %.1f ms of victim-visible time\n\n", res.SetsBuilt, res.BuildTime.Millis())

	fmt.Println("[2] scanning for the target SF set with Welch-PSD + SVM while triggering signings...")
	if !res.Scan.Found {
		fmt.Println("    scan timed out — no signal on this pair")
		return
	}
	fmt.Printf("    target identified in %.1f ms after %d set-traces (ground truth: correct=%v)\n\n",
		res.Scan.Duration.Millis(), res.Scan.Scanned, res.Scan.Correct)

	fmt.Printf("[3] monitoring %d signings with Parallel Probing and extracting nonce bits...\n", *traces)
	for i, f := range res.Fractions {
		fmt.Printf("    signing %d: %.1f%% of nonce bits, %.2f%% bit errors\n",
			i+1, 100*f, 100*res.ErrorRates[i])
	}
	fmt.Printf("\nend-to-end: median %.0f%% of secret nonce bits extracted in %.1f s of attack time"+
		" (paper: median 81%% in ~19 s)\n", 100*res.MedianFraction(), res.TotalTime.Seconds())
	fmt.Printf("simulation wall time: %s\n", time.Since(wall).Round(time.Millisecond))
}
