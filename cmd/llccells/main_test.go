package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/sweep"
)

// tinySpec mirrors the campaign tests' 4-cell grid.
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU"},
		Trials:      3,
		Seed:        7,
	}
}

// writeSpec persists the spec JSON the way an operator would.
func writeSpec(t *testing.T, dir string, spec sweep.Spec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// runCampaign fills path with a checkpoint log for the spec; shardCount
// of 0 runs the full grid, otherwise only shard shardIdx.
func runCampaign(t *testing.T, spec sweep.Spec, path string, shardIdx, shardCount int) {
	t.Helper()
	log, err := artifact.Create(path, campaign.Fingerprint(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	_, _, err = campaign.Run(context.Background(), spec, campaign.Options{
		Workers: 2, Log: log, ShardIndex: shardIdx, ShardCount: shardCount,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExportMatchesSweep: exporting a complete log reproduces the
// sweep artifact byte-for-byte, for both the JSON and CSV views, with
// -o and on stdout.
func TestExportMatchesSweep(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	specPath := writeSpec(t, dir, spec)
	cells := filepath.Join(dir, "grid.cells")
	runCampaign(t, spec, cells, 0, 0)

	res, err := sweep.Run(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := res.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", specPath, "-cells", cells}, &stdout, &stderr); code != 0 {
		t.Fatalf("export: exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), wantJSON.Bytes()) {
		t.Fatal("exported JSON differs from sweep.Run artifact")
	}
	if stderr.Len() != 0 {
		t.Fatalf("complete log export wrote to stderr: %s", stderr.String())
	}

	out := filepath.Join(dir, "out.csv")
	stdout.Reset()
	if code := run([]string{"-spec", specPath, "-cells", cells, "-csv", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("csv export: exit %d, stderr: %s", code, stderr.String())
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantCSV.Bytes()) {
		t.Fatal("exported CSV differs from sweep.Run artifact")
	}
}

// TestPartialLogStatusAndExport: a single shard's log is a valid
// partial view — -status counts and lists the missing cells, and the
// export warns on stderr and aggregates only present cells.
func TestPartialLogStatusAndExport(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	specPath := writeSpec(t, dir, spec)
	cells := filepath.Join(dir, "s0.cells")
	runCampaign(t, spec, cells, 0, 2) // 2 of 4 cells

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", specPath, "-cells", cells, "-status"}, &stdout, &stderr); code != 0 {
		t.Fatalf("status: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "2 of 4 grid cell(s) done, 2 missing") {
		t.Fatalf("status summary wrong: %s", stdout.String())
	}
	if got := strings.Count(stdout.String(), "missing "); got != 2 {
		t.Fatalf("status lists %d missing cells, want 2: %s", got, stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-spec", specPath, "-cells", cells}, &stdout, &stderr); code != 0 {
		t.Fatalf("partial export: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "2 cell(s) missing") {
		t.Fatalf("partial export did not warn about missing cells: %s", stderr.String())
	}
	var view struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &view); err != nil {
		t.Fatalf("partial export is not JSON: %v", err)
	}
	if len(view.Cells) != 2 {
		t.Fatalf("partial export aggregated %d cells, want exactly the 2 present", len(view.Cells))
	}
}

// TestFilterAndTrials: -filter narrows the view by key substring and
// -trials dumps one ndjson row per present cell with the raw samples.
func TestFilterAndTrials(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	specPath := writeSpec(t, dir, spec)
	cells := filepath.Join(dir, "grid.cells")
	runCampaign(t, spec, cells, 0, 0)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", specPath, "-cells", cells, "-filter", "QLRU", "-status"}, &stdout, &stderr); code != 0 {
		t.Fatalf("filtered status: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `2 of 2 cells matching "QLRU" cell(s) done, 0 missing`) {
		t.Fatalf("filtered status wrong: %s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-spec", specPath, "-cells", cells, "-trials"}, &stdout, &stderr); code != 0 {
		t.Fatalf("trials dump: exit %d, stderr: %s", code, stderr.String())
	}
	sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
	rows := 0
	for sc.Scan() {
		var row trialRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("trials row %d: %v", rows, err)
		}
		if row.Key == "" || row.Coords == "" || len(row.Trials) != spec.Trials {
			t.Fatalf("trials row %d malformed: %+v", rows, row)
		}
		rows++
	}
	if rows != 4 {
		t.Fatalf("trials dump has %d rows, want 4", rows)
	}
}

// TestUsageAndForeignLogErrors: missing flags and flag conflicts are
// exit 2; a log whose fingerprint does not match the spec is exit 1.
func TestUsageAndForeignLogErrors(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	specPath := writeSpec(t, dir, spec)
	cells := filepath.Join(dir, "grid.cells")
	runCampaign(t, spec, cells, 0, 0)

	for _, args := range [][]string{
		{},
		{"-spec", specPath},
		{"-cells", cells},
		{"-spec", specPath, "-cells", cells, "-status", "-trials"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: exit %d, want 2; stderr: %s", args, code, stderr.String())
		}
	}

	other := tinySpec()
	other.Seed = 99
	otherPath := filepath.Join(dir, "other.json")
	data, _ := json.Marshal(other)
	if err := os.WriteFile(otherPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", otherPath, "-cells", cells}, &stdout, &stderr); code != 1 {
		t.Fatalf("foreign log: exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fingerprint") {
		t.Fatalf("foreign-log error does not mention the fingerprint: %s", stderr.String())
	}
}
