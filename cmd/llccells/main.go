// Command llccells renders views of a campaign checkpoint log
// (internal/artifact `.cells` file) without re-running any cell: the
// log plus its sweep spec are enough to reproduce the aggregated
// JSON/CSV artifact, slice it by cell coordinates, dump raw per-trial
// samples, or report which cells a partial log still misses.
//
//	llccells -spec grid.json -cells grid.cells                 # aggregate JSON artifact
//	llccells -spec grid.json -cells grid.cells -csv -o out.csv # CSV view
//	llccells -spec grid.json -cells grid.cells -status         # cells-done / cells-missing / bytes report
//	llccells -spec grid.json -cells grid.cells -filter QLRU    # only cells whose key contains QLRU
//	llccells -spec grid.json -cells grid.cells -trials         # ndjson per-trial dump
//
// The spec names the grid the log belongs to; the log's header
// fingerprint is checked against it, so a log from a different grid,
// seed or trial count is rejected rather than mislabelled. A complete
// log exports the byte-identical artifact `llcsweep` would print for
// the same spec. A PARTIAL log (from an interrupted or sharded run)
// exports only the cells it holds — missing cells are reported on
// stderr and listed by -status, never fabricated or aggregated — so
// long campaigns can be inspected mid-flight.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/sweep"

	// Register the end-to-end attack scenarios so scenario/<id> cells in
	// specs resolve, mirroring cmd/llcsweep.
	_ "repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cellView pairs one expanded grid cell with its decoded checkpoint
// samples (nil when the log misses the cell).
type cellView struct {
	cell    sweep.Cell
	samples []experiments.Sample
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llccells", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specFile = fs.String("spec", "", "JSON sweep spec the log belongs to (required)")
		cellsLog = fs.String("cells", "", "checkpoint log to read (required)")
		asCSV    = fs.Bool("csv", false, "emit CSV instead of JSON")
		outFile  = fs.String("o", "", "write the view to a file instead of stdout")
		status   = fs.Bool("status", false, "report done/missing cells instead of exporting")
		filter   = fs.String("filter", "", "restrict to cells whose key contains this substring")
		trials   = fs.Bool("trials", false, "dump raw per-trial samples as ndjson instead of aggregating")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *specFile == "" || *cellsLog == "" {
		fmt.Fprintln(stderr, "usage: llccells -spec grid.json -cells grid.cells [-status | -trials | [-csv] [-o FILE]] [-filter SUBSTR]")
		return 2
	}
	if *status && *trials {
		fmt.Fprintln(stderr, "llccells: -status and -trials are mutually exclusive")
		return 2
	}

	var spec sweep.Spec
	data, err := os.ReadFile(*specFile)
	if err != nil {
		fmt.Fprintf(stderr, "llccells: %v\n", err)
		return 2
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fmt.Fprintf(stderr, "llccells: spec %s: %v\n", *specFile, err)
		return 2
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(stderr, "llccells: %v\n", err)
		return 2
	}

	// Open verifies the header fingerprint and repairs torn tails and
	// duplicate keys exactly like a resume would; whatever it drops is
	// reported as missing rather than exported.
	log, err := artifact.Open(*cellsLog, campaign.Fingerprint(spec))
	if err != nil {
		fmt.Fprintf(stderr, "llccells: %v\n", err)
		return 1
	}
	defer log.Close()
	if log.DroppedTail > 0 || log.DroppedDuplicates > 0 {
		fmt.Fprintf(stderr, "llccells: %s: dropped %d unverified tail record(s) and %d duplicated cell(s)\n",
			*cellsLog, log.DroppedTail, log.DroppedDuplicates)
	}

	cls := sweep.Expand(spec)
	var views []cellView
	var missing []sweep.Cell
	var payloadBytes int64
	for _, c := range cls {
		if *filter != "" && !strings.Contains(c.Key, *filter) {
			continue
		}
		payload, ok := log.Get(c.Key)
		if !ok {
			missing = append(missing, c)
			continue
		}
		payloadBytes += int64(len(payload))
		ss, err := campaign.DecodeSamples(payload, spec.Trials)
		if err != nil {
			// The fingerprint pins the trial count, so an undecodable
			// verified record means a foreign writer or a bug: refuse to
			// render it as data.
			fmt.Fprintf(stderr, "llccells: cell %s: %v\n", c.Coords(), err)
			return 1
		}
		views = append(views, cellView{cell: c, samples: ss})
	}

	if *status {
		scope := "grid"
		if *filter != "" {
			scope = fmt.Sprintf("cells matching %q", *filter)
		}
		// The byte/record line is storage accounting for operators sizing
		// -workdir and retention: payload bytes are the decoded sample
		// records in scope, trials the samples they hold.
		fmt.Fprintf(stdout, "log %s: %d of %d %s cell(s) done, %d missing\n",
			*cellsLog, len(views), len(views)+len(missing), scope, len(missing))
		fmt.Fprintf(stdout, "records: %d cell payload(s), %d trial sample(s), %d payload byte(s)\n",
			len(views), len(views)*spec.Trials, payloadBytes)
		for _, c := range missing {
			fmt.Fprintf(stdout, "missing %s\n", c.Coords())
		}
		return 0
	}
	if len(missing) > 0 {
		// The export never invents samples: missing cells are absent from
		// the view, not zero-filled rows that would skew deltas silently.
		fmt.Fprintf(stderr, "llccells: partial log: %d cell(s) missing from %s are omitted, not aggregated (use -status to list them)\n",
			len(missing), *cellsLog)
	}

	var buf bytes.Buffer
	if *trials {
		if err := writeTrials(&buf, views); err != nil {
			fmt.Fprintf(stderr, "llccells: %v\n", err)
			return 1
		}
	} else {
		// Aggregate exactly the present cells through the same pure fold
		// the sweep uses, so a complete log reproduces llcsweep's artifact
		// byte-for-byte.
		present := make([]sweep.Cell, len(views))
		flat := make([]experiments.Sample, 0, len(views)*spec.Trials)
		for i, v := range views {
			present[i] = v.cell
			flat = append(flat, v.samples...)
		}
		res := sweep.Aggregate(spec, present, flat)
		if *asCSV {
			err = res.WriteCSV(&buf)
		} else {
			err = res.WriteJSON(&buf)
		}
		if err != nil {
			fmt.Fprintf(stderr, "llccells: %v\n", err)
			return 1
		}
	}
	if *outFile == "" {
		if _, err := stdout.Write(buf.Bytes()); err != nil {
			fmt.Fprintf(stderr, "llccells: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*outFile, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(stderr, "llccells: %v\n", err)
		return 1
	}
	return 0
}

// trialRow is one ndjson line of the -trials dump: a cell's coordinates
// plus its raw per-trial samples in trial order.
type trialRow struct {
	Key    string        `json:"key"`
	Coords string        `json:"coords"`
	Trials []trialSample `json:"trials"`
}

// trialSample is one decoded checkpoint sample.
type trialSample struct {
	OK    bool    `json:"ok"`
	Value float64 `json:"value"`
}

// writeTrials renders the per-trial ndjson view in grid order.
func writeTrials(w io.Writer, views []cellView) error {
	enc := json.NewEncoder(w)
	for _, v := range views {
		row := trialRow{Key: v.cell.Key, Coords: v.cell.Coords(), Trials: make([]trialSample, len(v.samples))}
		for i, s := range v.samples {
			row.Trials[i] = trialSample{OK: s.OK, Value: s.Value}
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
