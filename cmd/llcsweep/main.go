// Command llcsweep runs a configuration sweep: a declarative grid of
// replacement policy x SF associativity x slice count x noise rate x
// tenant workload model x LLC defense x cell experiment, expanded by
// internal/sweep and executed on the
// parallel trial engine. The aggregated artifact (JSON by default, CSV
// with -csv) goes to stdout (or -o) and is byte-identical for every
// -parallel value and across runs on the same architecture (float
// summaries may differ by a last ulp between CPU architectures with
// different fused-multiply-add behaviour), so committed artifacts diff
// cleanly across changes.
//
// The grid comes either from comma-separated flags or from a JSON spec
// file (-spec), which holds exactly the sweep.Spec structure:
//
//	{
//	  "experiments": ["evset/bins", "probe/detect"],
//	  "policies": ["LRU", "SRRIP", "QLRU"],
//	  "sf_assocs": [8, 6],
//	  "slices": [2, 4],
//	  "noise_rates": [0.29, 11.5],
//	  "tenant_models": ["poisson", "burst", "stream"],
//	  "defenses": ["none", "partition:ways=4"],
//	  "trials": 10,
//	  "seed": 1
//	}
//
// Flags override spec-file fields; unset axes take defaults.
//
// One grid can also span several PROCESSES or machines: `-shard i/N
// -checkpoint shard_i.cells` runs the i-th round-robin slice of the
// grid into its own checkpoint log, `-merge a.cells,b.cells,...
// -checkpoint merged.cells` reassembles the shard logs into one log
// byte-identical to a sequential single-process run's, and a final
// `-checkpoint merged.cells -resume` (or cmd/llccells) renders the
// aggregate artifact — byte-identical to running the grid in one
// process.
//
// Observability: -trace FILE writes a Chrome trace_event JSON file
// (one trace process per grid cell, one thread per trial, phase spans
// on the simulated-cycle timeline), and -metrics prints the run's
// telemetry — per-trial and per-cell duration histograms, cell
// completed/resumed counters, checkpoint append bytes — as Prometheus
// text on stderr. Neither changes a single artifact byte (determinism
// clause 10).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sweep"
	"repro/internal/tenant"

	// Register the end-to-end attack scenarios as sweepable cell
	// experiments ("scenario/<id>" ids in -list).
	_ "repro/internal/scenario"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: the grid stops on the next
	// trial boundary, the temp artifact is removed, checkpointed cells
	// stay durable, and the process exits non-zero — no .tmp-* litter,
	// no truncated artifact. A second signal kills the process outright
	// (AfterFunc restores default signal disposition on the first one).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llcsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specFile  = fs.String("spec", "", "JSON sweep spec file (flags override its fields)")
		exps      = fs.String("experiments", "", "comma-separated cell experiment ids (see -list)")
		policies  = fs.String("policies", "", "comma-separated replacement policies (LRU,Tree-PLRU,SRRIP,QLRU,Random)")
		assocs    = fs.String("assocs", "", "comma-separated SF associativities (LLC follows one way below)")
		slices    = fs.String("slices", "", "comma-separated LLC/SF slice counts")
		noise     = fs.String("noise", "", "comma-separated noise rates in accesses/ms/set (0.29=local, 11.5=Cloud Run)")
		tmodels   = fs.String("tenant-models", "", "comma-separated background tenant models (poisson,burst,stream,hotset,churn; see -list)")
		defs      = fs.String("defenses", "", "comma-separated LLC defense specs (none,partition:ways=4,randomize,scatter,quiesce; see -list)")
		trials    = fs.Int("trials", 0, "trials per cell (0 = default 10)")
		seed      = fs.Uint64("seed", 1, "deterministic seed (an explicit 0 is honoured)")
		parallel  = fs.Int("parallel", 0, "trial workers (0 = GOMAXPROCS, 1 = sequential); never changes the artifact")
		asCSV     = fs.Bool("csv", false, "emit CSV instead of JSON")
		outFile   = fs.String("o", "", "write the artifact to a file instead of stdout")
		ckptFile  = fs.String("checkpoint", "", "binary cell-result log: append each completed cell so an interrupted grid can resume")
		resume    = fs.Bool("resume", false, "with -checkpoint: reuse an existing log, skipping checksum-verified cells")
		shard     = fs.String("shard", "", "run one deterministic grid slice i/N (round-robin by cell index) into -checkpoint; N processes with N logs cover the grid")
		merge     = fs.String("merge", "", "comma-separated shard checkpoint logs to merge into -checkpoint (byte-identical to a sequential single-process log)")
		list      = fs.Bool("list", false, "list cell experiment ids")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep run to this file")
		memProf   = fs.String("memprofile", "", "write a post-run pprof heap profile to this file")
		blockProf = fs.String("blockprofile", "", "write a post-run pprof goroutine-blocking profile to this file")
		mutexProf = fs.String("mutexprofile", "", "write a post-run pprof mutex-contention profile to this file")
		traceFile = fs.String("trace", "", "write a Chrome trace_event JSON file of the run (Perfetto-viewable); never changes the artifact")
		metrics   = fs.Bool("metrics", false, "print run telemetry (trial/cell histograms, cell counters, append bytes) as Prometheus text on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, l := range experiments.CellList() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout, "\ntenant models (-tenant-models axis):")
		for _, l := range tenant.ModelList() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout, "\ndefense models (-defenses axis; \"none\" = undefended):")
		for _, l := range defense.ModelList() {
			fmt.Fprintln(stdout, l)
		}
		return 0
	}

	var spec sweep.Spec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintf(stderr, "llcsweep: %v\n", err)
			return 2
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fmt.Fprintf(stderr, "llcsweep: spec %s: %v\n", *specFile, err)
			return 2
		}
		// Reject trailing content (e.g. a second object from a bad merge):
		// silently decoding only the first value would run a different
		// grid than the file appears to declare.
		if dec.More() {
			fmt.Fprintf(stderr, "llcsweep: spec %s: trailing data after the spec object\n", *specFile)
			return 2
		}
	}
	var err error
	if spec.Experiments, err = mergeStrings(spec.Experiments, *exps); err == nil {
		spec.Policies, err = mergeStrings(spec.Policies, *policies)
	}
	if err == nil {
		spec.SFAssocs, err = mergeInts(spec.SFAssocs, *assocs)
	}
	if err == nil {
		spec.Slices, err = mergeInts(spec.Slices, *slices)
	}
	if err == nil {
		spec.NoiseRates, err = mergeFloats(spec.NoiseRates, *noise)
	}
	if err == nil {
		spec.TenantModels, err = mergeStrings(spec.TenantModels, *tmodels)
	}
	if err == nil {
		spec.Defenses, err = mergeStrings(spec.Defenses, *defs)
	}
	if err != nil {
		fmt.Fprintf(stderr, "llcsweep: %v\n", err)
		return 2
	}
	if *trials != 0 {
		// Pass negative values through so sweep.Validate rejects them
		// loudly instead of silently running the default trial count.
		spec.Trials = *trials
	}
	// Seed precedence: an explicitly passed -seed (0 included — it is a
	// legitimate seed) wins over a spec file; without a spec file the
	// flag's default of 1 applies; a spec file's seed is always literal,
	// so an artifact's embedded spec reproduces it exactly.
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet || *specFile == "" {
		spec.Seed = *seed
	}

	// Validate before touching the -o path: a bad spec must not truncate
	// an existing artifact. (Run re-normalizes/validates; both are
	// idempotent and cheap.)
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		// Usage error, like a bad flag: exit 2 (llcrepro's convention),
		// reserving 1 for failures of the sweep itself.
		fmt.Fprintf(stderr, "llcsweep: %v\n", err)
		return 2
	}
	if *resume && *ckptFile == "" {
		fmt.Fprintln(stderr, "llcsweep: -resume requires -checkpoint")
		return 2
	}
	var shardIdx, shardCnt int
	if *shard != "" {
		shardIdx, shardCnt, err = parseShard(*shard)
		if err != nil {
			fmt.Fprintf(stderr, "llcsweep: %v\n", err)
			return 2
		}
		if *merge != "" {
			fmt.Fprintln(stderr, "llcsweep: -shard and -merge are mutually exclusive")
			return 2
		}
		if *ckptFile == "" {
			fmt.Fprintln(stderr, "llcsweep: -shard requires -checkpoint (the shard's log is its only output)")
			return 2
		}
		if *outFile != "" || *asCSV {
			fmt.Fprintln(stderr, "llcsweep: a shard run produces no aggregate artifact; drop -o/-csv and merge the shard logs instead")
			return 2
		}
	}
	if *merge != "" {
		// Merge mode: no cells run. The grid flags/spec name the campaign
		// the shard logs belong to; -checkpoint is the merged destination.
		if *ckptFile == "" {
			fmt.Fprintln(stderr, "llcsweep: -merge requires -checkpoint as the destination log")
			return 2
		}
		if *resume {
			fmt.Fprintln(stderr, "llcsweep: -merge and -resume are mutually exclusive (resume against the merged log afterwards)")
			return 2
		}
		srcs, err := mergeStrings(nil, *merge)
		if err != nil {
			fmt.Fprintf(stderr, "llcsweep: %v\n", err)
			return 2
		}
		st, err := campaign.Merge(spec, *ckptFile, srcs)
		if err != nil {
			fmt.Fprintf(stderr, "llcsweep: %v\n", err)
			return 1
		}
		missing := len(sweep.Expand(spec)) - st.Records
		fmt.Fprintf(stderr, "llcsweep: merged %d log(s) into %s: %d cell record(s), %d duplicate(s) deduped, %d grid cell(s) still missing\n",
			st.Sources, *ckptFile, st.Records, st.Deduped, missing)
		return 0
	}

	// Checkpoint log: open-or-create before the temp artifact so a bad
	// checkpoint (wrong spec, unreadable path) fails before any compute.
	// The log is bound to the spec's fingerprint: resuming under a
	// different grid/seed/trial count is rejected, never silently mixed.
	var ckpt *artifact.Log
	if *ckptFile != "" {
		fp := campaign.Fingerprint(spec)
		if _, err := os.Stat(*ckptFile); err == nil {
			if !*resume {
				fmt.Fprintf(stderr, "llcsweep: checkpoint %s already exists; pass -resume to continue it\n", *ckptFile)
				return 2
			}
			l, err := artifact.Open(*ckptFile, fp)
			var short *artifact.ErrShortHeader
			if errors.As(err, &short) {
				// A crash between checkpoint creation and the header sync
				// leaves a file too short to hold any verified record; it
				// must recreate, not wedge every resume forever.
				fmt.Fprintf(stderr, "llcsweep: resume: checkpoint %s holds no verified records (torn header); recreating\n", *ckptFile)
				if rerr := os.Remove(*ckptFile); rerr != nil {
					fmt.Fprintf(stderr, "llcsweep: %v\n", rerr)
					return 2
				}
				l, err = artifact.Create(*ckptFile, fp)
			}
			if err != nil {
				fmt.Fprintf(stderr, "llcsweep: %v\n", err)
				return 2
			}
			ckpt = l
			if l.DroppedTail > 0 || l.DroppedDuplicates > 0 {
				fmt.Fprintf(stderr, "llcsweep: resume: dropped %d unverified tail record(s) and %d duplicated cell(s); those cells re-run\n",
					l.DroppedTail, l.DroppedDuplicates)
			}
		} else {
			if *resume {
				// Tolerated so kill/resume loops can use one command line;
				// noted so a typo'd path does not pass silently.
				fmt.Fprintf(stderr, "llcsweep: resume: checkpoint %s not found, starting fresh\n", *ckptFile)
			}
			l, err := artifact.Create(*ckptFile, fp)
			if err != nil {
				fmt.Fprintf(stderr, "llcsweep: %v\n", err)
				return 2
			}
			ckpt = l
		}
		defer ckpt.Close()
	}
	// With -o, write to a temp file in the target directory and rename
	// into place only on full success: creating it up front fails fast on
	// an unwritable path (before hours of grid compute), and a sweep or
	// write error leaves any previous artifact at that path untouched.
	out := stdout
	var file *os.File
	var tmpPath string
	if *outFile != "" {
		f, err := os.CreateTemp(filepath.Dir(*outFile), filepath.Base(*outFile)+".tmp-*")
		if err != nil {
			fmt.Fprintf(stderr, "llcsweep: %v\n", err)
			return 1
		}
		file = f
		tmpPath = f.Name()
		out = f
	}
	// fail is the single cleanup path for every post-open error: drop the
	// temp file (Close after an earlier Close is harmless) so no .tmp-*
	// litter or truncated artifact survives a failed run.
	fail := func(err error) int {
		if file != nil {
			file.Close()
			os.Remove(tmpPath)
		}
		fmt.Fprintf(stderr, "llcsweep: %v\n", err)
		return 1
	}

	if file != nil {
		// CreateTemp's restrictive 0600 would survive the rename; use the
		// conventional artifact mode instead (as git does for checkouts).
		// Deliberately not umask-derived: reading the umask portably
		// requires Unix-only, process-global syscall.Umask flips.
		if err := file.Chmod(0o644); err != nil {
			return fail(err)
		}
	}

	// Profiles bracket only the sweep run — spec plumbing and artifact
	// writing stay outside — and go to their own files, so profiling
	// cannot perturb the byte-identical artifact.
	stopProf, err := profiling.StartWith(profiling.Config{
		CPUFile: *cpuProf, MemFile: *memProf,
		BlockFile: *blockProf, MutexFile: *mutexProf,
	})
	if err != nil {
		return fail(err)
	}
	// The sink stays nil unless -trace/-metrics asked for telemetry —
	// the exact disabled path; a telemetered run's artifact is
	// byte-identical anyway (determinism clause 10).
	var sink *obs.Sink
	if *traceFile != "" || *metrics {
		sink = &obs.Sink{}
		if *traceFile != "" {
			sink.Tracer = obs.NewTracer()
		}
		if *metrics {
			sink.Metrics = obs.NewRegistry()
		}
	}
	// emitObs writes the trace file (temp + rename) and the stderr
	// metrics summary after the run; it must run on the shard early-exit
	// path too.
	emitObs := func() error {
		if sink == nil {
			return nil
		}
		if sink.Tracer != nil {
			if err := writeTrace(*traceFile, sink.Tracer); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "llcsweep: trace: %d spans -> %s\n", sink.Tracer.Len(), *traceFile)
		}
		if sink.Metrics != nil {
			fmt.Fprintln(stderr, "llcsweep: metrics:")
			if err := sink.Metrics.WritePrometheus(stderr); err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	var res *sweep.Result
	if ckpt != nil {
		// Campaign path: cells shard across workers and checkpoint as
		// they complete. Progress lines go to stderr (the artifact stays
		// byte-identical to the flattened sweep.Run path).
		var stats *campaign.Stats
		res, stats, err = campaign.Run(ctx, spec, campaign.Options{
			Workers:    *parallel,
			Log:        ckpt,
			ShardIndex: shardIdx,
			ShardCount: shardCnt,
			Obs:        sink,
			OnCell: func(ev campaign.Event) {
				if ev.Skipped {
					return // summarised once below; grids can have many cells
				}
				fmt.Fprintf(stderr, "llcsweep: cell %d/%d done %s\n", ev.Done, ev.Total, ev.Coords)
			},
		})
		if stats != nil && stats.Skipped > 0 {
			fmt.Fprintf(stderr, "llcsweep: resume: skipped %d verified cell(s), ran %d of %d\n",
				stats.Skipped, stats.Ran, stats.Cells)
		}
		if err == nil && shardCnt > 0 {
			// A shard's output is its checkpoint log; there is nothing to
			// aggregate until the shard logs are merged.
			if perr := stopProf(); perr != nil {
				return fail(perr)
			}
			if oerr := emitObs(); oerr != nil {
				return fail(oerr)
			}
			fmt.Fprintf(stderr, "llcsweep: shard %d/%d: ran %d and skipped %d of its %d cell(s), wall time %s\n",
				shardIdx, shardCnt, stats.Ran, stats.Skipped, stats.Cells, time.Since(start).Round(time.Millisecond))
			return 0
		}
	} else {
		res, err = sweep.RunObs(ctx, spec, *parallel, sink)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		return fail(err)
	}
	if oerr := emitObs(); oerr != nil {
		return fail(oerr)
	}
	// Wall time goes to stderr so the artifact stays byte-identical
	// across runs and worker counts (the determinism contract).
	fmt.Fprintf(stderr, "llcsweep: %d cells x %d trials, wall time %s\n",
		len(res.Cells), res.Spec.Trials, time.Since(start).Round(time.Millisecond))
	if *asCSV {
		err = res.WriteCSV(out)
	} else {
		err = res.WriteJSON(out)
	}
	if file == nil {
		if err != nil {
			fmt.Fprintf(stderr, "llcsweep: %v\n", err)
			return 1
		}
		return 0
	}
	// Close errors matter: a writeback that fails at close (ENOSPC,
	// networked filesystems) must not install a truncated artifact.
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, *outFile); err != nil {
		return fail(err)
	}
	return 0
}

// writeTrace installs the trace file atomically (temp + rename, the
// artifact convention) so a crash mid-write never leaves a truncated
// trace.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = f.Chmod(0o644)
	if err == nil {
		err = tr.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
	}
	return err
}

// parseShard parses a -shard value "i/N" into (i, N), requiring
// 0 <= i < N.
func parseShard(s string) (int, int, error) {
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		i, err1 := strconv.Atoi(strings.TrimSpace(is))
		n, err2 := strconv.Atoi(strings.TrimSpace(ns))
		if err1 == nil && err2 == nil && n >= 1 && i >= 0 && i < n {
			return i, n, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -shard %q: want i/N with 0 <= i < N", s)
}

// mergeStrings overrides base with the comma-separated flag value when
// the flag was set.
func mergeStrings(base []string, flagVal string) ([]string, error) {
	if flagVal == "" {
		return base, nil
	}
	var out []string
	for _, p := range strings.Split(flagVal, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty element in list %q", flagVal)
		}
		out = append(out, p)
	}
	return out, nil
}

// mergeInts is mergeStrings for integer axes.
func mergeInts(base []int, flagVal string) ([]int, error) {
	parts, err := mergeStrings(nil, flagVal)
	if err != nil || parts == nil {
		return base, err
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", p, flagVal)
		}
		out[i] = v
	}
	return out, nil
}

// mergeFloats is mergeStrings for float axes.
func mergeFloats(base []float64, flagVal string) ([]float64, error) {
	parts, err := mergeStrings(nil, flagVal)
	if err != nil || parts == nil {
		return base, err
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in %q", p, flagVal)
		}
		out[i] = v
	}
	return out, nil
}
