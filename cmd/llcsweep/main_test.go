package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// tinyArgs is a fast 4-cell grid (2 experiments x 2 policies, 3 trials)
// shared by the checkpoint tests.
func tinyArgs(extra ...string) []string {
	args := []string{
		"-experiments", "evset/bins,probe/parallel",
		"-policies", "LRU,QLRU",
		"-trials", "3",
		"-seed", "7",
		"-parallel", "2",
	}
	return append(args, extra...)
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), tinyArgs("-resume"), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-resume requires -checkpoint") {
		t.Fatalf("stderr does not explain the flag dependency: %s", stderr.String())
	}
}

func TestExistingCheckpointRequiresResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "grid.cells")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), tinyArgs("-checkpoint", ck), &stdout, &stderr); code != 0 {
		t.Fatalf("first run: exit %d, stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	// Rerunning against the finished log without -resume must refuse:
	// silently overwriting a checkpoint is exactly the data loss the
	// flag exists to prevent.
	if code := run(context.Background(), tinyArgs("-checkpoint", ck), &stdout, &stderr); code != 2 {
		t.Fatalf("rerun without -resume: exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pass -resume") {
		t.Fatalf("stderr does not point at -resume: %s", stderr.String())
	}
}

// TestResumedArtifactByteIdentical runs the grid three ways — flat
// (no checkpoint), checkpointed from scratch, and resumed against the
// finished log — and requires all three artifacts byte-identical. The
// resume pass must also report every cell as skipped.
func TestResumedArtifactByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "grid.cells")

	var flat, ckpt, resumed, stderr bytes.Buffer
	if code := run(context.Background(), tinyArgs(), &flat, &stderr); code != 0 {
		t.Fatalf("flat run: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), tinyArgs("-checkpoint", ck), &ckpt, &stderr); code != 0 {
		t.Fatalf("checkpointed run: exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(flat.Bytes(), ckpt.Bytes()) {
		t.Fatalf("checkpointed artifact differs from the flat sweep artifact")
	}
	stderr.Reset()
	if code := run(context.Background(), tinyArgs("-checkpoint", ck, "-resume"), &resumed, &stderr); code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(flat.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed artifact differs from the flat sweep artifact")
	}
	if !strings.Contains(stderr.String(), "skipped 4 verified cell(s), ran 0 of 4") {
		t.Fatalf("resume summary missing or wrong: %s", stderr.String())
	}
}

func TestResumeAgainstWrongSpecRejected(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "grid.cells")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), tinyArgs("-checkpoint", ck), &stdout, &stderr); code != 0 {
		t.Fatalf("first run: exit %d, stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	// Same log, different seed: the fingerprint check must refuse to mix
	// two grids rather than aggregate stale samples.
	args := tinyArgs("-checkpoint", ck, "-resume")
	for i, a := range args {
		if a == "7" {
			args[i] = "8"
		}
	}
	if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
		t.Fatalf("resume with changed seed: exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fingerprint") {
		t.Fatalf("stderr does not mention the fingerprint mismatch: %s", stderr.String())
	}
}

// TestInterruptRemovesTempArtifact is the regression test for the
// staging-file leak: SIGINT mid-sweep must cancel the run, remove the
// .tmp-* staging file next to -o, leave the -o target absent, and exit
// non-zero. Before the signal-context fix, the default SIGINT
// disposition killed the process with the temp file still on disk.
func TestInterruptRemovesTempArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "llcsweep")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	outPath := filepath.Join(dir, "artifact.json")
	// A grid long enough that the SIGINT always lands mid-run:
	// probe/parallel at ~2.5ms/trial sequential gives tens of seconds.
	cmd := exec.Command(bin,
		"-experiments", "probe/parallel", "-policies", "LRU",
		"-trials", "20000", "-parallel", "1", "-o", outPath)
	var childErr bytes.Buffer
	cmd.Stderr = &childErr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}

	// The staging file is created before compute starts; wait for it so
	// the signal provably arrives while the sweep is running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(dir, "artifact.json.tmp-*")); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("staging file never appeared; child stderr: %s", childErr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signal: %v", err)
	}
	err = cmd.Wait()
	if err == nil {
		t.Fatalf("child exited 0 after SIGINT; stderr: %s", childErr.String())
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() < 1 {
		// ExitCode -1 would mean death BY the signal — i.e. the handler
		// never ran and cleanup cannot have happened.
		t.Fatalf("child did not exit cleanly non-zero: %v; stderr: %s", err, childErr.String())
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "artifact.json.tmp-*")); len(m) > 0 {
		t.Fatalf("staging litter survived SIGINT: %v", m)
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatalf("interrupted run installed an artifact at %s", outPath)
	}
	if !strings.Contains(childErr.String(), "context canceled") && !strings.Contains(childErr.String(), "interrupt") {
		t.Fatalf("child stderr does not attribute the failure to the signal: %s", childErr.String())
	}
}

// TestShardMergeCLI is the end-to-end tentpole flow at the CLI level:
// run the grid as 3 separate -shard invocations, -merge the logs, and
// require the merged log byte-identical to a sequential
// single-process checkpoint plus a resume that skips every cell and
// emits the byte-identical artifact.
func TestShardMergeCLI(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.cells")

	var refOut, stderr bytes.Buffer
	if code := run(context.Background(), tinyArgs("-parallel", "1", "-checkpoint", ref), &refOut, &stderr); code != 0 {
		t.Fatalf("reference run: exit %d, stderr: %s", code, stderr.String())
	}

	var shardLogs []string
	for i := range 3 {
		p := filepath.Join(dir, fmt.Sprintf("s%d.cells", i))
		shardLogs = append(shardLogs, p)
		var stdout bytes.Buffer
		stderr.Reset()
		code := run(context.Background(), tinyArgs("-shard", fmt.Sprintf("%d/3", i), "-checkpoint", p), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("shard %d: exit %d, stderr: %s", i, code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Fatalf("shard %d wrote an artifact to stdout: %q", i, stdout.String())
		}
		if !strings.Contains(stderr.String(), fmt.Sprintf("shard %d/3", i)) {
			t.Fatalf("shard %d summary missing: %s", i, stderr.String())
		}
	}

	merged := filepath.Join(dir, "merged.cells")
	var stdout bytes.Buffer
	stderr.Reset()
	code := run(context.Background(), tinyArgs("-merge", strings.Join(shardLogs, ","), "-checkpoint", merged), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "merged 3 log(s)") || !strings.Contains(stderr.String(), "0 grid cell(s) still missing") {
		t.Fatalf("merge summary missing: %s", stderr.String())
	}
	refBytes, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatal("merged log differs from the single-process checkpoint log")
	}

	var resumed bytes.Buffer
	stderr.Reset()
	if code := run(context.Background(), tinyArgs("-checkpoint", merged, "-resume"), &resumed, &stderr); code != 0 {
		t.Fatalf("resume from merged: exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(refOut.Bytes(), resumed.Bytes()) {
		t.Fatal("artifact resumed from the merged log differs from the single-process artifact")
	}
	if !strings.Contains(stderr.String(), "skipped 4 verified cell(s), ran 0 of 4") {
		t.Fatalf("resume after merge re-ran cells: %s", stderr.String())
	}
}

// TestShardMergeFlagValidation pins the usage errors: malformed -shard
// values, -shard without -checkpoint or with artifact outputs, -merge
// with -resume, and -shard with -merge are all exit 2 before any work.
func TestShardMergeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "x.cells")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad shard syntax", tinyArgs("-shard", "nope", "-checkpoint", ck), "bad -shard"},
		{"shard index out of range", tinyArgs("-shard", "3/3", "-checkpoint", ck), "bad -shard"},
		{"negative shard", tinyArgs("-shard", "-1/3", "-checkpoint", ck), "bad -shard"},
		{"shard needs checkpoint", tinyArgs("-shard", "0/3"), "-shard requires -checkpoint"},
		{"shard rejects -o", tinyArgs("-shard", "0/3", "-checkpoint", ck, "-o", filepath.Join(dir, "o.json")), "produces no aggregate artifact"},
		{"merge needs checkpoint", tinyArgs("-merge", "a.cells,b.cells"), "-merge requires -checkpoint"},
		{"merge rejects resume", tinyArgs("-merge", "a.cells,b.cells", "-checkpoint", ck, "-resume"), "-merge and -resume"},
		{"shard and merge exclusive", tinyArgs("-shard", "0/3", "-merge", "a.cells", "-checkpoint", ck), "mutually exclusive"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), tc.args, &stdout, &stderr); code != 2 {
			t.Fatalf("%s: exit %d, want 2; stderr: %s", tc.name, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Fatalf("%s: stderr %q does not contain %q", tc.name, stderr.String(), tc.want)
		}
	}
}

// TestResumeRecreatesTornHeader: a checkpoint torn before the header
// sync holds zero verified records; -resume must recreate it and run
// the full grid instead of failing forever.
func TestResumeRecreatesTornHeader(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "torn.cells")
	if err := os.WriteFile(ck, []byte("LLCA\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	var flat, got, stderr bytes.Buffer
	if code := run(context.Background(), tinyArgs(), &flat, &stderr); code != 0 {
		t.Fatalf("flat run: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), tinyArgs("-checkpoint", ck, "-resume"), &got, &stderr); code != 0 {
		t.Fatalf("resume over torn header: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "recreating") {
		t.Fatalf("recovery notice missing: %s", stderr.String())
	}
	if !bytes.Equal(flat.Bytes(), got.Bytes()) {
		t.Fatal("artifact after torn-header recovery differs from the flat run")
	}
}
