package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestObsByteIdentity pins determinism clause 10 for llcsweep: a 2x2
// grid's artifact is byte-identical with and without -trace/-metrics,
// at -parallel 1 and 8; the trace parses as Chrome trace_event JSON
// with one named process per grid cell, and the -metrics stderr dump
// carries the engine's trial counters in Prometheus text.
func TestObsByteIdentity(t *testing.T) {
	base := []string{
		"-experiments", "evset/bins,scenario/covert/channel/stream",
		"-policies", "LRU,QLRU",
		"-trials", "3", "-seed", "7",
	}
	runSweep := func(extra ...string) (stdout, stderr bytes.Buffer) {
		t.Helper()
		var code int
		if code = run(context.Background(), append(append([]string{}, base...), extra...), &stdout, &stderr); code != 0 {
			t.Fatalf("run %v exited %d: %s", extra, code, stderr.String())
		}
		return
	}

	plain, _ := runSweep("-parallel", "1")
	want := plain.Bytes()

	for _, workers := range []int{1, 8} {
		tracePath := filepath.Join(t.TempDir(), "trace.json")
		stdout, stderr := runSweep(
			"-parallel", strconv.Itoa(workers),
			"-trace", tracePath, "-metrics",
		)
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-parallel=%d: telemetered artifact drifted from the plain run", workers)
		}

		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Cat  string `json:"cat"`
				Ph   string `json:"ph"`
				PID  int    `json:"pid"`
				Args struct {
					Name string `json:"name"`
				} `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("-parallel=%d: trace is not valid JSON: %v", workers, err)
		}
		cells := make(map[string]bool)
		spans := 0
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" && ev.Name == "process_name" {
				cells[ev.Args.Name] = true
			}
			if ev.Ph == "X" {
				spans++
			}
		}
		// 2 experiments x 2 policies = 4 cell processes.
		if len(cells) != 4 {
			t.Errorf("-parallel=%d: trace names %d cell processes, want 4: %v", workers, len(cells), cells)
		}
		for _, frag := range []string{"evset/bins", "scenario/covert/channel/stream", "LRU", "QLRU"} {
			found := false
			for name := range cells {
				if strings.Contains(name, frag) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("-parallel=%d: no cell process name mentions %q: %v", workers, frag, cells)
			}
		}
		if spans == 0 {
			t.Errorf("-parallel=%d: trace holds no spans", workers)
		}

		// The metrics dump is Prometheus text on stderr after the marker
		// line; 4 cells x 3 trials = 12 engine trials.
		serr := stderr.String()
		if !strings.Contains(serr, "llcsweep: metrics:") {
			t.Fatalf("-parallel=%d: stderr lacks the metrics marker:\n%s", workers, serr)
		}
		for _, wantLine := range []string{
			"# TYPE engine_trials_total counter",
			"engine_trials_total 12",
			"# TYPE engine_trial_seconds histogram",
			"engine_trial_seconds_count 12",
		} {
			if !strings.Contains(serr, wantLine) {
				t.Errorf("-parallel=%d: metrics dump lacks %q:\n%s", workers, wantLine, serr)
			}
		}
	}
}

// TestObsCheckpointCampaignMetrics covers the campaign path: a
// checkpointed run with -metrics reports the campaign counters
// (computed cells, append bytes, per-cell histogram) and a resumed
// rerun reports every cell as resumed — while both artifacts stay
// byte-identical to the flattened run's.
func TestObsCheckpointCampaignMetrics(t *testing.T) {
	base := []string{
		"-experiments", "evset/bins,probe/parallel",
		"-policies", "LRU,QLRU",
		"-trials", "3", "-seed", "7",
	}
	var plain bytes.Buffer
	if code := run(context.Background(), append(append([]string{}, base...), "-parallel", "1"), &plain, &bytes.Buffer{}); code != 0 {
		t.Fatal("plain run failed")
	}

	ckpt := filepath.Join(t.TempDir(), "grid.cells")
	var out1, err1 bytes.Buffer
	args1 := append(append([]string{}, base...), "-checkpoint", ckpt, "-metrics", "-parallel", "2")
	if code := run(context.Background(), args1, &out1, &err1); code != 0 {
		t.Fatalf("checkpointed run exited %d: %s", code, err1.String())
	}
	if !bytes.Equal(out1.Bytes(), plain.Bytes()) {
		t.Error("checkpointed telemetered artifact drifted from the plain run")
	}
	for _, want := range []string{
		`campaign_cells_total{state="computed"} 4`,
		"# TYPE campaign_cell_seconds histogram",
		"campaign_cell_seconds_count 4",
		"# TYPE campaign_append_bytes_total counter",
	} {
		if !strings.Contains(err1.String(), want) {
			t.Errorf("checkpointed metrics lack %q:\n%s", want, err1.String())
		}
	}

	var out2, err2 bytes.Buffer
	args2 := append(append([]string{}, base...), "-checkpoint", ckpt, "-resume", "-metrics", "-parallel", "2")
	if code := run(context.Background(), args2, &out2, &err2); code != 0 {
		t.Fatalf("resumed run exited %d: %s", code, err2.String())
	}
	if !bytes.Equal(out2.Bytes(), plain.Bytes()) {
		t.Error("resumed telemetered artifact drifted from the plain run")
	}
	if !strings.Contains(err2.String(), `campaign_cells_total{state="resumed"} 4`) {
		t.Errorf("resumed metrics lack the resumed counter:\n%s", err2.String())
	}
}
