package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// TestKeyRecoveryGolden is the byte-level regression gate on the full
// attack chain: a fixed-seed `llcattack -scenario e2e/keyrecovery` run
// must recover the victim's sect163 private key (the scenario sets
// KeyRecovered only when the recovered d equals the ground-truth key)
// and reproduce the committed JSON report exactly, at any worker count,
// on the architecture that generated it (cross-architecture runs may
// shift a float summary by a last ulp via fused multiply-add). If a
// change is intentional, regenerate with
// `go test ./cmd/llcattack -run TestKeyRecoveryGolden -update`.
func TestKeyRecoveryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end key recovery is slow")
	}
	args := []string{"-scenario", "e2e/keyrecovery", "-trials", "2", "-seed", "2"}
	golden := filepath.Join("testdata", "keyrecovery_trials2_seed2.golden.json")

	for _, workers := range []int{1, 8} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), append(args, "-parallel", strconv.Itoa(workers)), &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if *update && workers == 1 {
			if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", golden, stdout.Len())
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create it): %v", err)
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-parallel=%d output drifted from %s:\ngot:\n%s\nwant:\n%s",
				workers, golden, stdout.Bytes(), want)
		}
	}

	// The committed artifact itself must certify a full key recovery:
	// every trial's recovered key matched the victim's ground truth.
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Trials    int `json:"trials"`
		Aggregate struct {
			Successes     int `json:"successes"`
			KeysRecovered int `json:"keys_recovered"`
		} `json:"aggregate"`
		Outcomes []struct {
			KeyRecovered bool `json:"key_recovered"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("golden is not a report: %v", err)
	}
	if rep.Trials != 2 || rep.Aggregate.KeysRecovered != 2 || rep.Aggregate.Successes != 2 {
		t.Fatalf("golden does not certify full key recovery: %+v", rep.Aggregate)
	}
	for i, o := range rep.Outcomes {
		if !o.KeyRecovered {
			t.Fatalf("trial %d did not recover the key", i)
		}
	}
}

// TestStreamTenantGolden pins one structured-tenant scenario variant
// byte-for-byte: covert/channel/stream (a streaming background tenant
// sweeping set indices) at a fixed seed, identical at any worker count.
// Regenerate after an intentional change with
// `go test ./cmd/llcattack -run TestStreamTenantGolden -update`.
func TestStreamTenantGolden(t *testing.T) {
	args := []string{"-scenario", "covert/channel/stream", "-trials", "4", "-seed", "5"}
	golden := filepath.Join("testdata", "covertstream_trials4_seed5.golden.json")

	for _, workers := range []int{1, 8} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), append(args, "-parallel", strconv.Itoa(workers)), &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if *update && workers == 1 {
			if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", golden, stdout.Len())
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create it): %v", err)
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-parallel=%d output drifted from %s:\ngot:\n%s\nwant:\n%s",
				workers, golden, stdout.Bytes(), want)
		}
	}
}

// TestQuiesceDefenseGolden pins one defended scenario variant
// byte-for-byte: covert/channel/quiesce (quantized probe feedback) at a
// fixed seed, identical at any worker count. The committed artifact
// certifies the defense: every trial fails (the channel is unusable
// under a 512-cycle timer quantum). Regenerate after an intentional
// change with `go test ./cmd/llcattack -run TestQuiesceDefenseGolden
// -update`.
func TestQuiesceDefenseGolden(t *testing.T) {
	args := []string{"-scenario", "covert/channel/quiesce", "-trials", "4", "-seed", "5"}
	golden := filepath.Join("testdata", "covertquiesce_trials4_seed5.golden.json")

	for _, workers := range []int{1, 8} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), append(args, "-parallel", strconv.Itoa(workers)), &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if *update && workers == 1 {
			if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", golden, stdout.Len())
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create it): %v", err)
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-parallel=%d output drifted from %s:\ngot:\n%s\nwant:\n%s",
				workers, golden, stdout.Bytes(), want)
		}
	}

	// The committed artifact itself must certify the defense worked:
	// zero successful trials.
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Trials    int `json:"trials"`
		Aggregate struct {
			Successes int `json:"successes"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("golden is not a report: %v", err)
	}
	if rep.Trials != 4 || rep.Aggregate.Successes != 0 {
		t.Fatalf("golden does not certify the defense: %d/%d trials succeeded",
			rep.Aggregate.Successes, rep.Trials)
	}
}

// TestDefenseFlag covers the -defense override path: a bad spec is a
// usage error; a good spec is recorded in the report; an override that
// fails geometry validation is a graceful error, not a panic.
func TestDefenseFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-scenario", "scan/psd", "-defense", "moat"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad defense spec: exit %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	// partition:ways=7 equals the scaled host's LLC associativity: the
	// geometry cross-check must reject it without panicking.
	if code := run(context.Background(), []string{"-scenario", "scan/psd", "-trials", "1", "-seed", "4",
		"-defense", "partition:ways=7"}, &stdout, &stderr); code != 1 {
		t.Errorf("invalid partition geometry: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	code := run(context.Background(), []string{"-scenario", "covert/channel", "-trials", "1", "-seed", "4",
		"-defense", "quiesce:quantum=128"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("defense override run exited %d: %s", code, stderr.String())
	}
	var rep struct {
		Defense *struct {
			Model   string  `json:"model"`
			Quantum float64 `json:"quantum"`
		} `json:"defense"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Defense == nil || rep.Defense.Model != "quiesce" || rep.Defense.Quantum != 128 {
		t.Errorf("report does not self-describe the defense override: %+v", rep.Defense)
	}
}

// TestTenantsFlag covers the -tenants override path: a bad spec is a
// usage error; a good spec is recorded in the report.
func TestTenantsFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-scenario", "scan/psd", "-tenants", "warp:rate=1"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad tenant spec: exit %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	code := run(context.Background(), []string{"-scenario", "covert/channel", "-trials", "1", "-seed", "4",
		"-tenants", "burst:rate=34.5,on_frac=0.2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("tenant override run exited %d: %s", code, stderr.String())
	}
	var rep struct {
		Tenants []struct {
			Model string  `json:"model"`
			Rate  float64 `json:"rate"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Model != "burst" || rep.Tenants[0].Rate != 34.5 {
		t.Errorf("report does not self-describe the tenant override: %+v", rep.Tenants)
	}
}

func TestRunBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-scenario", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown scenario: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-scenario", "scan/psd", "-trials", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("zero trials: exit %d, want 2", code)
	}
	stdout.Reset()
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 || stdout.Len() == 0 {
		t.Errorf("-list: exit %d, output %q", code, stdout.String())
	}
}
