package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// traceDoc mirrors the Chrome trace_event JSON the -trace flag writes.
type traceDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
		Args struct {
			Name      string `json:"name"`
			SimCycles int64  `json:"sim_cycles"`
			WallUs    any    `json:"wall_us"`
			OK        any    `json:"ok"`
		} `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceByteIdentity pins determinism clause 10 for llcattack: the
// report written with -trace is byte-identical to the committed golden
// written without it, at -parallel 1 and 8, and the trace itself is a
// parseable Chrome trace_event document whose per-trial cat="phase"
// sim-cycle totals sum exactly to that trial's reported cycle budget
// (the "unattributed" filler span closes any gap by construction).
func TestTraceByteIdentity(t *testing.T) {
	golden := filepath.Join("testdata", "covertstream_trials4_seed5.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var rep struct {
		Outcomes []struct {
			TotalCycles int64 `json:"total_cycles"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatalf("golden is not a report: %v", err)
	}

	for _, workers := range []int{1, 8} {
		tracePath := filepath.Join(t.TempDir(), "trace.json")
		args := []string{
			"-scenario", "covert/channel/stream", "-trials", "4", "-seed", "5",
			"-parallel", strconv.Itoa(workers), "-trace", tracePath,
		}
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-parallel=%d: traced report drifted from the untraced golden %s", workers, golden)
		}

		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		var doc traceDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("-parallel=%d: trace is not valid JSON: %v", workers, err)
		}

		// The scenario process must be named, and every expected phase of
		// the covert-channel pipeline must appear.
		named := false
		phases := make(map[string]bool)
		perTrial := make(map[int]int64)
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" && ev.Name == "process_name" && ev.Args.Name == "scenario covert/channel/stream" {
				named = true
			}
			if ev.Cat == "phase" {
				if ev.Ph != "X" {
					t.Fatalf("phase span %q has ph=%q, want X", ev.Name, ev.Ph)
				}
				phases[ev.Name] = true
				perTrial[ev.TID] += ev.Args.SimCycles
			}
		}
		if !named {
			t.Error("trace has no process_name metadata for the scenario")
		}
		for _, want := range []string{"build", "channel"} {
			if !phases[want] {
				t.Errorf("trace lacks phase %q; got %v", want, phases)
			}
		}

		// Clause 10's attribution guarantee: phase spans partition each
		// trial's simulated time exactly.
		if len(perTrial) != len(rep.Outcomes) {
			t.Fatalf("trace covers %d trials, report has %d outcomes", len(perTrial), len(rep.Outcomes))
		}
		for tid, sum := range perTrial {
			if want := rep.Outcomes[tid].TotalCycles; sum != want {
				t.Errorf("trial %d: phase spans sum to %d sim cycles, report says %d", tid, sum, want)
			}
		}
	}
}
