// Command llcattack runs end-to-end attack scenarios from the registry
// in internal/scenario: each trial executes one FULL pipeline (eviction
// sets -> PSD scan -> Parallel-Probing extraction -> optionally lattice
// key recovery, or a covert channel) on a pooled simulated host, and the
// report aggregates success rates (with Wilson 95% intervals), per-step
// cycle budgets, and latency distributions across trials.
//
//	llcattack -list                                  # scenario ids + tenant/defense models
//	llcattack -scenario e2e/keyrecovery -trials 8    # one report
//	llcattack -scenario e2e/extract -tenants "burst:rate=34.5,on_frac=0.1"
//	llcattack -scenario e2e/extract -defense partition:ways=4
//
// The report is JSON on stdout (or -o) and is byte-identical for every
// -parallel value on the architecture that runs it; wall-clock timing
// goes to stderr, never into the report (the determinism contract shared
// with cmd/llcrepro and cmd/llcsweep).
//
// -trace FILE additionally writes a Chrome trace_event JSON file
// (load it in Perfetto or chrome://tracing): one process per scenario,
// one thread per trial, one cat="phase" span per pipeline step on the
// SIMULATED-cycle timeline (per-trial phase spans sum exactly to the
// trial's cycle budget), with host wall time per phase in each span's
// args — which is how a phase that is cheap in simulated time but
// expensive on the host (e.g. the Norm-jitter wall) is located. Tracing
// never changes a report byte (determinism clause 10).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/defense"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/tenant"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: the scenario stops on the
	// next trial boundary, the temp report is removed, and the process
	// exits non-zero — no .tmp-* litter, no truncated report. A second
	// signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code surfaced, so the golden
// and determinism tests can execute the CLI in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llcattack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id        = fs.String("scenario", "", "scenario id to run (see -list)")
		trials    = fs.Int("trials", 8, "independent end-to-end trials")
		seed      = fs.Uint64("seed", 1, "deterministic seed")
		parallel  = fs.Int("parallel", 0, "trial workers (0 = GOMAXPROCS, 1 = sequential); never changes the report")
		tenants   = fs.String("tenants", "", "background-tenant override: ';'-separated specs (\"burst:rate=34.5,on_frac=0.1\") or JSON (see -list)")
		def       = fs.String("defense", "", "LLC-defense override: one spec (\"partition:ways=4\") or \"none\" (see -list)")
		outFile   = fs.String("o", "", "write the report to a file instead of stdout")
		list      = fs.Bool("list", false, "list scenario ids, tenant models and defense models")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the scenario run to this file")
		memProf   = fs.String("memprofile", "", "write a post-run pprof heap profile to this file")
		blockProf = fs.String("blockprofile", "", "write a post-run pprof goroutine-blocking profile to this file")
		mutexProf = fs.String("mutexprofile", "", "write a post-run pprof mutex-contention profile to this file")
		traceFile = fs.String("trace", "", "write a Chrome trace_event JSON file of the run's phases (Perfetto-viewable); never changes the report")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, l := range scenario.List() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout, "\ntenant models (-tenants \"model:key=value,...\"):")
		for _, l := range tenant.ModelList() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout, "\ndefense models (-defense \"model:key=value,...\"):")
		for _, l := range defense.ModelList() {
			fmt.Fprintln(stdout, l)
		}
		return 0
	}
	specs, err := tenant.ParseList(*tenants)
	if err != nil {
		fmt.Fprintf(stderr, "llcattack: %v\n", err)
		return 2
	}
	defSpec, err := defense.ParseOpt(*def)
	if err != nil {
		fmt.Fprintf(stderr, "llcattack: %v\n", err)
		return 2
	}
	if *id == "" {
		fmt.Fprintln(stderr, "usage: llcattack -scenario <id> [-trials N] [-seed S] [-parallel K] [-tenants SPEC] [-defense SPEC] | -list")
		return 2
	}
	if _, ok := scenario.Lookup(*id); !ok {
		fmt.Fprintf(stderr, "llcattack: unknown scenario %q; try -list\n", *id)
		return 2
	}
	if *trials < 1 {
		fmt.Fprintf(stderr, "llcattack: trials must be >= 1, got %d\n", *trials)
		return 2
	}

	// With -o, write to a temp file in the target directory and rename
	// into place only on full success, so a failed run never truncates a
	// previous report (the llcsweep convention).
	out := stdout
	var file *os.File
	var tmpPath string
	if *outFile != "" {
		f, err := os.CreateTemp(filepath.Dir(*outFile), filepath.Base(*outFile)+".tmp-*")
		if err != nil {
			fmt.Fprintf(stderr, "llcattack: %v\n", err)
			return 1
		}
		file = f
		tmpPath = f.Name()
		out = f
	}
	fail := func(err error) int {
		if file != nil {
			file.Close()
			os.Remove(tmpPath)
		}
		fmt.Fprintf(stderr, "llcattack: %v\n", err)
		return 1
	}
	if file != nil {
		if err := file.Chmod(0o644); err != nil {
			return fail(err)
		}
	}

	// Profiles bracket only the scenario run — flag parsing and report
	// writing stay outside — and go to their own files, so profiling
	// cannot perturb the byte-identical report.
	stopProf, err := profiling.StartWith(profiling.Config{
		CPUFile: *cpuProf, MemFile: *memProf,
		BlockFile: *blockProf, MutexFile: *mutexProf,
	})
	if err != nil {
		return fail(err)
	}
	// The sink is nil unless -trace is set, which is the engine's exact
	// untraced path; a traced run's report is byte-identical anyway
	// (determinism clause 10, pinned by TestTraceByteIdentity).
	var sink *obs.Sink
	if *traceFile != "" {
		sink = &obs.Sink{Tracer: obs.NewTracer()}
	}
	start := time.Now()
	rep, err := scenario.RunWithObs(ctx, *id, specs, defSpec, *trials, *parallel, *seed, sink)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		return fail(err)
	}
	if sink != nil {
		if terr := writeTrace(*traceFile, sink.Tracer); terr != nil {
			return fail(terr)
		}
		fmt.Fprintf(stderr, "llcattack: trace: %d spans -> %s\n", sink.Tracer.Len(), *traceFile)
	}
	// Wall time goes to stderr so the report stays byte-identical across
	// runs and worker counts.
	fmt.Fprintf(stderr, "llcattack: %s x %d trials, %d/%d succeeded, wall time %s\n",
		*id, *trials, rep.Aggregate.Successes, *trials, time.Since(start).Round(time.Millisecond))
	err = rep.WriteJSON(out)
	if file == nil {
		if err != nil {
			fmt.Fprintf(stderr, "llcattack: %v\n", err)
			return 1
		}
		return 0
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, *outFile); err != nil {
		return fail(err)
	}
	return 0
}

// writeTrace installs the trace file atomically (temp + rename, the
// report convention), so a crash mid-write never leaves a truncated
// trace that a viewer would reject.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = f.Chmod(0o644)
	if err == nil {
		err = tr.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
	}
	return err
}
