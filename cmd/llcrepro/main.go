// Command llcrepro regenerates the paper's tables and figures on the
// simulated hosts. Run with -list to see the available experiment ids,
// -exp <id> to run one, or -all to run everything. -full switches to
// paper-scale geometry (28/22-slice Skylake-SP, sect571r1 victims) at a
// large simulation-time cost. -parallel fans each experiment's trials out
// over a worker pool; for a fixed -seed the reports are byte-identical at
// every worker count, so -parallel only changes wall-clock time (timings
// are printed to stderr, never into the report). -json emits the reports
// as machine-readable JSON instead of text tables. -tenants replaces
// every experiment's environment noise with structured background
// tenants (internal/tenant spec strings or JSON); -defense deploys an
// LLC countermeasure (internal/defense spec string) on every
// experiment's hosts.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/tenant"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code surfaced, so the golden
// regression test can execute the CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llcrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment id to run (see -list)")
		all      = fs.Bool("all", false, "run every experiment")
		list     = fs.Bool("list", false, "list experiment ids")
		full     = fs.Bool("full", false, "paper-scale geometry (slow)")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		trials   = fs.Int("trials", 0, "override trial counts (0 = default)")
		parallel = fs.Int("parallel", 0, "trial workers per experiment (0 = GOMAXPROCS, 1 = sequential)")
		tenants  = fs.String("tenants", "", "background-tenant override replacing the environment noise: ';'-separated specs or JSON (see -list)")
		def      = fs.String("defense", "", "LLC-defense override deployed on every experiment host: one spec (\"partition:ways=4\") or \"none\" (see -list)")
		asJSON   = fs.Bool("json", false, "emit reports as JSON instead of text tables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, l := range experiments.List() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout, "\ntenant models (-tenants \"model:key=value,...\"):")
		for _, l := range tenant.ModelList() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout, "\ndefense models (-defense \"model:key=value,...\"):")
		for _, l := range defense.ModelList() {
			fmt.Fprintln(stdout, l)
		}
		return 0
	}
	specs, err := tenant.ParseList(*tenants)
	if err != nil {
		fmt.Fprintf(stderr, "llcrepro: %v\n", err)
		return 2
	}
	defSpec, err := defense.ParseOpt(*def)
	if err != nil {
		fmt.Fprintf(stderr, "llcrepro: %v\n", err)
		return 2
	}
	opt := experiments.Options{Seed: *seed, Full: *full, Trials: *trials, Workers: *parallel, Tenants: specs, Defense: defSpec}
	ids := []string{}
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(stderr, "usage: llcrepro -exp <id> | -all | -list")
		return 2
	}
	for _, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; try -list\n", id)
			return 2
		}
		start := time.Now()
		rep := r(opt)
		// Wall time goes to stderr so stdout stays byte-identical across
		// runs and worker counts (the determinism contract).
		fmt.Fprintf(stderr, "%s: wall time %s\n", id, time.Since(start).Round(time.Millisecond))
		if *asJSON {
			if err := rep.FprintJSON(stdout); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			continue
		}
		rep.Fprint(stdout)
	}
	return 0
}
