// Command llcrepro regenerates the paper's tables and figures on the
// simulated hosts. Run with -list to see the available experiment ids,
// -exp <id> to run one, or -all to run everything. -full switches to
// paper-scale geometry (28/22-slice Skylake-SP, sect571r1 victims) at a
// large simulation-time cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment ids")
		full   = flag.Bool("full", false, "paper-scale geometry (slow)")
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		trials = flag.Int("trials", 0, "override trial counts (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, l := range experiments.List() {
			fmt.Println(l)
		}
		return
	}
	opt := experiments.Options{Seed: *seed, Full: *full, Trials: *trials}
	ids := []string{}
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "usage: llcrepro -exp <id> | -all | -list")
		os.Exit(2)
	}
	for _, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := r(opt)
		rep.Notes = append(rep.Notes, fmt.Sprintf("simulation wall time: %s", time.Since(start).Round(time.Millisecond)))
		rep.Fprint(os.Stdout)
	}
}
