// Command llcrepro regenerates the paper's tables and figures on the
// simulated hosts. Run with -list to see the available experiment ids,
// -exp <id> to run one, or -all to run everything. -full switches to
// paper-scale geometry (28/22-slice Skylake-SP, sect571r1 victims) at a
// large simulation-time cost. -parallel fans each experiment's trials out
// over a worker pool; for a fixed -seed the reports are byte-identical at
// every worker count, so -parallel only changes wall-clock time (timings
// are printed to stderr, never into the report). -json emits the reports
// as machine-readable JSON instead of text tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		full     = flag.Bool("full", false, "paper-scale geometry (slow)")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		trials   = flag.Int("trials", 0, "override trial counts (0 = default)")
		parallel = flag.Int("parallel", 0, "trial workers per experiment (0 = GOMAXPROCS, 1 = sequential)")
		asJSON   = flag.Bool("json", false, "emit reports as JSON instead of text tables")
	)
	flag.Parse()

	if *list {
		for _, l := range experiments.List() {
			fmt.Println(l)
		}
		return
	}
	opt := experiments.Options{Seed: *seed, Full: *full, Trials: *trials, Workers: *parallel}
	ids := []string{}
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "usage: llcrepro -exp <id> | -all | -list")
		os.Exit(2)
	}
	for _, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := r(opt)
		// Wall time goes to stderr so stdout stays byte-identical across
		// runs and worker counts (the determinism contract).
		fmt.Fprintf(os.Stderr, "%s: wall time %s\n", id, time.Since(start).Round(time.Millisecond))
		if *asJSON {
			if err := rep.FprintJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		rep.Fprint(os.Stdout)
	}
}
