package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// TestJSONGolden is the byte-level regression gate on `llcrepro -json`:
// the committed golden report must reproduce exactly at any worker
// count on the architecture that generated it (cross-architecture runs
// may shift a float summary by a last ulp via fused multiply-add). Any
// drift — a float formatting change, a row reordering, an accidental
// seed perturbation — fails this test; if the change is intentional,
// regenerate with `go test ./cmd/llcrepro -run TestJSONGolden -update`.
func TestJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	args := []string{"-exp", "fig3", "-trials", "2", "-seed", "7", "-json"}
	golden := filepath.Join("testdata", "fig3_trials2_seed7.golden.json")

	for _, workers := range []int{1, 8} {
		var stdout, stderr bytes.Buffer
		if code := run(append(args, "-parallel", strconv.Itoa(workers)), &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if *update && workers == 1 {
			if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", golden, stdout.Len())
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create it): %v", err)
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-parallel=%d output drifted from %s:\ngot:\n%s\nwant:\n%s",
				workers, golden, stdout.Bytes(), want)
		}
	}
}

func TestRunBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown experiment: exit %d, want 2", code)
	}
	if code := run([]string{"-exp", "fig2", "-defense", "moat"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad defense spec: exit %d, want 2", code)
	}
	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 || stdout.Len() == 0 {
		t.Errorf("-list: exit %d, output %q", code, stdout.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("defense models")) {
		t.Error("-list does not mention the defense registry")
	}
}

// TestDefenseOverride runs one cheap experiment against a defended
// host: the flag must thread through Options into every runner config
// without error.
func TestDefenseOverride(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig2", "-trials", "1", "-seed", "3",
		"-defense", "quiesce:quantum=128"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("defended fig2 exited %d: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("defended fig2 produced no report")
	}
}
