// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper (regenerating each result's core
// measurement), plus micro-benchmarks of the substrates. Run with
//
//	go test -bench=. -benchmem
//
// The full experiment protocols (with success rates and paper-value
// side-by-sides) live in cmd/llcrepro; these benchmarks time the
// underlying operations so regressions in the simulator or the attack
// algorithms are visible.
package repro_test

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/attack"
	"repro/internal/classify"
	"repro/internal/defense"
	"repro/internal/dsp"
	"repro/internal/ec2m"
	"repro/internal/ecdsa"
	"repro/internal/evset"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/scenario"
	"repro/internal/tenant"
	"repro/internal/xrand"
)

func cloudCfg() hierarchy.Config { return hierarchy.Scaled(4).WithCloudNoise() }

func newEnv(b *testing.B, seed uint64) (*evset.Env, *evset.Candidates) {
	b.Helper()
	h := hierarchy.NewHost(cloudCfg(), seed)
	e := evset.NewEnv(h, seed^0xbe)
	return e, evset.NewCandidates(e, evset.DefaultPoolSize(cloudCfg()), 0)
}

// --- Table 3: pruning without candidate filtering -------------------------

func benchTable3(b *testing.B, algo evset.Pruner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, cands := newEnv(b, uint64(i)+1)
		res := evset.BuildSF(e, algo, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
		_ = res
	}
}

func BenchmarkTable3_Gt(b *testing.B)   { benchTable3(b, evset.GroupTesting{EarlyTermination: true}) }
func BenchmarkTable3_GtOp(b *testing.B) { benchTable3(b, evset.GroupTesting{}) }
func BenchmarkTable3_Ps(b *testing.B)   { benchTable3(b, evset.PrimeScope{}) }

// --- Figure 2: background access monitoring --------------------------------

func BenchmarkFigure2_GapCapture(b *testing.B) {
	e, cands := newEnv(b, 2)
	res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		b.Fatal("setup failed")
	}
	m := probe.NewMonitor(e, probe.Parallel, res.Set.Lines)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Probe() {
			m.Prime()
		}
	}
}

// --- Figure 3: TestEviction implementations -------------------------------

func BenchmarkFigure3_ParallelTestEviction(b *testing.B) {
	e, cands := newEnv(b, 3)
	ta := cands.Addrs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TestEviction(evset.TargetLLC, ta, cands.Addrs[1:], len(cands.Addrs)-1, true)
	}
}

func BenchmarkFigure3_SequentialTestEviction(b *testing.B) {
	e, cands := newEnv(b, 4)
	ta := cands.Addrs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TestEviction(evset.TargetLLC, ta, cands.Addrs[1:], len(cands.Addrs)-1, false)
	}
}

// --- Table 4: filtered construction ----------------------------------------

func benchTable4Single(b *testing.B, algo evset.Pruner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, cands := newEnv(b, uint64(i)+40)
		res, _ := evset.BuildSingle(e, cands.Addrs[0], cands, evset.BulkOptions{Algo: algo, PerSet: evset.FilteredOptions()})
		_ = res
	}
}

func BenchmarkTable4_SingleSet_BinS(b *testing.B) { benchTable4Single(b, evset.BinSearch{}) }
func BenchmarkTable4_SingleSet_GtOp(b *testing.B) { benchTable4Single(b, evset.GroupTesting{}) }

func BenchmarkTable4_PageOffset_BinS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, cands := newEnv(b, uint64(i)+60)
		evset.BuildPageOffset(e, cands, evset.BulkOptions{Algo: evset.BinSearch{}, PerSet: evset.FilteredOptions()})
	}
}

// --- §5.3.1: candidate filtering -------------------------------------------

func BenchmarkFilter_PartitionByL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, cands := newEnv(b, uint64(i)+80)
		evset.PartitionByL2(e, cands.Addrs, evset.FilteredOptions())
	}
}

// --- §5.3.2: associativity scaling (Ice Lake) -------------------------------

func BenchmarkIceLake_BinS_L2(b *testing.B) {
	cfg := hierarchy.IceLakeSP(4).WithQuiescentNoise()
	for i := 0; i < b.N; i++ {
		h := hierarchy.NewHost(cfg, uint64(i)+1)
		e := evset.NewEnv(h, uint64(i)^0x1c)
		cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
		if _, err := evset.BuildL2(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5 / Figure 6: monitoring strategies ------------------------------

func benchPrime(b *testing.B, strat probe.Strategy) {
	b.Helper()
	e, cands := newEnv(b, 5)
	res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		b.Fatal("setup failed")
	}
	m := probe.NewMonitor(e, strat, res.Set.Lines).WithAlt(res.Set.Lines)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prime()
	}
}

func BenchmarkTable5_PrimeParallel(b *testing.B) { benchPrime(b, probe.Parallel) }
func BenchmarkTable5_PrimePSFlush(b *testing.B)  { benchPrime(b, probe.PSFlush) }
func BenchmarkTable5_PrimePSAlt(b *testing.B)    { benchPrime(b, probe.PSAlt) }

func BenchmarkFigure6_CovertChannelParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, cands := newEnv(b, uint64(i)+90)
		res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
		if !res.OK {
			continue
		}
		// Sender line: privileged congruent pick.
		target := e.Main.SetOf(res.Set.Ta)
		var sender memory.PAddr
		for _, va := range cands.Addrs[1:] {
			if e.Main.SetOf(va) == target {
				sender = e.Main.Translate(va)
				break
			}
		}
		m := probe.NewMonitor(e, probe.Parallel, res.Set.Lines)
		probe.RunCovertChannel(e, m, 2, sender, 10000, 100)
	}
}

// --- Figure 7 / Table 6: PSD pipeline ---------------------------------------

func BenchmarkFigure7_WelchPSD(b *testing.B) {
	rng := xrand.New(6)
	signal := make([]float64, 2000)
	for i := range signal {
		signal[i] = math.Abs(rng.Norm(0, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.Welch(signal, 1.0/500, dsp.DefaultWelch())
	}
}

func BenchmarkTable6_ScanOneSet(b *testing.B) {
	s := attack.NewSession(cloudCfg(), ec2m.Sect163(), 7)
	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	scanner, _, _ := s.TrainAll(p, xrand.New(8))
	bulk := s.BuildEvictionSets(evset.BulkOptions{Algo: evset.BinSearch{}, PerSet: evset.FilteredOptions()})
	if len(bulk.Sets) == 0 {
		b.Fatal("no sets")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := bulk.Sets[i%len(bulk.Sets)]
		m := probe.NewMonitor(s.Env, probe.Parallel, set.Lines)
		tr := s.CaptureWhileBusy(m, p.TraceCycles)
		scanner.Classify(tr)
	}
}

// --- Figure 9 / §7.3: extraction --------------------------------------------

func BenchmarkFigure9_ExtractBits(b *testing.B) {
	s := attack.NewSession(cloudCfg(), ec2m.Sect163(), 9)
	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	_, ex, _ := s.TrainAll(p, xrand.New(10))
	// One long captured trace, re-extracted each iteration.
	pool := evset.NewCandidates(s.Env, 2*evset.DefaultPoolSize(s.H.Config()), s.V.TargetOffset())
	var lines []memory.VAddr
	for _, va := range pool.Addrs {
		if s.Env.Main.SetOf(va) == s.V.TargetSet() {
			lines = append(lines, va)
			if len(lines) == s.H.Config().SFWays {
				break
			}
		}
	}
	m := probe.NewMonitor(s.Env, probe.Parallel, lines)
	rec := s.TriggerOneSigning()
	tr := m.Capture(rec.End - s.H.Clock().Now() + 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits := ex.Extract(tr)
		if i == 0 {
			sc := attack.ScoreExtraction(bits, rec, ex.IterCycles)
			b.ReportMetric(sc.Fraction()*100, "%bits")
		}
	}
}

func BenchmarkE2E_FullAttack(b *testing.B) {
	train := attack.NewSession(cloudCfg(), ec2m.Sect163(), 11)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	scanner, ex, _ := train.TrainAll(p, xrand.New(12))
	opt := attack.DefaultE2EOptions()
	opt.Traces = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := attack.NewSession(cloudCfg(), ec2m.Sect163(), uint64(i)+100)
		res := s.RunEndToEnd(scanner, ex, opt)
		if i == 0 && res.SignalFound {
			b.ReportMetric(res.MedianFraction()*100, "%bits")
		}
	}
}

// --- Ablations ---------------------------------------------------------------

func BenchmarkAblationReplacement_SRRIPPrime(b *testing.B) {
	cfg := cloudCfg()
	cfg.SFPolicy = 2 // cache.SRRIP
	h := hierarchy.NewHost(cfg, 13)
	e := evset.NewEnv(h, 14)
	cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
	res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		b.Skip("construction failed under SRRIP")
	}
	m := probe.NewMonitor(e, probe.Parallel, res.Set.Lines)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prime()
	}
}

func BenchmarkAblationBacktrack_BinSUnderNoise(b *testing.B) {
	cfg := cloudCfg().WithNoiseRate(120) // heavy noise stresses recovery
	for i := 0; i < b.N; i++ {
		h := hierarchy.NewHost(cfg, uint64(i)+1)
		e := evset.NewEnv(h, uint64(i)^0xbb)
		cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
		evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.FilteredOptions())
	}
}

// --- Trial engine -----------------------------------------------------------

// BenchmarkEngine_Table3 times a whole engine-driven runner (16 trials
// over pooled hosts) — the end-to-end number the parallel orchestration
// work optimizes.
func BenchmarkEngine_Table3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(experiments.Options{Seed: uint64(i) + 1, Trials: 2})
	}
}

// BenchmarkMicro_NewHost vs BenchmarkMicro_HostReset show what the host
// pools save per trial: Reset reuses the frame pool and cache arrays.
func BenchmarkMicro_NewHost(b *testing.B) {
	cfg := cloudCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hierarchy.NewHost(cfg, uint64(i)+1)
	}
}

func BenchmarkMicro_HostReset(b *testing.B) {
	h := hierarchy.NewHost(cloudCfg(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset(uint64(i) + 1)
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkMicro_HierarchyAccess(b *testing.B) {
	cfg := cloudCfg()
	h := hierarchy.NewHost(cfg, 15)
	a := h.NewAgent(0)
	buf := a.Alloc(512)
	addrs := make([]memory.VAddr, 512)
	for i := range addrs {
		addrs[i] = buf.LineAt(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkMicro_FFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	buf := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		dsp.FFT(buf)
	}
}

func BenchmarkMicro_GF2m571Mul(b *testing.B) {
	c := ec2m.Sect571()
	rng := xrand.New(16)
	x, y := c.F.Rand(rng), c.F.Rand(rng)
	out := c.F.NewElem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.F.Mul(out, x, y)
	}
}

func BenchmarkMicro_LadderSign163(b *testing.B) {
	c := ec2m.Sect163()
	rng := xrand.New(17)
	key := ecdsa.GenerateKey(c, rng)
	z := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := key.Sign(z, rng, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_SVMPredict(b *testing.B) {
	rng := xrand.New(18)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := []float64{rng.Norm(0, 1), rng.Norm(0, 1)}
		x = append(x, v)
		if v[0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	svm := classify.NewSVM(classify.SVMConfig{Kernel: classify.PolyKernel(3, 1, 1)})
	svm.Train(x, y, rng)
	probeVec := []float64{0.3, -0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svm.Predict(probeVec)
	}
}

func BenchmarkMicro_LatticeHNPToy(b *testing.B) {
	c := ec2m.ToyCurve()
	rng := xrand.New(19)
	key := ecdsa.GenerateKey(c, rng)
	var leaks []lattice.Leak
	for i := 0; len(leaks) < 5 && i < 60; i++ {
		z := big.NewInt(int64(7000 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil || nonce.BitLen() <= 9 {
			continue
		}
		top := new(big.Int).Rsh(nonce, uint(nonce.BitLen()-9))
		leaks = append(leaks, lattice.LeakFromTopBits(sig.R, sig.S, z, top, nonce.BitLen(), 9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := lattice.HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 }); !ok {
			b.Fatal("HNP failed")
		}
	}
}

// --- End-to-end scenarios (internal/scenario) --------------------------------

// BenchmarkScenario_E2EExtract times one full §7.3 pipeline trial —
// training, eviction-set construction, PSD scan, and Parallel-Probing
// extraction — through the scenario registry: the whole-attack
// regression number the benchmark guard tracks.
func BenchmarkScenario_E2EExtract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run("e2e/extract", 1, 1, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario_CovertChannel times one covert-channel scenario
// trial (build the shared set, run the channel).
func BenchmarkScenario_CovertChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run("covert/channel", 1, 1, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Background tenant models (internal/tenant) ------------------------------

// benchTenant times the host's lazy noise-sync path under one tenant
// model: alternating idle windows (which accumulate tenant activity)
// with demand accesses (which sync it), the access pattern every
// monitoring protocol reduces to.
func benchTenant(b *testing.B, spec tenant.Spec) {
	b.Helper()
	cfg := hierarchy.Scaled(4).WithTenants(spec)
	h := hierarchy.NewHost(cfg, 1)
	a := h.NewAgent(0)
	buf := a.Alloc(256)
	addrs := make([]memory.VAddr, 256)
	for i := range addrs {
		addrs[i] = buf.LineAt(i, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			a.Idle(100_000)
		}
		a.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkTenant_Burst(b *testing.B) {
	benchTenant(b, tenant.Spec{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.1, OnMs: 2})
}

func BenchmarkTenant_Stream(b *testing.B) {
	benchTenant(b, tenant.Spec{Model: "stream", Rate: 34.5, LLCProb: 0.5, Width: 4})
}

func BenchmarkTenant_Churn(b *testing.B) {
	benchTenant(b, tenant.Spec{Model: "churn", Rate: 11.5, LLCProb: 0.5,
		ArrivalsPerMs: 0.05, LifeMs: 5, FootprintFrac: 0.5})
}

// benchDefense times the demand-access path through one defense model's
// hooks (index derivation, way-regioned insertion, per-access tick),
// the per-access overhead every defended experiment pays.
func benchDefense(b *testing.B, spec defense.Spec) {
	b.Helper()
	cfg := hierarchy.Scaled(4).WithCloudNoise().WithDefense(spec)
	h := hierarchy.NewHost(cfg, 1)
	a := h.NewAgent(0)
	buf := a.Alloc(256)
	addrs := make([]memory.VAddr, 256)
	for i := range addrs {
		addrs[i] = buf.LineAt(i, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			a.Idle(100_000)
		}
		a.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkDefense_Partition(b *testing.B) {
	benchDefense(b, defense.Spec{Model: "partition", Ways: 4})
}

func BenchmarkDefense_Randomize(b *testing.B) {
	benchDefense(b, defense.Spec{Model: "randomize"})
}

// --- Observability: the disabled path must stay free ----------------------

// BenchmarkObs_DisabledHooks times the nil-receiver no-op path every
// instrumented loop pays when -trace/-metrics are off — the zero-cost
// half of determinism clause 10. Each op performs 1000 rounds of the
// disabled counter/gauge/histogram/trace calls the engine and campaign
// hot paths make, so the guard measures the hook overhead itself rather
// than loop scaffolding (and stays measurable at -benchtime=3x).
func BenchmarkObs_DisabledHooks(b *testing.B) {
	var reg *obs.Registry
	var tr *obs.TrialTrace
	ctr := reg.Counter("bench_total")
	gauge := reg.Gauge("bench_gauge")
	hist := reg.Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 1000; k++ {
			ctr.Inc()
			gauge.Set(1)
			hist.Observe(1)
			if tr.Enabled() {
				tr.Span("x", "phase", 0, 1, 0, true)
			}
		}
	}
}
