// Key recovery: the complete attack chain, one step beyond the paper's
// demonstration. The paper extracts nonce bits and cites lattice attacks
// [LadderLeak, Howgrave-Graham–Smart] for the final step; here we run
// that step too, on the exactly-solvable toy curve: the attacker monitors
// signings through the cache side channel, anchors the extracted bit
// stream at the ladder start, and feeds the leaked nonce MSBs into the
// HNP lattice until the victim's PRIVATE KEY verifies against its public
// point.
//
// Everything the attacker uses is attacker-visible: detection timestamps,
// boundary spacing, public signatures, and the public key Q for candidate
// verification. Ground truth is consulted only to report accuracy.
package main

import (
	"flag"
	"fmt"
	"math/big"

	"repro/internal/attack"
	"repro/internal/ec2m"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/xrand"
)

const knownBitsWanted = 8 // leaked MSBs per nonce fed to the lattice

func main() {
	seed := flag.Uint64("seed", 2024, "deterministic seed")
	flag.Parse()

	cfg := hierarchy.Scaled(4).WithCloudNoise()
	curve := ec2m.ToyCurve()
	s := attack.NewSession(cfg, curve, *seed)
	fmt.Printf("victim: ECDSA on %s (n = %v, %d-bit nonces), public key known\n",
		curve.Name, curve.N, curve.N.BitLen())

	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	_, ex, _ := s.TrainAll(p, xrand.New(*seed^0x5e))
	m := probe.NewMonitor(s.Env, probe.Parallel, targetLines(s))

	var leaks []lattice.Leak
	aligned, total := 0, 0
	for i := 0; len(leaks) < 14 && i < 120; i++ {
		z := big.NewInt(int64(0xd16e57 + i))
		rec := s.V.TriggerSignWithNonce(s.H.Clock().Now()+5000, z, randNonce(curve, *seed+uint64(i)))
		tr := m.Capture(rec.End - s.H.Clock().Now() + 30_000)
		bits := ex.Extract(tr)

		leak, ok := leakFromTrace(bits, rec.Sig.R, rec.Sig.S, z, ex.IterCycles, curve.N.BitLen())
		if !ok {
			continue
		}
		total++
		// Accuracy report (ground truth only for printing).
		trueTop := new(big.Int).Rsh(rec.Nonce, uint(rec.Nonce.BitLen()-knownBitsWanted))
		good := leak.KnownMSB.Cmp(trueTop) == 0
		if good {
			aligned++
		}
		fmt.Printf("signing %2d: leaked MSBs %0*b (truth %0*b) %v\n",
			i+1, knownBitsWanted, leak.KnownMSB, knownBitsWanted, trueTop, mark(good))
		leaks = append(leaks, leak)
	}
	fmt.Printf("\ncollected %d leaks (%d correctly aligned)\n", len(leaks), aligned)

	// Verify candidates against the PUBLIC key: d is real iff d·G == Q.
	verify := func(d *big.Int) bool {
		pt := curve.ScalarMult(d, curve.G)
		return !pt.Inf && !s.V.Key.Q.Inf && pt.X.Equal(s.V.Key.Q.X) && pt.Y.Equal(s.V.Key.Q.Y)
	}

	// Some leaks may be misaligned (a missed leading iteration): try
	// subsets until the lattice produces the verifying key.
	rng := xrand.New(*seed ^ 0x1a771ce)
	subset := make([]lattice.Leak, 0, 6)
	for attempt := 0; attempt < 200; attempt++ {
		subset = subset[:0]
		for _, j := range rng.Perm(len(leaks))[:minInt(6, len(leaks))] {
			subset = append(subset, leaks[j])
		}
		if d, ok := lattice.HNP(curve.N, subset, verify); ok {
			fmt.Printf("\nPRIVATE KEY RECOVERED after %d lattice attempts: d = %v\n", attempt+1, d)
			fmt.Printf("ground truth:                                  d = %v\n", s.V.Key.D)
			return
		}
	}
	fmt.Println("\nkey not recovered — increase signings or leaked bits")
}

// leakFromTrace turns extracted bits into an HNP leak using only
// attacker-visible information: the first extracted boundary anchors
// iteration 0 (the target set is quiet before the ladder) and
// consecutive boundary spacing (~1 iteration) keeps the bit run
// gap-free. The nonce is assumed full-length (kBits = n's bit length),
// the standard LadderLeak-style assumption; shorter-nonce signatures
// yield garbage leaks that the verified subset search discards.
func leakFromTrace(bits []attack.ExtractedBit, r, sg, z *big.Int, iter float64, kBits int) (lattice.Leak, bool) {
	if len(bits) < knownBitsWanted {
		return lattice.Leak{}, false
	}
	run := []uint{}
	for i := 0; i < len(bits) && len(run) < knownBitsWanted-1; i++ {
		if i > 0 {
			gap := float64(bits[i].At - bits[i-1].At)
			if gap < 0.75*iter || gap > 1.3*iter {
				break // a missed iteration would misalign everything below
			}
		}
		run = append(run, bits[i].Bit)
	}
	if len(run) < knownBitsWanted-1 {
		return lattice.Leak{}, false
	}
	if kBits <= knownBitsWanted {
		return lattice.Leak{}, false
	}
	// Known MSBs: the implicit leading 1 followed by the run.
	top := big.NewInt(1)
	for _, b := range run {
		top.Lsh(top, 1)
		top.Or(top, big.NewInt(int64(b)))
	}
	return lattice.LeakFromTopBits(r, sg, z, top, kBits, knownBitsWanted), true
}

func targetLines(s *attack.Session) []memory.VAddr {
	pool := evset.NewCandidates(s.Env, 2*evset.DefaultPoolSize(s.H.Config()), s.V.TargetOffset())
	var out []memory.VAddr
	for _, va := range pool.Addrs {
		if s.Env.Main.SetOf(va) == s.V.TargetSet() {
			out = append(out, va)
			if len(out) == s.H.Config().SFWays {
				return out
			}
		}
	}
	panic("no eviction set for the target")
}

func randNonce(c *ec2m.Curve, seed uint64) *big.Int {
	rng := xrand.New(seed ^ 0x41ce)
	for {
		b := make([]byte, 3)
		rng.Bytes(b)
		k := new(big.Int).SetBytes(b)
		k.Mod(k, c.N)
		// Full-length nonces keep the leaked-prefix geometry uniform.
		if k.BitLen() == c.N.BitLen() {
			return k
		}
	}
}

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
