// Key recovery: the complete attack chain, one step beyond the paper's
// demonstration, as a thin wrapper over the scenario registry. Each
// trial monitors signings through the cache side channel, anchors the
// extracted bit stream at the ladder start, measures each nonce's ladder
// length, and feeds the leaked MSBs into the HNP lattice until the
// victim's sect163 PRIVATE KEY verifies against its public point.
// Everything the attacker uses is attacker-visible; ground truth only
// scores the result. The same pipeline runs from the command line as
// `llcattack -scenario e2e/keyrecovery`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 2024, "deterministic seed")
		trials   = flag.Int("trials", 2, "independent end-to-end trials")
		parallel = flag.Int("parallel", 0, "trial workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	rep, err := scenario.Run("e2e/keyrecovery", *trials, *parallel, *seed)
	if err != nil {
		log.Fatal(err)
	}
	agg := rep.Aggregate
	fmt.Printf("e2e/keyrecovery: %s\n", rep.Desc)
	for i, o := range rep.Outcomes {
		verdict := "key NOT recovered"
		if o.KeyRecovered {
			verdict = "PRIVATE KEY RECOVERED (matches ground truth)"
		}
		fmt.Printf("trial %d: %s — %d leaks, %d lattice attempts, %.2f s of victim time\n",
			i, verdict, o.Leaks, o.LatticeAttempts, o.TotalCycles.Seconds())
	}
	fmt.Printf("\n%d/%d trials recovered the key (success rate %.0f%%, Wilson 95%% [%.0f%%, %.0f%%])\n",
		agg.KeysRecovered, agg.Trials, 100*agg.SuccessRate, 100*agg.SuccessLo, 100*agg.SuccessHi)
	fmt.Println("the paper extracts the nonce bits (§7.3) and cites lattice attacks")
	fmt.Println("[LadderLeak, Howgrave-Graham–Smart] for this final step.")
}
