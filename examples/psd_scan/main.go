// PSD scan: how the attacker finds the victim's target SF set among
// hundreds of candidates (§6.2, §7.2), as a thin wrapper over the
// scenario registry. Each trial trains the Welch-PSD SVM scanner in the
// controlled setup, builds eviction sets for every SF set at the
// victim's page offset, and scans while the victim signs until the
// target is identified. Success requires identifying the CORRECT set
// (privileged ground-truth check, as in Table 6). The same pipeline runs
// from the command line as `llcattack -scenario scan/psd`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/scenario"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 5, "deterministic seed")
		trials   = flag.Int("trials", 4, "independent scan trials")
		parallel = flag.Int("parallel", 0, "trial workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	rep, err := scenario.Run("scan/psd", *trials, *parallel, *seed)
	if err != nil {
		log.Fatal(err)
	}
	agg := rep.Aggregate
	fmt.Printf("scan/psd: %s\n", rep.Desc)
	fmt.Printf("%d/%d trials identified the correct set (success rate %.0f%%, Wilson 95%% [%.0f%%, %.0f%%])\n",
		agg.Successes, agg.Trials, 100*agg.SuccessRate, 100*agg.SuccessLo, 100*agg.SuccessHi)
	for _, s := range agg.Steps {
		fmt.Printf("  step %-6s reached %d, ok %d (%.0f%%), median %.2f ms\n",
			s.Name, s.Reached, s.Successes, 100*s.SuccessRate, clock.Cycles(s.CyclesMedian).Millis())
	}
	fmt.Println("\npaper Table 6: 94.1% success in 6.1 s at ~831 sets/s under PageOffset")
}
