// PSD scan walkthrough (§6.2, §7.2): how the attacker finds the victim's
// target SF set among hundreds of candidates. Traces are captured from
// every eviction set while the victim signs; Welch power spectral density
// exposes the victim's ~0.41 MHz access periodicity; an SVM over PSD
// features makes the call.
package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/clock"
	"repro/internal/dsp"
	"repro/internal/ec2m"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/psd"
	"repro/internal/xrand"
)

func main() {
	seed := flag.Uint64("seed", 5, "deterministic seed")
	flag.Parse()

	cfg := hierarchy.Scaled(4).WithCloudNoise()
	train := attack.NewSession(cfg, ec2m.Sect163(), *seed^0xbeef)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	f0 := 1.0 / train.V.ExpectedAccessPeriod()
	fmt.Printf("expected victim frequency: f0 = %.2f MHz (period %.0f cycles)\n",
		2000*f0, train.V.ExpectedAccessPeriod())

	// Show the raw PSD contrast first (Figure 7).
	td := train.CollectTrainingData(p, 3, 3)
	show := func(name string, times []clock.Cycles, start, end clock.Cycles) {
		sig := dsp.BinTrace(u64s(times), uint64(start), uint64(end), uint64(p.BinCycles))
		spec := dsp.Welch(sig, 1/float64(p.BinCycles), dsp.DefaultWelch())
		floor := spec.MedianPower()
		fmt.Printf("  %-10s accesses=%3d  peak@f0=%6.1fx floor  peak@2f0=%6.1fx floor\n",
			name, len(times), spec.PeakNear(f0, f0*0.15)/floor, spec.PeakNear(2*f0, f0*0.15)/floor)
	}
	fmt.Println("\nFigure 7 contrast:")
	show("target", td.Target[0].Times, td.Target[0].Start, td.Target[0].End)
	show("non-target", td.NonTarget[0].Times, td.NonTarget[0].Start, td.NonTarget[0].End)

	// Train the SVM and run a real scan on a fresh host (Table 6).
	scanner, m := psd.TrainScanner(p, td.Target, td.NonTarget, xrand.New(*seed^0x5))
	fmt.Printf("\nSVM validation: FN=%.1f%% FP=%.1f%%\n", 100*m.FalseNegativeRate(), 100*m.FalsePositiveRate())

	s := attack.NewSession(cfg, ec2m.Sect163(), *seed)
	bulk := s.BuildEvictionSets(evset.BulkOptions{Algo: evset.BinSearch{}, PerSet: evset.FilteredOptions()})
	fmt.Printf("built eviction sets for %d SF sets at the victim's page offset\n", len(bulk.Sets))

	res := s.ScanForTarget(bulk.Sets, scanner, attack.ScanOptions{Timeout: clock.FromMillis(60_000)})
	if !res.Found {
		fmt.Println("scan timed out without a positive")
		return
	}
	fmt.Printf("target identified after %d set-traces in %.1f ms (%.0f sets/s) — ground truth: correct=%v\n",
		res.Scanned, res.Duration.Millis(), res.RatePerSecond(), res.Correct)
	fmt.Println("(paper Table 6: 94.1% success in 6.1 s at ~831 sets/s under PageOffset)")
}

func u64s(ts []clock.Cycles) []uint64 {
	out := make([]uint64, len(ts))
	for i, t := range ts {
		out[i] = uint64(t)
	}
	return out
}
