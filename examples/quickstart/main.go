// Quickstart: build one Snoop Filter eviction set on a simulated Cloud
// Run host with the paper's techniques — L2-driven candidate filtering
// (§5.1) plus binary-search pruning (§5.2) — and verify that it works by
// evicting the target line.
package main

import (
	"fmt"
	"log"

	"repro/internal/evset"
	"repro/internal/hierarchy"
)

func main() {
	// A Skylake-SP-shaped host with Cloud Run background noise. Use
	// hierarchy.SkylakeSP(28) for the full 57,344-set geometry.
	cfg := hierarchy.Scaled(4).WithCloudNoise()
	host := hierarchy.NewHost(cfg, 42)
	fmt.Printf("host: %s — %d slices x %d LLC sets, %d-way SF, noise %.1f acc/ms/set\n",
		cfg.Name, cfg.Slices, cfg.LLCSets, cfg.SFWays, cfg.NoiseRate*2e6)

	// The attacker: main thread + helper thread (the helper re-accesses
	// lines to force them into the LLC, §4.2).
	env := evset.NewEnv(host, 7)
	fmt.Printf("calibrated thresholds: private<%.0f cycles, LLC<%.0f cycles\n",
		env.ThreshPrivate, env.ThreshLLC)

	// A candidate pool of 3·U·W same-offset addresses (§4.2). Every
	// candidate lives on its own 4 kB page: the attacker controls only
	// the page offset.
	pool := evset.NewCandidates(env, evset.DefaultPoolSize(cfg), 0x2c0)
	target := pool.Addrs[0]
	fmt.Printf("candidate pool: %d addresses at page offset %#x\n", len(pool.Addrs), pool.Offset)

	// Build: L2 eviction set -> filter the pool 16x smaller -> prune with
	// binary search -> extend to the SF associativity.
	start := host.Clock().Now()
	res, filterTime := evset.BuildSingle(env, target, pool, evset.BulkOptions{
		Algo:   evset.BinSearch{},
		PerSet: evset.FilteredOptions(),
	})
	if !res.OK {
		log.Fatalf("construction failed after %d attempts", res.Attempts)
	}
	fmt.Printf("built a %d-line SF eviction set in %.2f ms (filtering %.2f ms, %d attempts, %d backtracks)\n",
		res.Set.Size(), res.Duration.Millis(), filterTime.Millis(), res.Attempts, res.Backtracks)

	// Attack-level check: the set must evict the target repeatably.
	ok := 0
	for i := 0; i < 10; i++ {
		if env.TestEviction(evset.TargetSF, target, res.Set.Lines, res.Set.Size(), true) {
			ok++
		}
	}
	fmt.Printf("self-test: evicted the target in %d/10 trials\n", ok)

	// Privileged ground truth (only the simulator can do this).
	fmt.Printf("ground truth: %v — all %d lines congruent with the target's SF set %v\n",
		res.Set.Verified(env.Main, cfg.SFWays), res.Set.Size(), env.Main.SetOf(target))
	fmt.Printf("virtual time consumed: %.2f ms\n", (host.Clock().Now() - start).Millis())
}
