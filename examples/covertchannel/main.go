// Covert channel: a sender and a receiver in different tenants agree on
// one SF set and communicate through it (§6.1), as a thin wrapper over
// the scenario registry. Each trial builds the shared eviction set with
// BinSearch and runs the channel with Parallel Probing at a 5k-cycle
// sender interval; the degraded variant repeats the experiment under a
// noisy neighbor hammering the LLC at 3x the Cloud Run background rate.
// The same pipelines run from the command line as
// `llcattack -scenario covert/channel[/noisy]`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1234, "deterministic seed")
		trials   = flag.Int("trials", 6, "independent channel trials")
		parallel = flag.Int("parallel", 0, "trial workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	fmt.Println("scenario             | usable | detection | capacity (bits/s)")
	fmt.Println("---------------------+--------+-----------+------------------")
	for _, id := range []string{"covert/channel", "covert/channel/noisy"} {
		rep, err := scenario.Run(id, *trials, *parallel, *seed)
		if err != nil {
			log.Fatal(err)
		}
		agg := rep.Aggregate
		rate := 0.0
		if agg.BitsTotal > 0 {
			rate = float64(agg.BitsRecovered) / float64(agg.BitsTotal)
		}
		fmt.Printf("%-20s | %2d/%-2d  | %8.1f%% | %8.0f\n",
			id, agg.Successes, agg.Trials, 100*rate, agg.CapacityBpsMean)
	}
	fmt.Println("\npaper (Table 5 / Figure 6): Parallel Probing sustains >84% detection at")
	fmt.Println("2k-cycle intervals where PS-Flush reaches 15.4% and PS-Alt 6.0%.")
}
