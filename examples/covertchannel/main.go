// Covert channel: a sender and a receiver in different tenants agree on
// one SF set and communicate through it (§6.1's evaluation harness). The
// receiver compares the paper's three monitoring strategies — PS-Flush,
// PS-Alt and Parallel Probing — under Cloud Run noise.
package main

import (
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/stats"
)

func main() {
	cfg := hierarchy.Scaled(4).WithCloudNoise()

	fmt.Println("strategy  | interval | detection | prime (mean±std) | probe (mean±std)")
	fmt.Println("----------+----------+-----------+------------------+-----------------")
	for _, interval := range []clock.Cycles{2000, 10000, 100000} {
		for _, strat := range []probe.Strategy{probe.Parallel, probe.PSFlush, probe.PSAlt} {
			env, lines, alt, sender := setup(cfg, 1234+uint64(interval))
			m := probe.NewMonitor(env, strat, lines).WithAlt(alt)
			res := probe.RunCovertChannel(env, m, 2, sender, interval, 400)
			fmt.Printf("%-9s | %8d | %8.1f%% | %6.0f ± %-6.0f | %5.0f ± %.0f\n",
				strat, interval, 100*res.DetectionRate,
				stats.Mean(res.PrimeLatency), stats.Stddev(res.PrimeLatency),
				stats.Mean(res.ProbeLatency), stats.Stddev(res.ProbeLatency))
		}
	}
	fmt.Println("\npaper (Table 5 / Figure 6): Parallel prime ~1.1k cycles and >84% detection")
	fmt.Println("at 2k-cycle intervals; PS-Flush prime ~6k cycles, 15.4%; PS-Alt 6.0%.")
}

// setup builds the shared SF set for one run: an eviction set for the
// receiver, a second one for PS-Alt, and a congruent line for the sender.
func setup(cfg hierarchy.Config, seed uint64) (*evset.Env, []memory.VAddr, []memory.VAddr, memory.PAddr) {
	h := hierarchy.NewHost(cfg, seed)
	env := evset.NewEnv(h, seed^0xcc)
	pool := evset.NewCandidates(env, 2*evset.DefaultPoolSize(cfg), 0)
	res := evset.BuildSF(env, evset.BinSearch{}, pool.Addrs[0], pool.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		log.Fatal("could not build the shared eviction set")
	}
	target := env.Main.SetOf(res.Set.Ta)
	used := map[memory.VAddr]bool{}
	for _, va := range res.Set.Lines {
		used[va] = true
	}
	var extra []memory.VAddr
	for _, va := range pool.Addrs {
		if va != res.Set.Ta && !used[va] && env.Main.SetOf(va) == target {
			extra = append(extra, va)
		}
	}
	if len(extra) < cfg.SFWays+1 {
		log.Fatal("not enough congruent lines for the alt set and sender")
	}
	return env, res.Set.Lines, extra[:cfg.SFWays], env.Main.Translate(extra[cfg.SFWays])
}
