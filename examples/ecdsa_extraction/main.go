// ECDSA nonce extraction: the heart of §7.3. The victim signs with the
// vulnerable Montgomery ladder; the attacker monitors the target SF set
// with Parallel Probing and reads the nonce bits out of the access trace
// (two accesses per 0-bit iteration, one per 1-bit iteration). Ground
// truth from the simulated victim scores every extracted bit.
package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/ec2m"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 99, "deterministic seed")
		signings = flag.Int("signings", 5, "number of signings to attack")
	)
	flag.Parse()

	cfg := hierarchy.Scaled(4).WithCloudNoise()
	s := attack.NewSession(cfg, ec2m.Sect163(), *seed)
	fmt.Printf("victim: %s, nonce length %d bits, ladder iteration ~%.0f cycles\n",
		s.V.Curve.Name, s.V.Curve.N.BitLen(), s.V.IterCycles)

	// Train the boundary classifier in the controlled setup (§7.2).
	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	_, ex, _ := s.TrainAll(p, xrand.New(*seed^0x99))

	// Monitor the true target set (this example focuses on Step 3; see
	// examples/psd_scan for Step 2).
	lines := congruentLines(s)
	m := probe.NewMonitor(s.Env, probe.Parallel, lines)

	var fracs, errs []float64
	for i := 0; i < *signings; i++ {
		rec := s.TriggerOneSigning()
		tr := m.Capture(rec.End - s.H.Clock().Now() + 50_000)
		bits := ex.Extract(tr)
		sc := attack.ScoreExtraction(bits, rec, ex.IterCycles)
		fracs = append(fracs, sc.Fraction())
		errs = append(errs, sc.ErrorRate())
		fmt.Printf("signing %d: nonce %s…  extracted %3d/%3d bits (%.1f%%), %d wrong\n",
			i+1, rec.Nonce.Text(16)[:10], sc.Recovered, sc.Total, 100*sc.Fraction(), sc.Wrong)
	}
	fmt.Printf("\nmedian %.0f%% of nonce bits extracted, %.1f%% bit error rate "+
		"(paper §7.3: median 81%%, 3%% errors)\n",
		100*stats.Median(fracs), 100*stats.Mean(errs))
	fmt.Println("with these bits across signatures, lattice attacks [LadderLeak, " +
		"Howgrave-Graham–Smart] recover the private key.")
}

// congruentLines resolves an eviction set for the victim's target SF set
// by privileged inspection (the controlled-experiment shortcut; the full
// pipeline in cmd/attackdemo builds and scans for it).
func congruentLines(s *attack.Session) []memory.VAddr {
	pool := evset.NewCandidates(s.Env, 2*evset.DefaultPoolSize(s.H.Config()), s.V.TargetOffset())
	var out []memory.VAddr
	for _, va := range pool.Addrs {
		if s.Env.Main.SetOf(va) == s.V.TargetSet() {
			out = append(out, va)
			if len(out) == s.H.Config().SFWays {
				return out
			}
		}
	}
	panic("not enough congruent lines")
}
