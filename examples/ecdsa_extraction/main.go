// ECDSA nonce extraction: the heart of §7.3, as a thin wrapper over the
// scenario registry (internal/scenario). Each trial runs the FULL
// pipeline — eviction-set construction, PSD target identification, and
// Parallel-Probing extraction of the victim's nonce bits — on its own
// simulated Cloud Run host; the report aggregates success rates (Wilson
// 95% intervals) and per-step cycle budgets. The same pipeline runs from
// the command line as `llcattack -scenario e2e/extract`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/scenario"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 99, "deterministic seed")
		trials   = flag.Int("trials", 4, "independent end-to-end trials")
		parallel = flag.Int("parallel", 0, "trial workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	rep, err := scenario.Run("e2e/extract", *trials, *parallel, *seed)
	if err != nil {
		log.Fatal(err)
	}
	agg := rep.Aggregate
	fmt.Printf("e2e/extract: %s\n", rep.Desc)
	fmt.Printf("%d/%d trials extracted a signal (success rate %.0f%%, Wilson 95%% [%.0f%%, %.0f%%])\n",
		agg.Successes, agg.Trials, 100*agg.SuccessRate, 100*agg.SuccessLo, 100*agg.SuccessHi)
	if agg.BitsTotal > 0 {
		fmt.Printf("nonce bits: %d/%d recovered (%.1f%%), %d wrong (%.1f%% bit error rate)\n",
			agg.BitsRecovered, agg.BitsTotal, 100*float64(agg.BitsRecovered)/float64(agg.BitsTotal),
			agg.BitsWrong, 100*float64(agg.BitsWrong)/float64(max(agg.BitsRecovered, 1)))
	}
	for _, s := range agg.Steps {
		fmt.Printf("  step %-8s reached %d, ok %d (%.0f%%), median %.2f ms\n",
			s.Name, s.Reached, s.Successes, 100*s.SuccessRate, clock.Cycles(s.CyclesMedian).Millis())
	}
	fmt.Println("\npaper §7.3: median 81% of nonce bits, 3% bit error rate; with these bits")
	fmt.Println("across signatures, lattice attacks recover the key (examples/key_recovery).")
}
