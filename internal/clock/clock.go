// Package clock implements the virtual cycle clock that orders all events
// in the simulated host.
//
// Real LLC attacks measure latencies with rdtsc; in this reproduction the
// hierarchy model advances a shared virtual clock by each access's modelled
// latency, and "timestamp reads" may add Gaussian jitter to mimic the
// measurement noise of a real timestamp counter. Because every agent
// (attacker, helper thread, victim, background tenants) shares one clock,
// event ordering is deterministic and independent of Go's scheduler.
package clock

import "repro/internal/xrand"

// Cycles is a duration or instant measured in CPU cycles of the simulated
// host (2 GHz in the paper's Cloud Run hosts).
type Cycles uint64

// Frequency definitions used to convert simulated cycles to wall-clock
// time when reporting results in the paper's units.
const (
	// GHz2 is the host frequency reported in the paper (Table 5 caption).
	GHz2 = 2_000_000_000.0
)

// Micros converts cycles to microseconds at the 2 GHz paper frequency.
func (c Cycles) Micros() float64 { return float64(c) / (GHz2 / 1e6) }

// Millis converts cycles to milliseconds at the 2 GHz paper frequency.
func (c Cycles) Millis() float64 { return float64(c) / (GHz2 / 1e3) }

// Seconds converts cycles to seconds at the 2 GHz paper frequency.
func (c Cycles) Seconds() float64 { return float64(c) / GHz2 }

// FromMicros converts microseconds to cycles at 2 GHz.
func FromMicros(us float64) Cycles { return Cycles(us * (GHz2 / 1e6)) }

// FromMillis converts milliseconds to cycles at 2 GHz.
func FromMillis(ms float64) Cycles { return Cycles(ms * (GHz2 / 1e3)) }

// Clock is the shared virtual time source of one simulated host.
type Clock struct {
	now    Cycles
	jitter float64
	rng    *xrand.Rand
}

// New returns a clock starting at cycle 0 with the given timestamp-read
// jitter (standard deviation in cycles; 0 disables jitter). rng may be nil
// when jitter is 0.
func New(jitter float64, rng *xrand.Rand) *Clock {
	return &Clock{jitter: jitter, rng: rng}
}

// Reset rewinds the clock to cycle 0 with a fresh jitter source, restoring
// the state a newly built clock would have. Host pools use it to reuse one
// clock across trials.
func (c *Clock) Reset(jitter float64, rng *xrand.Rand) {
	c.now = 0
	c.jitter = jitter
	c.rng = rng
}

// Now returns the current virtual time without jitter. Use Read for
// attacker-visible timestamps.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by d cycles.
func (c *Clock) Advance(d Cycles) { c.now += d }

// AdvanceTo moves the clock forward to t; it never moves backwards.
func (c *Clock) AdvanceTo(t Cycles) {
	if t > c.now {
		c.now = t
	}
}

// Read returns an attacker-visible timestamp: the current time plus
// Gaussian measurement jitter (never negative).
func (c *Clock) Read() Cycles {
	if c.jitter <= 0 || c.rng == nil {
		return c.now
	}
	j := c.rng.Norm(0, c.jitter)
	t := float64(c.now) + j
	if t < 0 {
		t = 0
	}
	return Cycles(t)
}

// Stopwatch measures elapsed virtual time between Start and Elapsed calls,
// using jittered reads like a real rdtsc-based measurement.
type Stopwatch struct {
	clk   *Clock
	start Cycles
}

// StartTimer begins a measurement on the clock.
func (c *Clock) StartTimer() Stopwatch {
	return Stopwatch{clk: c, start: c.Read()}
}

// Elapsed returns the jittered elapsed time since Start.
func (s Stopwatch) Elapsed() Cycles {
	end := s.clk.Read()
	if end < s.start {
		return 0
	}
	return end - s.start
}
