package clock

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestAdvance(t *testing.T) {
	c := New(0, nil)
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("now = %d", c.Now())
	}
	c.AdvanceTo(50) // must not go backwards
	if c.Now() != 100 {
		t.Fatal("clock moved backwards")
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatalf("now = %d", c.Now())
	}
}

func TestReadWithoutJitterIsExact(t *testing.T) {
	c := New(0, nil)
	c.Advance(1234)
	if c.Read() != 1234 {
		t.Fatal("jitter-free read must be exact")
	}
}

func TestReadJitterBounded(t *testing.T) {
	c := New(3, xrand.New(1))
	c.Advance(10000)
	sum, n := 0.0, 2000
	for i := 0; i < n; i++ {
		sum += float64(c.Read())
	}
	mean := sum / float64(n)
	if math.Abs(mean-10000) > 1 {
		t.Fatalf("jittered read mean %.2f, want ~10000", mean)
	}
}

func TestStopwatch(t *testing.T) {
	c := New(0, nil)
	sw := c.StartTimer()
	c.Advance(500)
	if got := sw.Elapsed(); got != 500 {
		t.Fatalf("elapsed = %d", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if v := Cycles(2_000_000_000).Seconds(); math.Abs(v-1) > 1e-12 {
		t.Fatalf("seconds = %v", v)
	}
	if v := Cycles(2_000).Micros(); math.Abs(v-1) > 1e-12 {
		t.Fatalf("micros = %v", v)
	}
	if v := Cycles(2_000_000).Millis(); math.Abs(v-1) > 1e-12 {
		t.Fatalf("millis = %v", v)
	}
	if FromMicros(1) != 2000 {
		t.Fatal("FromMicros")
	}
	if FromMillis(1) != 2_000_000 {
		t.Fatal("FromMillis")
	}
}
