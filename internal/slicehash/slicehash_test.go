package slicehash

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/xrand"
)

func TestRange(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 22, 26, 28} {
		h := New(n)
		rng := xrand.New(uint64(n))
		for i := 0; i < 2000; i++ {
			pa := memory.PAddr(rng.Uint64() & (1<<40 - 1))
			s := h.Slice(pa)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: slice %d out of range", n, s)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(28), New(28)
	rng := xrand.New(9)
	for i := 0; i < 1000; i++ {
		pa := memory.PAddr(rng.Uint64() & (1<<40 - 1))
		if a.Slice(pa) != b.Slice(pa) {
			t.Fatal("hash is not a pure function of the slice count")
		}
	}
}

func TestLineInvariant(t *testing.T) {
	h := New(28)
	f := func(raw uint64, off uint8) bool {
		pa := memory.PAddr(raw & (1<<40 - 1) &^ 0x3f)
		return h.Slice(pa) == h.Slice(pa|memory.PAddr(off%64))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDistribution(t *testing.T) {
	for _, n := range []int{8, 22, 28} {
		h := New(n)
		rng := xrand.New(uint64(31 * n))
		counts := make([]int, n)
		const samples = 50000
		for i := 0; i < samples; i++ {
			counts[h.Slice(memory.PAddr(rng.Uint64()&(1<<40-1)))]++
		}
		want := samples / n
		for s, c := range counts {
			if c < want/2 || c > want*2 {
				t.Fatalf("n=%d slice %d: count %d far from %d", n, s, c, want)
			}
		}
	}
}

// TestPageOffsetDoesNotPinSlice verifies the security-relevant property:
// controlling only the page offset leaves the slice unpredictable, so the
// attacker's cache uncertainty multiplies by the slice count (§2.2.1).
func TestPageOffsetDoesNotPinSlice(t *testing.T) {
	h := New(28)
	rng := xrand.New(77)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		frame := rng.Uint64() & (1<<28 - 1)
		pa := memory.PAddr(frame<<memory.PageBits | 0x2c0)
		seen[h.Slice(pa)] = true
	}
	if len(seen) != 28 {
		t.Fatalf("same-offset lines reached only %d/28 slices", len(seen))
	}
}

func TestHighBitsParticipate(t *testing.T) {
	h := New(28)
	diff := 0
	for frame := uint64(0); frame < 512; frame++ {
		a := memory.PAddr(frame << memory.PageBits)
		b := a | memory.PAddr(uint64(1)<<33)
		if h.Slice(a) != h.Slice(b) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("bit 33 never changes the slice; high PA bits must participate")
	}
}

func TestPowerOfTwoLinear(t *testing.T) {
	// For power-of-two counts the hash is linear over GF(2):
	// slice(a XOR b XOR c) = slice(a) XOR slice(b) XOR slice(c) for line
	// addresses (offset bits zero).
	h := New(8)
	rng := xrand.New(5)
	for i := 0; i < 200; i++ {
		a := memory.PAddr(rng.Uint64() & (1<<40 - 1) &^ 0x3f)
		b := memory.PAddr(rng.Uint64() & (1<<40 - 1) &^ 0x3f)
		got := h.Slice(a ^ b)
		want := h.Slice(a) ^ h.Slice(b) ^ h.Slice(0)
		if got != want {
			t.Fatalf("linearity violated: %d != %d", got, want)
		}
	}
}
