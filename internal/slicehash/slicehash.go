// Package slicehash models the undocumented Intel LLC slice hash function.
//
// On Intel server CPUs every physical line address is hashed to one of the
// LLC/SF slices. For power-of-two slice counts the hash is known to be a
// linear (XOR-fold) function of the physical address bits above the line
// offset. For non-power-of-two counts — such as the 28-slice Skylake-SP
// parts that dominate Cloud Run, the 22-slice Xeon Gold 6152 and the
// 26-slice Ice Lake-SP Xeon Gold 5320 — McCalpin's reverse engineering
// shows a two-stage construction: a linear XOR stage producing an
// intermediate index, followed by a non-linear lookup that folds the
// intermediate space onto the available slices.
//
// For the attack algorithms the precise polynomial is irrelevant; what
// matters behaviourally is that (a) the hash depends on many physical
// address bits including those above the page offset, so an unprivileged
// attacker cannot choose or predict a line's slice, and (b) lines
// distribute near-uniformly across slices. This package reproduces both
// properties with a deterministic construction parameterized by the slice
// count, so experiments are reproducible.
package slicehash

import (
	"math/bits"

	"repro/internal/memory"
	"repro/internal/xrand"
)

// Hash maps physical line addresses to slice indices.
type Hash struct {
	nslices int
	masks   []uint64 // one XOR-fold mask per intermediate bit
	lookup  []uint8  // non-linear fold for non-power-of-two counts
	linear  bool
}

// maxPABits bounds the physical address bits participating in the hash.
// 46 bits covers any realistic host memory size.
const maxPABits = 46

// intermediateBits is the width of the linear stage's output for the
// non-linear construction (4096 entries, as in McCalpin's tables).
const intermediateBits = 12

// New constructs the hash for the given slice count. The function is
// deterministic: the same count always yields the same hash, emulating a
// fixed (if undocumented) piece of silicon.
func New(nslices int) *Hash {
	if nslices <= 0 {
		panic("slicehash: non-positive slice count")
	}
	h := &Hash{nslices: nslices}
	// Seed the mask generator from the slice count so distinct SKUs get
	// distinct — but fixed — hash functions.
	rng := xrand.New(0x51CEA5 ^ uint64(nslices)*0x9e3779b97f4a7c15)

	nbits := bitsFor(nslices)
	h.linear = 1<<nbits == nslices
	if h.linear {
		h.masks = make([]uint64, nbits)
		for i := range h.masks {
			h.masks[i] = randomMask(rng)
		}
		return h
	}
	// Non-linear: linear stage to intermediateBits bits, then a balanced
	// lookup table onto [0, nslices).
	h.masks = make([]uint64, intermediateBits)
	for i := range h.masks {
		h.masks[i] = randomMask(rng)
	}
	size := 1 << intermediateBits
	h.lookup = make([]uint8, size)
	// Fill the table with a balanced, shuffled assignment so every slice
	// receives size/nslices (±1) intermediate values.
	for i := 0; i < size; i++ {
		h.lookup[i] = uint8(i % nslices)
	}
	rng.Shuffle(size, func(i, j int) { h.lookup[i], h.lookup[j] = h.lookup[j], h.lookup[i] })
	return h
}

// randomMask draws a mask over PA bits [LineBits, maxPABits). Roughly half
// the bits participate in each fold, as in the reverse-engineered
// functions, and at least one bit above the page offset always
// participates so page-offset control never pins the slice.
func randomMask(rng *xrand.Rand) uint64 {
	for {
		m := rng.Uint64() & ((1<<maxPABits - 1) &^ (1<<memory.LineBits - 1))
		if m>>memory.PageBits != 0 { // must involve un-controllable bits
			return m
		}
	}
}

// bitsFor returns ceil(log2(n)).
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Slices returns the number of slices.
func (h *Hash) Slices() int { return h.nslices }

// Slice returns the slice index of the physical line containing pa.
func (h *Hash) Slice(pa memory.PAddr) int {
	line := uint64(pa.Line())
	idx := 0
	for i, m := range h.masks {
		idx |= int(parity(line&m)) << i
	}
	if h.linear {
		return idx
	}
	return int(h.lookup[idx])
}

// parity returns the XOR of all bits in x.
func parity(x uint64) uint64 {
	return uint64(bits.OnesCount64(x) & 1)
}
