package slicehash

import (
	"testing"

	"repro/internal/memory"
)

// FuzzSlice fuzzes the hash over slice counts (power-of-two and not) and
// physical addresses, checking the properties every consumer relies on:
//
//   - the slice index is always in [0, nslices), including for
//     non-power-of-two counts where the non-linear lookup stage runs;
//   - the hash is stable: the same address maps to the same slice on
//     repeated calls and on an independently constructed Hash (the
//     "fixed silicon" property that makes experiments reproducible);
//   - all addresses within one line map to the same slice (the hash is a
//     function of the line address only).
func FuzzSlice(f *testing.F) {
	// The fuzz body maps n to int(n)%64 + 1 slices, so each seed is the
	// target slice count minus one.
	f.Add(uint8(27), uint64(0x12345678))        // 28: Cloud Run Skylake-SP (non-pow2)
	f.Add(uint8(21), uint64(0))                 // 22: local Xeon Gold 6152 (non-pow2)
	f.Add(uint8(25), uint64(1)<<45)             // 26: Ice Lake-SP, top PA bit
	f.Add(uint8(3), uint64(0xdeadbeef))         // 4: scaled host (pow2, linear stage)
	f.Add(uint8(0), uint64(0xffffffffffffffff)) // 1: degenerate single slice
	f.Add(uint8(63), uint64(1)<<12)             // 64: largest count, page-aligned
	f.Fuzz(func(t *testing.T, n uint8, addr uint64) {
		nslices := int(n)%64 + 1
		h := New(nslices)
		if h.Slices() != nslices {
			t.Fatalf("Slices() = %d, want %d", h.Slices(), nslices)
		}
		pa := memory.PAddr(addr)
		s := h.Slice(pa)
		if s < 0 || s >= nslices {
			t.Fatalf("Slice(%#x) = %d, out of range [0, %d)", addr, s, nslices)
		}
		if again := h.Slice(pa); again != s {
			t.Fatalf("Slice(%#x) unstable: %d then %d", addr, s, again)
		}
		// A fresh Hash for the same count is the same function.
		if other := New(nslices).Slice(pa); other != s {
			t.Fatalf("Slice(%#x) differs across constructions: %d vs %d", addr, s, other)
		}
		// Line-offset bits must not influence the slice.
		lineBase := addr &^ (uint64(1)<<memory.LineBits - 1)
		for _, off := range []uint64{0, 1, uint64(1)<<memory.LineBits - 1} {
			if got := h.Slice(memory.PAddr(lineBase | off)); got != s {
				t.Fatalf("offset %d within line %#x changed slice: %d vs %d", off, lineBase, got, s)
			}
		}
	})
}

// TestSliceDistributionNonPow2 complements the fuzzer with a fixed-seed
// uniformity check on the 28-slice non-linear construction: over a
// spread of line addresses, every slice receives a near-uniform share.
func TestSliceDistributionNonPow2(t *testing.T) {
	const nslices = 28
	h := New(nslices)
	counts := make([]int, nslices)
	const lines = 1 << 14
	for i := 0; i < lines; i++ {
		// Stride by lines so many PA bits vary, as real pools do.
		counts[h.Slice(memory.PAddr(uint64(i)<<memory.LineBits))]++
	}
	want := float64(lines) / nslices
	for s, c := range counts {
		if float64(c) < 0.7*want || float64(c) > 1.3*want {
			t.Errorf("slice %d received %d lines, want ~%.0f (±30%%)", s, c, want)
		}
	}
}
