// Package scenario is the registry of end-to-end attack scenarios: each
// scenario runs one FULL pipeline per trial — eviction-set construction,
// PSD target identification, Parallel-Probing nonce extraction, lattice
// key recovery, or a covert channel — on a pooled simulated host via the
// parallel trial engine (internal/experiments), and returns a structured
// Outcome (success, per-step cycle budgets, bits recovered, channel
// capacity). Where internal/experiments reproduces the paper's per-step
// tables and figures, a scenario measures the §7 protocol as a whole, so
// success RATES and latency DISTRIBUTIONS of entire attacks can be
// estimated across many trials and swept across configurations.
//
// Every scenario is also registered as a cell experiment
// ("scenario/<id>", see experiments.RegisterCell), which lets
// internal/sweep place whole attacks in a replacement-policy x
// associativity x slice x noise grid exactly like micro-experiments.
//
// Determinism: a scenario trial draws all randomness from the engine's
// per-trial seed and touches no state outside its pooled host, so a
// Report is byte-identical for every worker count (the cmd/llcattack
// -parallel contract, mirrored from cmd/llcrepro and cmd/llcsweep).
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tenant"
)

// Step is one pipeline stage of a scenario trial with its virtual-cycle
// budget. Steps appear in execution order; a failed trial stops at its
// first failing step.
type Step struct {
	Name   string       `json:"name"`
	OK     bool         `json:"ok"`
	Cycles clock.Cycles `json:"cycles"`
}

// Outcome is the structured result of one scenario trial.
type Outcome struct {
	// Success is the scenario's own end-to-end success notion (signal
	// found, correct set identified, key recovered, channel usable).
	Success bool `json:"success"`
	// Steps carries the per-step cycle budgets in pipeline order.
	Steps []Step `json:"steps"`
	// TotalCycles is the whole pipeline's virtual time.
	TotalCycles clock.Cycles `json:"total_cycles"`

	// Bit accounting (extraction and covert scenarios): bits recovered /
	// observed, and recovered bits that were wrong (privileged scoring).
	BitsRecovered int `json:"bits_recovered,omitempty"`
	BitsTotal     int `json:"bits_total,omitempty"`
	BitsWrong     int `json:"bits_wrong,omitempty"`

	// Covert-channel scenarios: effective capacity in bits per virtual
	// second, modelling the channel as a binary erasure channel.
	CapacityBps float64 `json:"capacity_bps,omitempty"`

	// Key-recovery scenarios: leaks fed to the lattice, subset attempts
	// consumed, and whether the recovered key matched ground truth.
	Leaks           int  `json:"leaks,omitempty"`
	LatticeAttempts int  `json:"lattice_attempts,omitempty"`
	KeyRecovered    bool `json:"key_recovered,omitempty"`
}

// Scenario is one registered end-to-end attack.
type Scenario struct {
	ID   string
	Desc string
	// Config builds the scenario's default host configuration, used for
	// standalone runs (cmd/llcattack). Sweep cells override it with grid
	// coordinates instead.
	Config func() hierarchy.Config
	// Run executes one full pipeline on the given config. It must obey
	// the engine's determinism contract: all randomness from t.Seed (or
	// seeds derived from it), no state outside hosts from t.Host.
	Run func(t *experiments.Trial, cfg hierarchy.Config) Outcome
}

var scenarios = map[string]Scenario{}

// Register adds a scenario to the registry and mirrors it into the cell
// experiment registry as "scenario/<id>", so sweeps can grid whole
// attacks. Scenario cells are monitoring-dominated pipelines, so they
// take a sweep's noise_rates raw (ConstructionNoise unset): the
// equivalent-noise rescaling documented for construction cells does not
// apply, and the construction step inside a scenario sees the declared
// rate as-is. A cell runs on the sweep's grid config, with one
// refinement: whatever DEFINES the scenario variant — a baked defense
// or a baked tenant workload — carries over unless the grid explicitly
// swept that axis, so a cell named scenario/covert/channel/quiesce
// really measures a quiesced host even in a grid whose defenses axis is
// the default "none" (and a defenses-axis value, when present, wins).
// Register panics on duplicate ids (a programming error).
func Register(sc Scenario) {
	if _, dup := scenarios[sc.ID]; dup {
		panic("scenario: duplicate scenario id " + sc.ID)
	}
	if sc.Config == nil || sc.Run == nil {
		panic("scenario: " + sc.ID + " missing Config or Run")
	}
	scenarios[sc.ID] = sc
	experiments.RegisterCell(experiments.Cell{
		ID:   "scenario/" + sc.ID,
		Desc: "end-to-end scenario: " + sc.Desc,
		Unit: "cycles",
		Run: func(t *experiments.Trial, cfg hierarchy.Config) experiments.Sample {
			own := sc.Config()
			if cfg.Defense == nil && own.Defense != nil {
				cfg = cfg.WithDefense(*own.Defense)
			}
			if len(cfg.Tenants) == 0 && len(own.Tenants) > 0 {
				cfg = cfg.WithTenants(own.Tenants...)
			}
			o := sc.Run(t, cfg)
			return experiments.Sample{OK: o.Success, Value: float64(o.TotalCycles)}
		},
	})
}

// Lookup returns the scenario registered under id.
func Lookup(id string) (Scenario, bool) {
	sc, ok := scenarios[id]
	return sc, ok
}

// IDs returns the sorted ids of all registered scenarios.
func IDs() []string {
	ids := make([]string, 0, len(scenarios))
	for id := range scenarios {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// List returns "id  description" lines for every scenario, sorted by id
// (the -list output of cmd/llcattack).
func List() []string {
	ids := IDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%-24s %s", id, scenarios[id].Desc)
	}
	return out
}

// StepAggregate summarizes one pipeline step across the trials that
// reached it.
type StepAggregate struct {
	Name string `json:"name"`
	// Reached counts trials that executed the step at all; Successes
	// counts those where it succeeded. The Wilson interval is over
	// Successes/Reached.
	Reached     int     `json:"reached"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	SuccessLo   float64 `json:"success_lo"`
	SuccessHi   float64 `json:"success_hi"`
	// Cycle distribution over successful executions of the step.
	CyclesMean   float64 `json:"cycles_mean"`
	CyclesMedian float64 `json:"cycles_median"`
}

// Aggregate is the success-rate and latency summary of a scenario run.
type Aggregate struct {
	Trials      int     `json:"trials"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	// Wilson 95% score interval on the end-to-end success rate.
	SuccessLo float64 `json:"success_lo"`
	SuccessHi float64 `json:"success_hi"`
	// Whole-pipeline latency distribution over successful trials.
	CyclesMean   float64 `json:"cycles_mean"`
	CyclesMedian float64 `json:"cycles_median"`
	CyclesP95    float64 `json:"cycles_p95"`
	// Per-step aggregation in pipeline order.
	Steps []StepAggregate `json:"steps,omitempty"`
	// Summed bit accounting and mean channel capacity, where applicable.
	BitsRecovered   int     `json:"bits_recovered,omitempty"`
	BitsTotal       int     `json:"bits_total,omitempty"`
	BitsWrong       int     `json:"bits_wrong,omitempty"`
	CapacityBpsMean float64 `json:"capacity_bps_mean,omitempty"`
	KeysRecovered   int     `json:"keys_recovered,omitempty"`
}

// Report is the artifact of one scenario run: per-trial outcomes plus
// the aggregate. For a fixed seed it is byte-identical at every worker
// count.
type Report struct {
	Scenario string `json:"scenario"`
	Desc     string `json:"desc"`
	Trials   int    `json:"trials"`
	Seed     uint64 `json:"seed"`
	// Tenants records a background-workload override (RunTenants), so
	// the artifact self-describes the environment it measured; empty for
	// the scenario's own default config.
	Tenants []tenant.Spec `json:"tenants,omitempty"`
	// Defense records an LLC-countermeasure override (RunWith / the
	// cmd/llcattack -defense flag); nil for the scenario's own config
	// (which may itself carry a defense in the defended variants).
	Defense   *defense.Spec `json:"defense,omitempty"`
	Outcomes  []Outcome     `json:"outcomes"`
	Aggregate Aggregate     `json:"aggregate"`
}

// WriteJSON renders the report as indented JSON. Encoding is fully
// deterministic: struct-ordered keys, shortest-form floats.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Run executes trials of the scenario on its default config across
// workers (<= 0 selects GOMAXPROCS) and aggregates the outcomes. The
// report depends only on (id, trials, seed).
func Run(id string, trials, workers int, seed uint64) (*Report, error) {
	return RunTenants(id, nil, trials, workers, seed)
}

// RunTenants is Run with the scenario's background workload replaced by
// the given tenant specs (the cmd/llcattack -tenants override); nil
// specs keep the scenario's own environment. Specs must already be
// validated (tenant.ParseList / Spec.Validate); an invalid spec fails
// host construction.
func RunTenants(id string, tenants []tenant.Spec, trials, workers int, seed uint64) (*Report, error) {
	return RunWith(context.Background(), id, tenants, nil, trials, workers, seed)
}

// RunWith is Run with both environment overrides: tenant specs replace
// the scenario's background workload and def replaces its LLC defense
// (the cmd/llcattack -tenants / -defense flags). Nil values keep the
// scenario's own environment; a defense override must survive
// hierarchy.Config.Validate against the scenario's geometry, reported
// as an error rather than a panic. Cancelling ctx (the CLI's signal
// context) stops the run between trials and returns the context's
// error; a completed report never depends on ctx.
func RunWith(ctx context.Context, id string, tenants []tenant.Spec, def *defense.Spec, trials, workers int, seed uint64) (*Report, error) {
	return RunWithObs(ctx, id, tenants, def, trials, workers, seed, nil)
}

// RunWithObs is RunWith with an observability sink (the cmd/llcattack
// -trace flag): when sink.Tracer is set every trial's pipeline steps
// land on the trace as cat="phase" spans, and when sink.Metrics is set
// the engine's trial metrics record. A nil sink is exactly RunWith —
// the report is byte-identical either way (determinism clause 10).
func RunWithObs(ctx context.Context, id string, tenants []tenant.Spec, def *defense.Spec, trials, workers int, seed uint64, sink *obs.Sink) (*Report, error) {
	sc, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (known: %v)", id, IDs())
	}
	if trials < 1 {
		return nil, fmt.Errorf("scenario: trials must be >= 1, got %d", trials)
	}
	cfg := sc.Config()
	if len(tenants) > 0 {
		cfg = cfg.WithTenants(tenants...)
	}
	if def != nil {
		cfg = cfg.WithDefense(*def)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", sc.ID, err)
	}
	outs, err := RunOnObs(ctx, sc, cfg, trials, workers, seed, sink)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", sc.ID, err)
	}
	return &Report{
		Scenario:  sc.ID,
		Desc:      sc.Desc,
		Trials:    trials,
		Seed:      seed,
		Tenants:   tenants,
		Defense:   def,
		Outcomes:  outs,
		Aggregate: AggregateOutcomes(outs),
	}, nil
}

// RunOn executes trials of sc on an explicit config through the trial
// engine, returning the outcomes in trial order (an error only on
// cancellation or a panicking trial). Per-trial outcome slots keep the
// writes race-free at any worker count, like the engine's own sample
// slice.
func RunOn(ctx context.Context, sc Scenario, cfg hierarchy.Config, trials, workers int, seed uint64) ([]Outcome, error) {
	return RunOnObs(ctx, sc, cfg, trials, workers, seed, nil)
}

// RunOnObs is RunOn with an observability sink: trials run under the
// sink's PID track (named after the scenario on the trace), with the
// trial index as TID. A nil sink is exactly RunOn.
func RunOnObs(ctx context.Context, sc Scenario, cfg hierarchy.Config, trials, workers int, seed uint64, sink *obs.Sink) ([]Outcome, error) {
	if sink != nil && sink.Tracer != nil {
		sink.Tracer.SetProcessName(sink.TracePID, "scenario "+sc.ID)
	}
	outs := make([]Outcome, trials)
	_, err := experiments.RunTrialsObs(ctx, trials, workers, experiments.SubSeed(seed, "scenario", sc.ID), sink, func(t *experiments.Trial) experiments.Sample {
		o := sc.Run(t, cfg)
		outs[t.Index] = o
		return experiments.Sample{OK: o.Success, Value: float64(o.TotalCycles)}
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// AggregateOutcomes folds per-trial outcomes into the success-rate and
// latency summary, with Wilson 95% intervals on every rate.
func AggregateOutcomes(outs []Outcome) Aggregate {
	agg := Aggregate{Trials: len(outs)}
	var okCycles []float64
	type stepAcc struct {
		reached, succ int
		cycles        []float64
	}
	var stepOrder []string
	accs := map[string]*stepAcc{}
	for _, o := range outs {
		if o.Success {
			agg.Successes++
			okCycles = append(okCycles, float64(o.TotalCycles))
		}
		agg.BitsRecovered += o.BitsRecovered
		agg.BitsTotal += o.BitsTotal
		agg.BitsWrong += o.BitsWrong
		agg.CapacityBpsMean += o.CapacityBps
		if o.KeyRecovered {
			agg.KeysRecovered++
		}
		for _, s := range o.Steps {
			acc, ok := accs[s.Name]
			if !ok {
				acc = &stepAcc{}
				accs[s.Name] = acc
				stepOrder = append(stepOrder, s.Name)
			}
			acc.reached++
			if s.OK {
				acc.succ++
				acc.cycles = append(acc.cycles, float64(s.Cycles))
			}
		}
	}
	if agg.Trials > 0 {
		agg.SuccessRate = float64(agg.Successes) / float64(agg.Trials)
		agg.CapacityBpsMean /= float64(agg.Trials)
	}
	agg.SuccessLo, agg.SuccessHi = stats.Wilson(agg.Successes, agg.Trials, 1.96)
	agg.CyclesMean = stats.Mean(okCycles)
	agg.CyclesMedian = stats.Median(okCycles)
	agg.CyclesP95 = stats.Percentile(okCycles, 95)
	for _, name := range stepOrder {
		acc := accs[name]
		sa := StepAggregate{
			Name:         name,
			Reached:      acc.reached,
			Successes:    acc.succ,
			CyclesMean:   stats.Mean(acc.cycles),
			CyclesMedian: stats.Median(acc.cycles),
		}
		if acc.reached > 0 {
			sa.SuccessRate = float64(acc.succ) / float64(acc.reached)
		}
		sa.SuccessLo, sa.SuccessHi = stats.Wilson(acc.succ, acc.reached, 1.96)
		agg.Steps = append(agg.Steps, sa)
	}
	return agg
}
