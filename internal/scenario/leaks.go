package scenario

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/clock"
	"repro/internal/lattice"
	"repro/internal/probe"
	"repro/internal/xrand"
)

// This file turns captured traces into HNP leaks for the key-recovery
// scenario, using only attacker-visible information: detection
// timestamps, the iteration duration learned in training, the request
// submission time, and the public signature. The paper reads nonce bits
// directly off the trace the same way (Figure 9); the ladder's fixed
// iteration period makes the trace a comb whose teeth are the iteration
// boundaries, with a midpoint tooth on 0-bit iterations.

// comb geometry, in fractions of one iteration.
const (
	combQuietBefore = 2.5  // a ladder start is preceded by this much quiet
	combBoundaryTol = 0.28 // a boundary detection sits this close to a slot start
	combMidLo       = 0.44 // the 0-bit call window: true midpoint detections
	combMidHi       = 0.64 // cluster tightly around ~0.53 of the slot
	combLooseLo     = 0.30 // the loose window: a detection here but not in
	combLooseHi     = 0.72 // the call window leaves the bit suspicious
	combSlotHi      = 0.78 // slot-presence window end (boundary + midpoint)
	combDenseSlots  = 5    // slots after the anchor that must all be populated
	combEndEmpty    = 3    // consecutive empty slots that end the ladder
)

// scoredLeak is one candidate HNP leak with its attacker-visible
// confidence score: boundary-confirmed known-bit slots score up,
// suspicious bits (a detection in the loose midpoint window only —
// plausibly a drifted real midpoint read as a 1) score heavily down.
type scoredLeak struct {
	leak  lattice.Leak
	score int
}

// findAnchor returns the index of the first detection at or after start
// that looks like a ladder start: quiet for combQuietBefore iterations
// before it, and the next combDenseSlots iteration slots all populated.
// The validation rejects pre-ladder noise detections (no dense comb
// follows) and late anchors (the preceding ladder teeth break the quiet
// requirement).
func findAnchor(times []clock.Cycles, iter float64, start clock.Cycles) (int, bool) {
	has := func(lo, hi float64) bool { return detectIn(times, lo, hi) }
	for i, t := range times {
		if t < start {
			continue
		}
		ft := float64(t)
		if has(ft-combQuietBefore*iter, ft-combBoundaryTol*iter) {
			continue
		}
		ok := true
		for k := 1; k <= combDenseSlots; k++ {
			slot := ft + float64(k)*iter
			if !has(slot-combBoundaryTol*iter, slot+combSlotHi*iter) {
				ok = false
				break
			}
		}
		if ok {
			return i, true
		}
	}
	return 0, false
}

// walkComb reads one bit per iteration slot starting at the anchor,
// re-anchoring on boundary detections so jitter cannot accumulate, until
// combEndEmpty consecutive empty slots mark the ladder's end. It returns
// the bit sequence, per-slot boundary-confirmation and suspicion flags
// (a loose-window-only detection: the bit reads 1 but could be a drifted
// 0-bit midpoint), and the total iteration count.
func walkComb(times []clock.Cycles, iter float64, anchor float64) (bits []uint, confirmed, suspicious []bool, iters int) {
	pos := anchor
	empty := 0
	for k := 0; k < 4096; k++ {
		lo := pos - combBoundaryTol*iter
		i := sort.Search(len(times), func(i int) bool { return float64(times[i]) >= lo })
		var boundary float64
		haveBoundary := false
		for ; i < len(times); i++ {
			ft := float64(times[i])
			if ft > pos+combBoundaryTol*iter {
				break
			}
			if !haveBoundary || abs(ft-pos) < abs(boundary-pos) {
				boundary, haveBoundary = ft, true
			}
		}
		mid := detectIn(times, pos+combMidLo*iter, pos+combMidHi*iter)
		loose := detectIn(times, pos+combLooseLo*iter, pos+combLooseHi*iter)
		if !haveBoundary && !mid && !loose {
			empty++
			if empty >= combEndEmpty {
				iters = k - empty + 1
				break
			}
		} else {
			empty = 0
			iters = k + 1
		}
		bit := uint(1)
		if mid {
			bit = 0
		}
		bits = append(bits, bit)
		confirmed = append(confirmed, haveBoundary)
		suspicious = append(suspicious, !mid && loose)
		if haveBoundary {
			pos = boundary + iter
		} else {
			pos += iter
		}
	}
	if iters > len(bits) {
		iters = len(bits)
	}
	return bits[:iters], confirmed[:iters], suspicious[:iters], iters
}

// detectIn reports whether any detection time falls in [lo, hi).
func detectIn(times []clock.Cycles, lo, hi float64) bool {
	i := sort.Search(len(times), func(i int) bool { return float64(times[i]) >= lo })
	return i < len(times) && float64(times[i]) < hi
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// leakFromTrace builds a scored HNP leak from one captured signing
// trace: the validated anchor fixes iteration 0, the comb walk reads the
// leading nonce bits and measures the ladder length (iterations + 1 =
// the nonce's bit length — shorter nonces run fewer iterations, which is
// attacker-visible), and the implicit leading 1 completes knownBits
// known MSBs. nbits is the curve order's bit length; estimated lengths
// outside (nbits-6, nbits] are rejected as mismeasured.
func leakFromTrace(tr *probe.Trace, r, sg, z *big.Int, iter float64, start clock.Cycles, nbits int) (scoredLeak, bool) {
	ai, ok := findAnchor(tr.Times, iter, start)
	if !ok {
		return scoredLeak{}, false
	}
	bits, confirmed, suspicious, iters := walkComb(tr.Times, iter, float64(tr.Times[ai]))
	kBits := iters + 1
	if kBits <= nbits-6 || kBits > nbits || len(bits) < knownBits-1 || kBits <= knownBits {
		return scoredLeak{}, false
	}
	top := big.NewInt(1)
	score := 0
	for i, b := range bits[:knownBits-1] {
		top.Lsh(top, 1)
		top.Or(top, big.NewInt(int64(b)))
		if confirmed[i] {
			score++
		}
		if suspicious[i] {
			score -= 5
		}
	}
	return scoredLeak{leak: lattice.LeakFromTopBits(r, sg, z, top, kBits, knownBits), score: score}, true
}

// bestLeaks orders candidate leaks by confidence (score descending,
// collection order breaking ties) and returns the ordered leaks.
func bestLeaks(cands []scoredLeak) []lattice.Leak {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return cands[idx[a]].score > cands[idx[b]].score })
	out := make([]lattice.Leak, len(cands))
	for i, j := range idx {
		out[i] = cands[j].leak
	}
	return out
}

// attemptSubsets returns the lattice attempt schedule over n ranked
// leaks: the top-k subset first, then deduplicated random k-subsets from
// the trial-seeded rng. Random diversity beats lexicographic neighbors
// here: a confidently wrong leak near the top of the ranking would
// otherwise contaminate nearly every attempt. The schedule is a pure
// function of (n, k, max, rng state), so runs stay deterministic.
func attemptSubsets(n, k, max int, rng *xrand.Rand) [][]int {
	if k > n {
		return nil
	}
	first := make([]int, k)
	for i := range first {
		first[i] = i
	}
	out := [][]int{first}
	seen := map[string]bool{fmt.Sprint(first): true}
	for draws := 0; len(out) < max && draws < 4*max; draws++ {
		idxs := append([]int(nil), rng.Perm(n)[:k]...)
		sort.Ints(idxs)
		key := fmt.Sprint(idxs)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, idxs)
	}
	return out
}
