package scenario

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/experiments"
	"repro/internal/xrand"
)

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 6 {
		t.Fatalf("expected at least 6 scenarios, got %v", ids)
	}
	for _, want := range []string{"e2e/keyrecovery", "e2e/extract", "covert/channel", "scan/psd"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("scenario %q not registered", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown id")
	}
	if len(List()) != len(ids) {
		t.Error("List and IDs disagree")
	}
	// Every scenario is mirrored into the sweep cell registry.
	for _, id := range ids {
		cell, ok := experiments.LookupCell("scenario/" + id)
		if !ok {
			t.Errorf("scenario %q has no cell experiment", id)
			continue
		}
		if cell.Unit != "cycles" {
			t.Errorf("scenario cell %q unit = %q, want cycles", id, cell.Unit)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run("nope", 1, 1, 1); err == nil {
		t.Fatal("Run accepted an unknown scenario")
	}
	if _, err := Run("scan/psd", 0, 1, 1); err == nil {
		t.Fatal("Run accepted zero trials")
	}
}

func TestAggregateOutcomes(t *testing.T) {
	outs := []Outcome{
		{Success: true, TotalCycles: 100, BitsRecovered: 10, BitsTotal: 20, KeyRecovered: true,
			Steps: []Step{{Name: "a", OK: true, Cycles: 40}, {Name: "b", OK: true, Cycles: 60}}},
		{Success: false, TotalCycles: 50, BitsRecovered: 2, BitsTotal: 20,
			Steps: []Step{{Name: "a", OK: false, Cycles: 50}}},
	}
	agg := AggregateOutcomes(outs)
	if agg.Trials != 2 || agg.Successes != 1 || agg.SuccessRate != 0.5 {
		t.Fatalf("bad success accounting: %+v", agg)
	}
	if agg.SuccessLo >= agg.SuccessRate || agg.SuccessHi <= agg.SuccessRate {
		t.Fatalf("Wilson interval [%v, %v] does not bracket the rate", agg.SuccessLo, agg.SuccessHi)
	}
	if agg.CyclesMean != 100 || agg.CyclesMedian != 100 {
		t.Fatalf("latency stats must cover successful trials only: %+v", agg)
	}
	if agg.BitsRecovered != 12 || agg.BitsTotal != 40 || agg.KeysRecovered != 1 {
		t.Fatalf("bad bit/key accounting: %+v", agg)
	}
	if len(agg.Steps) != 2 {
		t.Fatalf("want 2 step aggregates, got %v", agg.Steps)
	}
	a := agg.Steps[0]
	if a.Name != "a" || a.Reached != 2 || a.Successes != 1 || a.SuccessRate != 0.5 {
		t.Fatalf("step a aggregate wrong: %+v", a)
	}
	b := agg.Steps[1]
	if b.Name != "b" || b.Reached != 1 || b.Successes != 1 || b.CyclesMean != 60 {
		t.Fatalf("step b aggregate wrong: %+v", b)
	}
	// Empty input yields the vacuous interval, no NaNs.
	empty := AggregateOutcomes(nil)
	if empty.SuccessLo != 0 || empty.SuccessHi != 1 || empty.CyclesMean != 0 {
		t.Fatalf("empty aggregate wrong: %+v", empty)
	}
}

func TestAttemptSubsets(t *testing.T) {
	rng := xrand.New(1)
	subs := attemptSubsets(12, 5, 24, rng)
	if len(subs) == 0 {
		t.Fatal("no attempts")
	}
	for i, want := range []int{0, 1, 2, 3, 4} {
		if subs[0][i] != want {
			t.Fatalf("first attempt must be the top-ranked subset, got %v", subs[0])
		}
	}
	seen := map[string]bool{}
	for _, s := range subs {
		if len(s) != 5 {
			t.Fatalf("subset size %d", len(s))
		}
		for i := range s {
			if s[i] < 0 || s[i] >= 12 || (i > 0 && s[i] <= s[i-1]) {
				t.Fatalf("subset not sorted-unique in range: %v", s)
			}
		}
		key := ""
		for _, v := range s {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
	}
	// Degenerate cases.
	if got := attemptSubsets(3, 5, 10, xrand.New(2)); got != nil {
		t.Fatalf("k > n must yield no attempts, got %v", got)
	}
	if got := attemptSubsets(5, 5, 10, xrand.New(3)); len(got) != 1 {
		t.Fatalf("n == k must yield exactly the one subset, got %v", got)
	}
}

func TestWalkCombReadsPlantedLadder(t *testing.T) {
	// Synthesize a clean ladder trace: boundary tooth per iteration,
	// midpoint tooth on 0-bits, and verify the comb reader returns the
	// planted bits and length.
	const iter = 9700.0
	bits := []uint{1, 0, 0, 1, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0}
	var times []clock.Cycles
	t0 := 50_000.0
	for k, b := range bits {
		times = append(times, clock.Cycles(t0+float64(k)*iter))
		if b == 0 {
			times = append(times, clock.Cycles(t0+(float64(k)+0.53)*iter))
		}
	}
	got, confirmed, suspicious, iters := walkComb(times, iter, t0)
	if iters != len(bits) {
		t.Fatalf("iters = %d, want %d", iters, len(bits))
	}
	for k, b := range bits {
		if got[k] != b {
			t.Fatalf("bit %d = %d, want %d", k, got[k], b)
		}
		if !confirmed[k] || suspicious[k] {
			t.Fatalf("slot %d: confirmed=%v suspicious=%v", k, confirmed[k], suspicious[k])
		}
	}
	// An anchor is found and validated on the same trace.
	ai, ok := findAnchor(times, iter, 0)
	if !ok || times[ai] != times[0] {
		t.Fatalf("findAnchor = (%d, %v), want the first tooth", ai, ok)
	}
	// A lone noise detection long before the ladder must not anchor.
	noisy := append([]clock.Cycles{clock.Cycles(t0 - 40*iter)}, times...)
	ai, ok = findAnchor(noisy, iter, 0)
	if !ok || noisy[ai] != times[0] {
		t.Fatalf("findAnchor with pre-ladder noise = (%d, %v), want the real ladder start", ai, ok)
	}
}

// TestParallelEquivalence is the engine determinism contract applied to
// whole attacks: for every registered scenario, a 2-trial report must be
// byte-identical between -parallel=1 and -parallel=8.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario pipelines are slow")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var reports [][]byte
			for _, workers := range []int{1, 8} {
				rep, err := Run(id, 2, workers, 7)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rep.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				reports = append(reports, buf.Bytes())
			}
			if !bytes.Equal(reports[0], reports[1]) {
				t.Errorf("parallel=1 and parallel=8 reports differ:\n%s\n---\n%s", reports[0], reports[1])
			}
		})
	}
}
