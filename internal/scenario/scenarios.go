package scenario

import (
	"math/big"
	"time"

	"repro/internal/attack"
	"repro/internal/clock"
	"repro/internal/defense"
	"repro/internal/ec2m"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/tenant"
	"repro/internal/xrand"
)

// This file implements the registered scenarios. Every pipeline runs on
// the scaled Cloud Run host by default (the paper's serverless
// environment); degraded variants bake a harsher config — a noisy
// neighbor tenant or a small Snoop Filter associativity — so robustness
// of the WHOLE attack, not just one step, is measurable.

// Key-recovery tuning (sect163-scale HNP): leaks carry knownBits leaked
// top nonce bits each; latticeSubset leaks per lattice call puts
// latticeSubset*knownBits ≈ 200 known bits against the 163-bit key,
// comfortable HNP slack at LLL dimension latticeSubset+2. Misread leaks
// are tolerated by enumerating subsets of the confidence-ranked leaks.
const (
	knownBits      = 40
	wantLeaks      = 12
	latticeSubset  = 5
	maxSignings    = 40
	maxLatticeTrys = 24
)

func init() {
	cloud := func() hierarchy.Config { return hierarchy.Scaled(4).WithCloudNoise() }
	// Noisy neighbor: a co-tenant hammering the LLC at 3x the measured
	// Cloud Run background rate.
	noisy := func() hierarchy.Config { return hierarchy.Scaled(4).WithNoiseRate(34.5) }
	// Small SF associativity: 6-way instead of the scaled host's 8-way,
	// shrinking the eviction sets the whole pipeline builds on.
	smallSF := func() hierarchy.Config { return hierarchy.Scaled(4).WithSFAssociativity(6).WithCloudNoise() }
	// Structured-tenant variants (internal/tenant): the same mean
	// pressure as the flat noisy/cloud neighbours, re-shaped into the
	// phased, spatial and churning regimes of real co-residents.
	bursty := func() hierarchy.Config {
		// The noisy neighbour's 34.5/ms mean concentrated into 10% duty
		// bursts: 345/ms while on, silent otherwise.
		return hierarchy.Scaled(4).WithTenants(
			tenant.Spec{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.1, OnMs: 2})
	}
	churny := func() hierarchy.Config {
		// Serverless cold-start churn at the Cloud Run mean: instances
		// arrive every ~20 ms, live ~5 ms, each flooding half the sets.
		return hierarchy.Scaled(4).WithTenants(
			tenant.Spec{Model: "churn", Rate: 11.5, LLCProb: 0.5,
				ArrivalsPerMs: 0.05, LifeMs: 5, FootprintFrac: 0.5})
	}
	streamy := func() hierarchy.Config {
		// A sequential scanner sweeping set indices at 3x the Cloud Run
		// mean, 4 accesses per visit.
		return hierarchy.Scaled(4).WithTenants(
			tenant.Spec{Model: "stream", Rate: 34.5, LLCProb: 0.5, Width: 4})
	}
	hotsetty := func() hierarchy.Config {
		// A co-tenant whose working set collides with a quarter of the
		// sets, at 4x the per-set pressure there (same total as 34.5 flat).
		return hierarchy.Scaled(4).WithTenants(
			tenant.Spec{Model: "hotset", Rate: 34.5, LLCProb: 0.5, HotFrac: 0.25})
	}

	Register(Scenario{
		ID:     "scan/psd",
		Desc:   "steps 1-2: build page-offset eviction sets, PSD-scan for the victim's target set",
		Config: cloud,
		Run:    runScan,
	})
	Register(Scenario{
		ID:     "e2e/extract",
		Desc:   "§7.3 protocol: construction, PSD scan, Parallel-Probing nonce-bit extraction",
		Config: cloud,
		Run:    runExtract,
	})
	Register(Scenario{
		ID:     "e2e/extract/noisy",
		Desc:   "e2e/extract degraded by a noisy neighbor (3x Cloud Run background rate)",
		Config: noisy,
		Run:    runExtract,
	})
	Register(Scenario{
		ID:     "e2e/extract/smallsf",
		Desc:   "e2e/extract degraded to a 6-way Snoop Filter",
		Config: smallSF,
		Run:    runExtract,
	})
	Register(Scenario{
		ID:     "e2e/keyrecovery",
		Desc:   "full chain: extraction plus HNP lattice until the sect163 private key verifies",
		Config: cloud,
		Run:    runKeyRecovery,
	})
	Register(Scenario{
		ID:     "covert/channel",
		Desc:   "cross-tenant covert channel over one SF set with Parallel Probing (5k-cycle interval)",
		Config: cloud,
		Run:    runCovert,
	})
	Register(Scenario{
		ID:     "covert/channel/noisy",
		Desc:   "covert/channel degraded by a noisy neighbor (3x Cloud Run background rate)",
		Config: noisy,
		Run:    runCovert,
	})
	Register(Scenario{
		ID:     "e2e/extract/burst",
		Desc:   "e2e/extract under a bursty tenant (34.5/ms mean in 10%-duty on/off phases)",
		Config: bursty,
		Run:    runExtract,
	})
	Register(Scenario{
		ID:     "e2e/keyrecovery/churn",
		Desc:   "e2e/keyrecovery under serverless cold-start churn (arrivals flooding half the sets)",
		Config: churny,
		Run:    runKeyRecovery,
	})
	Register(Scenario{
		ID:     "covert/channel/stream",
		Desc:   "covert/channel under a streaming tenant sweeping set indices at 3x Cloud Run rate",
		Config: streamy,
		Run:    runCovert,
	})
	Register(Scenario{
		ID:     "scan/psd/hotset",
		Desc:   "scan/psd with a hot-set tenant colliding with a quarter of the sets at 4x pressure",
		Config: hotsetty,
		Run:    runScan,
	})

	// Defended variants (internal/defense): the same pipelines against a
	// host that deploys one countermeasure, so every attack step's
	// robustness — and the defense's cost — is measurable against the
	// undefended cells above (the DEFENSE_seed.json artifact's axis).
	defended := func(spec defense.Spec) func() hierarchy.Config {
		return func() hierarchy.Config { return hierarchy.Scaled(4).WithCloudNoise().WithDefense(spec) }
	}
	Register(Scenario{
		ID:     "e2e/extract/partition",
		Desc:   "e2e/extract against CAT-style way-partitioning (attacker confined to 4 of 8 SF ways)",
		Config: defended(defense.Spec{Model: "partition", Ways: 4}),
		Run:    runExtract,
	})
	Register(Scenario{
		ID:     "e2e/keyrecovery/randomize",
		Desc:   "e2e/keyrecovery against CEASER-style keyed index randomization (rekeyed every 100k accesses)",
		Config: defended(defense.Spec{Model: "randomize"}),
		Run:    runKeyRecovery,
	})
	Register(Scenario{
		ID:     "scan/psd/scatter",
		Desc:   "scan/psd against ScatterCache-style per-domain skewed index derivation",
		Config: defended(defense.Spec{Model: "scatter"}),
		Run:    runScan,
	})
	Register(Scenario{
		ID:     "covert/channel/quiesce",
		Desc:   "covert/channel against quantized probe feedback (512-cycle timer quantum)",
		Config: defended(defense.Spec{Model: "quiesce"}),
		Run:    runCovert,
	})
}

// scanTimeout returns the pipeline's Step-2 scan budget: the paper's
// 60 s (PageOffset, §7.2) on an undefended host, tightened to 250 ms of
// virtual time against a defended one. The tight budget still covers
// the whole undefended success distribution several times over (~8 full
// passes across the page-offset sets; observed undefended successes
// finish within 120 ms), but bounds the defended scans — which mostly
// CANNOT succeed, by construction of the defense — so a failing trial
// costs milliseconds of simulated scanning instead of a minute.
func scanTimeout(cfg hierarchy.Config) clock.Cycles {
	if cfg.Defense != nil {
		return clock.FromMillis(250)
	}
	return clock.FromMillis(60_000)
}

// stepTimer stamps pipeline steps with their virtual-cycle budgets.
type stepTimer struct {
	h     *hierarchy.Host
	start clock.Cycles
	last  clock.Cycles
	steps []Step
	// tr receives one cat="phase" span per marked step when the trial
	// is traced (nil otherwise); wallLast is the host-time cursor for
	// each span's wall_us attribution. Tracing reads the same clock
	// values the steps already record plus the host wall clock — it
	// feeds nothing back into steps or the simulated clock, so a traced
	// Outcome is byte-identical to an untraced one (clause 10).
	tr       *obs.TrialTrace
	wallLast time.Time
}

func newStepTimer(h *hierarchy.Host, tr *obs.TrialTrace) *stepTimer {
	now := h.Clock().Now()
	st := &stepTimer{h: h, start: now, last: now, tr: tr}
	if tr.Enabled() {
		st.wallLast = time.Now()
	}
	return st
}

// emit records one phase span covering the d cycles after st.last and
// advances the wall cursor. No-op on untraced runs.
func (st *stepTimer) emit(name string, ok bool, d clock.Cycles) {
	if !st.tr.Enabled() {
		return
	}
	now := time.Now()
	st.tr.Span(name, "phase", st.last, d, now.Sub(st.wallLast), ok)
	st.wallLast = now
}

// mark closes the current step at the host clock's present reading.
func (st *stepTimer) mark(name string, ok bool) {
	now := st.h.Clock().Now()
	st.steps = append(st.steps, Step{Name: name, OK: ok, Cycles: now - st.last})
	st.emit(name, ok, now-st.last)
	st.last = now
}

// markSpan records a step whose duration was measured by the callee.
func (st *stepTimer) markSpan(name string, ok bool, d clock.Cycles) {
	st.steps = append(st.steps, Step{Name: name, OK: ok, Cycles: d})
	st.emit(name, ok, d)
	st.last += d
}

// outcome finalizes the trial with the pipeline's total virtual time.
// On traced runs, any virtual time the pipeline spent outside a marked
// step is emitted as an "unattributed" phase span, so the phase spans
// of a trial always sum exactly to TotalCycles.
func (st *stepTimer) outcome(success bool) Outcome {
	now := st.h.Clock().Now()
	if rem := now - st.last; rem > 0 {
		st.emit("unattributed", success, rem)
	}
	return Outcome{
		Success:     success,
		Steps:       st.steps,
		TotalCycles: now - st.start,
	}
}

// newSession co-locates an attacker and a sect163 victim on the trial's
// pooled host.
func newSession(t *experiments.Trial, cfg hierarchy.Config) *attack.Session {
	s := attack.NewSessionOn(t.Host(cfg, t.Seed), ec2m.Sect163(), t.Seed)
	s.Trace = t.Trace
	return s
}

// train runs the §7.2 controlled training phase on the session's own
// host and returns both classifiers.
func train(s *attack.Session, seed uint64) (*psd.Scanner, *attack.Extractor) {
	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	scanner, ex, _ := s.TrainAll(p, xrand.New(seed^0x7a1))
	return scanner, ex
}

// runScan is steps 1-2 of the protocol: success means the PSD scanner
// identified the CORRECT set (privileged check, as in Table 6).
func runScan(t *experiments.Trial, cfg hierarchy.Config) Outcome {
	s := newSession(t, cfg)
	st := newStepTimer(s.H, t.Trace)
	scanner, _ := train(s, t.Seed)
	st.mark("train", scanner != nil)
	if scanner == nil {
		return st.outcome(false)
	}
	bulk := s.BuildEvictionSets(attack.DefaultE2EOptions().Bulk)
	st.markSpan("build", len(bulk.Sets) > 0, bulk.Duration)
	if len(bulk.Sets) == 0 {
		return st.outcome(false)
	}
	res := s.ScanForTarget(bulk.Sets, scanner, attack.ScanOptions{Timeout: scanTimeout(cfg)})
	ok := res.Found && res.Correct
	st.markSpan("scan", ok, res.Duration)
	return st.outcome(ok)
}

// runExtract is the §7.3 protocol: success is the paper's per-host
// notion (a target set was identified and produced a signal); the bit
// fields carry the exact extraction accounting.
func runExtract(t *experiments.Trial, cfg hierarchy.Config) Outcome {
	s := newSession(t, cfg)
	st := newStepTimer(s.H, t.Trace)
	scanner, ex := train(s, t.Seed)
	st.mark("train", scanner != nil)
	if scanner == nil {
		return st.outcome(false)
	}
	opt := attack.DefaultE2EOptions()
	opt.Traces = 5
	opt.ScanTimeout = scanTimeout(cfg)
	res := s.RunEndToEnd(scanner, ex, opt)
	st.markSpan("build", res.SetsBuilt > 0, res.BuildTime)
	if res.SetsBuilt == 0 {
		return st.outcome(false)
	}
	st.markSpan("scan", res.Scan.Found, res.Scan.Duration)
	if !res.Scan.Found {
		return st.outcome(false)
	}
	st.markSpan("extract", res.BitsRecovered > 0, res.TotalTime-res.BuildTime-res.Scan.Duration)
	// "Produced a signal" requires recovered bits, not just a scanner
	// verdict: a defended host's garbage-trained scanner can still
	// false-positive a set, but an extraction that reads zero bits is a
	// failed attack.
	o := st.outcome(res.SignalFound && res.BitsRecovered > 0)
	o.BitsRecovered = res.BitsRecovered
	o.BitsTotal = res.BitsTotal
	o.BitsWrong = res.BitsWrong
	return o
}

// runKeyRecovery is the complete chain, one step beyond the paper's
// demonstration (which cites lattice attacks for the last step): monitor
// the scanned set across signings, anchor leaked MSB runs, and feed them
// into the HNP lattice until the victim's private key verifies against
// its public point. Success requires the recovered key to equal ground
// truth — everything the attacker USES is attacker-visible (detections,
// boundary spacing, public signatures, public key Q); ground truth only
// scores the result.
func runKeyRecovery(t *experiments.Trial, cfg hierarchy.Config) Outcome {
	s := newSession(t, cfg)
	st := newStepTimer(s.H, t.Trace)
	scanner, ex := train(s, t.Seed)
	st.mark("train", scanner != nil)
	if scanner == nil {
		return st.outcome(false)
	}
	bulk := s.BuildEvictionSets(attack.DefaultE2EOptions().Bulk)
	st.markSpan("build", len(bulk.Sets) > 0, bulk.Duration)
	if len(bulk.Sets) == 0 {
		return st.outcome(false)
	}
	scan := s.ScanForTarget(bulk.Sets, scanner, attack.ScanOptions{Timeout: scanTimeout(cfg)})
	st.markSpan("scan", scan.Found, scan.Duration)
	if !scan.Found {
		return st.outcome(false)
	}

	// Collect candidate leaks: one signing per trace; the comb reader in
	// leaks.go anchors iteration 0, reads the leading nonce bits, and
	// measures the per-nonce ladder length — all attacker-visible.
	m := probe.NewMonitor(s.Env, probe.Parallel, scan.Set.Lines)
	nbits := s.V.Curve.N.BitLen()
	var cands []scoredLeak
	extractStart := s.H.Clock().Now()
	for i := 0; len(cands) < wantLeaks && i < maxSignings; i++ {
		rec := s.TriggerOneSigning()
		tr := m.Capture(rec.End - s.H.Clock().Now() + 30_000)
		if sl, ok := leakFromTrace(tr, rec.Sig.R, rec.Sig.S, rec.Digest, ex.IterCycles, rec.Start, nbits); ok {
			cands = append(cands, sl)
		}
	}
	st.markSpan("extract", len(cands) >= latticeSubset, s.H.Clock().Now()-extractStart)
	if len(cands) < latticeSubset {
		o := st.outcome(false)
		o.Leaks = len(cands)
		return o
	}

	// The real key iff d·G == Q: public-key verification only.
	curve := s.V.Curve
	pub := s.V.Key.Q
	verify := func(d *big.Int) bool {
		pt := curve.ScalarMult(d, curve.G)
		return !pt.Inf && !pub.Inf && pt.X.Equal(pub.X) && pt.Y.Equal(pub.Y)
	}
	// Some leaks carry a misread bit or a mismeasured ladder length: walk
	// lattice attempts over subsets of the confidence-ranked leaks, best
	// subset first, until a candidate key verifies.
	leaks := bestLeaks(cands)
	rng := xrand.New(t.Seed ^ 0x1a771ce)
	var recovered *big.Int
	attempts := 0
	for _, idxs := range attemptSubsets(len(leaks), latticeSubset, maxLatticeTrys, rng) {
		attempts++
		subset := make([]lattice.Leak, 0, latticeSubset)
		for _, j := range idxs {
			subset = append(subset, leaks[j])
		}
		if d, ok := lattice.HNP(curve.N, subset, verify); ok {
			recovered = d
			break
		}
	}
	// The lattice is off-host computation: it consumes no victim time and
	// advances no virtual clock, so its step carries a zero cycle budget
	// by construction (LatticeAttempts records the work done instead).
	st.markSpan("lattice", recovered != nil, 0)

	keyOK := recovered != nil && recovered.Cmp(s.V.Key.D) == 0
	o := st.outcome(keyOK)
	o.Leaks = len(leaks)
	o.LatticeAttempts = attempts
	o.KeyRecovered = keyOK
	return o
}

// runCovert builds the shared SF set (the covert setup shared with the
// Table 5 / Figure 6 runners and the probe/detect cell) and runs the
// §6.1 covert channel with Parallel Probing at a 5k-cycle sender
// interval. Success means the channel is usable (set built and detection
// rate >= 50%); capacity models the channel as a binary erasure channel:
// detection rate times the send rate.
func runCovert(t *experiments.Trial, cfg hierarchy.Config) Outcome {
	const (
		interval = clock.Cycles(5000)
		sends    = 200
	)
	e, lines, alt, sender, ok := experiments.CovertSetup(t, cfg, t.Seed)
	if !ok {
		return Outcome{Steps: []Step{{Name: "build", OK: false}}}
	}
	// CovertSetup obtained the pooled host freshly reset (clock zero), so
	// a zero-started timer charges the whole setup to the build step.
	st := &stepTimer{h: e.Host(), tr: t.Trace}
	if st.tr.Enabled() {
		st.wallLast = time.Now()
	}
	st.mark("build", true)
	m := probe.NewMonitor(e, probe.Parallel, lines).WithAlt(alt)
	cres := probe.RunCovertChannel(e, m, 2, sender, interval, sends)
	st.mark("channel", cres.Sent > 0)
	o := st.outcome(cres.DetectionRate >= 0.5)
	o.BitsRecovered = cres.Detected
	o.BitsTotal = cres.Sent
	o.CapacityBps = cres.DetectionRate / interval.Seconds()
	return o
}
