package classify

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// ring generates two classes: points inside a disc (label -1/0) and on a
// ring around it (label +1/1) — separable by a polynomial/RBF kernel but
// not linearly.
func ring(n int, rng *xrand.Rand) (x [][]float64, ysvm []float64, ybin []int) {
	for i := 0; i < n; i++ {
		ang := rng.Float64() * 2 * math.Pi
		var r float64
		lbl := i%2 == 0
		if lbl {
			r = 2 + rng.Float64()*0.5
		} else {
			r = rng.Float64() * 0.8
		}
		x = append(x, []float64{r * math.Cos(ang), r * math.Sin(ang)})
		if lbl {
			ysvm = append(ysvm, 1)
			ybin = append(ybin, 1)
		} else {
			ysvm = append(ysvm, -1)
			ybin = append(ybin, 0)
		}
	}
	return
}

func TestSVMPolySeparatesRing(t *testing.T) {
	rng := xrand.New(1)
	x, y, _ := ring(200, rng)
	svm := NewSVM(SVMConfig{Kernel: PolyKernel(2, 1, 1), C: 10})
	svm.Train(x, y, rng)
	vx, vy, _ := ring(100, rng)
	correct := 0
	for i := range vx {
		if svm.Predict(vx[i]) == vy[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(vx)); acc < 0.95 {
		t.Fatalf("poly SVM accuracy %.2f, want >= 0.95", acc)
	}
	if svm.SupportVectors() == 0 {
		t.Fatal("no support vectors retained")
	}
}

func TestSVMLinearSeparatesHalfplanes(t *testing.T) {
	rng := xrand.New(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		a := rng.Norm(0, 1)
		b := rng.Norm(0, 1)
		if i%2 == 0 {
			x = append(x, []float64{a + 3, b})
			y = append(y, 1)
		} else {
			x = append(x, []float64{a - 3, b})
			y = append(y, -1)
		}
	}
	svm := NewSVM(SVMConfig{Kernel: LinearKernel(), C: 1})
	svm.Train(x, y, rng)
	correct := 0
	for i := range x {
		if svm.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.97 {
		t.Fatalf("linear SVM accuracy %.2f", acc)
	}
}

func TestForestSeparatesRing(t *testing.T) {
	rng := xrand.New(3)
	x, _, y := ring(300, rng)
	f := NewForest(ForestConfig{Trees: 20})
	f.Train(x, y, rng)
	vx, _, vy := ring(150, rng)
	m := Evaluate(f.Predict, vx, vy)
	if m.Accuracy() < 0.93 {
		t.Fatalf("forest accuracy %.2f, want >= 0.93", m.Accuracy())
	}
}

func TestTreePureLeaves(t *testing.T) {
	rng := xrand.New(4)
	x := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	y := []int{0, 0, 0, 1, 1, 1}
	tr := NewTree(TreeConfig{MinLeaf: 1})
	tr.Train(x, y, rng)
	for i := range x {
		if tr.Predict(x[i]) != y[i] {
			t.Fatalf("tree misclassifies trivially separable point %v", x[i])
		}
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TP: 8, FP: 1, TN: 9, FN: 2}
	if acc := m.Accuracy(); math.Abs(acc-0.85) > 1e-9 {
		t.Fatalf("accuracy = %v", acc)
	}
	if fpr := m.FalsePositiveRate(); math.Abs(fpr-0.1) > 1e-9 {
		t.Fatalf("fpr = %v", fpr)
	}
	if fnr := m.FalseNegativeRate(); math.Abs(fnr-0.2) > 1e-9 {
		t.Fatalf("fnr = %v", fnr)
	}
}

func TestSplitHoldsOutFraction(t *testing.T) {
	rng := xrand.New(5)
	x := make([][]float64, 100)
	y := make([]int, 100)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = i % 2
	}
	tx, ty, vx, vy := Split(x, y, 0.3, rng)
	if len(vx) != 30 || len(tx) != 70 || len(ty) != 70 || len(vy) != 30 {
		t.Fatalf("split sizes: train=%d val=%d", len(tx), len(vx))
	}
	seen := map[float64]bool{}
	for _, v := range append(append([][]float64{}, tx...), vx...) {
		if seen[v[0]] {
			t.Fatal("split duplicated a sample")
		}
		seen[v[0]] = true
	}
}
