package classify

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// treeNode is one node of a CART decision tree.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaf payload: class-1 probability.
	leaf bool
	prob float64
}

// Tree is a binary CART classifier (labels 0/1) trained on the Gini
// criterion.
type Tree struct {
	root        *treeNode
	maxDepth    int
	minLeaf     int
	maxFeatures int // features sampled per split (random forest mode)
}

// TreeConfig bundles decision-tree hyperparameters.
type TreeConfig struct {
	MaxDepth    int // default 12
	MinLeaf     int // default 2
	MaxFeatures int // 0 = all features
}

// NewTree creates an untrained tree.
func NewTree(cfg TreeConfig) *Tree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	return &Tree{maxDepth: cfg.MaxDepth, minLeaf: cfg.MinLeaf, maxFeatures: cfg.MaxFeatures}
}

// Train fits the tree on x with 0/1 labels y.
func (t *Tree) Train(x [][]float64, y []int, rng *xrand.Rand) {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(x, y, idx, 0, rng)
}

func (t *Tree) build(x [][]float64, y []int, idx []int, depth int, rng *xrand.Rand) *treeNode {
	ones := 0
	for _, i := range idx {
		ones += y[i]
	}
	prob := float64(ones) / float64(len(idx))
	if depth >= t.maxDepth || len(idx) < 2*t.minLeaf || ones == 0 || ones == len(idx) {
		return &treeNode{leaf: true, prob: prob}
	}

	nf := len(x[0])
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if t.maxFeatures > 0 && t.maxFeatures < nf {
		rng.ShuffleInts(features)
		features = features[:t.maxFeatures]
	}

	bestGini := math.Inf(1)
	bestF, bestThr := -1, 0.0
	vals := make([]float64, 0, len(idx))
	for _, f := range features {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, x[i][f])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints of distinct consecutive values.
		for v := 1; v < len(vals); v++ {
			if vals[v] == vals[v-1] {
				continue
			}
			thr := (vals[v] + vals[v-1]) / 2
			lo, lt, ro, rt := 0, 0, 0, 0
			for _, i := range idx {
				if x[i][f] <= thr {
					lt++
					lo += y[i]
				} else {
					rt++
					ro += y[i]
				}
			}
			if lt < t.minLeaf || rt < t.minLeaf {
				continue
			}
			g := gini(lo, lt)*float64(lt)/float64(len(idx)) + gini(ro, rt)*float64(rt)/float64(len(idx))
			if g < bestGini {
				bestGini, bestF, bestThr = g, f, thr
			}
		}
	}
	if bestF < 0 {
		return &treeNode{leaf: true, prob: prob}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestF] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &treeNode{
		feature:   bestF,
		threshold: bestThr,
		left:      t.build(x, y, li, depth+1, rng),
		right:     t.build(x, y, ri, depth+1, rng),
	}
}

func gini(ones, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(ones) / float64(total)
	return 2 * p * (1 - p)
}

// Prob returns the class-1 probability for v.
func (t *Tree) Prob(v []float64) float64 {
	n := t.root
	for !n.leaf {
		if v[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Predict returns the 0/1 prediction for v.
func (t *Tree) Predict(v []float64) int {
	if t.Prob(v) >= 0.5 {
		return 1
	}
	return 0
}

// Forest is a random forest of CART trees trained on bootstrap samples
// with per-split feature subsampling — the classifier the paper uses to
// label iteration boundaries (§7.3).
type Forest struct {
	trees []*Tree
}

// ForestConfig bundles random-forest hyperparameters.
type ForestConfig struct {
	Trees    int // default 30
	MaxDepth int // default 12
	MinLeaf  int // default 2
}

// NewForest creates an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 30
	}
	f := &Forest{}
	for i := 0; i < cfg.Trees; i++ {
		f.trees = append(f.trees, NewTree(TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, MaxFeatures: -1}))
	}
	return f
}

// Train fits the forest on x with 0/1 labels y.
func (f *Forest) Train(x [][]float64, y []int, rng *xrand.Rand) {
	if len(x) == 0 {
		panic("classify: empty training set")
	}
	nf := len(x[0])
	mtry := int(math.Sqrt(float64(nf)))
	if mtry < 1 {
		mtry = 1
	}
	for _, t := range f.trees {
		t.maxFeatures = mtry
		// Bootstrap sample.
		bx := make([][]float64, len(x))
		by := make([]int, len(x))
		for i := range bx {
			j := rng.Intn(len(x))
			bx[i] = x[j]
			by[i] = y[j]
		}
		t.Train(bx, by, rng)
	}
}

// Prob returns the averaged class-1 probability for v.
func (f *Forest) Prob(v []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.Prob(v)
	}
	return s / float64(len(f.trees))
}

// Predict returns the 0/1 prediction for v.
func (f *Forest) Predict(v []float64) int {
	if f.Prob(v) >= 0.5 {
		return 1
	}
	return 0
}

// Metrics summarizes binary-classification quality.
type Metrics struct {
	TP, FP, TN, FN int
}

// Accuracy returns (TP+TN)/total.
func (m Metrics) Accuracy() float64 {
	t := m.TP + m.FP + m.TN + m.FN
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// FalsePositiveRate returns FP/(FP+TN).
func (m Metrics) FalsePositiveRate() float64 {
	if m.FP+m.TN == 0 {
		return 0
	}
	return float64(m.FP) / float64(m.FP+m.TN)
}

// FalseNegativeRate returns FN/(FN+TP).
func (m Metrics) FalseNegativeRate() float64 {
	if m.FN+m.TP == 0 {
		return 0
	}
	return float64(m.FN) / float64(m.FN+m.TP)
}

// Evaluate scores a 0/1 predictor against labels.
func Evaluate(pred func([]float64) int, x [][]float64, y []int) Metrics {
	var m Metrics
	for i := range x {
		p := pred(x[i])
		switch {
		case p == 1 && y[i] == 1:
			m.TP++
		case p == 1 && y[i] == 0:
			m.FP++
		case p == 0 && y[i] == 0:
			m.TN++
		default:
			m.FN++
		}
	}
	return m
}

// Split partitions a data set into train and validation subsets, holding
// out `holdFrac` of the samples (the paper withholds 30%).
func Split(x [][]float64, y []int, holdFrac float64, rng *xrand.Rand) (tx [][]float64, ty []int, vx [][]float64, vy []int) {
	perm := rng.Perm(len(x))
	hold := int(holdFrac * float64(len(x)))
	for i, j := range perm {
		if i < hold {
			vx = append(vx, x[j])
			vy = append(vy, y[j])
		} else {
			tx = append(tx, x[j])
			ty = append(ty, y[j])
		}
	}
	return
}
