// Package classify implements the two classifiers the paper trains with
// scikit-learn, from scratch on the standard library: a support-vector
// machine with a polynomial kernel (used to recognize target-set PSDs,
// §7.2) and a random forest (used to label iteration boundaries in access
// traces, §7.3).
package classify

import (
	"math"

	"repro/internal/xrand"
)

// Kernel computes k(a, b).
type Kernel func(a, b []float64) float64

// PolyKernel returns the polynomial kernel (gamma*<a,b> + coef0)^degree —
// the kernel family the paper's SVM uses.
func PolyKernel(degree int, gamma, coef0 float64) Kernel {
	return func(a, b []float64) float64 {
		return math.Pow(gamma*dot(a, b)+coef0, float64(degree))
	}
}

// RBFKernel returns exp(-gamma*||a-b||^2).
func RBFKernel(gamma float64) Kernel {
	return func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Exp(-gamma * s)
	}
}

// LinearKernel returns <a,b>.
func LinearKernel() Kernel { return dot }

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SVM is a binary soft-margin support-vector machine trained with a
// simplified SMO algorithm. Labels are ±1.
type SVM struct {
	kernel Kernel
	c      float64
	tol    float64
	maxIt  int

	// Learned state: support vectors and their coefficients.
	vecs  [][]float64
	alpha []float64
	label []float64
	b     float64
}

// SVMConfig bundles training hyperparameters.
type SVMConfig struct {
	Kernel  Kernel
	C       float64 // soft-margin penalty (default 1)
	Tol     float64 // KKT tolerance (default 1e-3)
	MaxIter int     // passes without progress before stopping (default 5)
}

// NewSVM creates an untrained SVM.
func NewSVM(cfg SVMConfig) *SVM {
	if cfg.Kernel == nil {
		cfg.Kernel = PolyKernel(3, 1, 1)
	}
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 5
	}
	return &SVM{kernel: cfg.Kernel, c: cfg.C, tol: cfg.Tol, maxIt: cfg.MaxIter}
}

// Train fits the SVM on x with labels y (each ±1) using simplified SMO
// (Platt's algorithm without the full heuristic cache). rng drives the
// random second-multiplier choice; the same seed reproduces the model.
func (s *SVM) Train(x [][]float64, y []float64, rng *xrand.Rand) {
	n := len(x)
	if n == 0 || len(y) != n {
		panic("classify: bad training set")
	}
	alpha := make([]float64, n)
	b := 0.0

	// Precompute the kernel matrix when affordable; otherwise fall back
	// to on-demand evaluation.
	var km [][]float64
	if n <= 2048 {
		km = make([][]float64, n)
		for i := range km {
			km[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				v := s.kernel(x[i], x[j])
				km[i][j] = v
				km[j][i] = v
			}
		}
	}
	k := func(i, j int) float64 {
		if km != nil {
			return km[i][j]
		}
		return s.kernel(x[i], x[j])
	}
	f := func(i int) float64 {
		sum := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				sum += alpha[j] * y[j] * k(j, i)
			}
		}
		return sum
	}

	passes := 0
	for passes < s.maxIt {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if (y[i]*ei < -s.tol && alpha[i] < s.c) || (y[i]*ei > s.tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(s.c, s.c+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-s.c)
					hi = math.Min(s.c, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*k(i, j) - k(i, i) - k(j, j)
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				b1 := b - ei - y[i]*(aiNew-ai)*k(i, i) - y[j]*(ajNew-aj)*k(i, j)
				b2 := b - ej - y[i]*(aiNew-ai)*k(i, j) - y[j]*(ajNew-aj)*k(j, j)
				switch {
				case aiNew > 0 && aiNew < s.c:
					b = b1
				case ajNew > 0 && ajNew < s.c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	s.vecs = s.vecs[:0]
	s.alpha = s.alpha[:0]
	s.label = s.label[:0]
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			s.vecs = append(s.vecs, x[i])
			s.alpha = append(s.alpha, alpha[i])
			s.label = append(s.label, y[i])
		}
	}
	s.b = b
}

// Decision returns the signed decision value for v.
func (s *SVM) Decision(v []float64) float64 {
	sum := s.b
	for i, sv := range s.vecs {
		sum += s.alpha[i] * s.label[i] * s.kernel(sv, v)
	}
	return sum
}

// Predict returns the predicted label (±1) for v.
func (s *SVM) Predict(v []float64) float64 {
	if s.Decision(v) >= 0 {
		return 1
	}
	return -1
}

// SupportVectors returns the number of support vectors kept.
func (s *SVM) SupportVectors() int { return len(s.vecs) }
