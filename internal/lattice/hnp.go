package lattice

import "math/big"

// Leak describes what the side channel learned about one signature's
// nonce: the known most-significant bits. The Montgomery ladder leaks
// bits from the top down (§7.1), so the earliest extracted bits of each
// trace are exactly the MSBs this construction needs.
type Leak struct {
	R, S *big.Int
	// Z is the signed digest (mod n).
	Z *big.Int
	// KnownMSB holds the nonce's known top bits as an integer: the nonce
	// is KnownMSB·2^UnknownBits + b with 0 <= b < 2^UnknownBits. KnownMSB
	// includes the leading 1 bit.
	KnownMSB *big.Int
	// UnknownBits is the bit length of the unknown low part.
	UnknownBits int
}

// HNP recovers the ECDSA private key from signatures with known nonce
// MSBs, using the Howgrave-Graham–Smart lattice. verify is called with
// each candidate key and must return true for the real one (callers
// check Q == d·G or re-sign a known message).
//
// For each signature, s·k = z + r·d (mod n) with k = a·2^L + b, b small:
//
//	b = (s⁻¹·r)·d + (s⁻¹·z − a·2^L)  (mod n)  =  t·d + u (mod n)
//
// The rows [n·e_i; t_1..t_N, B/n·?; u_1..u_N, 0, B] span a lattice
// containing (b_1..b_N, d·B/n-ish, B), a short vector when b_i << n.
// LLL finds it for modest dimensions.
func HNP(n *big.Int, leaks []Leak, verify func(d *big.Int) bool) (*big.Int, bool) {
	m := len(leaks)
	if m == 0 {
		return nil, false
	}
	// Weighting: the unknown parts are below 2^maxUnknown.
	maxUnknown := 0
	for _, l := range leaks {
		if l.UnknownBits > maxUnknown {
			maxUnknown = l.UnknownBits
		}
	}
	bound := new(big.Int).Lsh(big.NewInt(1), uint(maxUnknown)) // B ≈ 2^L

	ts := make([]*big.Int, m)
	us := make([]*big.Int, m)
	for i, l := range leaks {
		sInv := new(big.Int).ModInverse(l.S, n)
		if sInv == nil {
			return nil, false
		}
		t := new(big.Int).Mul(sInv, l.R)
		t.Mod(t, n)
		a := new(big.Int).Lsh(l.KnownMSB, uint(l.UnknownBits))
		u := new(big.Int).Mul(sInv, l.Z)
		u.Sub(u, a)
		u.Mod(u, n)
		ts[i] = t
		us[i] = u
	}

	// Rational HNP lattice, scaled by n to stay integral:
	//   [ n²·I              0     0   ]
	//   [ n·t_1 .. n·t_m    B     0   ]
	//   [ n·u_1 .. n·u_m    0    n·B  ]
	// The target combination d·(t-row) + 1·(u-row) − Σc_i·(n-rows) equals
	// (n·b_1, .., n·b_m, d·B, n·B): every component is <= n·B, far below
	// the Gaussian heuristic for this determinant, so LLL surfaces it.
	dim := m + 2
	basis := NewBasis(dim, dim)
	n2 := new(big.Int).Mul(n, n)
	nB := new(big.Int).Mul(n, bound)
	for i := 0; i < m; i++ {
		basis[i][i].Set(n2)
	}
	for j := 0; j < m; j++ {
		basis[m][j].Mul(ts[j], n)
		basis[m+1][j].Mul(us[j], n)
	}
	basis[m][m].Set(bound)
	basis[m+1][m+1].Set(nB)

	LLL(basis)

	// Scan the reduced vectors: a row of the form
	// (n·b_1, .., ±d·B, ±n·B) reveals d.
	for _, row := range basis {
		last := row[m+1]
		if new(big.Int).Abs(last).Cmp(nB) != 0 {
			continue
		}
		dB := new(big.Int).Set(row[m])
		if last.Sign() < 0 {
			dB.Neg(dB)
		}
		d := new(big.Int)
		rem := new(big.Int)
		d.QuoRem(dB, bound, rem)
		if rem.Sign() != 0 {
			continue
		}
		d.Mod(d, n)
		if d.Sign() != 0 && verify(d) {
			return d, true
		}
		d.Neg(d)
		d.Mod(d, n)
		if d.Sign() != 0 && verify(d) {
			return d, true
		}
	}
	return nil, false
}

// LeakFromTopBits builds a Leak when the side channel recovered the top
// `known` ladder bits of a nonce of bit length kBits (the leading 1 is
// implicit and counted as known).
func LeakFromTopBits(r, s, z, nonceTop *big.Int, kBits, known int) Leak {
	return Leak{
		R: r, S: s, Z: z,
		KnownMSB:    nonceTop,
		UnknownBits: kBits - known,
	}
}
