// Package lattice implements the post-processing step the paper defers
// to prior work [1, 37, 61]: recovering the ECDSA private key from
// partially known nonces via a Hidden Number Problem (HNP) lattice
// attack. It provides an integer LLL reduction (from scratch, exact
// rational Gram–Schmidt arithmetic) and the Howgrave-Graham–Smart HNP
// construction over the leaked most-significant nonce bits that the
// cache side channel extracts.
package lattice

import "math/big"

// Basis is a list of integer lattice basis vectors (row vectors).
type Basis [][]*big.Int

// NewBasis allocates a zero basis of the given dimensions.
func NewBasis(rows, cols int) Basis {
	b := make(Basis, rows)
	for i := range b {
		b[i] = make([]*big.Int, cols)
		for j := range b[i] {
			b[i][j] = new(big.Int)
		}
	}
	return b
}

// Clone deep-copies the basis.
func (b Basis) Clone() Basis {
	out := make(Basis, len(b))
	for i := range b {
		out[i] = make([]*big.Int, len(b[i]))
		for j := range b[i] {
			out[i][j] = new(big.Int).Set(b[i][j])
		}
	}
	return out
}

// dot returns the integer inner product of two rows.
func dot(a, b []*big.Int) *big.Int {
	s := new(big.Int)
	t := new(big.Int)
	for i := range a {
		s.Add(s, t.Mul(a[i], b[i]))
	}
	return s
}

// NormSq returns the squared Euclidean norm of a row.
func NormSq(v []*big.Int) *big.Int { return dot(v, v) }

// roundRat rounds a rational to the nearest integer.
func roundRat(r *big.Rat) *big.Int {
	num := new(big.Int).Set(r.Num())
	den := r.Denom()
	two := big.NewInt(2)
	half := new(big.Int).Div(den, two)
	if num.Sign() >= 0 {
		num.Add(num, half)
	} else {
		num.Sub(num, half)
	}
	return num.Quo(num, den)
}

// absCmpHalf compares |r| with 1/2.
func absCmpHalf(r *big.Rat) int {
	a := new(big.Rat).Abs(r)
	return a.Cmp(big.NewRat(1, 2))
}

// lllState carries the incrementally maintained Gram–Schmidt data of the
// classic LLL algorithm (Cohen, Algorithm 2.6.3): the mu coefficients
// and the squared norms B[i] = |b*_i|^2, both exact rationals. Every
// size-reduction and swap patches this state in O(n) rational
// operations, instead of recomputing the full O(n^3) orthogonalization —
// the difference between HNP lattices at sect163 scale reducing in
// fractions of a second versus tens of seconds.
type lllState struct {
	b  Basis
	mu [][]*big.Rat // mu[i][j], j < i
	B  []*big.Rat   // |b*_i|^2
}

// gsoRow computes row k's Gram–Schmidt data from rows < k, which must be
// up to date:
//
//	mu[k][j] = (<b_k, b_j> − Σ_{i<j} mu[j][i]·mu[k][i]·B[i]) / B[j]
//	B[k]     = <b_k, b_k> − Σ_{j<k} mu[k][j]^2·B[j]
func (s *lllState) gsoRow(k int) {
	for j := 0; j < k; j++ {
		acc := new(big.Rat).SetInt(dot(s.b[k], s.b[j]))
		for i := 0; i < j; i++ {
			t := new(big.Rat).Mul(s.mu[j][i], s.mu[k][i])
			t.Mul(t, s.B[i])
			acc.Sub(acc, t)
		}
		if s.B[j].Sign() != 0 {
			acc.Quo(acc, s.B[j])
		} else {
			acc.SetInt64(0)
		}
		s.mu[k][j] = acc
	}
	bk := new(big.Rat).SetInt(NormSq(s.b[k]))
	for j := 0; j < k; j++ {
		t := new(big.Rat).Mul(s.mu[k][j], s.mu[k][j])
		t.Mul(t, s.B[j])
		bk.Sub(bk, t)
	}
	s.B[k] = bk
}

// red size-reduces b_k against b_l and patches mu[k][*] in place.
func (s *lllState) red(k, l int) {
	if absCmpHalf(s.mu[k][l]) <= 0 {
		return
	}
	q := roundRat(s.mu[k][l])
	qr := new(big.Rat).SetInt(q)
	t := new(big.Int)
	for c := range s.b[k] {
		s.b[k][c].Sub(s.b[k][c], t.Mul(q, s.b[l][c]))
	}
	for j := 0; j < l; j++ {
		s.mu[k][j].Sub(s.mu[k][j], new(big.Rat).Mul(qr, s.mu[l][j]))
	}
	s.mu[k][l].Sub(s.mu[k][l], qr)
}

// swap exchanges b_{k-1} and b_k and patches the Gram–Schmidt state with
// the standard update formulas (Cohen 2.6.3, step SWAP).
func (s *lllState) swap(k int) {
	m := new(big.Rat).Set(s.mu[k][k-1])
	// New B[k-1] after the swap: B[k] + m^2·B[k-1].
	bNew := new(big.Rat).Mul(m, m)
	bNew.Mul(bNew, s.B[k-1])
	bNew.Add(bNew, s.B[k])

	s.b[k-1], s.b[k] = s.b[k], s.b[k-1]
	for j := 0; j < k-1; j++ {
		s.mu[k-1][j], s.mu[k][j] = s.mu[k][j], s.mu[k-1][j]
	}
	mNew := new(big.Rat)
	if bNew.Sign() != 0 {
		mNew.Mul(m, s.B[k-1])
		mNew.Quo(mNew, bNew)
		bk := new(big.Rat).Mul(s.B[k-1], s.B[k])
		bk.Quo(bk, bNew)
		s.B[k] = bk
	} else {
		// Degenerate (linearly dependent) rows: both projections vanish.
		s.B[k] = new(big.Rat)
	}
	s.mu[k][k-1] = mNew
	s.B[k-1] = bNew
	for i := k + 1; i < len(s.b); i++ {
		t := new(big.Rat).Set(s.mu[i][k])
		s.mu[i][k] = new(big.Rat).Sub(s.mu[i][k-1], new(big.Rat).Mul(m, t))
		s.mu[i][k-1] = new(big.Rat).Add(t, new(big.Rat).Mul(mNew, s.mu[i][k]))
	}
}

// LLL reduces the basis in place with the Lenstra–Lenstra–Lovász
// algorithm (delta = 3/4), using exact rational arithmetic with
// incrementally maintained Gram–Schmidt state. The reduced basis spans
// the same lattice; its first vector is short (within the usual
// 2^((n-1)/2) approximation factor of the shortest vector), which is all
// HNP needs.
func LLL(b Basis) {
	n := len(b)
	if n <= 1 {
		return
	}
	delta := big.NewRat(3, 4)
	s := &lllState{b: b, mu: make([][]*big.Rat, n), B: make([]*big.Rat, n)}
	for i := 0; i < n; i++ {
		s.mu[i] = make([]*big.Rat, i)
		s.gsoRow(i)
	}
	k := 1
	for k < n {
		s.red(k, k-1)
		// Lovász condition: |b*_k|^2 >= (delta − mu_{k,k-1}^2)·|b*_{k-1}|^2.
		musq := new(big.Rat).Mul(s.mu[k][k-1], s.mu[k][k-1])
		rhs := new(big.Rat).Sub(delta, musq)
		rhs.Mul(rhs, s.B[k-1])
		if s.B[k].Cmp(rhs) < 0 {
			s.swap(k)
			if k > 1 {
				k--
			}
		} else {
			for l := k - 2; l >= 0; l-- {
				s.red(k, l)
			}
			k++
		}
	}
}
