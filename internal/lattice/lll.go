// Package lattice implements the post-processing step the paper defers
// to prior work [1, 37, 61]: recovering the ECDSA private key from
// partially known nonces via a Hidden Number Problem (HNP) lattice
// attack. It provides an integer LLL reduction (from scratch, exact
// rational Gram–Schmidt arithmetic) and the Howgrave-Graham–Smart HNP
// construction over the leaked most-significant nonce bits that the
// cache side channel extracts.
package lattice

import "math/big"

// Basis is a list of integer lattice basis vectors (row vectors).
type Basis [][]*big.Int

// NewBasis allocates a zero basis of the given dimensions.
func NewBasis(rows, cols int) Basis {
	b := make(Basis, rows)
	for i := range b {
		b[i] = make([]*big.Int, cols)
		for j := range b[i] {
			b[i][j] = new(big.Int)
		}
	}
	return b
}

// Clone deep-copies the basis.
func (b Basis) Clone() Basis {
	out := make(Basis, len(b))
	for i := range b {
		out[i] = make([]*big.Int, len(b[i]))
		for j := range b[i] {
			out[i][j] = new(big.Int).Set(b[i][j])
		}
	}
	return out
}

// dot returns the integer inner product of two rows.
func dot(a, b []*big.Int) *big.Int {
	s := new(big.Int)
	t := new(big.Int)
	for i := range a {
		s.Add(s, t.Mul(a[i], b[i]))
	}
	return s
}

// NormSq returns the squared Euclidean norm of a row.
func NormSq(v []*big.Int) *big.Int { return dot(v, v) }

// gso holds the rational Gram–Schmidt state for LLL: mu coefficients and
// the squared norms of the orthogonalized vectors.
type gso struct {
	mu    [][]*big.Rat // mu[i][j], j < i
	normB []*big.Rat   // |b*_i|^2
}

// computeGSO rebuilds the full Gram–Schmidt data for the basis. It is
// O(n^3) big-rational work — fine for the HNP dimensions (< 100) this
// package targets.
func computeGSO(b Basis) *gso {
	n := len(b)
	g := &gso{mu: make([][]*big.Rat, n), normB: make([]*big.Rat, n)}
	// bStar vectors as rationals.
	cols := len(b[0])
	bs := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		bs[i] = make([]*big.Rat, cols)
		for c := 0; c < cols; c++ {
			bs[i][c] = new(big.Rat).SetInt(b[i][c])
		}
		g.mu[i] = make([]*big.Rat, i)
		for j := 0; j < i; j++ {
			// mu_ij = <b_i, b*_j> / |b*_j|^2
			num := ratDotInt(b[i], bs[j])
			mu := new(big.Rat)
			if g.normB[j].Sign() != 0 {
				mu.Quo(num, g.normB[j])
			}
			g.mu[i][j] = mu
			// b*_i -= mu * b*_j
			for c := 0; c < cols; c++ {
				t := new(big.Rat).Mul(mu, bs[j][c])
				bs[i][c].Sub(bs[i][c], t)
			}
		}
		g.normB[i] = ratNormSq(bs[i])
	}
	return g
}

func ratDotInt(a []*big.Int, b []*big.Rat) *big.Rat {
	s := new(big.Rat)
	for i := range a {
		t := new(big.Rat).SetInt(a[i])
		t.Mul(t, b[i])
		s.Add(s, t)
	}
	return s
}

func ratNormSq(v []*big.Rat) *big.Rat {
	s := new(big.Rat)
	for i := range v {
		t := new(big.Rat).Mul(v[i], v[i])
		s.Add(s, t)
	}
	return s
}

// roundRat rounds a rational to the nearest integer.
func roundRat(r *big.Rat) *big.Int {
	num := new(big.Int).Set(r.Num())
	den := r.Denom()
	two := big.NewInt(2)
	half := new(big.Int).Div(den, two)
	if num.Sign() >= 0 {
		num.Add(num, half)
	} else {
		num.Sub(num, half)
	}
	return num.Quo(num, den)
}

// LLL reduces the basis in place with the Lenstra–Lenstra–Lovász
// algorithm (delta = 3/4), using exact rational arithmetic. The reduced
// basis spans the same lattice; its first vector is short (within the
// usual 2^((n-1)/2) approximation factor of the shortest vector), which
// is all HNP needs.
func LLL(b Basis) {
	n := len(b)
	if n <= 1 {
		return
	}
	delta := big.NewRat(3, 4)
	g := computeGSO(b)
	k := 1
	for k < n {
		// Size-reduce b_k against b_{k-1}..b_0.
		for j := k - 1; j >= 0; j-- {
			mu := g.mu[k][j]
			if absCmpHalf(mu) > 0 {
				q := roundRat(mu)
				for c := range b[k] {
					t := new(big.Int).Mul(q, b[j][c])
					b[k][c].Sub(b[k][c], t)
				}
				g = computeGSO(b)
			}
		}
		// Lovász condition: |b*_k|^2 >= (delta - mu_{k,k-1}^2) |b*_{k-1}|^2.
		mu := g.mu[k][k-1]
		lhs := new(big.Rat).Set(g.normB[k])
		musq := new(big.Rat).Mul(mu, mu)
		rhs := new(big.Rat).Sub(delta, musq)
		rhs.Mul(rhs, g.normB[k-1])
		if lhs.Cmp(rhs) >= 0 {
			k++
		} else {
			b[k], b[k-1] = b[k-1], b[k]
			g = computeGSO(b)
			if k > 1 {
				k--
			}
		}
	}
}

// absCmpHalf compares |r| with 1/2.
func absCmpHalf(r *big.Rat) int {
	a := new(big.Rat).Abs(r)
	return a.Cmp(big.NewRat(1, 2))
}
