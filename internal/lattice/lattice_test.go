package lattice

import (
	"math/big"
	"testing"

	"repro/internal/ec2m"
	"repro/internal/ecdsa"
	"repro/internal/xrand"
)

func intRow(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestLLLReducesClassicExample(t *testing.T) {
	// Wikipedia's example: [[1,1,1],[-1,0,2],[3,5,6]] reduces to a basis
	// whose first vector is (0,1,0).
	b := Basis{intRow(1, 1, 1), intRow(-1, 0, 2), intRow(3, 5, 6)}
	LLL(b)
	if NormSq(b[0]).Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("first reduced vector %v has norm^2 %v, want 1", b[0], NormSq(b[0]))
	}
}

func TestLLLFindsPlantedShortVector(t *testing.T) {
	// Plant a short vector inside a basis of large vectors: LLL must
	// surface a vector no longer than the planted one.
	rng := xrand.New(1)
	const dim = 6
	b := NewBasis(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			b[i][j] = big.NewInt(int64(rng.Intn(2000) - 1000))
		}
		b[i][i].Add(b[i][i], big.NewInt(100000))
	}
	// Planted short combination: replace row 0 by a small vector plus a
	// lattice element (keeps the lattice unchanged only if added, so
	// instead append smallness by construction: row0 = small).
	b[0] = intRow(3, -2, 1, 0, 2, -1)
	planted := NormSq(b[0])
	LLL(b)
	if NormSq(b[0]).Cmp(planted) > 0 {
		t.Fatalf("reduced first vector norm^2 %v exceeds planted %v", NormSq(b[0]), planted)
	}
}

func TestLLLPreservesLattice(t *testing.T) {
	// The reduced basis must have the same determinant magnitude (here:
	// verified via the Gram determinant of a 2x2 example).
	b := Basis{intRow(201, 37), intRow(1648, 297)}
	detBefore := new(big.Int).Sub(
		new(big.Int).Mul(b[0][0], b[1][1]),
		new(big.Int).Mul(b[0][1], b[1][0]))
	LLL(b)
	detAfter := new(big.Int).Sub(
		new(big.Int).Mul(b[0][0], b[1][1]),
		new(big.Int).Mul(b[0][1], b[1][0]))
	if new(big.Int).Abs(detBefore).Cmp(new(big.Int).Abs(detAfter)) != 0 {
		t.Fatalf("determinant changed: %v -> %v", detBefore, detAfter)
	}
}

// TestHNPRecoversToyKey closes the paper's attack chain on the exactly
// solvable toy curve: signatures with leaked nonce MSBs give back the
// private key.
func TestHNPRecoversToyKey(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(42)
	key := ecdsa.GenerateKey(c, rng)

	const known = 9 // leaked top bits per nonce (incl. the leading 1)
	var leaks []Leak
	for i := 0; len(leaks) < 5 && i < 50; i++ {
		z := big.NewInt(int64(5000 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil {
			continue
		}
		kBits := nonce.BitLen()
		if kBits <= known {
			continue
		}
		top := new(big.Int).Rsh(nonce, uint(kBits-known))
		leaks = append(leaks, LeakFromTopBits(sig.R, sig.S, z, top, kBits, known))
	}
	if len(leaks) < 4 {
		t.Fatalf("only %d usable leaks", len(leaks))
	}
	d, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 })
	if !ok {
		t.Fatal("HNP failed to recover the key")
	}
	if d.Cmp(key.D) != 0 {
		t.Fatalf("recovered %v, want %v", d, key.D)
	}
}

func TestHNPFailsWithTooFewBits(t *testing.T) {
	// With almost nothing leaked the lattice must not "verify" a wrong
	// key — the verify callback is the guard.
	c := ec2m.ToyCurve()
	rng := xrand.New(43)
	key := ecdsa.GenerateKey(c, rng)
	var leaks []Leak
	for i := 0; len(leaks) < 2; i++ {
		z := big.NewInt(int64(100 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil || nonce.BitLen() < 4 {
			continue
		}
		top := new(big.Int).Rsh(nonce, uint(nonce.BitLen()-2))
		leaks = append(leaks, LeakFromTopBits(sig.R, sig.S, z, top, nonce.BitLen(), 2))
	}
	if _, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 }); ok {
		t.Fatal("HNP claimed success with 2 known bits over 2 signatures")
	}
}
