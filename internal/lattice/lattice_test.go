package lattice

import (
	"math/big"
	"testing"

	"repro/internal/ec2m"
	"repro/internal/ecdsa"
	"repro/internal/xrand"
)

func intRow(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestLLLReducesClassicExample(t *testing.T) {
	// Wikipedia's example: [[1,1,1],[-1,0,2],[3,5,6]] reduces to a basis
	// whose first vector is (0,1,0).
	b := Basis{intRow(1, 1, 1), intRow(-1, 0, 2), intRow(3, 5, 6)}
	LLL(b)
	if NormSq(b[0]).Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("first reduced vector %v has norm^2 %v, want 1", b[0], NormSq(b[0]))
	}
}

func TestLLLFindsPlantedShortVector(t *testing.T) {
	// Plant a short vector inside a basis of large vectors: LLL must
	// surface a vector no longer than the planted one.
	rng := xrand.New(1)
	const dim = 6
	b := NewBasis(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			b[i][j] = big.NewInt(int64(rng.Intn(2000) - 1000))
		}
		b[i][i].Add(b[i][i], big.NewInt(100000))
	}
	// Planted short combination: replace row 0 by a small vector plus a
	// lattice element (keeps the lattice unchanged only if added, so
	// instead append smallness by construction: row0 = small).
	b[0] = intRow(3, -2, 1, 0, 2, -1)
	planted := NormSq(b[0])
	LLL(b)
	if NormSq(b[0]).Cmp(planted) > 0 {
		t.Fatalf("reduced first vector norm^2 %v exceeds planted %v", NormSq(b[0]), planted)
	}
}

func TestLLLPreservesLattice(t *testing.T) {
	// The reduced basis must have the same determinant magnitude (here:
	// verified via the Gram determinant of a 2x2 example).
	b := Basis{intRow(201, 37), intRow(1648, 297)}
	detBefore := new(big.Int).Sub(
		new(big.Int).Mul(b[0][0], b[1][1]),
		new(big.Int).Mul(b[0][1], b[1][0]))
	LLL(b)
	detAfter := new(big.Int).Sub(
		new(big.Int).Mul(b[0][0], b[1][1]),
		new(big.Int).Mul(b[0][1], b[1][0]))
	if new(big.Int).Abs(detBefore).Cmp(new(big.Int).Abs(detAfter)) != 0 {
		t.Fatalf("determinant changed: %v -> %v", detBefore, detAfter)
	}
}

// TestHNPRecoversToyKey closes the paper's attack chain on the exactly
// solvable toy curve: signatures with leaked nonce MSBs give back the
// private key.
func TestHNPRecoversToyKey(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(42)
	key := ecdsa.GenerateKey(c, rng)

	const known = 9 // leaked top bits per nonce (incl. the leading 1)
	var leaks []Leak
	for i := 0; len(leaks) < 5 && i < 50; i++ {
		z := big.NewInt(int64(5000 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil {
			continue
		}
		kBits := nonce.BitLen()
		if kBits <= known {
			continue
		}
		top := new(big.Int).Rsh(nonce, uint(kBits-known))
		leaks = append(leaks, LeakFromTopBits(sig.R, sig.S, z, top, kBits, known))
	}
	if len(leaks) < 4 {
		t.Fatalf("only %d usable leaks", len(leaks))
	}
	d, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 })
	if !ok {
		t.Fatal("HNP failed to recover the key")
	}
	if d.Cmp(key.D) != 0 {
		t.Fatalf("recovered %v, want %v", d, key.D)
	}
}

// testGSO recomputes the full Gram–Schmidt data of a basis from scratch
// — an independent check on the incremental state LLL maintains.
func testGSO(b Basis) (mu [][]*big.Rat, B []*big.Rat) {
	n := len(b)
	cols := len(b[0])
	bs := make([][]*big.Rat, n)
	mu = make([][]*big.Rat, n)
	B = make([]*big.Rat, n)
	for i := 0; i < n; i++ {
		bs[i] = make([]*big.Rat, cols)
		for c := 0; c < cols; c++ {
			bs[i][c] = new(big.Rat).SetInt(b[i][c])
		}
		mu[i] = make([]*big.Rat, i)
		for j := 0; j < i; j++ {
			num := new(big.Rat)
			for c := 0; c < cols; c++ {
				t := new(big.Rat).SetInt(b[i][c])
				t.Mul(t, bs[j][c])
				num.Add(num, t)
			}
			m := new(big.Rat)
			if B[j].Sign() != 0 {
				m.Quo(num, B[j])
			}
			mu[i][j] = m
			for c := 0; c < cols; c++ {
				t := new(big.Rat).Mul(m, bs[j][c])
				bs[i][c].Sub(bs[i][c], t)
			}
		}
		B[i] = new(big.Rat)
		for c := 0; c < cols; c++ {
			t := new(big.Rat).Mul(bs[i][c], bs[i][c])
			B[i].Add(B[i], t)
		}
	}
	return mu, B
}

// assertLLLReduced checks the two defining properties of an LLL-reduced
// basis (size reduction and the Lovász condition, delta = 3/4) against a
// from-scratch Gram–Schmidt orthogonalization.
func assertLLLReduced(t *testing.T, b Basis) {
	t.Helper()
	mu, B := testGSO(b)
	half := big.NewRat(1, 2)
	delta := big.NewRat(3, 4)
	for i := 1; i < len(b); i++ {
		for j := 0; j < i; j++ {
			if new(big.Rat).Abs(mu[i][j]).Cmp(half) > 0 {
				t.Fatalf("not size-reduced: |mu[%d][%d]| = %v > 1/2", i, j, mu[i][j])
			}
		}
		lhs := B[i]
		musq := new(big.Rat).Mul(mu[i][i-1], mu[i][i-1])
		rhs := new(big.Rat).Sub(delta, musq)
		rhs.Mul(rhs, B[i-1])
		if lhs.Cmp(rhs) < 0 {
			t.Fatalf("Lovász condition fails at row %d: %v < %v", i, lhs, rhs)
		}
	}
}

// TestLLLReducedProperty verifies the incremental-GSO LLL produces
// genuinely LLL-reduced bases on random inputs of growing dimension.
func TestLLLReducedProperty(t *testing.T) {
	rng := xrand.New(7)
	for _, dim := range []int{2, 3, 5, 8} {
		for rep := 0; rep < 3; rep++ {
			b := NewBasis(dim, dim)
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					b[i][j] = big.NewInt(int64(rng.Intn(200000) - 100000))
				}
			}
			LLL(b)
			assertLLLReduced(t, b)
		}
	}
}

func TestHNPFailsWithTooFewBits(t *testing.T) {
	// With almost nothing leaked the lattice must not "verify" a wrong
	// key — the verify callback is the guard.
	c := ec2m.ToyCurve()
	rng := xrand.New(43)
	key := ecdsa.GenerateKey(c, rng)
	var leaks []Leak
	for i := 0; len(leaks) < 2; i++ {
		z := big.NewInt(int64(100 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil || nonce.BitLen() < 4 {
			continue
		}
		top := new(big.Int).Rsh(nonce, uint(nonce.BitLen()-2))
		leaks = append(leaks, LeakFromTopBits(sig.R, sig.S, z, top, nonce.BitLen(), 2))
	}
	if _, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 }); ok {
		t.Fatal("HNP claimed success with 2 known bits over 2 signatures")
	}
}

// collectLeaks gathers m honest leaks of `known` top bits each from
// fresh toy-curve signatures.
func collectLeaks(t *testing.T, key *ecdsa.PrivateKey, rng *xrand.Rand, m, known int) []Leak {
	t.Helper()
	var leaks []Leak
	for i := 0; len(leaks) < m && i < 200; i++ {
		z := big.NewInt(int64(9000 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil || nonce.BitLen() <= known {
			continue
		}
		top := new(big.Int).Rsh(nonce, uint(nonce.BitLen()-known))
		leaks = append(leaks, LeakFromTopBits(sig.R, sig.S, z, top, nonce.BitLen(), known))
	}
	if len(leaks) < m {
		t.Fatalf("only %d usable leaks", len(leaks))
	}
	return leaks
}

// TestHNPInsufficientLeaks: with fewer leaked bits than the key length
// the lattice must report failure, never a "verified" wrong key.
func TestHNPInsufficientLeaks(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(44)
	key := ecdsa.GenerateKey(c, rng)
	// One leak of 9 bits against a ~15-bit key: underdetermined.
	leaks := collectLeaks(t, key, rng, 1, 9)
	d, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 })
	if ok {
		t.Fatalf("HNP claimed success from one leak (d = %v)", d)
	}
	if _, ok := HNP(c.N, nil, func(*big.Int) bool { return true }); ok {
		t.Fatal("HNP claimed success with zero leaks")
	}
}

// TestHNPCorruptedLeakBitsFails: flipping bits inside the "known" MSBs
// (the side channel extracting wrong nonce bits) must make recovery
// report failure instead of returning a wrong key.
func TestHNPCorruptedLeakBitsFails(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(45)
	key := ecdsa.GenerateKey(c, rng)
	leaks := collectLeaks(t, key, rng, 5, 9)
	// Flip a high "known" bit of every leak — a misaligned trace whose
	// extracted prefix starts at the wrong iteration. The error dwarfs
	// the lattice bound, so the planted vector is no longer short.
	for i := range leaks {
		leaks[i].KnownMSB = new(big.Int).Xor(leaks[i].KnownMSB, big.NewInt(1<<7))
	}
	d, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 })
	if ok {
		t.Fatalf("HNP claimed success from corrupted leaks (d = %v)", d)
	}
}

// TestHNPDegenerateSignatureValues: s = 0 has no modular inverse; the
// construction must fail cleanly rather than panic or mis-recover.
func TestHNPDegenerateSignatureValues(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(46)
	key := ecdsa.GenerateKey(c, rng)
	leaks := collectLeaks(t, key, rng, 4, 9)
	leaks[2].S = new(big.Int) // s = 0: ModInverse is undefined
	if _, ok := HNP(c.N, leaks, func(d *big.Int) bool { return d.Cmp(key.D) == 0 }); ok {
		t.Fatal("HNP claimed success with a degenerate s = 0 leak")
	}
}
