package profiling

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// TestStartWithContentionProfiles exercises the block/mutex collectors:
// both files must exist and be non-empty pprof payloads after stop, and
// the process-global sampling rates must be back at zero so an
// unprofiled run never pays the sampling cost.
func TestStartWithContentionProfiles(t *testing.T) {
	dir := t.TempDir()
	blockPath := filepath.Join(dir, "block.pprof")
	mutexPath := filepath.Join(dir, "mutex.pprof")
	stop, err := StartWith(Config{BlockFile: blockPath, MutexFile: mutexPath})
	if err != nil {
		t.Fatalf("StartWith: %v", err)
	}

	// Generate at least one contended mutex event and one blocking
	// channel event so the profiles have something to record.
	var mu sync.Mutex
	mu.Lock()
	ch := make(chan struct{})
	go func() {
		mu.Lock() // contends until the main goroutine unlocks
		mu.Unlock()
		close(ch)
	}()
	runtime.Gosched()
	mu.Unlock()
	<-ch

	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{blockPath, mutexPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// SetMutexProfileFraction(-1) reads the rate without changing it;
	// stop must have restored the zero default.
	if frac := runtime.SetMutexProfileFraction(-1); frac != 0 {
		t.Fatalf("mutex profile fraction left at %d after stop, want 0", frac)
	}
}

// TestStartWithNothingIsFree pins that an all-empty Config starts no
// collector and that its stop function is a no-op returning nil.
func TestStartWithNothingIsFree(t *testing.T) {
	stop, err := StartWith(Config{})
	if err != nil {
		t.Fatalf("StartWith: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
