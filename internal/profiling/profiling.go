// Package profiling wires the standard runtime/pprof collectors behind
// the -cpuprofile/-memprofile flags of the CLIs (cmd/llcattack,
// cmd/llcsweep), so the simulation hot path can be profiled on a real
// workload without writing a throwaway harness. Profiles cover only the
// run region the caller brackets — flag parsing and report writing stay
// outside — and never touch the report streams, so profiling cannot
// perturb byte-identical output.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile when it is non-empty. The
// returned stop function ends the CPU profile and, when memFile is
// non-empty, writes a post-GC heap profile there; call it exactly once
// after the timed region. Either path may be empty to skip that profile,
// so callers can pass the flag values through unconditionally.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile == "" {
			return nil
		}
		runtime.GC() // drop unreachable heap so the profile shows live bytes
		f, err := os.Create(memFile)
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}
