// Package profiling wires the standard runtime/pprof collectors behind
// the -cpuprofile/-memprofile/-blockprofile/-mutexprofile flags of the
// CLIs (cmd/llcattack, cmd/llcsweep), so the simulation hot path can be
// profiled on a real workload without writing a throwaway harness.
// Profiles cover only the run region the caller brackets — flag parsing
// and report writing stay outside — and never touch the report streams,
// so profiling cannot perturb byte-identical output.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Config selects which profiles to collect; every path may be empty to
// skip that profile, so callers pass flag values through unconditionally.
type Config struct {
	// CPUFile collects a CPU profile across the bracketed region.
	CPUFile string
	// MemFile writes a post-GC heap profile at stop time.
	MemFile string
	// BlockFile writes a goroutine-blocking profile at stop time
	// (contended channel/cond waits; rate 1 — every event).
	BlockFile string
	// MutexFile writes a mutex-contention profile at stop time
	// (fraction 1 — every contended unlock).
	MutexFile string
}

// Start begins CPU profiling to cpuFile when it is non-empty. The
// returned stop function ends the CPU profile and, when memFile is
// non-empty, writes a post-GC heap profile there; call it exactly once
// after the timed region. It is StartWith for the two original
// profiles, kept for callers that need neither contention profile.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	return StartWith(Config{CPUFile: cpuFile, MemFile: memFile})
}

// StartWith begins collection for every profile named in cfg. The
// returned stop function must be called exactly once after the timed
// region: it stops the CPU profile and block/mutex sampling, then
// writes the heap, block, and mutex profiles that were requested.
// Block and mutex sampling are process-global; StartWith enables them
// at full rate only when their files are set and always restores the
// zero rate at stop, so an unprofiled run never pays the sampling cost.
func StartWith(cfg Config) (stop func() error, err error) {
	var cpu *os.File
	if cfg.CPUFile != "" {
		cpu, err = os.Create(cfg.CPUFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	if cfg.BlockFile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if cfg.MutexFile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		var firstErr error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				firstErr = err
			}
		}
		if cfg.BlockFile != "" {
			runtime.SetBlockProfileRate(0)
			if err := writeProfile("block", cfg.BlockFile); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cfg.MutexFile != "" {
			runtime.SetMutexProfileFraction(0)
			if err := writeProfile("mutex", cfg.MutexFile); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cfg.MemFile != "" {
			runtime.GC() // drop unreachable heap so the profile shows live bytes
			if err := writeHeap(cfg.MemFile); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeProfile dumps one named pprof profile (block, mutex) to path.
func writeProfile(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeap dumps the heap profile to path.
func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
