// Package specstr implements the compact "model:key=value,key=value"
// spec-string syntax shared by the declarative model registries
// (internal/tenant workload specs, internal/defense countermeasure
// specs). It owns only the surface syntax — name/parameter splitting,
// key=value scanning, float parsing and the error wording — while each
// consumer keeps its own key vocabulary, range rules and defaults via
// the Apply callback. The error strings are part of the consumers'
// CLI contract (they are asserted byte-for-byte by tenant tests), so
// they must not be reworded casually.
package specstr

import (
	"fmt"
	"strconv"
	"strings"
)

// Cut splits one spec string into its model name and parameter list:
// "burst:rate=34.5,on_frac=0.1" becomes ("burst", "rate=34.5,on_frac=0.1",
// true) and a bare "burst" becomes ("burst", "", false). Surrounding
// whitespace is trimmed from the whole string and from the name.
func Cut(s string) (name, params string, hasParams bool) {
	name, params, hasParams = strings.Cut(strings.TrimSpace(s), ":")
	return strings.TrimSpace(name), params, hasParams
}

// Apply consumes one parsed parameter. It reports whether the key
// belongs to the model at all (known) and, when it does, whether the
// value violated the key's range (bad). Apply must store accepted
// values itself; Params only drives the scan.
type Apply func(key string, val float64) (known, bad bool)

// Params scans a comma-separated "key=value" list, parsing each value
// as a float64 and handing it to apply. pkg prefixes every error
// ("tenant", "defense"), spec is the full original spec string quoted
// in errors, and model is the name quoted for inapplicable keys. The
// first malformed pair, unparsable value, unknown key or out-of-range
// value stops the scan with an error.
func Params(pkg, spec, model, params string, apply Apply) error {
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return fmt.Errorf("%s: malformed parameter %q in spec %q (want key=value)", pkg, kv, spec)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("%s: bad value in %q of spec %q", pkg, kv, spec)
		}
		known, bad := apply(key, f)
		if !known {
			return fmt.Errorf("%s: parameter %q does not apply to model %q", pkg, key, model)
		}
		if bad {
			return fmt.Errorf("%s: %s out of range in spec %q", pkg, key, spec)
		}
	}
	return nil
}
