package specstr

import (
	"strings"
	"testing"
)

func TestCut(t *testing.T) {
	for _, tc := range []struct {
		in, name, params string
		has              bool
	}{
		{"burst", "burst", "", false},
		{" burst ", "burst", "", false},
		{"burst:rate=1,on_frac=0.2", "burst", "rate=1,on_frac=0.2", true},
		{"x:", "x", "", true},
	} {
		name, params, has := Cut(tc.in)
		if name != tc.name || params != tc.params || has != tc.has {
			t.Errorf("Cut(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.in, name, params, has, tc.name, tc.params, tc.has)
		}
	}
}

func TestParams(t *testing.T) {
	got := map[string]float64{}
	err := Params("pkg", "m:a=1,b=2.5", "m", "a=1,b=2.5", func(key string, v float64) (bool, bool) {
		got[key] = v
		return true, false
	})
	if err != nil || got["a"] != 1 || got["b"] != 2.5 {
		t.Fatalf("Params = %v, got %v", err, got)
	}
	// The four error classes, with the exact wording consumers pin.
	for params, wantSub := range map[string]string{
		"a":     `pkg: malformed parameter "a" in spec "S" (want key=value)`,
		"a=x":   `pkg: bad value in "a=x" of spec "S"`,
		"z=1":   `pkg: parameter "z" does not apply to model "m"`,
		"bad=1": `pkg: bad out of range in spec "S"`,
	} {
		err := Params("pkg", "S", "m", params, func(key string, v float64) (bool, bool) {
			return key != "z", key == "bad"
		})
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Params(%q) = %v, want %q", params, err, wantSub)
		}
	}
}
