// Package sweep expands a declarative configuration grid — replacement
// policy x SF associativity x slice count x noise level x tenant
// workload model x LLC defense x cell experiment — into hierarchy
// configs and runs every cell through the
// parallel trial engine in internal/experiments, aggregating the
// per-cell samples into one deterministic artifact (JSON or CSV) with
// deltas against the grid's baseline cell.
//
// The paper's §6.1 robustness claim is that eviction-set construction
// and Parallel Probing work irrespective of the replacement policy and
// cache organisation; a sweep is how that claim is checked as a grid
// rather than a point.
//
// Determinism: the whole grid flattens into a single RunTrials call, so
// per-worker host pools are shared across cells and the artifact is
// byte-identical for every worker count. The flip side of pool sharing
// is retention: a worker keeps one pooled host per distinct config it
// has touched until the sweep ends, so peak memory grows with
// (distinct configs) x workers (a scaled host is a few MB). For the
// intended grid sizes (tens of cells) that is far cheaper than
// rebuilding hosts per cell; truly huge grids should be split into
// several sweeps. Additionally, a cell's trial
// seeds are derived from the cell's own coordinates (not from its flat
// position in the grid), so adding or removing grid values never changes
// the numbers of the cells that remain — artifacts from different grids
// diff cleanly against each other.
package sweep

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/xrand"
)

// Spec declares a sweep grid. Zero-valued axes take defaults (see
// Normalize); the cross product of all axes, times Experiments, is the
// set of cells. Specs round-trip through JSON for -spec files.
type Spec struct {
	// Experiments names the cell experiments to run in every grid cell
	// (see experiments.CellIDs; cmd/llcsweep -list prints them).
	Experiments []string `json:"experiments"`
	// Policies names the LLC/SF replacement policies to sweep
	// (cache.ParsePolicy names: LRU, Tree-PLRU, SRRIP, QLRU, Random).
	Policies []string `json:"policies"`
	// SFAssocs sweeps the Snoop Filter associativity; the LLC follows one
	// way below (hierarchy.Config.WithSFAssociativity).
	SFAssocs []int `json:"sf_assocs"`
	// Slices sweeps the LLC/SF slice count of the scaled host.
	Slices []int `json:"slices"`
	// NoiseRates sweeps the background tenant rate in accesses/ms/set
	// (0.29 = quiescent local, 11.5 = Cloud Run).
	NoiseRates []float64 `json:"noise_rates"`
	// TenantModels sweeps the background-workload SHAPE at each noise
	// rate: tenant model names (tenant.Models; poisson, burst, stream,
	// hotset, churn), each built with its documented default parameters
	// at the cell's noise rate. "poisson" reproduces the flat legacy
	// noise process — and is the default, so existing specs and
	// artifacts are unchanged.
	TenantModels []string `json:"tenant_models,omitempty"`
	// Defenses sweeps LLC countermeasures: compact defense.Parse spec
	// strings ("partition:ways=4", "randomize:period=100000",
	// "scatter", "quiesce:quantum=256,jitter=0") plus "none" for the
	// undefended host. "none" is the default, so existing specs and
	// artifacts keep their exact numbers — undefended cells carry the
	// same seed labels as before the axis existed.
	Defenses []string `json:"defenses,omitempty"`
	// Trials is the number of trials per cell.
	Trials int `json:"trials"`
	// Seed roots all randomness; a fixed seed fixes the artifact
	// byte-for-byte. Every value is literal, including 0 (cmd/llcsweep
	// supplies its default of 1, not this package), so the spec embedded
	// in an artifact always reproduces that artifact exactly.
	Seed uint64 `json:"seed"`
}

// Normalize fills defaulted fields in place: a small but meaningful
// grid (BinS construction across all five policies on the quiescent
// scaled host) with 10 trials per cell. Seed is never touched — 0 is a
// legitimate seed.
func (s *Spec) Normalize() {
	if len(s.Experiments) == 0 {
		s.Experiments = []string{"evset/bins"}
	}
	if len(s.Policies) == 0 {
		for _, k := range cache.Policies() {
			s.Policies = append(s.Policies, k.String())
		}
	}
	if len(s.SFAssocs) == 0 {
		s.SFAssocs = []int{8}
	}
	if len(s.Slices) == 0 {
		s.Slices = []int{4}
	}
	if len(s.NoiseRates) == 0 {
		s.NoiseRates = []float64{0.29}
	}
	if len(s.TenantModels) == 0 {
		s.TenantModels = []string{"poisson"}
	}
	if len(s.Defenses) == 0 {
		s.Defenses = []string{"none"}
	}
	if s.Trials == 0 {
		s.Trials = 10
	}
}

// Validate checks every axis value, returning the first problem. It
// validates against the scaled base geometry the sweep builds on.
func (s *Spec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("sweep: trials must be >= 1, got %d", s.Trials)
	}
	for _, id := range s.Experiments {
		if _, ok := experiments.LookupCell(id); !ok {
			return fmt.Errorf("sweep: unknown cell experiment %q (known: %v)", id, experiments.CellIDs())
		}
	}
	for _, p := range s.Policies {
		if _, err := cache.ParsePolicy(p); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	base := hierarchy.Scaled(2)
	for _, a := range s.SFAssocs {
		if a < 2 || a >= base.L2Ways {
			return fmt.Errorf("sweep: SF associativity %d out of range [2, %d)", a, base.L2Ways)
		}
	}
	for _, n := range s.Slices {
		if n < 1 || n > 64 {
			return fmt.Errorf("sweep: slice count %d out of range [1, 64]", n)
		}
	}
	for _, r := range s.NoiseRates {
		if r < 0 {
			return fmt.Errorf("sweep: negative noise rate %g", r)
		}
	}
	for _, m := range s.TenantModels {
		if err := (tenant.Spec{Model: m, Rate: 1}).Validate(); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, d := range s.Defenses {
		sp, err := defense.ParseOpt(d)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if sp == nil {
			continue
		}
		// Cross-check the defense against every swept geometry now (the
		// single validation path), so a partition too wide for the
		// smallest SF associativity fails here, not mid-grid.
		for _, a := range s.SFAssocs {
			cfg := base.WithSFAssociativity(a).WithDefense(*sp)
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("sweep: defense %q at sf_assoc %d: %w", d, a, err)
			}
		}
	}
	return nil
}

// CellResult is one cell's aggregated report. Mean/Stddev/Median
// summarize Sample.Value over successful trials (Unit names the value's
// unit); SuccessRate is the fraction of trials that succeeded.
type CellResult struct {
	Experiment string  `json:"experiment"`
	Policy     string  `json:"policy"`
	SFAssoc    int     `json:"sf_assoc"`
	Slices     int     `json:"slices"`
	NoiseRate  float64 `json:"noise_rate"`
	// TenantModel is the background-workload shape at the cell's noise
	// rate ("poisson" is the flat legacy process).
	TenantModel string `json:"tenant_model"`
	// Defense is the cell's LLC countermeasure in canonical compact
	// form ("none" is the undefended host).
	Defense string `json:"defense"`

	Unit        string  `json:"unit"`
	Trials      int     `json:"trials"`
	SuccessRate float64 `json:"success_rate"`
	Mean        float64 `json:"mean"`
	Stddev      float64 `json:"stddev"`
	Median      float64 `json:"median"`
	// P95 is the 95th percentile of Sample.Value over successful trials
	// — the tail-cost column attack-vs-defense artifacts report.
	P95 float64 `json:"p95"`

	// Baseline marks the cell every other cell of the same experiment is
	// compared against: the one at the first value of every axis.
	Baseline bool `json:"baseline,omitempty"`
	// DeltaSuccess is this cell's success rate minus the baseline's
	// (absolute difference); DeltaMean is (mean - baseline mean) /
	// baseline mean (relative). Omitted on the baseline cell itself.
	DeltaSuccess *float64 `json:"delta_success,omitempty"`
	DeltaMean    *float64 `json:"delta_mean,omitempty"`
}

// Result is the aggregated sweep artifact.
type Result struct {
	Spec  Spec         `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// Cell is one expanded grid point before aggregation. The campaign
// layer (internal/campaign) consumes expanded cells directly so it can
// run, checkpoint and resume them one at a time; within this package
// they only ever flow from Expand into Aggregate.
type Cell struct {
	// Exp is the registered cell experiment the cell runs.
	Exp experiments.Cell
	// Policy is the parsed replacement policy; PolicyName its canonical
	// spelling (the artifact row value).
	Policy     cache.PolicyKind
	PolicyName string
	// SFAssoc, Slices, NoiseRate, TenantModel and DefenseName are the
	// cell's remaining grid coordinates, exactly as they appear in
	// CellResult rows.
	SFAssoc     int
	Slices      int
	NoiseRate   float64
	TenantModel string
	DefenseName string
	// Config is the fully materialised hierarchy config the cell's
	// trials run on.
	Config hierarchy.Config
	// Seed is the cell's base seed, derived from its coordinates alone
	// (never from its flat grid position): trial i of this cell runs on
	// xrand.Stream(Seed, i) whether the grid is flattened into one
	// RunTrials call or the cell is run on its own.
	Seed uint64
	// Key is the canonical cell coordinate string ("|"-joined seed
	// labels). It identifies the cell in checkpoint artifacts: two cells
	// share a Key exactly when they share a Seed, so a record keyed by
	// it is valid across grid reshapes, like the seeds themselves.
	Key string
}

// Expand materialises the spec's cells in deterministic order:
// experiments outermost, then policies, associativities, slice counts,
// noise rates, tenant models, defenses. The spec must already have
// passed Normalize and Validate — the single validation path — so
// failed lookups here are programming errors.
func Expand(s Spec) []Cell {
	var out []Cell
	// Resolve the defense axis once, outside the nested loops: each
	// value becomes a (canonical name, spec) pair, with "none" as the
	// undefended nil. Validate already parsed every entry, so a failure
	// here is a programming error, not a typo to swallow.
	type defAxis struct {
		name string
		spec *defense.Spec
	}
	defs := make([]defAxis, len(s.Defenses))
	for i, d := range s.Defenses {
		sp, err := defense.ParseOpt(d)
		if err != nil {
			panic("sweep: Expand called with unvalidated defense " + d)
		}
		defs[i] = defAxis{name: "none", spec: sp}
		if sp != nil {
			// The canonical String form names the cell, so sparse and
			// explicit spellings of the same defense land on the same
			// seeds and the same artifact rows.
			defs[i].name = sp.String()
		}
	}
	for _, id := range s.Experiments {
		ce, ok := experiments.LookupCell(id)
		if !ok {
			panic("sweep: Expand called with unvalidated experiment " + id)
		}
		for _, pname := range s.Policies {
			kind, err := cache.ParsePolicy(pname)
			if err != nil {
				panic("sweep: Expand called with unvalidated policy " + pname)
			}
			for _, assoc := range s.SFAssocs {
				for _, slices := range s.Slices {
					for _, rate := range s.NoiseRates {
						for _, model := range s.TenantModels {
							for _, def := range defs {
								cfg := hierarchy.Scaled(slices).
									WithSFAssociativity(assoc).
									WithSharedPolicy(kind)
								// Noise rates are declared in the paper's unit. For
								// construction-protocol cells the scaled host must run a
								// proportionally higher rate for the declared rate to be
								// equivalent (otherwise Cloud Run-level noise is invisible
								// to the shorter test windows — see ConstructionNoiseScale);
								// monitoring cells keep the raw rate. The scaling applies
								// to every tenant model alike: it rescales the mean, the
								// model shapes how that mean is distributed.
								effRate := rate
								if ce.ConstructionNoise {
									effRate *= experiments.ConstructionNoiseScale(cfg, false)
								}
								if model == "poisson" {
									// The flat legacy knob, byte-identical to the
									// pre-tenant sweep path.
									cfg = cfg.WithNoiseRate(effRate)
									cfg.Name = fmt.Sprintf("sweep/%s/w%d/s%d", kind, assoc, slices)
								} else {
									cfg = cfg.WithTenants(tenant.Spec{Model: model, Rate: effRate, LLCProb: cfg.NoiseLLCProb})
									cfg.Name = fmt.Sprintf("sweep/%s/w%d/s%d/%s", kind, assoc, slices, model)
								}
								// Seed labels: the tenant and defense coordinates join
								// only for non-default cells, so every pre-axis artifact
								// keeps its exact numbers (a poisson/undefended cell's
								// coordinates are the same labels as before the axes
								// existed).
								labels := []any{ce.ID, kind.String(), assoc, slices, rate}
								if model != "poisson" {
									labels = append(labels, "tenant:"+model)
								}
								if def.spec != nil {
									cfg = cfg.WithDefense(*def.spec)
									cfg.Name += "/" + def.name
									labels = append(labels, "defense:"+def.name)
								}
								out = append(out, Cell{
									Exp:         ce,
									Policy:      kind,
									PolicyName:  kind.String(),
									SFAssoc:     assoc,
									Slices:      slices,
									NoiseRate:   rate,
									TenantModel: model,
									DefenseName: def.name,
									Config:      cfg,
									Seed:        cellSeed(s.Seed, labels...),
									Key:         cellKey(labels),
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// cellSeed derives a cell's base seed from its coordinates alone (via
// the engine's labelled-seed scheme), so a cell's trials are invariant
// under changes to the rest of the grid.
func cellSeed(seed uint64, labels ...any) uint64 {
	strs := make([]string, len(labels))
	for i, l := range labels {
		strs[i] = fmt.Sprint(l)
	}
	return experiments.SubSeed(seed, strs...)
}

// cellKey renders the same coordinate labels that seed a cell into its
// canonical checkpoint key. Keeping key and seed derived from one label
// slice means a checkpoint record can never be matched to a cell whose
// seed stream differs. "|" never occurs in experiment ids, policy
// names, canonical float prints, or tenant/defense spec strings.
func cellKey(labels []any) string {
	strs := make([]string, len(labels))
	for i, l := range labels {
		strs[i] = fmt.Sprint(l)
	}
	return strings.Join(strs, "|")
}

// Run executes the sweep: the whole grid flattens into one
// experiments.RunTrialsErr call (so per-worker host pools are shared
// across cells and one panicking cell fails the sweep cleanly), then
// each cell's samples aggregate into a CellResult with deltas against
// its experiment's baseline cell. workers <= 0 selects GOMAXPROCS; the
// Result is identical for every worker count. Cancelling ctx stops the
// grid between trials and returns the context's error; Run itself
// persists nothing (the resumable path is internal/campaign.Run, which
// produces the identical Result).
func Run(ctx context.Context, spec Spec, workers int) (*Result, error) {
	return RunObs(ctx, spec, workers, nil)
}

// RunObs is Run with an observability sink (the cmd/llcsweep -trace
// flag): on a traced run each grid cell becomes one trace process
// (PID = cell index, named with the cell's coordinates) whose trials
// are its threads, and metrics record the engine's per-trial series.
// A nil sink is exactly Run — the Result is byte-identical either way
// (determinism clause 10).
func RunObs(ctx context.Context, spec Spec, workers int, sink *obs.Sink) (*Result, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cls := Expand(spec)
	n := spec.Trials
	var tracer *obs.Tracer
	if sink != nil && sink.Tracer != nil {
		tracer = sink.Tracer
		for ci := range cls {
			tracer.SetProcessName(ci, cls[ci].Coords())
		}
	}
	samples, err := experiments.RunTrialsObs(ctx, len(cls)*n, workers, spec.Seed, sink, func(t *experiments.Trial) experiments.Sample {
		c := cls[t.Index/n]
		// The trial's seed comes from the cell's own stream, not the flat
		// grid index, so cells are stable across grid reshapes.
		t2 := t.WithSeed(xrand.Stream(c.Seed, uint64(t.Index%n)))
		if tracer != nil {
			// Re-root the trial's track on its grid cell: PID = cell
			// index, TID = trial within the cell (the engine's default
			// track is the flat index, meaningless in a grid).
			t2.Trace = &obs.TrialTrace{Tracer: tracer, PID: t.Index / n, TID: t.Index % n}
		}
		return c.Exp.Run(t2, c.Config)
	})
	if err != nil {
		// Name the failing grid cell, not just the flat trial index: the
		// coordinates are what the operator needs to reproduce one cell.
		if tp, ok := err.(interface{ TrialIndex() int }); ok {
			if ci := tp.TrialIndex() / n; ci >= 0 && ci < len(cls) {
				return nil, fmt.Errorf("sweep: cell %s: %w", cls[ci].Coords(), err)
			}
		}
		return nil, err
	}
	return Aggregate(spec, cls, samples), nil
}

// Coords renders the cell's grid coordinates the way sweep errors and
// campaign progress lines name a cell for an operator.
func (c *Cell) Coords() string {
	return fmt.Sprintf("%s policy=%s sf_assoc=%d slices=%d noise=%g tenant=%s defense=%s",
		c.Exp.ID, c.PolicyName, c.SFAssoc, c.Slices, c.NoiseRate, c.TenantModel, c.DefenseName)
}

// Aggregate folds per-trial samples into the sweep artifact: cell ci's
// trials are samples[ci*n : (ci+1)*n] in trial order (n = spec.Trials).
// It is pure — given equal samples it produces an equal Result — which
// is the property that makes a resumed campaign's artifact
// byte-identical to an uninterrupted run's: resume only has to
// reproduce the per-cell sample slices.
func Aggregate(spec Spec, cls []Cell, samples []experiments.Sample) *Result {
	n := spec.Trials
	res := &Result{Spec: spec}
	baseline := map[string]CellResult{} // experiment id -> baseline cell
	for ci, c := range cls {
		cs := samples[ci*n : (ci+1)*n]
		var ok []float64
		succ := 0
		for _, s := range cs {
			if s.OK {
				succ++
				ok = append(ok, s.Value)
			}
		}
		sum := stats.Summarize(ok)
		cr := CellResult{
			Experiment:  c.Exp.ID,
			Policy:      c.PolicyName,
			SFAssoc:     c.SFAssoc,
			Slices:      c.Slices,
			NoiseRate:   c.NoiseRate,
			TenantModel: c.TenantModel,
			Defense:     c.DefenseName,
			Unit:        c.Exp.Unit,
			Trials:      n,
			SuccessRate: float64(succ) / float64(n),
			Mean:        sum.Mean,
			Stddev:      sum.Stddev,
			Median:      sum.Median,
			P95:         stats.Percentile(ok, 95),
		}
		if base, have := baseline[c.Exp.ID]; !have {
			// Cells expand with the first value of every axis first, so the
			// first cell of an experiment is its baseline.
			cr.Baseline = true
			baseline[c.Exp.ID] = cr
		} else {
			ds := cr.SuccessRate - base.SuccessRate
			cr.DeltaSuccess = &ds
			if base.Mean != 0 {
				dm := (cr.Mean - base.Mean) / base.Mean
				cr.DeltaMean = &dm
			}
		}
		res.Cells = append(res.Cells, cr)
	}
	return res
}

// WriteJSON renders the artifact as indented JSON. Encoding is fully
// deterministic: struct-ordered keys, shortest-form floats.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader is the CSV artifact's column set.
var csvHeader = []string{
	"experiment", "policy", "sf_assoc", "slices", "noise_rate", "tenant_model", "defense",
	"unit", "trials", "success_rate", "mean", "stddev", "median", "p95",
	"baseline", "delta_success", "delta_mean",
}

// WriteCSV renders the artifact as CSV with one row per cell; delta
// columns are empty on baseline cells.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	opt := func(v *float64) string {
		if v == nil {
			return ""
		}
		return f(*v)
	}
	for _, c := range r.Cells {
		row := []string{
			c.Experiment, c.Policy, strconv.Itoa(c.SFAssoc), strconv.Itoa(c.Slices), f(c.NoiseRate), c.TenantModel, c.Defense,
			c.Unit, strconv.Itoa(c.Trials), f(c.SuccessRate), f(c.Mean), f(c.Stddev), f(c.Median), f(c.P95),
			strconv.FormatBool(c.Baseline), opt(c.DeltaSuccess), opt(c.DeltaMean),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
