package sweep

import (
	"context"
	"testing"
)

// TestDefenseAxis sweeps LLC countermeasures: the same experiment across
// defenses, with "none" first so it is the baseline the defended cells
// are compared against.
func TestDefenseAxis(t *testing.T) {
	s := tinySpec()
	s.Policies = []string{"LRU"}
	s.SFAssocs = []int{8}
	s.Defenses = []string{"none", "partition:ways=4", "quiesce"}
	res, err := Run(context.Background(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	want := []string{"none", "partition:ways=4", "quiesce:quantum=512,jitter=0"}
	for i, c := range res.Cells {
		if c.Defense != want[i] {
			t.Errorf("cell %d defense = %q, want canonical %q", i, c.Defense, want[i])
		}
		if (i == 0) != c.Baseline {
			t.Errorf("cell %d baseline = %v; the undefended cell must be the baseline", i, c.Baseline)
		}
	}
	// The partitioned host halves the attacker's effective associativity,
	// so the BinS construction cell must behave differently from the
	// undefended baseline in at least one number.
	a, b := res.Cells[0], res.Cells[1]
	if a.SuccessRate == b.SuccessRate && a.Mean == b.Mean && a.Median == b.Median {
		t.Error("partition cell is numerically identical to the undefended baseline — the defense is not reaching the host")
	}
}

// TestDefenseAxisPreservesUndefendedCells pins the seed-label back-compat
// rule: growing the Defenses axis must not move a single number in the
// "none" cells, which carry the same coordinates as before the axis
// existed — the property that keeps SWEEP_seed.json stable.
func TestDefenseAxisPreservesUndefendedCells(t *testing.T) {
	base := tinySpec()
	withAxis := tinySpec()
	withAxis.Defenses = []string{"none", "quiesce"}
	a, err := Run(context.Background(), base, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), withAxis, 4)
	if err != nil {
		t.Fatal(err)
	}
	var undefended []CellResult
	for _, c := range b.Cells {
		if c.Defense == "none" {
			undefended = append(undefended, c)
		}
	}
	if len(undefended) != len(a.Cells) {
		t.Fatalf("%d undefended cells vs %d baseline cells", len(undefended), len(a.Cells))
	}
	deref := func(p *float64) (float64, bool) {
		if p == nil {
			return 0, false
		}
		return *p, true
	}
	for i := range undefended {
		p, q := undefended[i], a.Cells[i]
		pd, pk := deref(p.DeltaSuccess)
		qd, qk := deref(q.DeltaSuccess)
		pm, pmk := deref(p.DeltaMean)
		qm, qmk := deref(q.DeltaMean)
		p.DeltaSuccess, p.DeltaMean, q.DeltaSuccess, q.DeltaMean = nil, nil, nil, nil
		if p != q || pd != qd || pk != qk || pm != qm || pmk != qmk {
			t.Errorf("undefended cell %d moved when the defense axis grew:\n%+v\nvs\n%+v",
				i, undefended[i], a.Cells[i])
		}
	}
}

// TestScenarioCellCarriesVariantDefense: a defended scenario VARIANT
// mirrored as a sweep cell must measure a defended host even when the
// grid's defenses axis is the default "none" — the variant's baked
// countermeasure is what the cell's name promises.
func TestScenarioCellCarriesVariantDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario pipelines are slow")
	}
	spec := Spec{
		Experiments: []string{"scenario/covert/channel", "scenario/covert/channel/quiesce"},
		Policies:    []string{"LRU"},
		SFAssocs:    []int{8},
		Slices:      []int{4},
		NoiseRates:  []float64{11.5},
		Trials:      2,
		Seed:        7,
	}
	res, err := Run(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	base, quiesced := res.Cells[0], res.Cells[1]
	if base.SuccessRate == 0 {
		t.Fatal("undefended covert channel should work in a sweep cell")
	}
	if quiesced.SuccessRate != 0 {
		t.Fatalf("covert/channel/quiesce cell succeeded at %.2f — the variant's baked defense did not reach the host",
			quiesced.SuccessRate)
	}
}

func TestValidateRejectsBadDefense(t *testing.T) {
	s := tinySpec()
	s.Defenses = []string{"moat"}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted an unknown defense model")
	}
	// A partition too wide for a swept associativity fails up front with
	// the offending coordinates, not mid-grid.
	s = tinySpec()
	s.SFAssocs = []int{8, 6}
	s.Defenses = []string{"partition:ways=5"} // LLC follows at 5 ways for assoc 6
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted a partition wider than the smallest swept LLC")
	}
	s.SFAssocs = []int{8}
	if err := s.Validate(); err != nil {
		t.Errorf("partition:ways=5 at sf_assoc 8 should validate: %v", err)
	}
}
