package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	// Register the end-to-end attack scenarios as cell experiments.
	_ "repro/internal/scenario"
)

// tinySpec is a fast 2x2 grid used by most tests.
func tinySpec() Spec {
	return Spec{
		Experiments: []string{"evset/bins"},
		Policies:    []string{"LRU", "QLRU"},
		SFAssocs:    []int{8, 6},
		Slices:      []int{2},
		NoiseRates:  []float64{0.29},
		Trials:      2,
		Seed:        7,
	}
}

func TestNormalizeDefaults(t *testing.T) {
	var s Spec
	s.Normalize()
	if len(s.Experiments) == 0 || len(s.Policies) != 5 || len(s.SFAssocs) == 0 ||
		len(s.Slices) == 0 || len(s.NoiseRates) == 0 || s.Trials == 0 {
		t.Fatalf("Normalize left zero-valued fields: %+v", s)
	}
	if s.Seed != 0 {
		t.Fatalf("Normalize must leave the seed literal (0 is a valid seed), got %d", s.Seed)
	}
	// Trials == 0 means "default": Normalize turns it into 10, so a spec
	// file with "trials": 0 runs the default count rather than erroring.
	if s.Trials != 10 {
		t.Fatalf("Normalize defaulted Trials to %d, want 10", s.Trials)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("normalized default spec must validate: %v", err)
	}
}

func TestValidateRejectsBadAxes(t *testing.T) {
	for name, mut := range map[string]func(*Spec){
		"unknown experiment": func(s *Spec) { s.Experiments = []string{"nope/nope"} },
		"unknown policy":     func(s *Spec) { s.Policies = []string{"FIFO"} },
		"assoc too low":      func(s *Spec) { s.SFAssocs = []int{1} },
		"assoc at L2Ways":    func(s *Spec) { s.SFAssocs = []int{12} },
		"zero slices":        func(s *Spec) { s.Slices = []int{0} },
		"negative noise":     func(s *Spec) { s.NoiseRates = []float64{-1} },
		"negative trials":    func(s *Spec) { s.Trials = -1 },
	} {
		s := tinySpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
		if _, err := Run(context.Background(), s, 1); err == nil {
			t.Errorf("%s: Run accepted invalid spec", name)
		}
	}
}

func TestGridExpansionAndBaseline(t *testing.T) {
	s := tinySpec()
	res, err := Run(context.Background(), s, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := len(s.Policies) * len(s.SFAssocs) // 1 experiment, 1 slice count, 1 noise rate
	if len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	// Exactly one baseline per experiment, and it is the first cell (first
	// value of every axis).
	if !res.Cells[0].Baseline {
		t.Error("first cell not marked baseline")
	}
	for i, c := range res.Cells {
		if i == 0 {
			if c.DeltaSuccess != nil || c.DeltaMean != nil {
				t.Error("baseline cell carries deltas")
			}
			continue
		}
		if c.Baseline {
			t.Errorf("cell %d unexpectedly marked baseline", i)
		}
		if c.DeltaSuccess == nil {
			t.Errorf("cell %d missing delta_success", i)
		} else if ds := *c.DeltaSuccess; ds != c.SuccessRate-res.Cells[0].SuccessRate {
			t.Errorf("cell %d delta_success = %v, want %v", i, ds, c.SuccessRate-res.Cells[0].SuccessRate)
		}
	}
}

// TestArtifactWorkerInvariance is the sweep's acceptance contract: the
// rendered JSON and CSV artifacts must be byte-identical between
// sequential and 8-worker runs of the same grid.
func TestArtifactWorkerInvariance(t *testing.T) {
	render := func(workers int) (string, string) {
		res, err := Run(context.Background(), tinySpec(), workers)
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("JSON artifact differs between workers=1 and workers=8:\n%s\nvs\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("CSV artifact differs between workers=1 and workers=8")
	}
}

// TestCellGridInvariance checks the reshape property: a cell's numbers
// depend only on its own coordinates, so shrinking the grid leaves the
// surviving cells byte-identical.
func TestCellGridInvariance(t *testing.T) {
	full, err := Run(context.Background(), tinySpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	small := tinySpec()
	small.Policies = []string{"LRU"} // drop QLRU
	sub, err := Run(context.Background(), small, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range sub.Cells {
		found := false
		for _, fc := range full.Cells {
			if fc.Policy == sc.Policy && fc.SFAssoc == sc.SFAssoc {
				found = true
				if fc.SuccessRate != sc.SuccessRate || fc.Mean != sc.Mean ||
					fc.Stddev != sc.Stddev || fc.Median != sc.Median {
					t.Errorf("cell %s/w%d changed when the grid shrank: %+v vs %+v",
						sc.Policy, sc.SFAssoc, sc, fc)
				}
			}
		}
		if !found {
			t.Errorf("cell %s/w%d missing from the full grid", sc.Policy, sc.SFAssoc)
		}
	}
}

func TestWriteCSVShape(t *testing.T) {
	res, err := Run(context.Background(), tinySpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Cells)+1 {
		t.Fatalf("CSV has %d rows, want %d cells + header", len(rows), len(res.Cells))
	}
	if !reflect.DeepEqual(rows[0], csvHeader) {
		t.Errorf("CSV header = %v", rows[0])
	}
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), len(csvHeader))
		}
	}
	// Baseline row has empty deltas; every other row has a delta_success.
	col := func(name string) int {
		for i, h := range csvHeader {
			if h == name {
				return i
			}
		}
		t.Fatalf("no CSV column %q", name)
		return -1
	}
	ds, dm := col("delta_success"), col("delta_mean")
	if rows[1][ds] != "" || rows[1][dm] != "" {
		t.Error("baseline CSV row carries deltas")
	}
	if rows[2][ds] == "" {
		t.Error("non-baseline CSV row missing delta_success")
	}
}

// TestTenantModelAxis sweeps the background-workload shape: the same
// experiment and noise rate across tenant models, with poisson first so
// it is the baseline the structured models are compared against.
func TestTenantModelAxis(t *testing.T) {
	s := tinySpec()
	s.Policies = []string{"LRU"}
	s.SFAssocs = []int{8}
	s.NoiseRates = []float64{11.5}
	s.TenantModels = []string{"poisson", "burst", "stream", "hotset", "churn"}
	res, err := Run(context.Background(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(res.Cells))
	}
	for i, model := range s.TenantModels {
		c := res.Cells[i]
		if c.TenantModel != model {
			t.Errorf("cell %d tenant_model = %q, want %q", i, c.TenantModel, model)
		}
		if (i == 0) != c.Baseline {
			t.Errorf("cell %d baseline = %v; poisson must be the baseline", i, c.Baseline)
		}
	}
}

// TestTenantAxisPreservesPoissonCells pins the seed-label back-compat
// rule: adding structured models to the axis must not move a single
// number in the poisson cells, which carry the same coordinates as
// before the axis existed.
func TestTenantAxisPreservesPoissonCells(t *testing.T) {
	base := tinySpec()
	withAxis := tinySpec()
	withAxis.TenantModels = []string{"poisson", "stream"}
	a, err := Run(context.Background(), base, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), withAxis, 4)
	if err != nil {
		t.Fatal(err)
	}
	var poisson []CellResult
	for _, c := range b.Cells {
		if c.TenantModel == "poisson" {
			poisson = append(poisson, c)
		}
	}
	if len(poisson) != len(a.Cells) {
		t.Fatalf("%d poisson cells vs %d baseline cells", len(poisson), len(a.Cells))
	}
	deref := func(p *float64) (float64, bool) {
		if p == nil {
			return 0, false
		}
		return *p, true
	}
	for i := range poisson {
		p, q := poisson[i], a.Cells[i]
		pd, pk := deref(p.DeltaSuccess)
		qd, qk := deref(q.DeltaSuccess)
		pm, pmk := deref(p.DeltaMean)
		qm, qmk := deref(q.DeltaMean)
		p.DeltaSuccess, p.DeltaMean, q.DeltaSuccess, q.DeltaMean = nil, nil, nil, nil
		if p != q || pd != qd || pk != qk || pm != qm || pmk != qmk {
			t.Errorf("poisson cell %d moved when the tenant axis grew:\n%+v\nvs\n%+v",
				i, poisson[i], a.Cells[i])
		}
	}
}

func TestValidateRejectsBadTenantModel(t *testing.T) {
	s := tinySpec()
	s.TenantModels = []string{"warp"}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted an unknown tenant model")
	}
}

// TestScenarioCellSweep places a whole end-to-end attack (a scenario
// registered as a cell experiment) into a sweep grid and checks the
// artifact is worker-invariant, like any micro-experiment cell.
func TestScenarioCellSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario pipelines are slow")
	}
	spec := Spec{
		Experiments: []string{"scenario/scan/psd"},
		Policies:    []string{"LRU"},
		SFAssocs:    []int{8},
		Slices:      []int{4},
		NoiseRates:  []float64{11.5},
		Trials:      2,
		Seed:        7,
	}
	var arts [][]byte
	for _, workers := range []int{1, 8} {
		res, err := Run(context.Background(), spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 1 || res.Cells[0].Experiment != "scenario/scan/psd" {
			t.Fatalf("unexpected cells: %+v", res.Cells)
		}
		if res.Cells[0].Unit != "cycles" || res.Cells[0].Trials != 2 {
			t.Fatalf("scenario cell shape wrong: %+v", res.Cells[0])
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		arts = append(arts, buf.Bytes())
	}
	if !bytes.Equal(arts[0], arts[1]) {
		t.Errorf("scenario-cell sweep artifact differs between worker counts:\n%s\n---\n%s", arts[0], arts[1])
	}
}
