// Package psd implements target-set identification in the frequency
// domain (§6.2, §7.2): access traces are binned into fixed-rate signals,
// their power spectral density is estimated with Welch's method, and an
// SVM over PSD-derived features decides whether a trace came from the
// victim's target set — the victim's ladder accesses the target line
// with a period of about half an iteration (~4,850 cycles, 0.41 MHz at
// 2 GHz), producing peaks at that base frequency and its harmonics
// (Figure 7) that survive cloud noise far better than time-domain
// features.
package psd

import (
	"math"

	"repro/internal/classify"
	"repro/internal/clock"
	"repro/internal/dsp"
	"repro/internal/probe"
	"repro/internal/xrand"
)

// Params fixes the trace geometry and the victim's expected period.
type Params struct {
	// TraceCycles is the capture window (paper: 500 µs = 1M cycles).
	TraceCycles clock.Cycles
	// BinCycles is the binning rate for the PSD signal.
	BinCycles clock.Cycles
	// ExpectedPeriod is the victim's access period in cycles (~4,850).
	ExpectedPeriod float64
	// MinAccesses/MaxAccesses prefilter traces by detection count before
	// any spectral work (paper: 50–400 per 500 µs trace).
	MinAccesses, MaxAccesses int
}

// DefaultParams mirrors the paper's configuration for a victim with the
// given expected access period in cycles.
func DefaultParams(expectedPeriod float64) Params {
	return Params{
		TraceCycles:    clock.FromMicros(500),
		BinCycles:      500,
		ExpectedPeriod: expectedPeriod,
		MinAccesses:    50,
		MaxAccesses:    400,
	}
}

// Prefilter reports whether the trace's access count is in the plausible
// band for the victim signal.
func (p Params) Prefilter(tr *probe.Trace) bool {
	n := len(tr.Times)
	// Scale the paper's 50–400 band to the actual trace duration.
	scale := float64(tr.Duration()) / float64(p.TraceCycles)
	if scale <= 0 {
		return false
	}
	lo := int(float64(p.MinAccesses) * scale)
	hi := int(float64(p.MaxAccesses) * scale)
	return n >= lo && n <= hi
}

// nBands is the number of coarse spectrum bands in the feature vector.
const nBands = 16

// Features converts a trace into the SVM feature vector: log peak-to-
// floor ratios at the expected base frequency and its first harmonics,
// plus a coarse log-spectrum profile and the normalized access count.
func (p Params) Features(tr *probe.Trace) []float64 {
	signal := dsp.BinTrace(toU64(tr.Times), uint64(tr.Start), uint64(tr.End), uint64(p.BinCycles))
	fs := 1.0 / float64(p.BinCycles) // samples per cycle
	spec := dsp.Welch(signal, fs, dsp.WelchOptions{SegmentLength: 256, Overlap: -1, Window: dsp.Hann})

	floor := spec.MedianPower()
	if floor <= 0 {
		floor = 1e-12
	}
	f0 := 1.0 / p.ExpectedPeriod
	tol := f0 * 0.15
	feats := make([]float64, 0, nBands+5)
	for h := 1; h <= 3; h++ {
		peak := spec.PeakNear(float64(h)*f0, tol)
		feats = append(feats, math.Log1p(peak/floor))
	}
	// Off-frequency control band: power between the fundamental and the
	// first harmonic, where the victim signal should be quiet.
	ctrl := spec.PeakNear(1.5*f0, tol)
	feats = append(feats, math.Log1p(ctrl/floor))
	// Coarse band profile.
	nb := len(spec.Power)
	for b := 0; b < nBands; b++ {
		lo := b * nb / nBands
		hi := (b + 1) * nb / nBands
		s := 0.0
		for i := lo; i < hi; i++ {
			s += spec.Power[i]
		}
		feats = append(feats, math.Log1p(s/floor/float64(hi-lo)))
	}
	// Normalized access count.
	feats = append(feats, float64(len(tr.Times))/float64(tr.Duration()/p.BinCycles+1))
	return feats
}

func toU64(ts []clock.Cycles) []uint64 {
	out := make([]uint64, len(ts))
	for i, t := range ts {
		out[i] = uint64(t)
	}
	return out
}

// Scanner classifies traces as target / non-target.
type Scanner struct {
	Params Params
	svm    *classify.SVM
}

// TrainScanner fits the SVM on labeled traces (the paper trains on 2,266
// target and 120,103 non-target traces collected across hosts, with 30%
// withheld; our harness scales the volumes down). It returns the scanner
// and the validation metrics.
func TrainScanner(p Params, target, nonTarget []*probe.Trace, rng *xrand.Rand) (*Scanner, classify.Metrics) {
	var x [][]float64
	var y []int
	for _, tr := range target {
		x = append(x, p.Features(tr))
		y = append(y, 1)
	}
	for _, tr := range nonTarget {
		x = append(x, p.Features(tr))
		y = append(y, 0)
	}
	tx, ty, vx, vy := classify.Split(x, y, 0.3, rng)
	svm := classify.NewSVM(classify.SVMConfig{Kernel: classify.PolyKernel(3, 0.5, 1), C: 5})
	ysvm := make([]float64, len(ty))
	for i, v := range ty {
		ysvm[i] = float64(2*v - 1)
	}
	svm.Train(tx, ysvm, rng)
	s := &Scanner{Params: p, svm: svm}
	m := classify.Evaluate(func(f []float64) int {
		if svm.Predict(f) > 0 {
			return 1
		}
		return 0
	}, vx, vy)
	return s, m
}

// Classify reports whether the trace looks like the victim's target set.
// Traces failing the count prefilter are rejected without spectral work
// (they would not even be streamed back for analysis, §7.2).
func (s *Scanner) Classify(tr *probe.Trace) bool {
	if !s.Params.Prefilter(tr) {
		return false
	}
	return s.svm.Predict(s.Params.Features(tr)) > 0
}
