package psd

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/probe"
	"repro/internal/xrand"
)

// synthTrace builds a detection trace with the victim's structure: one
// access per iteration boundary plus a midpoint access for zero bits,
// over a 500 µs window, with optional uniform noise detections.
func synthTrace(rng *xrand.Rand, period float64, noise int, active bool) *probe.Trace {
	tr := &probe.Trace{Start: 1000, End: 1000 + clock.FromMicros(500)}
	if active {
		iter := period * 2 // period is the access period (half iteration)
		for t := float64(tr.Start); t < float64(tr.End); t += iter {
			jit := rng.Norm(0, 60)
			tr.Times = append(tr.Times, clock.Cycles(t+jit))
			if rng.Bool() { // a zero bit: midpoint access
				tr.Times = append(tr.Times, clock.Cycles(t+iter/2+rng.Norm(0, 60)))
			}
		}
	}
	for i := 0; i < noise; i++ {
		tr.Times = append(tr.Times, tr.Start+clock.Cycles(rng.Float64()*float64(tr.End-tr.Start)))
	}
	sortTimes(tr.Times)
	return tr
}

func sortTimes(ts []clock.Cycles) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestFeaturesSeparateClasses(t *testing.T) {
	rng := xrand.New(1)
	p := DefaultParams(4850)
	target := synthTrace(rng, 4850, 15, true)
	junk := synthTrace(rng, 4850, 90, false)
	ft := p.Features(target)
	fj := p.Features(junk)
	// Feature 0 is the log peak-to-floor at f0: it must be decisively
	// larger for the periodic trace.
	if ft[0] < fj[0]+0.5 {
		t.Fatalf("f0 feature: target=%.2f junk=%.2f — no separation", ft[0], fj[0])
	}
}

func TestPrefilterCounts(t *testing.T) {
	p := DefaultParams(4850)
	rng := xrand.New(2)
	if p.Prefilter(synthTrace(rng, 4850, 0, false)) {
		t.Fatal("empty trace passed the prefilter")
	}
	dense := synthTrace(rng, 4850, 600, false)
	if p.Prefilter(dense) {
		t.Fatal("over-dense trace passed the prefilter")
	}
	if !p.Prefilter(synthTrace(rng, 4850, 10, true)) {
		t.Fatal("plausible trace rejected by the prefilter")
	}
}

func TestTrainScannerOnSynthetic(t *testing.T) {
	rng := xrand.New(3)
	p := DefaultParams(4850)
	var target, non []*probe.Trace
	for i := 0; i < 30; i++ {
		target = append(target, synthTrace(rng, 4850, 10+rng.Intn(20), true))
		non = append(non, synthTrace(rng, 4850, 60+rng.Intn(120), false))
	}
	s, m := TrainScanner(p, target, non, rng)
	if m.FalseNegativeRate() > 0.2 || m.FalsePositiveRate() > 0.2 {
		t.Fatalf("validation FN=%.2f FP=%.2f", m.FalseNegativeRate(), m.FalsePositiveRate())
	}
	// Fresh traces.
	hit, miss := 0, 0
	for i := 0; i < 20; i++ {
		if s.Classify(synthTrace(rng, 4850, 15, true)) {
			hit++
		}
		if s.Classify(synthTrace(rng, 4850, 100, false)) {
			miss++
		}
	}
	if hit < 15 {
		t.Fatalf("classified only %d/20 fresh target traces", hit)
	}
	if miss > 5 {
		t.Fatalf("false-positived %d/20 fresh junk traces", miss)
	}
}

func TestWrongPeriodRejected(t *testing.T) {
	// A periodic signal at a *different* frequency must not look like
	// the victim (this is what separates MAdd/MDouble hot lines, §7.2).
	rng := xrand.New(4)
	p := DefaultParams(4850)
	var target, non []*probe.Trace
	for i := 0; i < 30; i++ {
		target = append(target, synthTrace(rng, 4850, 10, true))
		if i%2 == 0 {
			non = append(non, synthTrace(rng, 2100, 10, true)) // wrong period
		} else {
			non = append(non, synthTrace(rng, 4850, 80, false))
		}
	}
	s, _ := TrainScanner(p, target, non, rng)
	wrongHits := 0
	for i := 0; i < 20; i++ {
		if s.Classify(synthTrace(rng, 2100, 10, true)) {
			wrongHits++
		}
	}
	if wrongHits > 6 {
		t.Fatalf("wrong-frequency traces accepted %d/20 times", wrongHits)
	}
}
