// Package evset implements the paper's eviction-set toolkit: candidate
// set construction, the TestEviction primitive in sequential and parallel
// variants (§4.1), the state-of-the-art pruning algorithms — group testing
// (Gt/GtOp) and Prime+Scope (Ps/PsOp) — and the paper's contributions:
// L2-driven candidate address filtering (§5.1) and the Binary Search-based
// pruning algorithm (§5.2), plus the bulk builders for the SingleSet,
// PageOffset and WholeSys scenarios (§2.2.2–2.2.3).
package evset

import (
	"errors"

	"repro/internal/clock"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Env is the attacker's execution environment: the main thread, the
// helper thread that repeats accesses to force lines into the LLC
// (paper §4.2), calibrated latency thresholds, and instrumentation
// counters.
type Env struct {
	Main   *hierarchy.Agent
	Helper *hierarchy.Agent
	Rng    *xrand.Rand

	// ThreshPrivate separates L1/L2 hits from anything served beyond the
	// private caches; ThreshLLC separates LLC/SF service from DRAM.
	// Both are in measured cycles (including rdtsc overhead).
	ThreshPrivate float64
	ThreshLLC     float64

	// CalibTrials is the number of lines timed per latency class during
	// calibration; 0 selects DefaultCalibTrials.
	CalibTrials int

	// Counters.
	Tests uint64 // TestEviction invocations
}

// DefaultCalibTrials is the calibration sample count per latency class
// when EnvOptions does not override it.
const DefaultCalibTrials = 64

// EnvOptions configures environment construction.
type EnvOptions struct {
	// CalibTrials overrides the number of lines timed per latency class
	// during calibration (0 keeps DefaultCalibTrials). Callers that
	// rebuild environments every trial can lower it to trade threshold
	// precision for setup cost; the experiment runners keep the default
	// so their reports stay comparable with earlier trees.
	CalibTrials int
}

// NewEnv creates the attacker environment on cores 0 (main) and 1
// (helper) of the host and calibrates the latency thresholds.
func NewEnv(h *hierarchy.Host, seed uint64) *Env {
	return NewEnvWith(h, seed, EnvOptions{})
}

// NewEnvWith is NewEnv with explicit options.
func NewEnvWith(h *hierarchy.Host, seed uint64, opt EnvOptions) *Env {
	main := h.NewAgent(0)
	helper := h.NewAgentSharing(1, main.AddressSpace())
	e := &Env{Main: main, Helper: helper, Rng: xrand.New(seed), CalibTrials: opt.CalibTrials}
	e.Calibrate()
	return e
}

// Calibrate measures hit/miss latency distributions the way real attack
// code does — timing accesses to lines in known states — and sets the
// classification thresholds between the observed distributions. The
// sample count comes from CalibTrials.
func (e *Env) Calibrate() {
	trials := e.CalibTrials
	if trials <= 0 {
		trials = DefaultCalibTrials
	}
	buf := e.Main.Alloc(trials)
	var l2, llc, dram []float64
	for i := 0; i < trials; i++ {
		va := buf.LineAt(i, 0)
		// DRAM: first-touch of a fresh line after flush.
		e.Main.Flush(va)
		lat, _ := e.Main.TimedAccess(va)
		dram = append(dram, float64(lat))
		// L2/L1: immediate re-access.
		lat, _ = e.Main.TimedAccess(va)
		l2 = append(l2, float64(lat))
		// LLC: share the line, then displace the private copies.
		e.Main.LoadShared(e.Helper, va)
		e.Main.EvictPrivate(va)
		lat, _ = e.Main.TimedAccess(va)
		llc = append(llc, float64(lat))
	}
	hiPrivate := stats.Percentile(l2, 95)
	loLLC := stats.Percentile(llc, 5)
	e.ThreshPrivate = (hiPrivate + loLLC) / 2
	hiLLC := stats.Percentile(llc, 95)
	loDRAM := stats.Percentile(dram, 5)
	e.ThreshLLC = (hiLLC + loDRAM) / 2
}

// Host returns the underlying host.
func (e *Env) Host() *hierarchy.Host { return e.Main.Host() }

// Now returns the current virtual time (unjittered, for bookkeeping).
func (e *Env) Now() clock.Cycles { return e.Host().Clock().Now() }

// --- TestEviction primitives (paper §4.1) ---------------------------------

// Target selects which structure a TestEviction exercises.
type Target int

// Eviction-test targets.
const (
	TargetL2 Target = iota
	TargetLLC
	TargetSF
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetL2:
		return "L2"
	case TargetLLC:
		return "LLC"
	case TargetSF:
		return "SF"
	default:
		return "unknown"
	}
}

// TestEviction reports whether accessing the first n candidate addresses
// evicts the target address Ta from the target structure. parallel
// selects the overlapped-access implementation (§4.1); Prime+Scope is
// restricted to the sequential variant by its design.
//
// Environmental noise can evict Ta during the test, producing a
// false-positive result exactly as discussed in §4.1 — this is the
// central failure mode the paper's algorithms must tolerate.
func (e *Env) TestEviction(target Target, ta memory.VAddr, addrs []memory.VAddr, n int, parallel bool) bool {
	e.Tests++
	if n > len(addrs) {
		n = len(addrs)
	}
	switch target {
	case TargetLLC:
		return e.testEvictionLLC(ta, addrs[:n], parallel)
	case TargetSF:
		return e.testEvictionSF(ta, addrs[:n], parallel)
	case TargetL2:
		return e.testEvictionL2(ta, addrs[:n], parallel)
	default:
		panic("evset: unknown target")
	}
}

// testEvictionLLC loads Ta into the LLC (via the helper thread), displaces
// the private copies, traverses the candidates as shared lines and times a
// re-access to Ta: DRAM service means Ta was evicted from the LLC.
func (e *Env) testEvictionLLC(ta memory.VAddr, addrs []memory.VAddr, parallel bool) bool {
	e.Main.LoadShared(e.Helper, ta)
	e.Main.EvictPrivate(ta)
	e.traverseShared(addrs, parallel)
	lat, _ := e.Main.TimedAccess(ta)
	return float64(lat) > e.ThreshLLC
}

// testEvictionSF checks eviction from the Snoop Filter. SF entries are
// allocated only on private fills, and a line that is still L1/L2
// resident never re-allocates its entry, so the test flushes the
// candidate lines first (clflush is unprivileged) to force fresh SF
// allocations — the same reason Prime+Scope's PS-Flush prime pattern
// exists (§6.1). Ta is then loaded Exclusive (SF-tracked), the candidates
// are reloaded, and a timed re-access to Ta tells whether its SF entry
// was evicted: back-invalidation makes the re-access miss the private
// caches.
func (e *Env) testEvictionSF(ta memory.VAddr, addrs []memory.VAddr, parallel bool) bool {
	e.Main.FlushAll(addrs)
	e.Main.Flush(ta)
	e.Main.Access(ta)
	e.traversePrivate(addrs, parallel)
	lat, _ := e.Main.TimedAccess(ta)
	return float64(lat) > e.ThreshPrivate
}

// testEvictionL2 works entirely within the attacker's own core:
// candidates that are L2-congruent with Ta displace it from the L2. L1
// copies are dropped (a pattern detail of the real implementation) so
// every touch reaches the L2 and updates its replacement state.
func (e *Env) testEvictionL2(ta memory.VAddr, addrs []memory.VAddr, parallel bool) bool {
	e.Main.DropL1(ta)
	e.Main.Access(ta)
	for _, a := range addrs {
		e.Main.DropL1(a)
	}
	e.traversePrivate(addrs, parallel)
	lat, _ := e.Main.TimedAccess(ta)
	return float64(lat) > e.ThreshPrivate
}

func (e *Env) traverseShared(addrs []memory.VAddr, parallel bool) {
	if parallel {
		e.Main.LoadSharedAll(e.Helper, addrs)
		return
	}
	e.Main.AccessSeq(addrs)
	for _, va := range addrs {
		e.Helper.Access(va)
	}
}

func (e *Env) traversePrivate(addrs []memory.VAddr, parallel bool) {
	if parallel {
		e.Main.AccessParallel(addrs)
		return
	}
	e.Main.AccessSeq(addrs)
}

// --- Candidate sets --------------------------------------------------------

// Candidates is a pool of attacker-controlled addresses sharing one page
// offset. Because the attacker controls only the page offset (paper
// §2.2.1), every candidate sits on its own page; the pool's backing pages
// are reusable at all 64 line offsets for the WholeSys scenario.
type Candidates struct {
	Buf    memory.Buffer
	Offset uint64
	Addrs  []memory.VAddr
}

// NewCandidates allocates a candidate pool of the given size at the page
// offset, shuffled so that physical congruence is uncorrelated with list
// position.
func NewCandidates(e *Env, size int, offset uint64) *Candidates {
	buf := e.Main.Alloc(size)
	c := &Candidates{Buf: buf, Offset: offset}
	c.Addrs = make([]memory.VAddr, size)
	for i := range c.Addrs {
		c.Addrs[i] = buf.LineAt(i, offset)
	}
	e.Rng.Shuffle(len(c.Addrs), func(i, j int) { c.Addrs[i], c.Addrs[j] = c.Addrs[j], c.Addrs[i] })
	return c
}

// AtOffset re-derives the candidate pool at a different page offset using
// the same backing pages (the δ-shift property of §5.3.1: congruence in
// the L2 is preserved under equal in-page shifts).
func (c *Candidates) AtOffset(offset uint64) *Candidates {
	out := &Candidates{Buf: c.Buf, Offset: offset}
	out.Addrs = make([]memory.VAddr, len(c.Addrs))
	for i, va := range c.Addrs {
		out.Addrs[i] = va - memory.VAddr(c.Offset) + memory.VAddr(offset)
	}
	return out
}

// DefaultPoolSize returns the paper's empirically sufficient candidate
// pool size 3·U·W for the host's LLC/SF (§4.2).
func DefaultPoolSize(cfg hierarchy.Config) int {
	return 3 * cfg.LLCUncertainty() * cfg.SFWays
}

// --- Eviction sets ---------------------------------------------------------

// EvictionSet is a constructed (ideally minimal) eviction set for one
// LLC/SF set, anchored at the target address used to build it.
type EvictionSet struct {
	Ta    memory.VAddr
	Lines []memory.VAddr
}

// Size returns the number of addresses in the set.
func (s *EvictionSet) Size() int { return len(s.Lines) }

// Verified reports, using privileged ground truth, whether the set
// contains at least `need` addresses truly congruent with Ta. Experiment
// harnesses use it to score success rates; attack code never calls it.
func (s *EvictionSet) Verified(a *hierarchy.Agent, need int) bool {
	target := a.SetOf(s.Ta)
	n := 0
	for _, va := range s.Lines {
		if a.SetOf(va) == target {
			n++
		}
	}
	return n >= need
}

// SelfTest re-tests the set the way attack code does (no privileged
// information): it must evict Ta from the target structure in a majority
// of `rounds` trials.
func (s *EvictionSet) SelfTest(e *Env, target Target, rounds int) bool {
	ok := 0
	for i := 0; i < rounds; i++ {
		if e.TestEviction(target, s.Ta, s.Lines, len(s.Lines), true) {
			ok++
		}
	}
	return ok*2 > rounds
}

// ErrExhausted is returned when an algorithm runs out of candidates,
// attempts or time.
var ErrExhausted = errors.New("evset: construction failed")
