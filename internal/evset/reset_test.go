package evset

import (
	"testing"

	"repro/internal/hierarchy"
)

// resetTestConfig is a noisy scaled host so the equivalence check covers
// the Poisson noise stream and timer jitter, not just cache state.
func resetTestConfig() hierarchy.Config {
	return hierarchy.Scaled(4).WithCloudNoise()
}

// buildOutcome runs one eviction-set construction on the host and
// returns everything an experiment would consume from it.
func buildOutcome(h *hierarchy.Host, seed uint64) (ok bool, size int, dur uint64, now uint64, accesses uint64) {
	e := NewEnv(h, seed^0xe0f)
	cands := NewCandidates(e, DefaultPoolSize(h.Config()), 0)
	res := BuildSF(e, BinSearch{}, cands.Addrs[0], cands.Addrs[1:], DefaultOptions())
	ok = res.OK
	if res.Set != nil {
		size = res.Set.Size()
	}
	return ok, size, uint64(res.Duration), uint64(h.Clock().Now()), h.Accesses
}

// TestHostResetEquivalence is the property the parallel engine's host
// pools rely on: a host Reset to a seed must replay, access for access,
// the behaviour of a freshly built host with that seed.
func TestHostResetEquivalence(t *testing.T) {
	cfg := resetTestConfig()
	const seed = 1234

	fresh := hierarchy.NewHost(cfg, seed)
	fOK, fSize, fDur, fNow, fAcc := buildOutcome(fresh, seed)

	// Dirty a pooled host with a different-seed trial, then reset it.
	pooled := hierarchy.NewHost(cfg, 777)
	buildOutcome(pooled, 777)
	pooled.Reset(seed)
	pOK, pSize, pDur, pNow, pAcc := buildOutcome(pooled, seed)

	if fOK != pOK || fSize != pSize || fDur != pDur || fNow != pNow || fAcc != pAcc {
		t.Fatalf("fresh host (ok=%v size=%d dur=%d now=%d acc=%d) != reset host (ok=%v size=%d dur=%d now=%d acc=%d)",
			fOK, fSize, fDur, fNow, fAcc, pOK, pSize, pDur, pNow, pAcc)
	}

	// Resetting twice in a row must be idempotent.
	pooled.Reset(seed)
	qOK, qSize, qDur, qNow, qAcc := buildOutcome(pooled, seed)
	if qOK != fOK || qSize != fSize || qDur != fDur || qNow != fNow || qAcc != fAcc {
		t.Fatal("second reset of the same host diverged")
	}
}

func TestCalibTrialsOption(t *testing.T) {
	cfg := resetTestConfig()
	h := hierarchy.NewHost(cfg, 9)
	e := NewEnvWith(h, 9, EnvOptions{CalibTrials: 16})
	if e.CalibTrials != 16 {
		t.Fatalf("CalibTrials = %d", e.CalibTrials)
	}
	if e.ThreshPrivate <= 0 || e.ThreshLLC <= e.ThreshPrivate {
		t.Fatalf("calibration with 16 trials produced bad thresholds: %v %v", e.ThreshPrivate, e.ThreshLLC)
	}
	// Default path must keep the historical 64-line calibration.
	h2 := hierarchy.NewHost(cfg, 9)
	e2 := NewEnv(h2, 9)
	if e2.CalibTrials != 0 {
		t.Fatalf("NewEnv should leave CalibTrials at 0 (default), got %d", e2.CalibTrials)
	}
	if e2.ThreshPrivate <= 0 || e2.ThreshLLC <= e2.ThreshPrivate {
		t.Fatalf("default calibration produced bad thresholds: %v %v", e2.ThreshPrivate, e2.ThreshLLC)
	}
}
