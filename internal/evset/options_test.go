package evset

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memory"
)

func TestBudgetExpiry(t *testing.T) {
	e := newQuietEnv(t, 50)
	b := &Budget{MaxBacktracks: 2}
	if b.Expired(e) {
		t.Fatal("fresh budget expired")
	}
	b.Backtracks = 3
	if !b.Expired(e) {
		t.Fatal("backtrack overrun not detected")
	}
	b = &Budget{Deadline: e.Now() + 100}
	e.Main.Idle(200)
	if !b.Expired(e) {
		t.Fatal("deadline overrun not detected")
	}
}

func TestDefaultOptionsMatchPaperProtocol(t *testing.T) {
	d := DefaultOptions()
	if d.MaxAttempts != 10 || d.MaxBacktracks != 20 {
		t.Fatalf("Table 3 protocol: %+v", d)
	}
	if d.TimeLimit != clock.FromMillis(1000) {
		t.Fatalf("Table 3 time limit: %v", d.TimeLimit)
	}
	f := FilteredOptions()
	if f.TimeLimit != clock.FromMillis(100) {
		t.Fatalf("Table 4 time limit: %v", f.TimeLimit)
	}
}

func TestBuildSFTimeLimitHonored(t *testing.T) {
	// An absurdly small time limit must fail fast instead of hanging.
	e := newQuietEnv(t, 51)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	opts := Options{MaxAttempts: 10, MaxBacktracks: 20, TimeLimit: 10}
	res := BuildSF(e, BinSearch{}, cands.Addrs[0], cands.Addrs[1:], opts)
	if res.OK {
		t.Fatal("construction cannot succeed within 10 cycles")
	}
	if res.Attempts > 2 {
		t.Fatalf("time limit not honored: %d attempts", res.Attempts)
	}
}

func TestPrunerNames(t *testing.T) {
	cases := map[string]Pruner{
		"Gt":   GroupTesting{EarlyTermination: true},
		"GtOp": GroupTesting{},
		"Ps":   PrimeScope{},
		"PsOp": PrimeScope{Recharge: true},
		"BinS": BinSearch{},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", p, p.Name(), want)
		}
	}
	if (PrimeScope{}).Parallel() {
		t.Error("Prime+Scope must report sequential TestEviction")
	}
	if !(BinSearch{}).Parallel() || !(GroupTesting{}).Parallel() {
		t.Error("BinS and Gt must report parallel TestEviction")
	}
}

func TestEvictionSetVerifiedCountsCongruence(t *testing.T) {
	e := newQuietEnv(t, 52)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	target := e.Main.SetOf(ta)
	var cong, junk []memory.VAddr
	for _, va := range cands.Addrs[1:] {
		if e.Main.SetOf(va) == target {
			cong = append(cong, va)
		} else {
			junk = append(junk, va)
		}
	}
	set := &EvictionSet{Ta: ta, Lines: append(append([]memory.VAddr{}, cong[:cfg.SFWays-1]...), junk[0])}
	if set.Verified(e.Main, cfg.SFWays) {
		t.Fatal("set with a junk member must not verify at full width")
	}
	if !set.Verified(e.Main, cfg.SFWays-1) {
		t.Fatal("set must verify at its true congruent count")
	}
}

func TestBulkResultUniqueVerified(t *testing.T) {
	e := newQuietEnv(t, 53)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	res := BuildSF(e, BinSearch{}, ta, cands.Addrs[1:], DefaultOptions())
	if !res.OK {
		t.Fatal("setup failed")
	}
	// Duplicate the same set: unique count must be 1.
	br := BulkResult{Sets: []*EvictionSet{res.Set, res.Set}}
	if got := br.UniqueVerified(e.Main, cfg.SFWays); got != 1 {
		t.Fatalf("unique verified = %d, want 1", got)
	}
}
