package evset

import (
	"repro/internal/clock"
	"repro/internal/memory"
)

// Options bound one eviction-set construction, mirroring the paper's
// experimental protocol (§4.2): at most MaxAttempts tries, at most
// MaxBacktracks recoveries per attempt, and a wall-clock (virtual) limit.
type Options struct {
	MaxAttempts   int
	MaxBacktracks int
	TimeLimit     clock.Cycles
}

// DefaultOptions returns the protocol of Table 3: 10 attempts, 20
// backtracks per attempt, 1000 ms limit.
func DefaultOptions() Options {
	return Options{MaxAttempts: 10, MaxBacktracks: 20, TimeLimit: clock.FromMillis(1000)}
}

// FilteredOptions returns the protocol of Table 4 (§5.3): with candidate
// filtering the per-set limit drops to 100 ms.
func FilteredOptions() Options {
	return Options{MaxAttempts: 10, MaxBacktracks: 20, TimeLimit: clock.FromMillis(100)}
}

// Pruner reduces a candidate list to a minimal eviction set of `ways`
// addresses congruent with Ta in the target structure. Implementations
// may reorder cands. budget tracks backtracks and deadline.
type Pruner interface {
	Name() string
	// Parallel reports whether the algorithm uses parallel TestEviction.
	Parallel() bool
	Prune(e *Env, target Target, ta memory.VAddr, cands []memory.VAddr, ways int, b *Budget) ([]memory.VAddr, error)
}

// Budget tracks an attempt's backtrack allowance and time limit.
type Budget struct {
	Deadline      clock.Cycles
	MaxBacktracks int
	Backtracks    int
}

// Expired reports whether the attempt exceeded its limits.
func (b *Budget) Expired(e *Env) bool {
	return (b.Deadline > 0 && e.Now() > b.Deadline) ||
		(b.MaxBacktracks > 0 && b.Backtracks > b.MaxBacktracks)
}

// Result reports the outcome of constructing one SF eviction set.
type Result struct {
	Set        *EvictionSet
	OK         bool
	Duration   clock.Cycles
	Attempts   int
	Backtracks int
}

// BuildSF constructs one SF eviction set for Ta following the paper's
// two-stage recipe (§4.2): prune the candidates into a minimal LLC
// eviction set (LLCWays congruent addresses), then extend it with
// SFWays−LLCWays additional congruent addresses found by SF testing. The
// construction is retried up to opts.MaxAttempts times; the attack-level
// self-test (not privileged ground truth) decides whether an attempt
// succeeded.
func BuildSF(e *Env, p Pruner, ta memory.VAddr, cands []memory.VAddr, opts Options) Result {
	cfg := e.Host().Config()
	start := e.Now()
	res := Result{}
	for attempt := 0; attempt < max(1, opts.MaxAttempts); attempt++ {
		res.Attempts = attempt + 1
		b := &Budget{MaxBacktracks: opts.MaxBacktracks}
		if opts.TimeLimit > 0 {
			b.Deadline = start + opts.TimeLimit
		}
		work := append([]memory.VAddr(nil), cands...)
		lines, err := p.Prune(e, TargetLLC, ta, work, cfg.LLCWays, b)
		res.Backtracks += b.Backtracks
		if err == nil {
			full, eerr := extendToSF(e, ta, lines, work, cfg.SFWays, b)
			if eerr == nil {
				set := &EvictionSet{Ta: ta, Lines: full}
				if set.SelfTest(e, TargetSF, 3) {
					res.Set = set
					res.OK = true
					res.Duration = e.Now() - start
					return res
				}
			}
		}
		if opts.TimeLimit > 0 && e.Now() > start+opts.TimeLimit {
			break
		}
	}
	res.Duration = e.Now() - start
	return res
}

// extendToSF finds `ways - len(lines)` additional congruent addresses so
// the LLC eviction set also covers the (wider) SF set (paper §3).
//
// LLC and SF congruence coincide (same set count, slice count and slice
// hash, §2.3), so each remaining candidate is screened with a minimal
// LLC test: swap one known-congruent line for the candidate and check
// whether the substituted set still evicts Ta from the LLC. A positive
// means the candidate is congruent. This works for any SF/LLC width gap
// — one extra way on Skylake-SP (12-way SF over an 11-way LLC slice),
// four on Ice Lake-SP (16 over 12) — and, unlike an SF-based probe,
// stays valid for same-L2-set candidates, which all filtered candidates
// are.
func extendToSF(e *Env, ta memory.VAddr, lines []memory.VAddr, cands []memory.VAddr, ways int, b *Budget) ([]memory.VAddr, error) {
	out := append([]memory.VAddr(nil), lines...)
	if len(out) >= ways {
		return out[:ways], nil
	}
	inSet := make(map[memory.VAddr]bool, len(out))
	for _, va := range out {
		inSet[va] = true
	}
	base := lines[:len(lines)-1] // len(lines) == LLCWays; leave one slot
	probe := make([]memory.VAddr, 0, len(lines))
	for _, cand := range cands {
		if len(out) >= ways {
			return out, nil
		}
		if inSet[cand] || cand == ta {
			continue
		}
		if b.Expired(e) {
			return nil, ErrExhausted
		}
		probe = probe[:0]
		probe = append(probe, base...)
		probe = append(probe, cand)
		if e.TestEviction(TargetLLC, ta, probe, len(probe), true) {
			// Confirm: guard against a background access having evicted
			// Ta during the test (false positive).
			if e.TestEviction(TargetLLC, ta, probe, len(probe), true) {
				out = append(out, cand)
				inSet[cand] = true
			}
		}
	}
	if len(out) >= ways {
		return out, nil
	}
	return nil, ErrExhausted
}

// BuildL2 constructs a minimal L2 eviction set for Ta from same-offset
// candidates, used by the candidate filtering step (§5.1).
func BuildL2(e *Env, p Pruner, ta memory.VAddr, cands []memory.VAddr, opts Options) ([]memory.VAddr, error) {
	cfg := e.Host().Config()
	start := e.Now()
	for attempt := 0; attempt < max(1, opts.MaxAttempts); attempt++ {
		b := &Budget{MaxBacktracks: opts.MaxBacktracks}
		if opts.TimeLimit > 0 {
			b.Deadline = start + opts.TimeLimit
		}
		work := append([]memory.VAddr(nil), cands...)
		lines, err := p.Prune(e, TargetL2, ta, work, cfg.L2Ways, b)
		if err == nil {
			set := &EvictionSet{Ta: ta, Lines: lines}
			if set.SelfTest(e, TargetL2, 3) {
				return lines, nil
			}
		}
		if opts.TimeLimit > 0 && e.Now() > start+opts.TimeLimit {
			break
		}
	}
	return nil, ErrExhausted
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
