package evset

import (
	"repro/internal/clock"
	"repro/internal/memory"
)

// FilterByL2 implements L2-driven candidate address filtering (§5.1).
//
// The L2 set-index bits are a subset of the LLC/SF set-index bits on
// Intel server parts (Figure 1), so two addresses that conflict in the
// LLC/SF necessarily conflict in the L2. Given an L2 eviction set for a
// reference address, each candidate is kept only if the L2 eviction set
// evicts it — i.e. the candidate is L2-congruent with the reference and
// therefore a possible LLC/SF conflict. On Skylake-SP this shrinks the
// candidate pool by U_L2 = 16x before the (much more expensive) LLC/SF
// pruning runs.
func FilterByL2(e *Env, l2set []memory.VAddr, cands []memory.VAddr) []memory.VAddr {
	inSet := make(map[memory.VAddr]bool, len(l2set))
	for _, x := range l2set {
		inSet[x] = true
	}
	out := make([]memory.VAddr, 0, len(cands)/8)
	for _, a := range cands {
		// Members of the L2 eviction set are L2-congruent by
		// construction; testing them against their own set would always
		// come back negative (a set cannot evict its own member).
		if inSet[a] || e.l2Evicts(l2set, a) {
			out = append(out, a)
		}
	}
	return out
}

// l2Evicts reports whether traversing the L2 eviction set displaces `a`
// from the attacker's L2. It is the TestEviction L2 primitive with the
// candidate as the timed target, so the same L1-bypassing pattern applies
// (an L1-hot eviction-set line would otherwise skip the L2 entirely).
func (e *Env) l2Evicts(l2set []memory.VAddr, a memory.VAddr) bool {
	return e.testEvictionL2(a, l2set, true)
}

// L2Group is a filtered candidate group: the subset of a pool that is
// L2-congruent with one reference address, plus the L2 eviction set that
// defines it. One group feeds the construction of all LLC/SF sets whose
// index bits extend this L2 set's (2 x nslices sets on Skylake-SP).
type L2Group struct {
	Ref     memory.VAddr
	L2Set   []memory.VAddr
	Members []memory.VAddr
}

// Shift derives the group at a different page offset using the δ-shift
// property (§5.3.1): if A and B are L2-congruent, so are A+δ and B+δ for
// any in-page δ, so the WholeSys scenario needs only U_L2 filtering
// executions instead of one per L2 set in the system.
func (g *L2Group) Shift(delta int64) *L2Group {
	out := &L2Group{Ref: shiftVA(g.Ref, delta)}
	out.L2Set = shiftAll(g.L2Set, delta)
	out.Members = shiftAll(g.Members, delta)
	return out
}

func shiftVA(va memory.VAddr, delta int64) memory.VAddr {
	return memory.VAddr(int64(va) + delta)
}

func shiftAll(vas []memory.VAddr, delta int64) []memory.VAddr {
	out := make([]memory.VAddr, len(vas))
	for i, va := range vas {
		out[i] = shiftVA(va, delta)
	}
	return out
}

// FilterStats reports the cost of partitioning a pool into L2 groups.
type FilterStats struct {
	Groups     int
	Duration   clock.Cycles
	L2Failures int
}

// PartitionByL2 splits a same-offset candidate pool into U_L2 groups of
// mutually L2-congruent addresses by repeatedly building an L2 eviction
// set for the first unclassified candidate and filtering the remainder
// with it (§5.3.1). Candidates whose group could not be established (L2
// eviction set construction failed) are dropped.
func PartitionByL2(e *Env, pool []memory.VAddr, opts Options) ([]*L2Group, FilterStats) {
	start := e.Now()
	var groups []*L2Group
	var st FilterStats
	remaining := append([]memory.VAddr(nil), pool...)
	uL2 := e.Host().Config().L2Uncertainty()
	for len(groups) < uL2 && len(remaining) > 0 {
		ref := remaining[0]
		remaining = remaining[1:]
		l2set, err := BuildL2(e, BinSearch{}, ref, remaining, opts)
		if err != nil {
			st.L2Failures++
			if st.L2Failures > uL2 {
				break
			}
			continue
		}
		members := FilterByL2(e, l2set, remaining)
		groups = append(groups, &L2Group{Ref: ref, L2Set: l2set, Members: members})
		// Remove classified members from the remaining pool.
		inGroup := make(map[memory.VAddr]bool, len(members))
		for _, m := range members {
			inGroup[m] = true
		}
		next := remaining[:0]
		for _, a := range remaining {
			if !inGroup[a] {
				next = append(next, a)
			}
		}
		remaining = next
	}
	st.Groups = len(groups)
	st.Duration = e.Now() - start
	return groups, st
}
