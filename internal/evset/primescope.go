package evset

import "repro/internal/memory"

// PrimeScope implements the Prime+Scope-style pruning algorithm (paper
// §2.2.1, Algorithm 2): load Ta, then sequentially access candidates; a
// one-line probe of Ta after each access reveals — with minimal latency,
// because only Ta is timed — the moment a candidate displaces Ta's SF
// entry, identifying that candidate as congruent.
//
// The search is repeated over a shrinking prefix: the first pass fills
// the target SF set with congruent candidates until Ta is evicted, which
// names the prefix's last congruent element; that element is removed from
// the prefix and the scan repeats, cascading reinsertions through the
// now-stale SF entries so each pass names the next congruent element.
// This yields O(W²·U) sequential accesses in total.
//
// Prime+Scope is inherently sequential: the scope probe must follow each
// candidate access, so it cannot use parallel TestEviction (§4.1). That
// is precisely why the paper finds it fragile under cloud noise: the long
// sequential window gives background tenants many chances to evict Ta,
// and every such eviction mislabels a non-congruent candidate.
type PrimeScope struct {
	// Recharge enables the PsOp optimization (Appendix A): after a
	// congruent address is found, candidates from the back of the pool
	// are moved near the prefix's front, replenishing congruent
	// addresses and shortening later passes.
	Recharge bool
}

// Name returns "Ps" or "PsOp".
func (p PrimeScope) Name() string {
	if p.Recharge {
		return "PsOp"
	}
	return "Ps"
}

// Parallel reports that Prime+Scope uses sequential TestEviction.
func (p PrimeScope) Parallel() bool { return false }

// rechargeChunk is how many tail candidates PsOp moves into the prefix
// after each detection.
const rechargeChunk = 32

// Prune scans candidates sequentially, probing Ta after each access.
func (p PrimeScope) Prune(e *Env, target Target, ta memory.VAddr, cands []memory.VAddr, ways int, b *Budget) ([]memory.VAddr, error) {
	found := make([]memory.VAddr, 0, ways)
	prefix := append([]memory.VAddr(nil), cands...)
	reserve := []memory.VAddr(nil) // PsOp recharge source (tail of the pool)
	if p.Recharge {
		cut := len(prefix) * 3 / 4
		reserve = prefix[cut:]
		prefix = prefix[:cut]
	}

	prime := func() { e.Main.Access(ta) }
	// scope probes Ta with a single timed access: an L1/L2 hit means Ta
	// is still tracked; anything slower means its SF entry was evicted
	// (by the last candidate — or by noise, which Prime+Scope cannot
	// distinguish and which is its weakness in the cloud).
	scope := func() bool {
		lat, _ := e.Main.TimedAccess(ta)
		return float64(lat) > e.ThreshPrivate
	}

	for len(found) < ways {
		if b.Expired(e) {
			return nil, ErrExhausted
		}
		prime()
		detected := -1
		for pos := 0; pos < len(prefix); pos++ {
			if prefix[pos] == ta {
				continue
			}
			e.Main.AccessSeq(prefix[pos : pos+1])
			if scope() {
				detected = pos
				break
			}
			if pos%256 == 255 && b.Expired(e) {
				return nil, ErrExhausted
			}
		}
		if detected < 0 {
			// The prefix no longer evicts Ta: either congruent addresses
			// ran dry or an earlier detection was a noise artifact.
			if len(found) == 0 {
				return nil, ErrExhausted
			}
			// Backtrack: return the most recently found address to the
			// prefix and try again.
			b.Backtracks++
			last := found[len(found)-1]
			found = found[:len(found)-1]
			prefix = append(prefix, last)
			continue
		}
		found = append(found, prefix[detected])
		prefix = append(prefix[:detected], prefix[detected+1:]...)
		if p.Recharge && len(reserve) > 0 {
			n := rechargeChunk
			if n > len(reserve) {
				n = len(reserve)
			}
			// Move fresh candidates near the front of the prefix so the
			// shrinking prefix keeps enough congruent addresses.
			prefix = append(reserve[:n:n], prefix...)
			reserve = reserve[n:]
		}
		if len(found) == ways {
			set := append([]memory.VAddr(nil), found...)
			if e.TestEviction(target, ta, set, len(set), true) {
				return set, nil
			}
			// At least one member is a noise artifact: drop the oldest
			// and continue scanning (counts as a backtrack).
			found = found[1:]
			b.Backtracks++
		}
	}
	return nil, ErrExhausted
}
