package evset

import (
	"repro/internal/clock"
	"repro/internal/hierarchy"
	"repro/internal/memory"
)

// BulkOptions configures bulk eviction-set construction (§2.2.3, §5.3.1).
type BulkOptions struct {
	Algo   Pruner
	PerSet Options
	// MaxSetsPerGroup caps how many eviction sets are built per L2 group
	// (0 = no cap); experiment harnesses use it for scaled-down runs.
	MaxSetsPerGroup int
	// OffsetLimit caps how many of the 64 line offsets BuildWholeSys
	// covers (0 = all); harnesses use it to sample the WholeSys workload
	// and extrapolate.
	OffsetLimit int
}

// BulkResult aggregates a bulk construction run.
type BulkResult struct {
	Sets       []*EvictionSet
	Duration   clock.Cycles
	FilterTime clock.Cycles
	Attempted  int
	Failed     int
}

// UniqueVerified counts, with privileged ground truth, how many distinct
// LLC/SF sets are covered by correctly constructed eviction sets (at
// least `need` truly congruent members). It is the numerator of the
// paper's bulk success rates.
func (r *BulkResult) UniqueVerified(a *hierarchy.Agent, need int) int {
	seen := make(map[hierarchy.SetID]bool)
	for _, s := range r.Sets {
		if s.Verified(a, need) {
			seen[a.SetOf(s.Ta)] = true
		}
	}
	return len(seen)
}

// BuildGroup constructs eviction sets for every LLC/SF set reachable from
// one filtered L2 group, following the paper's bulk procedure (§2.2.3):
// pick a target address, prune, save the set, remove its members from the
// pool; for each subsequent candidate first check whether an existing set
// already evicts it (then it maps to a covered set and is discarded),
// otherwise use it as the next target.
func BuildGroup(e *Env, g *L2Group, opt BulkOptions) BulkResult {
	start := e.Now()
	cfg := e.Host().Config()
	// LLC/SF sets per L2 group: the LLC index extends the L2 index by
	// (LLCIndexBits - L2IndexBits) bits, times the slice count.
	perGroup := (cfg.LLCSets / minInt(cfg.LLCSets, cfg.L2Sets)) * cfg.Slices
	want := perGroup
	if opt.MaxSetsPerGroup > 0 && opt.MaxSetsPerGroup < want {
		want = opt.MaxSetsPerGroup
	}

	var res BulkResult
	pool := append([]memory.VAddr(nil), g.Members...)
	for len(pool) > cfg.SFWays && len(res.Sets) < want {
		ta := pool[0]
		pool = pool[1:]
		if covered(e, ta, res.Sets) {
			continue
		}
		res.Attempted++
		r := BuildSF(e, opt.Algo, ta, pool, opt.PerSet)
		if !r.OK {
			res.Failed++
			continue
		}
		res.Sets = append(res.Sets, r.Set)
		pool = removeAll(pool, r.Set.Lines)
	}
	res.Duration = e.Now() - start
	return res
}

// covered reports whether any existing set evicts `a` (attack-level test,
// confirmed once to reject noise-induced positives).
func covered(e *Env, a memory.VAddr, sets []*EvictionSet) bool {
	for _, s := range sets {
		if e.TestEviction(TargetSF, a, s.Lines, len(s.Lines), true) &&
			e.TestEviction(TargetSF, a, s.Lines, len(s.Lines), true) {
			return true
		}
	}
	return false
}

func removeAll(pool []memory.VAddr, drop []memory.VAddr) []memory.VAddr {
	del := make(map[memory.VAddr]bool, len(drop))
	for _, d := range drop {
		del[d] = true
	}
	out := pool[:0]
	for _, a := range pool {
		if !del[a] {
			out = append(out, a)
		}
	}
	return out
}

// BuildPageOffset runs the PageOffset scenario: partition the pool into
// L2 groups, then build every LLC/SF set of every group (§5.3.1: 16
// candidate-filtering executions cover all 896 sets on a 28-slice part).
func BuildPageOffset(e *Env, cands *Candidates, opt BulkOptions) BulkResult {
	start := e.Now()
	groups, fstats := PartitionByL2(e, cands.Addrs, opt.PerSet)
	total := BulkResult{FilterTime: fstats.Duration}
	for _, g := range groups {
		r := BuildGroup(e, g, opt)
		total.Sets = append(total.Sets, r.Sets...)
		total.Attempted += r.Attempted
		total.Failed += r.Failed
	}
	total.Duration = e.Now() - start
	return total
}

// BuildWholeSys runs the WholeSys scenario: the L2 groups are built once
// at page offset 0 and re-derived at each of the 64 line offsets by the
// δ-shift property (§5.3.1), so candidate filtering runs only U_L2 times
// for the entire system.
func BuildWholeSys(e *Env, cands *Candidates, opt BulkOptions) BulkResult {
	start := e.Now()
	base := cands
	if base.Offset != 0 {
		base = cands.AtOffset(0)
	}
	groups, fstats := PartitionByL2(e, base.Addrs, opt.PerSet)
	total := BulkResult{FilterTime: fstats.Duration}
	limit := memory.LinesPerPage
	if opt.OffsetLimit > 0 && opt.OffsetLimit < limit {
		limit = opt.OffsetLimit
	}
	for off := 0; off < limit; off++ {
		delta := int64(off) * memory.LineSize
		for _, g := range groups {
			sg := g
			if delta != 0 {
				sg = g.Shift(delta)
			}
			r := BuildGroup(e, sg, opt)
			total.Sets = append(total.Sets, r.Sets...)
			total.Attempted += r.Attempted
			total.Failed += r.Failed
		}
	}
	total.Duration = e.Now() - start
	return total
}

// BuildSingle runs the SingleSet scenario with candidate filtering: one
// L2 eviction set is built for the target address, the pool is filtered
// with it, and one SF eviction set is pruned from the filtered group —
// the configuration of Table 4's SingleSet columns.
func BuildSingle(e *Env, ta memory.VAddr, cands *Candidates, opt BulkOptions) (Result, clock.Cycles) {
	start := e.Now()
	l2set, err := BuildL2(e, BinSearch{}, ta, cands.Addrs, opt.PerSet)
	if err != nil {
		return Result{Duration: e.Now() - start}, e.Now() - start
	}
	members := FilterByL2(e, l2set, cands.Addrs)
	filterTime := e.Now() - start
	r := BuildSF(e, opt.Algo, ta, members, opt.PerSet)
	r.Duration = e.Now() - start
	return r, filterTime
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
