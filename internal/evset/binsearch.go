package evset

import "repro/internal/memory"

// BinSearch is the paper's contribution for address pruning (§5.2,
// Figures 4–5): binary search for the "tipping point" τ — the smallest
// prefix length n such that the first n candidates evict Ta. The τ-th
// address is congruent; it is swapped toward the front and excluded from
// further searches, and the process repeats until `ways` congruent
// addresses occupy the list's prefix, forming a minimal eviction set.
//
// Each tipping point costs O(log N) parallel TestEviction calls of O(N)
// accesses each, so the full run is O(W·N·log N) accesses, versus group
// testing's O(W²·N) — the advantage grows with associativity (§5.3.2).
type BinSearch struct{}

// Name returns "BinS".
func (BinSearch) Name() string { return "BinS" }

// Parallel reports that BinS uses parallel TestEviction.
func (BinSearch) Parallel() bool { return true }

// Prune implements the algorithm of Figure 4 plus the backtracking
// mechanism of §5.2: a false-positive TestEviction can drive UB below the
// true tipping point; the error is detected when the converged prefix no
// longer evicts Ta, and recovery grows UB by a large stride until the
// prefix evicts Ta again, then restarts the iteration's search.
func (BinSearch) Prune(e *Env, target Target, ta memory.VAddr, cands []memory.VAddr, ways int, b *Budget) ([]memory.VAddr, error) {
	addrs := cands // reordered in place; caller passed a working copy
	n := len(addrs)
	if n < ways {
		return nil, ErrExhausted
	}
	// The pool must evict Ta at all, otherwise no tipping point exists.
	if !e.TestEviction(target, ta, addrs, n, true) {
		return nil, ErrExhausted
	}
	stride := n / 8
	if stride < ways {
		stride = ways
	}

	ub := n
	for i := 1; i <= ways; i++ {
		lb := i - 1
		// A collapsed bracket (ub == lb) means the first i-1 addresses
		// already evict Ta on their own: the true minimal eviction set is
		// SMALLER than `ways` — the regime a way-partitioned cache
		// creates, where a domain's effective associativity is a fraction
		// of the nominal one. The previous iteration's erroneous-state
		// check confirmed that prefix evicts, so return it as the
		// (smaller) minimal set; without this exit the search below would
		// spin at ub-lb == 0 until the budget expires.
		if ub <= lb {
			return append([]memory.VAddr(nil), addrs[:i-1]...), nil
		}
		for ub-lb != 1 {
			if b.Expired(e) {
				return nil, ErrExhausted
			}
			mid := (lb + ub) / 2
			if e.TestEviction(target, ta, addrs, mid, true) {
				ub = mid
			} else {
				lb = mid
			}
		}
		// Erroneous-state detection: the first UB addresses must evict Ta.
		if !e.TestEviction(target, ta, addrs, ub, true) {
			b.Backtracks++
			if b.Expired(e) {
				return nil, ErrExhausted
			}
			recovered := false
			for grow := ub + stride; ; grow += stride {
				if grow > n {
					grow = n
				}
				if e.TestEviction(target, ta, addrs, grow, true) {
					ub = grow
					recovered = true
					break
				}
				if grow == n {
					break
				}
				if b.Expired(e) {
					return nil, ErrExhausted
				}
			}
			if !recovered {
				return nil, ErrExhausted
			}
			i-- // redo this iteration with the restored upper bound
			continue
		}
		tau := ub // 1-indexed position of the i-th congruent address
		addrs[i-1], addrs[tau-1] = addrs[tau-1], addrs[i-1]
		// UB is not reset: after the swap the first UB addresses still
		// contain `ways` congruent addresses (Figure 4, line 6 comment).
	}
	out := append([]memory.VAddr(nil), addrs[:ways]...)
	return out, nil
}
