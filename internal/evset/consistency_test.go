package evset

import (
	"testing"

	"repro/internal/memory"
)

func TestDebugTestEvictionConsistency(t *testing.T) {
	e := newQuietEnv(t, 2)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	pool := cands.Addrs[1:]
	target := e.Main.SetOf(ta)
	var congruent, other []memory.VAddr
	for _, va := range pool {
		if e.Main.SetOf(va) == target {
			congruent = append(congruent, va)
		} else {
			other = append(other, va)
		}
	}
	W := cfg.LLCWays
	t.Logf("congruent=%d W=%d", len(congruent), W)

	// Exactly W congruent at the end of a big prefix: tipping-point shape.
	prefix := append(append([]memory.VAddr(nil), other[:300]...), congruent[:W]...)
	for trial := 0; trial < 10; trial++ {
		if !e.TestEviction(TargetLLC, ta, prefix, len(prefix), true) {
			t.Errorf("trial %d: W congruent in prefix should evict (LLC)", trial)
		}
	}
	// W-1 congruent: must never evict.
	prefix2 := append(append([]memory.VAddr(nil), other[:300]...), congruent[:W-1]...)
	for trial := 0; trial < 10; trial++ {
		if e.TestEviction(TargetLLC, ta, prefix2, len(prefix2), true) {
			t.Errorf("trial %d: W-1 congruent must not evict (LLC)", trial)
		}
	}
	// SF flush-based test with SFWays congruent.
	sfSet := congruent[:cfg.SFWays]
	for trial := 0; trial < 10; trial++ {
		if !e.TestEviction(TargetSF, ta, sfSet, len(sfSet), true) {
			t.Errorf("trial %d: SFWays congruent should evict (SF)", trial)
		}
	}
	sfSmall := congruent[:cfg.SFWays-1]
	for trial := 0; trial < 10; trial++ {
		if e.TestEviction(TargetSF, ta, sfSmall, len(sfSmall), true) {
			t.Errorf("trial %d: SFWays-1 congruent must not evict (SF)", trial)
		}
	}
}

func TestDebugL2Eviction(t *testing.T) {
	e := newQuietEnv(t, 9)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	pool := cands.Addrs[1:]

	// Privileged: find L2-congruent lines with ta.
	paTA := e.Main.Translate(ta)
	l2idx := func(pa memory.PAddr) uint64 { return (uint64(pa) >> 6) % uint64(cfg.L2Sets) }
	var cong []memory.VAddr
	for _, va := range pool {
		if l2idx(e.Main.Translate(va)) == l2idx(paTA) {
			cong = append(cong, va)
		}
	}
	t.Logf("l2-congruent=%d L2Ways=%d", len(cong), cfg.L2Ways)
	if len(cong) < cfg.L2Ways {
		t.Skip("not enough")
	}
	for trial := 0; trial < 10; trial++ {
		if !e.TestEviction(TargetL2, ta, cong, cfg.L2Ways, true) {
			t.Errorf("trial %d: L2Ways congruent should evict from L2", trial)
		}
		if e.TestEviction(TargetL2, ta, cong, cfg.L2Ways-1, true) {
			t.Errorf("trial %d: L2Ways-1 congruent must not evict from L2", trial)
		}
	}
}
