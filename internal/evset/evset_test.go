package evset

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/memory"
)

func newQuietEnv(t testing.TB, seed uint64) *Env {
	t.Helper()
	cfg := hierarchy.Scaled(4)
	cfg.NoiseRate = 0
	h := hierarchy.NewHost(cfg, seed)
	return NewEnv(h, seed^0xabcdef)
}

func newCloudEnv(t testing.TB, seed uint64) *Env {
	t.Helper()
	cfg := hierarchy.Scaled(4).WithCloudNoise()
	h := hierarchy.NewHost(cfg, seed)
	return NewEnv(h, seed^0xabcdef)
}

func TestCalibrationOrdersThresholds(t *testing.T) {
	e := newQuietEnv(t, 1)
	if e.ThreshPrivate <= 0 || e.ThreshLLC <= e.ThreshPrivate {
		t.Fatalf("thresholds not ordered: private=%.1f llc=%.1f", e.ThreshPrivate, e.ThreshLLC)
	}
}

func TestTestEvictionLLCGroundTruth(t *testing.T) {
	e := newQuietEnv(t, 2)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	pool := cands.Addrs[1:]

	// Privileged split of the pool into congruent / non-congruent.
	target := e.Main.SetOf(ta)
	var congruent, other []memory.VAddr
	for _, va := range pool {
		if e.Main.SetOf(va) == target {
			congruent = append(congruent, va)
		} else if len(other) < 4*cfg.LLCWays {
			other = append(other, va)
		}
	}
	if len(congruent) < cfg.LLCWays {
		t.Fatalf("pool holds only %d congruent lines, need %d", len(congruent), cfg.LLCWays)
	}
	if !e.TestEviction(TargetLLC, ta, congruent, cfg.LLCWays, true) {
		t.Error("LLCWays congruent lines should evict ta from the LLC")
	}
	if e.TestEviction(TargetLLC, ta, other, len(other), true) {
		t.Error("non-congruent lines must not evict ta from the LLC")
	}
	if !e.TestEviction(TargetSF, ta, congruent, cfg.SFWays, true) {
		t.Error("SFWays congruent lines should evict ta's SF entry")
	}
}

func buildOne(t *testing.T, e *Env, p Pruner) Result {
	t.Helper()
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	res := BuildSF(e, p, ta, cands.Addrs[1:], DefaultOptions())
	return res
}

func TestBuildSFAllAlgorithms(t *testing.T) {
	algos := []Pruner{BinSearch{}, GroupTesting{}, GroupTesting{EarlyTermination: true}, PrimeScope{}, PrimeScope{Recharge: true}}
	for i, p := range algos {
		p := p
		i := i
		t.Run(p.Name(), func(t *testing.T) {
			e := newQuietEnv(t, 100+uint64(i))
			res := buildOne(t, e, p)
			if !res.OK {
				t.Fatalf("%s failed after %d attempts (%d backtracks)", p.Name(), res.Attempts, res.Backtracks)
			}
			cfg := e.Host().Config()
			if res.Set.Size() != cfg.SFWays {
				t.Fatalf("set size = %d, want %d (minimal)", res.Set.Size(), cfg.SFWays)
			}
			if !res.Set.Verified(e.Main, cfg.SFWays) {
				t.Fatalf("%s produced a set that is not truly congruent", p.Name())
			}
		})
	}
}

func TestBuildSFUnderCloudNoiseBinS(t *testing.T) {
	ok := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		e := newCloudEnv(t, 200+uint64(i))
		cfg := e.Host().Config()
		cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
		ta := cands.Addrs[0]
		l2set, err := BuildL2(e, BinSearch{}, ta, cands.Addrs[1:], DefaultOptions())
		if err != nil {
			continue
		}
		members := FilterByL2(e, l2set, cands.Addrs[1:])
		res := BuildSF(e, BinSearch{}, ta, members, FilteredOptions())
		if res.OK && res.Set.Verified(e.Main, cfg.SFWays) {
			ok++
		}
	}
	if ok < trials-1 {
		t.Fatalf("BinS+filter succeeded only %d/%d times under cloud noise", ok, trials)
	}
}

func TestFilterByL2KeepsCongruent(t *testing.T) {
	e := newQuietEnv(t, 3)
	cfg := e.Host().Config()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	l2set, err := BuildL2(e, BinSearch{}, ta, cands.Addrs[1:], DefaultOptions())
	if err != nil {
		t.Fatalf("BuildL2: %v", err)
	}
	members := FilterByL2(e, l2set, cands.Addrs[1:])

	// Every line congruent with ta in the LLC must survive the filter
	// (the filter must not lose LLC-congruent addresses), and the pool
	// must shrink by roughly U_L2.
	target := e.Main.SetOf(ta)
	kept := make(map[memory.VAddr]bool, len(members))
	for _, m := range members {
		kept[m] = true
	}
	lost := 0
	for _, va := range cands.Addrs[1:] {
		if e.Main.SetOf(va) == target && !kept[va] {
			lost++
		}
	}
	if lost > 1 {
		t.Errorf("filter lost %d LLC-congruent candidates", lost)
	}
	maxKeep := 2 * len(cands.Addrs) / cfg.L2Uncertainty()
	if len(members) > maxKeep {
		t.Errorf("filter kept %d of %d candidates, want <= %d", len(members), len(cands.Addrs), maxKeep)
	}
}

func TestCandidatesAtOffsetPreservesPages(t *testing.T) {
	e := newQuietEnv(t, 4)
	c := NewCandidates(e, 64, 0)
	shifted := c.AtOffset(0x40)
	for i := range c.Addrs {
		if shifted.Addrs[i] != c.Addrs[i]+0x40 {
			t.Fatalf("addr %d: %#x -> %#x", i, c.Addrs[i], shifted.Addrs[i])
		}
		if shifted.Addrs[i].PageNumber() != c.Addrs[i].PageNumber() {
			t.Fatal("shift crossed a page boundary")
		}
	}
}
