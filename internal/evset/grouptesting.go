package evset

import "repro/internal/memory"

// GroupTesting implements the group-testing reduction of Vila et al.
// (paper §2.2.1, Algorithm 1) with the backtracking mechanism of [90].
//
// The candidate list is split into G = ways+1 groups; a group is
// discarded when the remaining addresses still evict Ta. The baseline
// (Gt) re-splits as soon as one group is removed ("early termination");
// the optimized variant (GtOp, Appendix A) keeps scanning the remaining
// groups of the current split before re-splitting, which the paper found
// faster and more reliable on Skylake-SP because larger groups are pruned
// per pass.
type GroupTesting struct {
	// EarlyTermination selects the baseline Gt behaviour; false is GtOp.
	EarlyTermination bool
}

// Name returns "Gt" or "GtOp".
func (g GroupTesting) Name() string {
	if g.EarlyTermination {
		return "Gt"
	}
	return "GtOp"
}

// Parallel reports that group testing uses parallel TestEviction (§4.1).
func (g GroupTesting) Parallel() bool { return true }

// Prune reduces cands to a minimal eviction set of `ways` addresses.
func (g GroupTesting) Prune(e *Env, target Target, ta memory.VAddr, cands []memory.VAddr, ways int, b *Budget) ([]memory.VAddr, error) {
	list := cands
	// Backtrack stack: groups that were discarded, most recent last.
	var removed [][]memory.VAddr

	for len(list) > ways {
		if b.Expired(e) {
			return nil, ErrExhausted
		}
		groups := split(list, ways+1)
		progress := false
		for gi := 0; gi < len(groups) && len(list) > ways; gi++ {
			if b.Expired(e) {
				return nil, ErrExhausted
			}
			rest := without(list, groups, gi)
			if e.TestEviction(target, ta, rest, len(rest), true) {
				removed = append(removed, groups[gi])
				list = rest
				progress = true
				if g.EarlyTermination {
					break
				}
				// GtOp: continue with the reduced list; the remaining
				// groups still partition it, and the group that shifted
				// into position gi must be examined next.
				groups = splitKeepTail(groups, gi)
				gi--
			}
		}
		if !progress {
			// Either the list no longer evicts Ta (an earlier removal was
			// a false positive caused by noise) or no group is removable.
			if len(removed) == 0 {
				return nil, ErrExhausted
			}
			// Backtrack: restore the most recently discarded group.
			last := removed[len(removed)-1]
			removed = removed[:len(removed)-1]
			list = append(list, last...)
			b.Backtracks++
		}
	}
	if len(list) < ways {
		return nil, ErrExhausted
	}
	// Final check: the reduced list must still evict Ta.
	if !e.TestEviction(target, ta, list, len(list), true) {
		return nil, ErrExhausted
	}
	return append([]memory.VAddr(nil), list...), nil
}

// split partitions list into g groups of nearly equal size.
func split(list []memory.VAddr, g int) [][]memory.VAddr {
	if g > len(list) {
		g = len(list)
	}
	groups := make([][]memory.VAddr, 0, g)
	n := len(list)
	for i := 0; i < g; i++ {
		lo := i * n / g
		hi := (i + 1) * n / g
		groups = append(groups, list[lo:hi])
	}
	return groups
}

// without returns list minus groups[gi] (fresh slice).
func without(list []memory.VAddr, groups [][]memory.VAddr, gi int) []memory.VAddr {
	out := make([]memory.VAddr, 0, len(list)-len(groups[gi]))
	for j, grp := range groups {
		if j == gi {
			continue
		}
		out = append(out, grp...)
	}
	return out
}

// splitKeepTail drops groups[gi] from the slice of groups so the GtOp
// scan continues over the remaining groups.
func splitKeepTail(groups [][]memory.VAddr, gi int) [][]memory.VAddr {
	out := make([][]memory.VAddr, 0, len(groups)-1)
	out = append(out, groups[:gi]...)
	out = append(out, groups[gi+1:]...)
	return out
}
