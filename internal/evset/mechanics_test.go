package evset

import (
	"testing"

	"repro/internal/memory"
)

func TestDebugLLCEvictionMechanics(t *testing.T) {
	e := newQuietEnv(t, 2)
	cfg := e.Host().Config()
	h := e.Host()
	cands := NewCandidates(e, DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	pool := cands.Addrs[1:]
	t.Logf("thresholds: private=%.1f llc=%.1f", e.ThreshPrivate, e.ThreshLLC)

	target := e.Main.SetOf(ta)
	var congruent, other []memory.VAddr
	for _, va := range pool {
		if e.Main.SetOf(va) == target {
			congruent = append(congruent, va)
		} else if len(other) < 4*cfg.LLCWays {
			other = append(other, va)
		}
	}
	t.Logf("congruent=%d LLCWays=%d", len(congruent), cfg.LLCWays)

	e.Main.LoadShared(e.Helper, ta)
	pa := e.Main.Translate(ta)
	t.Logf("after LoadShared: inLLC=%v inSF=%v inPriv0=%v inPriv1=%v",
		h.InLLC(pa), h.InSF(pa), h.InPrivate(0, pa), h.InPrivate(1, pa))
	e.Main.EvictPrivate(ta)
	t.Logf("after EvictPrivate: inLLC=%v inPriv0=%v", h.InLLC(pa), h.InPrivate(0, pa))

	e.Main.LoadSharedAll(e.Helper, congruent[:cfg.LLCWays])
	t.Logf("after traversal of %d congruent: inLLC=%v occupancy=%d",
		cfg.LLCWays, h.InLLC(pa), h.LLCOccupancy(target))
	lat, lvl := e.Main.TimedAccess(ta)
	t.Logf("timed access: lat=%d lvl=%v", lat, lvl)
}
