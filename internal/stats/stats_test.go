package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStddevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5) {
		t.Fatalf("mean = %v", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s)
	}
	if md := Median(xs); !almost(md, 4.5) {
		t.Fatalf("median = %v", md)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty summaries must be zero")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max must be infinities")
	}
}

func TestPercentileOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p25 := Percentile(xs, 25)
		p50 := Percentile(xs, 50)
		p75 := Percentile(xs, 75)
		return p25 <= p50 && p50 <= p75 &&
			Percentile(xs, 0) == Min(xs) && Percentile(xs, 100) == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 10}
	c := NewCDF(xs)
	if v := c.At(0); v != 0 {
		t.Fatalf("At(0) = %v", v)
	}
	if v := c.At(2); !almost(v, 0.6) {
		t.Fatalf("At(2) = %v", v)
	}
	if v := c.At(10); !almost(v, 1) {
		t.Fatalf("At(10) = %v", v)
	}
	prev := -1.0
	for x := -1.0; x < 12; x += 0.25 {
		v := c.At(x)
		if v < prev {
			t.Fatalf("CDF decreased at %v", x)
		}
		prev = v
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	if q := c.Quantile(0.5); math.Abs(q-50) > 1 {
		t.Fatalf("quantile(0.5) = %v", q)
	}
	if q := c.Quantile(0); q != 0 {
		t.Fatalf("quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 100 {
		t.Fatalf("quantile(1) = %v", q)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{-1, 0, 0.5, 5, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total=%d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts=%v", h.Counts)
	}
	if c := h.BinCenter(0); !almost(c, 0.5) {
		t.Fatalf("bin center = %v", c)
	}
	if m := h.Mode(); !almost(m, 0.5) {
		t.Fatalf("mode = %v", m)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Fatal("empty counter rate must be 0")
	}
	c.Record(true)
	c.Record(true)
	c.Record(false)
	if !almost(c.Rate(), 2.0/3) {
		t.Fatalf("rate = %v", c.Rate())
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
	}
	px, py := NewCDF(xs).Points(10)
	if len(px) != 10 || len(py) != 10 {
		t.Fatalf("points: %d/%d", len(px), len(py))
	}
	for i := 1; i < len(px); i++ {
		if px[i] < px[i-1] || py[i] < py[i-1] {
			t.Fatal("points not monotone")
		}
	}
}

func TestWilson(t *testing.T) {
	// Known value: 8/10 at z=1.96 gives roughly [0.490, 0.943].
	lo, hi := Wilson(8, 10, 1.96)
	if lo < 0.47 || lo > 0.51 || hi < 0.92 || hi > 0.96 {
		t.Fatalf("Wilson(8,10) = [%.4f, %.4f], want ~[0.490, 0.943]", lo, hi)
	}
	// Edge cases stay inside [0,1] and behave at the boundaries.
	if lo, hi = Wilson(0, 10, 1.96); lo != 0 || hi <= 0 || hi >= 1 {
		t.Fatalf("Wilson(0,10) = [%.4f, %.4f]", lo, hi)
	}
	if lo, hi = Wilson(10, 10, 1.96); hi != 1 || lo <= 0 || lo >= 1 {
		t.Fatalf("Wilson(10,10) = [%.4f, %.4f]", lo, hi)
	}
	if lo, hi = Wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%.4f, %.4f], want [0, 1]", lo, hi)
	}
	// The interval tightens as n grows at fixed p.
	lo10, hi10 := Wilson(5, 10, 1.96)
	lo100, hi100 := Wilson(50, 100, 1.96)
	if hi100-lo100 >= hi10-lo10 {
		t.Fatalf("interval did not tighten: n=10 width %.4f, n=100 width %.4f", hi10-lo10, hi100-lo100)
	}
}
