// Package stats provides the small statistical toolkit used by the
// experiment harnesses: summary statistics (mean/stddev/median),
// percentiles, histograms, empirical CDFs, success-rate counters and
// Wilson score intervals (the 95% bounds the scenario reports put on
// every success rate). Everything is deterministic and allocation-
// conscious, so aggregation never perturbs a report's byte identity.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It copies xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the four statistics the paper reports for timings.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Median: Median(xs),
	}
}

// String formats the summary as "mean ± stddev (median m, n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.3g (median %.3g, n=%d)", s.Mean, s.Stddev, s.Median, s.N)
}

// CDF is an empirical cumulative distribution function over samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the samples (copied).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := q * float64(len(c.sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[len(c.sorted)-1]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting the CDF as a series.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		xs[i] = c.sorted[idx]
		ps[i] = float64(idx+1) / float64(len(c.sorted))
	}
	return xs, ps
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int
	Over    int
	binSize float64
}

// NewHistogram creates a histogram over [lo, hi) with the given number of
// bins. It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binSize: (hi - lo) / float64(bins)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binSize)
		if i >= len(h.Counts) { // guard against float edge cases
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the center x of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binSize
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return h.BinCenter(best)
}

// Wilson returns the Wilson score confidence interval for a binomial
// proportion: k successes out of n trials at normal quantile z (1.96 for
// 95%). Unlike the normal approximation it stays inside [0, 1] and
// behaves sensibly at k = 0 and k = n, which is what the scenario
// harness needs for success rates estimated from a handful of whole-
// pipeline trials. n = 0 returns the vacuous interval [0, 1].
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Counter tracks success/failure outcomes.
type Counter struct {
	Success int
	Failure int
}

// Record adds one outcome.
func (c *Counter) Record(ok bool) {
	if ok {
		c.Success++
	} else {
		c.Failure++
	}
}

// Rate returns the success rate, or 0 when empty.
func (c *Counter) Rate() float64 {
	n := c.Success + c.Failure
	if n == 0 {
		return 0
	}
	return float64(c.Success) / float64(n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
