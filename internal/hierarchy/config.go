// Package hierarchy simulates the multi-core cache hierarchy of Intel
// server CPUs with a non-inclusive, sliced LLC and a Snoop Filter (SF),
// following the microarchitecture described in the paper (§2.3, Table 2):
//
//   - Private L1 and L2 per core.
//   - A sliced, non-inclusive LLC; physical line addresses are hashed to a
//     slice by a complex hash (internal/slicehash).
//   - A sliced Snoop Filter with the same set mapping as the LLC. Lines in
//     Exclusive/Modified state in a private cache are tracked by the SF
//     ("private" lines); lines in Shared state are resident in (and
//     tracked by) the LLC ("shared" lines).
//   - Evicting an SF entry back-invalidates the private copies; the
//     evicted line may be inserted into the LLC according to a reuse
//     predictor. L2 victims may likewise be inserted into the LLC.
//
// Timing is modelled in virtual cycles on a shared clock (internal/clock):
// every access advances the clock by a jittered latency, and overlapped
// ("parallel") accesses are charged an MLP-aware cost instead of the sum
// of their latencies. Background tenant interference is injected lazily
// per LLC/SF set by the workload models of internal/tenant — a flat
// Poisson process by default (§4.3 / Figure 2 of the paper), or
// structured burst/stream/hotset/churn tenants via Config.Tenants.
// Optionally one LLC countermeasure model (internal/defense) hooks the
// shared structures via Config.Defense: way-partitioned allocation,
// keyed/per-domain set-index derivation, and quantized or jittered
// attacker-visible timing.
package hierarchy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/defense"
	"repro/internal/memory"
	"repro/internal/tenant"
)

// Level identifies where an access was served from.
type Level int

// Access service levels, fastest to slowest.
const (
	L1Hit Level = iota
	L2Hit
	LLCHit
	SFForward // cache-to-cache transfer via a Snoop Filter hit
	DRAM
)

// String returns the level's conventional name.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	case LLCHit:
		return "LLC"
	case SFForward:
		return "SF-fwd"
	case DRAM:
		return "DRAM"
	default:
		return "unknown"
	}
}

// Latencies holds the timing model parameters in cycles. Base latencies
// are jittered by a Gaussian with the given relative sigma. Chain values
// are the extra cost of a dependent (pointer-chase) access at each level,
// dominated by page walks for DRAM-sized working sets; Drain values are
// the per-access pipeline cost of an additional overlapped access beyond
// the first (memory-level parallelism); Issue is the front-end cost of
// issuing one overlapped access.
type Latencies struct {
	Base       [5]float64 // indexed by Level
	Chain      [5]float64
	Drain      [5]float64
	Issue      float64
	JitterFrac float64 // sigma as a fraction of the base latency
	Measure    float64 // fixed rdtsc-style measurement overhead per timed op
	Flush      float64 // cost of one clflush
}

// DefaultLatencies returns the timing model calibrated to land in the
// same regime as the paper's 2 GHz Skylake-SP hosts: sequential DRAM
// pointer chases cost ~780 cycles/access while fully overlapped misses
// cost ~27 cycles/access, matching Figure 3's order-of-magnitude gap and
// the absolute TestEviction durations reported in §4.3.
func DefaultLatencies() Latencies {
	return Latencies{
		Base:       [5]float64{4, 14, 44, 70, 280},
		Chain:      [5]float64{2, 6, 12, 15, 500},
		Drain:      [5]float64{1, 3, 10, 12, 25},
		Issue:      2,
		JitterFrac: 0.06,
		Measure:    90,
		Flush:      60,
	}
}

// Config describes one simulated host's cache hierarchy.
type Config struct {
	Name string

	Cores int

	L1Sets, L1Ways int
	L2Sets, L2Ways int
	// Per-slice LLC and SF geometry. The SF shares the LLC's set count,
	// slice count and slice hash (paper §2.3).
	LLCSets, LLCWays int
	SFWays           int
	Slices           int

	L2Policy  cache.PolicyKind
	LLCPolicy cache.PolicyKind
	SFPolicy  cache.PolicyKind

	Lat Latencies

	// ReuseInsertProb is the probability that the reuse predictor inserts
	// an SF or L2 victim into the LLC (paper §2.3 cites a reuse
	// predictor [40, 82]).
	ReuseInsertProb float64

	// NoiseRate is the background tenant access rate per LLC/SF set in
	// accesses per cycle (paper §4.3: 11.5/ms on Cloud Run, 0.29/ms on a
	// quiescent local machine, at 2 GHz). It is the legacy flat-Poisson
	// knob, kept as a shim: when Tenants is empty and NoiseRate > 0 the
	// host builds one "poisson" tenant from it (byte-identical to the
	// pre-tenant noise path); when Tenants is non-empty both noise knobs
	// are ignored.
	NoiseRate float64
	// NoiseLLCProb is the probability a background access also installs a
	// line in the LLC set (tenant shared data / L2 victims), in addition
	// to its SF allocation. Part of the legacy shim, like NoiseRate.
	NoiseLLCProb float64

	// Tenants declares structured background tenants (internal/tenant):
	// burst phases, streaming scans, hot-set collisions, serverless
	// churn, or several at once. When non-empty it replaces the flat
	// NoiseRate/NoiseLLCProb process entirely. Note that a non-empty
	// Tenants makes the Config non-comparable (callers that need a map
	// key use Key).
	Tenants []tenant.Spec

	// Defense declares an LLC countermeasure model (internal/defense):
	// way-partitioning between security domains, keyed index
	// randomization or per-domain skew, or quantized probe feedback.
	// Nil (the default) is the undefended host, bit-identical to the
	// pre-defense code paths. Callers that need a map key use Key,
	// which canonicalizes the pointer by value.
	Defense *defense.Spec

	// MemoryBytes sizes the host's physical memory.
	MemoryBytes uint64

	// TimerJitter is the Gaussian sigma (cycles) on timestamp reads.
	TimerJitter float64
}

// Uncontrollable set-index geometry (paper §2.2.1).

// L2IndexBits returns the number of L2 set-index bits.
func (c Config) L2IndexBits() int { return log2(c.L2Sets) }

// LLCIndexBits returns the number of per-slice LLC set-index bits.
func (c Config) LLCIndexBits() int { return log2(c.LLCSets) }

// L2Uncertainty returns U_L2 = 2^(uncontrollable L2 index bits): the
// number of L2 sets a fixed page offset can map to.
func (c Config) L2Uncertainty() int {
	uc := c.L2IndexBits() - (memory.PageBits - memory.LineBits)
	if uc < 0 {
		uc = 0
	}
	return 1 << uc
}

// LLCUncertainty returns U_LLC = 2^(uncontrollable LLC index bits) x
// nslices: the number of LLC/SF sets a fixed page offset can map to.
func (c Config) LLCUncertainty() int {
	uc := c.LLCIndexBits() - (memory.PageBits - memory.LineBits)
	if uc < 0 {
		uc = 0
	}
	return (1 << uc) * c.Slices
}

// SetsAtPageOffset returns the number of distinct LLC/SF sets reachable
// from a single page offset — the PageOffset scenario's set count.
func (c Config) SetsAtPageOffset() int { return c.LLCUncertainty() }

// TotalLLCSets returns the system-wide number of LLC/SF sets — the
// WholeSys scenario's set count (SetsAtPageOffset x 64 line offsets).
func (c Config) TotalLLCSets() int { return c.LLCSets * c.Slices }

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	if 1<<b != n {
		panic("hierarchy: geometry must be a power of two")
	}
	return b
}

// Noise rate presets, converted from the paper's measured per-millisecond
// rates at the 2 GHz host frequency.
const (
	// cyclesPerMs aliases tenant.CyclesPerMs rather than restating the
	// literal: the poisson shim's byte-identity requires WithNoiseRate
	// and tenant.Spec.Build to divide by the exact same float.
	cyclesPerMs = tenant.CyclesPerMs
	// CloudRunNoiseRate is 11.5 accesses/ms/set (paper §4.3).
	CloudRunNoiseRate = 11.5 / cyclesPerMs
	// QuiescentNoiseRate is 0.29 accesses/ms/set (paper §4.3).
	QuiescentNoiseRate = 0.29 / cyclesPerMs
)

// SkylakeSP returns the hierarchy of an Intel Skylake-SP server part
// (Table 2 in the paper) with the given number of LLC/SF slices: 28 for
// the Cloud Run Xeon Platinum 8173M, 22 for the local Xeon Gold 6152.
func SkylakeSP(slices int) Config {
	return Config{
		Name:   "Skylake-SP",
		Cores:  slices,
		L1Sets: 64, L1Ways: 8,
		L2Sets: 1024, L2Ways: 16,
		LLCSets: 2048, LLCWays: 11,
		SFWays: 12,
		Slices: slices,
		// All levels default to age-ordered (LRU) replacement so that a
		// single traversal of W congruent lines reliably evicts — the
		// regime the paper's single-pass TestEviction assumes (real
		// attack code defeats PLRU/QLRU approximations with repeated
		// traversal patterns, which the batch cost model subsumes). The
		// scan-resistant Tree-PLRU, QLRU and SRRIP models remain
		// available for the replacement-policy ablation (§6.1 claims
		// Parallel Probing is policy-agnostic).
		L2Policy:        cache.TrueLRU,
		LLCPolicy:       cache.TrueLRU,
		SFPolicy:        cache.TrueLRU,
		Lat:             DefaultLatencies(),
		ReuseInsertProb: 0.3,
		NoiseRate:       QuiescentNoiseRate,
		NoiseLLCProb:    0.5,
		MemoryBytes:     8 << 30,
		TimerJitter:     2,
	}
}

// IceLakeSP returns the hierarchy of an Ice Lake-SP part (§5.3.2): 20-way
// L2 and 16-way SF; the local machine used in the paper (Xeon Gold 5320)
// has 26 slices.
func IceLakeSP(slices int) Config {
	c := SkylakeSP(slices)
	c.Name = "Ice Lake-SP"
	c.L2Sets, c.L2Ways = 1024, 20
	c.LLCSets, c.LLCWays = 2048, 12
	c.SFWays = 16
	return c
}

// Scaled returns a reduced geometry used by unit tests and fast benches:
// the same structure and code paths as Skylake-SP, with fewer slices and
// smaller slice arrays so whole-system sweeps stay cheap.
func Scaled(slices int) Config {
	c := SkylakeSP(slices)
	c.Name = "Scaled-SKX"
	c.Cores = maxInt(4, slices)
	// The L2 associativity must exceed the SF's by a comfortable margin,
	// as on real parts (16 vs 12): the SF eviction test keeps Ta plus a
	// whole SF eviction set resident in one L2 set.
	c.L2Sets, c.L2Ways = 256, 12
	c.LLCSets, c.LLCWays = 512, 7
	c.SFWays = 8
	c.MemoryBytes = 1 << 30
	return c
}

// WithCloudNoise returns a copy of the config with Cloud Run noise.
func (c Config) WithCloudNoise() Config {
	c.NoiseRate = CloudRunNoiseRate
	return c
}

// WithQuiescentNoise returns a copy with quiescent-local noise.
func (c Config) WithQuiescentNoise() Config {
	c.NoiseRate = QuiescentNoiseRate
	return c
}

// WithNoiseRate returns a copy whose background workload exerts the
// given mean pressure, in accesses per millisecond per set (the
// paper's unit). On a legacy-knob config it sets NoiseRate; when
// structured Tenants are present it instead rescales every tenant's
// Rate so their TOTAL mean matches perMs while the mix between them is
// preserved — so noise-rate axes (the abl-noise runner, construction
// equivalent-noise scaling) keep sweeping intensity under a -tenants
// override instead of becoming silently inert.
func (c Config) WithNoiseRate(perMs float64) Config {
	c.NoiseRate = perMs / cyclesPerMs
	if len(c.Tenants) == 0 {
		return c
	}
	total := 0.0
	for _, sp := range c.Tenants {
		total += sp.Rate
	}
	scaled := append([]tenant.Spec(nil), c.Tenants...)
	for i := range scaled {
		if total > 0 {
			scaled[i].Rate *= perMs / total
		} else {
			// All-zero declared rates: split the requested total evenly.
			scaled[i].Rate = perMs / float64(len(scaled))
		}
	}
	c.Tenants = scaled
	return c
}

// WithTenants returns a copy whose background workload is the given
// structured tenant specs (replacing the flat NoiseRate/NoiseLLCProb
// process). The specs slice is copied, so later mutation of the
// arguments cannot alias into the config.
func (c Config) WithTenants(specs ...tenant.Spec) Config {
	c.Tenants = append([]tenant.Spec(nil), specs...)
	return c
}

// WithDefense returns a copy defended by the given countermeasure spec
// (replacing any previous defense). The spec is copied, so later
// mutation of the argument cannot alias into the config.
func (c Config) WithDefense(sp defense.Spec) Config {
	c.Defense = &sp
	return c
}

// Validate rejects configurations whose noise, tenant or defense
// parameters are out of range — a negative rate, a probability outside
// [0, 1], a malformed tenant spec, or a way partition that leaves a
// shared structure without ways on one side — before they can silently
// produce a nonsense host. Geometry errors (non-power-of-two set
// counts) still panic in the index helpers, as before. NewHost calls
// Validate and panics on error; callers that assemble configs from
// external input (sweep specs, CLI flags) call it directly for a
// graceful error.
func (c Config) Validate() error {
	switch {
	case c.NoiseRate < 0:
		return fmt.Errorf("hierarchy: negative NoiseRate %g", c.NoiseRate)
	case c.NoiseLLCProb < 0 || c.NoiseLLCProb > 1:
		return fmt.Errorf("hierarchy: NoiseLLCProb %g outside [0, 1]", c.NoiseLLCProb)
	case c.ReuseInsertProb < 0 || c.ReuseInsertProb > 1:
		return fmt.Errorf("hierarchy: ReuseInsertProb %g outside [0, 1]", c.ReuseInsertProb)
	case c.TimerJitter < 0:
		return fmt.Errorf("hierarchy: negative TimerJitter %g", c.TimerJitter)
	case c.Lat.JitterFrac < 0:
		return fmt.Errorf("hierarchy: negative latency JitterFrac %g", c.Lat.JitterFrac)
	}
	for i, sp := range c.Tenants {
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("hierarchy: tenant %d: %w", i, err)
		}
	}
	if c.Defense != nil {
		if err := c.Defense.Validate(); err != nil {
			return fmt.Errorf("hierarchy: %w", err)
		}
		// A way partition must leave at least one way per region in BOTH
		// partitioned structures (the LLC slice is one way narrower than
		// the SF on every shipped geometry, so it binds first).
		if pw := c.Defense.PartitionWays(); pw > 0 {
			if pw >= c.LLCWays {
				return fmt.Errorf("hierarchy: defense partition ways %d must stay below LLCWays %d", pw, c.LLCWays)
			}
			if pw >= c.SFWays {
				return fmt.Errorf("hierarchy: defense partition ways %d must stay below SFWays %d", pw, c.SFWays)
			}
		}
	}
	return nil
}

// Key returns a deterministic string identity for the config, built
// from field VALUES only. Config carries a slice field (Tenants) and a
// pointer field (Defense), so it cannot itself be a map key; the trial
// engine's host pools key on this instead.
//
// The %+v rendering covers every present AND future field
// automatically (slices print their elements, and tenant.Spec's
// Stringer renders each spec canonically) — EXCEPT pointer fields,
// which %+v would print by address, making every equal config look
// distinct and silently defeating host-pool reuse. Defense is
// therefore nil'ed out of the rendered copy and appended through its
// spec's canonical String form; any future pointer field must get the
// same treatment.
func (c Config) Key() string {
	v := c
	v.Defense = nil
	if c.Defense == nil {
		return fmt.Sprintf("%+v", v)
	}
	return fmt.Sprintf("%+v|defense=%s", v, c.Defense.String())
}

// WithSharedPolicy returns a copy whose shared structures (LLC and SF)
// use the given replacement policy. The private L2 keeps its configured
// policy: the paper's §6.1 robustness claim concerns the shared levels,
// whose policy a cross-tenant attacker cannot know.
func (c Config) WithSharedPolicy(k cache.PolicyKind) Config {
	c.LLCPolicy = k
	c.SFPolicy = k
	return c
}

// WithSFAssociativity returns a copy with the given Snoop Filter
// associativity; the LLC slice associativity follows one below it,
// mirroring the 12/11 (Skylake-SP) and 8/7 (Scaled) relationships of the
// shipped geometries. It panics when the requested associativity leaves
// no room under the L2's: the SF eviction test keeps Ta plus a whole SF
// eviction set resident in one L2 set, so SFWays must stay comfortably
// below L2Ways (as on real parts).
func (c Config) WithSFAssociativity(sfWays int) Config {
	if sfWays < 2 {
		panic(fmt.Sprintf("hierarchy: SF associativity %d below minimum 2", sfWays))
	}
	if sfWays >= c.L2Ways {
		panic(fmt.Sprintf("hierarchy: SF associativity %d must stay below L2Ways %d", sfWays, c.L2Ways))
	}
	c.SFWays = sfWays
	c.LLCWays = sfWays - 1
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
