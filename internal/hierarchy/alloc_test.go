package hierarchy

import (
	"testing"

	"repro/internal/defense"
	"repro/internal/memory"
)

// TestRecycledAccessAllocs pins the steady-state allocation count of the
// simulation hot path at zero: once a host has been built and recycled
// with Reset (the host-pool trial contract), a demand access must not
// touch the heap — not through the flat cache arrays, not through the
// event queue, not through the lazy background-tenant sync, and not
// through any defense hook. A drift here is what the benchmark gate in
// CI catches only indirectly; this test names the culprit directly.
func TestRecycledAccessAllocs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"quiet", quietScaled()},
		{"cloud-noise", Scaled(4).WithCloudNoise()},
		{"defended-randomize", Scaled(4).WithCloudNoise().WithDefense(defense.Spec{Model: "randomize", Period: 5000})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHost(tc.cfg, 15)
			a := h.NewAgent(0)
			buf := a.Alloc(64)
			addrs := make([]memory.VAddr, 256)
			for i := range addrs {
				addrs[i] = buf.LineAt(i%64, uint64(i/64)*memory.LineSize)
			}
			// Dirty the host, then recycle it: the contract under test
			// is the per-access cost of a *reused* trial host.
			for _, va := range addrs {
				a.Access(va)
			}
			h.Reset(99)
			i := 0
			avg := testing.AllocsPerRun(2000, func() {
				a.Access(addrs[i%len(addrs)])
				i++
			})
			if avg != 0 {
				t.Fatalf("%s: %v allocs per recycled-trial access, want 0", tc.name, avg)
			}
		})
	}
}
