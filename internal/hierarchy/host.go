package hierarchy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/defense"
	"repro/internal/memory"
	"repro/internal/slicehash"
	"repro/internal/tenant"
	"repro/internal/xrand"
)

// noiseOwner is the payload marking SF entries installed by background
// tenants; no simulated core holds their private copies.
const noiseOwner = 0xff

// SetID identifies one LLC/SF set (slice plus in-slice index). The SF and
// LLC share the same mapping, so a SetID addresses both structures.
type SetID struct {
	Slice int
	Index int
}

// String formats the set as "slice:index".
func (s SetID) String() string { return fmt.Sprintf("%d:%d", s.Slice, s.Index) }

// core bundles one core's private caches.
type core struct {
	l1 *cache.Cache
	l2 *cache.Cache
}

// Host simulates one physical machine: memory, hierarchy, clock, noise.
type Host struct {
	cfg  Config
	clk  *clock.Clock
	mem  *memory.Host
	hash *slicehash.Hash

	cores []core
	llc   []*cache.Cache // per slice
	sf    []*cache.Cache // per slice

	rng      *xrand.Rand // simulator-internal randomness (noise, jitter)
	noiseSeq uint64
	lastSync []clock.Cycles // per (slice, index): last noise sync time
	tenants  []tenantState  // background workload models, in spec order

	// def is the LLC countermeasure model (nil = undefended);
	// defSplit caches its way-partition boundary (0 = none) and
	// defHooks which per-access hooks the model actually needs, both
	// resolved once at build time so the access path skips virtual
	// calls that are guaranteed identities/no-ops.
	def      defense.Model
	defSplit int
	defHooks defense.Hooks

	sched eventQueue // scheduled external (victim) accesses

	// Statistics for instrumentation and tests.
	NoiseEvents uint64
	Accesses    uint64
}

// tenantState pairs one background tenant model with its per-access
// LLC-install probability. For memoryless (poisson) models the
// per-cycle rate is captured at build time so the sync loop can draw
// the window count directly from the host rng — same expression, same
// draw — without an interface call.
type tenantState struct {
	model      tenant.Model
	llcProb    float64
	memoryless bool
	perCycle   float64
}

// tenantSeedSalt decorrelates tenant-model seeds from every other use
// of the host seed (memory, clock and policy streams are Split from the
// running rng; tenant seeds must not consume those draws — see
// buildTenants).
const tenantSeedSalt = 0x7e4a_11c0_ffee_51de

// tenantSeed derives tenant i's schedule seed from the host seed
// arithmetically, without consuming host rng draws.
func tenantSeed(seed uint64, i int) uint64 {
	return xrand.Stream(seed^tenantSeedSalt, uint64(i))
}

// buildTenants constructs the host's background workload from the
// config: the structured Tenants specs when present, else the legacy
// NoiseRate/NoiseLLCProb shim as a single poisson model (built from the
// per-cycle rate directly, so no unit round trip can move a bit), else
// nothing. It must not draw from the host rng: NewHost consumed no
// draws after the policy split before tenants existed, and the poisson
// shim's byte-identity with the legacy path depends on keeping it that
// way. The config must already be validated.
func buildTenants(cfg Config) []tenantState {
	if len(cfg.Tenants) > 0 {
		ts := make([]tenantState, len(cfg.Tenants))
		for i, sp := range cfg.Tenants {
			m, err := sp.Build()
			if err != nil {
				panic("hierarchy: " + err.Error()) // unreachable post-Validate
			}
			// LLCProb is literal on a directly constructed Spec (only the
			// Parse/ParseList syntaxes default an absent key to 0.5), so a
			// sparse spec's zero genuinely means "never installs in the LLC".
			ts[i] = compileTenant(m, sp.LLCProb)
		}
		return ts
	}
	if cfg.NoiseRate > 0 {
		return []tenantState{compileTenant(tenant.NewPoisson(cfg.NoiseRate), cfg.NoiseLLCProb)}
	}
	return nil
}

// compileTenant resolves a model's fast-path kind once, at build time.
func compileTenant(m tenant.Model, llcProb float64) tenantState {
	ts := tenantState{model: m, llcProb: llcProb}
	if ml, ok := m.(tenant.Memoryless); ok {
		ts.memoryless = true
		ts.perCycle = ml.PerCycleRate()
	}
	return ts
}

// defenseSeedSalt decorrelates the defense-model seed from every other
// use of the host seed, exactly as tenantSeedSalt does for tenants; the
// seed is derived arithmetically, never drawn from the host rng, so an
// enabled defense cannot shift any other stream.
const defenseSeedSalt = 0x0def_e45e_5eed_c0de

// defenseSeed derives the defense model's key-schedule seed from the
// host seed without consuming host rng draws.
func defenseSeed(seed uint64) uint64 {
	return xrand.Stream(seed^defenseSeedSalt, 0)
}

// buildDefense constructs the host's countermeasure model from the
// config (nil when undefended). Like buildTenants it must not draw
// from the host rng, and the config must already be validated.
func buildDefense(cfg Config) defense.Model {
	if cfg.Defense == nil {
		return nil
	}
	m, err := cfg.Defense.Build()
	if err != nil {
		panic("hierarchy: " + err.Error()) // unreachable post-Validate
	}
	return m
}

// NewHost builds a host from the config with the given seed. It panics
// on a config whose noise, tenant or defense parameters fail
// Config.Validate.
func NewHost(cfg Config, seed uint64) *Host {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rng := xrand.New(seed)
	h := &Host{
		cfg:  cfg,
		rng:  rng,
		mem:  memory.NewHost(cfg.MemoryBytes, rng.Split()),
		hash: slicehash.New(cfg.Slices),
	}
	h.def = buildDefense(cfg)
	if h.def != nil {
		h.def.Reset(defenseSeed(seed))
		h.defSplit = h.def.PartitionWays()
		h.defHooks = defense.HooksOf(h.def)
	}
	h.clk = clock.New(cfg.TimerJitter, rng.Split())
	polRng := rng.Split()
	h.cores = make([]core, cfg.Cores)
	for i := range h.cores {
		h.cores[i] = core{
			l1: cache.New(cache.Config{Name: fmt.Sprintf("L1[%d]", i), Sets: cfg.L1Sets, Ways: cfg.L1Ways, Policy: cache.TrueLRU}, polRng),
			l2: cache.New(cache.Config{Name: fmt.Sprintf("L2[%d]", i), Sets: cfg.L2Sets, Ways: cfg.L2Ways, Policy: cfg.L2Policy}, polRng),
		}
	}
	h.llc = make([]*cache.Cache, cfg.Slices)
	h.sf = make([]*cache.Cache, cfg.Slices)
	for s := 0; s < cfg.Slices; s++ {
		// The defense's way partition covers both shared structures: a
		// partition that spared the Snoop Filter would leave the paper's
		// SF attack untouched.
		h.llc[s] = cache.New(cache.Config{Name: fmt.Sprintf("LLC[%d]", s), Sets: cfg.LLCSets, Ways: cfg.LLCWays, Policy: cfg.LLCPolicy, PartitionAt: h.defSplit}, polRng)
		h.sf[s] = cache.New(cache.Config{Name: fmt.Sprintf("SF[%d]", s), Sets: cfg.LLCSets, Ways: cfg.SFWays, Policy: cfg.SFPolicy, PartitionAt: h.defSplit}, polRng)
	}
	h.lastSync = make([]clock.Cycles, cfg.Slices*cfg.LLCSets)
	h.tenants = buildTenants(cfg)
	for i := range h.tenants {
		h.tenants[i].model.Reset(tenantSeed(seed, i))
	}
	return h
}

// Reset restores the host to the state NewHost(h.Config(), seed) would
// produce, reusing the cores, LLC/SF slice arrays, memory frame pool and
// noise bookkeeping instead of reallocating them. The sub-streams are
// split from the seed in the same order as in NewHost (memory, clock,
// policies), so a reset host replays the exact access-by-access behaviour
// of a fresh one — the property the parallel trial engine's host pools
// rely on for byte-identical reports. Agents and address spaces created
// before the reset are invalidated and must be rebuilt.
func (h *Host) Reset(seed uint64) {
	rng := xrand.New(seed)
	h.rng = rng
	h.mem.Reset(rng.Split())
	h.clk.Reset(h.cfg.TimerJitter, rng.Split())
	polRng := rng.Split()
	for i := range h.cores {
		h.cores[i].l1.Reset(polRng)
		h.cores[i].l2.Reset(polRng)
	}
	for s := range h.llc {
		h.llc[s].Reset(polRng)
		h.sf[s].Reset(polRng)
	}
	for i := range h.lastSync {
		h.lastSync[i] = 0
	}
	for i := range h.tenants {
		h.tenants[i].model.Reset(tenantSeed(seed, i))
	}
	if h.def != nil {
		h.def.Reset(defenseSeed(seed))
	}
	h.noiseSeq = 0
	h.sched.events = h.sched.events[:0]
	h.sched.draining = false
	h.NoiseEvents = 0
	h.Accesses = 0
}

// Config returns the host's configuration.
func (h *Host) Config() Config { return h.cfg }

// Clock returns the shared virtual clock.
func (h *Host) Clock() *clock.Clock { return h.clk }

// Memory returns the host's physical memory.
func (h *Host) Memory() *memory.Host { return h.mem }

// NewAddressSpace creates a fresh address space (one per agent/container).
func (h *Host) NewAddressSpace() *memory.AddressSpace {
	return memory.NewAddressSpace(h.mem)
}

// Index helpers.

func (h *Host) l1Index(pa memory.PAddr) int {
	return int(uint64(pa)>>memory.LineBits) & (h.cfg.L1Sets - 1)
}

func (h *Host) l2Index(pa memory.PAddr) int {
	return int(uint64(pa)>>memory.LineBits) & (h.cfg.L2Sets - 1)
}

func (h *Host) llcIndex(pa memory.PAddr) int {
	return int(uint64(pa)>>memory.LineBits) & (h.cfg.LLCSets - 1)
}

// SetOf returns the LLC/SF set of a physical address under the BASE
// (undefended) mapping. It is privileged information used by validation
// code, never by attack code. Under an index-transforming defense the
// per-domain mapping differs; the simulator and domain-aware ground
// truth (Agent.SetOf) use setFor instead.
func (h *Host) SetOf(pa memory.PAddr) SetID {
	return SetID{Slice: h.hash.Slice(pa), Index: h.llcIndex(pa)}
}

// attackerCores is the number of leading cores forming the first
// container's security domain: core 0 (the attacker's main thread) and
// core 1 (its helper), the fixed assignment attack.Session and
// evset.Env use. Every other core belongs to the victim container.
const attackerCores = 2

// domainOf maps a core to its security domain for the defense hooks.
func domainOf(coreID int) defense.Domain {
	if coreID < attackerCores {
		return defense.DomainAttacker
	}
	return defense.DomainVictim
}

// setFor returns the LLC/SF set an access by domain d to pa resolves
// to: the base mapping, transformed by the defense's index hook when
// one is configured (keyed randomization, per-domain skew).
func (h *Host) setFor(d defense.Domain, pa memory.PAddr) SetID {
	s := SetID{Slice: h.hash.Slice(pa), Index: h.llcIndex(pa)}
	if h.defHooks.Index {
		s.Index = h.def.Index(d, uint64(pa.Line()), s.Slice, s.Index, h.cfg.LLCSets)
	}
	return s
}

// SetOfDomain is the privileged domain-aware set resolution: the set an
// access by domain d would touch. Ground-truth code compares the set a
// victim line occupies (victim domain) with the sets attacker lines
// occupy (attacker domain); under a skewing defense the two mappings
// legitimately disagree.
func (h *Host) SetOfDomain(d defense.Domain, pa memory.PAddr) SetID {
	return h.setFor(d, pa)
}

// region maps a domain to its way-allocation region for the shared
// structures (-1 = unpartitioned: allocate anywhere).
func (h *Host) region(d defense.Domain) int {
	if h.defSplit == 0 {
		return -1
	}
	return h.def.Region(d)
}

// observe filters one attacker-visible timing measurement through the
// defense's measurement hook (quantization, added jitter).
func (h *Host) observe(measured float64) float64 {
	if !h.defHooks.Observe {
		return measured
	}
	return h.def.Observe(h.rng, measured)
}

// latency draws a jittered base latency for the level.
func (h *Host) latency(l Level) float64 {
	base := h.cfg.Lat.Base[l]
	if h.cfg.Lat.JitterFrac <= 0 {
		return base
	}
	v := h.rng.Norm(base, base*h.cfg.Lat.JitterFrac)
	if v < 1 {
		v = 1
	}
	return v
}

// --- Noise injection -----------------------------------------------------

// syncNoise applies the background tenant workload to one LLC/SF set,
// covering the window since the set was last synced. Each tenant model
// (internal/tenant; one legacy-shim poisson model when the config uses
// the flat NoiseRate knob) reports how many accesses it performed on
// the set during the window; each access allocates an SF entry
// (evicting, with back-invalidation, whatever the replacement policy
// selects) and, with the tenant's LLC probability, installs a line in
// the LLC set as well.
func (h *Host) syncNoise(set SetID) {
	slot := set.Slice*h.cfg.LLCSets + set.Index
	now := h.clk.Now()
	last := h.lastSync[slot]
	if now <= last {
		return
	}
	h.lastSync[slot] = now
	if len(h.tenants) == 0 {
		return
	}
	window := float64(now - last)
	for i := range h.tenants {
		bt := &h.tenants[i]
		var n int
		if bt.memoryless {
			// Devirtualized poisson path: the exact expression the model's
			// Accesses would evaluate, drawn from the same rng.
			n = h.rng.Poisson(window * bt.perCycle)
		} else {
			ref := tenant.Set{Slot: slot, Total: h.cfg.Slices * h.cfg.LLCSets}
			n = bt.model.Accesses(h.rng, ref, last, now)
		}
		for j := 0; j < n; j++ {
			h.noiseAccess(set, bt.llcProb)
		}
		h.NoiseEvents += uint64(n)
	}
}

// noiseAccess performs one background tenant access to the set. Tenant
// allocations carry the background domain: under a way partition they
// share the victim region, never displacing attacker-region entries.
func (h *Host) noiseAccess(set SetID, llcProb float64) {
	h.noiseSeq++
	reg := h.region(defense.DomainOther)
	// Noise tags live far above any real frame so they can never collide
	// with attacker or victim lines.
	tag := cache.Tag(1<<62 | h.noiseSeq<<memory.LineBits)
	ev := h.sf[set.Slice].InsertRegion(reg, set.Index, tag, noiseOwner)
	h.handleSFEviction(set, ev)
	if h.rng.Float64() < llcProb {
		lev := h.llc[set.Slice].InsertRegion(reg, set.Index, tag, 0)
		h.handleLLCEviction(lev)
	}
}

// --- Coherence bookkeeping ----------------------------------------------

// handleSFEviction processes the displacement of an SF entry: the owner's
// private copies are back-invalidated and the line may be inserted into
// the LLC by the reuse predictor — into the former owner's own region,
// so a partition is never breached by the predictor.
func (h *Host) handleSFEviction(set SetID, ev cache.Evicted) {
	if !ev.Valid {
		return
	}
	owner := int(ev.Payload)
	reg := h.region(defense.DomainOther)
	if owner != noiseOwner && owner < len(h.cores) {
		pa := memory.PAddr(ev.Tag)
		h.cores[owner].l1.Remove(h.l1Index(pa), ev.Tag)
		h.cores[owner].l2.Remove(h.l2Index(pa), ev.Tag)
		reg = h.region(domainOf(owner))
	}
	if h.rng.Float64() < h.cfg.ReuseInsertProb {
		lev := h.llc[set.Slice].InsertRegion(reg, set.Index, ev.Tag, 0)
		h.handleLLCEviction(lev)
	}
}

// handleLLCEviction processes the displacement of an LLC (shared) line:
// the LLC is the directory for shared lines, so sharers' private copies
// are back-invalidated.
func (h *Host) handleLLCEviction(ev cache.Evicted) {
	if !ev.Valid {
		return
	}
	pa := memory.PAddr(ev.Tag)
	if uint64(ev.Tag)&(1<<62) != 0 {
		return // noise line: no simulated core holds a copy
	}
	l1i, l2i := h.l1Index(pa), h.l2Index(pa)
	for c := range h.cores {
		h.cores[c].l1.Remove(l1i, ev.Tag)
		h.cores[c].l2.Remove(l2i, ev.Tag)
	}
}

// fillPrivate installs the line in the core's L2 and L1. The L1 and L2
// are mutually non-inclusive (as on Skylake-SP): a line evicted from one
// may survive in the other, and clean private victims are dropped
// silently. Crucially, silent private evictions do NOT release the SF
// entry: the Snoop Filter keeps stale entries until its own replacement
// displaces them — the property Prime+Scope's construction exploits
// (repeated passes over a candidate prefix cascade reinsertions through
// the stale entries until the target becomes the LRU victim).
func (h *Host) fillPrivate(coreID int, pa memory.PAddr) {
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	c.l2.Insert(h.l2Index(pa), tag, 0)
	c.l1.Insert(h.l1Index(pa), tag, 0)
}

// --- The access path ------------------------------------------------------

// accessResult carries the outcome of one state-machine step.
type accessResult struct {
	level Level
}

// accessState performs the cache-state transition of one demand access by
// coreID to physical address pa, without advancing the clock. It returns
// the level the access was served from. This is the heart of the
// non-inclusive LLC+SF protocol (paper §2.3):
//
//   - L1/L2 hits stay private.
//   - An SF hit (another core owns the line E/M) triggers a cache-to-cache
//     forward: both copies become Shared, the SF entry is freed and the
//     line is installed in the LLC.
//   - An LLC hit by a core that misses privately takes the line Exclusive:
//     it is removed from the LLC and an SF entry is allocated.
//   - A full miss fetches from DRAM and allocates an SF entry (Exclusive).
func (h *Host) accessState(coreID int, pa memory.PAddr) accessResult {
	h.Accesses++
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	dom := domainOf(coreID)
	if h.defHooks.Tick {
		// One tick per demand access advances defense epoch state (e.g.
		// the randomize model's rekey counter).
		h.def.Tick()
	}

	// Apply pending background noise and scheduled (victim) accesses to
	// this line's LLC/SF set before the lookups: a back-invalidation that
	// "already happened" in virtual time must be visible even to an
	// otherwise-L1-resident line.
	set := h.setFor(dom, pa)
	h.syncNoise(set)
	h.drainScheduled()

	if _, hit := c.l1.Lookup(h.l1Index(pa), tag); hit {
		return accessResult{level: L1Hit}
	}
	if _, hit := c.l2.Lookup(h.l2Index(pa), tag); hit {
		c.l1.Insert(h.l1Index(pa), tag, 0)
		return accessResult{level: L2Hit}
	}

	if owner, hit := h.sf[set.Slice].Lookup(set.Index, tag); hit {
		if int(owner) != coreID && owner != noiseOwner && h.hasPrivate(int(owner), pa) {
			// Cache-to-cache forward; line transitions E->S: SF entry
			// freed, line installed in the LLC. The previous owner keeps
			// its (now Shared) private copies.
			h.sf[set.Slice].Remove(set.Index, tag)
			lev := h.llc[set.Slice].InsertRegion(h.region(dom), set.Index, tag, 0)
			h.handleLLCEviction(lev)
			h.fillPrivate(coreID, pa)
			return accessResult{level: SFForward}
		}
		// Stale, own, or noise entry: the snoop misses every private
		// cache, so the line is refetched from DRAM; the SF entry is
		// retained and re-owned by the requester.
		h.sf[set.Slice].UpdatePayload(set.Index, tag, uint8(coreID))
		h.fillPrivate(coreID, pa)
		return accessResult{level: DRAM}
	}

	if _, hit := h.llc[set.Slice].Lookup(set.Index, tag); hit {
		// Shared line taken Exclusive: remove from LLC, allocate SF, and
		// invalidate every other core's (Shared) private copy — a line
		// cannot be Exclusive in one core while cached elsewhere.
		h.llc[set.Slice].Remove(set.Index, tag)
		l1i, l2i := h.l1Index(pa), h.l2Index(pa)
		for c := range h.cores {
			if c == coreID {
				continue
			}
			h.cores[c].l1.Remove(l1i, tag)
			h.cores[c].l2.Remove(l2i, tag)
		}
		ev := h.sf[set.Slice].InsertRegion(h.region(dom), set.Index, tag, uint8(coreID))
		h.handleSFEviction(set, ev)
		h.fillPrivate(coreID, pa)
		return accessResult{level: LLCHit}
	}

	// Full miss: DRAM fetch, allocate SF entry (Exclusive).
	ev := h.sf[set.Slice].InsertRegion(h.region(dom), set.Index, tag, uint8(coreID))
	h.handleSFEviction(set, ev)
	h.fillPrivate(coreID, pa)
	return accessResult{level: DRAM}
}

// dropPrivate silently discards the core's private copies of a line
// without coherence actions or time cost. It models the portion of an
// access pattern (e.g. Gruss-style dual pointer chase) that displaces a
// line from the local L1/L2 so the next touch transits the LLC; the
// pattern's time cost is charged by the batch access model.
func (h *Host) dropPrivate(coreID int, pa memory.PAddr) {
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	c.l1.Remove(h.l1Index(pa), tag)
	c.l2.Remove(h.l2Index(pa), tag)
}

// dropL1 silently discards only the core's L1 copy (see dropPrivate).
func (h *Host) dropL1(coreID int, pa memory.PAddr) {
	h.cores[coreID].l1.Remove(h.l1Index(pa), cache.Tag(pa.Line()))
}

// flushLine models clflush by coreID: the line is removed from every
// private cache, from the LLC and from the SF. The shared-structure set
// resolves under the flusher's domain mapping — the only mapping under
// which the flusher's own lines are resident.
func (h *Host) flushLine(coreID int, pa memory.PAddr) {
	tag := cache.Tag(pa.Line())
	l1i, l2i := h.l1Index(pa), h.l2Index(pa)
	for c := range h.cores {
		h.cores[c].l1.Remove(l1i, tag)
		h.cores[c].l2.Remove(l2i, tag)
	}
	set := h.setFor(domainOf(coreID), pa)
	h.llc[set.Slice].Remove(set.Index, tag)
	h.sf[set.Slice].Remove(set.Index, tag)
}

// --- Privileged inspection (validation & tests only) ----------------------

// InSF reports whether the line is SF-tracked (privileged). Under an
// index-transforming defense (randomize, scatter) a line lives
// wherever the touching domain's mapping placed it, so the check
// covers both container mappings; callers that know the accessing
// domain use InSFDomain directly.
func (h *Host) InSF(pa memory.PAddr) bool {
	if h.def == nil {
		return h.sfContains(h.SetOf(pa), pa)
	}
	return h.InSFDomain(defense.DomainAttacker, pa) || h.InSFDomain(defense.DomainVictim, pa)
}

// InSFDomain reports whether the line is SF-tracked under domain d's
// index mapping — the resolution that is correct on a host with an
// index-transforming defense, for the domain that accessed the line.
func (h *Host) InSFDomain(d defense.Domain, pa memory.PAddr) bool {
	return h.sfContains(h.setFor(d, pa), pa)
}

func (h *Host) sfContains(set SetID, pa memory.PAddr) bool {
	return h.sf[set.Slice].Contains(set.Index, cache.Tag(pa.Line()))
}

// InLLC reports whether the line is LLC-resident (privileged). Like
// InSF it covers both container mappings under an index-transforming
// defense, so it stays truthful on every host.
func (h *Host) InLLC(pa memory.PAddr) bool {
	if h.def == nil {
		return h.llcContains(h.SetOf(pa), pa)
	}
	return h.InLLCDomain(defense.DomainAttacker, pa) || h.InLLCDomain(defense.DomainVictim, pa)
}

// InLLCDomain reports whether the line is LLC-resident under domain d's
// index mapping (see InSFDomain).
func (h *Host) InLLCDomain(d defense.Domain, pa memory.PAddr) bool {
	return h.llcContains(h.setFor(d, pa), pa)
}

func (h *Host) llcContains(set SetID, pa memory.PAddr) bool {
	return h.llc[set.Slice].Contains(set.Index, cache.Tag(pa.Line()))
}

// hasPrivate reports whether the core's L1 or L2 holds the line (used by
// the snoop path to detect stale SF entries).
func (h *Host) hasPrivate(coreID int, pa memory.PAddr) bool {
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	return c.l1.Contains(h.l1Index(pa), tag) || c.l2.Contains(h.l2Index(pa), tag)
}

// InPrivate reports whether the line is in the core's L1 or L2
// (privileged).
func (h *Host) InPrivate(coreID int, pa memory.PAddr) bool {
	return h.hasPrivate(coreID, pa)
}

// InL2 reports whether the core's L2 holds the line (privileged).
func (h *Host) InL2(coreID int, pa memory.PAddr) bool {
	return h.cores[coreID].l2.Contains(h.l2Index(pa), cache.Tag(pa.Line()))
}

// L2SetOccupancy returns the number of valid lines in the core's L2 set
// containing pa (privileged; used by tests).
func (h *Host) L2SetOccupancy(coreID int, pa memory.PAddr) int {
	return h.cores[coreID].l2.OccupiedWays(h.l2Index(pa))
}

// SFOccupancy returns how many valid entries the SF set holds
// (privileged; used by tests).
func (h *Host) SFOccupancy(set SetID) int { return h.sf[set.Slice].OccupiedWays(set.Index) }

// LLCOccupancy returns how many valid lines the LLC set holds
// (privileged; used by tests).
func (h *Host) LLCOccupancy(set SetID) int { return h.llc[set.Slice].OccupiedWays(set.Index) }
