package hierarchy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/memory"
	"repro/internal/slicehash"
	"repro/internal/xrand"
)

// noiseOwner is the payload marking SF entries installed by background
// tenants; no simulated core holds their private copies.
const noiseOwner = 0xff

// SetID identifies one LLC/SF set (slice plus in-slice index). The SF and
// LLC share the same mapping, so a SetID addresses both structures.
type SetID struct {
	Slice int
	Index int
}

// String formats the set as "slice:index".
func (s SetID) String() string { return fmt.Sprintf("%d:%d", s.Slice, s.Index) }

// core bundles one core's private caches.
type core struct {
	l1 *cache.Cache
	l2 *cache.Cache
}

// Host simulates one physical machine: memory, hierarchy, clock, noise.
type Host struct {
	cfg  Config
	clk  *clock.Clock
	mem  *memory.Host
	hash *slicehash.Hash

	cores []core
	llc   []*cache.Cache // per slice
	sf    []*cache.Cache // per slice

	rng      *xrand.Rand // simulator-internal randomness (noise, jitter)
	noiseSeq uint64
	lastSync []clock.Cycles // per (slice, index): last noise sync time

	sched eventQueue // scheduled external (victim) accesses

	// Statistics for instrumentation and tests.
	NoiseEvents uint64
	Accesses    uint64
}

// NewHost builds a host from the config with the given seed.
func NewHost(cfg Config, seed uint64) *Host {
	rng := xrand.New(seed)
	h := &Host{
		cfg:  cfg,
		rng:  rng,
		mem:  memory.NewHost(cfg.MemoryBytes, rng.Split()),
		hash: slicehash.New(cfg.Slices),
	}
	h.clk = clock.New(cfg.TimerJitter, rng.Split())
	polRng := rng.Split()
	h.cores = make([]core, cfg.Cores)
	for i := range h.cores {
		h.cores[i] = core{
			l1: cache.New(cache.Config{Name: fmt.Sprintf("L1[%d]", i), Sets: cfg.L1Sets, Ways: cfg.L1Ways, Policy: cache.TrueLRU}, polRng),
			l2: cache.New(cache.Config{Name: fmt.Sprintf("L2[%d]", i), Sets: cfg.L2Sets, Ways: cfg.L2Ways, Policy: cfg.L2Policy}, polRng),
		}
	}
	h.llc = make([]*cache.Cache, cfg.Slices)
	h.sf = make([]*cache.Cache, cfg.Slices)
	for s := 0; s < cfg.Slices; s++ {
		h.llc[s] = cache.New(cache.Config{Name: fmt.Sprintf("LLC[%d]", s), Sets: cfg.LLCSets, Ways: cfg.LLCWays, Policy: cfg.LLCPolicy}, polRng)
		h.sf[s] = cache.New(cache.Config{Name: fmt.Sprintf("SF[%d]", s), Sets: cfg.LLCSets, Ways: cfg.SFWays, Policy: cfg.SFPolicy}, polRng)
	}
	h.lastSync = make([]clock.Cycles, cfg.Slices*cfg.LLCSets)
	return h
}

// Reset restores the host to the state NewHost(h.Config(), seed) would
// produce, reusing the cores, LLC/SF slice arrays, memory frame pool and
// noise bookkeeping instead of reallocating them. The sub-streams are
// split from the seed in the same order as in NewHost (memory, clock,
// policies), so a reset host replays the exact access-by-access behaviour
// of a fresh one — the property the parallel trial engine's host pools
// rely on for byte-identical reports. Agents and address spaces created
// before the reset are invalidated and must be rebuilt.
func (h *Host) Reset(seed uint64) {
	rng := xrand.New(seed)
	h.rng = rng
	h.mem.Reset(rng.Split())
	h.clk.Reset(h.cfg.TimerJitter, rng.Split())
	polRng := rng.Split()
	for i := range h.cores {
		h.cores[i].l1.Reset(polRng)
		h.cores[i].l2.Reset(polRng)
	}
	for s := range h.llc {
		h.llc[s].Reset(polRng)
		h.sf[s].Reset(polRng)
	}
	for i := range h.lastSync {
		h.lastSync[i] = 0
	}
	h.noiseSeq = 0
	h.sched.events = h.sched.events[:0]
	h.sched.draining = false
	h.NoiseEvents = 0
	h.Accesses = 0
}

// Config returns the host's configuration.
func (h *Host) Config() Config { return h.cfg }

// Clock returns the shared virtual clock.
func (h *Host) Clock() *clock.Clock { return h.clk }

// Memory returns the host's physical memory.
func (h *Host) Memory() *memory.Host { return h.mem }

// NewAddressSpace creates a fresh address space (one per agent/container).
func (h *Host) NewAddressSpace() *memory.AddressSpace {
	return memory.NewAddressSpace(h.mem)
}

// Index helpers.

func (h *Host) l1Index(pa memory.PAddr) int {
	return int(uint64(pa)>>memory.LineBits) & (h.cfg.L1Sets - 1)
}

func (h *Host) l2Index(pa memory.PAddr) int {
	return int(uint64(pa)>>memory.LineBits) & (h.cfg.L2Sets - 1)
}

func (h *Host) llcIndex(pa memory.PAddr) int {
	return int(uint64(pa)>>memory.LineBits) & (h.cfg.LLCSets - 1)
}

// SetOf returns the LLC/SF set of a physical address. It is privileged
// information used by the simulator and by ground-truth validation, never
// by attack code.
func (h *Host) SetOf(pa memory.PAddr) SetID {
	return SetID{Slice: h.hash.Slice(pa), Index: h.llcIndex(pa)}
}

// latency draws a jittered base latency for the level.
func (h *Host) latency(l Level) float64 {
	base := h.cfg.Lat.Base[l]
	if h.cfg.Lat.JitterFrac <= 0 {
		return base
	}
	v := h.rng.Norm(base, base*h.cfg.Lat.JitterFrac)
	if v < 1 {
		v = 1
	}
	return v
}

// --- Noise injection -----------------------------------------------------

// syncNoise applies the background tenant Poisson process to one LLC/SF
// set, covering the window since the set was last synced. Each background
// access allocates an SF entry (evicting, with back-invalidation, whatever
// the replacement policy selects) and, with probability NoiseLLCProb,
// installs a line in the LLC set as well.
func (h *Host) syncNoise(set SetID) {
	slot := set.Slice*h.cfg.LLCSets + set.Index
	now := h.clk.Now()
	last := h.lastSync[slot]
	if now <= last {
		return
	}
	h.lastSync[slot] = now
	if h.cfg.NoiseRate <= 0 {
		return
	}
	window := float64(now - last)
	n := h.rng.Poisson(window * h.cfg.NoiseRate)
	for i := 0; i < n; i++ {
		h.noiseAccess(set)
	}
	h.NoiseEvents += uint64(n)
}

// noiseAccess performs one background tenant access to the set.
func (h *Host) noiseAccess(set SetID) {
	h.noiseSeq++
	// Noise tags live far above any real frame so they can never collide
	// with attacker or victim lines.
	tag := cache.Tag(1<<62 | h.noiseSeq<<memory.LineBits)
	ev := h.sf[set.Slice].Insert(set.Index, tag, noiseOwner)
	h.handleSFEviction(set, ev)
	if h.rng.Float64() < h.cfg.NoiseLLCProb {
		lev := h.llc[set.Slice].Insert(set.Index, tag, 0)
		h.handleLLCEviction(lev)
	}
}

// --- Coherence bookkeeping ----------------------------------------------

// handleSFEviction processes the displacement of an SF entry: the owner's
// private copies are back-invalidated and the line may be inserted into
// the LLC by the reuse predictor.
func (h *Host) handleSFEviction(set SetID, ev cache.Evicted) {
	if !ev.Valid {
		return
	}
	owner := int(ev.Payload)
	if owner != noiseOwner && owner < len(h.cores) {
		pa := memory.PAddr(ev.Tag)
		h.cores[owner].l1.Remove(h.l1Index(pa), ev.Tag)
		h.cores[owner].l2.Remove(h.l2Index(pa), ev.Tag)
	}
	if h.rng.Float64() < h.cfg.ReuseInsertProb {
		lev := h.llc[set.Slice].Insert(set.Index, ev.Tag, 0)
		h.handleLLCEviction(lev)
	}
}

// handleLLCEviction processes the displacement of an LLC (shared) line:
// the LLC is the directory for shared lines, so sharers' private copies
// are back-invalidated.
func (h *Host) handleLLCEviction(ev cache.Evicted) {
	if !ev.Valid {
		return
	}
	pa := memory.PAddr(ev.Tag)
	if uint64(ev.Tag)&(1<<62) != 0 {
		return // noise line: no simulated core holds a copy
	}
	l1i, l2i := h.l1Index(pa), h.l2Index(pa)
	for c := range h.cores {
		h.cores[c].l1.Remove(l1i, ev.Tag)
		h.cores[c].l2.Remove(l2i, ev.Tag)
	}
}

// fillPrivate installs the line in the core's L2 and L1. The L1 and L2
// are mutually non-inclusive (as on Skylake-SP): a line evicted from one
// may survive in the other, and clean private victims are dropped
// silently. Crucially, silent private evictions do NOT release the SF
// entry: the Snoop Filter keeps stale entries until its own replacement
// displaces them — the property Prime+Scope's construction exploits
// (repeated passes over a candidate prefix cascade reinsertions through
// the stale entries until the target becomes the LRU victim).
func (h *Host) fillPrivate(coreID int, pa memory.PAddr) {
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	c.l2.Insert(h.l2Index(pa), tag, 0)
	c.l1.Insert(h.l1Index(pa), tag, 0)
}

// --- The access path ------------------------------------------------------

// accessResult carries the outcome of one state-machine step.
type accessResult struct {
	level Level
}

// accessState performs the cache-state transition of one demand access by
// coreID to physical address pa, without advancing the clock. It returns
// the level the access was served from. This is the heart of the
// non-inclusive LLC+SF protocol (paper §2.3):
//
//   - L1/L2 hits stay private.
//   - An SF hit (another core owns the line E/M) triggers a cache-to-cache
//     forward: both copies become Shared, the SF entry is freed and the
//     line is installed in the LLC.
//   - An LLC hit by a core that misses privately takes the line Exclusive:
//     it is removed from the LLC and an SF entry is allocated.
//   - A full miss fetches from DRAM and allocates an SF entry (Exclusive).
func (h *Host) accessState(coreID int, pa memory.PAddr) accessResult {
	h.Accesses++
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]

	// Apply pending background noise and scheduled (victim) accesses to
	// this line's LLC/SF set before the lookups: a back-invalidation that
	// "already happened" in virtual time must be visible even to an
	// otherwise-L1-resident line.
	set := h.SetOf(pa)
	h.syncNoise(set)
	h.drainScheduled()

	if _, hit := c.l1.Lookup(h.l1Index(pa), tag); hit {
		return accessResult{level: L1Hit}
	}
	if _, hit := c.l2.Lookup(h.l2Index(pa), tag); hit {
		c.l1.Insert(h.l1Index(pa), tag, 0)
		return accessResult{level: L2Hit}
	}

	if owner, hit := h.sf[set.Slice].Lookup(set.Index, tag); hit {
		if int(owner) != coreID && owner != noiseOwner && h.hasPrivate(int(owner), pa) {
			// Cache-to-cache forward; line transitions E->S: SF entry
			// freed, line installed in the LLC. The previous owner keeps
			// its (now Shared) private copies.
			h.sf[set.Slice].Remove(set.Index, tag)
			lev := h.llc[set.Slice].Insert(set.Index, tag, 0)
			h.handleLLCEviction(lev)
			h.fillPrivate(coreID, pa)
			return accessResult{level: SFForward}
		}
		// Stale, own, or noise entry: the snoop misses every private
		// cache, so the line is refetched from DRAM; the SF entry is
		// retained and re-owned by the requester.
		h.sf[set.Slice].UpdatePayload(set.Index, tag, uint8(coreID))
		h.fillPrivate(coreID, pa)
		return accessResult{level: DRAM}
	}

	if _, hit := h.llc[set.Slice].Lookup(set.Index, tag); hit {
		// Shared line taken Exclusive: remove from LLC, allocate SF, and
		// invalidate every other core's (Shared) private copy — a line
		// cannot be Exclusive in one core while cached elsewhere.
		h.llc[set.Slice].Remove(set.Index, tag)
		l1i, l2i := h.l1Index(pa), h.l2Index(pa)
		for c := range h.cores {
			if c == coreID {
				continue
			}
			h.cores[c].l1.Remove(l1i, tag)
			h.cores[c].l2.Remove(l2i, tag)
		}
		ev := h.sf[set.Slice].Insert(set.Index, tag, uint8(coreID))
		h.handleSFEviction(set, ev)
		h.fillPrivate(coreID, pa)
		return accessResult{level: LLCHit}
	}

	// Full miss: DRAM fetch, allocate SF entry (Exclusive).
	ev := h.sf[set.Slice].Insert(set.Index, tag, uint8(coreID))
	h.handleSFEviction(set, ev)
	h.fillPrivate(coreID, pa)
	return accessResult{level: DRAM}
}

// dropPrivate silently discards the core's private copies of a line
// without coherence actions or time cost. It models the portion of an
// access pattern (e.g. Gruss-style dual pointer chase) that displaces a
// line from the local L1/L2 so the next touch transits the LLC; the
// pattern's time cost is charged by the batch access model.
func (h *Host) dropPrivate(coreID int, pa memory.PAddr) {
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	c.l1.Remove(h.l1Index(pa), tag)
	c.l2.Remove(h.l2Index(pa), tag)
}

// dropL1 silently discards only the core's L1 copy (see dropPrivate).
func (h *Host) dropL1(coreID int, pa memory.PAddr) {
	h.cores[coreID].l1.Remove(h.l1Index(pa), cache.Tag(pa.Line()))
}

// flushLine models clflush: the line is removed from every private cache,
// from the LLC and from the SF.
func (h *Host) flushLine(pa memory.PAddr) {
	tag := cache.Tag(pa.Line())
	l1i, l2i := h.l1Index(pa), h.l2Index(pa)
	for c := range h.cores {
		h.cores[c].l1.Remove(l1i, tag)
		h.cores[c].l2.Remove(l2i, tag)
	}
	set := h.SetOf(pa)
	h.llc[set.Slice].Remove(set.Index, tag)
	h.sf[set.Slice].Remove(set.Index, tag)
}

// --- Privileged inspection (validation & tests only) ----------------------

// InSF reports whether the line is SF-tracked (privileged).
func (h *Host) InSF(pa memory.PAddr) bool {
	set := h.SetOf(pa)
	return h.sf[set.Slice].Contains(set.Index, cache.Tag(pa.Line()))
}

// InLLC reports whether the line is LLC-resident (privileged).
func (h *Host) InLLC(pa memory.PAddr) bool {
	set := h.SetOf(pa)
	return h.llc[set.Slice].Contains(set.Index, cache.Tag(pa.Line()))
}

// hasPrivate reports whether the core's L1 or L2 holds the line (used by
// the snoop path to detect stale SF entries).
func (h *Host) hasPrivate(coreID int, pa memory.PAddr) bool {
	tag := cache.Tag(pa.Line())
	c := &h.cores[coreID]
	return c.l1.Contains(h.l1Index(pa), tag) || c.l2.Contains(h.l2Index(pa), tag)
}

// InPrivate reports whether the line is in the core's L1 or L2
// (privileged).
func (h *Host) InPrivate(coreID int, pa memory.PAddr) bool {
	return h.hasPrivate(coreID, pa)
}

// InL2 reports whether the core's L2 holds the line (privileged).
func (h *Host) InL2(coreID int, pa memory.PAddr) bool {
	return h.cores[coreID].l2.Contains(h.l2Index(pa), cache.Tag(pa.Line()))
}

// L2SetOccupancy returns the number of valid lines in the core's L2 set
// containing pa (privileged; used by tests).
func (h *Host) L2SetOccupancy(coreID int, pa memory.PAddr) int {
	return h.cores[coreID].l2.OccupiedWays(h.l2Index(pa))
}

// SFOccupancy returns how many valid entries the SF set holds
// (privileged; used by tests).
func (h *Host) SFOccupancy(set SetID) int { return h.sf[set.Slice].OccupiedWays(set.Index) }

// LLCOccupancy returns how many valid lines the LLC set holds
// (privileged; used by tests).
func (h *Host) LLCOccupancy(set SetID) int { return h.llc[set.Slice].OccupiedWays(set.Index) }
