package hierarchy

import (
	"testing"

	"repro/internal/memory"
)

func TestSkylakeUncertainty(t *testing.T) {
	// Paper §2.2.1: a 28-slice Skylake-SP has U_LLC = 2^5 x 28 = 896 and
	// U_L2 = 2^4 = 16; the system has 57,344 LLC/SF sets.
	cfg := SkylakeSP(28)
	if got := cfg.LLCUncertainty(); got != 896 {
		t.Errorf("U_LLC = %d, want 896", got)
	}
	if got := cfg.L2Uncertainty(); got != 16 {
		t.Errorf("U_L2 = %d, want 16", got)
	}
	if got := cfg.TotalLLCSets(); got != 57344 {
		t.Errorf("total sets = %d, want 57344", got)
	}
	if got := cfg.SetsAtPageOffset(); got != 896 {
		t.Errorf("page-offset sets = %d, want 896", got)
	}
}

func TestGeometryInvariants(t *testing.T) {
	for _, cfg := range []Config{SkylakeSP(28), SkylakeSP(22), IceLakeSP(26), Scaled(4)} {
		// The SF-eviction test keeps Ta plus one SF eviction set in a
		// single L2 set, so L2 associativity must exceed SF's.
		if cfg.L2Ways <= cfg.SFWays {
			t.Errorf("%s: L2 ways %d must exceed SF ways %d", cfg.Name, cfg.L2Ways, cfg.SFWays)
		}
		// The SF must have at least as many ways as the LLC slice, so an
		// LLC eviction set extends to an SF set (paper §3).
		if cfg.SFWays < cfg.LLCWays {
			t.Errorf("%s: SF ways %d below LLC ways %d", cfg.Name, cfg.SFWays, cfg.LLCWays)
		}
		// L2 index bits must be a subset of LLC index bits for candidate
		// filtering (§5.1): L2 sets <= LLC sets per slice x ... in index
		// terms, L2IndexBits <= LLCIndexBits.
		if cfg.L2IndexBits() > cfg.LLCIndexBits() {
			t.Errorf("%s: L2 index wider than LLC index; filtering invalid", cfg.Name)
		}
	}
}

func TestNoisePresets(t *testing.T) {
	c := SkylakeSP(4)
	if c.NoiseRate != QuiescentNoiseRate {
		t.Error("default preset should be quiescent")
	}
	if c.WithCloudNoise().NoiseRate != CloudRunNoiseRate {
		t.Error("WithCloudNoise failed")
	}
	if got := c.WithNoiseRate(11.5).NoiseRate; got != CloudRunNoiseRate {
		t.Errorf("WithNoiseRate(11.5) = %v, want %v", got, CloudRunNoiseRate)
	}
}

func TestHostDeterminism(t *testing.T) {
	run := func() (Level, Level, uint64) {
		h := NewHost(Scaled(4).WithCloudNoise(), 99)
		a := h.NewAgent(0)
		buf := a.Alloc(64)
		var l1, l2 Level
		for i := 0; i < 64; i++ {
			_, l1 = a.Access(buf.LineAt(i, 0))
		}
		a.Idle(1_000_000)
		_, l2 = a.Access(buf.LineAt(0, 0))
		return l1, l2, uint64(h.Clock().Now())
	}
	a1, b1, t1 := run()
	a2, b2, t2 := run()
	if a1 != a2 || b1 != b2 || t1 != t2 {
		t.Fatal("identical seeds must reproduce identical simulations")
	}
}

func TestLLCEvictionBackInvalidatesSharers(t *testing.T) {
	cfg := Scaled(4)
	cfg.NoiseRate = 0
	h := NewHost(cfg, 123)
	a := h.NewAgent(0)
	helper := h.NewAgentSharing(1, a.AddressSpace())

	// Make one line Shared (LLC-resident with private copies), then fill
	// its LLC set with other shared lines until it is evicted.
	buf := a.Alloc(8192)
	ta := buf.LineAt(0, 0)
	a.LoadShared(helper, ta)
	pa := a.Translate(ta)
	set := h.SetOf(pa)
	if !h.InLLC(pa) || !h.InPrivate(0, pa) {
		t.Fatal("setup failed")
	}
	filled := 0
	for p := 1; p < buf.Pages && filled < cfg.LLCWays+2; p++ {
		va := buf.LineAt(p, 0)
		if h.SetOf(a.Translate(va)) == set {
			a.LoadShared(helper, va)
			filled++
		}
	}
	if filled < cfg.LLCWays {
		t.Skipf("only %d congruent lines found", filled)
	}
	if h.InLLC(pa) {
		t.Fatal("ta should have been evicted from the LLC")
	}
	if h.InPrivate(0, pa) || h.InPrivate(1, pa) {
		t.Fatal("LLC eviction of a shared line must back-invalidate all sharers")
	}
}

func TestParallelBatchCheaperThanSequential(t *testing.T) {
	cfg := Scaled(4)
	cfg.NoiseRate = 0
	h := NewHost(cfg, 7)
	a := h.NewAgent(0)
	buf := a.Alloc(256)
	seqAddrs := make([]memory.VAddr, 0, 128)
	parAddrs := make([]memory.VAddr, 0, 128)
	for i := 0; i < 128; i++ {
		seqAddrs = append(seqAddrs, buf.LineAt(i, 0))
		parAddrs = append(parAddrs, buf.LineAt(i+128, 0))
	}
	seq := a.AccessSeq(seqAddrs)
	par, misses := a.AccessParallel(parAddrs)
	if misses != 128 {
		t.Fatalf("parallel misses = %d, want 128", misses)
	}
	if float64(seq) < 8*float64(par) {
		t.Fatalf("sequential (%d) should be ~an order of magnitude above parallel (%d)", seq, par)
	}
}
