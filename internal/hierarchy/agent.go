package hierarchy

import (
	"repro/internal/clock"
	"repro/internal/memory"
)

// Agent is one software thread pinned to a core, with its container's
// address space. The attacker's main thread, its helper thread and the
// victim are all Agents of the same Host. Cloud schedulers prevent
// cross-tenant SMT sharing (paper §3), so each Agent gets its own core.
type Agent struct {
	h    *Host
	core int
	as   *memory.AddressSpace
}

// NewAgent creates an agent on the given core with a fresh address space.
func (h *Host) NewAgent(core int) *Agent {
	if core < 0 || core >= len(h.cores) {
		panic("hierarchy: core index out of range")
	}
	return &Agent{h: h, core: core, as: h.NewAddressSpace()}
}

// NewAgentSharing creates an agent on the given core sharing an existing
// address space (e.g. the attacker's helper thread, which shares the main
// thread's mappings).
func (h *Host) NewAgentSharing(core int, as *memory.AddressSpace) *Agent {
	if core < 0 || core >= len(h.cores) {
		panic("hierarchy: core index out of range")
	}
	return &Agent{h: h, core: core, as: as}
}

// Host returns the agent's host.
func (a *Agent) Host() *Host { return a.h }

// Core returns the agent's core number.
func (a *Agent) Core() int { return a.core }

// AddressSpace returns the agent's address space.
func (a *Agent) AddressSpace() *memory.AddressSpace { return a.as }

// Alloc maps a fresh buffer of n pages in the agent's address space.
func (a *Agent) Alloc(pages int) memory.Buffer { return a.as.Alloc(pages) }

// Translate resolves a virtual address (privileged helper for validation
// code; attack logic must not inspect the result's high bits).
func (a *Agent) Translate(va memory.VAddr) memory.PAddr { return a.as.Translate(va) }

// SetOf returns the LLC/SF set this agent's accesses to the virtual
// address resolve to (privileged: used for ground truth only). The
// resolution is domain-aware: under an index-transforming defense the
// attacker's and the victim's agents legitimately map the same physical
// line to different sets.
func (a *Agent) SetOf(va memory.VAddr) SetID {
	return a.h.setFor(domainOf(a.core), a.as.Translate(va))
}

// Access performs one demand load and advances the clock by its jittered
// latency. It returns the latency and the level that served the access.
func (a *Agent) Access(va memory.VAddr) (clock.Cycles, Level) {
	pa := a.as.Translate(va)
	res := a.h.accessState(a.core, pa)
	lat := a.h.latency(res.level)
	a.h.clk.Advance(clock.Cycles(lat))
	return clock.Cycles(lat), res.level
}

// TimedAccess performs one load and returns the latency an attacker would
// measure with a serialize-rdtsc pair: the access latency plus fixed
// measurement overhead, with timer jitter — filtered, when a defense
// quiesces the timing channel, through its measurement hook.
func (a *Agent) TimedAccess(va memory.VAddr) (clock.Cycles, Level) {
	lat, level := a.Access(va)
	measured := float64(lat) + a.h.cfg.Lat.Measure
	a.h.clk.Advance(clock.Cycles(a.h.cfg.Lat.Measure))
	if j := a.h.cfg.TimerJitter; j > 0 {
		measured = a.h.rng.Norm(measured, j)
		if measured < 1 {
			measured = 1
		}
	}
	return clock.Cycles(a.h.observe(measured)), level
}

// AccessSeq performs dependent (pointer-chase) accesses: each access waits
// for the previous one and pays the per-level chain overhead (page walks
// dominate for DRAM-sized candidate sets). It returns the total time.
func (a *Agent) AccessSeq(vas []memory.VAddr) clock.Cycles {
	var total clock.Cycles
	for _, va := range vas {
		pa := a.as.Translate(va)
		res := a.h.accessState(a.core, pa)
		lat := a.h.latency(res.level) + a.h.cfg.Lat.Chain[res.level]
		a.h.clk.Advance(clock.Cycles(lat))
		total += clock.Cycles(lat)
	}
	return total
}

// AccessParallel performs overlapped, independent accesses exploiting
// memory-level parallelism: the batch costs the per-access issue cost,
// plus the maximum base latency, plus a drain cost per additional access
// (paper §4.1: the pattern of Gruss et al. [31]). It returns the total
// time and the number of accesses served beyond the L2 (the "miss count"
// an attacker could infer from the duration). The returned total is the
// attacker's rdtsc-delimited MEASUREMENT of the batch, so a quiescing
// defense filters it; the virtual clock always advances by the true
// duration.
func (a *Agent) AccessParallel(vas []memory.VAddr) (clock.Cycles, int) {
	if len(vas) == 0 {
		return 0, 0
	}
	lat := a.h.cfg.Lat
	total := lat.Issue * float64(len(vas))
	maxBase := 0.0
	misses := 0
	for i, va := range vas {
		pa := a.as.Translate(va)
		res := a.h.accessState(a.core, pa)
		base := a.h.latency(res.level)
		if base > maxBase {
			maxBase = base
		}
		if i > 0 {
			total += lat.Drain[res.level]
		}
		if res.level > L2Hit {
			misses++
		}
		// Advance the clock incrementally so background noise interleaves
		// with long traversals at the right granularity.
		a.h.clk.Advance(clock.Cycles(lat.Issue + lat.Drain[res.level]))
	}
	total += maxBase
	a.h.clk.Advance(clock.Cycles(maxBase))
	return clock.Cycles(a.h.observe(total)), misses
}

// LoadShared performs the two-thread access pattern from the paper (§4.2):
// the main thread loads the line (taking it Exclusive, SF-tracked) and a
// helper thread on another core repeats the access, downgrading the line
// to Shared so it is installed in the LLC. The pattern first displaces the
// main thread's private copy so the access transits the LLC even for
// recently touched lines (as the real dual-chase pattern guarantees). The
// helper runs concurrently, so the main thread is charged only a small
// synchronization overhead on top of its own access.
func (a *Agent) LoadShared(helper *Agent, va memory.VAddr) clock.Cycles {
	a.h.dropPrivate(a.core, a.as.Translate(va))
	lat1, _ := a.Access(va)
	pa := helper.as.Translate(va)
	helper.h.accessState(helper.core, pa) // helper's concurrent access
	sync := clock.Cycles(a.h.cfg.Lat.Issue * 2)
	a.h.clk.Advance(sync)
	return lat1 + sync
}

// LoadSharedAll applies LoadShared to each address with overlapped main-
// thread accesses, returning total time. The helper echoes each access
// immediately (it runs concurrently, a fixed short distance behind the
// main thread), so every line transitions E->S and is installed in the
// LLC before the main thread's private copy can be displaced by later
// accesses of the batch.
func (a *Agent) LoadSharedAll(helper *Agent, vas []memory.VAddr) clock.Cycles {
	if len(vas) == 0 {
		return 0
	}
	lat := a.h.cfg.Lat
	total := 0.0
	maxBase := 0.0
	for i, va := range vas {
		pa := a.as.Translate(va)
		a.h.dropPrivate(a.core, pa)
		res := a.h.accessState(a.core, pa)
		helper.h.accessState(helper.core, helper.as.Translate(va))
		base := a.h.latency(res.level)
		if base > maxBase {
			maxBase = base
		}
		step := lat.Issue * 2 // main issue + helper sync
		if i > 0 {
			step += lat.Drain[res.level]
		}
		total += step
		a.h.clk.Advance(clock.Cycles(step))
	}
	total += maxBase
	a.h.clk.Advance(clock.Cycles(maxBase))
	return clock.Cycles(total)
}

// DropL1 discards the agent's L1 copy of the line at no time cost,
// modelling a pattern step that forces the next touch to reach the L2.
func (a *Agent) DropL1(va memory.VAddr) { a.h.dropL1(a.core, a.as.Translate(va)) }

// EvictPrivateQuiet displaces the line from the agent's own L1 and L2 at
// no time cost — the displacement is a side effect of an access pattern
// whose cost is charged by the batch model (see dropPrivate).
func (a *Agent) EvictPrivateQuiet(va memory.VAddr) {
	a.h.dropPrivate(a.core, a.as.Translate(va))
}

// AccessSeqNoChain performs dependent accesses over a small, TLB-warm
// working set: each access pays its base latency serially but no
// page-walk chain overhead. Prime+Scope's flush-reload and alternating
// pointer-chase prime patterns operate in this regime.
func (a *Agent) AccessSeqNoChain(vas []memory.VAddr) clock.Cycles {
	var total clock.Cycles
	for _, va := range vas {
		pa := a.as.Translate(va)
		res := a.h.accessState(a.core, pa)
		lat := a.h.latency(res.level) + a.h.cfg.Lat.Issue
		a.h.clk.Advance(clock.Cycles(lat))
		total += clock.Cycles(lat)
	}
	return total
}

// FlushAll clflushes each address, returning total time.
func (a *Agent) FlushAll(vas []memory.VAddr) clock.Cycles {
	var total clock.Cycles
	for _, va := range vas {
		total += a.Flush(va)
	}
	return total
}

// Flush models clflush: the line is evicted from the entire hierarchy.
func (a *Agent) Flush(va memory.VAddr) clock.Cycles {
	pa := a.as.Translate(va)
	a.h.flushLine(a.core, pa)
	c := clock.Cycles(a.h.cfg.Lat.Flush)
	a.h.clk.Advance(c)
	return c
}

// EvictPrivate displaces the line from this agent's own L1 and L2 without
// disturbing the LLC or SF. Real attack code achieves this by touching
// conflicting lines it already owns (after L2-candidate filtering, every
// candidate is L2-congruent with the target, so traversal displaces the
// private copy as a side effect); modelling it as a primitive keeps
// TestEviction implementations readable. The small cost models the
// conflicting accesses.
func (a *Agent) EvictPrivate(va memory.VAddr) clock.Cycles {
	pa := a.as.Translate(va)
	tag := toTag(pa)
	c := &a.h.cores[a.core]
	c.l1.Remove(a.h.l1Index(pa), tag)
	c.l2.Remove(a.h.l2Index(pa), tag)
	cost := clock.Cycles(a.h.cfg.Lat.Base[L2Hit] * 4)
	a.h.clk.Advance(cost)
	return cost
}

// Idle advances the agent's view of time without touching the hierarchy
// (a spin-wait).
func (a *Agent) Idle(d clock.Cycles) {
	a.h.clk.Advance(d)
	a.h.drainScheduled()
}

// Now returns the jittered current timestamp as the attacker reads it.
func (a *Agent) Now() clock.Cycles { return a.h.clk.Read() }
