package hierarchy

import (
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/memory"
)

func toTag(pa memory.PAddr) cache.Tag { return cache.Tag(pa.Line()) }

// Event is an externally scheduled access: the victim's code fetches are
// enqueued at absolute virtual times and applied to the hierarchy as the
// clock passes them, independent of what the attacker is doing.
type Event struct {
	Time clock.Cycles
	Core int
	PA   memory.PAddr
	// Refetch drops the core's private copies before the access so it
	// re-allocates an SF entry (a sender/victim deliberately signalling
	// through the set evicts its own copy between accesses; code fetches
	// likewise re-miss after Prime+Probe evicted the line).
	Refetch bool
	// Done, when non-nil, is invoked after the access is applied; the
	// victim package uses it to record ground truth.
	Done func(t clock.Cycles)
}

// eventQueue is a binary min-heap ordered by Event.Time. The sift
// routines replicate container/heap's up/down exactly — pop order for
// equal-time events is part of the determinism contract — but operate on
// Event values directly, avoiding the interface{} boxing (one heap
// allocation per event) the stdlib API imposes.
type eventQueue struct {
	events   []Event
	draining bool
}

func (q *eventQueue) Len() int           { return len(q.events) }
func (q *eventQueue) less(i, j int) bool { return q.events[i].Time < q.events[j].Time }
func (q *eventQueue) swap(i, j int)      { q.events[i], q.events[j] = q.events[j], q.events[i] }

func (q *eventQueue) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !q.less(j, i) {
			break
		}
		q.swap(i, j)
		j = i
	}
}

func (q *eventQueue) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !q.less(j, i) {
			break
		}
		q.swap(i, j)
		i = j
	}
}

func (q *eventQueue) push(e Event) {
	q.events = append(q.events, e)
	q.up(len(q.events) - 1)
}

func (q *eventQueue) popMin() Event {
	n := len(q.events) - 1
	q.swap(0, n)
	q.down(0, n)
	e := q.events[n]
	q.events[n].Done = nil // release the callback for the collector
	q.events = q.events[:n]
	return e
}

// Schedule enqueues an external access at an absolute time. Events in the
// past (relative to the current clock) are applied at the next drain.
func (h *Host) Schedule(e Event) {
	h.sched.push(e)
}

// ScheduledLen returns the number of pending scheduled events.
func (h *Host) ScheduledLen() int { return h.sched.Len() }

// ClearScheduled drops all pending scheduled events (used between
// experiment trials).
func (h *Host) ClearScheduled() { h.sched.events = h.sched.events[:0] }

// drainScheduled applies every scheduled event whose time has passed.
// It re-enters accessState, so a guard prevents recursion: events applied
// while draining do not recursively drain.
func (h *Host) drainScheduled() {
	if h.sched.draining || len(h.sched.events) == 0 {
		return
	}
	h.sched.draining = true
	now := h.clk.Now()
	for h.sched.Len() > 0 && h.sched.events[0].Time <= now {
		e := h.sched.popMin()
		if e.Refetch {
			h.dropPrivate(e.Core, e.PA)
		}
		h.accessState(e.Core, e.PA)
		if e.Done != nil {
			e.Done(e.Time)
		}
	}
	h.sched.draining = false
}
