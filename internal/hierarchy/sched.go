package hierarchy

import (
	"container/heap"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/memory"
)

func toTag(pa memory.PAddr) cache.Tag { return cache.Tag(pa.Line()) }

// Event is an externally scheduled access: the victim's code fetches are
// enqueued at absolute virtual times and applied to the hierarchy as the
// clock passes them, independent of what the attacker is doing.
type Event struct {
	Time clock.Cycles
	Core int
	PA   memory.PAddr
	// Refetch drops the core's private copies before the access so it
	// re-allocates an SF entry (a sender/victim deliberately signalling
	// through the set evicts its own copy between accesses; code fetches
	// likewise re-miss after Prime+Probe evicted the line).
	Refetch bool
	// Done, when non-nil, is invoked after the access is applied; the
	// victim package uses it to record ground truth.
	Done func(t clock.Cycles)
}

type eventQueue struct {
	events   []Event
	draining bool
}

func (q *eventQueue) Len() int           { return len(q.events) }
func (q *eventQueue) Less(i, j int) bool { return q.events[i].Time < q.events[j].Time }
func (q *eventQueue) Swap(i, j int)      { q.events[i], q.events[j] = q.events[j], q.events[i] }
func (q *eventQueue) Push(x interface{}) { q.events = append(q.events, x.(Event)) }
func (q *eventQueue) Pop() interface{} {
	old := q.events
	n := len(old)
	e := old[n-1]
	q.events = old[:n-1]
	return e
}

// Schedule enqueues an external access at an absolute time. Events in the
// past (relative to the current clock) are applied at the next drain.
func (h *Host) Schedule(e Event) {
	heap.Push(&h.sched, e)
}

// ScheduledLen returns the number of pending scheduled events.
func (h *Host) ScheduledLen() int { return h.sched.Len() }

// ClearScheduled drops all pending scheduled events (used between
// experiment trials).
func (h *Host) ClearScheduled() { h.sched.events = h.sched.events[:0] }

// drainScheduled applies every scheduled event whose time has passed.
// It re-enters accessState, so a guard prevents recursion: events applied
// while draining do not recursively drain.
func (h *Host) drainScheduled() {
	if h.sched.draining {
		return
	}
	h.sched.draining = true
	now := h.clk.Now()
	for h.sched.Len() > 0 && h.sched.events[0].Time <= now {
		e := heap.Pop(&h.sched).(Event)
		if e.Refetch {
			h.dropPrivate(e.Core, e.PA)
		}
		h.accessState(e.Core, e.PA)
		if e.Done != nil {
			e.Done(e.Time)
		}
	}
	h.sched.draining = false
}
