package hierarchy

import (
	"testing"

	"repro/internal/defense"
	"repro/internal/tenant"
)

// defenseSpecs is one spec per model family, exercised by the generic
// host-level tests below.
var defenseSpecs = []defense.Spec{
	{Model: "partition", Ways: 4},
	{Model: "randomize", Period: 5000},
	{Model: "scatter"},
	{Model: "quiesce", Quantum: 256, Jitter: 8},
}

// TestDefendedHostDeterminism: every defended host replays identically
// from equal seeds (the trace fingerprint of tenant_test.go).
func TestDefendedHostDeterminism(t *testing.T) {
	for _, sp := range defenseSpecs {
		cfg := Scaled(2).WithCloudNoise().WithDefense(sp)
		h1 := NewHost(cfg, 77)
		h2 := NewHost(cfg, 77)
		equalTraces(t, sp.Model, h1, h2)
	}
}

// TestDefenseResetEquivalence: a defended host reset to a seed replays a
// freshly built host with that seed — the host-pool recycling contract,
// now covering defense state (rekey epochs, skew keys).
func TestDefenseResetEquivalence(t *testing.T) {
	for _, sp := range defenseSpecs {
		cfg := Scaled(2).WithCloudNoise().WithDefense(sp)
		recycled := NewHost(cfg, 1)
		trace(recycled) // dirty the host (and any defense epoch state)
		recycled.Reset(99)
		fresh := NewHost(cfg, 99)
		equalTraces(t, sp.Model, recycled, fresh)
	}
}

// TestDefenseValidation: geometry cross-checks reject partitions that
// would leave a shared structure without ways on one side.
func TestDefenseValidation(t *testing.T) {
	base := Scaled(2) // 8-way SF over a 7-way LLC slice
	if err := base.WithDefense(defense.Spec{Model: "partition", Ways: 7}).Validate(); err == nil {
		t.Error("partition at LLCWays must be rejected")
	}
	if err := base.WithDefense(defense.Spec{Model: "partition", Ways: 6}).Validate(); err != nil {
		t.Errorf("partition ways=6 on a 7-way LLC should validate: %v", err)
	}
	if err := base.WithDefense(defense.Spec{Model: "bogus"}).Validate(); err == nil {
		t.Error("unknown defense model must be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewHost must panic on an invalid defense")
		}
	}()
	NewHost(base.WithDefense(defense.Spec{Model: "partition", Ways: 7}), 1)
}

// TestPartitionHidesVictimFromAttacker is the end-to-end isolation
// property: with a way partition, a victim hammering its own lines can
// never displace an attacker's SF/LLC entries, so the attacker's primes
// observe nothing.
func TestPartitionHidesVictimFromAttacker(t *testing.T) {
	cfg := Scaled(2)
	cfg.NoiseRate = 0
	cfg = cfg.WithDefense(defense.Spec{Model: "partition", Ways: 4})
	h := NewHost(cfg, 5)
	att := h.NewAgent(0)
	vic := h.NewAgent(2)

	// The attacker occupies one SF set with 4 lines (its whole region).
	buf := att.Alloc(4096)
	target := att.SetOf(buf.LineAt(0, 0))
	var mine []int
	for p := 0; p < buf.Pages && len(mine) < 4; p++ {
		if att.SetOf(buf.LineAt(p, 0)) == target {
			mine = append(mine, p)
		}
	}
	if len(mine) < 4 {
		t.Skip("not enough congruent attacker lines found")
	}
	for _, p := range mine {
		att.Access(buf.LineAt(p, 0))
	}
	// The victim floods the same physical set with dozens of lines.
	vbuf := vic.Alloc(8192)
	flooded := 0
	for p := 0; p < vbuf.Pages && flooded < 24; p++ {
		if vic.SetOf(vbuf.LineAt(p, 0)) == target {
			vic.Access(vbuf.LineAt(p, 0))
			flooded++
		}
	}
	if flooded < 8 {
		t.Skip("not enough congruent victim lines found")
	}
	// Every attacker line must still be SF-tracked: re-access hits private
	// caches or SF, never DRAM-after-back-invalidation.
	for _, p := range mine {
		if !h.InSF(att.Translate(buf.LineAt(p, 0))) {
			t.Fatal("victim traffic displaced an attacker SF entry across the partition")
		}
	}
}

// TestConfigKeyValueBased pins the host-pool identity fix: Key must be a
// function of field VALUES, so two configs that differ only in pointer
// identity (distinct but equal Defense specs, separately built tenant
// slices) share one pool entry, while any value difference still
// separates them.
func TestConfigKeyValueBased(t *testing.T) {
	mk := func() Config {
		return Scaled(2).
			WithTenants(tenant.Spec{Model: "burst", Rate: 34.5, LLCProb: 0.5}).
			WithDefense(defense.Spec{Model: "partition", Ways: 4})
	}
	a, b := mk(), mk()
	if a.Defense == b.Defense {
		t.Fatal("test setup: specs must be distinct pointers")
	}
	if a.Key() != b.Key() {
		t.Fatalf("equal configs produced different keys:\n%s\nvs\n%s", a.Key(), b.Key())
	}
	// Value differences must still separate.
	c := mk().WithDefense(defense.Spec{Model: "partition", Ways: 5})
	if c.Key() == a.Key() {
		t.Error("different defense parameters collapsed to one key")
	}
	d := mk()
	d.Defense = nil
	if d.Key() == a.Key() {
		t.Error("defended and undefended configs collapsed to one key")
	}
	e := mk()
	e.LLCWays++
	if e.Key() == a.Key() {
		t.Error("different geometry collapsed to one key")
	}
}
