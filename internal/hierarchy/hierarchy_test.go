package hierarchy

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/memory"
)

func quietScaled() Config {
	c := Scaled(4)
	c.NoiseRate = 0
	return c
}

func TestAccessLevels(t *testing.T) {
	h := NewHost(quietScaled(), 1)
	a := h.NewAgent(0)
	buf := a.Alloc(1)
	va := buf.LineAt(0, 0)

	if _, lvl := a.Access(va); lvl != DRAM {
		t.Fatalf("first access level = %v, want DRAM", lvl)
	}
	if _, lvl := a.Access(va); lvl != L1Hit {
		t.Fatalf("second access level = %v, want L1", lvl)
	}
	if !h.InSF(a.Translate(va)) {
		t.Fatal("line should be SF-tracked after an exclusive load")
	}
	if h.InLLC(a.Translate(va)) {
		t.Fatal("exclusive line must not be LLC-resident (non-inclusive)")
	}
}

func TestSharingInsertsIntoLLC(t *testing.T) {
	h := NewHost(quietScaled(), 2)
	a := h.NewAgent(0)
	helper := h.NewAgentSharing(1, a.AddressSpace())
	buf := a.Alloc(1)
	va := buf.LineAt(0, 0)

	a.LoadShared(helper, va)
	pa := a.Translate(va)
	if !h.InLLC(pa) {
		t.Fatal("shared line should be LLC-resident")
	}
	if h.InSF(pa) {
		t.Fatal("shared line should not be SF-tracked")
	}
	// Taking the line exclusive again removes it from the LLC.
	a.EvictPrivate(va)
	helperPA := helper.Translate(va)
	_ = helperPA
	if _, lvl := a.Access(va); lvl != LLCHit && lvl != L1Hit && lvl != L2Hit {
		t.Fatalf("re-access level = %v", lvl)
	}
}

func TestSFForward(t *testing.T) {
	h := NewHost(quietScaled(), 3)
	a := h.NewAgent(0)
	b := h.NewAgentSharing(2, a.AddressSpace())
	buf := a.Alloc(1)
	va := buf.LineAt(0, 0)

	a.Access(va)
	if _, lvl := b.Access(va); lvl != SFForward {
		t.Fatalf("cross-core access level = %v, want SF-fwd", lvl)
	}
	pa := a.Translate(va)
	if !h.InLLC(pa) {
		t.Fatal("line should be LLC-resident after E->S downgrade")
	}
}

func TestSFEvictionBackInvalidates(t *testing.T) {
	cfg := quietScaled()
	h := NewHost(cfg, 4)
	a := h.NewAgent(0)

	// Find SFWays+1 congruent lines by privileged inspection.
	buf := a.Alloc(4096)
	target := h.SetOf(a.Translate(buf.LineAt(0, 0)))
	var congruent []memory.VAddr
	for p := 0; p < buf.Pages && len(congruent) < cfg.SFWays+1; p++ {
		va := buf.LineAt(p, 0)
		if h.SetOf(a.Translate(va)) == target {
			congruent = append(congruent, va)
		}
	}
	if len(congruent) < cfg.SFWays+1 {
		t.Skipf("not enough congruent lines found (%d)", len(congruent))
	}
	ta := congruent[0]
	a.Access(ta)
	for _, va := range congruent[1:] {
		a.Access(va)
	}
	pa := a.Translate(ta)
	if h.InSF(pa) {
		t.Fatal("ta's SF entry should have been evicted by SFWays fills")
	}
	if h.InPrivate(0, pa) {
		t.Fatal("SF eviction must back-invalidate the private copy")
	}
}

func TestL1SurvivesL2Thrashing(t *testing.T) {
	cfg := quietScaled()
	h := NewHost(cfg, 5)
	a := h.NewAgent(0)
	buf := a.Alloc(1 + 4*cfg.L2Ways*cfg.L2Uncertainty())

	ta := buf.LineAt(0, 0)
	a.Access(ta)
	pa := a.Translate(ta)
	// Thrash the L2 with same-offset lines, touching ta (L1) between
	// every fill as a scope probe would.
	for p := 1; p < buf.Pages; p++ {
		a.Access(buf.LineAt(p, 0))
		if _, lvl := a.Access(ta); lvl != L1Hit {
			t.Fatalf("scope probe at page %d served from %v, want L1", p, lvl)
		}
	}
	if !h.InSF(pa) {
		t.Fatal("ta must stay SF-tracked while L1-resident")
	}
}

func TestNoiseEvictsOverTime(t *testing.T) {
	cfg := Scaled(4).WithCloudNoise()
	h := NewHost(cfg, 6)
	a := h.NewAgent(0)
	buf := a.Alloc(1)
	va := buf.LineAt(0, 0)
	a.Access(va)
	pa := a.Translate(va)
	if !h.InSF(pa) {
		t.Fatal("line should be SF-tracked")
	}
	// Idle for ~10 ms of virtual time: at 11.5 accesses/ms the SF set
	// receives ~115 background accesses, far more than SFWays.
	a.Idle(20_000_000)
	// Touch the set via a colliding access to trigger the lazy sync.
	if _, lvl := a.Access(va); lvl == L1Hit {
		// The private copy should have been back-invalidated by noise.
		t.Fatal("expected noise to evict the SF entry within 10ms window")
	}
	if h.NoiseEvents == 0 {
		t.Fatal("no noise events recorded")
	}
}

func TestScheduledEvents(t *testing.T) {
	h := NewHost(quietScaled(), 7)
	a := h.NewAgent(0)
	v := h.NewAgent(2)
	buf := v.Alloc(1)
	pa := v.Translate(buf.LineAt(0, 0))

	fired := 0
	h.Schedule(Event{Time: 1000, Core: 2, PA: pa, Done: func(clock.Cycles) { fired++ }})
	a.Idle(500)
	if fired != 0 {
		t.Fatal("event fired early")
	}
	a.Idle(1000)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !h.InSF(pa) {
		t.Fatal("scheduled access should have installed an SF entry")
	}
}
