package hierarchy

import (
	"testing"

	"repro/internal/tenant"
)

// trace runs a fixed access workload on a host and returns a behaviour
// fingerprint: the serving level of every access, the final clock, and
// the background-event counter. Two hosts that agree on all of it have
// replayed the same simulation.
func trace(h *Host) (levels []Level, now uint64, noise uint64) {
	a := h.NewAgent(0)
	buf := a.Alloc(128)
	for i := 0; i < 128; i++ {
		_, l := a.Access(buf.LineAt(i, 0))
		levels = append(levels, l)
	}
	// Enough idle spans that phased tenants (burst off-phases average
	// several ms) are overwhelmingly likely to fire at least once.
	for round := 0; round < 16; round++ {
		a.Idle(2_000_000) // 1 ms of background activity
		for i := 0; i < 128; i += 3 {
			_, l := a.Access(buf.LineAt(i, 0))
			levels = append(levels, l)
		}
	}
	return levels, uint64(h.Clock().Now()), h.NoiseEvents
}

func equalTraces(t *testing.T, label string, h1, h2 *Host) {
	t.Helper()
	l1, t1, n1 := trace(h1)
	l2, t2, n2 := trace(h2)
	if t1 != t2 || n1 != n2 {
		t.Fatalf("%s: clock %d vs %d, noise events %d vs %d", label, t1, t2, n1, n2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("%s: access %d served from %v vs %v", label, i, l1[i], l2[i])
		}
	}
}

// TestPoissonShimByteIdentity pins the tentpole back-compat contract:
// a host configured through the legacy NoiseRate/NoiseLLCProb knobs and
// one configured with the equivalent explicit poisson tenant spec must
// replay the exact same simulation — same serving levels, same clock,
// same noise-event count — because both paths feed the same per-cycle
// rate to the same model and draw from the host stream in the same
// order.
func TestPoissonShimByteIdentity(t *testing.T) {
	legacy := Scaled(4).WithCloudNoise()
	explicit := Scaled(4).WithTenants(tenant.Spec{Model: "poisson", Rate: 11.5, LLCProb: legacy.NoiseLLCProb})
	h1 := NewHost(legacy, 1234)
	h2 := NewHost(explicit, 1234)
	equalTraces(t, "legacy vs explicit poisson", h1, h2)
}

// TestTenantHostDeterminism: every model family replays identically
// from equal seeds, and produces background events at all.
func TestTenantHostDeterminism(t *testing.T) {
	for _, spec := range []tenant.Spec{
		{Model: "poisson", Rate: 11.5, LLCProb: 0.5},
		{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.2, OnMs: 1},
		{Model: "stream", Rate: 46, LLCProb: 0.5, Width: 4},
		{Model: "hotset", Rate: 23, LLCProb: 0.5, HotFrac: 0.5},
		{Model: "churn", Rate: 23, LLCProb: 0.5, ArrivalsPerMs: 0.5, LifeMs: 2, FootprintFrac: 0.5},
	} {
		cfg := Scaled(2).WithTenants(spec)
		h1 := NewHost(cfg, 77)
		h2 := NewHost(cfg, 77)
		equalTraces(t, spec.Model, h1, h2)
		if h1.NoiseEvents == 0 {
			t.Errorf("%s: workload produced no background events", spec.Model)
		}
	}
}

// TestTenantResetEquivalence: a pooled host recycled with Reset must
// replay a fresh host exactly, including lazily built tenant schedule
// state (burst phases, churn arrivals) — the engine's host-pool
// contract extended to structured tenants.
func TestTenantResetEquivalence(t *testing.T) {
	for _, spec := range []tenant.Spec{
		{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.2, OnMs: 1},
		{Model: "stream", Rate: 46, LLCProb: 0.5, Width: 4},
		{Model: "hotset", Rate: 23, LLCProb: 0.5, HotFrac: 0.5},
		{Model: "churn", Rate: 23, LLCProb: 0.5, ArrivalsPerMs: 0.5, LifeMs: 2, FootprintFrac: 0.5},
	} {
		cfg := Scaled(2).WithTenants(spec)
		fresh := NewHost(cfg, 99)
		recycled := NewHost(cfg, 31)
		trace(recycled) // accumulate tenant schedule + cache state
		recycled.Reset(99)
		equalTraces(t, spec.Model+" reset-vs-fresh", fresh, recycled)
	}
}

// TestMultipleTenantsCompose: several tenants run side by side and the
// composite host still replays deterministically.
func TestMultipleTenantsCompose(t *testing.T) {
	cfg := Scaled(2).WithTenants(
		tenant.Spec{Model: "poisson", Rate: 0.29, LLCProb: 0.5},
		tenant.Spec{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.2, OnMs: 1},
	)
	h1 := NewHost(cfg, 5)
	h2 := NewHost(cfg, 5)
	equalTraces(t, "composite", h1, h2)
}

func TestConfigValidate(t *testing.T) {
	if err := Scaled(2).Validate(); err != nil {
		t.Fatalf("shipped config rejected: %v", err)
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.NoiseRate = -1; return c },
		func(c Config) Config { c.NoiseLLCProb = 1.5; return c },
		func(c Config) Config { c.NoiseLLCProb = -0.1; return c },
		func(c Config) Config { c.ReuseInsertProb = 2; return c },
		func(c Config) Config { c.TimerJitter = -3; return c },
		func(c Config) Config { c.Lat.JitterFrac = -0.5; return c },
		func(c Config) Config { return c.WithTenants(tenant.Spec{Model: "nope", Rate: 1}) },
		func(c Config) Config { return c.WithTenants(tenant.Spec{Model: "poisson", Rate: -2}) },
		func(c Config) Config {
			return c.WithTenants(tenant.Spec{Model: "hotset", Rate: 1, HotFrac: 3})
		},
	}
	for i, mutate := range bad {
		cfg := mutate(Scaled(2))
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a nonsense config", i)
			continue
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewHost built a host from a nonsense config", i)
				}
			}()
			NewHost(cfg, 1)
		}()
	}
}

// TestWithNoiseRateRescalesTenants: on a config with structured
// tenants, WithNoiseRate must sweep INTENSITY while preserving the mix
// — the property that keeps llcrepro's noise axes meaningful under a
// -tenants override — and must not alias the original spec slice.
func TestWithNoiseRateRescalesTenants(t *testing.T) {
	base := Scaled(2).WithTenants(
		tenant.Spec{Model: "poisson", Rate: 10, LLCProb: 0.5},
		tenant.Spec{Model: "burst", Rate: 30, LLCProb: 0.5, OnFrac: 0.2, OnMs: 1},
	)
	scaled := base.WithNoiseRate(8)
	if got := scaled.Tenants[0].Rate + scaled.Tenants[1].Rate; got != 8 {
		t.Fatalf("total tenant rate = %g, want 8", got)
	}
	if scaled.Tenants[0].Rate != 2 || scaled.Tenants[1].Rate != 6 {
		t.Fatalf("mix not preserved: %g, %g (want 2, 6)", scaled.Tenants[0].Rate, scaled.Tenants[1].Rate)
	}
	if base.Tenants[0].Rate != 10 {
		t.Fatal("WithNoiseRate aliased the receiver's tenant slice")
	}
	// All-zero declared rates: the requested total splits evenly.
	zero := Scaled(2).WithTenants(
		tenant.Spec{Model: "poisson", LLCProb: 0.5},
		tenant.Spec{Model: "stream", LLCProb: 0.5},
	).WithNoiseRate(8)
	if zero.Tenants[0].Rate != 4 || zero.Tenants[1].Rate != 4 {
		t.Fatalf("zero-rate split = %g, %g (want 4, 4)", zero.Tenants[0].Rate, zero.Tenants[1].Rate)
	}
}

// TestWithTenantsCopies: the spec slice must be copied, not aliased.
func TestWithTenantsCopies(t *testing.T) {
	specs := []tenant.Spec{{Model: "poisson", Rate: 1, LLCProb: 0.5}}
	cfg := Scaled(2).WithTenants(specs...)
	specs[0].Rate = 99
	if cfg.Tenants[0].Rate != 1 {
		t.Fatal("WithTenants aliased the caller's slice")
	}
}
