package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHealthzJSON pins the /healthz document shape: a JSON object with
// status, uptime and the two queue numbers an operator checks first —
// not the bare "ok" string it used to be, which monitoring templates
// could not chart.
func TestHealthzJSON(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status = %q, want ok", h.Status)
	}
	if h.UptimeS < 0 {
		t.Fatalf("healthz uptime_s = %v, want >= 0", h.UptimeS)
	}
	if h.JobsRunning != 0 || h.QueueDepth != 0 {
		t.Fatalf("idle daemon reports jobs_running=%d queue_depth=%d, want 0/0", h.JobsRunning, h.QueueDepth)
	}
}

// TestMetricsEndpoint runs one small campaign to completion and then
// scrapes /metrics: the Prometheus text must carry the daemon gauges
// (queue depth, jobs by state, cells/s) and the campaign counters the
// runner fed through the shared registry. Scraping is read-only
// telemetry — it must not disturb the job or its artifact (determinism
// clause 10; the byte-identity itself is pinned by the campaign and
// CLI tests).
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := tinySpec()
	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == "done" })

	body, ctype := scrapeMetrics(t, ts)
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q, want text/plain; version=0.0.4", ctype)
	}
	for _, want := range []string{
		"# TYPE llcserve_jobs gauge",
		`llcserve_jobs{state="done"} 1`,
		`llcserve_jobs{state="running"} 0`,
		"llcserve_queue_depth 0",
		"llcserve_uptime_seconds ",
		"llcserve_cells_per_second ",
		"llcserve_event_clients 0",
		"# TYPE campaign_cells_total counter",
		`campaign_cells_total{state="computed"} 4`,
		"# TYPE campaign_cell_seconds histogram",
		"campaign_cell_seconds_count 4",
		"# TYPE campaign_append_bytes_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q; got:\n%s", want, body)
		}
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	return string(data), resp.Header.Get("Content-Type")
}
