package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/sweep"

	// Register the end-to-end attack scenarios the test specs sweep.
	_ "repro/internal/scenario"
)

// tinySpec is a fast 4-cell grid; its artifact doubles as the
// byte-identity reference (sweep.Run must produce the same JSON).
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU"},
		Trials:      3,
		Seed:        7,
	}
}

// slowSpec is a 4-cell grid where each cell takes long enough (~1s)
// that a test can reliably cancel between cells.
func slowSpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      400,
		Seed:        3,
	}
}

func startServer(t *testing.T, dir string) (*Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	s, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.Wait()
	})
	return s, ts, cancel
}

func postSpec(t *testing.T, ts *httptest.Server, spec sweep.Spec) (int, job) {
	t.Helper()
	return postSpecURL(t, ts.URL+"/api/v1/jobs", spec)
}

// postSpecRange submits the cell range [start, end) of spec.
func postSpecRange(t *testing.T, ts *httptest.Server, spec sweep.Spec, start, end int) (int, job) {
	t.Helper()
	return postSpecURL(t, fmt.Sprintf("%s/api/v1/jobs?start=%d&end=%d", ts.URL, start, end), spec)
}

func postSpecURL(t *testing.T, url string, spec sweep.Spec) (int, job) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding job: %v", err)
	}
	return resp.StatusCode, j
}

func getStatus(t *testing.T, ts *httptest.Server, id string) job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", resp.StatusCode)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return j
}

// waitState polls the status endpoint until pred holds or the deadline
// passes.
func waitState(t *testing.T, ts *httptest.Server, id string, what string, pred func(job) bool) job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j := getStatus(t, ts, id)
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last: %s %d/%d (%s)", id, what, j.State, j.Done, j.Total, j.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitRunResult(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := tinySpec()

	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d, want 201", code)
	}
	if j.ID != jobID(specNormalized(spec), 0, 0) || j.Total != 4 {
		t.Fatalf("job = %+v", j)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Done != 4 || done.Error != "" {
		t.Fatalf("done job = %+v", done)
	}

	// Resubmitting the identical spec attaches idempotently.
	code, j2 := postSpec(t, ts, spec)
	if code != http.StatusOK || j2.ID != j.ID || j2.State != stateDone {
		t.Fatalf("resubmit: status %d job %+v", code, j2)
	}

	// The served artifact must be byte-identical to the flattened
	// sweep.Run path — the campaign layer's central contract.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", resp.StatusCode, got.String())
	}
	res, err := sweep.Run(context.Background(), spec, 1)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatalf("encoding reference: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("served artifact differs from sweep.Run artifact")
	}
}

func specNormalized(spec sweep.Spec) sweep.Spec {
	spec.Normalize()
	return spec
}

func TestEventsStreamBacklogAndCounts(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	_, j := postSpec(t, ts, tinySpec())
	waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var evs []campaign.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Done != i+1 || ev.Total != 4 || ev.Skipped {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	for _, body := range []string{
		"{not json",
		`{"unknown_field": 1}`,
		`{"experiments": ["no/such/experiment"], "trials": 3}`,
		`{"trials": -1}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// Range submissions must be validated against the spec's own grid:
// half-open, inside [0, total), and with both bounds present.
func TestSubmitRejectsBadRanges(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	for _, q := range []string{
		"?start=1",          // end missing
		"?end=3",            // start missing
		"?start=a&end=3",    // non-numeric
		"?start=-1&end=2",   // negative
		"?start=2&end=2",    // empty range
		"?start=3&end=2",    // inverted
		"?start=0&end=5",    // beyond the 4-cell grid
		"?start=99&end=100", // entirely outside
	} {
		code, _ := postSpecURL(t, ts.URL+"/api/v1/jobs"+q, tinySpec())
		if code != http.StatusBadRequest {
			t.Fatalf("range %q: status %d, want 400", q, code)
		}
	}
}

func TestUnknownJobIs404AndEarlyResultIs409(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/api/v1/jobs/deadbeefdeadbeef")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}

	_, j := postSpec(t, ts, slowSpec())
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before done: status %d, want 409", resp.StatusCode)
	}
}

// The artifact endpoint's error paths: unknown job 404, not-done 409,
// wrong HTTP method 405 (the mux method patterns), and a done range
// job refusing the result endpoint with 409 because it has no
// aggregate.
func TestArtifactEndpointErrorPaths(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())

	resp, err := http.Get(ts.URL + "/api/v1/jobs/deadbeefdeadbeef/artifact")
	if err != nil {
		t.Fatalf("GET artifact: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job artifact: status %d, want 404", resp.StatusCode)
	}

	// A running (or queued) job must refuse the download — its log is
	// mid-append and a coordinator must never merge a half-computed
	// range.
	_, j := postSpec(t, ts, slowSpec())
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/artifact")
	if err != nil {
		t.Fatalf("GET artifact: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("artifact before done: status %d, want 409", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/artifact", "", nil)
	if err != nil {
		t.Fatalf("POST artifact: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST to artifact endpoint: status %d, want 405", resp.StatusCode)
	}
}

// TestRangeJobLifecycle drives one cell-range lease end to end: submit
// [1, 3) of a 4-cell grid, watch it run exactly 2 cells, refuse the
// result endpoint (no aggregate), and download a checkpoint log
// holding exactly the range's keys with decodable payloads.
func TestRangeJobLifecycle(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := specNormalized(tinySpec())
	cls := sweep.Expand(spec)

	code, j := postSpecRange(t, ts, spec, 1, 3)
	if code != http.StatusCreated {
		t.Fatalf("submit range: status %d, want 201", code)
	}
	wantID := fmt.Sprintf("%016x-r1-3", campaign.Fingerprint(spec))
	if j.ID != wantID || j.Total != 2 || j.CellStart != 1 || j.CellEnd != 3 {
		t.Fatalf("range job = %+v, want ID %s Total 2", j, wantID)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Done != 2 || done.Error != "" {
		t.Fatalf("done range job = %+v", done)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of range job: status %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/artifact")
	if err != nil {
		t.Fatalf("GET artifact: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact: status %d, want 200", resp.StatusCode)
	}
	dst := filepath.Join(t.TempDir(), "range.cells")
	f, err := os.Create(dst)
	if err != nil {
		t.Fatalf("creating download target: %v", err)
	}
	if _, err := f.ReadFrom(resp.Body); err != nil {
		t.Fatalf("downloading artifact: %v", err)
	}
	f.Close()
	keys := []string{cls[1].Key, cls[2].Key}
	n, err := artifact.CheckKeys(dst, campaign.Fingerprint(spec), keys)
	if err != nil {
		t.Fatalf("downloaded log failed verification: %v", err)
	}
	if n != 2 {
		t.Fatalf("downloaded log holds %d records, want 2", n)
	}

	// The same grid's other range is a distinct job.
	code, j2 := postSpecRange(t, ts, spec, 0, 1)
	if code != http.StatusCreated || j2.ID == j.ID {
		t.Fatalf("second range: status %d id %s (first was %s)", code, j2.ID, j.ID)
	}
}

// TestRangeJobRestartDetection restarts a daemon over a data directory
// holding one finished and one never-started range job: done-ness must
// be re-derived from the checkpoint log itself (range jobs have no
// result artifact), and the unfinished one must surface as interrupted.
func TestRangeJobRestartDetection(t *testing.T) {
	dir := t.TempDir()
	spec := specNormalized(tinySpec())

	s1, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())
	_, j := postSpecRange(t, ts1, spec, 0, 2)
	waitState(t, ts1, j.ID, "done", func(j job) bool { return j.State == stateDone })
	cancel1()
	s1.Wait()
	ts1.Close()

	// Plant a second range job's spec with no checkpoint log at all: a
	// previous incarnation accepted it but never ran a cell.
	plantID := fmt.Sprintf("%016x-r2-4", campaign.Fingerprint(spec))
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, plantID+".spec.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("planting spec: %v", err)
	}

	s2, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("New (restart): %v", err)
	}
	s2.mu.Lock()
	finished, plant := s2.jobs[j.ID], s2.jobs[plantID]
	s2.mu.Unlock()
	if finished == nil || finished.State != stateDone || finished.Done != 2 {
		t.Fatalf("restart sees finished range job as %+v, want done with 2 cells", finished)
	}
	if finished.doneAt.IsZero() {
		t.Fatalf("restart left doneAt zero; retention would treat the job as infinitely old")
	}
	if plant == nil || plant.State != stateInterrupted {
		t.Fatalf("restart sees planted range job as %+v, want interrupted", plant)
	}
}

// TestCancelThenResubmitResumes is the durability round-trip: cancel a
// running job after at least one cell checkpoints, resubmit the same
// spec, and require the finished artifact byte-identical to an
// uninterrupted run — with the resumed pass skipping verified cells.
func TestCancelThenResubmitResumes(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	spec := slowSpec()
	code, j := postSpec(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, j.ID, "first cell done", func(j job) bool { return j.Done >= 1 })

	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	waitState(t, ts, j.ID, "cancelled", func(j job) bool { return j.State == stateCancelled })

	// Cancelling a terminal job is refused.
	resp, err = http.Post(ts.URL+"/api/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", resp.StatusCode)
	}

	code, _ = postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d, want 202", code)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Skip < 1 {
		t.Fatalf("resumed run skipped %d cells, want >= 1", done.Skip)
	}

	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	res, err := sweep.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	res.WriteJSON(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed artifact differs from uninterrupted sweep artifact")
	}
}

// TestDrainMarksInterruptedAndRestartResumes shuts the daemon down
// mid-campaign and brings a new incarnation up on the same data
// directory: the job must surface as interrupted, resubmit must
// resume, and the artifact must match an uninterrupted run.
func TestDrainMarksInterruptedAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	spec := slowSpec()

	s1, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())
	_, j := postSpec(t, ts1, spec)
	waitState(t, ts1, j.ID, "first cell done", func(j job) bool { return j.Done >= 1 })
	cancel1() // daemon drain: the campaign stops at the next trial boundary
	s1.Wait()
	ts1.Close()

	s2, ts2, _ := startServer(t, dir)
	s2.mu.Lock()
	j2, ok := s2.jobs[j.ID]
	st := stateQueued
	if ok {
		st = j2.State
	}
	s2.mu.Unlock()
	if !ok || st != stateInterrupted {
		t.Fatalf("restarted server sees job as %v (ok=%v), want interrupted", st, ok)
	}

	code, _ := postSpec(t, ts2, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after restart: status %d, want 202", code)
	}
	done := waitState(t, ts2, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Skip < 1 {
		t.Fatalf("restarted run skipped %d cells, want >= 1", done.Skip)
	}

	resp, err := http.Get(ts2.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	res, err := sweep.Run(context.Background(), spec, 0)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	var want bytes.Buffer
	res.WriteJSON(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("post-restart artifact differs from uninterrupted sweep artifact")
	}

	// A third incarnation over the finished directory lists it as done.
	s3, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("New (third): %v", err)
	}
	s3.mu.Lock()
	j3 := s3.jobs[j.ID]
	s3.mu.Unlock()
	if j3 == nil || j3.State != stateDone {
		t.Fatalf("third incarnation sees %+v, want done", j3)
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	_, ts, _ := startServer(t, t.TempDir())
	a := tinySpec()
	b := tinySpec()
	b.Seed = 99 // different fingerprint
	_, ja := postSpec(t, ts, a)
	_, jb := postSpec(t, ts, b)
	if ja.ID == jb.ID {
		t.Fatalf("distinct specs share job ID %s", ja.ID)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var jobs []job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != ja.ID || jobs[1].ID != jb.ID {
		ids := make([]string, len(jobs))
		for i, j := range jobs {
			ids[i] = fmt.Sprintf("%s(%s)", j.ID, j.State)
		}
		t.Fatalf("list = %v, want [%s %s]", ids, ja.ID, jb.ID)
	}
}

// Regression: submit used to send the job ID on a bounded channel
// (capacity 1024) while still holding s.mu. Once enough jobs backed up
// the send blocked inside the lock, and every other handler — plus the
// runner itself, whose OnCell callback needs s.mu — deadlocked behind
// it. The queue is an unbounded slice now, so well over 1024 submits
// must complete even when nothing is draining the queue at all.
func TestSubmitManyQueuedDoesNotDeadlock(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Deliberately never s.Start: the queue only grows.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const submits = 1100
	errc := make(chan error, 1)
	go func() {
		for i := range submits {
			spec := tinySpec()
			spec.Seed = uint64(1000 + i) // distinct fingerprint per submit
			body, err := json.Marshal(spec)
			if err == nil {
				var resp *http.Response
				resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusCreated {
						err = fmt.Errorf("submit %d: status %d", i, resp.StatusCode)
					}
				}
			}
			if err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("submitting: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("submit deadlocked with a full queue and no runner")
	}
	s.mu.Lock()
	queued := len(s.queue)
	s.mu.Unlock()
	if queued != submits {
		t.Fatalf("queue holds %d of %d submitted jobs", queued, submits)
	}
}

// Regression: a crash between artifact.Create and the header
// write/sync leaves a .cells file shorter than one header. runJob used
// to artifact.Open it, fail, and fail identically on every resubmit —
// the job was wedged forever even though the log provably held zero
// verified records. OpenOrCreate recreates such a file, so the
// resubmit must now run to done.
func TestTornHeaderCellsRecovers(t *testing.T) {
	dir := t.TempDir()
	spec := specNormalized(tinySpec())
	id := jobID(spec, 0, 0)
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+".spec.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing spec: %v", err)
	}
	// 7 bytes: torn mid-header, no record could have been appended.
	if err := os.WriteFile(filepath.Join(dir, id+".cells"), []byte("LLCA\x01\x00\x00"), 0o644); err != nil {
		t.Fatalf("writing torn log: %v", err)
	}

	_, ts, _ := startServer(t, dir)
	code, j := postSpec(t, ts, tinySpec())
	if code != http.StatusAccepted {
		t.Fatalf("resubmit of interrupted job: status %d, want 202", code)
	}
	done := waitState(t, ts, j.ID, "done", func(j job) bool { return j.State == stateDone })
	if done.Error != "" || done.Done != 4 {
		t.Fatalf("job after torn-header recovery = %+v", done)
	}
}

// Regression: runJob resets j.events when a rerun starts, but a
// connected /events client kept its old slice index and silently
// skipped the first i events of the new run. The generation counter
// must make the stream replay the rerun from its first event.
func TestEventsReplayAfterResubmit(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No runner yet: the job stays queued, exactly the window between a
	// resubmit and its rerun starting.
	_, j0 := postSpec(t, ts, tinySpec())

	// A resubmit re-enqueues without clearing events, so a stale backlog
	// from the previous run is still attached. Fabricate one with Done
	// values no real 4-cell run produces.
	const fakes = 4
	s.mu.Lock()
	jj := s.jobs[j0.ID]
	for i := range fakes {
		jj.events = append(jj.events, campaign.Event{Cell: i, Done: 100 + i, Total: 4})
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j0.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	stale := 0
	for stale < fakes && sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("decoding stale event: %v", err)
		}
		if ev.Done < 100 {
			t.Fatalf("expected fabricated backlog first, got %+v", ev)
		}
		stale++
	}
	if stale != fakes {
		t.Fatalf("read %d of %d stale events before stream ended", stale, fakes)
	}

	// The client is parked at index == fakes. Now let the rerun start
	// and reset the backlog.
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	t.Cleanup(func() {
		cancel()
		s.Wait()
	})

	var live []campaign.Event
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("decoding live event: %v", err)
		}
		live = append(live, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("events stream: %v", err)
	}
	if len(live) != 4 || live[0].Done != 1 || live[3].Done != 4 {
		t.Fatalf("rerun stream = %+v, want the full run replayed from Done=1", live)
	}
}

// Two jobs must run simultaneously under -jobs 2; the FIFO-of-one this
// replaced could never reach that state.
func TestConcurrentJobsRunTogether(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 2, Jobs: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.Wait()
	})

	a := slowSpec()
	b := slowSpec()
	b.Seed = 11
	_, ja := postSpec(t, ts, a)
	_, jb := postSpec(t, ts, b)
	deadline := time.Now().Add(time.Minute)
	for {
		sa := getStatus(t, ts, ja.ID).State
		sb := getStatus(t, ts, jb.ID).State
		if sa == stateRunning && sb == stateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never ran concurrently: %s / %s", sa, sb)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range []string{ja.ID, jb.ID} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatalf("cancel: %v", err)
		}
		resp.Body.Close()
		waitState(t, ts, id, "terminal", func(j job) bool {
			return j.State == stateCancelled || j.State == stateDone
		})
	}
}

// Retention reaps only done jobs — oldest first past the count limit or
// the age limit — and removes the whole spec/cells/result triple plus
// the jobs-map entry. Non-terminal jobs keep their files no matter how
// old they are.
func TestRetentionGC(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Options{Workers: 1, RetainAge: time.Hour, RetainCount: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	plant := func(id string, state jobState, doneAt time.Time) {
		t.Helper()
		for _, p := range []string{s.specPath(id), s.cellsPath(id), s.resultPath(id)} {
			if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
				t.Fatalf("planting %s: %v", p, err)
			}
		}
		s.jobs[id] = &job{ID: id, State: state, doneAt: doneAt}
	}
	const (
		oldDone = "00000000000000aa" // reaped: past the count limit and the age limit
		newDone = "00000000000000bb" // kept: newest done job, within age
		wedged  = "00000000000000cc" // interrupted: never a GC candidate
	)
	plant(oldDone, stateDone, time.Now().Add(-2*time.Hour))
	plant(newDone, stateDone, time.Now())
	plant(wedged, stateInterrupted, time.Now().Add(-48*time.Hour))

	s.gc()

	s.mu.Lock()
	_, hasOld := s.jobs[oldDone]
	_, hasNew := s.jobs[newDone]
	_, hasWedged := s.jobs[wedged]
	s.mu.Unlock()
	if hasOld || !hasNew || !hasWedged {
		t.Fatalf("jobs after gc: old=%v new=%v interrupted=%v, want false/true/true", hasOld, hasNew, hasWedged)
	}
	for id, want := range map[string]bool{oldDone: false, newDone: true, wedged: true} {
		for _, p := range []string{s.specPath(id), s.cellsPath(id), s.resultPath(id)} {
			_, err := os.Stat(p)
			if got := err == nil; got != want {
				t.Fatalf("%s: exists=%v, want %v", p, got, want)
			}
		}
	}
}

// TestDrainLeavesNoGoroutines pins the full drain contract: with
// retention configured (its ticker goroutine running) and an /events
// stream blocked on a QUEUED job (which will never progress in this
// incarnation), cancelling the daemon context must terminate the
// runners, the retention ticker, AND the event stream — Wait must
// return promptly and the goroutine count must fall back to its
// pre-start baseline. The events leg is a regression: the stream's
// wait loop used to block on job state alone, so a drained daemon held
// the handler goroutine (and any HTTP shutdown behind it) forever.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, err := New(t.TempDir(), Options{Workers: 1, Jobs: 1, RetainAge: time.Hour})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())

	// Occupy the single runner slot so the next job stays queued.
	_, running := postSpec(t, ts, slowSpec())
	waitState(t, ts, running.ID, "running", func(j job) bool { return j.State == stateRunning })
	_, queued := postSpec(t, ts, tinySpec())

	// Park an events stream on the queued job; it has no backlog and no
	// terminal state, so the handler blocks in the cond wait.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	streamDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		resp.Body.Close()
		streamDone <- sc.Err()
	}()

	cancel()
	waitDone := make(chan struct{})
	go func() {
		s.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(time.Minute):
		t.Fatal("Wait did not return after drain (runner or retention ticker leaked)")
	}
	select {
	case <-streamDone:
	case <-time.After(30 * time.Second):
		t.Fatal("events stream on a queued job survived the drain")
	}
	ts.Close()

	// Give exiting goroutines a moment to unwind, then require the
	// count back at baseline (with slack for the test's own plumbing
	// and httptest teardown).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after drain: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
