// Package serve implements the campaign daemon behind cmd/llcserve:
// an HTTP/JSON job server that accepts sweep specs, runs them as
// resumable checkpointed campaigns (internal/campaign), and serves
// progress, per-cell completion events, final artifacts and raw
// checkpoint logs. Every job is durable — the checkpoint log under the
// data directory survives crashes and restarts, and resubmitting the
// same spec after either resumes from the verified cells instead of
// recomputing them.
//
// Endpoints (all under /api/v1):
//
//	POST /api/v1/jobs               submit a sweep.Spec (JSON body); ?start=I&end=J submits the cell range [I, J)
//	GET  /api/v1/jobs               list jobs in submission order
//	GET  /api/v1/jobs/{id}          one job's status and progress
//	GET  /api/v1/jobs/{id}/result   final sweep artifact JSON (done full-grid jobs only)
//	GET  /api/v1/jobs/{id}/artifact the job's raw .cells checkpoint log (done jobs only)
//	GET  /api/v1/jobs/{id}/events   ndjson stream of per-cell completions: backlog, then live
//	POST /api/v1/jobs/{id}/cancel   stop a queued or running job at the next trial boundary
//	GET  /healthz                   liveness probe (JSON: status, uptime_s, jobs_running, queue_depth)
//	GET  /metrics                   Prometheus text telemetry (queue depth, jobs by state, cells/s, ...)
//
// A full-grid job's ID is the spec's campaign fingerprint (16 hex
// digits); a range job's ID is the fingerprint plus its half-open cell
// range ("<fp>-r<start>-<end>"), so a job IS its spec-plus-range:
// submitting a byte-different spec or a different range makes a new
// job, resubmitting an identical one attaches to the existing job in
// any state — including interrupted jobs from a previous process,
// which re-enqueue and resume. Range jobs are how a fleet coordinator
// (internal/fleet) leases slices of one grid to many daemons; they
// compute no aggregate (their artifact is the .cells log the
// coordinator downloads and merges centrally), and a restarted daemon
// re-derives their done state from the log itself, since the verified
// records are the run.
//
// The package exists so the daemon can be embedded: cmd/llcserve wraps
// it in flags and signal handling, while fleet tests drive real
// in-process workers through httptest without shelling out.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// jobState is the lifecycle: queued -> running -> one of the terminal
// states. interrupted (daemon shut down mid-run) and cancelled/failed
// jobs re-enqueue when their spec is submitted again; done jobs only
// serve their result.
type jobState string

const (
	stateQueued      jobState = "queued"
	stateRunning     jobState = "running"
	stateDone        jobState = "done"
	stateFailed      jobState = "failed"
	stateCancelled   jobState = "cancelled"
	stateInterrupted jobState = "interrupted"
)

// job is one submitted spec (optionally restricted to a cell range).
// Its mutable fields are guarded by the server mutex; cond broadcasts
// on every event append and state change, which is what the ndjson
// streams block on.
type job struct {
	ID    string     `json:"id"`
	State jobState   `json:"state"`
	Total int        `json:"total_cells"`
	Done  int        `json:"done_cells"`
	Skip  int        `json:"skipped_cells"`
	Error string     `json:"error,omitempty"`
	Spec  sweep.Spec `json:"spec"`
	// CellStart/CellEnd are the half-open Expand-order cell range of a
	// range job; both zero means the full grid. Total counts only the
	// job's own cells.
	CellStart int `json:"cell_start,omitempty"`
	CellEnd   int `json:"cell_end,omitempty"`

	seq       int // submission order for listing
	events    []campaign.Event
	gen       int // bumped when a rerun resets events, so streams replay
	doneAt    time.Time
	cancel    context.CancelFunc
	cancelled bool // cancel endpoint (vs daemon drain) hit while active
}

// ranged reports whether the job owns an explicit cell range rather
// than the full grid.
func (j *job) ranged() bool { return j.CellEnd > 0 }

// Options configures a daemon instance.
type Options struct {
	// Workers is the total cell-worker budget shared by all concurrent
	// jobs (0 = GOMAXPROCS). It never changes any artifact byte.
	Workers int
	// Jobs is how many campaigns run concurrently (<= 0 means 1). Each
	// running job gets max(1, Workers/Jobs) cell workers.
	Jobs int
	// RetainAge garbage-collects done jobs finished longer ago than
	// this (0 = no age limit).
	RetainAge time.Duration
	// RetainCount keeps at most this many done jobs, reaping the oldest
	// first (0 = no count limit).
	RetainCount int
}

// Server is a campaign daemon instance: construct with New, attach
// Handler to an HTTP server, Start the runners, and Wait for them
// after cancelling the start context (drain).
type Server struct {
	dataDir     string
	workers     int // cell workers per running job
	jobSlots    int // concurrent job runners
	retainAge   time.Duration
	retainCount int

	mu    sync.Mutex
	cond  *sync.Cond
	jobs  map[string]*job
	next  int      // next submission sequence number
	queue []string // unbounded FIFO of queued job IDs; cond signals appends

	ctx     context.Context // Start's context; event streams terminate when it dies
	stopped chan struct{}   // closed when every runner has exited

	// metrics is the daemon's telemetry registry, served by GET /metrics
	// and fed by the campaign layer of every job it runs. Telemetry is
	// wall-clock only and never touches job artifacts (determinism
	// clause 10).
	metrics      *obs.Registry
	started      time.Time
	cellsDone    *obs.Counter // campaign_cells_total{state="computed"}
	gcReaped     *obs.Counter
	eventClients *obs.Gauge
}

// Metrics returns the daemon's telemetry registry (live; scrape with
// WritePrometheus or the /metrics endpoint).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// New loads the data directory's jobs: a full-grid spec with a result
// is done, a range job whose checkpoint log verifiably covers its
// whole range is done, and anything else is a campaign a previous
// incarnation never finished — exposed as interrupted so a resubmit
// resumes it.
func New(dataDir string, opts Options) (*Server, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	slots := max(1, opts.Jobs)
	s := &Server{
		dataDir:     dataDir,
		workers:     max(1, budget/slots),
		jobSlots:    slots,
		retainAge:   opts.RetainAge,
		retainCount: opts.RetainCount,
		jobs:        make(map[string]*job),
		stopped:     make(chan struct{}),
		metrics:     obs.NewRegistry(),
		started:     time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.cellsDone = s.metrics.Counter("campaign_cells_total", "state", "computed")
	s.gcReaped = s.metrics.Counter("llcserve_gc_reaped_total")
	s.eventClients = s.metrics.Gauge("llcserve_event_clients")
	specs, err := filepath.Glob(filepath.Join(dataDir, "*.spec.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(specs)
	for _, p := range specs {
		id := strings.TrimSuffix(filepath.Base(p), ".spec.json")
		start, end, err := parseRangeSuffix(id)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", id, err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var spec sweep.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("job %s: %w", id, err)
		}
		spec.Normalize()
		if got := jobID(spec, start, end); got != id {
			return nil, fmt.Errorf("job %s: spec fingerprints as %s (foreign or edited spec file)", id, got)
		}
		total := len(sweep.Expand(spec))
		if end > total || (end > 0 && start >= end) {
			return nil, fmt.Errorf("job %s: cell range [%d, %d) out of range for a %d-cell grid", id, start, end, total)
		}
		j := &job{ID: id, Spec: spec, Total: total, CellStart: start, CellEnd: end, State: stateInterrupted, seq: s.next}
		if j.ranged() {
			j.Total = end - start
		}
		s.next++
		if j.ranged() {
			// A range job has no result artifact; its done state lives in
			// the checkpoint log itself — done exactly when every cell of
			// the range has a verified record with the spec's trial count.
			if n, ok := rangeLogComplete(s.cellsPath(id), spec, start, end); ok {
				j.State = stateDone
				j.Done = n
				if fi, err := os.Stat(s.cellsPath(id)); err == nil {
					j.doneAt = fi.ModTime()
				}
			}
		} else if fi, err := os.Stat(s.resultPath(id)); err == nil {
			j.State = stateDone
			j.Done = j.Total
			// The artifact's install time stands in for the completion
			// time, so retention ages reloaded jobs sensibly.
			j.doneAt = fi.ModTime()
		}
		s.jobs[id] = j
	}
	return s, nil
}

// jobID derives a job's identity: the spec's campaign fingerprint,
// plus the cell range for range jobs — two leases over different
// ranges of one grid are distinct jobs with distinct checkpoint logs.
func jobID(spec sweep.Spec, start, end int) string {
	fp := fmt.Sprintf("%016x", campaign.Fingerprint(spec))
	if end > 0 {
		return fmt.Sprintf("%s-r%d-%d", fp, start, end)
	}
	return fp
}

// parseRangeSuffix splits an on-disk job ID back into its range: a
// bare fingerprint is the full grid (0, 0); "<fp>-r<s>-<e>" is [s, e).
func parseRangeSuffix(id string) (start, end int, err error) {
	base, suffix, ok := strings.Cut(id, "-r")
	if !ok {
		return 0, 0, nil
	}
	ss, es, ok := strings.Cut(suffix, "-")
	if ok && base != "" {
		s, err1 := strconv.Atoi(ss)
		e, err2 := strconv.Atoi(es)
		if err1 == nil && err2 == nil && s >= 0 && e > s {
			return s, e, nil
		}
	}
	return 0, 0, fmt.Errorf("malformed range suffix in job ID %q", id)
}

// rangeLogComplete reports whether the checkpoint log at path verifies
// and covers the whole cell range [start, end) of the spec with
// decodable records; n is the number of verified range cells either
// way.
func rangeLogComplete(path string, spec sweep.Spec, start, end int) (n int, complete bool) {
	l, err := artifact.Open(path, campaign.Fingerprint(spec))
	if err != nil {
		return 0, false
	}
	defer l.Close()
	cls := sweep.Expand(spec)
	for _, c := range cls[start:end] {
		payload, ok := l.Get(c.Key)
		if !ok {
			continue
		}
		if _, err := campaign.DecodeSamples(payload, spec.Trials); err != nil {
			continue
		}
		n++
	}
	return n, n == end-start
}

func (s *Server) specPath(id string) string   { return filepath.Join(s.dataDir, id+".spec.json") }
func (s *Server) cellsPath(id string) string  { return filepath.Join(s.dataDir, id+".cells") }
func (s *Server) resultPath(id string) string { return filepath.Join(s.dataDir, id+".result.json") }

// Start launches the job-runner pool: jobSlots goroutines each pop the
// oldest queued ID and run it, so jobs still start in submission order
// even though up to jobSlots of them run concurrently. ctx is the
// daemon lifetime: when it cancels, running campaigns stop at the next
// trial boundary, the runners exit after marking their jobs
// interrupted, the retention ticker stops, and connected event streams
// terminate. Retention, when configured, sweeps at startup and then
// once a minute.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()
	// Runners and event streams block on the cond (not the ctx), so
	// translate cancellation into a broadcast to wake them.
	stopWake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	var wg sync.WaitGroup
	for range s.jobSlots {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				for len(s.queue) == 0 && ctx.Err() == nil {
					s.cond.Wait()
				}
				if ctx.Err() != nil {
					s.mu.Unlock()
					return
				}
				id := s.queue[0]
				s.queue = s.queue[1:]
				s.mu.Unlock()
				s.runJob(ctx, id)
				s.gc()
			}
		}()
	}
	if s.retainAge > 0 || s.retainCount > 0 {
		// The retention ticker joins the drain WaitGroup like any runner:
		// Wait() must not return while it could still reap files, and a
		// drained daemon must leave no goroutine behind (pinned by the
		// drain goroutine-count test).
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.gc()
			t := time.NewTicker(time.Minute)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s.gc()
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		stopWake()
		close(s.stopped)
	}()
}

// Wait blocks until every runner and the retention ticker have exited
// (drain complete).
func (s *Server) Wait() { <-s.stopped }

// enqueue appends a job ID to the FIFO and wakes an idle runner. The
// caller must hold s.mu; the queue is a slice, so enqueueing never
// blocks no matter how many jobs are backed up (a bounded channel here
// once deadlocked the whole daemon at 1024 queued jobs, because the
// send happened under the same mutex the runner needs to make
// progress).
func (s *Server) enqueue(id string) {
	s.queue = append(s.queue, id)
	s.cond.Broadcast()
}

// gc applies the retention policy: done jobs beyond RetainCount or
// older than RetainAge lose their spec/cells/result triple and their
// jobs-map entry. Only stateDone jobs are candidates — queued, running,
// failed, cancelled and interrupted jobs keep their files, since those
// states still need the spec and checkpoint log to resume.
func (s *Server) gc() {
	if s.retainAge <= 0 && s.retainCount <= 0 {
		return
	}
	s.mu.Lock()
	var done []*job
	for _, j := range s.jobs {
		if j.State == stateDone {
			done = append(done, j)
		}
	}
	// Newest first, so the count limit keeps the most recent artifacts.
	sort.Slice(done, func(a, b int) bool { return done[a].doneAt.After(done[b].doneAt) })
	var evict []*job
	now := time.Now()
	for i, j := range done {
		switch {
		case s.retainCount > 0 && i >= s.retainCount:
			evict = append(evict, j)
		case s.retainAge > 0 && now.Sub(j.doneAt) > s.retainAge:
			evict = append(evict, j)
		}
	}
	for _, j := range evict {
		delete(s.jobs, j.ID)
	}
	s.mu.Unlock()
	for _, j := range evict {
		for _, p := range []string{s.specPath(j.ID), s.cellsPath(j.ID), s.resultPath(j.ID)} {
			if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "llcserve: retention: %v\n", err)
			}
		}
		s.gcReaped.Inc()
		fmt.Fprintf(os.Stderr, "llcserve: retention: reaped done job %s (finished %s)\n",
			j.ID, j.doneAt.Format(time.RFC3339))
	}
}

func (s *Server) runJob(ctx context.Context, id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j.State != stateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.State = stateRunning
	j.Done, j.Skip = 0, 0
	j.Error = ""
	// Resetting the backlog invalidates every connected event stream's
	// cursor; the generation bump tells them to replay from the start of
	// the new run instead of silently skipping its first events.
	j.events = nil
	j.gen++
	j.cancel = cancel
	j.cancelled = false
	s.cond.Broadcast()
	s.mu.Unlock()

	// OpenOrCreate recreates a torn-header log (a crash between Create
	// and the header sync leaves a short file with zero verified
	// records) instead of failing the job on every resubmit forever.
	ckpt, err := artifact.OpenOrCreate(s.cellsPath(id), campaign.Fingerprint(j.Spec))
	var res *sweep.Result
	if err == nil {
		defer ckpt.Close()
		res, _, err = campaign.Run(jctx, j.Spec, campaign.Options{
			Workers:   s.workers,
			Log:       ckpt,
			Obs:       &obs.Sink{Metrics: s.metrics},
			CellStart: j.CellStart,
			CellEnd:   j.CellEnd,
			OnCell: func(ev campaign.Event) {
				s.mu.Lock()
				defer s.mu.Unlock()
				j.events = append(j.events, ev)
				j.Done = ev.Done
				if ev.Skipped {
					j.Skip++
				}
				s.cond.Broadcast()
			},
		})
	}
	if err == nil && !j.ranged() {
		// A range job's artifact IS its checkpoint log (served by the
		// artifact endpoint); only full-grid jobs aggregate a result.
		err = writeResult(s.resultPath(id), res)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.State = stateDone
		j.doneAt = time.Now()
	case j.cancelled:
		j.State = stateCancelled
		j.Error = err.Error()
	case ctx.Err() != nil:
		// Daemon drain, not a job failure: completed cells are in the
		// checkpoint log and the next incarnation resumes this job.
		j.State = stateInterrupted
		j.Error = err.Error()
	default:
		j.State = stateFailed
		j.Error = err.Error()
	}
	s.cond.Broadcast()
}

// writeResult installs the final artifact atomically (temp + rename,
// the CLI convention) so a crash mid-write can never leave a truncated
// result that a restart would mistake for a finished job.
func writeResult(path string, res *sweep.Result) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = res.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
	}
	return err
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	mux.HandleFunc("POST /api/v1/jobs", s.submit)
	mux.HandleFunc("GET /api/v1/jobs", s.list)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifact", s.artifact)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.events)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.cancelJob)
	return mux
}

// Health is the /healthz liveness document.
type Health struct {
	Status      string  `json:"status"`
	UptimeS     float64 `json:"uptime_s"`
	JobsRunning int     `json:"jobs_running"`
	QueueDepth  int     `json:"queue_depth"`
}

// healthz reports liveness plus the two numbers an operator checks
// first: how much is queued and how much is running.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.State == stateRunning {
			running++
		}
	}
	depth := len(s.queue)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status:      "ok",
		UptimeS:     time.Since(s.started).Seconds(),
		JobsRunning: running,
		QueueDepth:  depth,
	})
}

// serveMetrics renders the telemetry registry as Prometheus text
// (format 0.0.4). Point-in-time gauges — queue depth, jobs by state,
// uptime, overall cells/s — are refreshed at scrape time; counters and
// histograms accumulate as jobs run.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth := len(s.queue)
	byState := make(map[jobState]int)
	for _, j := range s.jobs {
		byState[j.State]++
	}
	s.mu.Unlock()
	m := s.metrics
	m.Gauge("llcserve_queue_depth").Set(float64(depth))
	for _, st := range []jobState{stateQueued, stateRunning, stateDone, stateFailed, stateCancelled, stateInterrupted} {
		m.Gauge("llcserve_jobs", "state", string(st)).Set(float64(byState[st]))
	}
	up := time.Since(s.started).Seconds()
	m.Gauge("llcserve_uptime_seconds").Set(up)
	if up > 0 {
		m.Gauge("llcserve_cells_per_second").Set(float64(s.cellsDone.Value()) / up)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WritePrometheus(w)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// submit decodes and validates a spec (plus an optional ?start=I&end=J
// cell range), then either creates a new job or attaches to the
// existing one with the same fingerprint and range. Jobs in a
// resumable terminal state (interrupted, cancelled, failed) re-enqueue
// — the checkpoint log makes the rerun skip verified cells.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	total := len(sweep.Expand(spec))
	start, end, err := parseRangeParams(r, total)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := jobID(spec, start, end)

	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		// Persist the spec before acknowledging: the job must be
		// recoverable the moment the client learns its ID.
		data, err := json.MarshalIndent(spec, "", "  ")
		if err == nil {
			err = os.WriteFile(s.specPath(id), append(data, '\n'), 0o644)
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "persisting spec: %v", err)
			return
		}
		j = &job{ID: id, Spec: spec, Total: total, CellStart: start, CellEnd: end, State: stateQueued, seq: s.next}
		if j.ranged() {
			j.Total = end - start
		}
		s.next++
		s.jobs[id] = j
		s.enqueue(id)
		writeJSON(w, http.StatusCreated, j)
		return
	}
	switch j.State {
	case stateInterrupted, stateCancelled, stateFailed:
		j.State = stateQueued
		j.Error = ""
		s.enqueue(id)
		writeJSON(w, http.StatusAccepted, j)
	default: // queued, running, done: idempotent attach
		writeJSON(w, http.StatusOK, j)
	}
}

// parseRangeParams reads the optional ?start=I&end=J cell-range query
// of a submit: both absent is the full grid, anything else must be a
// valid non-empty half-open range inside it.
func parseRangeParams(r *http.Request, total int) (start, end int, err error) {
	q := r.URL.Query()
	ss, es := q.Get("start"), q.Get("end")
	if ss == "" && es == "" {
		return 0, 0, nil
	}
	if ss == "" || es == "" {
		return 0, 0, fmt.Errorf("cell range needs both start and end (got start=%q end=%q)", ss, es)
	}
	s, err1 := strconv.Atoi(ss)
	e, err2 := strconv.Atoi(es)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("malformed cell range start=%q end=%q", ss, es)
	}
	if s < 0 || e <= s || e > total {
		return 0, 0, fmt.Errorf("cell range [%d, %d) out of range for a %d-cell grid", s, e, total)
	}
	return s, e, nil
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	// Snapshot under the lock: the runner mutates jobs concurrently.
	data := make([]job, len(out))
	for i, j := range out {
		data[i] = *j
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, data)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		httpError(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	snap := *j
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

// result streams the installed artifact file. Only done full-grid jobs
// have one — a range job's output is its checkpoint log (the artifact
// endpoint) — and everything else is 409 so a poller can distinguish
// "not yet" from "never submitted" (404).
func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	st, ranged := j.State, j.ranged()
	s.mu.Unlock()
	if ranged {
		httpError(w, http.StatusConflict, "job %s is a cell-range job with no aggregate; download its artifact instead", j.ID)
		return
	}
	if st != stateDone {
		httpError(w, http.StatusConflict, "job %s is %s, not done", j.ID, st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.resultPath(j.ID))
}

// artifact streams the job's raw .cells checkpoint log — the
// download a fleet coordinator pulls to merge ranges centrally. Only
// done jobs serve it: a running job's log is mid-append, and a
// coordinator must never merge a half-computed range (it would show up
// as missing keys and force a pointless retry loop). http.ServeFile
// sets Content-Length, so a truncated transfer is detectable
// client-side even before the log's own checksums catch it.
func (s *Server) artifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	st := j.State
	s.mu.Unlock()
	if st != stateDone {
		httpError(w, http.StatusConflict, "job %s is %s, not done", j.ID, st)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, s.cellsPath(j.ID))
}

// events streams the job's per-cell completions as ndjson: the full
// backlog first, then live events until the job reaches a terminal
// state, the client disconnects, or the daemon drains (a drained
// daemon terminates open streams — a queued job will never progress in
// this incarnation, and a stream blocked on it would hold the HTTP
// server's shutdown hostage).
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.eventClients.Add(1)
	defer s.eventClients.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// A client disconnect only surfaces as a write error; wake the cond
	// loop when the request dies so the handler can notice and return.
	stop := context.AfterFunc(r.Context(), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	enc := json.NewEncoder(w)
	i, gen := 0, -1
	for {
		s.mu.Lock()
		for {
			if j.gen != gen {
				// A rerun replaced the backlog: restart the cursor so the
				// client sees the new run from its first event instead of
				// silently skipping the first i of them.
				gen, i = j.gen, 0
			}
			if i < len(j.events) || (j.State != stateQueued && j.State != stateRunning) ||
				r.Context().Err() != nil || s.draining() {
				break
			}
			s.cond.Wait()
		}
		if r.Context().Err() != nil ||
			(i >= len(j.events) && (j.State != stateQueued && j.State != stateRunning || s.draining())) {
			s.mu.Unlock()
			return
		}
		ev := j.events[i]
		i++
		s.mu.Unlock()
		if enc.Encode(ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// draining reports whether the Start context has been cancelled. The
// caller must hold s.mu (which orders it against Start setting s.ctx).
func (s *Server) draining() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// cancelJob stops a queued or running job. Running jobs stop at the
// next trial boundary; cells already checkpointed stay durable, so a
// later resubmit resumes rather than restarts.
func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.State {
	case stateQueued:
		j.State = stateCancelled
		j.cancelled = true
		s.cond.Broadcast()
		writeJSON(w, http.StatusOK, j)
	case stateRunning:
		j.cancelled = true
		j.cancel()
		writeJSON(w, http.StatusAccepted, j)
	default:
		httpError(w, http.StatusConflict, "job %s is %s, not cancellable", j.ID, j.State)
	}
}
