package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/probe"
)

// This file defines the cell-experiment registry behind the
// configuration-sweep subsystem (internal/sweep). Where the table/figure
// runners in experiments.go reproduce the paper's fixed environments, a
// cell experiment measures ONE protocol on an ARBITRARY hierarchy
// config, so a sweep can place it in every cell of a replacement-policy
// x associativity x slice-count x noise grid. Cells run as ordinary
// engine trials, which is what lets a sweep flatten its whole grid into
// a single RunTrials call and share per-worker host pools across cells.

// CellTrial runs one trial of a cell experiment on the given config. It
// must obey the engine's determinism contract: all randomness from
// t.Seed (or seeds derived from it), no state outside hosts obtained
// from t.Host.
type CellTrial func(t *Trial, cfg hierarchy.Config) Sample

// Cell describes one registered cell experiment.
type Cell struct {
	ID   string
	Desc string
	// Unit names Sample.Value's unit: "cycles" for durations, "rate" for
	// [0,1] fractions.
	Unit string
	// ConstructionNoise marks cells running the eviction-set construction
	// protocol: on a scaled host their noise rate must be multiplied by
	// ConstructionNoiseScale for a declared paper rate to be equivalent
	// (see that function's comment). Monitoring cells keep raw rates.
	ConstructionNoise bool
	Run               CellTrial
}

var cells = map[string]Cell{}

// RegisterCell adds a cell experiment to the registry. It is exported so
// other packages (internal/scenario) can contribute cells — a scenario
// registered as a cell lets a sweep grid run a whole end-to-end attack
// in every configuration cell, not just a micro-experiment.
func RegisterCell(c Cell) {
	if _, dup := cells[c.ID]; dup {
		panic("experiments: duplicate cell id " + c.ID)
	}
	cells[c.ID] = c
}

// LookupCell returns the cell experiment registered under id.
func LookupCell(id string) (Cell, bool) {
	c, ok := cells[id]
	return c, ok
}

// CellIDs returns the sorted ids of all cell experiments.
func CellIDs() []string {
	ids := make([]string, 0, len(cells))
	for id := range cells {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CellList returns "id  description" lines for every cell experiment,
// sorted by id (the -list output of cmd/llcsweep).
func CellList() []string {
	ids := CellIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		c := cells[id]
		out[i] = fmt.Sprintf("%-16s [%s] %s", c.ID, c.Unit, c.Desc)
	}
	return out
}

func init() {
	// Eviction-set construction cells: one single-set SF build per trial,
	// success = the set verifies, value = construction time.
	for _, algo := range []evset.Pruner{
		evset.GroupTesting{EarlyTermination: true},
		evset.GroupTesting{},
		evset.PrimeScope{},
		evset.PrimeScope{Recharge: true},
		evset.BinSearch{},
	} {
		algo := algo
		RegisterCell(Cell{
			ID:                "evset/" + strings.ToLower(algo.Name()),
			Desc:              fmt.Sprintf("single-set SF eviction-set construction with %s (unfiltered)", algo.Name()),
			Unit:              "cycles",
			ConstructionNoise: true,
			Run: func(t *Trial, cfg hierarchy.Config) Sample {
				ok, d := singleSetTrial(t, cfg, algo, t.Seed, evset.DefaultOptions())
				return Sample{OK: ok, Value: float64(d)}
			},
		})
	}

	// TestEviction timing cells: the Parallel Probing speed claim, per
	// config. One trial = one timed TestEviction over a 3U candidate set.
	RegisterCell(Cell{
		ID:   "probe/parallel",
		Desc: "one parallel TestEviction over a 3U candidate set",
		Unit: "cycles",
		Run:  testEvictionCell(true),
	})
	RegisterCell(Cell{
		ID:   "probe/sequential",
		Desc: "one sequential (pointer-chase) TestEviction over a 3U candidate set",
		Unit: "cycles",
		Run:  testEvictionCell(false),
	})

	// Detection cell: build an eviction set, run the covert channel with
	// Parallel Probing at a 5k-cycle sender interval, value = detection
	// rate. Success = the setup (construction) succeeded, so a policy that
	// defeats construction shows up as a success-rate drop, not a crash.
	// Monitoring timescales are set by the sender interval, which does not
	// scale, so the cell keeps raw noise rates.
	RegisterCell(Cell{
		ID:   "probe/detect",
		Desc: "Parallel Probing covert-channel detection rate (5k-cycle interval)",
		Unit: "rate",
		Run: func(t *Trial, cfg hierarchy.Config) Sample {
			e, lines, alt, sender, ok := CovertSetup(t, cfg, t.Seed)
			if !ok {
				return Sample{}
			}
			m := probe.NewMonitor(e, probe.Parallel, lines).WithAlt(alt)
			res := probe.RunCovertChannel(e, m, 2, sender, 5000, 200)
			return Sample{OK: true, Value: res.DetectionRate}
		},
	})
}

// testEvictionCell builds the TestEviction timing cell for one mode.
func testEvictionCell(parallel bool) CellTrial {
	return func(t *Trial, cfg hierarchy.Config) Sample {
		h := t.Host(cfg, t.Seed)
		e := evset.NewEnv(h, t.Seed^0x5eec)
		u := cfg.LLCUncertainty()
		pool := evset.NewCandidates(e, 3*u+1, 0)
		ta := pool.Addrs[0]
		t0 := h.Clock().Now()
		e.TestEviction(evset.TargetLLC, ta, pool.Addrs[1:], 3*u, parallel)
		return Sample{OK: true, Value: float64(h.Clock().Now() - t0)}
	}
}
