// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the simulated hosts it needs,
// executes the paper's protocol (scaled down by default, paper-scale with
// Options.Full), and emits a report with the measured rows next to the
// paper's published values so the reproduction's *shape* can be checked:
// orderings, ratios and crossovers rather than absolute numbers.
//
// Every runner executes its trials through the parallel trial engine in
// engine.go: RunTrials fans independent trials out over a worker pool
// (Options.Workers, default GOMAXPROCS) and recycles simulated hosts via
// hierarchy.Host.Reset so steady-state trials allocate near-zero.
//
// Determinism contract: for a fixed Options.Seed, a report's Rows are
// byte-identical for every worker count. Each trial derives all of its
// randomness from a per-trial seed drawn from a splitmix64 stream indexed
// by trial number (xrand.Stream), touches no simulated state outside its
// own host, and a pooled host reset to a seed replays exactly the
// behaviour of a freshly built host with that seed. Wall-clock timing is
// therefore reported out-of-band (by cmd/llcrepro, on stderr), never in
// the Report itself.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/defense"
	"repro/internal/hierarchy"
	"repro/internal/tenant"
)

// Options configures a run.
type Options struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Full selects paper-scale geometry (28/22-slice Skylake-SP hosts,
	// sect571r1 victims) instead of the scaled default. Full runs take
	// minutes to hours.
	Full bool
	// Trials overrides the default trial count (0 keeps the default).
	Trials int
	// Workers is the number of parallel trial workers (0 selects
	// GOMAXPROCS, 1 forces sequential execution). Reports are identical
	// for every value; only wall-clock time changes.
	Workers int
	// Tenants, when non-empty, replaces every runner's environment noise
	// (the quiescent-local and Cloud Run presets) with the given
	// structured background tenants (cmd/llcrepro -tenants). Runners
	// that sweep or rescale the noise rate (abl-noise, construction
	// equivalent-noise scaling) still do: with tenants present,
	// Config.WithNoiseRate rescales the tenants' total mean rate while
	// preserving the mix, so intensity axes stay meaningful under an
	// override.
	Tenants []tenant.Spec
	// Defense, when non-nil, deploys the given LLC countermeasure
	// (internal/defense) on every runner's hosts (cmd/llcrepro
	// -defense), so each per-step table and figure can be regenerated
	// against a defended hierarchy.
	Defense *defense.Spec
}

// Report is a rendered experiment result.
type Report struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Paper lines quote what the paper reports, for side-by-side reading.
	Paper []string `json:"paper,omitempty"`
	Notes []string `json:"notes,omitempty"`
}

// FprintJSON renders the report as indented JSON, the machine-readable
// sibling of Fprint.
func (r *Report) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Paper) > 0 {
		fmt.Fprintln(w, "paper:")
		for _, p := range r.Paper {
			fmt.Fprintf(w, "  %s\n", p)
		}
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner executes one experiment.
type Runner func(Options) *Report

// registry maps experiment ids to runners.
var registry = map[string]Runner{}

// descriptions gives the -list output.
var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// List returns all experiment ids with descriptions, sorted.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%-10s %s", id, descriptions[id])
	}
	return out
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Host configurations for the two environments of the paper.

// localConfig returns the quiescent-local host: the 22-slice Xeon Gold
// 6152 at paper scale, a 4-slice scaled host otherwise.
func localConfig(o Options) hierarchy.Config {
	if o.Full {
		return o.tenants(hierarchy.SkylakeSP(22).WithQuiescentNoise())
	}
	return o.tenants(hierarchy.Scaled(4).WithQuiescentNoise())
}

// cloudConfig returns the Cloud Run host: the 28-slice Xeon Platinum
// 8173M at paper scale, a 4-slice scaled host with the measured Cloud
// Run noise rate otherwise.
func cloudConfig(o Options) hierarchy.Config {
	if o.Full {
		return o.tenants(hierarchy.SkylakeSP(28).WithCloudNoise())
	}
	return o.tenants(hierarchy.Scaled(4).WithCloudNoise())
}

// tenants applies the run's environment overrides — tenant workloads
// and the LLC defense — to a runner config. Tenants win over the legacy
// noise knobs inside the hierarchy (the preset NoiseRate becomes
// inert), while later WithNoiseRate calls rescale the tenants' total
// rate in place of the flat knob.
func (o Options) tenants(cfg hierarchy.Config) hierarchy.Config {
	if len(o.Tenants) > 0 {
		cfg = cfg.WithTenants(o.Tenants...)
	}
	if o.Defense != nil {
		cfg = cfg.WithDefense(*o.Defense)
	}
	return cfg
}

func trials(o Options, def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// ConstructionNoiseScale returns the factor by which the scaled host's
// noise rate must grow so that eviction-set construction sees the same
// noise-hits-per-TestEviction as the paper's full-scale hosts. A scaled
// candidate pool is ~40x smaller than the 28-slice Skylake-SP pool, so
// every test window is ~40x shorter; without rescaling, Cloud Run noise
// would be invisible to Table 3/4's protocol. When the protocol uses L2
// candidate filtering the working pools shrink by U_L2 — 16x at full
// scale but only 4x on the scaled host — so the equivalent rate for
// filtered experiments is correspondingly lower. Monitoring experiments
// (Tables 5-6, Figures 6-9) keep the true rates: their timescale is set
// by the victim's iteration length, which does not scale.
func ConstructionNoiseScale(cfg hierarchy.Config, filtered bool) float64 {
	full := hierarchy.SkylakeSP(28)
	fullPool := float64(3 * full.LLCUncertainty() * full.SFWays)
	pool := float64(3 * cfg.LLCUncertainty() * cfg.SFWays)
	if filtered {
		fullPool /= float64(full.L2Uncertainty())
		pool /= float64(cfg.L2Uncertainty())
	}
	if pool <= 0 {
		return 1
	}
	return fullPool / pool
}

// localConstructionConfig returns the quiescent host for construction
// experiments, with equivalent-noise scaling when not at full scale.
func localConstructionConfig(o Options, filtered bool) hierarchy.Config {
	cfg := localConfig(o)
	if !o.Full {
		cfg = cfg.WithNoiseRate(0.29 * ConstructionNoiseScale(cfg, filtered))
	}
	return cfg
}

// cloudConstructionConfig is the Cloud Run analog.
func cloudConstructionConfig(o Options, filtered bool) hierarchy.Config {
	cfg := cloudConfig(o)
	if !o.Full {
		cfg = cfg.WithNoiseRate(11.5 * ConstructionNoiseScale(cfg, filtered))
	}
	return cfg
}

// fmtDur renders a duration in cycles with an adaptive unit.
func fmtDur(cycles float64) string {
	switch {
	case cycles < 2e3:
		return fmt.Sprintf("%.0f cyc", cycles)
	case cycles < 2e7:
		return fmt.Sprintf("%.2f ms", cycles/2e6)
	default:
		return fmt.Sprintf("%.2f s", cycles/2e9)
	}
}

// Formatting helpers shared by the runners.

func pct(v float64) string      { return fmt.Sprintf("%.1f%%", 100*v) }
func ms(cycles float64) string  { return fmt.Sprintf("%.2f ms", cycles/2e6) }
func sec(cycles float64) string { return fmt.Sprintf("%.2f s", cycles/2e9) }
func us(cycles float64) string  { return fmt.Sprintf("%.1f µs", cycles/2e3) }
