package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

func TestRunTrialsOrderAndSeeds(t *testing.T) {
	const n, base = 37, uint64(99)
	samples := RunTrials(n, 5, base, func(tr *Trial) Sample {
		if tr.Seed != xrand.Stream(base, uint64(tr.Index)) {
			t.Errorf("trial %d seed %#x, want stream value", tr.Index, tr.Seed)
		}
		return Sample{Value: float64(tr.Index), OK: tr.Index%2 == 0}
	})
	if len(samples) != n {
		t.Fatalf("got %d samples, want %d", len(samples), n)
	}
	for i, s := range samples {
		if s.Value != float64(i) {
			t.Fatalf("sample %d carries value %v: results out of trial order", i, s.Value)
		}
	}
	if got := successRate(samples); got != 19.0/37.0 {
		t.Errorf("successRate = %v", got)
	}
}

func TestRunTrialsWorkerCountInvariance(t *testing.T) {
	// A trial whose output depends only on its seed must yield identical
	// sample slices at every worker count.
	run := func(workers int) []Sample {
		return RunTrials(23, workers, 4242, func(tr *Trial) Sample {
			r := xrand.New(tr.Seed)
			return Sample{OK: r.Bool(), Value: r.Float64(), Extra: []float64{float64(r.Intn(1000))}}
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different samples", w)
		}
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if s := RunTrials(0, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil {
		t.Errorf("n=0 should return nil, got %v", s)
	}
	if s := RunTrials(-3, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil {
		t.Errorf("negative n should return nil, got %v", s)
	}
	// workers beyond n must not deadlock or drop trials.
	s := RunTrials(2, 16, 1, func(tr *Trial) Sample { return Sample{OK: true} })
	if len(s) != 2 || !s[0].OK || !s[1].OK {
		t.Errorf("short run mishandled: %v", s)
	}
	// Zero trials through the error-returning variant.
	if s, err := RunTrialsErr(context.Background(), 0, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil || err != nil {
		t.Errorf("RunTrialsErr(0) = %v, %v", s, err)
	}
}

// TestRunTrialsPanicSurfacesError pins the pool-hardening contract: a
// panicking trial must drain the pool and come back as a clean error
// naming the trial (RunTrialsErr) or as a caller-side panic (RunTrials)
// — never a deadlock or a process abort from a worker goroutine.
func TestRunTrialsPanicSurfacesError(t *testing.T) {
	boom := func(tr *Trial) Sample {
		if tr.Index == 3 {
			panic("boom")
		}
		return Sample{OK: true}
	}
	type result struct {
		samples []Sample
		err     error
	}
	for _, workers := range []int{1, 4, 16} {
		// Report only from the test goroutine: the worker goroutine just
		// ships its result over a channel, so a timeout can't race a late
		// t.Errorf against test completion.
		done := make(chan result, 1)
		go func() {
			s, err := RunTrialsErr(context.Background(), 8, workers, 1, boom)
			done <- result{s, err}
		}()
		select {
		case r := <-done:
			if r.err == nil {
				t.Errorf("workers=%d: RunTrialsErr missed the panic", workers)
				continue
			}
			if !strings.Contains(r.err.Error(), "trial 3") || !strings.Contains(r.err.Error(), "boom") {
				t.Errorf("workers=%d: error %q does not identify the trial", workers, r.err)
			}
			if r.samples != nil {
				t.Errorf("workers=%d: got samples alongside an error", workers)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: RunTrialsErr deadlocked on a panicking trial", workers)
		}
	}
}

// TestRunTrialsCancellation pins the context contract: cancelling the
// ctx stops the run between trials (no trial is ever interrupted
// mid-flight), RunTrialsErr reports the context's error, and every
// worker goroutine exits.
func TestRunTrialsCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		_, err := RunTrialsErr(ctx, 1000, workers, 1, func(tr *Trial) Sample {
			if started.Add(1) == 3 {
				cancel()
			}
			return Sample{OK: true}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The cancel fired inside trial 3; only trials already claimed at
		// that moment may still have run (at most one per worker).
		if n := started.Load(); n > int64(3+workers) {
			t.Errorf("workers=%d: %d trials started after cancellation", workers, n)
		}
	}
	// An already-cancelled ctx runs zero trials.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if _, err := RunTrialsErr(ctx, 10, 4, 1, func(*Trial) Sample { ran = true; return Sample{} }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v", err)
	}
	if ran {
		t.Error("pre-cancelled ctx still ran a trial")
	}
}

// TestRunTrialsCompletedPrefixUnperturbed pins the property the
// campaign layer's checkpoint/resume correctness rests on: the samples
// of trials that complete before a cancellation are byte-identical to
// the same trials of an uninterrupted run (cancellation is only checked
// on trial boundaries and never perturbs a trial's seed or host).
func TestRunTrialsCompletedPrefixUnperturbed(t *testing.T) {
	const n = 64
	full, err := RunTrialsErr(context.Background(), n, 1, 7, func(tr *Trial) Sample {
		r := xrand.New(tr.Seed)
		return Sample{OK: r.Bool(), Value: r.Float64()}
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var got [n]Sample
	var gotMask [n]bool
	_, err = RunTrialsErr(ctx, n, 1, 7, func(tr *Trial) Sample {
		if tr.Index == 10 {
			cancel()
		}
		r := xrand.New(tr.Seed)
		s := Sample{OK: r.Bool(), Value: r.Float64()}
		got[tr.Index], gotMask[tr.Index] = s, true
		return s
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range got {
		if gotMask[i] && !reflect.DeepEqual(got[i], full[i]) {
			t.Errorf("trial %d sample diverged under cancellation: %+v vs %+v", i, got[i], full[i])
		}
	}
	if !gotMask[10] {
		t.Fatal("cancelling trial never ran")
	}
}

// TestRunTrialsPanicLeavesNoWorkers is the worker-panic goroutine-leak
// audit pinned as a test: when one trial re-panics through the
// recover/record protocol, the remaining workers must all exit (work is
// handed out by an atomic counter, not a channel, so nothing can block
// on an abandoned send) and the process goroutine count must settle
// back to its pre-run level.
func TestRunTrialsPanicLeavesNoWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		_, err := RunTrialsErr(context.Background(), 64, 8, 1, func(tr *Trial) Sample {
			if tr.Index == 0 {
				panic("boom")
			}
			return Sample{OK: true}
		})
		if err == nil {
			t.Fatal("panic not surfaced")
		}
	}
	// Workers are wg.Wait()ed before RunTrialsErr returns, so any excess
	// here would be a genuine leak; allow slack for runtime helpers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d after panicking runs", before, n)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunTrialsRepanicsOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunTrials swallowed a trial panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "boom") {
			t.Fatalf("re-raised panic %q lost the original value", msg)
		}
	}()
	RunTrials(4, 2, 1, func(tr *Trial) Sample { panic("boom") })
}

func TestTrialWithSeed(t *testing.T) {
	RunTrials(1, 1, 9, func(tr *Trial) Sample {
		re := tr.WithSeed(0xdead)
		if re.Seed != 0xdead || re.Index != tr.Index {
			t.Errorf("WithSeed = %+v", re)
		}
		if tr.Seed == 0xdead {
			t.Error("WithSeed mutated the original trial")
		}
		// The reseeded trial must still reach the worker's host pool.
		if re.pool != tr.pool {
			t.Error("WithSeed dropped the host pool")
		}
		return Sample{}
	})
}

func TestSubSeedIndependence(t *testing.T) {
	a := SubSeed(1, "table6", "PageOffset")
	b := SubSeed(1, "table6", "WholeSys")
	c := SubSeed(2, "table6", "PageOffset")
	if a == b || a == c || b == c {
		t.Fatalf("SubSeed collisions: %#x %#x %#x", a, b, c)
	}
	if a != SubSeed(1, "table6", "PageOffset") {
		t.Fatal("SubSeed is not deterministic")
	}
}

// TestReportDeterminism is the engine's contract test: the same seed must
// yield byte-identical report rows whether trials run sequentially or on
// a parallel worker pool sharing pooled (Reset) hosts.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	for _, tc := range []struct {
		id     string
		runner Runner
	}{{"table3", Table3}, {"fig3", Figure3}} {
		seq := tc.runner(Options{Seed: 11, Trials: 3, Workers: 1})
		par := tc.runner(Options{Seed: 11, Trials: 3, Workers: 8})
		if !reflect.DeepEqual(seq.Rows, par.Rows) {
			t.Errorf("%s: workers=1 and workers=8 rows differ:\n%v\nvs\n%v", tc.id, seq.Rows, par.Rows)
		}
		if !reflect.DeepEqual(seq.Notes, par.Notes) {
			t.Errorf("%s: notes differ across worker counts", tc.id)
		}
	}
}
