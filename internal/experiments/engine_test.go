package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/xrand"
)

func TestRunTrialsOrderAndSeeds(t *testing.T) {
	const n, base = 37, uint64(99)
	samples := RunTrials(n, 5, base, func(tr *Trial) Sample {
		if tr.Seed != xrand.Stream(base, uint64(tr.Index)) {
			t.Errorf("trial %d seed %#x, want stream value", tr.Index, tr.Seed)
		}
		return Sample{Value: float64(tr.Index), OK: tr.Index%2 == 0}
	})
	if len(samples) != n {
		t.Fatalf("got %d samples, want %d", len(samples), n)
	}
	for i, s := range samples {
		if s.Value != float64(i) {
			t.Fatalf("sample %d carries value %v: results out of trial order", i, s.Value)
		}
	}
	if got := successRate(samples); got != 19.0/37.0 {
		t.Errorf("successRate = %v", got)
	}
}

func TestRunTrialsWorkerCountInvariance(t *testing.T) {
	// A trial whose output depends only on its seed must yield identical
	// sample slices at every worker count.
	run := func(workers int) []Sample {
		return RunTrials(23, workers, 4242, func(tr *Trial) Sample {
			r := xrand.New(tr.Seed)
			return Sample{OK: r.Bool(), Value: r.Float64(), Extra: []float64{float64(r.Intn(1000))}}
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different samples", w)
		}
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if s := RunTrials(0, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil {
		t.Errorf("n=0 should return nil, got %v", s)
	}
	if s := RunTrials(-3, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil {
		t.Errorf("negative n should return nil, got %v", s)
	}
	// workers beyond n must not deadlock or drop trials.
	s := RunTrials(2, 16, 1, func(tr *Trial) Sample { return Sample{OK: true} })
	if len(s) != 2 || !s[0].OK || !s[1].OK {
		t.Errorf("short run mishandled: %v", s)
	}
	// Zero trials through the error-returning variant.
	if s, err := RunTrialsErr(0, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil || err != nil {
		t.Errorf("RunTrialsErr(0) = %v, %v", s, err)
	}
}

// TestRunTrialsPanicSurfacesError pins the pool-hardening contract: a
// panicking trial must drain the pool and come back as a clean error
// naming the trial (RunTrialsErr) or as a caller-side panic (RunTrials)
// — never a deadlock or a process abort from a worker goroutine.
func TestRunTrialsPanicSurfacesError(t *testing.T) {
	boom := func(tr *Trial) Sample {
		if tr.Index == 3 {
			panic("boom")
		}
		return Sample{OK: true}
	}
	type result struct {
		samples []Sample
		err     error
	}
	for _, workers := range []int{1, 4, 16} {
		// Report only from the test goroutine: the worker goroutine just
		// ships its result over a channel, so a timeout can't race a late
		// t.Errorf against test completion.
		done := make(chan result, 1)
		go func() {
			s, err := RunTrialsErr(8, workers, 1, boom)
			done <- result{s, err}
		}()
		select {
		case r := <-done:
			if r.err == nil {
				t.Errorf("workers=%d: RunTrialsErr missed the panic", workers)
				continue
			}
			if !strings.Contains(r.err.Error(), "trial 3") || !strings.Contains(r.err.Error(), "boom") {
				t.Errorf("workers=%d: error %q does not identify the trial", workers, r.err)
			}
			if r.samples != nil {
				t.Errorf("workers=%d: got samples alongside an error", workers)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: RunTrialsErr deadlocked on a panicking trial", workers)
		}
	}
}

func TestRunTrialsRepanicsOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunTrials swallowed a trial panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "boom") {
			t.Fatalf("re-raised panic %q lost the original value", msg)
		}
	}()
	RunTrials(4, 2, 1, func(tr *Trial) Sample { panic("boom") })
}

func TestTrialWithSeed(t *testing.T) {
	RunTrials(1, 1, 9, func(tr *Trial) Sample {
		re := tr.WithSeed(0xdead)
		if re.Seed != 0xdead || re.Index != tr.Index {
			t.Errorf("WithSeed = %+v", re)
		}
		if tr.Seed == 0xdead {
			t.Error("WithSeed mutated the original trial")
		}
		// The reseeded trial must still reach the worker's host pool.
		if re.pool != tr.pool {
			t.Error("WithSeed dropped the host pool")
		}
		return Sample{}
	})
}

func TestSubSeedIndependence(t *testing.T) {
	a := SubSeed(1, "table6", "PageOffset")
	b := SubSeed(1, "table6", "WholeSys")
	c := SubSeed(2, "table6", "PageOffset")
	if a == b || a == c || b == c {
		t.Fatalf("SubSeed collisions: %#x %#x %#x", a, b, c)
	}
	if a != SubSeed(1, "table6", "PageOffset") {
		t.Fatal("SubSeed is not deterministic")
	}
}

// TestReportDeterminism is the engine's contract test: the same seed must
// yield byte-identical report rows whether trials run sequentially or on
// a parallel worker pool sharing pooled (Reset) hosts.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	for _, tc := range []struct {
		id     string
		runner Runner
	}{{"table3", Table3}, {"fig3", Figure3}} {
		seq := tc.runner(Options{Seed: 11, Trials: 3, Workers: 1})
		par := tc.runner(Options{Seed: 11, Trials: 3, Workers: 8})
		if !reflect.DeepEqual(seq.Rows, par.Rows) {
			t.Errorf("%s: workers=1 and workers=8 rows differ:\n%v\nvs\n%v", tc.id, seq.Rows, par.Rows)
		}
		if !reflect.DeepEqual(seq.Notes, par.Notes) {
			t.Errorf("%s: notes differ across worker counts", tc.id)
		}
	}
}
