package experiments

import (
	"reflect"
	"testing"

	"repro/internal/xrand"
)

func TestRunTrialsOrderAndSeeds(t *testing.T) {
	const n, base = 37, uint64(99)
	samples := RunTrials(n, 5, base, func(tr *Trial) Sample {
		if tr.Seed != xrand.Stream(base, uint64(tr.Index)) {
			t.Errorf("trial %d seed %#x, want stream value", tr.Index, tr.Seed)
		}
		return Sample{Value: float64(tr.Index), OK: tr.Index%2 == 0}
	})
	if len(samples) != n {
		t.Fatalf("got %d samples, want %d", len(samples), n)
	}
	for i, s := range samples {
		if s.Value != float64(i) {
			t.Fatalf("sample %d carries value %v: results out of trial order", i, s.Value)
		}
	}
	if got := successRate(samples); got != 19.0/37.0 {
		t.Errorf("successRate = %v", got)
	}
}

func TestRunTrialsWorkerCountInvariance(t *testing.T) {
	// A trial whose output depends only on its seed must yield identical
	// sample slices at every worker count.
	run := func(workers int) []Sample {
		return RunTrials(23, workers, 4242, func(tr *Trial) Sample {
			r := xrand.New(tr.Seed)
			return Sample{OK: r.Bool(), Value: r.Float64(), Extra: []float64{float64(r.Intn(1000))}}
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different samples", w)
		}
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if s := RunTrials(0, 4, 1, func(*Trial) Sample { return Sample{} }); s != nil {
		t.Errorf("n=0 should return nil, got %v", s)
	}
	// workers beyond n must not deadlock or drop trials.
	s := RunTrials(2, 16, 1, func(tr *Trial) Sample { return Sample{OK: true} })
	if len(s) != 2 || !s[0].OK || !s[1].OK {
		t.Errorf("short run mishandled: %v", s)
	}
}

func TestSubSeedIndependence(t *testing.T) {
	a := subSeed(1, "table6", "PageOffset")
	b := subSeed(1, "table6", "WholeSys")
	c := subSeed(2, "table6", "PageOffset")
	if a == b || a == c || b == c {
		t.Fatalf("subSeed collisions: %#x %#x %#x", a, b, c)
	}
	if a != subSeed(1, "table6", "PageOffset") {
		t.Fatal("subSeed is not deterministic")
	}
}

// TestReportDeterminism is the engine's contract test: the same seed must
// yield byte-identical report rows whether trials run sequentially or on
// a parallel worker pool sharing pooled (Reset) hosts.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	for _, tc := range []struct {
		id     string
		runner Runner
	}{{"table3", Table3}, {"fig3", Figure3}} {
		seq := tc.runner(Options{Seed: 11, Trials: 3, Workers: 1})
		par := tc.runner(Options{Seed: 11, Trials: 3, Workers: 8})
		if !reflect.DeepEqual(seq.Rows, par.Rows) {
			t.Errorf("%s: workers=1 and workers=8 rows differ:\n%v\nvs\n%v", tc.id, seq.Rows, par.Rows)
		}
		if !reflect.DeepEqual(seq.Notes, par.Notes) {
			t.Errorf("%s: notes differ across worker counts", tc.id)
		}
	}
}
