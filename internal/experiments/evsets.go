package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func init() {
	register("table3", "Table 3: existing pruning algorithms without candidate filtering, local vs Cloud Run", Table3)
	register("fig2", "Figure 2: CDF of background inter-access times per LLC set", Figure2)
	register("fig3", "Figure 3: parallel vs sequential TestEviction duration vs candidate count", Figure3)
	register("table4", "Table 4: SingleSet/PageOffset/WholeSys with candidate filtering", Table4)
	register("filter", "§5.3.1: candidate-filtering overhead and amortization", FilterOverhead)
	register("icelake", "§5.3.2: Skylake-SP vs Ice Lake-SP associativity scaling", IceLake)
}

// table3Algos are the state-of-the-art baselines evaluated in Table 3.
func table3Algos() []evset.Pruner {
	return []evset.Pruner{
		evset.GroupTesting{EarlyTermination: true},
		evset.GroupTesting{},
		evset.PrimeScope{},
		evset.PrimeScope{Recharge: true},
	}
}

// singleSetTrial builds one SF eviction set without candidate filtering
// (the Table 3 protocol) and returns success and duration.
func singleSetTrial(t *Trial, cfg hierarchy.Config, algo evset.Pruner, seed uint64, opts evset.Options) (bool, clock.Cycles) {
	h := t.Host(cfg, seed)
	e := evset.NewEnv(h, seed^0xe0f)
	cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	res := evset.BuildSF(e, algo, ta, cands.Addrs[1:], opts)
	ok := res.OK && res.Set.Verified(e.Main, cfg.SFWays)
	return ok, res.Duration
}

// Table3 measures the success rate and execution time of Gt, GtOp, Ps
// and PsOp without candidate filtering, in the quiescent local and Cloud
// Run environments.
func Table3(o Options) *Report {
	rep := &Report{
		ID:     "table3",
		Title:  "Eviction-set construction without filtering (success rate, avg/stddev/median time)",
		Header: []string{"env", "algo", "succ", "avg", "stddev", "median", "n"},
		Paper: []string{
			"local:  Gt 97.0% 32.9ms | GtOp 98.8% 21.1ms | Ps 98.5% 55.9ms | PsOp 98.2% 54.9ms",
			"cloud:  Gt 39.4% 714ms  | GtOp 56.0% 512ms  | Ps 3.2% 580ms   | PsOp 6.9% 572ms",
		},
	}
	n := trials(o, 20)
	if o.Full {
		n = trials(o, 8)
	}
	type cell struct {
		env  string
		cfg  hierarchy.Config
		algo evset.Pruner
	}
	var cells []cell
	for _, env := range []struct {
		name string
		cfg  hierarchy.Config
	}{{"local", localConstructionConfig(o, false)}, {"cloud", cloudConstructionConfig(o, false)}} {
		for _, algo := range table3Algos() {
			cells = append(cells, cell{env.name, env.cfg, algo})
		}
	}
	samples := RunTrials(len(cells)*n, o.Workers, SubSeed(o.Seed, "table3"), func(t *Trial) Sample {
		c := cells[t.Index/n]
		ok, d := singleSetTrial(t, c.cfg, c.algo, t.Seed, evset.DefaultOptions())
		return Sample{OK: ok, Value: float64(d)}
	})
	for ci, c := range cells {
		cs := samples[ci*n : (ci+1)*n]
		s := stats.Summarize(sampleValues(cs))
		rep.Rows = append(rep.Rows, []string{
			c.env, c.algo.Name(), pct(successRate(cs)),
			ms(s.Mean), ms(s.Stddev), ms(s.Median), fmt.Sprint(n),
		})
	}
	rep.Notes = append(rep.Notes,
		"shape to check: every algorithm degrades on cloud; Ps/PsOp collapse (sequential TestEviction); GtOp beats Gt")
	return rep
}

// Figure2 reproduces the background-access CDF: a random SF set is
// monitored with Parallel Probing and the gaps between detected
// background accesses are collected.
func Figure2(o Options) *Report {
	rep := &Report{
		ID:     "fig2",
		Title:  "CDF of time between background accesses to one LLC set",
		Header: []string{"env", "rate/ms", "p10", "p50", "p90", "gaps"},
		Paper: []string{
			"Cloud Run: 11.5 accesses/ms/set;  quiescent local: 0.29 accesses/ms/set",
		},
	}
	envs := []struct {
		name string
		cfg  hierarchy.Config
	}{{"local", localConfig(o)}, {"cloud", cloudConfig(o)}}
	samples := RunTrials(len(envs), o.Workers, SubSeed(o.Seed, "fig2"), func(t *Trial) Sample {
		gaps := collectGaps(t, envs[t.Index].cfg, t.Seed, trials(o, 1000))
		return Sample{Series: [][]float64{gaps}}
	})
	for i, env := range envs {
		gaps := samples[i].Series[0]
		if len(gaps) < 2 {
			rep.Rows = append(rep.Rows, []string{env.name, "~0", "-", "-", "-", fmt.Sprint(len(gaps))})
			continue
		}
		mean := stats.Mean(gaps)
		rate := 2e6 / mean // accesses per ms of virtual time
		rep.Rows = append(rep.Rows, []string{
			env.name, fmt.Sprintf("%.2f", rate),
			us(stats.Percentile(gaps, 10)), us(stats.Percentile(gaps, 50)), us(stats.Percentile(gaps, 90)),
			fmt.Sprint(len(gaps)),
		})
	}
	rep.Notes = append(rep.Notes, "rates are recovered from the Prime+Probe gap measurements, as in the paper's Experiment 1")
	return rep
}

func collectGaps(t *Trial, cfg hierarchy.Config, seed uint64, want int) []float64 {
	h := t.Host(cfg, seed)
	e := evset.NewEnv(h, seed^0x9a9)
	cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
	res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		return nil
	}
	m := probe.NewMonitor(e, probe.Parallel, res.Set.Lines)
	var gaps []float64
	var last clock.Cycles
	budget := clock.Cycles(800_000_000) // at most 0.4 s of virtual time
	deadline := h.Clock().Now() + budget
	m.Prime()
	for len(gaps) < want && h.Clock().Now() < deadline {
		if m.Probe() {
			now := h.Clock().Now()
			if last != 0 {
				gaps = append(gaps, float64(now-last))
			}
			last = now
			m.Prime()
		}
	}
	return gaps
}

// Figure3 measures TestEviction's execution time for the parallel and
// sequential implementations across candidate-set sizes U..11U. Each
// size runs as one trial on its own host, so sizes measure concurrently.
func Figure3(o Options) *Report {
	rep := &Report{
		ID:     "fig3",
		Title:  "TestEviction duration vs candidate count (Cloud Run)",
		Header: []string{"candidates", "parallel", "sequential", "ratio"},
		Paper: []string{
			"11·U candidates: parallel ≈ 134.8 µs, sequential ≈ 4.6 ms (~34x)",
		},
	}
	cfg := cloudConstructionConfig(o, false)
	u := cfg.LLCUncertainty()
	mults := []int{1, 3, 5, 7, 9, 11}
	reps := trials(o, 30)
	samples := RunTrials(len(mults), o.Workers, SubSeed(o.Seed, "fig3"), func(t *Trial) Sample {
		h := t.Host(cfg, t.Seed)
		e := evset.NewEnv(h, t.Seed^0xf13)
		pool := evset.NewCandidates(e, 11*u+1, 0)
		ta := pool.Addrs[0]
		nc := mults[t.Index] * u
		var par, seq []float64
		for i := 0; i < reps; i++ {
			t0 := h.Clock().Now()
			e.TestEviction(evset.TargetLLC, ta, pool.Addrs[1:], nc, true)
			par = append(par, float64(h.Clock().Now()-t0))
		}
		for i := 0; i < maxInt(1, reps/4); i++ {
			t0 := h.Clock().Now()
			e.TestEviction(evset.TargetLLC, ta, pool.Addrs[1:], nc, false)
			seq = append(seq, float64(h.Clock().Now()-t0))
		}
		return Sample{Series: [][]float64{par, seq}}
	})
	for i, mult := range mults {
		p := stats.Mean(samples[i].Series[0])
		s := stats.Mean(samples[i].Series[1])
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d (%dU)", mult*u, mult), us(p), us(s), fmt.Sprintf("%.1fx", s/p),
		})
	}
	rep.Notes = append(rep.Notes, "shape to check: order-of-magnitude gap, both growing with N")
	return rep
}

// table4Algos are the algorithms of Table 4 (all with filtering; PsBst is
// the better Prime+Scope variant).
func table4Algos() []evset.Pruner {
	return []evset.Pruner{
		evset.GroupTesting{EarlyTermination: true},
		evset.GroupTesting{},
		evset.PrimeScope{Recharge: true}, // PsBst
		evset.BinSearch{},
	}
}

func table4Name(p evset.Pruner) string {
	if p.Name() == "PsOp" {
		return "PsBst"
	}
	return p.Name()
}

// Table4 evaluates the paper's optimizations: candidate filtering plus
// the binary-search pruner, across the SingleSet, PageOffset and
// WholeSys scenarios in both environments.
func Table4(o Options) *Report {
	rep := &Report{
		ID:     "table4",
		Title:  "Eviction-set construction with L2 candidate filtering",
		Header: []string{"env", "scenario", "algo", "succ", "avg", "median", "n"},
		Paper: []string{
			"cloud SingleSet:  Gt 96.7% 28.8ms | GtOp 97.7% 27.2ms | PsBst 97.2% 33.2ms | BinS 98.1% 26.6ms",
			"cloud PageOffset: Gt 95.6% 5.51s  | GtOp 97.4% 3.95s  | PsBst 98.4% 4.51s  | BinS 98.0% 2.87s",
			"cloud WholeSys:   Gt 88.1% 301s   | GtOp 90.5% 213s   | PsBst 91.7% 244s   | BinS 92.6% 142s",
		},
	}
	type scen struct {
		name   string
		trials int
	}
	scens := []scen{{"SingleSet", trials(o, 12)}, {"PageOffset", 3}, {"WholeSys", 1}}
	if o.Full {
		scens = []scen{{"SingleSet", trials(o, 6)}, {"PageOffset", 1}}
		rep.Notes = append(rep.Notes, "full-scale WholeSys (57,344 sets) is hours of simulation; run the scaled default for the WholeSys row")
	}
	envs := []struct {
		name string
		cfg  hierarchy.Config
	}{{"local", localConstructionConfig(o, true)}, {"cloud", cloudConstructionConfig(o, true)}}

	type cell struct {
		env      string
		cfg      hierarchy.Config
		scenario string
		algo     evset.Pruner
		trials   int
	}
	var cells []cell
	var jobCell []int // flat trial index -> cell index
	for _, env := range envs {
		for _, sc := range scens {
			for _, algo := range table4Algos() {
				ci := len(cells)
				cells = append(cells, cell{env.name, env.cfg, sc.name, algo, sc.trials})
				for i := 0; i < sc.trials; i++ {
					jobCell = append(jobCell, ci)
				}
			}
		}
	}
	samples := RunTrials(len(jobCell), o.Workers, SubSeed(o.Seed, "table4"), func(t *Trial) Sample {
		c := cells[jobCell[t.Index]]
		rate, d := table4Trial(t, c.cfg, c.algo, c.scenario, t.Seed)
		return Sample{Value: float64(d), Extra: []float64{rate}}
	})
	off := 0
	for _, c := range cells {
		cs := samples[off : off+c.trials]
		off += c.trials
		var rates []float64
		for _, s := range cs {
			rates = append(rates, s.Extra[0])
		}
		s := stats.Summarize(sampleValues(cs))
		rep.Rows = append(rep.Rows, []string{
			c.env, c.scenario, table4Name(c.algo), pct(stats.Mean(rates)),
			fmtDur(s.Mean), fmtDur(s.Median), fmt.Sprint(c.trials),
		})
	}
	rep.Notes = append(rep.Notes,
		"shape to check: filtering slashes times vs table3; BinS fastest in bulk scenarios; success stays high on cloud")
	return rep
}

// table4Trial runs one scenario trial and returns (success rate, time).
func table4Trial(t *Trial, cfg hierarchy.Config, algo evset.Pruner, scenario string, seed uint64) (float64, clock.Cycles) {
	h := t.Host(cfg, seed)
	e := evset.NewEnv(h, seed^0x4b1d)
	opt := evset.BulkOptions{Algo: algo, PerSet: evset.FilteredOptions()}
	rng := xrand.New(seed ^ 0x0ff)
	offset := uint64(rng.Intn(64)) * 64
	cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), offset)
	switch scenario {
	case "SingleSet":
		res, _ := evset.BuildSingle(e, cands.Addrs[0], cands, opt)
		ok := 0.0
		if res.OK && res.Set != nil && res.Set.Verified(e.Main, cfg.SFWays) {
			ok = 1
		}
		return ok, res.Duration
	case "PageOffset":
		res := evset.BuildPageOffset(e, cands, opt)
		want := cfg.SetsAtPageOffset()
		return float64(res.UniqueVerified(e.Main, cfg.SFWays)) / float64(want), res.Duration
	case "WholeSys":
		base := cands
		if offset != 0 {
			base = cands.AtOffset(0)
		}
		// Sample 8 of the 64 line offsets and extrapolate: each offset's
		// workload is iid (the δ-shift reuses the same filtered groups),
		// so the sampled success rate and 8x the sampled time estimate
		// the full run, which the -full flag executes exactly.
		const sampled = 8
		opt.OffsetLimit = sampled
		res := evset.BuildWholeSys(e, base, opt)
		want := cfg.TotalLLCSets() * sampled / 64
		return float64(res.UniqueVerified(e.Main, cfg.SFWays)) / float64(want),
			res.Duration * (64 / sampled)
	default:
		panic("unknown scenario " + scenario)
	}
}

// FilterOverhead measures §5.3.1: the cost of one candidate-filtering
// execution and its amortization across PageOffset and WholeSys.
func FilterOverhead(o Options) *Report {
	rep := &Report{
		ID:     "filter",
		Title:  "Candidate filtering overhead and amortization (Cloud Run)",
		Header: []string{"metric", "value"},
		Paper: []string{
			"one filtering ≈ 22.3 ms; PageOffset needs U_L2=16 executions (~435 ms of 2.87 s); WholeSys reuses them via δ-shifts",
		},
	}
	cfg := cloudConstructionConfig(o, true)
	samples := RunTrials(1, o.Workers, SubSeed(o.Seed, "filter"), func(t *Trial) Sample {
		h := t.Host(cfg, t.Seed)
		e := evset.NewEnv(h, t.Seed^0x71f)
		cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)

		t0 := h.Clock().Now()
		l2set, err := evset.BuildL2(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.FilteredOptions())
		if err != nil {
			return Sample{}
		}
		members := evset.FilterByL2(e, l2set, cands.Addrs[1:])
		oneFilter := float64(h.Clock().Now() - t0)

		groups, fstats := evset.PartitionByL2(e, cands.Addrs, evset.FilteredOptions())
		keep := 0
		for _, g := range groups {
			keep += len(g.Members)
		}
		return Sample{OK: true, Extra: []float64{
			oneFilter,
			float64(len(members)) / float64(len(cands.Addrs)),
			float64(fstats.Groups),
			float64(fstats.Duration),
			float64(keep),
		}}
	})
	s := samples[0]
	if !s.OK {
		rep.Rows = append(rep.Rows, []string{"one filtering", "L2 set construction failed"})
		return rep
	}
	rep.Rows = append(rep.Rows,
		[]string{"one filtering (build L2 set + filter pool)", ms(s.Extra[0])},
		[]string{"filtered pool fraction", fmt.Sprintf("%.1f%% (expect ~%.1f%%)", 100*s.Extra[1], 100.0/float64(cfg.L2Uncertainty()))},
		[]string{fmt.Sprintf("full partition (%d groups = U_L2)", int(s.Extra[2])), ms(s.Extra[3])},
		[]string{"WholeSys filtering executions", fmt.Sprintf("%d (δ-shift reuse across 64 offsets)", int(s.Extra[2]))},
	)
	return rep
}

// IceLake compares single-set construction on Skylake-SP vs Ice Lake-SP
// (§5.3.2): the Gt/BinS ratio grows with associativity.
func IceLake(o Options) *Report {
	rep := &Report{
		ID:     "icelake",
		Title:  "Associativity scaling: quiet Skylake-SP (12-way SF/16-way L2) vs Ice Lake-SP (16-way SF/20-way L2)",
		Header: []string{"machine", "target", "algo", "avg time", "ratio vs BinS", "n"},
		Paper: []string{
			"SF:  SKX Gt 2.23ms GtOp 1.77ms BinS 1.17ms (Gt/BinS 1.91) | ICX Gt 3.81ms GtOp 3.07ms BinS 1.68ms (2.27)",
			"L2:  SKX Gt 2.49ms GtOp 1.90ms BinS 1.33ms (1.87)         | ICX Gt 14.48ms GtOp 8.16ms BinS 2.28ms (6.35)",
		},
	}
	// The machine configs go through o.tenants like localConfig/
	// cloudConfig do, so a -tenants override reaches this runner too.
	machines := []struct {
		name string
		cfg  hierarchy.Config
	}{
		{"Skylake-SP", o.tenants(hierarchy.SkylakeSP(4).WithQuiescentNoise())},
		{"Ice Lake-SP", o.tenants(hierarchy.IceLakeSP(4).WithQuiescentNoise())},
	}
	if o.Full {
		machines[0].cfg = o.tenants(hierarchy.SkylakeSP(22).WithQuiescentNoise())
		machines[1].cfg = o.tenants(hierarchy.IceLakeSP(26).WithQuiescentNoise())
	}
	algos := []evset.Pruner{evset.GroupTesting{EarlyTermination: true}, evset.GroupTesting{}, evset.BinSearch{}}
	n := trials(o, 10)
	type cell struct {
		mach   string
		cfg    hierarchy.Config
		target string
		algo   evset.Pruner
	}
	var cells []cell
	for _, mach := range machines {
		for _, target := range []string{"SF", "L2"} {
			for _, algo := range algos {
				cells = append(cells, cell{mach.name, mach.cfg, target, algo})
			}
		}
	}
	samples := RunTrials(len(cells)*n, o.Workers, SubSeed(o.Seed, "icelake"), func(t *Trial) Sample {
		c := cells[t.Index/n]
		d, ok := iceLakeTrial(t, c.cfg, c.algo, c.target, t.Seed)
		return Sample{OK: ok, Value: float64(d)}
	})
	for ci := 0; ci < len(cells); ci += len(algos) {
		means := map[string]float64{}
		for ai, algo := range algos {
			cs := samples[(ci+ai)*n : (ci+ai+1)*n]
			means[algo.Name()] = stats.Mean(okValues(cs))
		}
		for ai, algo := range algos {
			c := cells[ci+ai]
			ratio := means[algo.Name()] / means["BinS"]
			rep.Rows = append(rep.Rows, []string{
				c.mach, c.target, algo.Name(), ms(means[algo.Name()]),
				fmt.Sprintf("%.2f", ratio), fmt.Sprint(n),
			})
		}
	}
	rep.Notes = append(rep.Notes, "shape to check: Gt/BinS and GtOp/BinS ratios grow from Skylake-SP to Ice Lake-SP, most strongly for the L2")
	return rep
}

// iceLakeTrial times a single filtered SF or L2 eviction-set pruning.
func iceLakeTrial(t *Trial, cfg hierarchy.Config, algo evset.Pruner, target string, seed uint64) (clock.Cycles, bool) {
	h := t.Host(cfg, seed)
	e := evset.NewEnv(h, seed^0x1ce)
	cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	if target == "L2" {
		t0 := h.Clock().Now()
		_, err := evset.BuildL2(e, algo, ta, cands.Addrs[1:], evset.DefaultOptions())
		return h.Clock().Now() - t0, err == nil
	}
	// SF: candidate filtering enabled but not timed (§5.3.2 methodology).
	l2set, err := evset.BuildL2(e, evset.BinSearch{}, ta, cands.Addrs[1:], evset.DefaultOptions())
	if err != nil {
		return 0, false
	}
	members := evset.FilterByL2(e, l2set, cands.Addrs[1:])
	t0 := h.Clock().Now()
	res := evset.BuildSF(e, algo, ta, members, evset.FilteredOptions())
	return h.Clock().Now() - t0, res.OK
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
