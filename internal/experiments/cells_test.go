package experiments

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/hierarchy"
)

func TestCellRegistry(t *testing.T) {
	ids := CellIDs()
	if !sort.StringsAreSorted(ids) {
		t.Error("CellIDs not sorted")
	}
	for _, want := range []string{
		"evset/gt", "evset/gtop", "evset/ps", "evset/psop", "evset/bins",
		"probe/parallel", "probe/sequential", "probe/detect",
	} {
		c, ok := LookupCell(want)
		if !ok {
			t.Errorf("cell %q not registered", want)
			continue
		}
		if c.ID != want || c.Run == nil || c.Desc == "" {
			t.Errorf("cell %q incomplete: %+v", want, c)
		}
		if c.Unit != "cycles" && c.Unit != "rate" {
			t.Errorf("cell %q has unknown unit %q", want, c.Unit)
		}
	}
	if _, ok := LookupCell("nope"); ok {
		t.Error("LookupCell accepted an unknown id")
	}
	if lines := CellList(); len(lines) != len(ids) || !strings.Contains(lines[0], ids[0]) {
		t.Errorf("CellList malformed: %v", lines)
	}
}

// TestCellTrialDeterminism checks a cell obeys the engine contract: the
// same config and seed yield the same sample on a fresh host and on a
// pooled, reset host.
func TestCellTrialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cell runs are slow")
	}
	cell, _ := LookupCell("probe/parallel")
	cfg := hierarchy.Scaled(2)
	samples := RunTrials(4, 1, 5, func(tr *Trial) Sample {
		// Trials 0/2 and 1/3 share seeds; 2 and 3 run on recycled hosts.
		return cell.Run(tr.WithSeed(uint64(42+tr.Index%2)), cfg)
	})
	if !reflect.DeepEqual(samples[0], samples[2]) || !reflect.DeepEqual(samples[1], samples[3]) {
		t.Errorf("cell trial not replayable on a pooled host: %+v", samples)
	}
}
