package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must have a
	// registered runner (DESIGN.md §3).
	want := []string{
		"table3", "fig2", "fig3", "table4", "filter", "icelake",
		"table5", "fig6", "fig7", "table6", "fig9", "e2e",
		"abl-policy", "abl-noise",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d entries, want >= %d", len(IDs()), len(want))
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Paper:  []string{"paper says"},
		Notes:  []string{"note"},
	}
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "paper says", "333", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep := Figure3(Options{Seed: 3, Trials: 8})
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The sequential/parallel ratio at 11U must exceed 10x.
	last := rep.Rows[len(rep.Rows)-1]
	ratio := last[len(last)-1]
	if !strings.HasSuffix(ratio, "x") {
		t.Fatalf("ratio cell %q", ratio)
	}
	v, err := strconv.ParseFloat(ratio[:len(ratio)-1], 64)
	if err != nil {
		t.Fatalf("parse %q: %v", ratio, err)
	}
	if v < 10 {
		t.Errorf("11U sequential/parallel ratio %.1f, want >= 10 (paper ~34x)", v)
	}
}

func TestFilterOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rep := FilterOverhead(Options{Seed: 5})
	if len(rep.Rows) < 4 {
		t.Fatalf("rows = %d: %v", len(rep.Rows), rep.Rows)
	}
}

func TestNoiseScaleFactors(t *testing.T) {
	o := Options{}
	unf := ConstructionNoiseScale(localConfig(o), false)
	fil := ConstructionNoiseScale(localConfig(o), true)
	if unf <= 1 || fil <= 1 {
		t.Fatalf("scales must exceed 1: %v %v", unf, fil)
	}
	if fil >= unf {
		t.Fatalf("filtered scale %v must be below unfiltered %v", fil, unf)
	}
	full := Options{Full: true}
	if s := ConstructionNoiseScale(localConfig(full), false); s != 1 {
		// 22-slice full local differs slightly from the 28-slice norm.
		if s < 0.5 || s > 2 {
			t.Fatalf("full-scale factor %v should be near 1", s)
		}
	}
}
