package experiments

import (
	"fmt"

	"repro/internal/cache"

	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/stats"
)

func init() {
	register("table5", "Table 5: prime and probe latencies of PS-Flush, PS-Alt and Parallel Probing", Table5)
	register("fig6", "Figure 6: covert-channel detection rate vs sender access interval", Figure6)
	register("abl-policy", "Ablation: Parallel Probing detection rate across replacement policies", AblationPolicy)
	register("abl-noise", "Ablation: detection rate and construction success across noise rates", AblationNoise)
}

// covertSetup builds one attacker environment plus the sets a covert
// experiment needs, using privileged congruence for the alt/sender lines
// (sender and receiver agree on the target set, §6.1).
func covertSetup(cfg hierarchy.Config, seed uint64) (*evset.Env, []memory.VAddr, []memory.VAddr, memory.PAddr, bool) {
	h := hierarchy.NewHost(cfg, seed)
	e := evset.NewEnv(h, seed^0xc0173)
	cands := evset.NewCandidates(e, 2*evset.DefaultPoolSize(cfg), 0)
	res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		return nil, nil, nil, 0, false
	}
	target := e.Main.SetOf(res.Set.Ta)
	used := map[memory.VAddr]bool{}
	for _, va := range res.Set.Lines {
		used[va] = true
	}
	var extra []memory.VAddr
	for _, va := range cands.Addrs {
		if !used[va] && va != res.Set.Ta && e.Main.SetOf(va) == target {
			extra = append(extra, va)
		}
	}
	ways := cfg.SFWays
	if len(extra) < ways+1 {
		return nil, nil, nil, 0, false
	}
	return e, res.Set.Lines, extra[:ways], e.Main.Translate(extra[ways]), true
}

// Table5 reports the prime and probe latencies of the three strategies
// on the Cloud Run host.
func Table5(o Options) *Report {
	rep := &Report{
		ID:     "table5",
		Title:  "Prime and probe latencies (Cloud Run, cycles)",
		Header: []string{"strategy", "prime mean", "prime std", "probe mean", "probe std"},
		Paper: []string{
			"PS-Flush prime 6024±990 | PS-Alt prime 2777±735 | Parallel prime 1121±448",
			"PS probe 94±0.7 | Parallel probe 118±0.7",
		},
	}
	reps := trials(o, 6)
	for _, strat := range []probe.Strategy{probe.PSFlush, probe.PSAlt, probe.Parallel} {
		var prime, prob []float64
		for i := 0; i < reps; i++ {
			seed := o.Seed + uint64(i)*31 + uint64(strat)
			e, lines, alt, sender, ok := covertSetup(cloudConfig(o), seed)
			if !ok {
				continue
			}
			m := probe.NewMonitor(e, strat, lines).WithAlt(alt)
			res := probe.RunCovertChannel(e, m, 2, sender, 50000, 60)
			prime = append(prime, res.PrimeLatency...)
			prob = append(prob, res.ProbeLatency...)
		}
		rep.Rows = append(rep.Rows, []string{
			strat.String(),
			fmt.Sprintf("%.0f", stats.Mean(prime)), fmt.Sprintf("%.0f", stats.Stddev(prime)),
			fmt.Sprintf("%.0f", stats.Mean(prob)), fmt.Sprintf("%.0f", stats.Stddev(prob)),
		})
	}
	rep.Notes = append(rep.Notes, "shape to check: prime PS-Flush > PS-Alt > Parallel; probe latencies within ~25 cycles of each other")
	return rep
}

// Figure6 measures the covert-channel detection rate of each strategy
// across sender access intervals.
func Figure6(o Options) *Report {
	rep := &Report{
		ID:     "fig6",
		Title:  "Detection rate vs access interval (Cloud Run)",
		Header: []string{"interval", "Parallel", "PS-Flush", "PS-Alt"},
		Paper: []string{
			"2k cycles: Parallel 84.1%, PS-Flush 15.4%, PS-Alt 6.0%;  100k: 91.1%, 82.1%, 36.9%",
		},
	}
	intervals := []clock.Cycles{1000, 2000, 5000, 7000, 10000, 50000, 100000}
	count := trials(o, 300)
	reps := 3
	for _, iv := range intervals {
		row := []string{fmt.Sprint(iv)}
		for _, strat := range []probe.Strategy{probe.Parallel, probe.PSFlush, probe.PSAlt} {
			var rates []float64
			for r := 0; r < reps; r++ {
				seed := o.Seed + uint64(iv) + uint64(r)*131 + uint64(strat)*7
				e, lines, alt, sender, ok := covertSetup(cloudConfig(o), seed)
				if !ok {
					continue
				}
				m := probe.NewMonitor(e, strat, lines).WithAlt(alt)
				res := probe.RunCovertChannel(e, m, 2, sender, iv, count)
				rates = append(rates, res.DetectionRate)
			}
			row = append(row, pct(stats.Mean(rates)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "shape to check: Parallel dominates at short intervals (prime latency bound) and stays highest at 100k")
	return rep
}

// AblationPolicy re-runs the covert channel with different SF/LLC
// replacement policies: the paper argues Parallel Probing needs no
// replacement-state preparation and so tolerates unknown policies (§6.1).
func AblationPolicy(o Options) *Report {
	rep := &Report{
		ID:     "abl-policy",
		Title:  "Parallel Probing detection rate across replacement policies (5k-cycle interval, Cloud Run)",
		Header: []string{"policy", "Parallel", "PS-Flush"},
	}
	pols := []struct {
		name string
		kind cache.PolicyKind
	}{{"LRU", cache.TrueLRU}, {"SRRIP", cache.SRRIP}, {"QLRU", cache.QLRU}}
	for _, p := range pols {
		row := []string{p.name}
		for _, strat := range []probe.Strategy{probe.Parallel, probe.PSFlush} {
			cfg := cloudConfig(o)
			cfg.SFPolicy = p.kind
			var rates []float64
			for r := 0; r < 3; r++ {
				e, lines, alt, sender, ok := covertSetup(cfg, o.Seed+uint64(r)*17+uint64(strat))
				if !ok {
					continue
				}
				m := probe.NewMonitor(e, strat, lines).WithAlt(alt)
				res := probe.RunCovertChannel(e, m, 2, sender, 5000, trials(o, 250))
				rates = append(rates, res.DetectionRate)
			}
			row = append(row, pct(stats.Mean(rates)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"design-choice ablation (DESIGN.md §4): Parallel Probing's advantage should persist across policies",
		"0% rows mean eviction-set construction itself failed under that policy: the scan-resistant QLRU model",
		"defeats single-traversal TestEviction, which is why real tooling re-traverses against such caches")
	return rep
}

// AblationNoise sweeps the background access rate between the local and
// cloud levels and reports BinS construction success and Parallel
// detection rate.
func AblationNoise(o Options) *Report {
	rep := &Report{
		ID:     "abl-noise",
		Title:  "Noise-rate sweep: BinS+filter construction success and Parallel detection rate",
		Header: []string{"noise acc/ms/set", "BinS succ", "detect@10k"},
	}
	for _, rate := range []float64{0.29, 1, 3, 6, 11.5, 23, 46} {
		cfg := localConfig(o).WithNoiseRate(rate * constructionNoiseScale(localConfig(o), true))
		var succ stats.Counter
		n := trials(o, 8)
		for i := 0; i < n; i++ {
			seed := o.Seed + uint64(i)*911 + uint64(rate*10)
			h := hierarchy.NewHost(cfg, seed)
			e := evset.NewEnv(h, seed^0xab1)
			cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
			res, _ := evset.BuildSingle(e, cands.Addrs[0], cands, evset.BulkOptions{Algo: evset.BinSearch{}, PerSet: evset.FilteredOptions()})
			succ.Record(res.OK && res.Set != nil && res.Set.Verified(e.Main, cfg.SFWays))
		}
		var rates []float64
		for r := 0; r < 2; r++ {
			e, lines, alt, sender, ok := covertSetup(cfg, o.Seed+uint64(r)*13+uint64(rate))
			if !ok {
				continue
			}
			m := probe.NewMonitor(e, probe.Parallel, lines).WithAlt(alt)
			res := probe.RunCovertChannel(e, m, 2, sender, 10000, trials(o, 200))
			rates = append(rates, res.DetectionRate)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.2f", rate), pct(succ.Rate()), pct(stats.Mean(rates)),
		})
	}
	return rep
}
