package experiments

import (
	"fmt"

	"repro/internal/cache"

	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/stats"
)

func init() {
	register("table5", "Table 5: prime and probe latencies of PS-Flush, PS-Alt and Parallel Probing", Table5)
	register("fig6", "Figure 6: covert-channel detection rate vs sender access interval", Figure6)
	register("abl-policy", "Ablation: Parallel Probing detection rate across replacement policies", AblationPolicy)
	register("abl-noise", "Ablation: detection rate and construction success across noise rates", AblationNoise)
}

// CovertSetup builds one attacker environment plus the sets a covert
// experiment needs — the receiver's eviction set, a disjoint alt set,
// and a congruent sender line — using privileged congruence for the
// alt/sender lines (sender and receiver agree on the target set, §6.1).
// Exported so the covert scenarios (internal/scenario) share the exact
// setup of the probe/detect cell and Table 5 / Figure 6 runners.
func CovertSetup(t *Trial, cfg hierarchy.Config, seed uint64) (*evset.Env, []memory.VAddr, []memory.VAddr, memory.PAddr, bool) {
	h := t.Host(cfg, seed)
	e := evset.NewEnv(h, seed^0xc0173)
	cands := evset.NewCandidates(e, 2*evset.DefaultPoolSize(cfg), 0)
	res := evset.BuildSF(e, evset.BinSearch{}, cands.Addrs[0], cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		return nil, nil, nil, 0, false
	}
	target := e.Main.SetOf(res.Set.Ta)
	used := map[memory.VAddr]bool{}
	for _, va := range res.Set.Lines {
		used[va] = true
	}
	var extra []memory.VAddr
	for _, va := range cands.Addrs {
		if !used[va] && va != res.Set.Ta && e.Main.SetOf(va) == target {
			extra = append(extra, va)
		}
	}
	ways := cfg.SFWays
	if len(extra) < ways+1 {
		return nil, nil, nil, 0, false
	}
	return e, res.Set.Lines, extra[:ways], e.Main.Translate(extra[ways]), true
}

// Table5 reports the prime and probe latencies of the three strategies
// on the Cloud Run host.
func Table5(o Options) *Report {
	rep := &Report{
		ID:     "table5",
		Title:  "Prime and probe latencies (Cloud Run, cycles)",
		Header: []string{"strategy", "prime mean", "prime std", "probe mean", "probe std"},
		Paper: []string{
			"PS-Flush prime 6024±990 | PS-Alt prime 2777±735 | Parallel prime 1121±448",
			"PS probe 94±0.7 | Parallel probe 118±0.7",
		},
	}
	reps := trials(o, 6)
	strats := []probe.Strategy{probe.PSFlush, probe.PSAlt, probe.Parallel}
	cfg := cloudConfig(o)
	samples := RunTrials(len(strats)*reps, o.Workers, SubSeed(o.Seed, "table5"), func(t *Trial) Sample {
		strat := strats[t.Index/reps]
		e, lines, alt, sender, ok := CovertSetup(t, cfg, t.Seed)
		if !ok {
			return Sample{}
		}
		m := probe.NewMonitor(e, strat, lines).WithAlt(alt)
		res := probe.RunCovertChannel(e, m, 2, sender, 50000, 60)
		return Sample{OK: true, Series: [][]float64{res.PrimeLatency, res.ProbeLatency}}
	})
	for si, strat := range strats {
		cs := samples[si*reps : (si+1)*reps]
		prime := concatSeries(cs, 0)
		prob := concatSeries(cs, 1)
		rep.Rows = append(rep.Rows, []string{
			strat.String(),
			fmt.Sprintf("%.0f", stats.Mean(prime)), fmt.Sprintf("%.0f", stats.Stddev(prime)),
			fmt.Sprintf("%.0f", stats.Mean(prob)), fmt.Sprintf("%.0f", stats.Stddev(prob)),
		})
	}
	rep.Notes = append(rep.Notes, "shape to check: prime PS-Flush > PS-Alt > Parallel; probe latencies within ~25 cycles of each other")
	return rep
}

// Figure6 measures the covert-channel detection rate of each strategy
// across sender access intervals.
func Figure6(o Options) *Report {
	rep := &Report{
		ID:     "fig6",
		Title:  "Detection rate vs access interval (Cloud Run)",
		Header: []string{"interval", "Parallel", "PS-Flush", "PS-Alt"},
		Paper: []string{
			"2k cycles: Parallel 84.1%, PS-Flush 15.4%, PS-Alt 6.0%;  100k: 91.1%, 82.1%, 36.9%",
		},
	}
	intervals := []clock.Cycles{1000, 2000, 5000, 7000, 10000, 50000, 100000}
	strats := []probe.Strategy{probe.Parallel, probe.PSFlush, probe.PSAlt}
	count := trials(o, 300)
	reps := 3
	cfg := cloudConfig(o)
	samples := RunTrials(len(intervals)*len(strats)*reps, o.Workers, SubSeed(o.Seed, "fig6"), func(t *Trial) Sample {
		cellIdx := t.Index / reps
		iv := intervals[cellIdx/len(strats)]
		strat := strats[cellIdx%len(strats)]
		e, lines, alt, sender, ok := CovertSetup(t, cfg, t.Seed)
		if !ok {
			return Sample{}
		}
		m := probe.NewMonitor(e, strat, lines).WithAlt(alt)
		res := probe.RunCovertChannel(e, m, 2, sender, iv, count)
		return Sample{OK: true, Value: res.DetectionRate}
	})
	for ii, iv := range intervals {
		row := []string{fmt.Sprint(iv)}
		for si := range strats {
			ci := ii*len(strats) + si
			cs := samples[ci*reps : (ci+1)*reps]
			row = append(row, pct(stats.Mean(okValues(cs))))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "shape to check: Parallel dominates at short intervals (prime latency bound) and stays highest at 100k")
	return rep
}

// AblationPolicy re-runs the covert channel with different SF/LLC
// replacement policies: the paper argues Parallel Probing needs no
// replacement-state preparation and so tolerates unknown policies (§6.1).
func AblationPolicy(o Options) *Report {
	rep := &Report{
		ID:     "abl-policy",
		Title:  "Parallel Probing detection rate across replacement policies (5k-cycle interval, Cloud Run)",
		Header: []string{"policy", "Parallel", "PS-Flush"},
	}
	pols := []struct {
		name string
		kind cache.PolicyKind
	}{{"LRU", cache.TrueLRU}, {"SRRIP", cache.SRRIP}, {"QLRU", cache.QLRU}}
	strats := []probe.Strategy{probe.Parallel, probe.PSFlush}
	const reps = 3
	count := trials(o, 250)
	samples := RunTrials(len(pols)*len(strats)*reps, o.Workers, SubSeed(o.Seed, "abl-policy"), func(t *Trial) Sample {
		cellIdx := t.Index / reps
		p := pols[cellIdx/len(strats)]
		strat := strats[cellIdx%len(strats)]
		cfg := cloudConfig(o)
		cfg.SFPolicy = p.kind
		e, lines, alt, sender, ok := CovertSetup(t, cfg, t.Seed)
		if !ok {
			return Sample{}
		}
		m := probe.NewMonitor(e, strat, lines).WithAlt(alt)
		res := probe.RunCovertChannel(e, m, 2, sender, 5000, count)
		return Sample{OK: true, Value: res.DetectionRate}
	})
	for pi, p := range pols {
		row := []string{p.name}
		for si := range strats {
			ci := pi*len(strats) + si
			cs := samples[ci*reps : (ci+1)*reps]
			row = append(row, pct(stats.Mean(okValues(cs))))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"design-choice ablation (DESIGN.md §4): Parallel Probing's advantage should persist across policies",
		"0% rows mean eviction-set construction itself failed under that policy: the scan-resistant QLRU model",
		"defeats single-traversal TestEviction, which is why real tooling re-traverses against such caches")
	return rep
}

// AblationNoise sweeps the background access rate between the local and
// cloud levels and reports BinS construction success and Parallel
// detection rate.
func AblationNoise(o Options) *Report {
	rep := &Report{
		ID:     "abl-noise",
		Title:  "Noise-rate sweep: BinS+filter construction success and Parallel detection rate",
		Header: []string{"noise acc/ms/set", "BinS succ", "detect@10k"},
	}
	noiseRates := []float64{0.29, 1, 3, 6, 11.5, 23, 46}
	n := trials(o, 8)
	const covertReps = 2
	count := trials(o, 200)
	perRate := n + covertReps // n construction trials then covertReps detection trials
	cfgFor := func(rate float64) hierarchy.Config {
		return localConfig(o).WithNoiseRate(rate * ConstructionNoiseScale(localConfig(o), true))
	}
	samples := RunTrials(len(noiseRates)*perRate, o.Workers, SubSeed(o.Seed, "abl-noise"), func(t *Trial) Sample {
		rate := noiseRates[t.Index/perRate]
		cfg := cfgFor(rate)
		if t.Index%perRate < n {
			// Construction trial.
			h := t.Host(cfg, t.Seed)
			e := evset.NewEnv(h, t.Seed^0xab1)
			cands := evset.NewCandidates(e, evset.DefaultPoolSize(cfg), 0)
			res, _ := evset.BuildSingle(e, cands.Addrs[0], cands, evset.BulkOptions{Algo: evset.BinSearch{}, PerSet: evset.FilteredOptions()})
			ok := res.OK && res.Set != nil && res.Set.Verified(e.Main, cfg.SFWays)
			return Sample{OK: ok}
		}
		// Detection trial.
		e, lines, alt, sender, ok := CovertSetup(t, cfg, t.Seed)
		if !ok {
			return Sample{}
		}
		m := probe.NewMonitor(e, probe.Parallel, lines).WithAlt(alt)
		res := probe.RunCovertChannel(e, m, 2, sender, 10000, count)
		return Sample{OK: true, Value: res.DetectionRate}
	})
	for ri, rate := range noiseRates {
		rs := samples[ri*perRate : (ri+1)*perRate]
		cons := rs[:n]
		det := rs[n:]
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.2f", rate), pct(successRate(cons)), pct(stats.Mean(okValues(det))),
		})
	}
	return rep
}
