package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// This file implements the parallel trial-orchestration engine every
// runner is built on. Runners describe their work as n independent
// trials; RunTrials fans the trials out over a worker pool and returns
// the samples in trial order. Determinism is preserved under any worker
// count by two rules:
//
//  1. Trial i's randomness is fully determined by its seed, which is
//     drawn from a splitmix64 stream (xrand.Stream) indexed by i — never
//     by worker identity or completion order.
//  2. A trial touches no state outside its own simulated host. Hosts are
//     recycled through per-worker pools, and hierarchy.Host.Reset
//     restores a pooled host to the exact state hierarchy.NewHost would
//     produce for the trial's seed, so a recycled host replays the same
//     virtual-time behaviour as a fresh one.
//
// Together these make reports byte-identical between workers=1 and
// workers=N while letting steady-state trials allocate near-zero.

// Sample is one trial's contribution to a report: a success flag, a
// primary scalar (by convention the trial duration in cycles), optional
// extra scalars, and optional variable-length series.
type Sample struct {
	OK     bool
	Value  float64
	Extra  []float64
	Series [][]float64
}

// Trial hands a trial function its identity, its derived seed, and the
// worker-local host pool.
type Trial struct {
	// Index is the trial's position in [0, n); aggregation slices samples
	// by this index, so it also selects the grid cell in flattened runs.
	Index int
	// Seed is xrand.Stream(baseSeed, Index): the only randomness a trial
	// may consume, directly or via sub-seeds derived from it.
	Seed uint64
	// Trace is the trial's span track when the run is traced
	// (RunTrialsObs with a Sink.Tracer), nil otherwise. Instrumented
	// runners call Trace.Span unconditionally — a nil TrialTrace drops
	// spans at zero cost — and must never let tracing touch a rng
	// stream or the simulated clock (determinism clause 10).
	Trace *obs.TrialTrace
	pool  *hostPool
}

// WithSeed returns a copy of the trial carrying the given seed and the
// same worker-local host pool. The sweep runner uses it to re-root a
// trial's randomness in its grid cell's own seed stream, so a cell's
// results do not depend on its flat position in the grid.
func (t *Trial) WithSeed(seed uint64) *Trial {
	c := *t
	c.Seed = seed
	return &c
}

// Host returns a host with the given config, seeded for this trial —
// a pooled host reset to the seed when the worker has one, a fresh host
// otherwise. Both are behaviourally identical; callers must not hold a
// host across trials. Requesting the same config twice in one trial
// returns the same host, reset again.
func (t *Trial) Host(cfg hierarchy.Config, seed uint64) *hierarchy.Host {
	return t.pool.get(cfg, seed)
}

// hostPool caches one host per config for one worker. Hosts carry large
// allocations (frame free-lists, per-slice cache arrays), so recycling
// them drops the steady-state allocation rate of a trial to near zero.
// The map keys on Config.Key (a deterministic fingerprint string):
// Config itself stopped being a valid map key when it grew the Tenants
// spec slice.
type hostPool struct {
	hosts map[string]*hierarchy.Host
}

func (p *hostPool) get(cfg hierarchy.Config, seed uint64) *hierarchy.Host {
	key := cfg.Key()
	if h, ok := p.hosts[key]; ok {
		h.Reset(seed)
		return h
	}
	h := hierarchy.NewHost(cfg, seed)
	if p.hosts == nil {
		p.hosts = make(map[string]*hierarchy.Host)
	}
	p.hosts[key] = h
	return h
}

// RunTrials executes n trials of fn across a worker pool and returns the
// samples in trial order. workers <= 0 selects GOMAXPROCS. Per-trial
// seeds are drawn from the splitmix64 stream rooted at seed, so the
// result is independent of the worker count and of scheduling order.
//
// A panic inside a trial is re-raised on the calling goroutine (wrapped
// with the trial index) after the pool has drained, never from a worker —
// so a buggy trial cannot deadlock the pool or kill the process from an
// unrecoverable goroutine. Callers that would rather handle the failure
// use RunTrialsErr.
func RunTrials(n, workers int, seed uint64, fn func(t *Trial) Sample) []Sample {
	out, tp, _ := runTrials(context.Background(), n, workers, seed, nil, fn)
	if tp != nil {
		// Panic with the typed value (its Error text prints identically)
		// so a recover() above can still inspect index and cause.
		panic(tp)
	}
	return out
}

// RunTrialsErr is RunTrials with two failure modes surfaced as errors
// instead of panics: a panicking trial is converted into an error
// identifying the trial, and a cancelled ctx stops the run between
// trials (in-flight trials finish; no new trials start) and returns
// ctx's error. Because cancellation is only ever checked on trial
// boundaries, the samples of trials that did complete are exactly what
// an uninterrupted run would have produced — which is what lets the
// campaign layer checkpoint completed cells and resume byte-identically.
// The sweep runner uses the error form so one broken grid cell fails the
// sweep cleanly.
func RunTrialsErr(ctx context.Context, n, workers int, seed uint64, fn func(t *Trial) Sample) ([]Sample, error) {
	return RunTrialsObs(ctx, n, workers, seed, nil, fn)
}

// RunTrialsObs is RunTrialsErr with an observability sink: when
// sink.Tracer is set every trial carries a TrialTrace on
// (sink.TracePID, trial index), and when sink.Metrics is set the
// engine records per-trial wall durations (engine_trial_seconds) and
// a trial counter (engine_trials_total). A nil or empty sink is the
// exact disabled path — instrumentation reads only the host wall
// clock, never a rng stream or the simulated clock, so samples are
// byte-identical with the sink on or off (determinism clause 10).
func RunTrialsObs(ctx context.Context, n, workers int, seed uint64, sink *obs.Sink, fn func(t *Trial) Sample) ([]Sample, error) {
	out, tp, cancelled := runTrials(ctx, n, workers, seed, sink, fn)
	if tp != nil {
		return nil, tp
	}
	if cancelled {
		return nil, context.Cause(ctx)
	}
	return out, nil
}

// trialPanic records the first trial panic observed by a run, with the
// trial goroutine's stack captured at recover time (the re-raise on the
// caller's goroutine would otherwise lose the faulting site).
type trialPanic struct {
	index int
	value any
	stack []byte
}

func (p *trialPanic) Error() string {
	return fmt.Sprintf("experiments: trial %d panicked: %v\n%s", p.index, p.value, p.stack)
}

// TrialIndex returns the index of the trial that panicked; callers that
// map flat indices onto richer coordinates (the sweep's grid cells) use
// it to name the failing unit of work.
func (p *trialPanic) TrialIndex() int { return p.index }

func runTrials(ctx context.Context, n, workers int, seed uint64, sink *obs.Sink, fn func(t *Trial) Sample) ([]Sample, *trialPanic, bool) {
	if n <= 0 {
		return nil, nil, false
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Observability hooks: series are resolved once per run, and the
	// nil-receiver no-ops of internal/obs make the disabled path a
	// pointer test. Wall-clock reads happen only when metrics are live.
	var tracer *obs.Tracer
	var trialSec *obs.Histogram
	var trialsTotal *obs.Counter
	tracePID := 0
	if sink != nil {
		tracer = sink.Tracer
		tracePID = sink.TracePID
		if sink.Metrics != nil {
			trialSec = sink.Metrics.Histogram("engine_trial_seconds", nil)
			trialsTotal = sink.Metrics.Counter("engine_trials_total")
		}
	}
	mkTrial := func(i int, pool *hostPool) *Trial {
		t := &Trial{Index: i, Seed: xrand.Stream(seed, uint64(i)), pool: pool}
		if tracer != nil {
			t.Trace = &obs.TrialTrace{Tracer: tracer, PID: tracePID, TID: i}
		}
		return t
	}
	out := make([]Sample, n)
	var firstPanic atomic.Pointer[trialPanic]
	// record keeps the lowest-index panic observed, not whichever worker
	// recovered first, so the attribution a caller reports (e.g. the
	// sweep's failing grid cell) does not depend on scheduling order.
	record := func(tp *trialPanic) {
		for {
			cur := firstPanic.Load()
			if cur != nil && cur.index <= tp.index {
				return
			}
			if firstPanic.CompareAndSwap(cur, tp) {
				return
			}
		}
	}
	// runOne recovers a panicking fn so a worker goroutine always returns
	// to its trial loop; panics beyond the lowest-index one are side
	// effects of an already-failed run and are dropped.
	runOne := func(t *Trial) {
		defer func() {
			if r := recover(); r != nil {
				record(&trialPanic{index: t.Index, value: r, stack: debug.Stack()})
			}
		}()
		if trialSec != nil {
			t0 := time.Now()
			defer func() {
				trialSec.Observe(time.Since(t0).Seconds())
				trialsTotal.Inc()
			}()
		}
		out[t.Index] = fn(t)
	}
	// Cancellation is polled between trials only — never inside one — so
	// every trial that starts also finishes, and the samples of finished
	// trials are untouched by the interruption.
	var cancelled atomic.Bool
	interrupted := func() bool {
		if cancelled.Load() {
			return true
		}
		if ctx.Err() != nil {
			cancelled.Store(true)
			return true
		}
		return false
	}
	if workers == 1 {
		pool := &hostPool{}
		for i := 0; i < n; i++ {
			if firstPanic.Load() != nil || interrupted() {
				break
			}
			runOne(mkTrial(i, pool))
		}
		return out, firstPanic.Load(), cancelled.Load()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := &hostPool{}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstPanic.Load() != nil || interrupted() {
					return
				}
				runOne(mkTrial(i, pool))
			}
		}()
	}
	wg.Wait()
	return out, firstPanic.Load(), cancelled.Load()
}

// SubSeed derives an independent base seed for one labelled sub-run of an
// experiment (e.g. one scenario of table6), so that separate RunTrials
// calls within a report never share trial seeds.
func SubSeed(seed uint64, labels ...string) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h = (h ^ uint64(l[i])) * 1099511628211
		}
		h = (h ^ '/') * 1099511628211
	}
	return xrand.Stream(seed, h)
}

// Aggregation helpers shared by the runners.

// successRate returns the fraction of samples with OK set.
func successRate(samples []Sample) float64 {
	var c stats.Counter
	for _, s := range samples {
		c.Record(s.OK)
	}
	return c.Rate()
}

// sampleValues returns every sample's primary scalar.
func sampleValues(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Value
	}
	return out
}

// okValues returns the primary scalars of successful samples only.
func okValues(samples []Sample) []float64 {
	var out []float64
	for _, s := range samples {
		if s.OK {
			out = append(out, s.Value)
		}
	}
	return out
}

// concatSeries concatenates the k-th series of every sample, in trial
// order.
func concatSeries(samples []Sample, k int) []float64 {
	var out []float64
	for _, s := range samples {
		if k < len(s.Series) {
			out = append(out, s.Series[k]...)
		}
	}
	return out
}
