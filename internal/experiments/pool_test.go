package experiments

import (
	"testing"

	"repro/internal/defense"
	"repro/internal/hierarchy"
	"repro/internal/tenant"
)

// TestHostPoolReusesEqualConfigs pins the Config.Key fix at the pool
// layer: two equal-valued configs built independently — including
// pointer fields (Defense) and slice fields (Tenants) that a naive
// %+v fingerprint would print by address — must resolve to the SAME
// pooled host, while a value difference must build a second host.
func TestHostPoolReusesEqualConfigs(t *testing.T) {
	mk := func() hierarchy.Config {
		return hierarchy.Scaled(2).
			WithTenants(tenant.Spec{Model: "stream", Rate: 11.5, LLCProb: 0.5, Width: 4}).
			WithDefense(defense.Spec{Model: "quiesce", Quantum: 256})
	}
	p := &hostPool{}
	h1 := p.get(mk(), 1)
	h2 := p.get(mk(), 2)
	if h1 != h2 {
		t.Fatal("equal configs must share one pool entry (host-pool reuse defeated)")
	}
	if len(p.hosts) != 1 {
		t.Fatalf("pool holds %d hosts, want 1", len(p.hosts))
	}
	other := mk().WithDefense(defense.Spec{Model: "quiesce", Quantum: 128})
	if h3 := p.get(other, 3); h3 == h1 {
		t.Fatal("different defense parameters must not share a pooled host")
	}
	if len(p.hosts) != 2 {
		t.Fatalf("pool holds %d hosts, want 2", len(p.hosts))
	}
}
