package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/clock"
	"repro/internal/dsp"
	"repro/internal/ec2m"
	"repro/internal/evset"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func init() {
	register("fig7", "Figure 7: PSD of target vs non-target SF set traces", Figure7)
	register("table6", "Table 6: PSD-based target-set identification (PageOffset & WholeSys)", Table6)
	register("fig9", "Figure 9: trace snippet with detected accesses vs nonce bits", Figure9)
	register("e2e", "§7.3: end-to-end cross-tenant nonce extraction", EndToEnd)
}

// victimCurve picks sect571r1-scale for full runs (571-bit nonces) and
// sect163 for scaled runs (162 ladder iterations per signing).
func victimCurve(o Options) *ec2m.Curve {
	if o.Full {
		return ec2m.Sect571()
	}
	return ec2m.Sect163()
}

// newAttackSession builds a cloud session with a victim on a standalone
// host (used for the shared training sessions built outside RunTrials).
func newAttackSession(o Options, seed uint64) *attack.Session {
	return attack.NewSession(cloudConfig(o), victimCurve(o), seed)
}

// pooledAttackSession builds a cloud session on the trial's pooled host.
func pooledAttackSession(o Options, t *Trial, seed uint64) *attack.Session {
	return attack.NewSessionOn(t.Host(cloudConfig(o), seed), victimCurve(o), seed)
}

// Figure7 captures one trace from the target SF set and one from a
// non-target set while the victim signs, and reports the PSD peaks at
// the expected base frequency and harmonics.
func Figure7(o Options) *Report {
	rep := &Report{
		ID:     "fig7",
		Title:  "PSD of target vs non-target traces (Cloud Run)",
		Header: []string{"trace", "accesses", "peak@f0/floor", "peak@2f0/floor", "peak@1.5f0/floor"},
		Paper: []string{
			"target: clear peaks at f0 ≈ 0.41 MHz and harmonics; non-target: no peaks at expected frequencies",
		},
	}
	samples := RunTrials(1, o.Workers, SubSeed(o.Seed, "fig7"), func(t *Trial) Sample {
		s := pooledAttackSession(o, t, t.Seed)
		p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
		td := s.CollectTrainingData(p, 2, 2)
		if len(td.Target) == 0 || len(td.NonTarget) == 0 {
			return Sample{}
		}
		period := s.V.ExpectedAccessPeriod()
		f0 := 1.0 / period
		describe := func(tr *probe.Trace) []float64 {
			sig := dsp.BinTrace(timesU64(tr), uint64(tr.Start), uint64(tr.End), uint64(p.BinCycles))
			spec := dsp.Welch(sig, 1.0/float64(p.BinCycles), dsp.DefaultWelch())
			floor := spec.MedianPower()
			if floor <= 0 {
				floor = 1e-12
			}
			tol := f0 * 0.15
			return []float64{
				float64(len(tr.Times)),
				spec.PeakNear(f0, tol) / floor,
				spec.PeakNear(2*f0, tol) / floor,
				spec.PeakNear(1.5*f0, tol) / floor,
			}
		}
		return Sample{
			OK:     true,
			Value:  period,
			Series: [][]float64{describe(td.Target[0]), describe(td.NonTarget[0])},
		}
	})
	s := samples[0]
	if !s.OK {
		rep.Notes = append(rep.Notes, "trace collection failed")
		return rep
	}
	for i, name := range []string{"target", "non-target"} {
		d := s.Series[i]
		rep.Rows = append(rep.Rows, []string{
			name, fmt.Sprint(int(d[0])),
			fmt.Sprintf("%.1f", d[1]), fmt.Sprintf("%.1f", d[2]), fmt.Sprintf("%.1f", d[3]),
		})
	}
	period := s.Value
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("f0 = 1/%.0f cycles = %.2f MHz at 2 GHz", period, 2000/period),
		"shape to check: target peak@f0 and @2f0 well above floor; off-frequency 1.5·f0 near floor; non-target flat")
	return rep
}

func timesU64(tr *probe.Trace) []uint64 {
	out := make([]uint64, len(tr.Times))
	for i, t := range tr.Times {
		out[i] = uint64(t)
	}
	return out
}

// Table6 measures target-set identification: success rate, time to find
// the target, and scan rate, under PageOffset and WholeSys scanning.
func Table6(o Options) *Report {
	rep := &Report{
		ID:     "table6",
		Title:  "PSD target-set identification (Cloud Run)",
		Header: []string{"scenario", "succ", "avg time", "p95 time", "sets/s", "n"},
		Paper: []string{
			"PageOffset: 94.1% success, 6.1 s avg, 16.1 s p95, 831 sets/s (60 s timeout)",
			"WholeSys:   73.9% success, 179.7 s avg, 546.6 s p95, 762 sets/s (900 s timeout)",
		},
	}
	// Train classifiers once on a separate training host; the trained
	// scanner and extractor are read-only from then on, so the parallel
	// trials can share them.
	train := newAttackSession(o, o.Seed^0x7121)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	rng := xrand.New(o.Seed ^ 0x9)
	scanner, ex, _ := train.TrainAll(p, rng)
	if scanner == nil {
		// An index-scrambling defense override (-defense randomize/scatter)
		// starves the training pool; report the failure instead of running
		// a scan with no classifier.
		rep.Notes = append(rep.Notes, "training failed: no monitorable training sets under the configured defense")
		return rep
	}

	type scen struct {
		name    string
		trials  int
		timeout clock.Cycles
		whole   bool
	}
	scens := []scen{
		{"PageOffset", trials(o, 8), clock.FromMillis(60_000), false},
		{"WholeSys", maxInt(2, trials(o, 8)/3), clock.FromMillis(900_000), true},
	}
	for _, sc := range scens {
		samples := RunTrials(sc.trials, o.Workers, SubSeed(o.Seed, "table6", sc.name), func(t *Trial) Sample {
			s := pooledAttackSession(o, t, t.Seed)
			sets := buildScanSets(s, sc.whole)
			if len(sets) == 0 {
				return Sample{Extra: []float64{0, 0}}
			}
			opt := attack.ScanOptions{Timeout: sc.timeout}
			if sc.whole {
				opt.VerifyByExtraction = true
				opt.Extractor = ex
			}
			res := s.ScanForTarget(sets, scanner, opt)
			return Sample{
				OK:    res.Found && res.Correct,
				Value: float64(res.Duration),
				Extra: []float64{float64(res.Scanned), res.Duration.Seconds()},
			}
		})
		var succ stats.Counter
		scanned, dur := 0.0, 0.0
		for _, s := range samples {
			succ.Record(s.OK)
			scanned += s.Extra[0]
			dur += s.Extra[1]
		}
		times := okValues(samples)
		rate := 0.0
		if dur > 0 {
			rate = scanned / dur
		}
		rep.Rows = append(rep.Rows, []string{
			sc.name, pct(succ.Rate()),
			sec(stats.Mean(times)), sec(stats.Percentile(times, 95)),
			fmt.Sprintf("%.0f", rate), fmt.Sprint(sc.trials),
		})
	}
	rep.Notes = append(rep.Notes,
		"success requires identifying the *correct* set (privileged check)",
		"shape to check: PageOffset succeeds faster and more often than WholeSys (de-synchronization)")
	return rep
}

// buildScanSets runs Step 1 for the scan experiments.
func buildScanSets(s *attack.Session, wholeSys bool) []*evset.EvictionSet {
	opt := evset.BulkOptions{Algo: evset.BinSearch{}, PerSet: evset.FilteredOptions()}
	if !wholeSys {
		return s.BuildEvictionSets(opt).Sets
	}
	cands := evset.NewCandidates(s.Env, evset.DefaultPoolSize(s.H.Config()), 0)
	return evset.BuildWholeSys(s.Env, cands, opt).Sets
}

// Figure9 prints a short annotated window of a captured trace: detected
// accesses against ground-truth iteration boundaries and nonce bits.
func Figure9(o Options) *Report {
	rep := &Report{
		ID:     "fig9",
		Title:  "Trace snippet: detections vs nonce bits (two accesses per 0-bit iteration, one per 1-bit)",
		Header: []string{"iter", "bit", "boundary(µs)", "detections in iteration (µs offsets)"},
		Paper:  []string{"Figure 9 shows iterations with bit 0 exhibiting a midpoint access; bits read directly off the trace"},
	}
	// Row text is built inside the trial; the per-trial slot keeps the
	// write race-free for any trial count, like the engine's own results.
	const fig9Trials = 1
	rowsByTrial := make([][][]string, fig9Trials)
	samples := RunTrials(fig9Trials, o.Workers, SubSeed(o.Seed, "fig9"), func(t *Trial) Sample {
		s := pooledAttackSession(o, t, t.Seed)
		lines := targetSetLines(s)
		if lines == nil {
			return Sample{}
		}
		m := probe.NewMonitor(s.Env, probe.Parallel, lines)
		rec := s.TriggerOneSigning()
		tr := m.Capture(rec.End - s.H.Clock().Now() + 20_000)

		var rows [][]string
		shown := 0
		for i := 0; i+1 < len(rec.IterStarts) && shown < 10; i++ {
			lo, hi := rec.IterStarts[i], rec.IterStarts[i+1]
			var offs []string
			for _, tt := range tr.Times {
				if tt >= lo && tt < hi {
					offs = append(offs, fmt.Sprintf("+%.1f", clock.Cycles(tt-lo).Micros()))
				}
			}
			if len(offs) == 0 {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprint(i), fmt.Sprint(rec.Bits[i]),
				fmt.Sprintf("%.1f", lo.Micros()), fmt.Sprint(offs),
			})
			shown++
		}
		rowsByTrial[t.Index] = rows
		return Sample{OK: true}
	})
	if !samples[0].OK {
		rep.Notes = append(rep.Notes, "no congruent lines found")
		return rep
	}
	rep.Rows = rowsByTrial[0]
	rep.Notes = append(rep.Notes, "shape to check: 0-bit iterations show a ~+2.4µs midpoint detection in addition to the boundary one")
	return rep
}

// targetSetLines resolves SFWays congruent lines for the victim's target
// set by privileged inspection (controlled-experiment setup).
func targetSetLines(s *attack.Session) []memory.VAddr {
	cands := evset.NewCandidates(s.Env, 2*evset.DefaultPoolSize(s.H.Config()), s.V.TargetOffset())
	var out []memory.VAddr
	for _, va := range cands.Addrs {
		if s.Env.Main.SetOf(va) == s.V.TargetSet() {
			out = append(out, va)
			if len(out) == s.H.Config().SFWays {
				return out
			}
		}
	}
	return nil
}

// EndToEnd runs the §7.3 protocol across several co-located pairs and
// reports the paper's headline metrics.
func EndToEnd(o Options) *Report {
	rep := &Report{
		ID:     "e2e",
		Title:  "End-to-end cross-tenant nonce extraction (Cloud Run)",
		Header: []string{"metric", "value"},
		Paper: []string{
			"47/52 hosts with signal; median 81% (avg 68%) of nonce bits; 3% bit error rate; ~19 s end-to-end",
		},
	}
	train := newAttackSession(o, o.Seed^0x7e2e)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	rng := xrand.New(o.Seed ^ 0xe2)
	scanner, ex, ts := train.TrainAll(p, rng)
	if scanner == nil {
		rep.Notes = append(rep.Notes, "training failed: no monitorable training sets under the configured defense")
		return rep
	}

	pairs := trials(o, 6)
	opt := attack.DefaultE2EOptions()
	opt.Traces = 10
	if !o.Full {
		opt.Traces = 5
	}
	samples := RunTrials(pairs, o.Workers, SubSeed(o.Seed, "e2e"), func(t *Trial) Sample {
		s := pooledAttackSession(o, t, t.Seed)
		res := s.RunEndToEnd(scanner, ex, opt)
		return Sample{
			OK:     res.SignalFound,
			Value:  float64(res.TotalTime),
			Series: [][]float64{res.Fractions, res.ErrorRates},
		}
	})
	signal := 0
	var fracs, errs, totals []float64
	for _, s := range samples {
		if s.OK {
			signal++
			fracs = append(fracs, s.Series[0]...)
			errs = append(errs, s.Series[1]...)
			totals = append(totals, s.Value)
		}
	}
	rep.Rows = append(rep.Rows,
		[]string{"co-located pairs", fmt.Sprint(pairs)},
		[]string{"pairs with signal", fmt.Sprintf("%d (%.0f%%)", signal, 100*float64(signal)/float64(pairs))},
		[]string{"median nonce bits extracted", pct(stats.Median(fracs))},
		[]string{"average nonce bits extracted", pct(stats.Mean(fracs))},
		[]string{"average bit error rate", pct(stats.Mean(errs))},
		[]string{"average end-to-end time", sec(stats.Mean(totals))},
		[]string{"classifier validation (FN/FP)", fmt.Sprintf("%.2f%% / %.2f%%", 100*ts.FalseNegative, 100*ts.FalsePositive)},
	)
	rep.Notes = append(rep.Notes,
		"shape to check: most pairs yield a signal; median extraction near the paper's 81%; low bit error rate")
	return rep
}
