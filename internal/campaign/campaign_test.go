package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

// tinySpec mirrors the sweep package's test grid: 2 experiments x 2
// policies = 4+ cells of cheap construction trials.
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU"},
		SFAssocs:    []int{8},
		Slices:      []int{2},
		NoiseRates:  []float64{0.29},
		Trials:      3,
		Seed:        7,
	}
}

func encodeResult(t *testing.T, r *sweep.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignMatchesSweep pins the equivalence the whole layer rests
// on: a sharded per-cell campaign (any worker count, checkpointed or
// not) must produce the byte-identical artifact to the flattened
// single-call sweep.
func TestCampaignMatchesSweep(t *testing.T) {
	spec := tinySpec()
	want, err := sweep.Run(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := encodeResult(t, want)
	for _, workers := range []int{1, 4} {
		got, st, err := Run(context.Background(), spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeResult(t, got), wantJSON) {
			t.Fatalf("workers=%d: campaign artifact differs from sweep.Run", workers)
		}
		if st.Skipped != 0 || st.Ran != st.Cells {
			t.Fatalf("workers=%d: stats = %+v", workers, st)
		}
	}

	// Checkpointed from scratch: same artifact, and the log afterwards
	// holds every cell.
	dir := t.TempDir()
	log, err := artifact.Create(filepath.Join(dir, "cells.bin"), Fingerprint(spec))
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Run(context.Background(), spec, Options{Workers: 2, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResult(t, got), wantJSON) {
		t.Fatal("checkpointed campaign artifact differs from sweep.Run")
	}
	if log.Len() != st.Cells {
		t.Fatalf("log holds %d records, want %d", log.Len(), st.Cells)
	}
	log.Close()
}

// TestResumeSkipsVerifiedCells interrupts a campaign mid-grid via
// context cancellation, then resumes from the checkpoint: the resumed
// run must skip every checkpointed cell (never repeating completed
// work) and its final artifact must be byte-identical to an
// uninterrupted run's.
func TestResumeSkipsVerifiedCells(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	want, err := sweep.Run(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := encodeResult(t, want)

	path := filepath.Join(t.TempDir(), "cells.bin")
	log, err := artifact.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the second completed cell: the in-flight cell dies
	// uncheckpointed, exactly like a SIGINT mid-grid.
	ctx, cancel := context.WithCancel(context.Background())
	_, st, err := Run(ctx, spec, Options{
		Workers: 1,
		Log:     log,
		OnCell: func(ev Event) {
			if ev.Done == 2 {
				cancel()
			}
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if st.Ran < 2 {
		t.Fatalf("interrupted run completed %d cells, want >= 2", st.Ran)
	}
	log.Close()

	re, err := artifact.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var skippedEvents int
	got, st2, err := Run(context.Background(), spec, Options{
		Workers: 4,
		Log:     re,
		OnCell: func(ev Event) {
			if ev.Skipped {
				skippedEvents++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Skipped == 0 || st2.Skipped != st.Ran || skippedEvents != st2.Skipped {
		t.Fatalf("resume skipped %d cells (events %d), interrupted run checkpointed %d", st2.Skipped, skippedEvents, st.Ran)
	}
	if st2.Ran != st2.Cells-st2.Skipped {
		t.Fatalf("resume stats inconsistent: %+v", st2)
	}
	if !bytes.Equal(encodeResult(t, got), wantJSON) {
		t.Fatal("resumed artifact is not byte-identical to the uninterrupted run")
	}
}

// TestResumeRerunsCorruptedCells is the corruption matrix at campaign
// level: truncate the checkpoint's tail record, then resume — the
// dropped cell must re-run (stats say so) and the final artifact must
// still be byte-identical to an uninterrupted run.
func TestResumeRerunsCorruptedCells(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	want, err := sweep.Run(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cells.bin")
	log, err := artifact.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), spec, Options{Workers: 2, Log: log}); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// Tear the last record.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := artifact.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, stats, err := Run(context.Background(), spec, Options{Workers: 2, Log: re})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 1 || stats.Skipped != stats.Cells-1 || stats.DroppedTail != 1 {
		t.Fatalf("post-corruption stats = %+v, want 1 re-run", stats)
	}
	if !bytes.Equal(encodeResult(t, got), encodeResult(t, want)) {
		t.Fatal("artifact after corruption repair differs from uninterrupted run")
	}
}

// TestFingerprintBindsSpec: any spec change that could change a cell's
// samples must change the fingerprint, and an artifact log opened with
// the wrong fingerprint must be rejected.
func TestFingerprintBindsSpec(t *testing.T) {
	base := tinySpec()
	mut := []func(*sweep.Spec){
		func(s *sweep.Spec) { s.Trials = 4 },
		func(s *sweep.Spec) { s.Seed = 8 },
		func(s *sweep.Spec) { s.Policies = []string{"LRU"} },
		func(s *sweep.Spec) { s.NoiseRates = []float64{11.5} },
	}
	fp := Fingerprint(base)
	for i, m := range mut {
		s := tinySpec()
		m(&s)
		if Fingerprint(s) == fp {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
	// Normalization canonicalises: an explicit spelling of the defaults
	// fingerprints identically to the defaulted spec.
	s := tinySpec()
	s.TenantModels = []string{"poisson"}
	s.Defenses = []string{"none"}
	if Fingerprint(s) != fp {
		t.Error("explicitly-defaulted spec fingerprints differently")
	}

	path := filepath.Join(t.TempDir(), "cells.bin")
	log, err := artifact.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	if _, err := artifact.Open(path, Fingerprint(sweep.Spec{Trials: 9, Seed: 3})); err == nil {
		t.Fatal("checkpoint from a different spec was accepted")
	}
}

func TestSampleCodecRoundTrip(t *testing.T) {
	in := []experiments.Sample{
		{OK: true, Value: 1234.5},
		{OK: false, Value: 0},
		{OK: true, Value: math.Inf(1)},
		{OK: true, Value: -0.0},
	}
	out, err := DecodeSamples(EncodeSamples(in), len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i].OK != in[i].OK || math.Float64bits(out[i].Value) != math.Float64bits(in[i].Value) {
			t.Fatalf("sample %d: %+v != %+v", i, out[i], in[i])
		}
	}
	if _, err := DecodeSamples([]byte{1, 2, 3}, len(in)); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := EncodeSamples(in)
	bad[0] = 7
	if _, err := DecodeSamples(bad, len(in)); err == nil {
		t.Fatal("invalid OK byte accepted")
	}
}

// TestCampaignCellFailure: a verified checkpoint record whose payload
// does not decode to the spec's trial count (impossible under the
// fingerprint unless a foreign writer touched the log) fails the
// campaign loudly instead of silently re-running or mis-aggregating.
func TestCampaignCellFailure(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	path := filepath.Join(t.TempDir(), "cells.bin")
	log, err := artifact.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cls := func() []sweep.Cell {
		s := spec
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		return sweep.Expand(s)
	}()
	// A verified record with the wrong trial count (2 instead of 3).
	if err := log.Append(cls[0].Key, EncodeSamples(make([]experiments.Sample, 2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), spec, Options{Log: log}); err == nil {
		t.Fatal("undecodable checkpoint record must fail the campaign, not silently re-run")
	}
}

// TestEventOrdering: Done counts are strictly increasing 1..Cells and
// each cell appears exactly once.
func TestEventOrdering(t *testing.T) {
	spec := tinySpec()
	var events []Event
	_, _, err := Run(context.Background(), spec, Options{
		Workers: 4,
		OnCell:  func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Fatalf("event %d has Done=%d", i, ev.Done)
		}
		if seen[ev.Cell] {
			t.Fatalf("cell %d completed twice", ev.Cell)
		}
		seen[ev.Cell] = true
		if ev.Key == "" || ev.Coords == "" {
			t.Fatalf("event %d missing key/coords: %+v", i, ev)
		}
	}
	if len(events) == 0 || len(seen) != events[0].Total {
		t.Fatalf("saw %d events over %d cells", len(events), len(seen))
	}
}

func TestExpandKeysUniqueAndReflectSeeds(t *testing.T) {
	s := tinySpec()
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cls := sweep.Expand(s)
	keys := map[string]bool{}
	for _, c := range cls {
		if keys[c.Key] {
			t.Fatalf("duplicate cell key %q", c.Key)
		}
		keys[c.Key] = true
	}
	// Same coordinates, different grid shape: surviving cells keep both
	// key and seed (the reshape-stability contract checkpoints rely on).
	small := tinySpec()
	small.Policies = []string{"QLRU"}
	small.Normalize()
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sc := range sweep.Expand(small) {
		found := false
		for _, c := range cls {
			if c.Key == sc.Key {
				found = true
				if c.Seed != sc.Seed {
					t.Fatalf("cell %q changed seed across grid reshape", sc.Key)
				}
			}
		}
		if !found {
			t.Fatalf("cell %q missing from the larger grid", sc.Key)
		}
	}
}

// TestReflectEqualResults double-checks Aggregate purity through the
// campaign path at the struct level (bytes.Equal above already covers
// the encoded form).
func TestReflectEqualResults(t *testing.T) {
	spec := tinySpec()
	a, err := sweep.Run(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), spec, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("campaign Result differs structurally from sweep.Run")
	}
}

// TestShardPartitionsCells: the round-robin shards of one spec are a
// disjoint cover of the grid — every Expand key lands in exactly one
// shard's checkpoint log, sharded runs return no Result (the slice
// alone cannot aggregate), and shard stats sum to the full grid.
func TestShardPartitionsCells(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	dir := t.TempDir()
	const shards = 3

	cls := func() []sweep.Cell {
		s := spec
		s.Normalize()
		return sweep.Expand(s)
	}()
	seen := map[string]int{}
	totalCells := 0
	for i := range shards {
		path := filepath.Join(dir, "s.cells")
		log, err := artifact.Create(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := Run(context.Background(), spec, Options{
			Workers: 1, Log: log, ShardIndex: i, ShardCount: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			t.Fatalf("shard %d returned a Result; a grid slice must not aggregate", i)
		}
		if st.Ran != st.Cells || st.Skipped != 0 {
			t.Fatalf("shard %d stats = %+v", i, st)
		}
		totalCells += st.Cells
		for _, k := range log.Keys() {
			seen[k]++
		}
		log.Close()
		os.Remove(path)
	}
	if totalCells != len(cls) {
		t.Fatalf("shards cover %d cells, grid has %d", totalCells, len(cls))
	}
	for _, c := range cls {
		if seen[c.Key] != 1 {
			t.Fatalf("cell %q owned by %d shards, want exactly 1", c.Key, seen[c.Key])
		}
	}

	// Shard parameters outside [0, count) are refused.
	for _, bad := range [][2]int{{-1, 3}, {3, 3}, {0, -1}} {
		_, _, err := Run(context.Background(), spec, Options{ShardIndex: bad[0], ShardCount: bad[1]})
		if err == nil {
			t.Fatalf("shard %d/%d accepted", bad[0], bad[1])
		}
	}
}

// TestShardedMergeByteIdentical pins determinism clause 8: per-shard
// logs merged in Expand order are byte-identical to the log a
// sequential uninterrupted single-process run writes, and resuming
// from the merged log yields the byte-identical artifact.
func TestShardedMergeByteIdentical(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	dir := t.TempDir()

	refPath := filepath.Join(dir, "ref.cells")
	ref, err := artifact.Create(refPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Run(context.Background(), spec, Options{Workers: 1, Log: ref})
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	const shards = 3
	var srcs []string
	for i := range shards {
		p := filepath.Join(dir, fmt.Sprintf("s%d.cells", i))
		log, err := artifact.Create(p, fp)
		if err != nil {
			t.Fatal(err)
		}
		// Workers > 1 inside a shard: append order within the shard log is
		// nondeterministic, and the merge must still normalise it away.
		if _, _, err := Run(context.Background(), spec, Options{
			Workers: 2, Log: log, ShardIndex: i, ShardCount: shards,
		}); err != nil {
			t.Fatal(err)
		}
		log.Close()
		srcs = append(srcs, p)
	}

	mergedPath := filepath.Join(dir, "merged.cells")
	st, err := Merge(spec, mergedPath, srcs)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatalf("merged log differs from the sequential single-process log (%d vs %d bytes)", len(gotBytes), len(refBytes))
	}
	if st.Deduped != 0 {
		t.Fatalf("disjoint shards deduped %d records", st.Deduped)
	}

	merged, err := artifact.Open(mergedPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	got, stats, err := Run(context.Background(), spec, Options{Workers: 4, Log: merged})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 0 || stats.Skipped != stats.Cells {
		t.Fatalf("resume from merged log re-ran cells: %+v", stats)
	}
	if !bytes.Equal(encodeResult(t, got), encodeResult(t, want)) {
		t.Fatal("artifact from merged log differs from the single-process artifact")
	}
}

// TestMergeDetectsConflictsAndDedupes: byte-equal duplicate records
// across sources dedupe; differing payloads for one key abort the
// merge with no destination file.
func TestMergeDetectsConflictsAndDedupes(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	dir := t.TempDir()
	s := spec
	s.Normalize()
	cls := sweep.Expand(s)

	mkLog := func(name string, fill func(*artifact.Log)) string {
		t.Helper()
		p := filepath.Join(dir, name)
		log, err := artifact.Create(p, fp)
		if err != nil {
			t.Fatal(err)
		}
		fill(log)
		log.Close()
		return p
	}
	payload := EncodeSamples(make([]experiments.Sample, spec.Trials))
	differs := EncodeSamples([]experiments.Sample{{OK: true, Value: 1}, {}, {}})

	a := mkLog("a.cells", func(l *artifact.Log) {
		l.Append(cls[0].Key, payload)
		l.Append(cls[1].Key, payload)
	})
	dup := mkLog("dup.cells", func(l *artifact.Log) {
		l.Append(cls[1].Key, payload) // byte-equal duplicate of a's record
	})
	st, err := Merge(spec, filepath.Join(dir, "ok.cells"), []string{a, dup})
	if err != nil {
		t.Fatalf("equal-payload duplicate: %v", err)
	}
	if st.Records != 2 || st.Deduped != 1 {
		t.Fatalf("merge stats = %+v, want 2 records with 1 deduped", st)
	}

	conflict := mkLog("conflict.cells", func(l *artifact.Log) {
		l.Append(cls[0].Key, differs)
	})
	dst := filepath.Join(dir, "bad.cells")
	if _, err := Merge(spec, dst, []string{a, conflict}); err == nil {
		t.Fatal("conflicting payloads for one key merged silently")
	}
	if _, serr := os.Stat(dst); serr == nil {
		t.Fatal("failed merge left a destination file behind")
	}
}

// TestMergePartialThenResume: merging a strict subset of shards yields
// a valid partial log; a resumed campaign over it runs exactly the
// missing shard and still matches the uninterrupted artifact.
func TestMergePartialThenResume(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	dir := t.TempDir()
	want, err := sweep.Run(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	var srcs []string
	var shardCells [shards]int
	for i := range shards {
		p := filepath.Join(dir, fmt.Sprintf("s%d.cells", i))
		log, err := artifact.Create(p, fp)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := Run(context.Background(), spec, Options{
			Workers: 1, Log: log, ShardIndex: i, ShardCount: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		shardCells[i] = st.Cells
		log.Close()
		srcs = append(srcs, p)
	}

	mergedPath := filepath.Join(dir, "partial.cells")
	st, err := Merge(spec, mergedPath, srcs[:2]) // drop shard 2
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != shardCells[0]+shardCells[1] {
		t.Fatalf("partial merge wrote %d records, want %d", st.Records, shardCells[0]+shardCells[1])
	}

	merged, err := artifact.Open(mergedPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	got, stats, err := Run(context.Background(), spec, Options{Workers: 2, Log: merged})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != shardCells[2] || stats.Skipped != shardCells[0]+shardCells[1] {
		t.Fatalf("resume over partial merge: %+v, want ran=%d", stats, shardCells[2])
	}
	if !bytes.Equal(encodeResult(t, got), encodeResult(t, want)) {
		t.Fatal("artifact completed from a partial merge differs from uninterrupted run")
	}
}

// TestMergeRejectsBadRecords: payloads with the wrong trial count and
// keys outside the grid are refused before anything is written.
func TestMergeRejectsBadRecords(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	dir := t.TempDir()
	s := spec
	s.Normalize()
	cls := sweep.Expand(s)

	shortPath := filepath.Join(dir, "short.cells")
	log, err := artifact.Create(shortPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(cls[0].Key, EncodeSamples(make([]experiments.Sample, spec.Trials-1)))
	log.Close()
	if _, err := Merge(spec, filepath.Join(dir, "d1.cells"), []string{shortPath}); err == nil {
		t.Fatal("payload with the wrong trial count merged")
	}

	foreignPath := filepath.Join(dir, "foreign.cells")
	log, err = artifact.Create(foreignPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	log.Append("no|such|cell", EncodeSamples(make([]experiments.Sample, spec.Trials)))
	log.Close()
	if _, err := Merge(spec, filepath.Join(dir, "d2.cells"), []string{foreignPath}); err == nil {
		t.Fatal("record for a key outside the grid merged")
	}
}

// TestRangeClaimPartitionsCells is the dynamic-lease analogue of the
// residue-shard partition test: explicit cell ranges must cover the
// grid exactly once, return no aggregate, and merge byte-identical to
// a sequential uninterrupted run — the property the fleet coordinator
// leans on (determinism clause 9).
func TestRangeClaimPartitionsCells(t *testing.T) {
	spec := tinySpec()
	fp := Fingerprint(spec)
	dir := t.TempDir()
	cls := func() []sweep.Cell {
		s := spec
		s.Normalize()
		return sweep.Expand(s)
	}()

	refPath := filepath.Join(dir, "ref.cells")
	ref, err := artifact.Create(refPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), spec, Options{Workers: 1, Log: ref}); err != nil {
		t.Fatal(err)
	}
	ref.Close()
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Uneven ranges on purpose: [0,1), [1,3), [3,4).
	ranges := [][2]int{{0, 1}, {1, 3}, {3, 4}}
	var srcs []string
	seen := map[string]int{}
	for i, r := range ranges {
		path := filepath.Join(dir, fmt.Sprintf("r%d.cells", i))
		log, err := artifact.Create(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := Run(context.Background(), spec, Options{
			Workers: 1, Log: log, CellStart: r[0], CellEnd: r[1],
		})
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			t.Fatalf("range %v returned a Result; a grid slice must not aggregate", r)
		}
		if st.Cells != r[1]-r[0] || st.Ran != st.Cells {
			t.Fatalf("range %v stats = %+v", r, st)
		}
		for _, k := range log.Keys() {
			seen[k]++
		}
		log.Close()
		srcs = append(srcs, path)
	}
	for _, c := range cls {
		if seen[c.Key] != 1 {
			t.Fatalf("cell %q owned by %d ranges, want exactly 1", c.Key, seen[c.Key])
		}
	}

	mergedPath := filepath.Join(dir, "merged.cells")
	if _, err := Merge(spec, mergedPath, srcs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("range-merged log differs from sequential run")
	}
}

// Range bounds are validated against the grid, and ranges are mutually
// exclusive with residue shards — a worker claiming both ways could
// silently double- or under-cover cells.
func TestRangeClaimValidation(t *testing.T) {
	spec := tinySpec() // 4 cells
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {3, 2}, {0, 5}, {4, 4}} {
		_, _, err := Run(context.Background(), spec, Options{CellStart: bad[0], CellEnd: bad[1]})
		if err == nil {
			t.Fatalf("range [%d, %d) accepted on a 4-cell grid", bad[0], bad[1])
		}
	}
	_, _, err := Run(context.Background(), spec, Options{
		CellStart: 0, CellEnd: 2, ShardIndex: 0, ShardCount: 2,
	})
	if err == nil {
		t.Fatal("cell range combined with residue sharding was accepted")
	}
}
