// Package campaign turns a one-shot sweep into a resumable, sharded
// run: the spec's grid cells are distributed across worker goroutines,
// every completed cell is checkpointed to an append-only artifact log
// (internal/artifact) before the next one starts, and a resumed run
// skips exactly the cells whose checkpoint records verify — re-running
// everything else. Because a cell's trial seeds derive from its own
// coordinates (sweep cell-coordinate seeding) and engine cancellation
// only ever lands between trials, a cell computed after a crash is
// byte-identical to the one the interrupted run would have produced,
// so a resumed campaign's final artifact is byte-for-byte the
// uninterrupted run's.
//
// The sharding unit is the CELL, not the trial: one worker runs all of
// a cell's trials sequentially on its own pooled host, and cells
// complete independently. That keeps the checkpoint granularity equal
// to the durability granularity (a record either holds a whole cell or
// nothing) and lets N workers make progress on N cells with zero
// cross-worker coordination beyond an atomic claim counter — the same
// discipline the trial engine uses one level down. The flattened
// single-call path (sweep.Run) remains the fastest way to run a grid
// that fits in one sitting; this package is for grids that might not.
//
// One campaign can also span PROCESSES or machines: Options.ShardCount
// slices the grid round-robin into disjoint shards, each shard run
// checkpoints into its own log, and Merge reassembles the per-shard
// logs into one log byte-identical to what an uninterrupted sequential
// single-process run would have written (determinism clause 8). The
// artifact log is the only rendezvous — shards share no state and need
// no coordinator while running. Options.CellStart/CellEnd generalise
// the static residue partition to explicit contiguous cell ranges, the
// unit a coordinator (internal/fleet) leases to workers and reassigns
// on failure; range logs merge under the same identity guarantee
// (determinism clause 9).
package campaign

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Fingerprint derives the spec identity a checkpoint log is bound to:
// FNV-64a over the canonical (normalized, struct-ordered) JSON of the
// spec. Any change that could alter any cell's samples — axes, trials,
// seed — changes the fingerprint, so a stale or mismatched checkpoint
// is rejected at open instead of silently mixing two grids.
func Fingerprint(spec sweep.Spec) uint64 {
	spec.Normalize()
	js, err := json.Marshal(spec)
	if err != nil {
		// sweep.Spec is plain data; Marshal cannot fail on it.
		panic("campaign: marshalling spec: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(js)
	return h.Sum64()
}

// Event reports one cell reaching a terminal state, in completion
// order. OnCell observers receive events serialized (never two at
// once).
type Event struct {
	// Cell is the cell's index in sweep.Expand order; Key its canonical
	// coordinate string; Coords the operator-readable rendering.
	Cell   int    `json:"cell"`
	Key    string `json:"key"`
	Coords string `json:"coords"`
	// Done counts cells in a terminal state (skipped or computed) after
	// this event, out of Total.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Skipped marks a cell restored from a verified checkpoint record
	// rather than computed.
	Skipped bool `json:"skipped,omitempty"`
}

// Stats summarises a campaign run for resume reports: how many cells
// the grid had, how many were skipped via verified checkpoint records,
// and how many were computed this run.
type Stats struct {
	Cells   int `json:"cells"`
	Skipped int `json:"skipped"`
	Ran     int `json:"ran"`
	// DroppedTail / DroppedDuplicates surface the checkpoint log's
	// open-time repairs (cells that re-ran because their records did not
	// verify).
	DroppedTail       int `json:"dropped_tail,omitempty"`
	DroppedDuplicates int `json:"dropped_duplicates,omitempty"`
}

// Options configures a campaign run.
type Options struct {
	// Workers is the number of cells in flight at once; <= 0 selects
	// GOMAXPROCS (via the trial engine's convention). Within a cell,
	// trials run sequentially on the claiming worker.
	Workers int
	// Log, when non-nil, is the open checkpoint log: verified records
	// skip their cells, completed cells append records. Nil runs the
	// campaign uncheckpointed (still sharded and cancellable).
	Log *artifact.Log
	// OnCell, when non-nil, observes per-cell completions (checkpoint
	// skips included), serialized, in completion order.
	OnCell func(Event)
	// ShardCount > 0 restricts the run to one deterministic slice of the
	// grid: the cells whose Expand index ci satisfies ci % ShardCount ==
	// ShardIndex. Round-robin assignment keeps every shard a cross-
	// section of the grid (no shard gets all the slow cells of one
	// experiment), and N shard runs with N disjoint checkpoint logs can
	// execute as separate processes or machines — artifact.Merge (via
	// Merge here) is the rendezvous that reassembles them. A sharded run
	// cannot aggregate (it has only its slice), so Run returns a nil
	// Result; Stats counts the shard's cells only.
	ShardIndex, ShardCount int
	// CellEnd > 0 restricts the run to the explicit half-open cell range
	// [CellStart, CellEnd) in Expand order — the dynamic-lease
	// generalisation of residue sharding: a coordinator can hand out
	// contiguous ranges of any size and reassign them when a worker
	// lags, instead of fixing a static i/N partition up front. Like a
	// shard, a range run returns a nil Result (it has only its slice of
	// the samples); the lease identity clause (determinism clause 9)
	// guarantees merging range logs reproduces the uninterrupted run's
	// bytes no matter how the ranges were cut or who computed them.
	// Mutually exclusive with ShardCount.
	CellStart, CellEnd int
	// Obs, when non-nil, receives campaign telemetry: cell-terminal
	// counters (campaign_cells_total by state computed/resumed),
	// per-cell wall-duration histogram (campaign_cell_seconds),
	// checkpoint-append bytes (campaign_append_bytes_total), and — on a
	// traced run — one trace process per cell (PID = Expand index,
	// named with the cell's coordinates). Instrumentation reads wall
	// clocks only; the artifact and Result are byte-identical with Obs
	// set or nil (determinism clause 10).
	Obs *obs.Sink
}

// Run executes the spec as a resumable campaign and returns the same
// Result sweep.Run would produce (byte-identical once encoded), plus
// run statistics. Cancelling ctx stops the campaign between trials;
// cells checkpointed before the cancellation are never lost, and the
// error reports how far the run got via Stats. A sharded run
// (Options.ShardCount > 0) computes only its slice of the grid and
// returns a nil Result — merging the shard logs and resuming (or
// exporting) is how the aggregate is assembled.
func Run(ctx context.Context, spec sweep.Spec, opts Options) (*sweep.Result, *Stats, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.ShardCount < 0 {
		return nil, nil, fmt.Errorf("campaign: shard count %d is negative", opts.ShardCount)
	}
	if opts.ShardCount > 0 && (opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount) {
		return nil, nil, fmt.Errorf("campaign: shard index %d out of range [0, %d)", opts.ShardIndex, opts.ShardCount)
	}
	cls := sweep.Expand(spec)
	ranged := opts.CellStart != 0 || opts.CellEnd != 0
	if ranged {
		if opts.ShardCount > 0 {
			return nil, nil, fmt.Errorf("campaign: cell range and residue sharding are mutually exclusive")
		}
		if opts.CellStart < 0 || opts.CellEnd <= opts.CellStart || opts.CellEnd > len(cls) {
			return nil, nil, fmt.Errorf("campaign: cell range [%d, %d) out of range for a %d-cell grid", opts.CellStart, opts.CellEnd, len(cls))
		}
	}
	n := spec.Trials
	// mine is the slice of Expand indices this run owns: everything, the
	// round-robin residue class of the shard, or the explicit leased
	// range.
	mine := make([]int, 0, len(cls))
	for ci := range cls {
		switch {
		case ranged:
			if ci >= opts.CellStart && ci < opts.CellEnd {
				mine = append(mine, ci)
			}
		case opts.ShardCount <= 0 || ci%opts.ShardCount == opts.ShardIndex:
			mine = append(mine, ci)
		}
	}
	st := &Stats{Cells: len(mine)}
	if opts.Log != nil {
		st.DroppedTail = opts.Log.DroppedTail
		st.DroppedDuplicates = opts.Log.DroppedDuplicates
	}

	// Observability hooks: resolved once, all nil (hence no-op) when
	// opts.Obs carries nothing. Only wall clocks are read.
	var cellsComputed, cellsResumed, appendBytes *obs.Counter
	var cellSec *obs.Histogram
	var tracer *obs.Tracer
	if opts.Obs != nil {
		tracer = opts.Obs.Tracer
		if m := opts.Obs.Metrics; m != nil {
			cellsComputed = m.Counter("campaign_cells_total", "state", "computed")
			cellsResumed = m.Counter("campaign_cells_total", "state", "resumed")
			appendBytes = m.Counter("campaign_append_bytes_total")
			cellSec = m.Histogram("campaign_cell_seconds", nil)
		}
		if tracer != nil {
			for _, ci := range mine {
				tracer.SetProcessName(ci, cls[ci].Coords())
			}
		}
	}

	samples := make([][]experiments.Sample, len(cls))
	pending := make([]int, 0, len(mine))
	var done atomic.Int64

	// emit serialises OnCell callbacks and checkpoint appends; the log
	// is not concurrency-safe and observers expect ordered counts.
	var mu sync.Mutex
	emit := func(ci int, skipped bool) error {
		mu.Lock()
		defer mu.Unlock()
		if !skipped && opts.Log != nil {
			before := opts.Log.AppendedBytes()
			if err := opts.Log.Append(cls[ci].Key, EncodeSamples(samples[ci])); err != nil {
				return err
			}
			appendBytes.Add(opts.Log.AppendedBytes() - before)
		}
		if skipped {
			cellsResumed.Inc()
		} else {
			cellsComputed.Inc()
		}
		if opts.OnCell != nil {
			opts.OnCell(Event{
				Cell:    ci,
				Key:     cls[ci].Key,
				Coords:  cls[ci].Coords(),
				Done:    int(done.Add(1)),
				Total:   len(mine),
				Skipped: skipped,
			})
		} else {
			done.Add(1)
		}
		return nil
	}

	// Restore phase: a cell whose record decodes to exactly n samples is
	// skipped; anything else re-runs (a record that fails its checksum
	// never reaches here — artifact.Open already dropped it).
	for _, ci := range mine {
		if opts.Log != nil {
			if payload, ok := opts.Log.Get(cls[ci].Key); ok {
				if ss, err := DecodeSamples(payload, n); err == nil {
					samples[ci] = ss
					st.Skipped++
					if err := emit(ci, true); err != nil {
						return nil, st, err
					}
					continue
				}
				// Undecodable-but-verified record: the spec fingerprint pins
				// the trial count, so this is a foreign writer or a bug —
				// refuse to guess.
				return nil, st, fmt.Errorf("campaign: checkpoint record for cell %s does not decode to %d trials", cls[ci].Coords(), n)
			}
		}
		pending = append(pending, ci)
	}

	// Shard phase: workers claim pending cells via an atomic counter and
	// run each cell's trials sequentially. One failing (panicking) cell
	// or a cancellation stops the claim loop; in-flight cells finish
	// their current trial and are NOT checkpointed unless complete.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	var ran atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[cellError]
	record := func(ci int, err error) {
		ce := &cellError{cell: ci, err: err}
		for {
			cur := firstErr.Load()
			if cur != nil && cur.cell <= ci {
				return
			}
			if firstErr.CompareAndSwap(cur, ce) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(pending) || firstErr.Load() != nil || ctx.Err() != nil {
					return
				}
				ci := pending[k]
				c := &cls[ci]
				var t0 time.Time
				if cellSec != nil {
					t0 = time.Now()
				}
				ss, err := experiments.RunTrialsObs(ctx, n, 1, c.Seed, opts.Obs.WithPID(ci), func(t *experiments.Trial) experiments.Sample {
					return c.Exp.Run(t, c.Config)
				})
				if cellSec != nil {
					cellSec.Observe(time.Since(t0).Seconds())
				}
				if err != nil {
					record(ci, err)
					return
				}
				samples[ci] = ss
				if err := emit(ci, false); err != nil {
					record(ci, err)
					return
				}
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	st.Ran = int(ran.Load())
	if ce := firstErr.Load(); ce != nil {
		return nil, st, fmt.Errorf("campaign: cell %s: %w", cls[ce.cell].Coords(), ce.err)
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("campaign: %w", context.Cause(ctx))
	}
	if opts.ShardCount > 0 || ranged {
		// A shard or leased range holds only its slice of the samples;
		// the aggregate is assembled later from the merged logs.
		return nil, st, nil
	}

	flat := make([]experiments.Sample, 0, len(cls)*n)
	for _, ss := range samples {
		flat = append(flat, ss...)
	}
	return sweep.Aggregate(spec, cls, flat), st, nil
}

// cellError attributes a worker failure to the lowest-index cell, like
// the trial engine's panic attribution one level down.
type cellError struct {
	cell int
	err  error
}

// Merge combines per-shard checkpoint logs into one log at dstPath
// that is byte-identical to the log an uninterrupted sequential
// single-process run of the same spec would have written (determinism
// clause 8: records land in the grid's Expand order, which is the
// order a one-worker campaign appends them). Every source must be
// fingerprinted by this spec; a key two sources disagree about is an
// error, byte-equal duplicates dedupe, and every surviving payload
// must decode to exactly the spec's trial count. Missing cells are
// fine — the merged log is a valid partial checkpoint that a resumed
// run (or an export's cells-missing report) completes.
func Merge(spec sweep.Spec, dstPath string, srcPaths []string) (*artifact.MergeStats, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cls := sweep.Expand(spec)
	order := make([]string, len(cls))
	for i, c := range cls {
		order[i] = c.Key
	}
	n := spec.Trials
	return artifact.Merge(dstPath, Fingerprint(spec), artifact.MergeOptions{
		Order: order,
		Validate: func(key string, payload []byte) error {
			_, err := DecodeSamples(payload, n)
			return err
		},
	}, srcPaths...)
}

// sampleSize is the fixed per-trial encoding: OK byte + float64 bits.
const sampleSize = 9

// EncodeSamples renders a cell's samples as the checkpoint payload: for
// each trial one OK byte and the value's IEEE-754 bits, little-endian.
// Bit-exact floats are what make a resumed aggregate byte-identical to
// an uninterrupted one. Extra scalars and series are deliberately not
// recorded: sweep aggregation consumes only OK and Value, so recording
// more would bloat every record for data no view reads.
func EncodeSamples(ss []experiments.Sample) []byte {
	buf := make([]byte, sampleSize*len(ss))
	for i, s := range ss {
		off := i * sampleSize
		if s.OK {
			buf[off] = 1
		}
		binary.LittleEndian.PutUint64(buf[off+1:off+9], math.Float64bits(s.Value))
	}
	return buf
}

// DecodeSamples parses a checkpoint payload back into exactly n
// samples, rejecting any other shape. Export views (cmd/llccells) use
// it to render per-trial values without re-running a cell.
func DecodeSamples(payload []byte, n int) ([]experiments.Sample, error) {
	if len(payload) != sampleSize*n {
		return nil, fmt.Errorf("campaign: payload holds %d bytes, want %d trials x %d", len(payload), n, sampleSize)
	}
	out := make([]experiments.Sample, n)
	for i := range out {
		off := i * sampleSize
		switch payload[off] {
		case 0:
		case 1:
			out[i].OK = true
		default:
			return nil, fmt.Errorf("campaign: trial %d has invalid OK byte %d", i, payload[off])
		}
		out[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+1 : off+9]))
	}
	return out, nil
}
