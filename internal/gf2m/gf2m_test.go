package gf2m

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

var testFields = []*Field{
	NewField(Toy17Poly),
	NewField(Sect163Poly),
	NewField(Sect571Poly),
}

func TestFieldAxiomsProperty(t *testing.T) {
	for _, f := range testFields {
		f := f
		rng := xrand.New(uint64(f.M))
		check := func(seed uint64) bool {
			r := xrand.New(seed ^ rng.Uint64())
			a, b, c := f.Rand(r), f.Rand(r), f.Rand(r)
			// Commutativity.
			ab, ba := f.NewElem(), f.NewElem()
			f.Mul(ab, a, b)
			f.Mul(ba, b, a)
			if !ab.Equal(ba) {
				return false
			}
			// Associativity.
			abc1, abc2, tmp := f.NewElem(), f.NewElem(), f.NewElem()
			f.Mul(tmp, a, b)
			f.Mul(abc1, tmp, c)
			f.Mul(tmp, b, c)
			f.Mul(abc2, a, tmp)
			if !abc1.Equal(abc2) {
				return false
			}
			// Distributivity: a*(b+c) == a*b + a*c.
			bc, lhs, rhs := f.NewElem(), f.NewElem(), f.NewElem()
			f.Add(bc, b, c)
			f.Mul(lhs, a, bc)
			ac := f.NewElem()
			f.Mul(ac, a, c)
			f.Add(rhs, ab, ac)
			if !lhs.Equal(rhs) {
				return false
			}
			// Characteristic 2: a + a == 0.
			z := f.NewElem()
			f.Add(z, a, a)
			return z.Zero()
		}
		if err := quick.Check(check, &quick.Config{MaxCount: quickCountFor(f)}); err != nil {
			t.Errorf("field m=%d: %v", f.M, err)
		}
	}
}

func quickCountFor(f *Field) int {
	if f.M > 200 {
		return 3 // the 571-bit field is slow; axioms don't need volume
	}
	return 10
}

func TestMulIdentityAndZero(t *testing.T) {
	for _, f := range testFields {
		rng := xrand.New(7)
		a := f.Rand(rng)
		out := f.NewElem()
		f.Mul(out, a, f.One())
		if !out.Equal(a) {
			t.Errorf("m=%d: a*1 != a", f.M)
		}
		f.Mul(out, a, f.NewElem())
		if !out.Zero() {
			t.Errorf("m=%d: a*0 != 0", f.M)
		}
	}
}

func TestInverseProperty(t *testing.T) {
	for _, f := range testFields {
		rng := xrand.New(uint64(13 + f.M))
		n := 8
		if f.M > 200 {
			n = 2
		}
		for i := 0; i < n; i++ {
			a := f.Rand(rng)
			if a.Zero() {
				continue
			}
			inv, prod := f.NewElem(), f.NewElem()
			f.Inv(inv, a)
			f.Mul(prod, a, inv)
			if !prod.Equal(f.One()) {
				t.Fatalf("m=%d: a * a^-1 = %v, want 1", f.M, prod)
			}
		}
	}
}

func TestSqrMatchesMul(t *testing.T) {
	for _, f := range testFields {
		rng := xrand.New(uint64(19 + f.M))
		a := f.Rand(rng)
		s1, s2 := f.NewElem(), f.NewElem()
		f.Sqr(s1, a)
		f.Mul(s2, a, a.Clone())
		if !s1.Equal(s2) {
			t.Errorf("m=%d: sqr != mul(a,a)", f.M)
		}
	}
}

func TestToy17Exhaustive(t *testing.T) {
	// In GF(2^17) every nonzero element satisfies a^(2^17-1) = 1; check a
	// few via repeated squaring-and-multiplying against Inv.
	f := NewField(Toy17Poly)
	rng := xrand.New(23)
	for i := 0; i < 50; i++ {
		a := f.Rand(rng)
		if a.Zero() {
			continue
		}
		// a^(2^17-2) must equal a^-1.
		exp := uint64(1<<17 - 2)
		acc := f.One()
		base := a.Clone()
		for e := exp; e > 0; e >>= 1 {
			if e&1 == 1 {
				f.Mul(acc, acc, base)
			}
			f.Sqr(base, base)
		}
		inv := f.NewElem()
		f.Inv(inv, a)
		if !acc.Equal(inv) {
			t.Fatalf("fermat inverse mismatch for %v", a)
		}
	}
}

func TestTraceLinear(t *testing.T) {
	f := NewField(Toy17Poly)
	rng := xrand.New(29)
	for i := 0; i < 20; i++ {
		a, b := f.Rand(rng), f.Rand(rng)
		sum := f.NewElem()
		f.Add(sum, a, b)
		if f.Trace(sum) != f.Trace(a)^f.Trace(b) {
			t.Fatal("trace is not additive")
		}
	}
}

func TestHalfTraceSolvesQuadratic(t *testing.T) {
	for _, f := range []*Field{NewField(Toy17Poly), NewField(Sect163Poly)} {
		rng := xrand.New(uint64(31 + f.M))
		solved := 0
		for i := 0; i < 10 && solved < 4; i++ {
			c := f.Rand(rng)
			if f.Trace(c) != 0 {
				continue
			}
			z := f.HalfTrace(c)
			// z² + z must equal c.
			z2 := f.NewElem()
			f.Sqr(z2, z)
			f.Add(z2, z2, z)
			if !z2.Equal(c) {
				t.Fatalf("m=%d: half-trace failed: z²+z != c", f.M)
			}
			solved++
		}
		if solved == 0 {
			t.Fatalf("m=%d: no Tr=0 samples found", f.M)
		}
	}
}

func TestBitRoundTrip(t *testing.T) {
	f := NewField(Sect163Poly)
	e := f.NewElem()
	for _, i := range []int{0, 1, 63, 64, 127, 162} {
		e.SetBit(i, 1)
		if e.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
		e.SetBit(i, 0)
		if e.Bit(i) != 0 {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestMulMatchesGeneric(t *testing.T) {
	// The comb multiplier and table squaring must agree with the
	// bit-serial reference on every field, including edge patterns
	// (all-ones, single top bit) that stress the reduction fold.
	for _, f := range testFields {
		rng := xrand.New(uint64(37 + f.M))
		cases := make([][2]Elem, 0, 40)
		for i := 0; i < 32; i++ {
			cases = append(cases, [2]Elem{f.Rand(rng), f.Rand(rng)})
		}
		ones := f.NewElem()
		for i := range ones {
			ones[i] = ^uint64(0)
		}
		f.mask(ones)
		top := f.NewElem()
		top.SetBit(f.M-1, 1)
		cases = append(cases,
			[2]Elem{ones, ones.Clone()},
			[2]Elem{top, top.Clone()},
			[2]Elem{ones, top.Clone()},
			[2]Elem{f.One(), f.Rand(rng)},
			[2]Elem{f.NewElem(), f.Rand(rng)},
		)
		for _, c := range cases {
			a, b := c[0], c[1]
			fast, ref := f.NewElem(), f.NewElem()
			f.Mul(fast, a, b)
			f.mulGeneric(ref, a, b)
			if !fast.Equal(ref) {
				t.Fatalf("m=%d: Mul(%v, %v) = %v, reference %v", f.M, a, b, fast, ref)
			}
			f.Sqr(fast, a)
			f.mulGeneric(ref, a, a)
			if !fast.Equal(ref) {
				t.Fatalf("m=%d: Sqr(%v) = %v, reference %v", f.M, a, fast, ref)
			}
		}
	}
}

func TestMulAliasing(t *testing.T) {
	for _, f := range testFields {
		rng := xrand.New(uint64(41 + f.M))
		a, b := f.Rand(rng), f.Rand(rng)
		want := f.NewElem()
		f.Mul(want, a, b)
		gotA := a.Clone()
		f.Mul(gotA, gotA, b)
		if !gotA.Equal(want) {
			t.Fatalf("m=%d: dst aliasing a broke Mul", f.M)
		}
		gotB := b.Clone()
		f.Mul(gotB, a, gotB)
		if !gotB.Equal(want) {
			t.Fatalf("m=%d: dst aliasing b broke Mul", f.M)
		}
		sq := a.Clone()
		f.Sqr(sq, sq)
		wantSq := f.NewElem()
		f.Sqr(wantSq, a)
		if !sq.Equal(wantSq) {
			t.Fatalf("m=%d: dst aliasing a broke Sqr", f.M)
		}
	}
}

func BenchmarkMulSect163(b *testing.B) {
	f := NewField(Sect163Poly)
	rng := xrand.New(1)
	x, y := f.Rand(rng), f.Rand(rng)
	out := f.NewElem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(out, x, y)
	}
}

func BenchmarkSqrSect163(b *testing.B) {
	f := NewField(Sect163Poly)
	rng := xrand.New(2)
	x := f.Rand(rng)
	out := f.NewElem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Sqr(out, x)
	}
}

func TestDegree(t *testing.T) {
	f := NewField(Sect163Poly)
	e := f.NewElem()
	if e.Degree() != -1 {
		t.Fatal("zero degree should be -1")
	}
	e.SetBit(100, 1)
	e.SetBit(3, 1)
	if e.Degree() != 100 {
		t.Fatalf("degree = %d, want 100", e.Degree())
	}
}
