// Package gf2m implements binary-field GF(2^m) arithmetic in polynomial
// basis, the substrate of the vulnerable ECDSA victim (curve sect571r1
// uses GF(2^571) with the standard pentanomial, §7.1).
//
// Elements are bit vectors over little-endian uint64 words. All routines
// are deterministic; none are constant-time — the victim's leak is a
// code-layout property, not a data-timing property, so the arithmetic
// here only needs to be correct.
package gf2m

import (
	"fmt"
	"math/bits"

	"repro/internal/xrand"
)

// Field describes GF(2^m) reduced by the polynomial with the given
// exponents (which must include m and 0, in decreasing order).
type Field struct {
	M     int
	Poly  []int // e.g. [571, 10, 5, 2, 0]
	words int
}

// NewField creates a field. It panics on malformed polynomials.
func NewField(poly []int) *Field {
	if len(poly) < 2 || poly[len(poly)-1] != 0 {
		panic("gf2m: polynomial must end with exponent 0")
	}
	for i := 1; i < len(poly); i++ {
		if poly[i] >= poly[i-1] {
			panic("gf2m: polynomial exponents must strictly decrease")
		}
	}
	m := poly[0]
	return &Field{M: m, Poly: poly, words: (m + 63) / 64}
}

// Standard field polynomials (SEC 2).
var (
	// Sect571Poly is x^571 + x^10 + x^5 + x^2 + 1 (sect571r1 / B-571).
	Sect571Poly = []int{571, 10, 5, 2, 0}
	// Sect163Poly is x^163 + x^7 + x^6 + x^3 + 1 (sect163r2 / B-163).
	Sect163Poly = []int{163, 7, 6, 3, 0}
	// Toy17Poly is x^17 + x^3 + 1 — a brute-forceable field used by
	// round-trip tests.
	Toy17Poly = []int{17, 3, 0}
)

// Words returns the number of 64-bit words per element.
func (f *Field) Words() int { return f.words }

// Elem is a field element; its length equals Field.Words().
type Elem []uint64

// NewElem returns the zero element.
func (f *Field) NewElem() Elem { return make(Elem, f.words) }

// Zero reports whether e is zero.
func (e Elem) Zero() bool {
	for _, w := range e {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports element equality.
func (e Elem) Equal(o Elem) bool {
	for i := range e {
		if e[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of e.
func (e Elem) Clone() Elem { return append(Elem(nil), e...) }

// Bit returns bit i of e.
func (e Elem) Bit(i int) uint {
	if i < 0 || i >= len(e)*64 {
		return 0
	}
	return uint(e[i/64]>>(i%64)) & 1
}

// SetBit sets bit i of e to v.
func (e Elem) SetBit(i int, v uint) {
	if v&1 == 1 {
		e[i/64] |= 1 << (i % 64)
	} else {
		e[i/64] &^= 1 << (i % 64)
	}
}

// Degree returns the degree of e as a polynomial, or -1 for zero.
func (e Elem) Degree() int {
	for i := len(e) - 1; i >= 0; i-- {
		if e[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(e[i])
		}
	}
	return -1
}

// String formats the element as hex (most significant word first).
func (e Elem) String() string {
	s := ""
	for i := len(e) - 1; i >= 0; i-- {
		s += fmt.Sprintf("%016x", e[i])
	}
	return "0x" + s
}

// One returns the multiplicative identity.
func (f *Field) One() Elem {
	e := f.NewElem()
	e[0] = 1
	return e
}

// FromUint64 returns the element with the given low word.
func (f *Field) FromUint64(v uint64) Elem {
	e := f.NewElem()
	e[0] = v
	f.reduce(e)
	return e
}

// Rand returns a uniformly random element.
func (f *Field) Rand(rng *xrand.Rand) Elem {
	e := f.NewElem()
	for i := range e {
		e[i] = rng.Uint64()
	}
	f.mask(e)
	return e
}

// mask clears bits at and above m (valid only for already-reduced
// representations; used after random fills).
func (f *Field) mask(e Elem) {
	top := f.M % 64
	if top != 0 {
		e[len(e)-1] &= (1 << top) - 1
	}
}

// Add returns a+b (XOR). Aliasing is allowed.
func (f *Field) Add(dst, a, b Elem) Elem {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
	return dst
}

// shl1 shifts e left by one bit in place, returning the carried-out bit.
func shl1(e Elem) uint64 {
	carry := uint64(0)
	for i := range e {
		next := e[i] >> 63
		e[i] = e[i]<<1 | carry
		carry = next
	}
	return carry
}

// reduce reduces an element that may have bits set at positions >= m but
// < words*64 (at most one extra word of headroom is not supported; Mul
// manages its own double-width reduction).
func (f *Field) reduce(e Elem) {
	for d := e.Degree(); d >= f.M; d = e.Degree() {
		for _, p := range f.Poly {
			idx := d - f.M + p
			e[idx/64] ^= 1 << (idx % 64)
		}
	}
}

// maxWords is the widest element (in 64-bit words) the fast comb
// multiplier handles with stack scratch; sect571 needs 9. Wider fields
// fall back to the bit-serial path.
const maxWords = 9

// Mul returns a*b mod f. dst may alias a or b (the product is built in a
// scratch accumulator). Multiplication is a pure function of (a, b, f),
// so the algorithm here — a left-to-right 4-bit windowed comb over
// stack-allocated scratch, followed by word-level reduction — is free to
// differ from the bit-serial reference (mulGeneric) without changing any
// simulator output.
func (f *Field) Mul(dst, a, b Elem) Elem {
	if len(a) < f.words || len(b) < f.words {
		panic("gf2m: uninitialized element")
	}
	if f.words > maxWords {
		return f.mulGeneric(dst, a, b)
	}
	n := f.words
	// tab[u] = a * u(x) for every 4-bit polynomial u, one headroom word
	// for the up-to-3-bit shift.
	var tab [16][maxWords + 1]uint64
	for w := 0; w < n; w++ {
		tab[1][w] = a[w]
	}
	for u := 2; u < 16; u++ {
		if u&1 == 0 {
			src := &tab[u/2]
			carry := uint64(0)
			for w := 0; w <= n; w++ {
				tab[u][w] = src[w]<<1 | carry
				carry = src[w] >> 63
			}
		} else {
			src := &tab[u-1]
			for w := 0; w <= n; w++ {
				tab[u][w] = src[w]
			}
			for w := 0; w < n; w++ {
				tab[u][w] ^= a[w]
			}
		}
	}
	var acc [2 * maxWords]uint64
	for k := 15; ; k-- {
		for i := 0; i < n; i++ {
			u := (b[i] >> uint(4*k)) & 0xF
			if u != 0 {
				t := &tab[u]
				for w := 0; w <= n; w++ {
					acc[i+w] ^= t[w]
				}
			}
		}
		if k == 0 {
			break
		}
		carry := uint64(0)
		for w := 0; w < 2*n; w++ {
			next := acc[w] >> 60
			acc[w] = acc[w]<<4 | carry
			carry = next
		}
	}
	f.reduceWide(acc[:2*n])
	copy(dst, acc[:n])
	return dst
}

// mulGeneric is the bit-serial shift-and-add multiplier: slow, obviously
// correct, and the reference the comb path is tested against. It also
// serves fields wider than maxWords.
func (f *Field) mulGeneric(dst, a, b Elem) Elem {
	if len(a) < f.words || len(b) < f.words {
		panic("gf2m: uninitialized element")
	}
	// Left-to-right shift-and-add with interleaved reduction: one word of
	// headroom holds the transient bit m between shift and reduction.
	acc := make(Elem, f.words+1)
	for i := f.M - 1; i >= 0; i-- {
		shl1(acc)
		if acc.Bit(f.M) == 1 {
			acc.SetBit(f.M, 0)
			for _, p := range f.Poly[1:] {
				acc.SetBit(p, acc.Bit(p)^1)
			}
		}
		if b.Bit(i) == 1 {
			for w := 0; w < f.words; w++ {
				acc[w] ^= a[w]
			}
		}
	}
	copy(dst, acc[:f.words])
	return dst
}

// reduceWide reduces a double-width polynomial (the raw comb or squaring
// product) modulo f in place; on return only acc[:f.words] is meaningful.
// Each pass folds every bit at position >= m down by xoring the tail of
// the reduction polynomial at the shifted offset; sparse pentanomials
// converge in one pass for large fields, and the loop covers toy fields
// where a fold can re-raise bits above m.
func (f *Field) reduceWide(acc Elem) {
	mw, mb := f.M/64, uint(f.M%64)
	for {
		progress := false
		for i := len(acc) - 1; i > mw; i-- {
			w := acc[i]
			if w == 0 {
				continue
			}
			acc[i] = 0
			base := i*64 - f.M
			for _, p := range f.Poly[1:] {
				sh := base + p
				ws, bs := sh/64, uint(sh%64)
				acc[ws] ^= w << bs
				if bs != 0 && ws+1 < len(acc) {
					acc[ws+1] ^= w >> (64 - bs)
				}
			}
			progress = true
		}
		if hi := acc[mw] >> mb; hi != 0 {
			acc[mw] ^= hi << mb
			for _, p := range f.Poly[1:] {
				ws, bs := p/64, uint(p%64)
				acc[ws] ^= hi << bs
				if bs != 0 && ws+1 < len(acc) {
					acc[ws+1] ^= hi >> (64 - bs)
				}
			}
			progress = true
		}
		if !progress {
			return
		}
	}
}

// sqrTab spreads the bits of a byte into the even bit positions of a
// 16-bit word: squaring in GF(2)[x] just interleaves zeros between bits.
var sqrTab = func() (t [256]uint16) {
	for i := range t {
		v := uint16(0)
		for b := 0; b < 8; b++ {
			if i>>uint(b)&1 == 1 {
				v |= 1 << uint(2*b)
			}
		}
		t[i] = v
	}
	return
}()

// spread32 expands 32 bits into 64 by inserting a zero after every bit.
func spread32(x uint32) uint64 {
	return uint64(sqrTab[x&0xff]) |
		uint64(sqrTab[x>>8&0xff])<<16 |
		uint64(sqrTab[x>>16&0xff])<<32 |
		uint64(sqrTab[x>>24])<<48
}

// Sqr returns a² mod f. dst may alias a. Squaring is linear over GF(2),
// so it is a straight bit-spread through sqrTab plus one reduction —
// far cheaper than a general multiply.
func (f *Field) Sqr(dst, a Elem) Elem {
	if len(a) < f.words {
		panic("gf2m: uninitialized element")
	}
	if f.words > maxWords {
		return f.mulGeneric(dst, a, a)
	}
	n := f.words
	var acc [2 * maxWords]uint64
	for i := 0; i < n; i++ {
		w := a[i]
		acc[2*i] = spread32(uint32(w))
		acc[2*i+1] = spread32(uint32(w >> 32))
	}
	f.reduceWide(acc[:2*n])
	copy(dst, acc[:n])
	return dst
}

// Inv returns a⁻¹ mod f using the binary extended Euclidean algorithm
// over GF(2)[x]. It panics on zero input.
func (f *Field) Inv(dst, a Elem) Elem {
	if a.Zero() {
		panic("gf2m: inverse of zero")
	}
	// u, v are polynomials; g1, g2 track Bezout coefficients.
	// One extra word of headroom holds the reduction polynomial itself.
	w := f.words + 1
	u := make(Elem, w)
	copy(u, a)
	v := make(Elem, w)
	for _, p := range f.Poly {
		v[p/64] |= 1 << (p % 64)
	}
	g1 := make(Elem, w)
	g1[0] = 1
	g2 := make(Elem, w)

	deg := func(e Elem) int { return e.Degree() }
	xorShift := func(dst, src Elem, sh int) {
		// dst ^= src << sh
		wordSh, bitSh := sh/64, uint(sh%64)
		for i := len(src) - 1; i >= 0; i-- {
			if src[i] == 0 {
				continue
			}
			lo := src[i] << bitSh
			if i+wordSh < len(dst) {
				dst[i+wordSh] ^= lo
			}
			if bitSh != 0 && i+wordSh+1 < len(dst) {
				dst[i+wordSh+1] ^= src[i] >> (64 - bitSh)
			}
		}
	}
	for {
		du, dv := deg(u), deg(v)
		if du == 0 {
			break
		}
		if du < dv {
			u, v = v, u
			g1, g2 = g2, g1
			du, dv = dv, du
		}
		sh := du - dv
		xorShift(u, v, sh)
		xorShift(g1, g2, sh)
	}
	out := f.NewElem()
	copy(out, g1[:f.words])
	f.mask(out)
	copy(dst, out)
	return dst
}

// Trace returns Tr(a) = a + a² + a⁴ + ... + a^(2^(m-1)), which is 0 or 1.
func (f *Field) Trace(a Elem) uint {
	t := a.Clone()
	acc := a.Clone()
	for i := 1; i < f.M; i++ {
		f.Sqr(acc, acc)
		f.Add(t, t, acc)
	}
	return t.Bit(0)
}

// HalfTrace returns H(c) = sum of c^(4^i) for i in [0, (m-1)/2], which
// solves z² + z = c when m is odd and Tr(c) = 0. It is used to derive
// curve points from x-coordinates.
func (f *Field) HalfTrace(c Elem) Elem {
	if f.M%2 == 0 {
		panic("gf2m: half-trace requires odd m")
	}
	h := c.Clone()
	acc := c.Clone()
	for i := 1; i <= (f.M-1)/2; i++ {
		f.Sqr(acc, acc)
		f.Sqr(acc, acc)
		f.Add(h, h, acc)
	}
	return h
}
