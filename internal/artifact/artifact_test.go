package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const fp = uint64(0xfeedc0dedeadbeef)

func mustCreate(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cells.bin")
	l, err := Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendGetRoundTrip(t *testing.T) {
	l, path := mustCreate(t)
	records := map[string][]byte{
		"a|LRU|8":  {1, 2, 3},
		"b|QLRU|6": {},
		"c|SRRIP":  bytes.Repeat([]byte{0xab}, 1000),
	}
	for k, v := range records {
		if err := l.Append(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(records) || re.DroppedTail != 0 || re.DroppedDuplicates != 0 {
		t.Fatalf("reopen: len=%d droppedTail=%d droppedDup=%d", re.Len(), re.DroppedTail, re.DroppedDuplicates)
	}
	for k, v := range records {
		got, ok := re.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %v, %v; want %v", k, got, ok, v)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	l, path := mustCreate(t)
	l.Close()
	if _, err := Create(path, fp); err == nil {
		t.Fatal("Create over an existing log must fail")
	}
}

func TestFingerprintMismatch(t *testing.T) {
	l, path := mustCreate(t)
	l.Close()
	_, err := Open(path, fp+1)
	var fe *ErrFingerprint
	if !errors.As(err, &fe) {
		t.Fatalf("Open with wrong fingerprint: err = %v, want ErrFingerprint", err)
	}
}

func TestAppendRejectsDuplicateKey(t *testing.T) {
	l, _ := mustCreate(t)
	defer l.Close()
	if err := l.Append("cell", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("cell", []byte{2}); err == nil {
		t.Fatal("second Append for the same key must be rejected")
	}
}

// appendN writes n distinct records and closes the log, returning the
// file size after each record so corruption tests can cut at record
// boundaries.
func appendN(t *testing.T, n int) (string, []int64) {
	t.Helper()
	l, path := mustCreate(t)
	var sizes []int64
	for i := 0; i < n; i++ {
		key := string(rune('a'+i)) + "|cell"
		if err := l.Append(key, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, st.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path, sizes
}

// TestTruncatedTailDropped is corruption case 1 of the matrix: a record
// torn mid-append (file cut inside the last record) is dropped on Open,
// the file is truncated back to the verified prefix, and only the torn
// cell is lost.
func TestTruncatedTailDropped(t *testing.T) {
	path, sizes := appendN(t, 3)
	if err := os.Truncate(path, sizes[2]-5); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 || l.DroppedTail != 1 {
		t.Fatalf("after torn tail: len=%d droppedTail=%d, want 2, 1", l.Len(), l.DroppedTail)
	}
	if _, ok := l.Get("c|cell"); ok {
		t.Fatal("torn record still served")
	}
	// The repair must be physical: the file is cut back to the verified
	// prefix so the next append continues cleanly.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != sizes[1] {
		t.Fatalf("file not truncated to verified prefix: %d, want %d", st.Size(), sizes[1])
	}
	// Re-running the lost cell converges: append it again, reopen clean.
	if err := l.Append("c|cell", []byte{9}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	re, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 || re.DroppedTail != 0 {
		t.Fatalf("after repair+reappend: len=%d droppedTail=%d", re.Len(), re.DroppedTail)
	}
}

// TestFlippedChecksumByteDropsSuffix is corruption case 2: a single
// flipped byte inside a record fails its CRC; the record and everything
// after it (whose framing can no longer be trusted) are dropped and
// truncated, so the affected cells re-run rather than aggregate wrong.
func TestFlippedChecksumByteDropsSuffix(t *testing.T) {
	path, sizes := appendN(t, 4)
	// Flip one payload byte inside record 2 (offsets [sizes[1], sizes[2])).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := sizes[1] + (sizes[2]-sizes[1])/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], mid); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 2 {
		t.Fatalf("after mid-file flip: len=%d, want the 2 records before the flip", l.Len())
	}
	if l.DroppedTail != 2 {
		t.Errorf("droppedTail = %d, want 2 (the flipped record and the one after it)", l.DroppedTail)
	}
	for _, k := range []string{"c|cell", "d|cell"} {
		if _, ok := l.Get(k); ok {
			t.Errorf("record %q after the corruption still served", k)
		}
	}
	if st, _ := os.Stat(path); st.Size() != sizes[1] {
		t.Errorf("file not truncated at the corruption: %d, want %d", st.Size(), sizes[1])
	}
}

// TestDuplicateKeyDropsBothAndCompacts is corruption case 3: two
// verified records claiming one cell are ambiguous — neither is served,
// the log is compacted so the key is physically gone, and a fresh
// append for the cell converges instead of re-duplicating.
func TestDuplicateKeyDropsBothAndCompacts(t *testing.T) {
	l, path := mustCreate(t)
	if err := l.Append("keep|cell", []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dup|cell", []byte{1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Forge a second verified record for dup|cell by appending the raw
	// frame (Append itself refuses duplicates).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeRecord("dup|cell", []byte{2})); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if re.DroppedDuplicates != 1 || re.Len() != 1 {
		t.Fatalf("dup open: droppedDup=%d len=%d, want 1, 1", re.DroppedDuplicates, re.Len())
	}
	if _, ok := re.Get("dup|cell"); ok {
		t.Fatal("ambiguous duplicate record still served")
	}
	if _, ok := re.Get("keep|cell"); !ok {
		t.Fatal("unrelated record lost during compaction")
	}
	// Convergence: re-run the cell, reopen — no duplicates remain.
	if err := re.Append("dup|cell", []byte{3}); err != nil {
		t.Fatal(err)
	}
	re.Close()
	final, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.DroppedDuplicates != 0 || final.Len() != 2 {
		t.Fatalf("after compaction+reappend: droppedDup=%d len=%d, want 0, 2", final.DroppedDuplicates, final.Len())
	}
	if got, ok := final.Get("dup|cell"); !ok || !bytes.Equal(got, []byte{3}) {
		t.Fatalf("re-run record = %v, %v", got, ok)
	}
}

// TestGarbageHeaderRejected: a file that is not a cell log (or an
// unsupported version) is rejected outright rather than "repaired".
func TestGarbageHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk, fp); err == nil {
		t.Fatal("Open accepted a non-log file")
	}

	// Right magic, wrong version.
	vpath := filepath.Join(dir, "v.bin")
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version+1)
	binary.LittleEndian.PutUint64(hdr[8:16], fp)
	if err := os.WriteFile(vpath, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(vpath, fp); err == nil {
		t.Fatal("Open accepted an unsupported version")
	}
}

// TestShortHeaderIsTyped: any file shorter than one header is the
// typed ErrShortHeader — the recoverable "crash before the header
// sync" case — while a full-size garbage header stays an ordinary
// hard error.
func TestShortHeaderIsTyped(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int{0, 1, 7, 15} {
		p := filepath.Join(dir, "torn.cells")
		if err := os.WriteFile(p, bytes.Repeat([]byte{0x4c}, n), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(p, fp)
		var short *ErrShortHeader
		if !errors.As(err, &short) {
			t.Fatalf("%d-byte file: err = %v, want ErrShortHeader", n, err)
		}
		if short.Size != int64(n) {
			t.Fatalf("ErrShortHeader.Size = %d, want %d", short.Size, n)
		}
	}
	p := filepath.Join(dir, "garbage.cells")
	if err := os.WriteFile(p, bytes.Repeat([]byte{0x4c}, headerSize), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(p, fp)
	var short *ErrShortHeader
	if err == nil || errors.As(err, &short) {
		t.Fatalf("full-size garbage header: err = %v, want a hard (non-short) error", err)
	}
}

// TestOpenOrCreate covers the recovery matrix: missing file created,
// valid log opened with its records, torn header recreated empty, and
// every hard failure (wrong fingerprint, garbage) passed through.
func TestOpenOrCreate(t *testing.T) {
	dir := t.TempDir()

	p := filepath.Join(dir, "fresh.cells")
	l, err := OpenOrCreate(p, fp)
	if err != nil {
		t.Fatalf("missing file: %v", err)
	}
	if err := l.Append("cell", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l, err = OpenOrCreate(p, fp)
	if err != nil {
		t.Fatalf("existing log: %v", err)
	}
	if got, ok := l.Get("cell"); !ok || !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("existing log lost its record: %v %v", got, ok)
	}
	l.Close()

	torn := filepath.Join(dir, "torn.cells")
	if err := os.WriteFile(torn, []byte("LLCA\x01\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = OpenOrCreate(torn, fp)
	if err != nil {
		t.Fatalf("torn header: %v", err)
	}
	if l.Len() != 0 {
		t.Fatalf("recreated log has %d records", l.Len())
	}
	if err := l.Append("cell", []byte{3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if re, err := Open(torn, fp); err != nil || re.Len() != 1 {
		t.Fatalf("recreated log did not survive reopen: %v", err)
	} else {
		re.Close()
	}

	if _, err := OpenOrCreate(p, fp+1); err == nil {
		t.Fatal("wrong fingerprint must stay a hard error")
	}
	garbage := filepath.Join(dir, "garbage.cells")
	if err := os.WriteFile(garbage, bytes.Repeat([]byte{9}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOrCreate(garbage, fp); err == nil {
		t.Fatal("garbage header must stay a hard error")
	}
}

// TestMergeUnit exercises Merge at the record level: ordering by
// opts.Order regardless of source order, equal-payload dedupe,
// conflicting-payload abort, foreign-key abort, Validate veto, and
// refusal to overwrite an existing destination.
func TestMergeUnit(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, cells map[string][]byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		l, err := Create(p, fp)
		if err != nil {
			t.Fatal(err)
		}
		// Map iteration scrambles append order on purpose: Merge must
		// normalise to opts.Order anyway.
		for k, v := range cells {
			if err := l.Append(k, v); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return p
	}
	order := []string{"a", "b", "c", "d"}

	a := mk("a.cells", map[string][]byte{"c": {3}, "a": {1}})
	b := mk("b.cells", map[string][]byte{"b": {2}, "c": {3}}) // c duplicates a's byte-equal record
	dst := filepath.Join(dir, "merged.cells")
	st, err := Merge(dst, fp, MergeOptions{Order: order}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != 2 || st.Records != 3 || st.Deduped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	m, err := Open(dst, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Keys(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("merged key order = %v, want [a b c]", got)
	}
	m.Close()

	// An existing destination is never clobbered.
	if _, err := Merge(dst, fp, MergeOptions{Order: order}, a); err == nil {
		t.Fatal("Merge overwrote an existing destination")
	}

	conflict := mk("conflict.cells", map[string][]byte{"a": {9}})
	d2 := filepath.Join(dir, "d2.cells")
	if _, err := Merge(d2, fp, MergeOptions{Order: order}, a, conflict); err == nil {
		t.Fatal("conflicting payloads merged")
	}
	if _, serr := os.Stat(d2); serr == nil {
		t.Fatal("failed merge left a destination")
	}

	foreign := mk("foreign.cells", map[string][]byte{"zz": {1}})
	if _, err := Merge(filepath.Join(dir, "d3.cells"), fp, MergeOptions{Order: order}, foreign); err == nil {
		t.Fatal("key outside Order merged")
	}

	veto := func(key string, payload []byte) error {
		if key == "c" {
			return errors.New("vetoed")
		}
		return nil
	}
	if _, err := Merge(filepath.Join(dir, "d4.cells"), fp, MergeOptions{Order: order, Validate: veto}, a); err == nil {
		t.Fatal("Validate veto ignored")
	}

	if _, err := Merge(filepath.Join(dir, "d5.cells"), fp, MergeOptions{Order: order}); err == nil {
		t.Fatal("merge with zero sources must fail")
	}

	// Wrong-fingerprint sources are rejected by the usual Open check.
	if _, err := Merge(filepath.Join(dir, "d6.cells"), fp+1, MergeOptions{Order: order}, a); err == nil {
		t.Fatal("source with foreign fingerprint merged")
	}
}

// SourceKeys is the merge's range-aware input gate: a listed source
// holding any key outside its assigned set aborts the merge, while
// unlisted sources are only checked against Order.
func TestMergeSourceKeys(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, cells map[string][]byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		l, err := Create(p, fp)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range cells {
			if err := l.Append(k, v); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return p
	}
	order := []string{"a", "b", "c", "d"}
	left := mk("left.cells", map[string][]byte{"a": {1}, "b": {2}})
	right := mk("right.cells", map[string][]byte{"c": {3}, "d": {4}})

	// Exact assignments merge cleanly.
	dst := filepath.Join(dir, "ok.cells")
	st, err := Merge(dst, fp, MergeOptions{
		Order:      order,
		SourceKeys: map[string][]string{left: {"a", "b"}, right: {"c", "d"}},
	}, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 4 {
		t.Fatalf("stats = %+v, want 4 records", st)
	}

	// A source holding a key outside its assignment aborts, even though
	// the key is inside Order.
	d2 := filepath.Join(dir, "narrow.cells")
	if _, err := Merge(d2, fp, MergeOptions{
		Order:      order,
		SourceKeys: map[string][]string{left: {"a"}},
	}, left, right); err == nil {
		t.Fatal("source with a key outside its assigned range merged")
	}
	if _, serr := os.Stat(d2); serr == nil {
		t.Fatal("failed merge left a destination")
	}

	// An unlisted source falls back to the Order-only check.
	d3 := filepath.Join(dir, "unlisted.cells")
	if _, err := Merge(d3, fp, MergeOptions{
		Order:      order,
		SourceKeys: map[string][]string{right: {"c", "d"}},
	}, left, right); err != nil {
		t.Fatalf("unlisted source rejected: %v", err)
	}
}

// CheckKeys is the download-integrity gate: the log must verify under
// the fingerprint and hold exactly the expected key set — missing keys
// are a truncated transfer, extra keys a foreign range, and a wrong
// fingerprint fails at open.
func TestCheckKeys(t *testing.T) {
	l, path := mustCreate(t)
	for _, k := range []string{"a", "b", "c"} {
		if err := l.Append(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	n, err := CheckKeys(path, fp, []string{"a", "b", "c"})
	if err != nil || n != 3 {
		t.Fatalf("CheckKeys = %d, %v; want 3, nil", n, err)
	}
	if _, err := CheckKeys(path, fp, []string{"a", "b", "c", "d"}); err == nil {
		t.Fatal("CheckKeys accepted a log missing a key")
	}
	if _, err := CheckKeys(path, fp, []string{"a", "b"}); err == nil {
		t.Fatal("CheckKeys accepted a log with an unexpected key")
	}
	if _, err := CheckKeys(path, fp+1, []string{"a", "b", "c"}); err == nil {
		t.Fatal("CheckKeys accepted a wrong fingerprint")
	}
	if _, err := CheckKeys(filepath.Join(t.TempDir(), "absent.cells"), fp, nil); err == nil {
		t.Fatal("CheckKeys accepted a missing file")
	}
}
