package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const fp = uint64(0xfeedc0dedeadbeef)

func mustCreate(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cells.bin")
	l, err := Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendGetRoundTrip(t *testing.T) {
	l, path := mustCreate(t)
	records := map[string][]byte{
		"a|LRU|8":  {1, 2, 3},
		"b|QLRU|6": {},
		"c|SRRIP":  bytes.Repeat([]byte{0xab}, 1000),
	}
	for k, v := range records {
		if err := l.Append(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(records) || re.DroppedTail != 0 || re.DroppedDuplicates != 0 {
		t.Fatalf("reopen: len=%d droppedTail=%d droppedDup=%d", re.Len(), re.DroppedTail, re.DroppedDuplicates)
	}
	for k, v := range records {
		got, ok := re.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %v, %v; want %v", k, got, ok, v)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	l, path := mustCreate(t)
	l.Close()
	if _, err := Create(path, fp); err == nil {
		t.Fatal("Create over an existing log must fail")
	}
}

func TestFingerprintMismatch(t *testing.T) {
	l, path := mustCreate(t)
	l.Close()
	_, err := Open(path, fp+1)
	var fe *ErrFingerprint
	if !errors.As(err, &fe) {
		t.Fatalf("Open with wrong fingerprint: err = %v, want ErrFingerprint", err)
	}
}

func TestAppendRejectsDuplicateKey(t *testing.T) {
	l, _ := mustCreate(t)
	defer l.Close()
	if err := l.Append("cell", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("cell", []byte{2}); err == nil {
		t.Fatal("second Append for the same key must be rejected")
	}
}

// appendN writes n distinct records and closes the log, returning the
// file size after each record so corruption tests can cut at record
// boundaries.
func appendN(t *testing.T, n int) (string, []int64) {
	t.Helper()
	l, path := mustCreate(t)
	var sizes []int64
	for i := 0; i < n; i++ {
		key := string(rune('a'+i)) + "|cell"
		if err := l.Append(key, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, st.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path, sizes
}

// TestTruncatedTailDropped is corruption case 1 of the matrix: a record
// torn mid-append (file cut inside the last record) is dropped on Open,
// the file is truncated back to the verified prefix, and only the torn
// cell is lost.
func TestTruncatedTailDropped(t *testing.T) {
	path, sizes := appendN(t, 3)
	if err := os.Truncate(path, sizes[2]-5); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 || l.DroppedTail != 1 {
		t.Fatalf("after torn tail: len=%d droppedTail=%d, want 2, 1", l.Len(), l.DroppedTail)
	}
	if _, ok := l.Get("c|cell"); ok {
		t.Fatal("torn record still served")
	}
	// The repair must be physical: the file is cut back to the verified
	// prefix so the next append continues cleanly.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != sizes[1] {
		t.Fatalf("file not truncated to verified prefix: %d, want %d", st.Size(), sizes[1])
	}
	// Re-running the lost cell converges: append it again, reopen clean.
	if err := l.Append("c|cell", []byte{9}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	re, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 || re.DroppedTail != 0 {
		t.Fatalf("after repair+reappend: len=%d droppedTail=%d", re.Len(), re.DroppedTail)
	}
}

// TestFlippedChecksumByteDropsSuffix is corruption case 2: a single
// flipped byte inside a record fails its CRC; the record and everything
// after it (whose framing can no longer be trusted) are dropped and
// truncated, so the affected cells re-run rather than aggregate wrong.
func TestFlippedChecksumByteDropsSuffix(t *testing.T) {
	path, sizes := appendN(t, 4)
	// Flip one payload byte inside record 2 (offsets [sizes[1], sizes[2])).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := sizes[1] + (sizes[2]-sizes[1])/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], mid); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 2 {
		t.Fatalf("after mid-file flip: len=%d, want the 2 records before the flip", l.Len())
	}
	if l.DroppedTail != 2 {
		t.Errorf("droppedTail = %d, want 2 (the flipped record and the one after it)", l.DroppedTail)
	}
	for _, k := range []string{"c|cell", "d|cell"} {
		if _, ok := l.Get(k); ok {
			t.Errorf("record %q after the corruption still served", k)
		}
	}
	if st, _ := os.Stat(path); st.Size() != sizes[1] {
		t.Errorf("file not truncated at the corruption: %d, want %d", st.Size(), sizes[1])
	}
}

// TestDuplicateKeyDropsBothAndCompacts is corruption case 3: two
// verified records claiming one cell are ambiguous — neither is served,
// the log is compacted so the key is physically gone, and a fresh
// append for the cell converges instead of re-duplicating.
func TestDuplicateKeyDropsBothAndCompacts(t *testing.T) {
	l, path := mustCreate(t)
	if err := l.Append("keep|cell", []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dup|cell", []byte{1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Forge a second verified record for dup|cell by appending the raw
	// frame (Append itself refuses duplicates).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeRecord("dup|cell", []byte{2})); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if re.DroppedDuplicates != 1 || re.Len() != 1 {
		t.Fatalf("dup open: droppedDup=%d len=%d, want 1, 1", re.DroppedDuplicates, re.Len())
	}
	if _, ok := re.Get("dup|cell"); ok {
		t.Fatal("ambiguous duplicate record still served")
	}
	if _, ok := re.Get("keep|cell"); !ok {
		t.Fatal("unrelated record lost during compaction")
	}
	// Convergence: re-run the cell, reopen — no duplicates remain.
	if err := re.Append("dup|cell", []byte{3}); err != nil {
		t.Fatal(err)
	}
	re.Close()
	final, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.DroppedDuplicates != 0 || final.Len() != 2 {
		t.Fatalf("after compaction+reappend: droppedDup=%d len=%d, want 0, 2", final.DroppedDuplicates, final.Len())
	}
	if got, ok := final.Get("dup|cell"); !ok || !bytes.Equal(got, []byte{3}) {
		t.Fatalf("re-run record = %v, %v", got, ok)
	}
}

// TestGarbageHeaderRejected: a file that is not a cell log (or an
// unsupported version) is rejected outright rather than "repaired".
func TestGarbageHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk, fp); err == nil {
		t.Fatal("Open accepted a non-log file")
	}

	// Right magic, wrong version.
	vpath := filepath.Join(dir, "v.bin")
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version+1)
	binary.LittleEndian.PutUint64(hdr[8:16], fp)
	if err := os.WriteFile(vpath, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(vpath, fp); err == nil {
		t.Fatal("Open accepted an unsupported version")
	}
}
