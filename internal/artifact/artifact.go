// Package artifact implements the append-only binary cell-result log
// that makes long campaigns survivable: every completed grid cell is
// appended as one checksummed record, so a run killed at any instant
// loses at most the cell it was computing. The format follows the WAL
// discipline (append, fsync, never rewrite in place): a fixed-size
// header binds the log to one sweep spec via a fingerprint, each record
// carries a CRC-32C over its length fields, key and payload, and Open
// rebuilds the in-memory index by scanning — a torn or corrupt tail is
// detected by checksum, dropped, and physically truncated away, so the
// next append continues from the last verified record.
//
// Two failure shapes get distinct treatment on Open:
//
//   - A record that fails its checksum (torn write, bit rot) ends the
//     trusted prefix: it and everything after it are dropped and
//     truncated. Lengths inside a corrupt record cannot be trusted, so
//     resynchronising past it would risk parsing garbage as valid
//     records; re-running the lost cells is always safe, reading a
//     half-written one never is.
//   - Two VERIFIED records with the same cell key are ambiguous (they
//     may disagree), so neither is used: the key is dropped from the
//     index and the log is compacted in place (rewritten without the
//     duplicated key, via temp file + rename), which both forces the
//     cell to re-run and makes the dedup converge instead of
//     accumulating copies.
//
// JSON/CSV artifacts are export views rendered from the log's records;
// the log itself is the durable form.
package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a cell-result log file ("LLCA" little-endian).
const Magic = 0x4143_4c4c

// Version is the current format version; Open rejects others.
const Version = 1

// headerSize is the fixed on-disk header: magic u32, version u32,
// spec fingerprint u64, all little-endian.
const headerSize = 16

// recordOverhead is the fixed per-record framing: key length u32,
// payload length u32, trailing CRC-32C u32.
const recordOverhead = 12

// maxKeyLen and maxPayloadLen bound record framing so a corrupt length
// field cannot drive a multi-gigabyte allocation while scanning.
const (
	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open cell-result log. Get serves reads from the in-memory
// index built at Open (records are small aggregates, not raw traces,
// so the whole index fits trivially); Append writes through to disk
// with an fsync before the record is considered durable. A Log is not
// safe for concurrent use; the campaign runner serialises appends.
type Log struct {
	f    *os.File
	path string
	// index maps cell key -> verified payload. Only keys whose record
	// verified exactly once are present.
	index map[string][]byte
	// order keeps insertion order of index keys, so compaction and
	// Keys() are deterministic.
	order []string

	// DroppedTail counts records lost to the truncated/corrupt tail at
	// Open (0 on a cleanly closed log).
	DroppedTail int
	// DroppedDuplicates counts cell keys discarded at Open because two
	// verified records claimed them.
	DroppedDuplicates int

	// appended accumulates the encoded bytes this handle has written via
	// Append (header + key + payload + checksum), for telemetry.
	appended int64
}

// AppendedBytes reports the total encoded bytes this handle has written
// via Append — on-disk record size, not just payload. Campaign metrics
// surface it as the artifact-append byte counter.
func (l *Log) AppendedBytes() int64 { return l.appended }

// Create creates a new log at path (failing if one already exists —
// resuming an existing log is Open's job) bound to the given spec
// fingerprint.
func Create(path string, fingerprint uint64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	return &Log{f: f, path: path, index: map[string][]byte{}}, nil
}

// Open opens an existing log, verifies its header against the expected
// spec fingerprint, and scans every record: the verified unique prefix
// becomes the index, a corrupt or torn tail is truncated away, and
// duplicated keys are dropped and compacted out (see the package
// comment for why each is handled that way). After Open returns, the
// file on disk contains exactly the records the index serves.
func Open(path string, fingerprint uint64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	l := &Log{f: f, path: path, index: map[string][]byte{}}
	if err := l.load(fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// ErrFingerprint reports a checkpoint that belongs to a different spec.
type ErrFingerprint struct {
	Path      string
	Got, Want uint64
}

// Error implements the error interface.
func (e *ErrFingerprint) Error() string {
	return fmt.Sprintf("artifact: %s was checkpointed by a different spec (fingerprint %016x, want %016x)", e.Path, e.Got, e.Want)
}

// ErrShortHeader reports a file too short to hold even the log header:
// a crash between Create and the header write/sync leaves exactly this
// shape behind. Such a file cannot contain a verified record, so unlike
// every other open failure it is safe to recreate — OpenOrCreate does,
// and CLIs surface the recovery instead of wedging on every retry.
type ErrShortHeader struct {
	Path string
	Size int64
}

// Error implements the error interface.
func (e *ErrShortHeader) Error() string {
	return fmt.Sprintf("artifact: %s: truncated header (%d bytes, no verified records)", e.Path, e.Size)
}

// OpenOrCreate is the resumable open every retry loop wants: a missing
// file is created, an existing log is opened (with the usual fingerprint
// check and tail/duplicate repairs), and a torn header — the residue of
// a crash between Create and its header sync, which can never hold a
// verified record — is recreated in place rather than returned as a
// permanent error. Every other failure (foreign file, version or
// fingerprint mismatch, I/O error) stays hard: those logs may hold real
// records and must never be silently destroyed.
func OpenOrCreate(path string, fingerprint uint64) (*Log, error) {
	if _, err := os.Stat(path); err != nil {
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("artifact: %w", err)
		}
		return Create(path, fingerprint)
	}
	l, err := Open(path, fingerprint)
	var short *ErrShortHeader
	if errors.As(err, &short) {
		if rerr := os.Remove(path); rerr != nil {
			return nil, fmt.Errorf("artifact: recreating %s: %w", path, rerr)
		}
		return Create(path, fingerprint)
	}
	return l, err
}

// load scans the log, building the index and repairing the file (tail
// truncation, duplicate compaction) as described in the package
// comment.
func (l *Log) load(fingerprint uint64) error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("artifact: %s: %w", l.path, err)
	}
	if len(data) < headerSize {
		return &ErrShortHeader{Path: l.path, Size: int64(len(data))}
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != Magic {
		return fmt.Errorf("artifact: %s: bad magic %#x", l.path, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return fmt.Errorf("artifact: %s: unsupported version %d (have %d)", l.path, v, Version)
	}
	if fp := binary.LittleEndian.Uint64(data[8:16]); fp != fingerprint {
		return &ErrFingerprint{Path: l.path, Got: fp, Want: fingerprint}
	}

	// Scan records until the data runs out or a record fails to verify.
	// goodEnd tracks the byte offset of the verified prefix.
	dupped := map[string]bool{}
	goodEnd := headerSize
	off := headerSize
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			break // torn framing
		}
		keyLen := binary.LittleEndian.Uint32(rest[0:4])
		payloadLen := binary.LittleEndian.Uint32(rest[4:8])
		if keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
			break // implausible lengths: corrupt framing
		}
		total := 8 + int(keyLen) + int(payloadLen) + 4
		if len(rest) < total {
			break // record extends past EOF: torn append
		}
		sum := binary.LittleEndian.Uint32(rest[total-4 : total])
		if crc32.Checksum(rest[:total-4], castagnoli) != sum {
			// Checksum failure mid-file: lengths inside the record are no
			// more trustworthy than its payload, so everything from here on
			// is an untrusted tail.
			break
		}
		key := string(rest[8 : 8+int(keyLen)])
		payload := append([]byte(nil), rest[8+int(keyLen):total-4]...)
		if _, seen := l.index[key]; seen || dupped[key] {
			// Second verified record for the key: ambiguous, drop both.
			if !dupped[key] {
				dupped[key] = true
				delete(l.index, key)
				l.DroppedDuplicates++
			}
		} else {
			l.index[key] = payload
			l.order = append(l.order, key)
		}
		off += total
		goodEnd = off
	}
	if goodEnd < len(data) {
		// Count the framing-plausible records inside the dropped tail so
		// the resume report reflects how much work was lost, then cut the
		// file back to the verified prefix.
		l.DroppedTail = countPlausible(data[goodEnd:])
		if err := l.f.Truncate(int64(goodEnd)); err != nil {
			return fmt.Errorf("artifact: %s: truncating corrupt tail: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("artifact: %s: %w", l.path, err)
		}
	}
	l.order = filterOrder(l.order, l.index)
	if len(dupped) > 0 {
		// Keep only uniquely-keyed records: rewrite and swap. Without the
		// compaction, the re-run cell's fresh append would itself be a
		// duplicate on the next open and the cell would never converge.
		if err := l.compact(fingerprint); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("artifact: %s: %w", l.path, err)
	}
	return nil
}

// countPlausible counts how many records could be framed out of a
// dropped tail (used only to report how much work was lost).
func countPlausible(rest []byte) int {
	n := 0
	for len(rest) >= 8 {
		keyLen := binary.LittleEndian.Uint32(rest[0:4])
		payloadLen := binary.LittleEndian.Uint32(rest[4:8])
		if keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
			break
		}
		total := 8 + int(keyLen) + int(payloadLen) + 4
		if len(rest) < total {
			break
		}
		n++
		rest = rest[total:]
	}
	if n == 0 {
		return 1
	}
	return n
}

// filterOrder drops order entries whose key is no longer indexed.
func filterOrder(order []string, index map[string][]byte) []string {
	out := order[:0]
	for _, k := range order {
		if _, ok := index[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

// compact rewrites the log with exactly the indexed records (temp file
// + fsync + rename, the same never-install-a-partial-file discipline
// the CLIs use for JSON artifacts) and swaps the open handle to it.
func (l *Log) compact(fingerprint uint64) error {
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("artifact: compacting %s: %w", l.path, err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return fail(err)
	}
	for _, key := range l.order {
		if _, err := tmp.Write(encodeRecord(key, l.index[key])); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fail(err)
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("artifact: reopening %s after compaction: %w", l.path, err)
	}
	old.Close()
	l.f = f
	return nil
}

// encodeRecord frames one record: keyLen u32 | payloadLen u32 | key |
// payload | crc32c(all previous bytes).
func encodeRecord(key string, payload []byte) []byte {
	buf := make([]byte, 8+len(key)+len(payload)+4)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[8:], key)
	copy(buf[8+len(key):], payload)
	sum := crc32.Checksum(buf[:len(buf)-4], castagnoli)
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], sum)
	return buf
}

// Get returns the verified payload recorded for key, if any. The
// returned slice is the index's copy; callers must not mutate it.
func (l *Log) Get(key string) ([]byte, bool) {
	p, ok := l.index[key]
	return p, ok
}

// Len returns the number of verified, uniquely-keyed records.
func (l *Log) Len() int { return len(l.index) }

// Keys returns the indexed cell keys in record order.
func (l *Log) Keys() []string {
	return append([]string(nil), l.order...)
}

// Append durably records key's payload: the record is written and
// fsynced before Append returns, so a SIGKILL after Append cannot lose
// the cell. Appending a key that is already indexed is a programming
// error (the campaign layer never re-runs a verified cell) and is
// rejected rather than written, because a second verified record would
// poison the key as a duplicate on the next Open.
func (l *Log) Append(key string, payload []byte) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("artifact: invalid key length %d", len(key))
	}
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("artifact: payload too large (%d bytes)", len(payload))
	}
	if _, dup := l.index[key]; dup {
		return fmt.Errorf("artifact: duplicate append for cell %q", key)
	}
	rec := encodeRecord(key, payload)
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("artifact: %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("artifact: %s: %w", l.path, err)
	}
	l.appended += int64(len(rec))
	cp := append([]byte(nil), payload...)
	l.index[key] = cp
	l.order = append(l.order, key)
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error {
	return l.f.Close()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// MergeOptions configures Merge.
type MergeOptions struct {
	// Order is the canonical key sequence of the merged log: records are
	// written in this order regardless of which source held them or in
	// what order, which is what makes the merged file deterministic (and
	// byte-identical to a sequential single-process run, whose appends
	// follow the same order). A key present in a source but absent from
	// Order is an error — it cannot belong to the grid the fingerprint
	// names.
	Order []string
	// Validate, when non-nil, checks each surviving record before
	// anything is written; the first error aborts the merge with no
	// destination file created. The campaign layer uses it to require
	// payloads that decode to the spec's exact trial count.
	Validate func(key string, payload []byte) error
	// SourceKeys, when non-nil, is the range-aware input validation: it
	// maps a source path to the exact key set that source was assigned
	// (a fleet coordinator knows which cell range each worker's log must
	// cover). A listed source holding any key outside its set aborts the
	// merge — a range log with foreign keys means a worker ran cells it
	// was never leased, and accepting them would let a confused or
	// malicious worker overwrite ranges it does not own. Sources not
	// listed are only checked against Order.
	SourceKeys map[string][]string
}

// MergeStats summarises a completed Merge.
type MergeStats struct {
	// Sources is the number of source logs read.
	Sources int
	// Records is the number of records written to the destination.
	Records int
	// Deduped counts key collisions between sources whose payloads were
	// byte-equal and therefore collapsed to one record.
	Deduped int
}

// Merge combines verified per-shard logs into one log at dstPath, which
// must not already exist. Every source must carry the same fingerprint
// (each shard of one campaign does); each source is opened with the
// usual repairs, so torn tails and intra-source duplicates are dropped
// before merging. Across sources, two records claiming one key are
// deduplicated when their payloads are byte-equal and are an error when
// they differ — differing payloads mean the sources disagree about a
// cell's samples, and guessing would silently corrupt the artifact.
// Records land in opts.Order; a failed merge never leaves a partial
// destination behind.
func Merge(dstPath string, fingerprint uint64, opts MergeOptions, srcPaths ...string) (*MergeStats, error) {
	if len(srcPaths) == 0 {
		return nil, fmt.Errorf("artifact: merge: no source logs")
	}
	inOrder := make(map[string]bool, len(opts.Order))
	for _, k := range opts.Order {
		inOrder[k] = true
	}
	st := &MergeStats{Sources: len(srcPaths)}
	merged := make(map[string][]byte)
	from := make(map[string]string) // key -> source path, for conflict errors
	for _, sp := range srcPaths {
		src, err := Open(sp, fingerprint)
		if err != nil {
			return nil, err
		}
		var allowed map[string]bool
		if keys, ok := opts.SourceKeys[sp]; ok {
			allowed = make(map[string]bool, len(keys))
			for _, k := range keys {
				allowed[k] = true
			}
		}
		for _, key := range src.Keys() {
			payload, _ := src.Get(key)
			if !inOrder[key] {
				src.Close()
				return nil, fmt.Errorf("artifact: merge: %s holds key %q which is not a cell of this grid", sp, key)
			}
			if allowed != nil && !allowed[key] {
				src.Close()
				return nil, fmt.Errorf("artifact: merge: %s holds key %q outside its assigned range", sp, key)
			}
			if prev, seen := merged[key]; seen {
				if !bytes.Equal(prev, payload) {
					src.Close()
					return nil, fmt.Errorf("artifact: merge: %s and %s disagree about cell %q", from[key], sp, key)
				}
				st.Deduped++
				continue
			}
			merged[key] = append([]byte(nil), payload...)
			from[key] = sp
		}
		src.Close()
	}
	if opts.Validate != nil {
		for _, key := range opts.Order {
			if payload, ok := merged[key]; ok {
				if err := opts.Validate(key, payload); err != nil {
					return nil, fmt.Errorf("artifact: merge: cell %q from %s: %w", key, from[key], err)
				}
			}
		}
	}
	dst, err := Create(dstPath, fingerprint)
	if err != nil {
		return nil, err
	}
	for _, key := range opts.Order {
		payload, ok := merged[key]
		if !ok {
			continue // shard not run (or cell lost); resume computes it
		}
		if err := dst.Append(key, payload); err != nil {
			dst.Close()
			os.Remove(dstPath)
			return nil, err
		}
		st.Records++
	}
	if err := dst.Close(); err != nil {
		os.Remove(dstPath)
		return nil, fmt.Errorf("artifact: %s: %w", dstPath, err)
	}
	return st, nil
}

// CheckKeys opens the log at path (running the usual header, checksum
// and duplicate repairs) and verifies it holds EXACTLY the given keys:
// every wanted key present with a verified record, no key beyond them.
// It is the integrity gate a fleet coordinator runs on a downloaded
// range artifact before trusting it — a truncated transfer loses tail
// records (missing keys), a wrong-fingerprint file fails at open, and
// a log with extra keys was computed by something other than the
// leased range. The verified key count is returned so callers can
// report what a failed transfer was missing.
func CheckKeys(path string, fingerprint uint64, keys []string) (int, error) {
	l, err := Open(path, fingerprint)
	if err != nil {
		return 0, err
	}
	defer l.Close()
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	for _, k := range l.Keys() {
		if !want[k] {
			return l.Len(), fmt.Errorf("artifact: %s holds unexpected key %q", path, k)
		}
	}
	for _, k := range keys {
		if _, ok := l.Get(k); !ok {
			return l.Len(), fmt.Errorf("artifact: %s is missing key %q (%d of %d verified)", path, k, l.Len(), len(keys))
		}
	}
	return l.Len(), nil
}
