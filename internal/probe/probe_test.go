package probe

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
)

// setup builds an attacker environment plus a minimal SF eviction set,
// a second (alt) set for PS-Alt, and a congruent sender line.
func setup(t testing.TB, seed uint64, cloud bool) (*evset.Env, []memory.VAddr, []memory.VAddr, memory.PAddr) {
	t.Helper()
	cfg := hierarchy.Scaled(4)
	if cloud {
		cfg = cfg.WithCloudNoise()
	} else {
		cfg.NoiseRate = 0
	}
	h := hierarchy.NewHost(cfg, seed)
	e := evset.NewEnv(h, seed^0x77)
	// Twice the default pool: this harness also needs a second eviction
	// set (PS-Alt) plus a sender line from the same SF set.
	cands := evset.NewCandidates(e, 2*evset.DefaultPoolSize(cfg), 0)
	ta := cands.Addrs[0]
	res := evset.BuildSF(e, evset.BinSearch{}, ta, cands.Addrs[1:], evset.DefaultOptions())
	if !res.OK {
		t.Fatal("could not build eviction set for probe test")
	}
	// Privileged ground truth: gather more congruent lines for the alt
	// set and the sender (the paper's covert experiment also has sender
	// and receiver agree on the target set).
	target := e.Main.SetOf(ta)
	inSet := map[memory.VAddr]bool{}
	for _, va := range res.Set.Lines {
		inSet[va] = true
	}
	var extra []memory.VAddr
	for _, va := range cands.Addrs {
		if va != ta && !inSet[va] && e.Main.SetOf(va) == target {
			extra = append(extra, va)
		}
	}
	if len(extra) < cfg.SFWays+1 {
		t.Fatalf("not enough spare congruent lines: %d", len(extra))
	}
	alt := extra[:cfg.SFWays]
	sender := e.Main.Translate(extra[cfg.SFWays])
	return e, res.Set.Lines, alt, sender
}

func TestParallelProbingDetectsSender(t *testing.T) {
	e, lines, _, sender := setup(t, 11, false)
	m := NewMonitor(e, Parallel, lines)
	res := RunCovertChannel(e, m, 2, sender, 10000, 200)
	t.Logf("sent=%d detected=%d thresh=%.0f probeLat(mean)=%.0f primeLat(mean)=%.0f nprobe=%d",
		res.Sent, res.Detected, m.DetectThreshold(), mean(res.ProbeLatency), mean(res.PrimeLatency), len(res.ProbeLatency))
	if res.DetectionRate < 0.85 {
		t.Fatalf("parallel probing detection rate = %.2f, want >= 0.85", res.DetectionRate)
	}
}

func TestStrategyOrderingAtShortInterval(t *testing.T) {
	// With a 2k-cycle interval the paper finds Parallel >> PS-Flush >
	// PS-Alt (Figure 6), driven by prime latency.
	rates := map[Strategy]float64{}
	for _, s := range []Strategy{Parallel, PSFlush, PSAlt} {
		e, lines, alt, sender := setup(t, 13, false)
		m := NewMonitor(e, s, lines).WithAlt(alt)
		res := RunCovertChannel(e, m, 2, sender, 2000, 300)
		rates[s] = res.DetectionRate
	}
	t.Logf("rates: parallel=%.2f ps-flush=%.2f ps-alt=%.2f", rates[Parallel], rates[PSFlush], rates[PSAlt])
	if rates[Parallel] <= rates[PSFlush] {
		t.Errorf("parallel (%.2f) should beat PS-Flush (%.2f) at short intervals", rates[Parallel], rates[PSFlush])
	}
	if rates[Parallel] < 0.5 {
		t.Errorf("parallel detection rate %.2f too low at 2k interval", rates[Parallel])
	}
}

func TestPrimeLatencyOrdering(t *testing.T) {
	// Table 5: prime latency PS-Flush > PS-Alt > Parallel; probe latency
	// of Prime+Scope slightly below Parallel.
	e, lines, alt, sender := setup(t, 17, false)
	lat := map[Strategy]float64{}
	probeLat := map[Strategy]float64{}
	for _, s := range []Strategy{Parallel, PSFlush, PSAlt} {
		m := NewMonitor(e, s, lines).WithAlt(alt)
		res := RunCovertChannel(e, m, 2, sender, 50000, 50)
		lat[s] = mean(res.PrimeLatency)
		probeLat[s] = mean(res.ProbeLatency)
	}
	t.Logf("prime: parallel=%.0f ps-flush=%.0f ps-alt=%.0f", lat[Parallel], lat[PSFlush], lat[PSAlt])
	t.Logf("probe: parallel=%.0f ps-flush=%.0f ps-alt=%.0f", probeLat[Parallel], probeLat[PSFlush], probeLat[PSAlt])
	if !(lat[PSFlush] > lat[PSAlt] && lat[PSAlt] > lat[Parallel]) {
		t.Errorf("prime latency ordering violated: %v", lat)
	}
	if probeLat[PSFlush] >= probeLat[Parallel] {
		t.Errorf("PS probe latency (%.0f) should be below parallel probe (%.0f)", probeLat[PSFlush], probeLat[Parallel])
	}
}

func TestCaptureRecordsDetections(t *testing.T) {
	e, lines, _, sender := setup(t, 19, false)
	m := NewMonitor(e, Parallel, lines)
	h := e.Host()
	// Schedule 20 sender accesses 5k cycles apart, then capture.
	base := h.Clock().Now() + 5000
	for i := 0; i < 20; i++ {
		h.Schedule(hierarchy.Event{Time: base + clock.Cycles(i*5000), Core: 2, PA: sender, Refetch: true})
	}
	tr := m.Capture(150000)
	if len(tr.Times) < 15 {
		t.Fatalf("captured %d detections, want >= 15", len(tr.Times))
	}
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] < tr.Times[i-1] {
			t.Fatal("detection timestamps not monotonic")
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
