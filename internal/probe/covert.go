package probe

import (
	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
)

// CovertResult reports one covert-channel run (§6.1).
type CovertResult struct {
	Sent          int
	Detected      int
	Detections    int // total receiver detections (incl. noise)
	PrimeLatency  []float64
	ProbeLatency  []float64
	DetectionRate float64
}

// epsilon is the detection error bound: a sender access at time t counts
// as detected if the receiver reports an access in (t, t+epsilon). The
// paper uses 500 cycles (250 ns at 2 GHz); our timing model charges the
// full rdtsc measurement overhead to every probe and a full DRAM base
// latency to the detecting (missing) probe, so one probe period plus one
// miss-probe comes to ~600 cycles. The bound is scaled accordingly; it is
// identical for all strategies, preserving Figure 6's comparisons.
const epsilon = 800

// RunCovertChannel reproduces the experiment of §6.1: a sender thread
// accesses the target SF set every `interval` cycles, `count` times,
// while the receiver monitors the set with the given strategy. A sender
// access is detected if the receiver observes an access within epsilon
// cycles after it.
//
// senderLine must map to the same SF set as the monitor's eviction set;
// the sender runs on its own core, as scheduled accesses on the virtual
// clock.
func RunCovertChannel(e *evset.Env, m *Monitor, senderCore int, senderLine memory.PAddr, interval clock.Cycles, count int) CovertResult {
	res, _, _ := runCovertDebug(e, m, senderCore, senderLine, interval, count)
	return res
}

func runCovertDebug(e *evset.Env, m *Monitor, senderCore int, senderLine memory.PAddr, interval clock.Cycles, count int) (CovertResult, []clock.Cycles, []clock.Cycles) {
	h := e.Host()
	clk := h.Clock()

	var sendTimes []clock.Cycles
	base := clk.Now() + interval
	for i := 0; i < count; i++ {
		t := base + clock.Cycles(i)*interval
		h.Schedule(hierarchy.Event{
			Time:    t,
			Core:    senderCore,
			PA:      senderLine,
			Refetch: true,
			Done:    func(at clock.Cycles) { sendTimes = append(sendTimes, at) },
		})
	}

	var detections []clock.Cycles
	m.Prime()
	end := base + clock.Cycles(count+2)*interval
	for clk.Now() < end {
		if m.Probe() {
			detections = append(detections, clk.Now())
			m.Prime()
		}
	}

	res := CovertResult{
		Sent:         len(sendTimes),
		Detections:   len(detections),
		PrimeLatency: append([]float64(nil), m.PrimeLat...),
		ProbeLatency: append([]float64(nil), m.ProbeLat...),
	}
	di := 0
	for _, st := range sendTimes {
		// Advance to the first detection at or after st.
		for di < len(detections) && detections[di] <= st {
			di++
		}
		if di < len(detections) && detections[di] <= st+epsilon {
			res.Detected++
			di++
		}
	}
	if res.Sent > 0 {
		res.DetectionRate = float64(res.Detected) / float64(res.Sent)
	}
	return res, sendTimes, detections
}
