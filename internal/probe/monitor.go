// Package probe implements Prime+Probe monitoring of one LLC/SF set: the
// two Prime+Scope strategies evaluated in the paper (PS-Flush and PS-Alt,
// §6.1) and the paper's contribution, Parallel Probing. It also provides
// the access-trace capture used by target-set identification (§6.2) and
// the covert-channel harness that reproduces Table 5 and Figure 6.
package probe

import (
	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/memory"
	"repro/internal/stats"
)

// Strategy selects a monitoring technique.
type Strategy int

// Monitoring strategies (§6.1).
const (
	// Parallel is the paper's Parallel Probing: probe all W lines of a
	// minimal eviction set with overlapped accesses. The prime needs no
	// replacement-state preparation, so it is short and policy-agnostic.
	Parallel Strategy = iota
	// PSFlush is Prime+Scope priming by load + clflush + sequential
	// reload, keeping a single eviction candidate (EVC) to probe.
	PSFlush
	// PSAlt is Prime+Scope priming by an alternating pointer-chase over
	// two eviction sets for the same cache set.
	PSAlt
)

// String names the strategy as in Table 5.
func (s Strategy) String() string {
	switch s {
	case Parallel:
		return "Parallel"
	case PSFlush:
		return "PS-Flush"
	case PSAlt:
		return "PS-Alt"
	default:
		return "unknown"
	}
}

// Monitor observes one SF set for external accesses.
type Monitor struct {
	env   *evset.Env
	strat Strategy
	lines []memory.VAddr
	alt   []memory.VAddr // PS-Alt's second eviction set
	flip  bool

	// detectThresh classifies a probe latency as "external access seen".
	detectThresh float64

	// Latency samples (measured cycles), for Table 5. Outliers above
	// outlierCap are excluded, as in the paper's methodology.
	PrimeLat []float64
	ProbeLat []float64
}

// outlierCap mirrors the paper's exclusion of samples above 20,000 cycles
// (interrupts / context switches).
const outlierCap = 20000

// NewMonitor builds a monitor from a minimal SF eviction set. PS-Alt
// requires a second eviction set for the same SF set via WithAlt.
func NewMonitor(e *evset.Env, strat Strategy, lines []memory.VAddr) *Monitor {
	m := &Monitor{env: e, strat: strat, lines: append([]memory.VAddr(nil), lines...)}
	m.Prime()
	m.calibrate()
	return m
}

// WithAlt supplies the second eviction set used by PS-Alt.
func (m *Monitor) WithAlt(alt []memory.VAddr) *Monitor {
	m.alt = append([]memory.VAddr(nil), alt...)
	return m
}

// calibrate samples quiescent probe latencies and places the detection
// threshold above their bulk, below the one-miss regime.
func (m *Monitor) calibrate() {
	var samples []float64
	for i := 0; i < 32; i++ {
		lat := m.probeLatency()
		samples = append(samples, float64(lat))
		m.Prime()
	}
	med := stats.Median(samples)
	m.detectThresh = med + 22
	m.PrimeLat = m.PrimeLat[:0]
	m.ProbeLat = m.ProbeLat[:0]
}

// Prime prepares the monitored set for the next detection and records the
// prime latency.
func (m *Monitor) Prime() clock.Cycles {
	var d clock.Cycles
	switch m.strat {
	case Parallel:
		d = m.primeParallel()
	case PSFlush:
		d = m.primePSFlush()
	case PSAlt:
		d = m.primePSAlt()
	}
	if f := float64(d); f < outlierCap {
		m.PrimeLat = append(m.PrimeLat, f)
	}
	return d
}

// primeParallel traverses the eviction set with overlapped accesses,
// refetching each line so its SF entry is (re)allocated and the set ends
// wholly owned by the attacker, in traversal order. No replacement state
// needs preparing beyond that — the probe tolerates any victim-choice
// policy (§6.1). Two rounds make the state independent of the previous
// probe's outcome.
func (m *Monitor) primeParallel() clock.Cycles {
	a := m.env.Main
	var total clock.Cycles
	for round := 0; round < 2; round++ {
		for _, va := range m.lines {
			a.DropL1(va)
			a.EvictPrivateQuiet(va)
		}
		t, _ := a.AccessParallel(m.lines)
		total += t
	}
	return total
}

// primePSFlush loads the set, flushes it, and reloads it sequentially so
// the first line becomes the eviction candidate (EVC) with a precisely
// known replacement state — at the cost of a long prime.
func (m *Monitor) primePSFlush() clock.Cycles {
	a := m.env.Main
	t1, _ := a.AccessParallel(m.lines)
	t2 := a.FlushAll(m.lines)
	t3 := a.AccessSeqNoChain(m.lines)
	return t1 + t2 + t3
}

// primePSAlt performs one leg of the alternating pointer-chase over the
// two eviction sets: sequentially chasing the other set displaces this
// set's entries in order, leaving the chased set's first line as the EVC.
func (m *Monitor) primePSAlt() clock.Cycles {
	a := m.env.Main
	set := m.lines
	if m.flip && len(m.alt) > 0 {
		set = m.alt
	}
	m.flip = !m.flip
	for _, va := range set {
		a.EvictPrivateQuiet(va)
	}
	return a.AccessSeqNoChain(set)
}

// probeLatency runs one probe and returns its measured latency.
func (m *Monitor) probeLatency() clock.Cycles {
	a := m.env.Main
	switch m.strat {
	case Parallel:
		t, _ := a.AccessParallel(m.lines)
		lat := float64(t) + m.env.Host().Config().Lat.Measure
		a.Host().Clock().Advance(clock.Cycles(m.env.Host().Config().Lat.Measure))
		return clock.Cycles(lat)
	default:
		// Prime+Scope probes only the EVC (the first line), which stays
		// in the L1 while untouched — the minimal-latency probe.
		lat, _ := a.TimedAccess(m.scopeLine())
		return lat
	}
}

func (m *Monitor) scopeLine() memory.VAddr {
	if m.strat == PSAlt && !m.flip && len(m.alt) > 0 {
		// flip was toggled by the last prime; the chased set's head is
		// the current scope line.
		return m.alt[0]
	}
	return m.lines[0]
}

// Probe checks the monitored set once, recording the probe latency, and
// reports whether an external access was detected since the last prime.
func (m *Monitor) Probe() bool {
	lat := float64(m.probeLatency())
	if lat < outlierCap {
		m.ProbeLat = append(m.ProbeLat, lat)
	}
	return lat > m.detectThresh
}

// DetectThreshold returns the calibrated detection threshold.
func (m *Monitor) DetectThreshold() float64 { return m.detectThresh }

// Trace is a sequence of detection timestamps (virtual cycles).
type Trace struct {
	Start, End clock.Cycles
	Times      []clock.Cycles
}

// Duration returns the trace's covered window.
func (t *Trace) Duration() clock.Cycles { return t.End - t.Start }

// Capture monitors the set for the given duration, re-priming after every
// detection (§2.1), and returns the detection timestamps.
func (m *Monitor) Capture(duration clock.Cycles) *Trace {
	clk := m.env.Host().Clock()
	tr := &Trace{Start: clk.Now()}
	end := tr.Start + duration
	m.Prime()
	for clk.Now() < end {
		if m.Probe() {
			tr.Times = append(tr.Times, clk.Now())
			m.Prime()
		}
	}
	tr.End = clk.Now()
	return tr
}
