package probe

import (
	"testing"

	"repro/internal/hierarchy"
)

func TestDebugSenderEviction(t *testing.T) {
	e, lines, _, sender := setup(t, 11, false)
	h := e.Host()
	m := NewMonitor(e, Parallel, lines)
	m.Prime()

	// State after prime.
	set := h.SetOf(sender)
	t.Logf("SF occupancy=%d (ways=%d)", h.SFOccupancy(set), h.Config().SFWays)
	priv := 0
	for _, va := range lines {
		if h.InPrivate(0, e.Main.Translate(va)) {
			priv++
		}
	}
	t.Logf("lines private=%d/%d", priv, len(lines))

	// Sender access via the scheduler.
	h.Schedule(hierarchy.Event{Time: h.Clock().Now() + 10, Core: 2, PA: sender, Refetch: true})
	e.Main.Idle(100)

	inv := 0
	for _, va := range lines {
		pa := e.Main.Translate(va)
		if !h.InSF(pa) || !h.InPrivate(0, pa) {
			inv++
			t.Logf("line %#x: inSF=%v inPriv=%v", va, h.InSF(pa), h.InPrivate(0, pa))
		}
	}
	t.Logf("lines invalidated=%d senderInSF=%v", inv, h.InSF(sender))

	lat := m.probeLatency()
	t.Logf("probe lat=%d thresh=%.0f", lat, m.DetectThreshold())
}
