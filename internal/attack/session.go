// Package attack assembles the end-to-end, cross-tenant attack of §7:
// Step 1 builds SF eviction sets at the victim's page offset, Step 2
// identifies the target set with the PSD scanner while triggering victim
// executions, and Step 3 monitors the target set with Parallel Probing
// and extracts the ECDSA nonce bits with a random-forest boundary
// classifier. Ground truth flows from the victim package, so every run
// scores itself the way the paper does (extracted-bit fraction and bit
// error rate, §7.3).
package attack

import (
	"math/big"

	"repro/internal/clock"
	"repro/internal/ec2m"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/victim"
	"repro/internal/xrand"
)

// Core assignments on the simulated host.
const (
	coreAttacker = 0
	coreHelper   = 1
	coreVictim   = 2
)

// Session is one co-located attacker/victim pair on one host (Step 0,
// co-location, is assumed complete as in the paper's threat model §3).
type Session struct {
	H   *hierarchy.Host
	Env *evset.Env
	V   *victim.Victim
	Rng *xrand.Rand

	// lastRequestEnd tracks victim request scheduling so the victim is
	// kept busy whenever the attacker needs it executing.
	lastRequestEnd clock.Cycles
	// Records accumulates the ground truth of every triggered signing.
	Records []*victim.SignRecord

	// Trace is the owning trial's span track when the run is traced
	// (nil otherwise). Attack steps emit cat="probe" sub-spans through
	// it; like all instrumentation it reads clocks already being read
	// and never touches a rng stream (determinism clause 10).
	Trace *obs.TrialTrace
}

// NewSession builds a host from the config and co-locates an attacker
// environment and a victim using the given curve.
func NewSession(cfg hierarchy.Config, curve *ec2m.Curve, seed uint64) *Session {
	return NewSessionOn(hierarchy.NewHost(cfg, seed), curve, seed)
}

// NewSessionOn co-locates an attacker environment and a victim on an
// existing host — typically one recycled through the experiment engine's
// host pools and already Reset to this trial's seed. The host must be
// freshly built or freshly reset: the session assumes empty caches and a
// clock at zero.
func NewSessionOn(h *hierarchy.Host, curve *ec2m.Curve, seed uint64) *Session {
	env := evset.NewEnv(h, seed^0xa77ac)
	v := victim.New(h, coreVictim, curve, seed^0x71c71)
	return &Session{H: h, Env: env, V: v, Rng: xrand.New(seed ^ 0x5e55)}
}

// BuildEvictionSets runs Step 1 for the PageOffset scenario: eviction
// sets for every SF set reachable from the victim's target page offset.
func (s *Session) BuildEvictionSets(opt evset.BulkOptions) evset.BulkResult {
	cands := evset.NewCandidates(s.Env, evset.DefaultPoolSize(s.H.Config()), s.V.TargetOffset())
	return evset.BuildPageOffset(s.Env, cands, opt)
}

// KeepVictimBusy schedules signing requests so the victim is executing
// through at least the given horizon.
func (s *Session) KeepVictimBusy(until clock.Cycles) {
	now := s.H.Clock().Now()
	t := s.lastRequestEnd
	if t < now {
		t = now + 1000
	}
	for t < until {
		rec := s.V.TriggerSign(t, big.NewInt(0x5eed))
		s.Records = append(s.Records, rec)
		t = rec.End + clock.Cycles(s.Rng.Float64()*20000)
	}
	s.lastRequestEnd = t
}

// TriggerOneSigning schedules a single signing request beginning shortly
// after the current time and returns its ground truth.
func (s *Session) TriggerOneSigning() *victim.SignRecord {
	at := s.H.Clock().Now() + 2000
	if at < s.lastRequestEnd {
		at = s.lastRequestEnd + 2000
	}
	rec := s.V.TriggerSign(at, big.NewInt(0x5eed))
	s.Records = append(s.Records, rec)
	s.lastRequestEnd = rec.End
	return rec
}

// MonitorSet builds a Parallel Probing monitor for one eviction set.
func (s *Session) MonitorSet(set *evset.EvictionSet) *probe.Monitor {
	return probe.NewMonitor(s.Env, probe.Parallel, set.Lines)
}

// CaptureWhileBusy captures a trace of the given duration from the
// monitor while keeping the victim busy.
func (s *Session) CaptureWhileBusy(m *probe.Monitor, duration clock.Cycles) *probe.Trace {
	s.KeepVictimBusy(s.H.Clock().Now() + duration + s.V.RequestDuration())
	return m.Capture(duration)
}

// RecordOverlapping returns the signing record whose ladder overlaps the
// trace window (nil if none) — privileged ground truth for scoring.
func (s *Session) RecordOverlapping(tr *probe.Trace) *victim.SignRecord {
	var best *victim.SignRecord
	bestOverlap := clock.Cycles(0)
	for _, rec := range s.Records {
		if len(rec.IterStarts) == 0 {
			continue
		}
		lo := rec.IterStarts[0]
		hi := rec.IterStarts[len(rec.IterStarts)-1]
		if hi < tr.Start || lo > tr.End {
			continue
		}
		a, b := maxC(lo, tr.Start), minC(hi, tr.End)
		if b-a > bestOverlap {
			bestOverlap = b - a
			best = rec
		}
	}
	return best
}

func maxC(a, b clock.Cycles) clock.Cycles {
	if a > b {
		return a
	}
	return b
}

func minC(a, b clock.Cycles) clock.Cycles {
	if a < b {
		return a
	}
	return b
}
