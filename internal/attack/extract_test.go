package attack

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/probe"
	"repro/internal/victim"
	"repro/internal/xrand"
)

// synthRecord fabricates ground truth with the given bits and a fixed
// iteration length, plus the matching ideal detection trace (boundary per
// iteration, midpoint for zero bits).
func synthRecord(bits []uint, iter float64, jitter float64, rng *xrand.Rand) (*victim.SignRecord, *probe.Trace) {
	rec := &victim.SignRecord{Bits: bits}
	tr := &probe.Trace{Start: 10_000}
	t := 20_000.0
	for _, b := range bits {
		start := clock.Cycles(t)
		rec.IterStarts = append(rec.IterStarts, start)
		tr.Times = append(tr.Times, start+clock.Cycles(rng.Norm(0, jitter)))
		if b == 0 {
			tr.Times = append(tr.Times, start+clock.Cycles(iter/2+rng.Norm(0, jitter)))
		}
		t += iter
	}
	tr.End = clock.Cycles(t + 20_000)
	return rec, tr
}

func trainOnSynthetic(t *testing.T, iter float64) *Extractor {
	t.Helper()
	rng := xrand.New(1)
	var traces []*probe.Trace
	var truth []*victim.SignRecord
	for i := 0; i < 6; i++ {
		bits := make([]uint, 80)
		for j := range bits {
			if rng.Bool() {
				bits[j] = 1
			}
		}
		rec, tr := synthRecord(bits, iter, 80, rng)
		traces = append(traces, tr)
		truth = append(truth, rec)
	}
	return TrainExtractor(iter, traces, truth, rng)
}

func TestExtractorPerfectTrace(t *testing.T) {
	const iter = 9700
	ex := trainOnSynthetic(t, iter)
	rng := xrand.New(2)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1, 0, 1}
	rec, tr := synthRecord(bits, iter, 60, rng)
	got := ex.Extract(tr)
	sc := ScoreExtraction(got, rec, iter)
	if sc.Fraction() < 0.8 {
		t.Fatalf("recovered %.2f of a clean trace, want >= 0.8", sc.Fraction())
	}
	if sc.ErrorRate() > 0.05 {
		t.Fatalf("error rate %.3f on a clean trace", sc.ErrorRate())
	}
}

func TestExtractorRobustToNoiseDetections(t *testing.T) {
	const iter = 9700
	ex := trainOnSynthetic(t, iter)
	rng := xrand.New(3)
	bits := make([]uint, 60)
	for j := range bits {
		if rng.Bool() {
			bits[j] = 1
		}
	}
	rec, tr := synthRecord(bits, iter, 80, rng)
	// Inject uniform noise detections (~1 per 4 iterations).
	span := float64(tr.End - tr.Start)
	for i := 0; i < len(bits)/4; i++ {
		tr.Times = append(tr.Times, tr.Start+clock.Cycles(rng.Float64()*span))
	}
	sortCycles(tr.Times)
	got := ex.Extract(tr)
	sc := ScoreExtraction(got, rec, iter)
	if sc.Fraction() < 0.6 {
		t.Fatalf("recovered only %.2f under noise", sc.Fraction())
	}
	if sc.ErrorRate() > 0.25 {
		t.Fatalf("error rate %.3f under noise", sc.ErrorRate())
	}
}

func sortCycles(ts []clock.Cycles) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestScoreExtractionMatching(t *testing.T) {
	rec := &victim.SignRecord{
		Bits:       []uint{1, 0, 1},
		IterStarts: []clock.Cycles{10_000, 20_000, 30_000},
	}
	bits := []ExtractedBit{
		{At: 10_100, Bit: 1}, // correct
		{At: 20_200, Bit: 1}, // wrong (truth 0)
		{At: 90_000, Bit: 0}, // unmatched
	}
	sc := ScoreExtraction(bits, rec, 10_000)
	if sc.Total != 3 || sc.Recovered != 2 || sc.Wrong != 1 {
		t.Fatalf("score = %+v", sc)
	}
	if sc.Fraction() != 2.0/3 {
		t.Fatalf("fraction = %v", sc.Fraction())
	}
	if sc.ErrorRate() != 0.5 {
		t.Fatalf("error rate = %v", sc.ErrorRate())
	}
}

func TestBiasedOrEmpty(t *testing.T) {
	mk := func(bits ...uint) []ExtractedBit {
		out := make([]ExtractedBit, len(bits))
		for i, b := range bits {
			out[i] = ExtractedBit{Bit: b}
		}
		return out
	}
	if !BiasedOrEmpty(mk(1, 0, 1), 8) {
		t.Fatal("too-few bits must be rejected")
	}
	if !BiasedOrEmpty(mk(1, 1, 1, 1, 1, 1, 1, 1, 1, 1), 8) {
		t.Fatal("all-ones must be rejected")
	}
	if BiasedOrEmpty(mk(1, 0, 1, 0, 1, 1, 0, 0, 1, 0), 8) {
		t.Fatal("balanced extraction rejected")
	}
}
