package attack

import (
	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/xrand"
)

// ScanResult reports Step 2 (target-set identification, §7.2).
type ScanResult struct {
	Found bool
	// Set is the eviction set identified as monitoring the target.
	Set *evset.EvictionSet
	// Correct is privileged ground truth: the identified set really maps
	// to the victim's target SF set.
	Correct bool
	// Duration is the scan's virtual time (eviction-set construction
	// excluded, as in the paper's Table 6 accounting).
	Duration clock.Cycles
	// Scanned counts set-traces captured (for the sets/s rate).
	Scanned int
}

// ScanOptions configures the scan.
type ScanOptions struct {
	// Timeout bounds the scan (60 s PageOffset, 900 s WholeSys in §7.2).
	Timeout clock.Cycles
	// VerifyByExtraction enables the false-positive rejection by trial
	// bit extraction (used for WholeSys in the paper).
	VerifyByExtraction bool
	// Extractor is required when VerifyByExtraction is set.
	Extractor *Extractor
	// TraceCycles overrides the per-set capture window (default: the
	// scanner's params).
	TraceCycles clock.Cycles
}

// ScanForTarget runs Step 2: round-robin over the eviction sets,
// capturing one trace per set per pass while the victim handles
// requests, classifying each trace with the PSD scanner, until the
// target is identified or the timeout expires. Sets are visited in
// random order each pass (the attacker has no better prior).
func (s *Session) ScanForTarget(sets []*evset.EvictionSet, scanner *psd.Scanner, opt ScanOptions) ScanResult {
	start := s.H.Clock().Now()
	deadline := start + opt.Timeout
	traceLen := opt.TraceCycles
	if traceLen == 0 {
		traceLen = scanner.Params.TraceCycles
	}
	res := ScanResult{}
	rng := xrand.New(uint64(start) ^ 0x5ca9)

	order := rng.Perm(len(sets))
	for s.H.Clock().Now() < deadline {
		for _, idx := range order {
			if s.H.Clock().Now() >= deadline {
				break
			}
			set := sets[idx]
			m := probe.NewMonitor(s.Env, probe.Parallel, set.Lines)
			tr := s.CaptureWhileBusy(m, traceLen)
			res.Scanned++
			if !scanner.Classify(tr) {
				continue
			}
			if opt.VerifyByExtraction && opt.Extractor != nil {
				// Reject false positives (e.g. MAdd/MDouble sets) whose
				// traces do not yield plausible nonce bits (§7.2).
				long := s.CaptureWhileBusy(m, s.V.RequestDuration())
				bits := opt.Extractor.Extract(long)
				if BiasedOrEmpty(bits, 8) {
					continue
				}
			}
			res.Found = true
			res.Set = set
			res.Correct = s.Env.Main.SetOf(set.Ta) == s.V.TargetSet()
			res.Duration = s.H.Clock().Now() - start
			return res
		}
		rng.ShuffleInts(order)
	}
	res.Duration = s.H.Clock().Now() - start
	return res
}

// RatePerSecond returns the scan rate in sets per (virtual) second.
func (r ScanResult) RatePerSecond() float64 {
	secs := r.Duration.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Scanned) / secs
}
