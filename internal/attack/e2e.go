package attack

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/evset"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/stats"
)

// E2EOptions configures the end-to-end run (§7.3 protocol).
type E2EOptions struct {
	// Bulk configures Step 1 (eviction-set construction).
	Bulk evset.BulkOptions
	// ScanTimeout bounds Step 2 (60 s for PageOffset in the paper).
	ScanTimeout clock.Cycles
	// Traces is the number of signings monitored in Step 3 (paper: 10).
	Traces int
}

// DefaultE2EOptions returns the paper's PageOffset protocol.
func DefaultE2EOptions() E2EOptions {
	return E2EOptions{
		Bulk: evset.BulkOptions{
			Algo:   evset.BinSearch{},
			PerSet: evset.FilteredOptions(),
		},
		ScanTimeout: clock.FromMillis(60_000),
		Traces:      10,
	}
}

// E2EResult reports one end-to-end attack (§7.3).
type E2EResult struct {
	// Step 1.
	SetsBuilt int
	BuildTime clock.Cycles
	// Step 2.
	Scan ScanResult
	// Step 3: per-signature extraction fractions and error rates.
	Fractions  []float64
	ErrorRates []float64
	// Exact bit accounting across all monitored traces: ladder iterations
	// observed, bits recovered, and recovered bits that were wrong.
	BitsTotal     int
	BitsRecovered int
	BitsWrong     int
	// Totals.
	TotalTime clock.Cycles
	// SignalFound is the paper's per-host success notion: a potential
	// target set was identified and produced a signal.
	SignalFound bool
}

// MedianFraction returns the median of the per-trace extracted-bit
// fractions (the paper's headline number: 81%).
func (r E2EResult) MedianFraction() float64 { return stats.Median(r.Fractions) }

// MeanFraction returns the mean extracted-bit fraction (paper: 68%).
func (r E2EResult) MeanFraction() float64 { return stats.Mean(r.Fractions) }

// MeanErrorRate returns the mean bit error rate (paper: 3%).
func (r E2EResult) MeanErrorRate() float64 { return stats.Mean(r.ErrorRates) }

// RunEndToEnd executes Steps 1–3 against this session's victim using
// pre-trained classifiers: build eviction sets at the victim's page
// offset, identify the target SF set with the PSD scanner while
// triggering signings, then monitor `Traces` further signings and
// extract their nonce bits.
func (s *Session) RunEndToEnd(scanner *psd.Scanner, ex *Extractor, opt E2EOptions) E2EResult {
	t0 := s.H.Clock().Now()
	res := E2EResult{}

	// Step 1: eviction sets for all SF sets at the target page offset.
	bulk := s.BuildEvictionSets(opt.Bulk)
	res.SetsBuilt = len(bulk.Sets)
	res.BuildTime = bulk.Duration
	if len(bulk.Sets) == 0 {
		res.TotalTime = s.H.Clock().Now() - t0
		return res
	}

	// Step 2: find the target set.
	res.Scan = s.ScanForTarget(bulk.Sets, scanner, ScanOptions{Timeout: opt.ScanTimeout})
	if !res.Scan.Found {
		res.TotalTime = s.H.Clock().Now() - t0
		return res
	}
	res.SignalFound = true

	// Step 3: monitor `Traces` signings and extract the nonce bits.
	// On traced runs each signing emits a cat="probe" span nested (on
	// the same simulated timeline) inside the scenario's extract phase.
	m := probe.NewMonitor(s.Env, probe.Parallel, res.Scan.Set.Lines)
	traced := s.Trace.Enabled()
	for i := 0; i < opt.Traces; i++ {
		sigStart := s.H.Clock().Now()
		var w0 time.Time
		if traced {
			w0 = time.Now()
		}
		rec := s.TriggerOneSigning()
		// Capture from just before the request through its end.
		dur := rec.End - s.H.Clock().Now() + 50_000
		tr := m.Capture(dur)
		bits := ex.Extract(tr)
		sc := ScoreExtraction(bits, rec, ex.IterCycles)
		if traced {
			s.Trace.Span(fmt.Sprintf("signing %d", i), "probe",
				sigStart, s.H.Clock().Now()-sigStart, time.Since(w0), sc.Recovered > 0)
		}
		res.Fractions = append(res.Fractions, sc.Fraction())
		res.ErrorRates = append(res.ErrorRates, sc.ErrorRate())
		res.BitsTotal += sc.Total
		res.BitsRecovered += sc.Recovered
		res.BitsWrong += sc.Wrong
	}
	res.TotalTime = s.H.Clock().Now() - t0
	return res
}
