package attack

import (
	"sort"

	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/psd"
	"repro/internal/victim"
	"repro/internal/xrand"
)

// TrainingData holds labeled traces for the two classifiers.
type TrainingData struct {
	Target    []*probe.Trace
	NonTarget []*probe.Trace
	// Labeled pairs for the boundary forest.
	Traces []*probe.Trace
	Truth  []*victim.SignRecord
}

// trainingPool lazily allocates a candidate pool at the victim's target
// offset and resolves congruent lines by privileged inspection — the
// training phase runs attacker and victim in one container where the
// attacker can validate sets against the mapped victim binary (§7.2), so
// ground-truth set resolution is the faithful model.
type trainingPool struct {
	cands *evset.Candidates
	bySet map[hierarchy.SetID][]memory.VAddr
}

func (s *Session) newTrainingPool() *trainingPool {
	cands := evset.NewCandidates(s.Env, 2*evset.DefaultPoolSize(s.H.Config()), s.V.TargetOffset())
	tp := &trainingPool{cands: cands, bySet: make(map[hierarchy.SetID][]memory.VAddr)}
	for _, va := range cands.Addrs {
		id := s.Env.Main.SetOf(va)
		tp.bySet[id] = append(tp.bySet[id], va)
	}
	return tp
}

// linesFor returns `ways` lines congruent to the set, or nil.
func (tp *trainingPool) linesFor(id hierarchy.SetID, ways int) []memory.VAddr {
	vas := tp.bySet[id]
	if len(vas) < ways {
		return nil
	}
	return vas[:ways]
}

// CollectTrainingData gathers labeled traces from this session by
// monitoring the true target set and a sample of non-target sets while
// the victim signs.
func (s *Session) CollectTrainingData(p psd.Params, targetTraces, nonTargetTraces int) TrainingData {
	var td TrainingData
	tp := s.newTrainingPool()
	ways := s.H.Config().SFWays

	targetLines := tp.linesFor(s.V.TargetSet(), ways)
	if targetLines != nil {
		m := probe.NewMonitor(s.Env, probe.Parallel, targetLines)
		for tries := 0; len(td.Target) < targetTraces && tries < 6*targetTraces; tries++ {
			tr := s.CaptureWhileBusy(m, p.TraceCycles)
			// Keep only traces the ladder actually overlapped: a trace
			// captured while the victim was between ladder executions
			// carries no signal and would poison the positive class
			// (the de-synchronization problem, §7.2).
			rec := s.RecordOverlapping(tr)
			if rec == nil || !ladderCovers(rec, tr, 0.5) {
				continue
			}
			td.Target = append(td.Target, tr)
			td.Traces = append(td.Traces, tr)
			td.Truth = append(td.Truth, rec)
		}
		// Longer traces for the boundary forest.
		for i := 0; i < 3; i++ {
			tr := s.CaptureWhileBusy(m, s.V.RequestDuration())
			td.Traces = append(td.Traces, tr)
			td.Truth = append(td.Truth, s.RecordOverlapping(tr))
		}
	}

	// Non-target sets: the victim's hot lines first (the MAdd/MDouble
	// near-false-positives of §7.2), then arbitrary other sets — visited
	// in sorted order, never map order: training-set selection feeds the
	// classifiers, so a nondeterministic pick here would break the
	// byte-identical-report contract of every downstream harness.
	var nonTargetIDs []hierarchy.SetID
	for _, hl := range s.V.Layout.HotLines {
		nonTargetIDs = append(nonTargetIDs, s.V.Agent().SetOf(hl))
	}
	poolIDs := make([]hierarchy.SetID, 0, len(tp.bySet))
	for id := range tp.bySet {
		poolIDs = append(poolIDs, id)
	}
	sort.Slice(poolIDs, func(a, b int) bool {
		if poolIDs[a].Slice != poolIDs[b].Slice {
			return poolIDs[a].Slice < poolIDs[b].Slice
		}
		return poolIDs[a].Index < poolIDs[b].Index
	})
	for _, id := range poolIDs {
		if id != s.V.TargetSet() {
			nonTargetIDs = append(nonTargetIDs, id)
		}
		if len(nonTargetIDs) >= 4*nonTargetTraces {
			break
		}
	}
	for _, id := range nonTargetIDs {
		if len(td.NonTarget) >= nonTargetTraces {
			break
		}
		if id == s.V.TargetSet() {
			continue
		}
		lines := tp.linesFor(id, ways)
		if lines == nil {
			continue
		}
		m := probe.NewMonitor(s.Env, probe.Parallel, lines)
		td.NonTarget = append(td.NonTarget, s.CaptureWhileBusy(m, p.TraceCycles))
	}
	return td
}

// ladderCovers reports whether the record's ladder overlaps at least
// frac of the trace window.
func ladderCovers(rec *victim.SignRecord, tr *probe.Trace, frac float64) bool {
	if len(rec.IterStarts) == 0 {
		return false
	}
	lo := maxC(rec.IterStarts[0], tr.Start)
	hi := minC(rec.IterStarts[len(rec.IterStarts)-1], tr.End)
	if hi <= lo {
		return false
	}
	return float64(hi-lo) >= frac*float64(tr.End-tr.Start)
}

// TrainingStats summarizes classifier training (paper: 1.02% FN, 0.01%
// FP on the validation split, §7.2).
type TrainingStats struct {
	TargetTraces    int
	NonTargetTraces int
	FalseNegative   float64
	FalsePositive   float64
}

// TrainAll trains both classifiers from this session's data and returns
// them with the PSD validation metrics. When the training pool cannot
// assemble labelled traces for both classes — on an undefended host it
// always can, but an index-scrambling defense (randomize, scatter)
// scatters the page-offset pool so thinly that no monitored set
// resolves — it returns nil classifiers so the caller can fail its
// training step instead of panicking inside the classifier.
func (s *Session) TrainAll(p psd.Params, rng *xrand.Rand) (*psd.Scanner, *Extractor, TrainingStats) {
	td := s.CollectTrainingData(p, 12, 24)
	if len(td.Target) == 0 || len(td.NonTarget) == 0 {
		return nil, nil, TrainingStats{TargetTraces: len(td.Target), NonTargetTraces: len(td.NonTarget)}
	}
	scanner, m := psd.TrainScanner(p, td.Target, td.NonTarget, rng)
	ex := TrainExtractor(s.V.IterCycles, td.Traces, td.Truth, rng)
	return scanner, ex, TrainingStats{
		TargetTraces:    len(td.Target),
		NonTargetTraces: len(td.NonTarget),
		FalseNegative:   m.FalseNegativeRate(),
		FalsePositive:   m.FalsePositiveRate(),
	}
}
