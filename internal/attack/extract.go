package attack

import (
	"repro/internal/classify"
	"repro/internal/clock"
	"repro/internal/probe"
	"repro/internal/victim"
	"repro/internal/xrand"
)

// Extractor turns an access trace of the target SF set into nonce bits
// (§7.3): a random-forest classifier labels detections that correspond
// to iteration boundaries; boundary pairs 8k–12k cycles apart delimit
// iterations; an extra access near an iteration's midpoint marks a zero
// bit (instrumented layout, §7.1), otherwise the bit is one.
type Extractor struct {
	forest *classify.Forest
	// IterCycles is the expected ladder iteration duration.
	IterCycles float64
}

// ExtractedBit is one recovered nonce bit, stamped with its iteration's
// boundary time.
type ExtractedBit struct {
	At  clock.Cycles
	Bit uint
}

// boundaryTolerance is how close (in cycles) a detection must be to a
// true iteration start to be labeled a boundary during training.
const boundaryTolerance = 1200

// detectionFeatures builds the per-detection feature vector: gaps to the
// two nearest detections on each side, normalized by the iteration
// duration and clamped — boundaries sit on the ~1-iteration comb while
// midpoint and noise accesses break it.
func detectionFeatures(times []clock.Cycles, i int, iter float64) []float64 {
	gap := func(j, k int) float64 {
		if j < 0 || k < 0 || j >= len(times) || k >= len(times) {
			return 3
		}
		g := float64(times[k]-times[j]) / iter
		if g > 3 {
			g = 3
		}
		return g
	}
	return []float64{
		gap(i-1, i),
		gap(i, i+1),
		gap(i-2, i),
		gap(i, i+2),
		gap(i-1, i+1),
	}
}

// TrainExtractor fits the boundary forest on traces with ground truth:
// each detection is labeled by whether it falls within the tolerance of
// a true iteration start.
func TrainExtractor(iterCycles float64, traces []*probe.Trace, truth []*victim.SignRecord, rng *xrand.Rand) *Extractor {
	var x [][]float64
	var y []int
	for ti, tr := range traces {
		rec := truth[ti]
		if rec == nil {
			continue
		}
		for i := range tr.Times {
			x = append(x, detectionFeatures(tr.Times, i, iterCycles))
			y = append(y, boundaryLabel(tr.Times[i], rec))
		}
	}
	f := classify.NewForest(classify.ForestConfig{Trees: 25, MaxDepth: 10})
	f.Train(x, y, rng)
	return &Extractor{forest: f, IterCycles: iterCycles}
}

func boundaryLabel(t clock.Cycles, rec *victim.SignRecord) int {
	for _, s := range rec.IterStarts {
		d := int64(t) - int64(s)
		if d < 0 {
			d = -d
		}
		if d <= boundaryTolerance {
			return 1
		}
	}
	return 0
}

// Extract recovers nonce bits from a trace. Boundary predictions are
// filtered to pairs 8k–12k cycles apart (the paper's duration filter for
// one iteration on these hosts); within each accepted iteration, a
// detection near the midpoint marks bit 0.
func (e *Extractor) Extract(tr *probe.Trace) []ExtractedBit {
	times := tr.Times
	var boundaries []clock.Cycles
	for i := range times {
		if e.forest.Predict(detectionFeatures(times, i, e.IterCycles)) == 1 {
			boundaries = append(boundaries, times[i])
		}
	}
	var out []ExtractedBit
	for i := 0; i+1 < len(boundaries); i++ {
		dur := float64(boundaries[i+1] - boundaries[i])
		if dur < 8000 || dur > 12000 {
			continue
		}
		lo := boundaries[i] + clock.Cycles(dur*0.3)
		hi := boundaries[i] + clock.Cycles(dur*0.7)
		bit := uint(1)
		for _, t := range times {
			if t > lo && t < hi {
				bit = 0
				break
			}
		}
		out = append(out, ExtractedBit{At: boundaries[i], Bit: bit})
	}
	return out
}

// Score compares extracted bits against ground truth: the fraction of
// the record's ladder iterations recovered, and the error rate among the
// recovered bits — the two metrics of §7.3.
type Score struct {
	Total     int // ladder iterations in the record
	Recovered int
	Wrong     int
}

// Fraction returns recovered/total.
func (s Score) Fraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Recovered) / float64(s.Total)
}

// ErrorRate returns wrong/recovered.
func (s Score) ErrorRate() float64 {
	if s.Recovered == 0 {
		return 0
	}
	return float64(s.Wrong) / float64(s.Recovered)
}

// ScoreExtraction matches extracted bits to the record's iterations by
// boundary time (within 0.3 iteration) and scores them.
func ScoreExtraction(bits []ExtractedBit, rec *victim.SignRecord, iterCycles float64) Score {
	sc := Score{Total: len(rec.IterStarts)}
	tol := clock.Cycles(iterCycles * 0.3)
	used := make([]bool, len(rec.IterStarts))
	for _, b := range bits {
		best, bestD := -1, tol+1
		for i, s := range rec.IterStarts {
			if used[i] {
				continue
			}
			d := diffC(b.At, s)
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			continue
		}
		used[best] = true
		sc.Recovered++
		if b.Bit != rec.Bits[best] {
			sc.Wrong++
		}
	}
	return sc
}

func diffC(a, b clock.Cycles) clock.Cycles {
	if a > b {
		return a - b
	}
	return b - a
}

// BiasedOrEmpty reports whether an extraction looks like a false
// positive for the WholeSys scanner (§7.2): too few bits, or bits
// heavily biased toward one value.
func BiasedOrEmpty(bits []ExtractedBit, minBits int) bool {
	if len(bits) < minBits {
		return true
	}
	ones := 0
	for _, b := range bits {
		ones += int(b.Bit)
	}
	frac := float64(ones) / float64(len(bits))
	return frac < 0.1 || frac > 0.9
}
