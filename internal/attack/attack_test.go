package attack

import (
	"testing"

	"repro/internal/ec2m"
	"repro/internal/evset"
	"repro/internal/hierarchy"
	"repro/internal/psd"
	"repro/internal/xrand"
)

// newTestSession creates a scaled session: sect163 victim (162 ladder
// iterations per signing), 4-slice host.
func newTestSession(t testing.TB, seed uint64, cloud bool) *Session {
	t.Helper()
	cfg := hierarchy.Scaled(4)
	if cloud {
		cfg = cfg.WithCloudNoise()
	} else {
		cfg.NoiseRate = 0
	}
	return NewSession(cfg, ec2m.Sect163(), seed)
}

func TestExtractionOnTargetSetQuiet(t *testing.T) {
	s := newTestSession(t, 1, false)
	rng := xrand.New(2)
	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	scanner, ex, ts := s.TrainAll(p, rng)
	t.Logf("training: target=%d nontarget=%d FN=%.3f FP=%.3f",
		ts.TargetTraces, ts.NonTargetTraces, ts.FalseNegative, ts.FalsePositive)
	_ = scanner

	// Extract bits from a dedicated signing.
	tp := s.newTrainingPool()
	lines := tp.linesFor(s.V.TargetSet(), s.H.Config().SFWays)
	if lines == nil {
		t.Fatal("no congruent lines for target set")
	}
	m := s.MonitorSet(&evset.EvictionSet{Ta: lines[0], Lines: lines})
	rec := s.TriggerOneSigning()
	tr := m.Capture(rec.End - s.H.Clock().Now() + 50_000)
	bits := ex.Extract(tr)
	sc := ScoreExtraction(bits, rec, ex.IterCycles)
	t.Logf("extracted %d/%d bits, %d wrong (frac=%.2f err=%.3f)",
		sc.Recovered, sc.Total, sc.Wrong, sc.Fraction(), sc.ErrorRate())
	if sc.Fraction() < 0.6 {
		t.Errorf("extracted fraction %.2f, want >= 0.6 in a quiet environment", sc.Fraction())
	}
	if sc.ErrorRate() > 0.1 {
		t.Errorf("bit error rate %.3f, want <= 0.1 in a quiet environment", sc.ErrorRate())
	}
}

func TestPSDScannerSeparatesTargetQuiet(t *testing.T) {
	s := newTestSession(t, 3, false)
	rng := xrand.New(4)
	p := psd.DefaultParams(s.V.ExpectedAccessPeriod())
	td := s.CollectTrainingData(p, 10, 20)
	if len(td.Target) < 5 || len(td.NonTarget) < 10 {
		t.Fatalf("insufficient training data: %d/%d", len(td.Target), len(td.NonTarget))
	}
	scanner, m := psd.TrainScanner(p, td.Target, td.NonTarget, rng)
	t.Logf("validation FN=%.3f FP=%.3f", m.FalseNegativeRate(), m.FalsePositiveRate())
	if m.FalseNegativeRate() > 0.34 || m.FalsePositiveRate() > 0.2 {
		t.Errorf("scanner too weak: FN=%.2f FP=%.2f", m.FalseNegativeRate(), m.FalsePositiveRate())
	}
	_ = scanner
}

func TestEndToEndCloudNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run is slow")
	}
	train := newTestSession(t, 21, true)
	rng := xrand.New(22)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	scanner, ex, ts := train.TrainAll(p, rng)
	t.Logf("training under noise: FN=%.3f FP=%.3f", ts.FalseNegative, ts.FalsePositive)

	s := newTestSession(t, 23, true)
	opt := DefaultE2EOptions()
	opt.Traces = 3
	res := s.RunEndToEnd(scanner, ex, opt)
	t.Logf("sets=%d build=%.1fms scan: found=%v correct=%v in %.1fms (%d scanned)",
		res.SetsBuilt, res.BuildTime.Millis(), res.Scan.Found, res.Scan.Correct,
		res.Scan.Duration.Millis(), res.Scan.Scanned)
	t.Logf("fractions=%v errors=%v total=%.1fms", res.Fractions, res.ErrorRates, res.TotalTime.Millis())
	if !res.SignalFound {
		t.Fatal("end-to-end attack found no signal under cloud noise")
	}
	if res.MedianFraction() < 0.4 {
		t.Errorf("median extracted fraction %.2f under noise, want >= 0.4", res.MedianFraction())
	}
	if res.MeanErrorRate() > 0.15 {
		t.Errorf("bit error rate %.3f under noise, want <= 0.15", res.MeanErrorRate())
	}
}

func TestEndToEndQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run is slow")
	}
	train := newTestSession(t, 5, false)
	rng := xrand.New(6)
	p := psd.DefaultParams(train.V.ExpectedAccessPeriod())
	scanner, ex, _ := train.TrainAll(p, rng)

	// Attack a different host/victim with the trained classifiers.
	s := newTestSession(t, 7, false)
	opt := DefaultE2EOptions()
	opt.Traces = 3
	res := s.RunEndToEnd(scanner, ex, opt)
	t.Logf("sets=%d build=%.1fms scan: found=%v correct=%v in %.1fms (%d scanned)",
		res.SetsBuilt, res.BuildTime.Millis(), res.Scan.Found, res.Scan.Correct,
		res.Scan.Duration.Millis(), res.Scan.Scanned)
	t.Logf("fractions=%v errors=%v total=%.1fms", res.Fractions, res.ErrorRates, res.TotalTime.Millis())
	if !res.SignalFound {
		t.Fatal("end-to-end attack found no signal")
	}
	if !res.Scan.Correct {
		t.Error("scanner locked onto the wrong set")
	}
	if res.MedianFraction() < 0.5 {
		t.Errorf("median extracted fraction %.2f, want >= 0.5", res.MedianFraction())
	}
}
