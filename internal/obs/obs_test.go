package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety pins the disabled path: every operation on nil
// receivers is a no-op, never a panic (clause 10 relies on
// instrumented code calling through unconditionally).
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
	var tr *Tracer
	tr.Emit(Span{Name: "x"})
	tr.SetProcessName(0, "p")
	tr.SetThreadName(0, 0, "t")
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must hold nothing")
	}
	var tt *TrialTrace
	tt.Span("x", "phase", 0, 1, 0, true)
	if tt.Enabled() {
		t.Fatal("nil TrialTrace reports enabled")
	}
	var s *Sink
	if s.Enabled() || s.WithPID(3) != nil {
		t.Fatal("nil sink must stay disabled")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "state", "done")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if again := r.Counter("jobs_total", "state", "done"); again != c {
		t.Fatal("re-registration must return the same series")
	}
	other := r.Counter("jobs_total", "state", "failed")
	if other == c {
		t.Fatal("distinct labels must be distinct series")
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", g.Value())
	}
}

func TestLabelCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "b", "2", "a", "1")
	b := r.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not change series identity")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Labels != `{a="1",b="2"}` {
		t.Fatalf("labels rendered %q, want sorted", snap[0].Labels)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("sum = %g, want 111.5", h.Sum())
	}
	snap := r.Snapshot()
	want := []BucketCount{{1, 2}, {5, 3}, {10, 4}, {math.Inf(1), 5}}
	if len(snap) != 1 || len(snap[0].Buckets) != len(want) {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i, b := range snap[0].Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge must panic")
		}
	}()
	r.Gauge("m")
}

// TestPrometheusFormat pins the exposition text: stable order, TYPE
// lines, histogram expansion with merged le labels.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "k", "v").Add(2)
	r.Gauge("a_depth").Set(1.5)
	h := r.Histogram("c_seconds", []float64{0.5, 1}, "op", "x")
	h.Observe(0.25)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_depth gauge
a_depth 1.5
# TYPE b_total counter
b_total{k="v"} 2
# TYPE c_seconds histogram
c_seconds_bucket{op="x",le="0.5"} 1
c_seconds_bucket{op="x",le="1"} 1
c_seconds_bucket{op="x",le="+Inf"} 2
c_seconds_sum{op="x"} 2.25
c_seconds_count{op="x"} 2
`
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestConcurrentUse drives one registry from many goroutines under
// -race: registration and observation must both be safe.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{10, 100}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h", []float64{10, 100}).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}
