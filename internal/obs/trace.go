package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Span is one traced interval on a (PID, TID) track. Its timeline
// coordinates (Start, Dur) are SIMULATED cycles — deterministic, from
// the trial's host clock — while Wall carries the phase's host-side
// cost for attribution only (clock-domain rule: wall time appears in a
// span's args, never on the ts/dur axis).
type Span struct {
	// Name is the phase ("train", "build", "scan", "extract",
	// "lattice", ...); Cat groups spans for filtering ("phase" for
	// pipeline steps, "probe" for per-signing captures).
	Name string
	Cat  string
	// PID and TID place the span on a track: by convention PID is the
	// scenario or grid-cell index and TID the trial index.
	PID, TID int
	// Start and Dur are the span's simulated-cycle interval on the
	// trial's host clock.
	Start, Dur clock.Cycles
	// Wall is the host time the phase cost, attribution-only.
	Wall time.Duration
	// OK mirrors the step's success flag.
	OK bool
}

// threadKey identifies one named track.
type threadKey struct{ pid, tid int }

// Tracer collects spans concurrently and renders them as Chrome
// trace_event JSON (Perfetto-viewable). Emission order does not
// matter: WriteJSON sorts spans by (PID, TID, Start, Name), so the
// file is deterministic for any worker count. A nil Tracer drops
// everything (the disabled path).
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	procs   map[int]string
	threads map[threadKey]string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{procs: make(map[int]string), threads: make(map[threadKey]string)}
}

// Emit records one span (no-op on a nil receiver). Safe for
// concurrent use.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// SetProcessName names a PID track group (trace_event "process_name"
// metadata); no-op on a nil receiver.
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// SetThreadName names one (PID, TID) track (trace_event "thread_name"
// metadata); no-op on a nil receiver.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[threadKey{pid, tid}] = name
	t.mu.Unlock()
}

// Len returns the number of emitted spans (0 on a nil receiver).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a sorted copy of the emitted spans — (PID, TID,
// Start, Name) order, the same order WriteJSON renders — for tests
// and summaries. Nil on a nil receiver.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

func sortSpans(s []Span) {
	sort.SliceStable(s, func(a, b int) bool {
		if s[a].PID != s[b].PID {
			return s[a].PID < s[b].PID
		}
		if s[a].TID != s[b].TID {
			return s[a].TID < s[b].TID
		}
		if s[a].Start != s[b].Start {
			return s[a].Start < s[b].Start
		}
		return s[a].Name < s[b].Name
	})
}

// traceEvent is one Chrome trace_event object ("X" complete events
// for spans, "M" metadata events for track names).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON object format (the array-of-events
// form wrapped with metadata), which Perfetto and chrome://tracing
// both load.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteJSON renders the trace as Chrome trace_event JSON: ts/dur in
// microseconds of SIMULATED time (cycles at the paper's 2 GHz), wall
// time and cycle counts in each span's args. Output is deterministic:
// metadata first in track order, then spans in (PID, TID, Start,
// Name) order, with map-free encoding except args (whose keys
// encoding/json sorts). A nil tracer writes an empty, still-valid
// trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"clock_domain": "simulated cycles at 2 GHz; wall_us in args is host time",
		},
		TraceEvents: []traceEvent{},
	}
	if t != nil {
		t.mu.Lock()
		spans := append([]Span(nil), t.spans...)
		pids := make([]int, 0, len(t.procs))
		for pid := range t.procs {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": t.procs[pid]},
			})
		}
		tks := make([]threadKey, 0, len(t.threads))
		for tk := range t.threads {
			tks = append(tks, tk)
		}
		sort.Slice(tks, func(a, b int) bool {
			if tks[a].pid != tks[b].pid {
				return tks[a].pid < tks[b].pid
			}
			return tks[a].tid < tks[b].tid
		})
		for _, tk := range tks {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: tk.pid, TID: tk.tid,
				Args: map[string]any{"name": t.threads[tk]},
			})
		}
		t.mu.Unlock()
		sortSpans(spans)
		for _, s := range spans {
			dur := s.Dur.Micros()
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				TS: s.Start.Micros(), Dur: &dur,
				PID: s.PID, TID: s.TID,
				Args: map[string]any{
					"sim_cycles": uint64(s.Dur),
					"wall_us":    float64(s.Wall) / float64(time.Microsecond),
					"ok":         s.OK,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// TrialTrace binds a Tracer to one trial's (PID, TID) track; the
// engine attaches one to every Trial when a run is traced, and
// instrumented code calls Span unconditionally — a nil TrialTrace (the
// untraced run) drops everything at zero cost.
type TrialTrace struct {
	// Tracer receives the spans.
	Tracer *Tracer
	// PID and TID are the trial's track (scenario/cell index and trial
	// index by convention).
	PID, TID int
}

// Enabled reports whether spans emitted here go anywhere.
func (tt *TrialTrace) Enabled() bool { return tt != nil && tt.Tracer != nil }

// Span emits one span on this trial's track (no-op when disabled).
func (tt *TrialTrace) Span(name, cat string, start, dur clock.Cycles, wall time.Duration, ok bool) {
	if tt == nil || tt.Tracer == nil {
		return
	}
	tt.Tracer.Emit(Span{
		Name: name, Cat: cat, PID: tt.PID, TID: tt.TID,
		Start: start, Dur: dur, Wall: wall, OK: ok,
	})
}

// Sink bundles the observability outputs a run threads through its
// layers: a metrics registry, a tracer, and the PID tracks the sink's
// owner assigns trials to. Any field may be nil; a nil *Sink disables
// everything.
type Sink struct {
	// Metrics receives counters/gauges/histograms (nil = off).
	Metrics *Registry
	// Tracer receives spans (nil = off).
	Tracer *Tracer
	// TracePID is the PID track for trials spawned under this sink
	// (the engine sets each trial's TID to its trial index).
	TracePID int
}

// Enabled reports whether the sink carries any live output.
func (s *Sink) Enabled() bool {
	return s != nil && (s.Metrics != nil || s.Tracer != nil)
}

// WithPID returns a copy of the sink whose trials land on the given
// PID track (nil-safe: a nil sink stays nil).
func (s *Sink) WithPID(pid int) *Sink {
	if s == nil {
		return nil
	}
	c := *s
	c.TracePID = pid
	return &c
}
