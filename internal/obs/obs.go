// Package obs is the deterministic observability core: atomic
// counters, gauges and fixed-bucket histograms with labeled series
// (Registry), and simulated-time span tracing in Chrome trace_event
// JSON (Tracer). It exists to make "the run is slow/stuck" an
// attributed measurement — per-phase cycle budgets, per-cell duration
// histograms, daemon and fleet telemetry — without perturbing a single
// committed artifact byte.
//
// Two rules keep instrumentation outside the determinism contract
// (clause 10, observability identity):
//
//  1. Two clock domains, strictly separated. Simulated cycles
//     (clock.Cycles) are deterministic and may appear in exported
//     reports and trace timestamps; wall time (time.Time) is host-side
//     diagnostics only and never leaves stderr, /metrics, or a span's
//     args. A trace's ts/dur axis is therefore byte-reproducible.
//  2. Zero cost when disabled. Every method on every type in this
//     package is nil-receiver safe: a nil *Registry hands out nil
//     metrics, a nil *Counter's Add is a no-op, a nil *TrialTrace
//     emits nothing. Instrumented code paths hold plain pointers and
//     call through unconditionally — no rng stream is consumed, no
//     simulated clock advanced, no branch taken on behalf of
//     observability — so enabling or disabling any metric or trace
//     cannot change committed bytes (pinned by the byte-identity test
//     matrix and the benchguard gate).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil Counter is a no-op (the disabled path).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on a nil receiver).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric. The zero value is ready to use; a
// nil Gauge is a no-op (the disabled path).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (no-op on a nil receiver).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric: observations land
// in the first bucket whose upper bound is >= the value, with an
// implicit +Inf overflow bucket. Buckets are fixed at registration —
// no rebinning, no allocation on the observe path — so Observe is
// atomics-only and safe for concurrent use. A nil Histogram is a
// no-op (the disabled path).
type Histogram struct {
	uppers  []float64      // ascending upper bounds; +Inf implicit
	counts  []atomic.Int64 // len(uppers)+1, last is overflow
	sumBits atomic.Uint64
	n       atomic.Int64
}

// Observe records one value (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.n.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets is the default upper-bound set for wall-time
// duration histograms, in seconds: half a millisecond to a minute in
// roughly 1-2.5-5 steps. Wall durations are host-side diagnostics
// (clock-domain rule), so the exact bounds carry no determinism
// weight.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metricKind tags a family's type for exposition and conflict checks.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name with its type, bucket layout (histograms)
// and labeled series.
type family struct {
	name    string
	kind    metricKind
	buckets []float64
	series  map[string]any // rendered label string -> *Counter/*Gauge/*Histogram
}

// Registry owns a process's metric families and hands out their
// series. Registration is idempotent — asking for the same
// (name, labels) returns the same metric — and safe for concurrent
// use; re-registering a name as a different type or bucket layout
// panics (a programming error, like a duplicate flag). A nil
// *Registry hands out nil metrics, which are no-ops: callers plumb
// one pointer and never branch on "is observability on".
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders k/v pairs in sorted-key canonical form
// ({a="x",b="y"}), the identity of a series within its family.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].k < kvs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating on first use) the series for
// (name, labels), checking type and bucket consistency.
func (r *Registry) lookup(name string, kind metricKind, buckets []float64, labels []string) any {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s redeclared as %s (was %s)", name, kind, f.kind))
	}
	if kind == kindHistogram && !equalBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %s redeclared with different buckets", name))
	}
	m, ok := f.series[ls]
	if !ok {
		switch kind {
		case kindCounter:
			m = &Counter{}
		case kindGauge:
			m = &Gauge{}
		case kindHistogram:
			m = &Histogram{uppers: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
		}
		f.series[ls] = m
	}
	return m
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter series for (name, label pairs),
// creating it on first use. A nil registry returns a nil (no-op)
// counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge series for (name, label pairs), creating it
// on first use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram series for (name, label pairs) with
// the given ascending upper bounds (nil selects DurationBuckets),
// creating it on first use. A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	return r.lookup(name, kindHistogram, buckets, labels).(*Histogram)
}

// BucketCount is one histogram bucket in a snapshot: the cumulative
// count of observations <= Upper (+Inf for the overflow bucket).
type BucketCount struct {
	Upper float64
	Count int64
}

// Series is one metric series in a stable-ordered snapshot.
type Series struct {
	// Name and Labels identify the series; Labels is the canonical
	// sorted {k="v",...} rendering, empty when unlabeled.
	Name   string
	Labels string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Value carries a counter's count or a gauge's value.
	Value float64
	// Count, Sum and Buckets carry a histogram's state; Buckets are
	// cumulative in ascending Upper order, ending at +Inf.
	Count   int64
	Sum     float64
	Buckets []BucketCount
}

// Snapshot returns every series in stable order — families sorted by
// name, series by label string — so two snapshots of equal state
// render identically. A nil registry snapshots empty.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Series
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Series{Name: n, Labels: k, Type: string(f.kind)}
			switch m := f.series[k].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Count = m.Count()
				s.Sum = m.Sum()
				cum := int64(0)
				for i, u := range m.uppers {
					cum += m.counts[i].Load()
					s.Buckets = append(s.Buckets, BucketCount{Upper: u, Count: cum})
				}
				cum += m.counts[len(m.uppers)].Load()
				s.Buckets = append(s.Buckets, BucketCount{Upper: math.Inf(1), Count: cum})
			}
			out = append(out, s)
		}
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), stable-ordered like Snapshot. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	last := ""
	for _, s := range snap {
		if s.Name != last {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Type)
			last = s.Name
		}
		switch s.Type {
		case "histogram":
			for _, bc := range s.Buckets {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.Name, withLE(s.Labels, bc.Upper), bc.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, s.Labels, formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, s.Labels, s.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, s.Labels, formatFloat(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLE merges the le bucket label into a rendered label string.
func withLE(labels string, upper float64) string {
	le := `le="` + formatFloat(upper) + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

// formatFloat renders a float the shortest round-trip way, with
// Prometheus's +Inf spelling.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
