package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// decodeTrace parses WriteJSON output back into generic JSON for
// assertions, failing the test on malformed output.
func decodeTrace(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var f map[string]any
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if _, ok := f["traceEvents"].([]any); !ok {
		t.Fatalf("trace has no traceEvents array: %v", f)
	}
	return f
}

// TestWriteJSONDeterministic pins the trace file's ordering: spans
// emitted out of order render sorted by (pid, tid, start), after the
// metadata events, with simulated-microsecond timestamps.
func TestWriteJSONDeterministic(t *testing.T) {
	mk := func(order []int) []byte {
		tr := NewTracer()
		tr.SetProcessName(1, "cell-b")
		tr.SetProcessName(0, "cell-a")
		tr.SetThreadName(0, 0, "trial 0")
		spans := []Span{
			{Name: "build", Cat: "phase", PID: 0, TID: 0, Start: 0, Dur: 2000, Wall: time.Millisecond, OK: true},
			{Name: "scan", Cat: "phase", PID: 0, TID: 0, Start: 2000, Dur: 4000, OK: true},
			{Name: "build", Cat: "phase", PID: 1, TID: 0, Start: 0, Dur: 1000, OK: false},
		}
		for _, i := range order {
			tr.Emit(spans[i])
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := mk([]int{0, 1, 2})
	b := mk([]int{2, 1, 0})
	if !bytes.Equal(a, b) {
		t.Fatalf("emission order changed the trace file:\n%s\nvs\n%s", a, b)
	}
	f := decodeTrace(t, a)
	evs := f["traceEvents"].([]any)
	if len(evs) != 6 { // 2 process_name + 1 thread_name + 3 spans
		t.Fatalf("got %d events, want 6: %s", len(evs), a)
	}
	first := evs[0].(map[string]any)
	if first["ph"] != "M" || first["name"] != "process_name" {
		t.Fatalf("metadata must lead: %v", first)
	}
	span := evs[3].(map[string]any)
	if span["name"] != "build" || span["ph"] != "X" {
		t.Fatalf("first span = %v", span)
	}
	// 2000 cycles at 2 GHz = 1 simulated microsecond.
	if span["dur"].(float64) != 1 {
		t.Fatalf("dur = %v, want 1 (simulated us)", span["dur"])
	}
	args := span["args"].(map[string]any)
	if args["sim_cycles"].(float64) != 2000 || args["wall_us"].(float64) != 1000 {
		t.Fatalf("args = %v", args)
	}
}

// TestEmptyTraceStillParses: a tracer with no spans (or nil) still
// writes a loadable file.
func TestEmptyTraceStillParses(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, buf.Bytes())
	buf.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, buf.Bytes())
}

// TestTrialTraceRouting: spans land on the trial's track.
func TestTrialTraceRouting(t *testing.T) {
	tr := NewTracer()
	tt := &TrialTrace{Tracer: tr, PID: 3, TID: 7}
	if !tt.Enabled() {
		t.Fatal("bound TrialTrace must be enabled")
	}
	tt.Span("extract", "phase", clock.Cycles(10), clock.Cycles(5), 0, true)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].PID != 3 || spans[0].TID != 7 || spans[0].Name != "extract" {
		t.Fatalf("spans = %+v", spans)
	}
}

// TestTracerConcurrentEmit exercises Emit under -race.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Span{Name: "s", PID: w, TID: i})
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d, want 800", tr.Len())
	}
}

// TestSinkWithPID: the copy carries the PID; the original is
// untouched.
func TestSinkWithPID(t *testing.T) {
	s := &Sink{Tracer: NewTracer()}
	c := s.WithPID(9)
	if c.TracePID != 9 || s.TracePID != 0 || c.Tracer != s.Tracer {
		t.Fatalf("WithPID: got %+v from %+v", c, s)
	}
	if !c.Enabled() {
		t.Fatal("sink with tracer must be enabled")
	}
}
