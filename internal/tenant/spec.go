package tenant

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/specstr"
)

// Spec declares one background tenant: a model family plus its
// parameters. The zero value of every model-specific field selects that
// model's documented default, so a Spec can stay sparse; Rate and
// LLCProb are shared by all models. Specs round-trip through JSON (the
// -tenants flag and sweep spec files) and through the compact spec
// string syntax of Parse/String.
type Spec struct {
	// Model names the family: poisson, burst, stream, hotset or churn.
	Model string `json:"model"`
	// Rate is the tenant's mean access rate in accesses/ms/set, averaged
	// over all sets and all time — the paper's §4.3 unit (11.5 measured
	// on Cloud Run, 0.29 on a quiescent local machine). Every model
	// normalises its parameters so that equal Rates exert equal mean
	// pressure, which keeps models comparable along a sweep axis.
	Rate float64 `json:"rate"`
	// LLCProb is the probability that one background access also
	// installs a line in the LLC set, in addition to its SF allocation
	// (tenant shared data / L2 victims). Both ParseList syntaxes (spec
	// string and JSON) default an ABSENT key to DefaultLLCProb while
	// keeping an explicit 0 ("never touches the LLC"); only direct
	// struct construction is fully literal.
	LLCProb float64 `json:"llc_prob"`

	// Burst parameters: the tenant alternates exponentially distributed
	// on (bursting) and off (idle) phases; while on, it is a Poisson
	// source at Rate/OnFrac, so the long-run mean stays Rate.
	OnFrac float64 `json:"on_frac,omitempty"` // fraction of time bursting (default 0.1)
	OnMs   float64 `json:"on_ms,omitempty"`   // mean burst duration in ms (default 2)

	// Stream parameter: each sweep visit performs Width back-to-back
	// accesses to the set before moving to the next index (default 4).
	Width int `json:"width,omitempty"`

	// Hotset parameter: the fraction of sets the tenant's working set
	// collides with (default 0.25); hot sets receive Rate/HotFrac, cold
	// sets nothing.
	HotFrac float64 `json:"hot_frac,omitempty"`

	// Churn parameters: serverless instances arrive as a Poisson process
	// (ArrivalsPerMs, default 0.05), live an exponential LifeMs (default
	// 5) and each touches a contiguous FootprintFrac of all sets
	// (default 0.5) at a per-set rate normalised so the long-run mean
	// over all sets stays Rate.
	ArrivalsPerMs float64 `json:"arrivals_per_ms,omitempty"`
	LifeMs        float64 `json:"life_ms,omitempty"`
	FootprintFrac float64 `json:"footprint_frac,omitempty"`
}

// Model parameter defaults (see the Spec field comments).
const (
	DefaultLLCProb       = 0.5
	DefaultOnFrac        = 0.1
	DefaultOnMs          = 2.0
	DefaultWidth         = 4
	DefaultHotFrac       = 0.25
	DefaultArrivalsPerMs = 0.05
	DefaultLifeMs        = 5.0
	DefaultFootprintFrac = 0.5
)

// WithDefaults returns a copy with every zero model-specific parameter
// replaced by its default. Rate and LLCProb are never defaulted here:
// both are meaningful at zero.
func (s Spec) WithDefaults() Spec {
	if s.OnFrac == 0 {
		s.OnFrac = DefaultOnFrac
	}
	if s.OnMs == 0 {
		s.OnMs = DefaultOnMs
	}
	if s.Width == 0 {
		s.Width = DefaultWidth
	}
	if s.HotFrac == 0 {
		s.HotFrac = DefaultHotFrac
	}
	if s.ArrivalsPerMs == 0 {
		s.ArrivalsPerMs = DefaultArrivalsPerMs
	}
	if s.LifeMs == 0 {
		s.LifeMs = DefaultLifeMs
	}
	if s.FootprintFrac == 0 {
		s.FootprintFrac = DefaultFootprintFrac
	}
	return s
}

// Validate rejects malformed specs: an unknown model, a negative rate,
// any probability/fraction outside its range, or a model parameter set
// on a model it does not apply to (a raw Spec's zero means "default",
// so an inapplicable non-zero value can only be a mistake). Range
// defaults are applied first, so a sparse Spec validates exactly as it
// will build.
func (s Spec) Validate() error {
	if _, ok := registry[s.Model]; !ok {
		return fmt.Errorf("tenant: unknown model %q (known: %v)", s.Model, Models())
	}
	if key := s.inapplicable(); key != "" {
		return fmt.Errorf("tenant: parameter %q does not apply to model %q", key, s.Model)
	}
	d := s.WithDefaults()
	switch {
	case d.Rate < 0:
		return fmt.Errorf("tenant: %s: negative rate %g", d.Model, d.Rate)
	case d.LLCProb < 0 || d.LLCProb > 1:
		return fmt.Errorf("tenant: %s: llc_prob %g outside [0, 1]", d.Model, d.LLCProb)
	case d.OnFrac <= 0 || d.OnFrac > 1:
		return fmt.Errorf("tenant: %s: on_frac %g outside (0, 1]", d.Model, d.OnFrac)
	case d.OnMs <= 0:
		return fmt.Errorf("tenant: %s: on_ms %g must be positive", d.Model, d.OnMs)
	case d.Width < 1:
		return fmt.Errorf("tenant: %s: width %d below 1", d.Model, d.Width)
	case d.HotFrac <= 0 || d.HotFrac > 1:
		return fmt.Errorf("tenant: %s: hot_frac %g outside (0, 1]", d.Model, d.HotFrac)
	case d.ArrivalsPerMs <= 0:
		return fmt.Errorf("tenant: %s: arrivals_per_ms %g must be positive", d.Model, d.ArrivalsPerMs)
	case d.LifeMs <= 0:
		return fmt.Errorf("tenant: %s: life_ms %g must be positive", d.Model, d.LifeMs)
	case d.FootprintFrac <= 0 || d.FootprintFrac > 1:
		return fmt.Errorf("tenant: %s: footprint_frac %g outside (0, 1]", d.Model, d.FootprintFrac)
	}
	return nil
}

// Build validates the spec and constructs its model. The model still
// needs a Reset(seed) before use; hosts perform it when they build or
// recycle their tenant state.
func (s Spec) Build() (Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return registry[s.Model].build(s.WithDefaults())
}

// String renders the spec in the compact form Parse accepts, listing
// only the parameters relevant to the model. Defaults are applied
// first, so a sparse spec renders its effective values and every
// String output round-trips through Parse.
func (s Spec) String() string {
	s = s.WithDefaults()
	var b strings.Builder
	b.WriteString(s.Model)
	kv := func(k string, v float64) { fmt.Fprintf(&b, ",%s=%s", k, strconv.FormatFloat(v, 'g', -1, 64)) }
	fmt.Fprintf(&b, ":rate=%s", strconv.FormatFloat(s.Rate, 'g', -1, 64))
	kv("llc_prob", s.LLCProb)
	switch s.Model {
	case "burst":
		kv("on_frac", s.OnFrac)
		kv("on_ms", s.OnMs)
	case "stream":
		fmt.Fprintf(&b, ",width=%d", s.Width)
	case "hotset":
		kv("hot_frac", s.HotFrac)
	case "churn":
		kv("arrivals_per_ms", s.ArrivalsPerMs)
		kv("life_ms", s.LifeMs)
		kv("footprint_frac", s.FootprintFrac)
	}
	return b.String()
}

// specKeys maps each model to the parameter keys it may set, beyond
// the shared rate and llc_prob. Both input syntaxes enforce it: the
// spec-string parser per key, Validate (via inapplicable) on whole
// specs, including JSON ones.
var specKeys = map[string]map[string]bool{
	"poisson": {},
	"burst":   {"on_frac": true, "on_ms": true},
	"stream":  {"width": true},
	"hotset":  {"hot_frac": true},
	"churn":   {"arrivals_per_ms": true, "life_ms": true, "footprint_frac": true},
}

// inapplicable returns the first non-zero model parameter that does
// not belong to the spec's model, or "" when the spec is clean. It
// must run on a RAW spec (before WithDefaults fills every field).
func (s Spec) inapplicable() string {
	keys := specKeys[s.Model]
	for _, p := range []struct {
		key string
		set bool
	}{
		{"on_frac", s.OnFrac != 0},
		{"on_ms", s.OnMs != 0},
		{"width", s.Width != 0},
		{"hot_frac", s.HotFrac != 0},
		{"arrivals_per_ms", s.ArrivalsPerMs != 0},
		{"life_ms", s.LifeMs != 0},
		{"footprint_frac", s.FootprintFrac != 0},
	} {
		if p.set && !keys[p.key] {
			return p.key
		}
	}
	return ""
}

// Parse reads one compact spec string: "model" alone, or
// "model:key=value,key=value" — e.g. "burst:rate=34.5,on_frac=0.1".
// Omitted keys default: rate to the measured Cloud Run rate (11.5),
// llc_prob to DefaultLLCProb, model parameters per WithDefaults. Keys
// that do not belong to the model are rejected, so a typo cannot
// silently configure nothing. The surface syntax (and error wording)
// is the shared internal/specstr grammar.
func Parse(s string) (Spec, error) {
	name, rest, hasParams := specstr.Cut(s)
	spec := Spec{Model: name, Rate: 11.5, LLCProb: DefaultLLCProb}
	if _, ok := registry[name]; !ok {
		return Spec{}, fmt.Errorf("tenant: unknown model %q in spec %q (known: %v)", name, s, Models())
	}
	if hasParams {
		// Range-check explicit values at parse time: a zero in the struct
		// means "default", so an explicit bad zero (hot_frac=0, width=0.5)
		// would otherwise be silently replaced instead of rejected.
		err := specstr.Params("tenant", s, name, rest, func(key string, f float64) (known, bad bool) {
			if key != "rate" && key != "llc_prob" && !specKeys[name][key] {
				return false, false
			}
			switch key {
			case "rate":
				spec.Rate, bad = f, f < 0
			case "llc_prob":
				spec.LLCProb, bad = f, f < 0 || f > 1
			case "on_frac":
				spec.OnFrac, bad = f, f <= 0 || f > 1
			case "on_ms":
				spec.OnMs, bad = f, f <= 0
			case "width":
				spec.Width, bad = int(f), f < 1 || f != math.Trunc(f)
			case "hot_frac":
				spec.HotFrac, bad = f, f <= 0 || f > 1
			case "arrivals_per_ms":
				spec.ArrivalsPerMs, bad = f, f <= 0
			case "life_ms":
				spec.LifeMs, bad = f, f <= 0
			case "footprint_frac":
				spec.FootprintFrac, bad = f, f <= 0 || f > 1
			}
			return true, bad
		})
		if err != nil {
			return Spec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// ParseList reads a -tenants flag value: either a JSON array of Spec
// objects (first non-space byte '['), a single JSON object ('{'), or
// one or more compact spec strings separated by ';'. Both syntaxes
// apply the same defaults to omitted fields (rate 11.5, llc_prob 0.5):
// JSON objects are unmarshalled over a pre-filled spec, so an explicit
// "llc_prob": 0 still means zero while an absent key means 0.5.
func ParseList(s string) ([]Spec, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return nil, nil
	}
	if t[0] == '[' || t[0] == '{' {
		var raws []json.RawMessage
		if t[0] == '{' {
			raws = []json.RawMessage{json.RawMessage(t)}
		} else if err := json.Unmarshal([]byte(t), &raws); err != nil {
			return nil, fmt.Errorf("tenant: bad JSON spec list: %w", err)
		}
		specs := make([]Spec, len(raws))
		for i, raw := range raws {
			specs[i] = Spec{Rate: 11.5, LLCProb: DefaultLLCProb}
			// Unknown keys are typos, exactly as in the spec-string form;
			// known-but-inapplicable keys are caught by Validate.
			dec := json.NewDecoder(strings.NewReader(string(raw)))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&specs[i]); err != nil {
				return nil, fmt.Errorf("tenant: bad JSON spec: %w", err)
			}
			if err := specs[i].Validate(); err != nil {
				return nil, err
			}
		}
		return specs, nil
	}
	var specs []Spec
	for _, part := range strings.Split(t, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		sp, err := Parse(part)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}
