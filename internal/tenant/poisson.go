package tenant

import (
	"repro/internal/clock"
	"repro/internal/xrand"
)

func init() {
	register("poisson", "homogeneous per-set Poisson background (the paper's §4.3 measurement; legacy NoiseRate shim)",
		func(s Spec) (Model, error) {
			return NewPoisson(s.Rate / CyclesPerMs), nil
		})
}

// poisson is the memoryless baseline: every set sees an independent
// Poisson process at the same per-cycle rate. It is the structured
// replacement for the flat Config.NoiseRate knob and reproduces that
// path byte-for-byte: the per-window count is drawn from the host rng
// with the same expression the legacy hierarchy.Host.syncNoise used.
type poisson struct {
	perCycle float64
}

// NewPoisson builds a poisson tenant from a per-CYCLE rate, bypassing
// the Spec's per-millisecond unit. The hierarchy package's legacy-knob
// shim uses it so Config.NoiseRate (already per-cycle) avoids a
// ms-and-back float round trip that could break byte-identity.
func NewPoisson(ratePerCycle float64) Model {
	return &poisson{perCycle: ratePerCycle}
}

func (p *poisson) Reset(uint64) {}

// PerCycleRate implements Memoryless: the hierarchy may inline the
// per-window draw at this rate instead of calling Accesses.
func (p *poisson) PerCycleRate() float64 { return p.perCycle }

func (p *poisson) Accesses(rng *xrand.Rand, _ Set, last, now clock.Cycles) int {
	// Mirrors the legacy syncNoise expression exactly: window * rate.
	return rng.Poisson(float64(now-last) * p.perCycle)
}
