package tenant

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/xrand"
)

func init() {
	register("churn", "serverless cold starts: Poisson arrivals, exponential lifetimes, each touching a large transient footprint",
		func(s Spec) (Model, error) {
			arrPerCycle := s.ArrivalsPerMs / CyclesPerMs
			lifeCycles := s.LifeMs * CyclesPerMs
			// Expected concurrent instances x footprint coverage gives the
			// probability a set is covered at a random instant; dividing the
			// Spec rate by it keeps the long-run mean per-set rate at Rate.
			cover := arrPerCycle * lifeCycles * s.FootprintFrac
			return &churn{
				arrivalsPerCycle: arrPerCycle,
				lifeCycles:       lifeCycles,
				footFrac:         s.FootprintFrac,
				perCycleInst:     s.Rate / CyclesPerMs / cover,
			}, nil
		})
}

// instance is one serverless tenant instance: alive on [start, end),
// touching the contiguous (wrapping) footprint of sets starting at the
// offset fraction.
type instance struct {
	start, end clock.Cycles
	offFrac    float64
}

// churn models serverless cold-start churn: instances arrive as a
// Poisson process, live an exponential lifetime, and each hammers a
// large contiguous footprint of sets (container startup touches code,
// heap and runtime pages across much of the cache) before departing.
// Interference is therefore non-stationary on the timescale of an
// attack: windows with no instance covering the target set are silent,
// and a cold start mid-measurement floods a wide swath of sets at a
// per-set rate far above the long-run mean.
type churn struct {
	arrivalsPerCycle float64
	lifeCycles       float64
	footFrac         float64
	perCycleInst     float64

	sched xrand.Rand // schedule stream, seeded by Reset only
	// instances is sorted by start (arrival order); prefixMaxEnd[i] is
	// max end over instances[0..i], which bounds the backward scan a
	// window query needs. Both extend lazily and monotonically with the
	// largest `now` seen, so per-set query order cannot change them.
	instances    []instance
	prefixMaxEnd []clock.Cycles
	nextArrival  clock.Cycles
}

func (c *churn) Reset(seed uint64) {
	c.sched.Seed(seed)
	c.instances = c.instances[:0]
	c.prefixMaxEnd = c.prefixMaxEnd[:0]
	c.nextArrival = clock.Cycles(c.sched.Exp(c.arrivalsPerCycle))
}

// extend materialises arrivals up to time t.
func (c *churn) extend(t clock.Cycles) {
	for c.nextArrival <= t {
		life := clock.Cycles(c.sched.Exp(1/c.lifeCycles)) + 1
		inst := instance{
			start:   c.nextArrival,
			end:     c.nextArrival + life,
			offFrac: c.sched.Float64(),
		}
		maxEnd := inst.end
		if n := len(c.prefixMaxEnd); n > 0 && c.prefixMaxEnd[n-1] > maxEnd {
			maxEnd = c.prefixMaxEnd[n-1]
		}
		c.instances = append(c.instances, inst)
		c.prefixMaxEnd = append(c.prefixMaxEnd, maxEnd)
		c.nextArrival += clock.Cycles(c.sched.Exp(c.arrivalsPerCycle)) + 1
	}
}

// covers reports whether the instance's footprint includes the slot.
func (c *churn) covers(inst instance, set Set) bool {
	total := set.Total
	off := int(inst.offFrac * float64(total))
	span := int(c.footFrac*float64(total) + 0.5)
	if span < 1 {
		span = 1
	}
	d := set.Slot - off
	if d < 0 {
		d += total
	}
	return d < span
}

func (c *churn) Accesses(rng *xrand.Rand, set Set, last, now clock.Cycles) int {
	c.extend(now)
	// Instances that can overlap (last, now] have start < now and
	// end > last. Scan backward from the last arrival before `now`;
	// prefixMaxEnd bounds how far back an overlapping end can hide, so
	// the scan length tracks the (small) number of live instances, not
	// the whole arrival history.
	hi := sort.Search(len(c.instances), func(i int) bool { return c.instances[i].start >= now })
	mean := 0.0
	for i := hi - 1; i >= 0 && c.prefixMaxEnd[i] > last; i-- {
		inst := c.instances[i]
		if inst.end <= last || !c.covers(inst, set) {
			continue
		}
		lo, hiT := inst.start, inst.end
		if lo < last {
			lo = last
		}
		if hiT > now {
			hiT = now
		}
		if hiT > lo {
			mean += float64(hiT-lo) * c.perCycleInst
		}
	}
	if mean == 0 {
		return 0
	}
	return rng.Poisson(mean)
}
