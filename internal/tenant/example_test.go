package tenant_test

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/tenant"
	"repro/internal/xrand"
)

// A compact spec string configures one tenant; omitted parameters take
// the documented defaults (rate 11.5 accesses/ms/set, llc_prob 0.5).
func ExampleParse() {
	sp, err := tenant.Parse("burst:rate=34.5,on_frac=0.2")
	if err != nil {
		panic(err)
	}
	fmt.Println(sp.Model, sp.Rate, sp.LLCProb, sp.OnFrac)
	// Output: burst 34.5 0.5 0.2
}

// A -tenants flag value may compose several tenants with ';', or use
// JSON for the same structure.
func ExampleParseList() {
	specs, err := tenant.ParseList("poisson:rate=0.29; stream:rate=11.5,width=8")
	if err != nil {
		panic(err)
	}
	for _, sp := range specs {
		fmt.Println(sp.String())
	}
	// Output:
	// poisson:rate=0.29,llc_prob=0.5
	// stream:rate=11.5,llc_prob=0.5,width=8
}

// A built model answers lazy per-set window queries: how many accesses
// did this tenant perform on the set since it was last synced? Schedule
// state derives from the Reset seed; counts draw from the caller's
// (host) stream, so the same seeds always reproduce the same workload.
func ExampleSpec_Build() {
	sp, _ := tenant.Parse("poisson:rate=11.5")
	m, err := sp.Build()
	if err != nil {
		panic(err)
	}
	m.Reset(1)
	rng := xrand.New(1)
	window := clock.FromMillis(2) // 2 ms of virtual time
	n := m.Accesses(rng, tenant.Set{Slot: 42, Total: 2048}, 0, window)
	fmt.Printf("%d accesses in 2ms at 11.5/ms\n", n)
	// Output: 24 accesses in 2ms at 11.5/ms
}
