// Package tenant models the background co-tenants of a simulated
// serverless host as structured, composable workload processes.
//
// The paper measures interference from co-residents as a single per-set
// Poisson rate (§4.3: 11.5 accesses/ms/set on Cloud Run, 0.29 on a
// quiescent local machine). Real multi-tenant interference is richer:
// phased and bursty (co-tenants alternate active and idle periods),
// spatially structured (sequential scans sweep set indices instead of
// hitting sets i.i.d.; a neighbour's working set collides with some
// victim sets and not others), and churning (serverless cold starts
// arrive, touch a large transient footprint, and depart). Each of those
// regimes is a Model here, built from a declarative Spec and injected by
// internal/hierarchy into the same lazy per-set synchronisation path the
// flat Poisson knob used.
//
// # Determinism contract
//
// A model participates in the simulator's byte-level reproducibility:
//
//   - All schedule state (burst phase boundaries, churn arrivals, sweep
//     and hot-set placement) derives from the seed passed to Reset —
//     never from the host RNG — so building it lazily cannot perturb the
//     host's own random stream.
//   - Accesses draws per-window counts from the rng argument (the host's
//     stream), exactly as the legacy Poisson path did: the draw order is
//     fixed by the (deterministic) access sequence of the simulation.
//   - Queries arrive with non-decreasing `now` (the host clock), but in
//     arbitrary per-set order; models must answer from schedule state
//     that depends only on (seed, set, window), not on query order.
//   - Reset must restore the exact post-construction state and stay
//     allocation-light, so pooled hosts can recycle models across trials
//     (the hierarchy.Host.Reset contract).
//
// The "poisson" model reproduces the legacy Config.NoiseRate /
// Config.NoiseLLCProb path byte-for-byte at equal parameters; the
// hierarchy package keeps those knobs as a shim that builds one poisson
// Spec.
package tenant

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/xrand"
)

// CyclesPerMs converts the paper's per-millisecond rates to the
// simulator's per-cycle rates at the 2 GHz host frequency (clock.GHz2).
// hierarchy.Config uses the same constant, so a Spec rate in
// accesses/ms/set converts to exactly the same per-cycle float as
// hierarchy.Config.WithNoiseRate — the poisson shim's byte-identity
// depends on it.
const CyclesPerMs = 2_000_000.0

// Set identifies one LLC/SF set to a model, in flat coordinates: Slot is
// slice*setsPerSlice+index and Total is the host's system-wide set
// count. Spatial models (stream, hotset, churn) key their structure on
// Slot/Total; rate-only models ignore it.
type Set struct {
	Slot  int
	Total int
}

// Model is one background tenant's workload process. The host syncs a
// set lazily — on the first demand access after a quiet period — by
// asking every model how many background accesses it performed on that
// set during the elapsed window, then replaying them against the SF/LLC.
type Model interface {
	// Accesses returns the number of accesses this tenant performs to
	// set during the virtual-time window (last, now]. Count randomness
	// must come from rng (the host stream); schedule randomness must
	// come from the Reset seed (see the package determinism contract).
	Accesses(rng *xrand.Rand, set Set, last, now clock.Cycles) int
	// Reset re-derives all internal state from seed, as if the model had
	// just been built. It must be allocation-light: pooled hosts call it
	// once per recycled trial.
	Reset(seed uint64)
}

// Memoryless is implemented by models whose per-window access count is
// a single Poisson draw at a fixed per-cycle rate, independent of the
// set identity and of any schedule state. The hierarchy's sync loop uses
// it to devirtualize the common case: at host-build time it captures the
// rate and inlines the draw (rng.Poisson(window*rate)) instead of
// calling through the Model interface per window. The inlined expression
// must match Accesses exactly — same rng, same float arithmetic — so
// devirtualization cannot move a single drawn bit.
type Memoryless interface {
	Model
	// PerCycleRate returns the fixed per-cycle access rate.
	PerCycleRate() float64
}

// modelInfo is one registry entry.
type modelInfo struct {
	name  string
	desc  string
	build func(Spec) (Model, error)
}

var registry = map[string]modelInfo{}

// register adds a model family to the registry; called from the model
// files' init functions. Duplicate names are programming errors.
func register(name, desc string, build func(Spec) (Model, error)) {
	if _, dup := registry[name]; dup {
		panic("tenant: duplicate model " + name)
	}
	registry[name] = modelInfo{name: name, desc: desc, build: build}
}

// Models returns the sorted names of all registered model families.
func Models() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ModelList returns "name  description" lines for every model family,
// sorted by name (the -list output of the CLIs).
func ModelList() []string {
	names := Models()
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%-10s %s", name, registry[name].desc)
	}
	return out
}

// frac01 maps a 64-bit hash to [0, 1) with the same mantissa convention
// as xrand.Rand.Float64, for seed-derived placement decisions.
func frac01(v uint64) float64 { return float64(v>>11) / (1 << 53) }
