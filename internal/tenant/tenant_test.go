package tenant

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/xrand"
)

func TestRegistry(t *testing.T) {
	want := []string{"burst", "churn", "hotset", "poisson", "stream"}
	if got := Models(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Models() = %v, want %v", got, want)
	}
	if got := ModelList(); len(got) != len(want) {
		t.Fatalf("ModelList() has %d lines, want %d", len(got), len(want))
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, in := range []string{
		"poisson:rate=11.5,llc_prob=0.5",
		"burst:rate=34.5,llc_prob=0.5,on_frac=0.2,on_ms=1.5",
		"stream:rate=11.5,llc_prob=0.25,width=8",
		"hotset:rate=23,llc_prob=0.5,hot_frac=0.125",
		"churn:rate=11.5,llc_prob=0.5,arrivals_per_ms=0.1,life_ms=2,footprint_frac=0.75",
	} {
		sp, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", in, sp.String(), err)
		}
		if again != sp {
			t.Errorf("round trip changed the spec: %+v -> %+v", sp, again)
		}
	}
	// A bare model name takes the Cloud Run rate and default LLC prob.
	sp, err := Parse("burst")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rate != 11.5 || sp.LLCProb != DefaultLLCProb {
		t.Errorf("bare spec defaults wrong: %+v", sp)
	}
	// Sparse specs (zero-valued model params) render their effective
	// defaults, so String always round-trips through Parse.
	for _, sparse := range []Spec{
		{Model: "burst", Rate: 11.5, LLCProb: 0.5},
		{Model: "hotset", Rate: 23, LLCProb: 0.5},
		{Model: "churn", Rate: 11.5, LLCProb: 0.5},
		{Model: "stream", Rate: 11.5, LLCProb: 0.5},
	} {
		got, err := Parse(sparse.String())
		if err != nil {
			t.Errorf("Parse(String(%+v)) = %q: %v", sparse, sparse.String(), err)
			continue
		}
		if got.String() != sparse.String() {
			t.Errorf("sparse round trip: %q -> %q", sparse.String(), got.String())
		}
	}
}

// TestJSONDefaultsMatchSpecStrings: the two -tenants syntaxes must
// agree on omitted-key defaults (an absent rate/llc_prob means
// 11.5/0.5 in both), while explicit zeros stay zero.
func TestJSONDefaultsMatchSpecStrings(t *testing.T) {
	fromJSON, err := ParseList(`{"model":"burst"}`)
	if err != nil {
		t.Fatal(err)
	}
	fromString, err := ParseList("burst")
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON[0] != fromString[0] {
		t.Fatalf("JSON and spec-string defaults diverge: %+v vs %+v", fromJSON[0], fromString[0])
	}
	explicit, err := ParseList(`{"model":"burst","llc_prob":0}`)
	if err != nil {
		t.Fatal(err)
	}
	if explicit[0].LLCProb != 0 {
		t.Fatalf("explicit llc_prob 0 overridden to %g", explicit[0].LLCProb)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"warp",                    // unknown model
		"poisson:on_frac=0.5",     // parameter of another model
		"burst:rate",              // malformed key=value
		"burst:rate=fast",         // bad number
		"burst:rate=-3",           // negative rate
		"poisson:llc_prob=1.5",    // probability out of range
		"hotset:hot_frac=0",       // fraction out of range
		"churn:life_ms=-1",        // negative lifetime
		"stream:width=0.5",        // truncates to zero width
		"burst:on_frac=2",         // fraction out of range
		"churn:footprint_frac=-1", // fraction out of range
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", in)
		}
	}
}

func TestParseList(t *testing.T) {
	specs, err := ParseList("poisson:rate=0.29; burst:rate=34.5,on_frac=0.1")
	if err != nil || len(specs) != 2 || specs[0].Model != "poisson" || specs[1].Model != "burst" {
		t.Fatalf("ParseList specs = %+v, err = %v", specs, err)
	}
	specs, err = ParseList(`[{"model":"stream","rate":11.5,"llc_prob":0.5,"width":8}]`)
	if err != nil || len(specs) != 1 || specs[0].Width != 8 {
		t.Fatalf("JSON array: specs = %+v, err = %v", specs, err)
	}
	specs, err = ParseList(`{"model":"hotset","rate":23,"hot_frac":0.25}`)
	if err != nil || len(specs) != 1 || specs[0].Model != "hotset" {
		t.Fatalf("JSON object: specs = %+v, err = %v", specs, err)
	}
	if specs, err := ParseList("  "); err != nil || specs != nil {
		t.Fatalf("blank list: specs = %+v, err = %v", specs, err)
	}
	if _, err := ParseList(`[{"model":"hotset","hot_frac":7}]`); err == nil {
		t.Error("ParseList accepted an out-of-range JSON spec")
	}
	if _, err := ParseList(`[{"model":`); err == nil {
		t.Error("ParseList accepted truncated JSON")
	}
	// The JSON form is as strict as the spec-string form: misspelled
	// keys and parameters of other models are typos, not no-ops.
	if _, err := ParseList(`{"model":"burst","on_fra":0.05}`); err == nil {
		t.Error("ParseList accepted a misspelled JSON key")
	}
	if _, err := ParseList(`{"model":"poisson","on_frac":0.9}`); err == nil {
		t.Error("ParseList accepted an inapplicable JSON parameter")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Model: "burst", Rate: 11.5, LLCProb: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("sparse spec must validate via defaults: %v", err)
	}
	for _, bad := range []Spec{
		{Model: "nope", Rate: 1},
		{Model: "poisson", Rate: -1},
		{Model: "poisson", Rate: 1, LLCProb: 2},
		{Model: "burst", Rate: 1, OnFrac: -0.1},
		{Model: "burst", Rate: 1, OnMs: -2},
		{Model: "stream", Rate: 1, Width: -4},
		{Model: "hotset", Rate: 1, HotFrac: 1.5},
		{Model: "churn", Rate: 1, ArrivalsPerMs: -0.1},
		{Model: "churn", Rate: 1, FootprintFrac: 2},
		{Model: "poisson", Rate: 1, OnFrac: 0.5}, // inapplicable parameter
		{Model: "burst", Rate: 1, Width: 4},      // inapplicable parameter
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

// TestPoissonMatchesLegacyExpression pins the shim contract at the
// model level: the poisson model must consume the host stream exactly
// as the legacy syncNoise expression did — one Poisson(window*rate)
// draw, nothing else.
func TestPoissonMatchesLegacyExpression(t *testing.T) {
	const rate = 11.5 / CyclesPerMs
	m := NewPoisson(rate)
	m.Reset(1)
	a, b := xrand.New(42), xrand.New(42)
	last := clock.Cycles(0)
	for _, now := range []clock.Cycles{100, 5_000, 1_000_000, 30_000_000} {
		got := m.Accesses(a, Set{Slot: 3, Total: 2048}, last, now)
		want := b.Poisson(float64(now-last) * rate)
		if got != want {
			t.Fatalf("window (%d, %d]: model drew %d, legacy expression %d", last, now, got, want)
		}
		last = now
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("model consumed a different number of host-stream draws than the legacy path")
	}
}

// queryPlan is a fixed per-set sync schedule used by the determinism
// tests: windows of varying width over a few distinct slots.
type query struct {
	slot      int
	last, now clock.Cycles
}

func testQueries() []query {
	var qs []query
	for _, slot := range []int{0, 17, 511, 1023} {
		last := clock.Cycles(0)
		for _, now := range []clock.Cycles{40_000, 41_000, 3_000_000, 9_000_000, 120_000_000} {
			qs = append(qs, query{slot, last, now})
			last = now
		}
	}
	return qs
}

func allSpecs() []Spec {
	return []Spec{
		{Model: "poisson", Rate: 11.5, LLCProb: 0.5},
		{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.2, OnMs: 1},
		{Model: "stream", Rate: 11.5, LLCProb: 0.5, Width: 4},
		{Model: "hotset", Rate: 11.5, LLCProb: 0.5, HotFrac: 0.25},
		{Model: "churn", Rate: 11.5, LLCProb: 0.5, ArrivalsPerMs: 0.1, LifeMs: 2, FootprintFrac: 0.5},
	}
}

// runPlan executes the query plan with a per-query rng seeded from the
// slot, isolating the model's schedule state from count-draw state.
func runPlan(m Model, qs []query) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		rng := xrand.New(uint64(q.slot)*977 + uint64(q.now))
		out[i] = m.Accesses(rng, Set{Slot: q.slot, Total: 2048}, q.last, q.now)
	}
	return out
}

// TestModelDeterminism: same seed, same query plan, same counts — for
// every model family.
func TestModelDeterminism(t *testing.T) {
	for _, sp := range allSpecs() {
		m1, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", sp.Model, err)
		}
		m2, _ := sp.Build()
		m1.Reset(7)
		m2.Reset(7)
		qs := testQueries()
		if a, b := runPlan(m1, qs), runPlan(m2, qs); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical seeds diverged:\n%v\n%v", sp.Model, a, b)
		}
		// Reset must fully restore post-construction state.
		m1.Reset(7)
		if a, b := runPlan(m1, qs), runPlan(m2, qs); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Reset did not restore the initial state", sp.Model)
		}
	}
}

// TestQueryOrderInvariance: lazily built schedule state (burst phases,
// churn arrivals) must answer identically whether set A or set B syncs
// first at each time step — the host syncs sets in demand-access order,
// which varies between protocols.
func TestQueryOrderInvariance(t *testing.T) {
	for _, sp := range allSpecs() {
		forward, _ := sp.Build()
		reversed, _ := sp.Build()
		forward.Reset(9)
		reversed.Reset(9)
		qs := testQueries()
		a := runPlan(forward, qs)
		// Re-group the same queries so that at each `now`, sets sync in
		// the opposite order (plan is slot-major; rebuild time-major
		// reversed). Keys (slot, window) stay identical.
		perm := make([]int, 0, len(qs))
		windows := 5
		slots := len(qs) / windows
		for w := 0; w < windows; w++ {
			for s := slots - 1; s >= 0; s-- {
				perm = append(perm, s*windows+w)
			}
		}
		b := make([]int, len(qs))
		for _, i := range perm {
			q := qs[i]
			rng := xrand.New(uint64(q.slot)*977 + uint64(q.now))
			b[i] = reversed.Accesses(rng, Set{Slot: q.slot, Total: 2048}, q.last, q.now)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: per-set sync order changed the counts:\n%v\n%v", sp.Model, a, b)
		}
	}
}

// TestMeanRates checks every model's normalisation: over a long
// horizon, the mean access rate averaged across all sets approaches the
// Spec's Rate (in accesses/ms/set).
func TestMeanRates(t *testing.T) {
	const (
		// Enough sets that the hotset model's realized (binomial) hot
		// fraction stays close to its nominal hot_frac.
		total     = 2048
		horizon   = clock.Cycles(400 * CyclesPerMs) // 400 ms
		tolerance = 0.25
	)
	for _, sp := range allSpecs() {
		m, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", sp.Model, err)
		}
		m.Reset(11)
		rng := xrand.New(3)
		sum := 0
		for slot := 0; slot < total; slot++ {
			sum += m.Accesses(rng, Set{Slot: slot, Total: total}, 0, horizon)
		}
		perSetPerMs := float64(sum) / float64(total) / horizon.Millis()
		if math.Abs(perSetPerMs-sp.Rate) > tolerance*sp.Rate {
			t.Errorf("%s: mean rate %.2f/ms/set, want %.1f +/- %.0f%%",
				sp.Model, perSetPerMs, sp.Rate, tolerance*100)
		}
	}
}

func TestStreamStructure(t *testing.T) {
	sp := Spec{Model: "stream", Rate: 11.5, LLCProb: 0.5, Width: 4}
	m, _ := sp.Build()
	m.Reset(5)
	rng := xrand.New(1)
	// Counts are exact multiples of width, and over one full sweep
	// period every set is visited exactly once.
	perCycle := 11.5 / CyclesPerMs
	period := clock.Cycles(4 / perCycle) // width/rate cycles per sweep
	for slot := 0; slot < 64; slot++ {
		n := m.Accesses(rng, Set{Slot: slot, Total: 64}, 0, period)
		if n%4 != 0 {
			t.Fatalf("slot %d: %d accesses, not a multiple of width", slot, n)
		}
		if n < 4 || n > 8 {
			t.Errorf("slot %d: %d accesses over one sweep period, want ~4", slot, n)
		}
	}
	// The model is deterministic: it never draws from the host stream.
	before := xrand.New(77)
	after := xrand.New(77)
	m.Accesses(after, Set{Slot: 0, Total: 64}, 0, 1_000_000)
	if before.Uint64() != after.Uint64() {
		t.Error("stream consumed host-stream draws")
	}
}

func TestHotsetStructure(t *testing.T) {
	sp := Spec{Model: "hotset", Rate: 11.5, LLCProb: 0.5, HotFrac: 0.25}
	m, _ := sp.Build()
	m.Reset(13)
	const total = 2048
	window := clock.Cycles(50 * CyclesPerMs)
	hot := 0
	for slot := 0; slot < total; slot++ {
		rng := xrand.New(uint64(slot))
		if m.Accesses(rng, Set{Slot: slot, Total: total}, 0, window) > 0 {
			hot++
		}
	}
	frac := float64(hot) / total
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("hot fraction %.3f, want ~0.25", frac)
	}
	// The collision pattern is stable across windows for a fixed seed.
	rng := xrand.New(9)
	slotCold := -1
	for slot := 0; slot < total; slot++ {
		if m.Accesses(rng, Set{Slot: slot, Total: total}, 0, window) == 0 {
			slotCold = slot
			break
		}
	}
	if slotCold >= 0 {
		if m.Accesses(rng, Set{Slot: slotCold, Total: total}, window, 4*window) != 0 {
			t.Error("a cold set became hot without a reseed")
		}
	}
}

func TestBurstStructure(t *testing.T) {
	sp := Spec{Model: "burst", Rate: 34.5, LLCProb: 0.5, OnFrac: 0.1, OnMs: 2}
	m, _ := sp.Build()
	m.Reset(21)
	// Scanning in fine windows, a burst tenant must show both silent and
	// active stretches (unlike a flat poisson at the same mean rate).
	rng := xrand.New(2)
	silent, active := 0, 0
	step := clock.Cycles(CyclesPerMs / 2) // 0.5 ms
	last := clock.Cycles(0)
	for i := 0; i < 400; i++ {
		now := last + step
		if m.Accesses(rng, Set{Slot: 1, Total: 256}, last, now) == 0 {
			silent++
		} else {
			active++
		}
		last = now
	}
	if silent == 0 || active == 0 {
		t.Errorf("burst tenant not phased: %d silent, %d active windows", silent, active)
	}
	if silent < active {
		t.Errorf("on_frac=0.1 should idle most windows: %d silent vs %d active", silent, active)
	}
}

func TestChurnStructure(t *testing.T) {
	sp := Spec{Model: "churn", Rate: 11.5, LLCProb: 0.5, ArrivalsPerMs: 0.05, LifeMs: 5, FootprintFrac: 0.5}
	m, _ := sp.Build()
	m.Reset(31)
	rng := xrand.New(4)
	// Instances cover half the sets each; over a long horizon some
	// windows are silent (no instance covering the slot) and some are
	// dense.
	silent, active := 0, 0
	step := clock.Cycles(2 * CyclesPerMs)
	last := clock.Cycles(0)
	for i := 0; i < 300; i++ {
		now := last + step
		if m.Accesses(rng, Set{Slot: 7, Total: 256}, last, now) == 0 {
			silent++
		} else {
			active++
		}
		last = now
	}
	if silent == 0 || active == 0 {
		t.Errorf("churn tenant not phased: %d silent, %d active windows", silent, active)
	}
}

// TestMemorylessMatchesAccesses pins the devirtualization contract: for
// a model advertising Memoryless, the inlined expression the hierarchy
// uses (rng.Poisson(window*rate)) must reproduce Accesses draw-for-draw
// on a lockstep rng, leaving both streams in identical states.
func TestMemorylessMatchesAccesses(t *testing.T) {
	m, err := Spec{Model: "poisson", Rate: 11.5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ml, ok := m.(Memoryless)
	if !ok {
		t.Fatal("poisson model does not advertise Memoryless")
	}
	rate := ml.PerCycleRate()
	a, b := xrand.New(91), xrand.New(91)
	last := clock.Cycles(0)
	windows := xrand.New(17)
	for i := 0; i < 5000; i++ {
		now := last + clock.Cycles(1+windows.Uint64()%100_000)
		want := m.Accesses(a, Set{Slot: int(windows.Uint64() % 512), Total: 512}, last, now)
		got := b.Poisson(float64(now-last) * rate)
		if got != want {
			t.Fatalf("window %d: inlined draw %d != Accesses %d", i, got, want)
		}
		last = now
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("inlined path left the rng stream in a different state")
	}
}
