package tenant

import (
	"repro/internal/clock"
	"repro/internal/xrand"
)

func init() {
	register("stream", "sequential scan sweeping set indices in order, width accesses per visit",
		func(s Spec) (Model, error) {
			return &stream{perCycle: s.Rate / CyclesPerMs, width: s.Width}, nil
		})
}

// stream is a spatially structured tenant: a sequential scan (memcpy,
// SpMV row walk, garbage-collector sweep) that touches set indices in
// order, wrapping around, with width back-to-back accesses per visit.
// Unlike the i.i.d. poisson model, its hits on one set come in
// regularly spaced clumps — the regime where a probe sees nothing for a
// long stretch and then a dense burst exactly when the sweep passes.
// The sweep speed is normalised so the long-run mean per-set rate is
// the Spec's Rate: each set is visited Rate/width times per ms. The
// model is fully deterministic given its seed (which only places the
// sweep's starting offset): it draws nothing from the host stream.
type stream struct {
	perCycle float64
	width    int
	offFrac  float64 // starting position as a fraction of Total
}

func (s *stream) Reset(seed uint64) {
	s.offFrac = frac01(xrand.Stream(seed, 0))
}

// pos returns the number of whole set-visits completed by time t,
// offset by the seed-derived starting position.
func (s *stream) pos(t clock.Cycles, total int) int64 {
	// Visits per cycle across the whole machine: Total sets, each
	// visited perCycle/width times per cycle.
	speed := float64(total) * s.perCycle / float64(s.width)
	return int64(float64(t)*speed + s.offFrac*float64(total))
}

func (s *stream) Accesses(_ *xrand.Rand, set Set, last, now clock.Cycles) int {
	if set.Total <= 0 {
		return 0
	}
	a, b := s.pos(last, set.Total), s.pos(now, set.Total)
	// Visits to slot in (a, b]: integers m ≡ slot (mod Total) with
	// a < m <= b.
	t, slot := int64(set.Total), int64(set.Slot)
	visits := floorDiv(b-slot, t) - floorDiv(a-slot, t)
	return int(visits) * s.width
}

// floorDiv is floor(a/b) for positive b and any a.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
