package tenant

import (
	"repro/internal/clock"
	"repro/internal/xrand"
)

func init() {
	register("hotset", "working set colliding with a hot_frac of sets: Poisson at rate/hot_frac there, silent elsewhere",
		func(s Spec) (Model, error) {
			return &hotset{perCycleHot: s.Rate / CyclesPerMs / s.HotFrac, hotFrac: s.HotFrac}, nil
		})
}

// hotset models a co-tenant whose resident working set collides with
// only a fraction of the victim's sets: each set is independently hot
// with probability hot_frac (a seed-derived hash, so the collision
// pattern is fixed per trial, not redrawn per window). Hot sets see a
// Poisson process at Rate/hot_frac — the same total pressure as a
// poisson tenant of equal Rate, concentrated — and cold sets see
// nothing. This is the regime where eviction-set construction succeeds
// on most sets but the target's neighbourhood is much noisier (or
// quieter) than the calibration assumed.
type hotset struct {
	perCycleHot float64
	hotFrac     float64
	seed        uint64
}

func (h *hotset) Reset(seed uint64) { h.seed = seed }

// hot reports whether the tenant's working set collides with the slot.
func (h *hotset) hot(slot int) bool {
	return frac01(xrand.Stream(h.seed, uint64(slot))) < h.hotFrac
}

func (h *hotset) Accesses(rng *xrand.Rand, set Set, last, now clock.Cycles) int {
	if !h.hot(set.Slot) {
		return 0
	}
	return rng.Poisson(float64(now-last) * h.perCycleHot)
}
