package tenant

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/xrand"
)

func init() {
	register("burst", "on/off Markov phases: Poisson at rate/on_frac while bursting, idle otherwise",
		func(s Spec) (Model, error) {
			return &burst{
				perCycleOn: s.Rate / CyclesPerMs / s.OnFrac,
				onMean:     s.OnMs * CyclesPerMs,
				offMean:    s.OnMs * CyclesPerMs * (1 - s.OnFrac) / s.OnFrac,
				onFrac:     s.OnFrac,
			}, nil
		})
}

// burst is a two-state Markov-modulated Poisson process in time: the
// tenant alternates exponentially distributed on and off phases shared
// by ALL sets (a co-tenant's active periods hit its whole working set
// at once). While on it is a Poisson source at Rate/OnFrac per set, so
// the long-run mean rate stays the Spec's Rate. The AraOS-style phased
// interference regime: quiet stretches a monitor can calibrate in,
// punctuated by bursts that look nothing like the calibration.
type burst struct {
	perCycleOn float64
	onMean     float64 // mean on-phase length, cycles
	offMean    float64
	onFrac     float64

	sched xrand.Rand // schedule stream, seeded by Reset only
	// ends[i] is the end time of phase i; phase parity plus startOn
	// gives its state. Extended lazily and monotonically as queries'
	// `now` advances, so per-set query order cannot change it.
	ends    []clock.Cycles
	startOn bool
}

func (b *burst) Reset(seed uint64) {
	b.sched.Seed(seed)
	b.ends = b.ends[:0]
	// The chain starts in its stationary distribution.
	b.startOn = b.sched.Float64() < b.onFrac
}

// extend grows the phase schedule until it covers t.
func (b *burst) extend(t clock.Cycles) {
	last := clock.Cycles(0)
	if n := len(b.ends); n > 0 {
		last = b.ends[n-1]
	}
	for last <= t {
		mean := b.offMean
		if b.phaseOn(len(b.ends)) {
			mean = b.onMean
		}
		last += clock.Cycles(b.sched.Exp(1/mean)) + 1
		b.ends = append(b.ends, last)
	}
}

// phaseOn reports whether phase i is a bursting phase.
func (b *burst) phaseOn(i int) bool { return (i%2 == 0) == b.startOn }

// onTime integrates the bursting time within (last, now].
func (b *burst) onTime(last, now clock.Cycles) clock.Cycles {
	b.extend(now)
	i := sort.Search(len(b.ends), func(i int) bool { return b.ends[i] > last })
	var on clock.Cycles
	start := clock.Cycles(0)
	if i > 0 {
		start = b.ends[i-1]
	}
	for ; i < len(b.ends) && start < now; i++ {
		end := b.ends[i]
		if b.phaseOn(i) {
			lo, hi := start, end
			if lo < last {
				lo = last
			}
			if hi > now {
				hi = now
			}
			if hi > lo {
				on += hi - lo
			}
		}
		start = end
	}
	return on
}

func (b *burst) Accesses(rng *xrand.Rand, _ Set, last, now clock.Cycles) int {
	on := b.onTime(last, now)
	if on == 0 {
		return 0
	}
	return rng.Poisson(float64(on) * b.perCycleOn)
}
