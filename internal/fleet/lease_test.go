package fleet

import (
	"testing"
	"time"
)

// clock is the test's injected time source: every Table method takes
// an explicit now, so expiry scenarios run without a single sleep.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *clock                   { return &clock{t: time.Unix(1000, 0)} }
func mustGrant(t *testing.T, tb *Table, w string, now time.Time, ttl time.Duration) Lease {
	t.Helper()
	l, ok := tb.Grant(w, now, ttl)
	if !ok {
		t.Fatalf("Grant(%s): nothing pending", w)
	}
	return l
}

func TestNewTablePartition(t *testing.T) {
	for _, tc := range []struct {
		total, size int
		want        []Range
	}{
		{total: 10, size: 4, want: []Range{{0, 4}, {4, 8}, {8, 10}}},
		{total: 4, size: 4, want: []Range{{0, 4}}},
		{total: 3, size: 5, want: []Range{{0, 3}}},
		{total: 6, size: 1, want: []Range{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}},
	} {
		tb, err := NewTable(tc.total, tc.size)
		if err != nil {
			t.Fatalf("NewTable(%d, %d): %v", tc.total, tc.size, err)
		}
		got := tb.Ranges()
		if len(got) != len(tc.want) {
			t.Fatalf("NewTable(%d, %d) = %v, want %v", tc.total, tc.size, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("NewTable(%d, %d)[%d] = %v, want %v", tc.total, tc.size, i, got[i], tc.want[i])
			}
		}
	}
	for _, tc := range []struct{ total, size int }{{0, 4}, {-1, 4}, {4, 0}, {4, -2}} {
		if _, err := NewTable(tc.total, tc.size); err == nil {
			t.Fatalf("NewTable(%d, %d) accepted a degenerate partition", tc.total, tc.size)
		}
	}
}

func TestGrantLowestPendingFirst(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(9, 3)
	l1 := mustGrant(t, tb, "a", ck.now(), time.Minute)
	l2 := mustGrant(t, tb, "b", ck.now(), time.Minute)
	l3 := mustGrant(t, tb, "c", ck.now(), time.Minute)
	if l1.Start != 0 || l2.Start != 3 || l3.Start != 6 {
		t.Fatalf("grants = %v %v %v, want starts 0,3,6", l1, l2, l3)
	}
	if _, ok := tb.Grant("d", ck.now(), time.Minute); ok {
		t.Fatal("fourth grant succeeded with nothing pending")
	}
	if p, l, c := tb.Counts(); p != 0 || l != 3 || c != 0 {
		t.Fatalf("counts = %d/%d/%d, want 0 pending, 3 leased, 0 completed", p, l, c)
	}
}

func TestRenewDefersExpiry(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(4, 4)
	l := mustGrant(t, tb, "a", ck.now(), time.Minute)

	// Renewed just before the deadline, the lease survives it.
	ck.advance(59 * time.Second)
	if err := tb.Renew(l.Range, ck.now(), time.Minute); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	ck.advance(59 * time.Second)
	if exp := tb.ExpireDue(ck.now()); len(exp) != 0 {
		t.Fatalf("renewed lease expired early: %v", exp)
	}
	// Without another renewal it expires at the pushed deadline.
	ck.advance(2 * time.Second)
	exp := tb.ExpireDue(ck.now())
	if len(exp) != 1 || exp[0].Range != l.Range || exp[0].Worker != "a" {
		t.Fatalf("ExpireDue = %v, want the one lease", exp)
	}
	// The expired range is pending again and re-grantable.
	if err := tb.Renew(l.Range, ck.now(), time.Minute); err == nil {
		t.Fatal("Renew succeeded on an expired (pending) range")
	}
	l2 := mustGrant(t, tb, "b", ck.now(), time.Minute)
	if l2.Range != l.Range {
		t.Fatalf("re-grant = %v, want %v", l2.Range, l.Range)
	}
}

func TestExpireDueReturnsOnlyDue(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(8, 4)
	la := mustGrant(t, tb, "a", ck.now(), time.Minute)
	ck.advance(30 * time.Second)
	mustGrant(t, tb, "b", ck.now(), time.Minute)

	ck.advance(31 * time.Second) // a is past its deadline, b is not
	exp := tb.ExpireDue(ck.now())
	if len(exp) != 1 || exp[0].Range != la.Range {
		t.Fatalf("ExpireDue = %v, want only %v", exp, la.Range)
	}
	if p, l, _ := tb.Counts(); p != 1 || l != 1 {
		t.Fatalf("counts after partial expiry = %d pending, %d leased; want 1, 1", p, l)
	}
}

func TestReleaseReturnsRangeToPool(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(4, 4)
	l := mustGrant(t, tb, "a", ck.now(), time.Minute)
	if err := tb.Release(l.Range); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := tb.Release(l.Range); err == nil {
		t.Fatal("second Release succeeded on a pending range")
	}
	l2 := mustGrant(t, tb, "b", ck.now(), time.Minute)
	if l2.Range != l.Range {
		t.Fatalf("re-grant after release = %v, want %v", l2.Range, l.Range)
	}
}

// The duplicate-completion path is clause 9's heart: an expired
// lease's worker finishing late must neither error nor double-count —
// the first completion wins the range, later ones report dup so the
// coordinator knows its download will dedupe at merge.
func TestCompleteAndDuplicates(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(4, 2)
	la := mustGrant(t, tb, "a", ck.now(), time.Minute)

	// a's lease expires; the range reassigns to b, which completes it.
	ck.advance(2 * time.Minute)
	if exp := tb.ExpireDue(ck.now()); len(exp) != 1 {
		t.Fatalf("ExpireDue = %v", exp)
	}
	lb := mustGrant(t, tb, "b", ck.now(), time.Minute)
	if lb.Range != la.Range {
		t.Fatalf("reassignment = %v, want %v", lb.Range, la.Range)
	}
	dup, err := tb.Complete(lb.Range)
	if err != nil || dup {
		t.Fatalf("first Complete = dup %v, err %v", dup, err)
	}
	// The zombie (a's job) finishes afterwards: same range, dup=true.
	dup, err = tb.Complete(la.Range)
	if err != nil || !dup {
		t.Fatalf("zombie Complete = dup %v, err %v; want dup=true", dup, err)
	}
	// A completed range is never re-granted.
	l2, ok := tb.Grant("c", ck.now(), time.Minute)
	if ok && l2.Range == la.Range {
		t.Fatalf("completed range re-granted: %v", l2)
	}
	if _, err := tb.Complete(Range{Start: 99, End: 100}); err == nil {
		t.Fatal("Complete accepted an unknown range")
	}
}

// A zombie completing while the REASSIGNED lease is still live must
// supersede the holder: the range completes, the live lease dissolves,
// and the holder's later completion is the duplicate.
func TestZombieCompletionSupersedesLiveLease(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(2, 2)
	la := mustGrant(t, tb, "a", ck.now(), time.Minute)
	ck.advance(2 * time.Minute)
	tb.ExpireDue(ck.now())
	lb := mustGrant(t, tb, "b", ck.now(), time.Minute)

	// a's zombie finishes first.
	dup, err := tb.Complete(la.Range)
	if err != nil || dup {
		t.Fatalf("zombie Complete = dup %v, err %v", dup, err)
	}
	if _, held := tb.Holder(lb.Range); held {
		t.Fatal("live lease survived a completed range")
	}
	if !tb.Done() {
		t.Fatal("table not done after its only range completed")
	}
	// b finishing afterwards is the duplicate.
	dup, err = tb.Complete(lb.Range)
	if err != nil || !dup {
		t.Fatalf("superseded holder Complete = dup %v, err %v; want dup=true", dup, err)
	}
}

func TestDoneAndCounts(t *testing.T) {
	ck := newClock()
	tb, _ := NewTable(6, 2)
	if tb.Done() {
		t.Fatal("fresh table reports done")
	}
	for !tb.Done() {
		l, ok := tb.Grant("w", ck.now(), time.Minute)
		if !ok {
			t.Fatal("grant failed with pending ranges left")
		}
		if dup, err := tb.Complete(l.Range); dup || err != nil {
			t.Fatalf("Complete(%v) = dup %v, err %v", l.Range, dup, err)
		}
	}
	if p, l, c := tb.Counts(); p != 0 || l != 0 || c != 3 {
		t.Fatalf("final counts = %d/%d/%d, want 0/0/3", p, l, c)
	}
}
