package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/artifact"
	"repro/internal/sweep"
)

// JobStatus mirrors the llcserve job JSON the coordinator consumes —
// the subset of the daemon's job document that scheduling decisions
// read.
type JobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total_cells"`
	Done      int    `json:"done_cells"`
	Skip      int    `json:"skipped_cells"`
	Error     string `json:"error,omitempty"`
	CellStart int    `json:"cell_start,omitempty"`
	CellEnd   int    `json:"cell_end,omitempty"`
}

// Client talks the llcserve HTTP API to one worker daemon. Submit and
// Status are single-shot (the scheduling loop is its own retry);
// Download retries with exponential backoff, because a finished
// range's log is the one artifact the coordinator cannot recompute
// locally and a transient truncation must not burn the lease.
type Client struct {
	// Base is the worker's URL origin, e.g. "http://10.0.0.7:8077".
	Base string
	// HTTP is the transport (nil = a client with a 30s overall timeout).
	HTTP *http.Client
	// Retries is how many times Download retries after the first
	// attempt (0 = a sensible default of 4).
	Retries int
	// RetryBase is the first backoff delay, doubling per retry
	// (0 = 100ms).
	RetryBase time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// apiError decodes the daemon's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("worker %s: %s (HTTP %d)", resp.Request.URL.Host, e.Error, resp.StatusCode)
	}
	return fmt.Errorf("worker %s: HTTP %d", resp.Request.URL.Host, resp.StatusCode)
}

// Submit posts the cell range [start, end) of spec and returns the
// job the daemon created or attached to. Any 2xx is success: 201 is a
// new job, 202 re-enqueued an interrupted/cancelled/failed one (which
// resumes from its checkpoint), and 200 attached to a queued, running
// or already-done job — all states the scheduling loop handles through
// Status.
func (c *Client) Submit(ctx context.Context, spec sweep.Spec, start, end int) (*JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/api/v1/jobs?start=%d&end=%d", c.Base, start, end)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	var j JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, fmt.Errorf("worker %s: decoding job: %w", req.URL.Host, err)
	}
	return &j, nil
}

// Status fetches one job's current state.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var j JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, fmt.Errorf("worker %s: decoding status: %w", req.URL.Host, err)
	}
	return &j, nil
}

// Cancel asks the worker to stop a queued or running job at the next
// trial boundary. Best-effort: a terminal job answers 409, which is
// success for the coordinator's purposes.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/v1/jobs/"+id+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusConflict {
		return apiError(resp)
	}
	return nil
}

// Download pulls a done job's checkpoint log to dst and verifies it
// before installing: the log must open under the campaign fingerprint
// (header + per-record CRCs) and hold exactly the given keys — a
// truncated transfer loses tail records and shows up as missing keys,
// a foreign or stale log shows up as a fingerprint or unexpected-key
// failure. Failed attempts retry with exponential backoff (network
// errors, 5xx, and verification failures are all retryable; 4xx fails
// fast — the job is gone or not done, which backoff cannot fix). The
// verified file is installed by rename, so dst is never a torn
// download.
func (c *Client) Download(ctx context.Context, id, dst string, fingerprint uint64, keys []string) error {
	retries := c.Retries
	if retries <= 0 {
		retries = 4
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.downloadOnce(ctx, id, dst, fingerprint, keys)
		if err == nil {
			return nil
		}
		var fatal *fatalError
		if errors.As(err, &fatal) || attempt >= retries || ctx.Err() != nil {
			return fmt.Errorf("fleet: downloading %s from %s (attempt %d): %w", id, c.Base, attempt+1, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff << attempt):
		}
	}
}

// fatalError marks a download failure retrying cannot fix.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

func (c *Client) downloadOnce(ctx context.Context, id, dst string, fingerprint uint64, keys []string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+id+"/artifact", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		if resp.StatusCode/100 == 4 {
			return &fatalError{err}
		}
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".dl-*")
	if err != nil {
		return &fatalError{err}
	}
	tmp := f.Name()
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// The integrity gate: fingerprint, CRCs, and the exact key set of
		// the leased range.
		_, err = artifact.CheckKeys(tmp, fingerprint, keys)
	}
	if err == nil {
		err = os.Rename(tmp, dst)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}
