package fleet

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/sweep"
)

// mergeDownloads combines the verified range logs into the final
// artifact at dstPath, byte-identical to an uninterrupted sequential
// run: records land in the grid's Expand order (clause 8), each source
// may contribute only the keys of the range it was assigned
// (artifact.MergeOptions.SourceKeys — the range-aware input check),
// every payload must decode to the spec's trial count, and the merged
// record count must equal the grid. Duplicate range logs (zombie
// completions) merge as byte-equal duplicates or fail loudly. The
// merge lands next to dstPath first and installs by rename, so a
// failed merge never leaves a partial destination.
func mergeDownloads(spec sweep.Spec, cls []sweep.Cell, dstPath string, downloads []download) (*artifact.MergeStats, error) {
	order := make([]string, len(cls))
	for i, c := range cls {
		order[i] = c.Key
	}
	srcKeys := make(map[string][]string, len(downloads))
	srcs := make([]string, 0, len(downloads))
	for _, d := range downloads {
		keys := make([]string, 0, d.rng.End-d.rng.Start)
		for _, c := range cls[d.rng.Start:d.rng.End] {
			keys = append(keys, c.Key)
		}
		srcKeys[d.path] = keys
		srcs = append(srcs, d.path)
	}
	n := spec.Trials
	tmp := filepath.Join(filepath.Dir(dstPath), "."+filepath.Base(dstPath)+".merge")
	os.Remove(tmp)
	st, err := artifact.Merge(tmp, campaign.Fingerprint(spec), artifact.MergeOptions{
		Order: order,
		Validate: func(key string, payload []byte) error {
			_, err := campaign.DecodeSamples(payload, n)
			return err
		},
		SourceKeys: srcKeys,
	}, srcs...)
	if err != nil {
		return nil, err
	}
	if st.Records != len(order) {
		os.Remove(tmp)
		return nil, fmt.Errorf("fleet: merged %d of %d cells (incomplete coverage)", st.Records, len(order))
	}
	if err := os.Rename(tmp, dstPath); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return st, nil
}
