// Package fleet distributes one campaign across many llcserve daemons:
// a coordinator splits the spec's Expand order into fixed cell-range
// leases, hands them to workers over the daemon HTTP API, expires and
// reassigns leases that stop making progress, downloads each finished
// range's checkpoint log with verification and retry, and merges the
// logs centrally into an artifact byte-identical to an uninterrupted
// single-process run (determinism clause 9: lease identity — a lease
// is its cell range, so the merged bytes cannot depend on which worker
// ran it, how often it was reassigned, or how many duplicates
// finished).
//
// The package splits along its failure domains: Table is the pure
// lease bookkeeping (no clock of its own — every method takes the
// caller's now, so timeouts are testable without sleeping), Client is
// the HTTP worker protocol with download verification and backoff, and
// Run is the scheduling loop that composes them and merges the result.
package fleet

import (
	"fmt"
	"sort"
	"time"
)

// Range is a half-open cell interval [Start, End) in the spec's Expand
// order. Ranges are the lease unit and the coordinator's identity for
// work: completions are credited to the range, never to the worker or
// the lease that produced them (clause 9).
type Range struct {
	Start, End int
}

// String renders the range in half-open interval notation.
func (r Range) String() string { return fmt.Sprintf("[%d, %d)", r.Start, r.End) }

// Lease is a range granted to one worker until a deadline. The
// coordinator renews it while the worker demonstrates progress; an
// expired lease returns the range to the pending pool, but the old
// worker's job is not cancelled — if it finishes anyway, the duplicate
// completion is deduped byte-equal at merge time.
type Lease struct {
	Range
	Worker  string
	Expires time.Time
}

type rangeState int

const (
	rangePending rangeState = iota
	rangeLeased
	rangeCompleted
)

// Table is the coordinator's lease bookkeeping: a fixed partition of
// [0, total) into leaseSize-cell ranges, each pending, leased, or
// completed. It is not safe for concurrent use (the coordinator is a
// single loop) and never reads the clock — Grant, Renew and ExpireDue
// take the caller's now, which is the seam the unit tests drive.
type Table struct {
	ranges []Range
	state  map[int]rangeState // keyed by Range.Start
	leases map[int]*Lease     // leased ranges only, keyed by Range.Start
}

// NewTable partitions total cells into leases of leaseSize (the last
// range may be shorter), all pending.
func NewTable(total, leaseSize int) (*Table, error) {
	if total <= 0 || leaseSize <= 0 {
		return nil, fmt.Errorf("fleet: lease table needs total > 0 and lease size > 0 (got %d, %d)", total, leaseSize)
	}
	t := &Table{
		state:  make(map[int]rangeState),
		leases: make(map[int]*Lease),
	}
	for s := 0; s < total; s += leaseSize {
		r := Range{Start: s, End: min(s+leaseSize, total)}
		t.ranges = append(t.ranges, r)
		t.state[r.Start] = rangePending
	}
	return t, nil
}

// Ranges returns the fixed partition in ascending Start order.
func (t *Table) Ranges() []Range { return append([]Range(nil), t.ranges...) }

// Grant leases the lowest pending range to worker until now+ttl.
// ok is false when nothing is pending (everything is leased out or
// completed).
func (t *Table) Grant(worker string, now time.Time, ttl time.Duration) (Lease, bool) {
	for _, r := range t.ranges {
		if t.state[r.Start] != rangePending {
			continue
		}
		l := Lease{Range: r, Worker: worker, Expires: now.Add(ttl)}
		t.state[r.Start] = rangeLeased
		t.leases[r.Start] = &l
		return l, true
	}
	return Lease{}, false
}

// Renew pushes a live lease's deadline to now+ttl. The coordinator
// calls it only when the worker demonstrated progress, so a responsive
// but stuck worker still expires.
func (t *Table) Renew(r Range, now time.Time, ttl time.Duration) error {
	l, ok := t.leases[r.Start]
	if !ok || l.Range != r {
		return fmt.Errorf("fleet: renew: range %s is not leased", r)
	}
	l.Expires = now.Add(ttl)
	return nil
}

// ExpireDue returns every lease whose deadline has passed and moves
// those ranges back to pending, sorted by Start. The expired workers'
// jobs keep running remotely — the coordinator tracks them as zombies
// whose late completions dedupe at merge time.
func (t *Table) ExpireDue(now time.Time) []Lease {
	var out []Lease
	for start, l := range t.leases {
		if !l.Expires.After(now) {
			out = append(out, *l)
			t.state[start] = rangePending
			delete(t.leases, start)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Release returns a leased range to pending immediately — the path for
// a failed submission or a worker that reported its job failed.
func (t *Table) Release(r Range) error {
	l, ok := t.leases[r.Start]
	if !ok || l.Range != r {
		return fmt.Errorf("fleet: release: range %s is not leased", r)
	}
	t.state[r.Start] = rangePending
	delete(t.leases, r.Start)
	return nil
}

// Complete marks a range's work finished, whoever produced it: the
// live leaseholder, a zombie whose lease already expired, or a second
// zombie after the reassigned holder also finished (dup reports that
// case — the range was already completed, and the caller's duplicate
// download will dedupe byte-equal at merge). Completing releases any
// live lease on the range, superseding the holder.
func (t *Table) Complete(r Range) (dup bool, err error) {
	st, ok := t.state[r.Start]
	if !ok {
		return false, fmt.Errorf("fleet: complete: unknown range %s", r)
	}
	if l, leased := t.leases[r.Start]; leased && l.Range != r {
		return false, fmt.Errorf("fleet: complete: range %s does not match lease %s", r, l.Range)
	}
	delete(t.leases, r.Start)
	if st == rangeCompleted {
		return true, nil
	}
	t.state[r.Start] = rangeCompleted
	return false, nil
}

// Holder returns the live lease on a range, if any.
func (t *Table) Holder(r Range) (Lease, bool) {
	l, ok := t.leases[r.Start]
	if !ok || l.Range != r {
		return Lease{}, false
	}
	return *l, true
}

// Done reports whether every range has completed.
func (t *Table) Done() bool {
	for _, r := range t.ranges {
		if t.state[r.Start] != rangeCompleted {
			return false
		}
	}
	return true
}

// Counts returns how many ranges are pending, leased, and completed.
func (t *Table) Counts() (pending, leased, completed int) {
	for _, r := range t.ranges {
		switch t.state[r.Start] {
		case rangePending:
			pending++
		case rangeLeased:
			leased++
		case rangeCompleted:
			completed++
		}
	}
	return
}
