package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Options configures a fleet run.
type Options struct {
	// Workers are the llcserve base URLs the coordinator leases ranges
	// to (at least one required).
	Workers []string
	// LeaseSize is the cells-per-lease partition width (0 = a default
	// that gives each worker about four leases, so one slow worker
	// strands at most a small slice).
	LeaseSize int
	// LeaseTimeout expires a lease that showed no progress for this
	// long (0 = 30s). Expired ranges reassign; the old worker's job is
	// left running, and a late duplicate completion dedupes byte-equal
	// at merge.
	LeaseTimeout time.Duration
	// Poll is the scheduling loop's tick (0 = 250ms): each tick expires
	// due leases, polls leased jobs, grants pending ranges to idle
	// workers, and downloads finished ranges.
	Poll time.Duration
	// WorkDir holds downloaded range logs and the pre-install merge
	// output ("" = a fresh temp directory, removed on success).
	WorkDir string
	// Logf, when non-nil, receives scheduling-event lines (grants,
	// expiries, reassignments, downloads, duplicates).
	Logf func(format string, args ...any)
	// Errorf, when non-nil, receives the operator-critical subset of
	// events — lease expiries and worker/job failures — which must
	// surface even when Logf is muted (the llcfleet -q contract). Nil
	// falls back to Logf.
	Errorf func(format string, args ...any)
	// Progressf, when non-nil, receives a periodic progress line (cells
	// completed, range states, cells/s, ETA) every ProgressEvery.
	Progressf func(format string, args ...any)
	// ProgressEvery is the progress-line and telemetry-refresh period
	// (0 = 10s).
	ProgressEvery time.Duration
	// Metrics, when non-nil, receives coordinator telemetry: lease
	// event counters (fleet_leases_total by event), duplicate
	// completions, completed cells, per-worker cells/s and the run ETA.
	// Telemetry is wall-clock bookkeeping only; the merged artifact is
	// byte-identical with or without it (determinism clause 10).
	Metrics *obs.Registry
	// Now is the clock (nil = time.Now); tests inject it to drive lease
	// expiry without real waiting.
	Now func() time.Time
	// DownloadRetries and DownloadRetryBase tune the artifact download
	// backoff (see Client).
	DownloadRetries   int
	DownloadRetryBase time.Duration
}

// Stats summarises a completed fleet run.
type Stats struct {
	// Ranges is the lease partition size (how many leases the grid
	// split into).
	Ranges int
	// Grants counts every lease granted, including re-grants of
	// reassigned ranges.
	Grants int
	// Renewed counts lease renewals (progress demonstrated before the
	// deadline).
	Renewed int
	// Expired counts leases that timed out without completing.
	Expired int
	// Superseded counts live leases cut short because another worker
	// (a zombie whose lease had expired) completed the range first.
	Superseded int
	// Duplicates counts ranges completed more than once (an expired
	// lease's zombie finished after the range was reassigned and
	// completed elsewhere); their logs merged byte-equal.
	Duplicates int
	// Merge is the central merge's accounting.
	Merge *artifact.MergeStats
}

// worker is the coordinator's view of one daemon.
type worker struct {
	base   string
	client *Client
	lease  *Lease // nil when idle
	jobID  string
	// lastDone is the done_cells count at the last renewal; the lease
	// renews only when this advances (or the state changes), so a
	// responsive daemon whose job is wedged still expires.
	lastDone int
	// coolUntil backs a worker off after a failed submit, so a dead
	// daemon is not hammered every tick with the same range.
	coolUntil time.Time
	// cellsDone accumulates the cells of every range this worker
	// completed (telemetry only).
	cellsDone int
}

// zombie is an expired lease's job, still possibly running remotely.
// The coordinator keeps polling it: if it finishes first it completes
// its range like anyone else; if the range was already reassigned and
// completed, its log is downloaded anyway and deduped byte-equal —
// the cheapest proof that completion identity is the range, not the
// worker (clause 9).
type zombie struct {
	w     *worker
	jobID string
	rng   Range
}

// download records one verified range log for the central merge.
type download struct {
	path string
	rng  Range
}

// Run executes spec across the fleet and installs the merged
// checkpoint log at dstPath (temp + rename; the file must not already
// exist). The merged log is byte-identical to what an uninterrupted
// single-process campaign of the same spec would have written,
// regardless of worker failures, lease reassignments, or duplicate
// completions. Run returns when every range has merged or ctx is
// cancelled; a fleet with no live workers makes no progress but keeps
// retrying until then — the caller's context is the abort knob.
func Run(ctx context.Context, spec sweep.Spec, dstPath string, opts Options) (*Stats, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers")
	}
	if _, err := os.Stat(dstPath); err == nil {
		return nil, fmt.Errorf("fleet: destination %s already exists", dstPath)
	}
	cls := sweep.Expand(spec)
	leaseSize := opts.LeaseSize
	if leaseSize <= 0 {
		leaseSize = max(1, len(cls)/(4*len(opts.Workers)))
	}
	table, err := NewTable(len(cls), leaseSize)
	if err != nil {
		return nil, err
	}
	timeout := opts.LeaseTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Critical events fall back to the scheduling log when no dedicated
	// error sink is set (so a fully-silent run stays possible only by
	// muting both — cmd/llcfleet always wires Errorf to stderr).
	errf := opts.Errorf
	if errf == nil {
		errf = logf
	}
	progressEvery := opts.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 10 * time.Second
	}
	workDir := opts.WorkDir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "llcfleet-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(workDir)
	}

	fp := campaign.Fingerprint(spec)
	keysOf := func(r Range) []string {
		keys := make([]string, 0, r.End-r.Start)
		for _, c := range cls[r.Start:r.End] {
			keys = append(keys, c.Key)
		}
		return keys
	}
	workers := make([]*worker, len(opts.Workers))
	for i, base := range opts.Workers {
		workers[i] = &worker{base: base, client: &Client{
			Base:      base,
			Retries:   opts.DownloadRetries,
			RetryBase: opts.DownloadRetryBase,
		}}
	}
	st := &Stats{Ranges: len(table.Ranges())}
	var zombies []*zombie
	var downloads []download

	// Coordinator telemetry: all no-ops when opts.Metrics is nil (the
	// obs nil-receiver contract).
	m := opts.Metrics
	leasesGranted := m.Counter("fleet_leases_total", "event", "granted")
	leasesRenewed := m.Counter("fleet_leases_total", "event", "renewed")
	leasesExpired := m.Counter("fleet_leases_total", "event", "expired")
	leasesSuperseded := m.Counter("fleet_leases_total", "event", "superseded")
	dupCompletions := m.Counter("fleet_duplicate_completions_total")
	cellsCompleted := m.Counter("fleet_cells_completed_total")
	startWall := now()
	lastProgress := startWall
	doneCells := 0
	progress := func() {
		elapsed := now().Sub(startWall).Seconds()
		var rate float64
		if elapsed > 0 {
			rate = float64(doneCells) / elapsed
		}
		eta := "unknown"
		if rate > 0 {
			d := time.Duration(float64(len(cls)-doneCells) / rate * float64(time.Second))
			eta = d.Round(time.Second).String()
			m.Gauge("fleet_eta_seconds").Set(d.Seconds())
		}
		if m != nil && elapsed > 0 {
			for _, w := range workers {
				m.Gauge("fleet_worker_cells_per_second", "worker", w.base).Set(float64(w.cellsDone) / elapsed)
			}
		}
		if opts.Progressf != nil {
			pend, leased, completed := table.Counts()
			opts.Progressf("fleet: progress %d/%d cells, ranges %d pending / %d leased / %d done, %.1f cells/s, ETA %s",
				doneCells, len(cls), pend, leased, completed, rate, eta)
		}
	}

	// fetch downloads and verifies a done range's log, completing the
	// range in the table; dup completions still contribute their file
	// (the merge dedupes byte-equal records, which is the test that the
	// two runs really computed the same bytes).
	fetch := func(w *worker, jobID string, r Range) error {
		dst := filepath.Join(workDir, fmt.Sprintf("r%d-%d.%s.cells", r.Start, r.End, sanitize(w.base)))
		if err := w.client.Download(ctx, jobID, dst, fp, keysOf(r)); err != nil {
			return err
		}
		// A completion while another worker holds a live lease on the
		// range supersedes that holder (Complete releases the lease).
		if hl, held := table.Holder(r); held && hl.Worker != w.base {
			st.Superseded++
			leasesSuperseded.Inc()
			logf("fleet: lease on %s held by %s superseded by completion from %s", r, hl.Worker, w.base)
		}
		dup, err := table.Complete(r)
		if err != nil {
			return err
		}
		w.cellsDone += r.End - r.Start
		if dup {
			st.Duplicates++
			dupCompletions.Inc()
			logf("fleet: duplicate completion of %s by %s (deduped at merge)", r, w.base)
		} else {
			doneCells += r.End - r.Start
			cellsCompleted.Add(int64(r.End - r.Start))
			logf("fleet: range %s completed by %s", r, w.base)
		}
		downloads = append(downloads, download{path: dst, rng: r})
		return nil
	}

	for !table.Done() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fleet: %w", context.Cause(ctx))
		}
		tick := now()

		// 1. Expire leases that stopped progressing; their ranges return
		// to the pool and their jobs become zombies we keep watching.
		for _, l := range table.ExpireDue(tick) {
			st.Expired++
			leasesExpired.Inc()
			for _, w := range workers {
				if w.lease != nil && w.lease.Range == l.Range {
					errf("fleet: lease %s on %s expired; reassigning", l.Range, w.base)
					zombies = append(zombies, &zombie{w: w, jobID: w.jobID, rng: l.Range})
					w.lease, w.jobID = nil, ""
				}
			}
		}

		// 2. Poll leaseholders. Progress renews; done downloads and
		// completes; a terminal failure releases the range for
		// reassignment. A poll error renews nothing — the lease keeps
		// aging toward expiry, which is the crash detector.
		for _, w := range workers {
			if w.lease == nil {
				continue
			}
			js, err := w.client.Status(ctx, w.jobID)
			if err != nil {
				logf("fleet: polling %s on %s: %v", w.jobID, w.base, err)
				continue
			}
			r := w.lease.Range
			switch js.State {
			case "done":
				if err := fetch(w, w.jobID, r); err != nil {
					logf("fleet: %v", err)
					// The range is still leased; expiry will reassign it if
					// the download never succeeds.
					continue
				}
				w.lease, w.jobID = nil, ""
			case "failed", "cancelled", "interrupted":
				errf("fleet: job %s on %s is %s (%s); releasing %s", w.jobID, w.base, js.State, js.Error, r)
				table.Release(r)
				w.lease, w.jobID = nil, ""
				w.coolUntil = tick.Add(timeout)
			default: // queued, running
				if js.Done > w.lastDone {
					w.lastDone = js.Done
					table.Renew(r, tick, timeout)
					st.Renewed++
					leasesRenewed.Inc()
				}
			}
		}

		// 3. Poll zombies: a late completion still counts for its range
		// (and dedupes if someone else got there first); a terminal
		// failure just drops the zombie.
		live := zombies[:0]
		for _, z := range zombies {
			js, err := z.w.client.Status(ctx, z.jobID)
			if err != nil {
				live = append(live, z)
				continue
			}
			switch js.State {
			case "done":
				if err := fetch(z.w, z.jobID, z.rng); err != nil {
					logf("fleet: %v", err)
					live = append(live, z)
				}
			case "failed", "cancelled", "interrupted":
			default:
				live = append(live, z)
			}
		}
		zombies = live

		// 4. Grant pending ranges to idle workers.
		for _, w := range workers {
			if w.lease != nil || tick.Before(w.coolUntil) {
				continue
			}
			l, ok := table.Grant(w.base, tick, timeout)
			if !ok {
				break
			}
			js, err := w.client.Submit(ctx, spec, l.Start, l.End)
			if err != nil {
				logf("fleet: submitting %s to %s: %v", l.Range, w.base, err)
				table.Release(l.Range)
				w.coolUntil = tick.Add(timeout)
				continue
			}
			st.Grants++
			leasesGranted.Inc()
			lease := l
			w.lease, w.jobID, w.lastDone = &lease, js.ID, js.Done
			logf("fleet: leased %s to %s (job %s)", l.Range, w.base, js.ID)
		}

		if tick2 := now(); !tick2.Before(lastProgress.Add(progressEvery)) {
			progress()
			lastProgress = tick2
		}
		if table.Done() {
			break
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: %w", context.Cause(ctx))
		case <-time.After(poll):
		}
	}

	progress()
	ms, err := mergeDownloads(spec, cls, dstPath, downloads)
	if err != nil {
		return nil, err
	}
	st.Merge = ms
	return st, nil
}

// sanitize maps a worker base URL to a filename-safe tag.
func sanitize(base string) string {
	out := make([]byte, 0, len(base))
	for i := 0; i < len(base); i++ {
		switch b := base[i]; {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9', b == '.', b == '-':
			out = append(out, b)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
