package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/serve"
	"repro/internal/sweep"

	// Register the end-to-end attack scenarios the test specs sweep.
	_ "repro/internal/scenario"
)

// fastSpec is an 8-cell grid of cheap cells for scheduling-path tests.
func fastSpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"evset/bins", "probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      3,
		Seed:        7,
	}
}

// slowCellSpec is a 4-cell grid where each cell runs ~1s — long enough
// to kill a worker while its lease is provably mid-flight.
func slowCellSpec() sweep.Spec {
	return sweep.Spec{
		Experiments: []string{"probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      400,
		Seed:        3,
	}
}

// testWorker is one in-process llcserve daemon behind httptest.
type testWorker struct {
	srv    *serve.Server
	ts     *httptest.Server
	cancel context.CancelFunc
}

func startFleetWorker(t *testing.T) *testWorker {
	t.Helper()
	s, err := serve.New(t.TempDir(), serve.Options{Workers: 1})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	w := &testWorker{srv: s, ts: ts, cancel: cancel}
	t.Cleanup(w.kill)
	return w
}

// kill is the in-process stand-in for SIGKILL: sever every client
// connection, stop listening, and tear the runners down. Idempotent.
func (w *testWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.cancel()
	w.srv.Wait()
}

// refLogBytes runs the spec sequentially in one process and returns
// the checkpoint log bytes — the clause 9 ground truth every merged
// artifact must equal.
func refLogBytes(t *testing.T, spec sweep.Spec) []byte {
	t.Helper()
	spec.Normalize()
	path := filepath.Join(t.TempDir(), "ref.cells")
	log, err := artifact.Create(path, campaign.Fingerprint(spec))
	if err != nil {
		t.Fatalf("creating reference log: %v", err)
	}
	if _, _, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 1, Log: log}); err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("closing reference log: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading reference log: %v", err)
	}
	return data
}

func runFleet(t *testing.T, spec sweep.Spec, opts Options) (string, *Stats) {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "merged.cells")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	st, err := Run(ctx, spec, dst, opts)
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	return dst, st
}

func requireByteIdentical(t *testing.T, mergedPath string, want []byte) {
	t.Helper()
	got, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatalf("reading merged log: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("merged log (%d bytes) differs from single-process reference (%d bytes)", len(got), len(want))
	}
}

// TestFleetThreeWorkersByteIdentical is the happy path: three live
// workers, the grid split into single-cell and multi-cell leases, and
// a merged artifact byte-equal to the sequential single-process run.
func TestFleetThreeWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-daemon end-to-end test; the deterministic stub tests cover the scheduling paths in -short")
	}
	spec := fastSpec()
	want := refLogBytes(t, spec)
	for _, leaseSize := range []int{1, 3} {
		var workers []string
		for range 3 {
			workers = append(workers, startFleetWorker(t).ts.URL)
		}
		dst, st := runFleet(t, spec, Options{
			Workers: workers,
			// The no-expiry assertion below needs a timeout no healthy
			// cell can outlast, even with the race detector multiplying
			// cell cost on a loaded single-core runner.
			LeaseSize:    leaseSize,
			LeaseTimeout: 5 * time.Minute,
			Poll:         10 * time.Millisecond,
		})
		requireByteIdentical(t, dst, want)
		if st.Expired != 0 || st.Duplicates != 0 {
			t.Fatalf("lease-size %d: healthy fleet saw %d expiries, %d duplicates", leaseSize, st.Expired, st.Duplicates)
		}
		if st.Merge.Records != 8 {
			t.Fatalf("lease-size %d: merged %d records, want 8", leaseSize, st.Merge.Records)
		}
	}
}

// TestFleetWorkerKilledMidLease is the failover pin: one of three
// workers dies while running a lease, the lease expires with no
// progress, the range reassigns to a surviving worker, and the merged
// artifact is still byte-identical to the uninterrupted single-process
// run (clause 9).
func TestFleetWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("real-daemon end-to-end test; the deterministic stub tests cover the scheduling paths in -short")
	}
	spec := slowCellSpec()
	want := refLogBytes(t, spec)

	doomed := startFleetWorker(t)
	w2 := startFleetWorker(t)
	w3 := startFleetWorker(t)

	// Kill the doomed worker the moment its daemon reports a running
	// job — provably mid-lease.
	var killed atomic.Bool
	go func() {
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			resp, err := http.Get(doomed.ts.URL + "/api/v1/jobs")
			if err != nil {
				return // already dead
			}
			var jobs []struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&jobs)
			resp.Body.Close()
			if err == nil {
				for _, j := range jobs {
					if j.State == "running" {
						doomed.kill()
						killed.Store(true)
						return
					}
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	dst, st := runFleet(t, spec, Options{
		Workers:   []string{doomed.ts.URL, w2.ts.URL, w3.ts.URL},
		LeaseSize: 1,
		// Long enough that a healthy ~1s cell rarely expires even under
		// the race detector, short enough that the dead worker's lease
		// (which can never renew) reassigns without dominating the test.
		LeaseTimeout: 10 * time.Second,
		Poll:         50 * time.Millisecond,
	})
	requireByteIdentical(t, dst, want)
	if !killed.Load() {
		t.Fatal("the doomed worker was never observed running a lease before the fleet finished")
	}
	if st.Expired < 1 {
		t.Fatalf("killed worker produced %d lease expiries, want >= 1", st.Expired)
	}
	if st.Merge.Records != 4 {
		t.Fatalf("merged %d records, want 4", st.Merge.Records)
	}
}

// stubJob is one scripted job on a stubWorker: the test dictates the
// state it reports, the artifact bytes it serves, and an optional hook
// that fires after the artifact is first downloaded.
type stubJob struct {
	js      JobStatus
	body    []byte
	advance bool   // bump done_cells on every status poll (keeps the lease renewed)
	onFetch func() // fires once, after the artifact is first served
}

// stubWorker scripts the daemon protocol over real HTTP. The live
// daemons above prove the protocol end to end but cannot be made to
// interleave rare schedules on demand — a duplicate completion against
// real workers depends on which of two racing jobs finishes first.
// The stub removes the race: every state transition is an explicit
// test event, so the sequence under test runs the same way every time
// regardless of host load.
type stubWorker struct {
	ts *httptest.Server
	mu sync.Mutex
	// script answers each submission (called under mu): a nil job
	// refuses with 503. A non-nil answer attaches to the range's
	// existing job if one was already created.
	script func(start, end int) *stubJob
	jobs   map[string]*stubJob // keyed by job ID
}

func newStubWorker(t *testing.T, script func(start, end int) *stubJob) *stubWorker {
	t.Helper()
	s := &stubWorker{script: script, jobs: make(map[string]*stubJob)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		start, _ := strconv.Atoi(r.URL.Query().Get("start"))
		end, _ := strconv.Atoi(r.URL.Query().Get("end"))
		s.mu.Lock()
		j := s.script(start, end)
		if j == nil {
			s.mu.Unlock()
			http.Error(w, `{"error": "stub refuses this submission"}`, http.StatusServiceUnavailable)
			return
		}
		id := fmt.Sprintf("stub-r%d-%d", start, end)
		if exist, ok := s.jobs[id]; ok {
			j = exist
		} else {
			j.js.ID = id
			j.js.CellStart, j.js.CellEnd = start, end
			s.jobs[id] = j
		}
		js := j.js
		s.mu.Unlock()
		writeStubJSON(w, js)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		j, ok := s.jobs[r.PathValue("id")]
		if !ok {
			s.mu.Unlock()
			http.Error(w, `{"error": "no such job"}`, http.StatusNotFound)
			return
		}
		if j.advance && j.js.State == "running" {
			j.js.Done++
		}
		js := j.js
		s.mu.Unlock()
		writeStubJSON(w, js)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		j, ok := s.jobs[r.PathValue("id")]
		if !ok || j.js.State != "done" {
			s.mu.Unlock()
			http.Error(w, `{"error": "job is not done"}`, http.StatusConflict)
			return
		}
		body, hook := j.body, j.onFetch
		j.onFetch = nil
		s.mu.Unlock()
		w.Write(body)
		if hook != nil {
			hook()
		}
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func writeStubJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// setDone flips an already-submitted job to done with the given
// artifact bytes and fetch hook.
func (s *stubWorker) setDone(id string, body []byte, onFetch func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		panic("stub: setDone on a job that was never submitted: " + id)
	}
	j.js.State = "done"
	j.js.Done = j.js.Total
	j.body = body
	j.onFetch = onFetch
}

// rangeLogBytes runs cells [start, end) of the spec locally and
// returns the range checkpoint log — the bytes a worker's artifact
// endpoint serves for that lease.
func rangeLogBytes(t *testing.T, spec sweep.Spec, start, end int) []byte {
	t.Helper()
	spec.Normalize()
	path := filepath.Join(t.TempDir(), "range.cells")
	log, err := artifact.Create(path, campaign.Fingerprint(spec))
	if err != nil {
		t.Fatalf("creating range log: %v", err)
	}
	if _, _, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 1, Log: log, CellStart: start, CellEnd: end}); err != nil {
		t.Fatalf("range campaign [%d, %d): %v", start, end, err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("closing range log: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading range log: %v", err)
	}
	return data
}

// TestFleetDuplicateCompletionDedupes forces the duplicate-completion
// path deterministically with scripted stub workers. Worker A wedges
// range [0, 1) — running, no progress — until its lease expires, and
// refuses resubmission so the range reassigns to worker B. The moment
// B's copy of the range is downloaded, A's zombie job flips to done
// with byte-identical bytes, so the next zombie poll downloads a
// second copy of a range the table already completed. Worker C holds
// one range open until that duplicate has landed, keeping the
// scheduling loop alive through the zombie's completion instead of
// racing it to exit. The merge collapses the duplicate under the
// byte-equal rule (clause 8) and the artifact still equals the
// single-process run (clause 9).
func TestFleetDuplicateCompletionDedupes(t *testing.T) {
	spec := sweep.Spec{
		Experiments: []string{"probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      3,
		Seed:        7,
	}
	spec.Normalize()
	want := refLogBytes(t, spec)
	cells := len(sweep.Expand(spec))
	if cells != 4 {
		t.Fatalf("stub script expects a 4-cell grid, spec expands to %d", cells)
	}
	logs := make(map[int][]byte)
	for start := range cells {
		logs[start] = rangeLogBytes(t, spec, start, start+1)
	}

	var a, b, c *stubWorker

	// A accepts exactly one job — range [0, 1), granted first because A
	// is the first worker and [0, 1) the lowest pending range — and
	// wedges it with done_cells frozen, so the lease cannot renew and
	// must expire.
	accepted := false
	a = newStubWorker(t, func(start, end int) *stubJob {
		if accepted {
			return nil
		}
		accepted = true
		return &stubJob{js: JobStatus{State: "running", Total: end - start}}
	})

	// B finishes every range it is given instantly. When its copy of
	// the reassigned [0, 1) is downloaded, A's zombie job flips to done
	// with byte-identical bytes; once that duplicate is downloaded in
	// turn, C's held range is allowed to finish.
	b = newStubWorker(t, func(start, end int) *stubJob {
		j := &stubJob{
			js:   JobStatus{State: "done", Total: end - start, Done: end - start},
			body: logs[start],
		}
		if start == 0 {
			j.onFetch = func() {
				a.setDone("stub-r0-1", logs[0], func() {
					c.setDone("stub-r2-3", logs[2], nil)
				})
			}
		}
		return j
	})

	// C holds its range open — running, with progress on every poll so
	// its lease keeps renewing — until the duplicate has landed.
	c = newStubWorker(t, func(start, end int) *stubJob {
		return &stubJob{js: JobStatus{State: "running", Total: end - start}, advance: true}
	})

	dst, st := runFleet(t, spec, Options{
		Workers:      []string{a.ts.URL, b.ts.URL, c.ts.URL},
		LeaseSize:    1,
		LeaseTimeout: 150 * time.Millisecond,
		Poll:         10 * time.Millisecond,
	})
	requireByteIdentical(t, dst, want)
	if st.Expired != 1 {
		t.Fatalf("wedged worker produced %d lease expiries, want exactly 1", st.Expired)
	}
	if st.Duplicates != 1 {
		t.Fatalf("scripted zombie produced %d duplicate completions, want exactly 1", st.Duplicates)
	}
	if st.Merge.Records != 4 || st.Merge.Deduped != 1 {
		t.Fatalf("merge wrote %d records and deduped %d, want 4 and 1", st.Merge.Records, st.Merge.Deduped)
	}
}

// TestFleetRejectsExistingDestination pins the no-clobber contract.
func TestFleetRejectsExistingDestination(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "merged.cells")
	if err := os.WriteFile(dst, []byte("x"), 0o644); err != nil {
		t.Fatalf("planting dst: %v", err)
	}
	_, err := Run(context.Background(), fastSpec(), dst, Options{Workers: []string{"http://127.0.0.1:1"}})
	if err == nil {
		t.Fatal("Run overwrote an existing destination")
	}
}
