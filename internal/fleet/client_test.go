package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
)

// buildLog writes a checkpoint log with the given keys (payload = key
// bytes) and returns its serialized bytes.
func buildLog(t *testing.T, fingerprint uint64, keys []string) []byte {
	t.Helper()
	p := filepath.Join(t.TempDir(), "src.cells")
	l, err := artifact.Create(p, fingerprint)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, k := range keys {
		if err := l.Append(k, []byte(k)); err != nil {
			t.Fatalf("Append(%s): %v", k, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return data
}

// artifactServer serves the log bytes at the daemon's artifact path,
// truncating the first `truncate` responses to half length — the
// transfer fault the download retry must absorb.
func artifactServer(t *testing.T, data []byte, truncate int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		body := data
		if int(n) <= truncate {
			body = data[:len(data)/2]
		}
		// Advertise the full length even when truncating, like a
		// connection dropped mid-transfer.
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(body)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestDownloadRetriesTruncatedTransfer(t *testing.T) {
	const fp = 0x1234
	keys := []string{"a", "b", "c", "d"}
	data := buildLog(t, fp, keys)
	ts, hits := artifactServer(t, data, 2) // first two responses truncated

	c := &Client{Base: ts.URL, Retries: 4, RetryBase: time.Millisecond}
	dst := filepath.Join(t.TempDir(), "got.cells")
	if err := c.Download(context.Background(), "job1", dst, fp, keys); err != nil {
		t.Fatalf("Download: %v", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (two truncated, one clean)", n)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("reading download: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("downloaded bytes differ from source log")
	}
}

func TestDownloadExhaustsRetriesOnPersistentTruncation(t *testing.T) {
	const fp = 0x1234
	keys := []string{"a", "b", "c", "d"}
	data := buildLog(t, fp, keys)
	ts, hits := artifactServer(t, data, 1<<30) // every response truncated

	c := &Client{Base: ts.URL, Retries: 2, RetryBase: time.Millisecond}
	dst := filepath.Join(t.TempDir(), "got.cells")
	if err := c.Download(context.Background(), "job1", dst, fp, keys); err == nil {
		t.Fatal("Download succeeded though every transfer was truncated")
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", n)
	}
	if _, err := os.Stat(dst); err == nil {
		t.Fatal("failed download left a file at dst")
	}
}

// A log fingerprinted by a different spec must fail verification on
// every attempt — the retry loop still runs (the coordinator cannot
// distinguish a stale log from a torn transfer), but nothing installs.
func TestDownloadRejectsWrongFingerprint(t *testing.T) {
	data := buildLog(t, 0xdead, []string{"a", "b"})
	ts, _ := artifactServer(t, data, 0)

	c := &Client{Base: ts.URL, Retries: 1, RetryBase: time.Millisecond}
	dst := filepath.Join(t.TempDir(), "got.cells")
	err := c.Download(context.Background(), "job1", dst, 0xbeef, []string{"a", "b"})
	if err == nil {
		t.Fatal("Download accepted a log with the wrong fingerprint")
	}
	if _, serr := os.Stat(dst); serr == nil {
		t.Fatal("wrong-fingerprint download left a file at dst")
	}
}

// A log holding keys outside the assigned range, or missing some of
// it, must fail the CheckKeys gate.
func TestDownloadRejectsWrongKeySet(t *testing.T) {
	const fp = 0x77
	data := buildLog(t, fp, []string{"a", "b", "zz"})
	ts, _ := artifactServer(t, data, 0)
	c := &Client{Base: ts.URL, Retries: 0, RetryBase: time.Millisecond}

	dst := filepath.Join(t.TempDir(), "got.cells")
	if err := c.Download(context.Background(), "job1", dst, fp, []string{"a", "b"}); err == nil {
		t.Fatal("Download accepted a log with a foreign key")
	}
	if err := c.Download(context.Background(), "job1", dst, fp, []string{"a", "b", "zz", "missing"}); err == nil {
		t.Fatal("Download accepted a log missing an assigned key")
	}
}

// 4xx responses fail fast: the job is unknown or not done, and backoff
// cannot fix either, so the lease should not burn through retries.
func TestDownloadFailsFastOn4xx(t *testing.T) {
	var hits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no job"}`, http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{Base: ts.URL, Retries: 5, RetryBase: time.Millisecond}
	dst := filepath.Join(t.TempDir(), "got.cells")
	if err := c.Download(context.Background(), "gone", dst, 1, []string{"a"}); err == nil {
		t.Fatal("Download succeeded against a 404")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (fail fast, no retries)", n)
	}
}

// 5xx responses are transient by contract and must retry.
func TestDownloadRetries5xx(t *testing.T) {
	const fp = 0x55
	keys := []string{"k"}
	data := buildLog(t, fp, keys)
	var hits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, `{"error":"busy"}`, http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{Base: ts.URL, Retries: 3, RetryBase: time.Millisecond}
	dst := filepath.Join(t.TempDir(), "got.cells")
	if err := c.Download(context.Background(), "job1", dst, fp, keys); err != nil {
		t.Fatalf("Download: %v", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}
