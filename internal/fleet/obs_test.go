package fleet

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// lineLog is a concurrency-safe collector for Logf-shaped callbacks.
type lineLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *lineLog) printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *lineLog) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

// TestFleetQuietStillReportsExpiry pins the llcfleet -q contract at the
// package layer: with Logf muted entirely (nil), a lease expiry must
// still reach Errorf — silence about a dead worker is how fleets strand
// ranges. The same run checks the coordinator telemetry registry and
// the periodic progress callback, and that none of it changes the
// merged artifact (determinism clause 10): the merge is byte-compared
// against the plain single-process reference as usual.
func TestFleetQuietStillReportsExpiry(t *testing.T) {
	spec := sweep.Spec{
		Experiments: []string{"probe/parallel"},
		Policies:    []string{"LRU", "QLRU", "SRRIP", "Random"},
		Trials:      3,
		Seed:        7,
	}
	spec.Normalize()
	want := refLogBytes(t, spec)

	// Worker A accepts exactly one job — the first range — and wedges it
	// (running, done_cells frozen), so its lease must expire; it refuses
	// every later submission. Worker B completes any range instantly.
	logs := make(map[int][]byte)
	for start := range 4 {
		logs[start] = rangeLogBytes(t, spec, start, start+1)
	}
	accepted := false
	a := newStubWorker(t, func(start, end int) *stubJob {
		if accepted {
			return nil
		}
		accepted = true
		return &stubJob{js: JobStatus{State: "running", Total: end - start}}
	})
	b := newStubWorker(t, func(start, end int) *stubJob {
		return &stubJob{
			js:   JobStatus{State: "done", Total: end - start, Done: end - start},
			body: logs[start],
		}
	})

	// Run is called directly (not via runFleet, which injects t.Logf)
	// so Logf really is nil, exactly like llcfleet -q.
	var errs, prog lineLog
	reg := obs.NewRegistry()
	dst := filepath.Join(t.TempDir(), "merged.cells")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	st, err := Run(ctx, spec, dst, Options{
		Workers:      []string{a.ts.URL, b.ts.URL},
		LeaseSize:    1,
		LeaseTimeout: 150 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		Logf:         nil, // -q: routine scheduling lines muted
		Errorf:       errs.printf,
		Progressf:    prog.printf,
		// Sub-poll cadence so even a fast run emits progress lines.
		ProgressEvery: time.Millisecond,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	requireByteIdentical(t, dst, want)

	if st.Expired != 1 {
		t.Fatalf("wedged worker produced %d lease expiries, want exactly 1", st.Expired)
	}
	if got := errs.joined(); !strings.Contains(got, "expired") {
		t.Fatalf("Errorf never saw the lease expiry with Logf muted; got:\n%s", got)
	}
	if got := prog.joined(); !strings.Contains(got, "fleet: progress") {
		t.Fatalf("Progressf never saw a progress line; got:\n%s", got)
	}

	snap := reg.Snapshot()
	counter := func(name, labels string) float64 {
		t.Helper()
		for _, s := range snap {
			if s.Name == name && s.Labels == labels {
				return s.Value
			}
		}
		t.Fatalf("registry has no series %s{%s}; snapshot: %+v", name, labels, snap)
		return 0
	}
	if got := counter("fleet_leases_total", `{event="expired"}`); got != 1 {
		t.Fatalf("fleet_leases_total{event=expired} = %v, want 1", got)
	}
	if got := counter("fleet_leases_total", `{event="granted"}`); got != float64(st.Grants) {
		t.Fatalf("fleet_leases_total{event=granted} = %v, want %d (Stats.Grants)", got, st.Grants)
	}
	if got := counter("fleet_cells_completed_total", ""); got != 4 {
		t.Fatalf("fleet_cells_completed_total = %v, want 4", got)
	}
}
