package dsp

import "math"

// PSD is a one-sided power spectral density estimate.
type PSD struct {
	// Freqs[i] is the frequency of bin i in cycles per sample times the
	// sampling rate supplied to Welch (i.e. Hz when fs is in Hz).
	Freqs []float64
	// Power[i] is the PSD estimate at Freqs[i].
	Power []float64
}

// WelchOptions configures Welch's method.
type WelchOptions struct {
	// SegmentLength is the per-segment FFT length (nperseg). It is
	// clamped to the signal length.
	SegmentLength int
	// Overlap is the number of overlapping samples between consecutive
	// segments (noverlap); the scipy default SegmentLength/2 is used
	// when negative.
	Overlap int
	// Window tapers each segment (default Hann, as in scipy and the
	// paper's pipeline).
	Window Window
}

// DefaultWelch returns the options matching the conventional defaults:
// 256-sample Hann segments with 50% overlap.
func DefaultWelch() WelchOptions {
	return WelchOptions{SegmentLength: 256, Overlap: -1, Window: Hann}
}

// Welch estimates the PSD of the real signal x sampled at fs using
// Welch's method [96]: the signal is split into overlapping windowed
// segments whose periodograms are averaged, trading frequency resolution
// for variance reduction — which is what makes the victim's periodic
// accesses stand out through cloud noise (§6.2).
func Welch(x []float64, fs float64, opt WelchOptions) PSD {
	n := len(x)
	if n == 0 {
		return PSD{}
	}
	seg := opt.SegmentLength
	if seg <= 0 {
		seg = 256
	}
	if seg > n {
		seg = n
	}
	ov := opt.Overlap
	if ov < 0 {
		ov = seg / 2
	}
	if ov >= seg {
		ov = seg - 1
	}
	step := seg - ov

	win := opt.Window.Coefficients(seg)
	// Window power normalization (sum of squared coefficients).
	u := 0.0
	for _, w := range win {
		u += w * w
	}
	u *= fs

	nbins := seg/2 + 1
	acc := make([]float64, nbins)
	segments := 0
	buf := make([]complex128, seg)
	for start := 0; start+seg <= n; start += step {
		// Detrend (remove the segment mean) and window.
		mean := 0.0
		for _, v := range x[start : start+seg] {
			mean += v
		}
		mean /= float64(seg)
		for i := 0; i < seg; i++ {
			buf[i] = complex((x[start+i]-mean)*win[i], 0)
		}
		FFT(buf)
		for k := 0; k < nbins; k++ {
			re, im := real(buf[k]), imag(buf[k])
			p := (re*re + im*im) / u
			// One-sided spectrum: double the interior bins.
			if k != 0 && !(seg%2 == 0 && k == nbins-1) {
				p *= 2
			}
			acc[k] += p
		}
		segments++
	}
	if segments == 0 {
		return PSD{}
	}
	psd := PSD{Freqs: make([]float64, nbins), Power: make([]float64, nbins)}
	for k := 0; k < nbins; k++ {
		psd.Freqs[k] = float64(k) * fs / float64(seg)
		psd.Power[k] = acc[k] / float64(segments)
	}
	return psd
}

// BinAt returns the index of the bin closest to frequency f.
func (p PSD) BinAt(f float64) int {
	if len(p.Freqs) == 0 {
		return 0
	}
	df := p.Freqs[1] - p.Freqs[0]
	if df <= 0 {
		return 0
	}
	i := int(f/df + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(p.Freqs) {
		i = len(p.Freqs) - 1
	}
	return i
}

// PeakNear returns the maximum power within ±tol of frequency f.
func (p PSD) PeakNear(f, tol float64) float64 {
	best := 0.0
	for i, fr := range p.Freqs {
		if math.Abs(fr-f) <= tol && p.Power[i] > best {
			best = p.Power[i]
		}
	}
	return best
}

// MedianPower returns the median of the PSD bins — a robust noise-floor
// estimate for peak-to-floor ratios.
func (p PSD) MedianPower() float64 {
	if len(p.Power) == 0 {
		return 0
	}
	s := append([]float64(nil), p.Power...)
	insertionSort(s)
	return s[len(s)/2]
}

// TotalPower integrates the PSD.
func (p PSD) TotalPower() float64 {
	t := 0.0
	for _, v := range p.Power {
		t += v
	}
	return t
}

func insertionSort(s []float64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// BinTrace converts detection timestamps (in cycles) into a binned binary
// signal sampled every binCycles over [start, end): sample i counts the
// detections in its bin. This is how access traces become fixed-rate
// signals for the PSD (§6.2).
func BinTrace(times []uint64, start, end, binCycles uint64) []float64 {
	if end <= start || binCycles == 0 {
		return nil
	}
	n := int((end - start) / binCycles)
	out := make([]float64, n)
	for _, t := range times {
		if t < start || t >= end {
			continue
		}
		i := int((t - start) / binCycles)
		if i < n {
			out[i]++
		}
	}
	return out
}
