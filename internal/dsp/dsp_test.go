package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	x := []complex128{1, 1, 1, 1, 0, 0, 0, 0}
	FFT(x)
	// DC bin = sum = 4.
	if math.Abs(real(x[0])-4) > 1e-9 || math.Abs(imag(x[0])) > 1e-9 {
		t.Fatalf("DC bin = %v, want 4", x[0])
	}
	// Bin 4 (Nyquist) = 1-1+1-1... = 0.
	if cmplx.Abs(x[4]) > 1e-9 {
		t.Fatalf("Nyquist bin = %v, want 0", x[4])
	}
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 12, 16, 30, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*0.7)+0.3*float64(i%3), math.Cos(float64(i)*1.3))
		}
		want := directDFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func directDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = s
	}
	return out
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 || len(vals) > 512 {
			return true
		}
		x := make([]complex128, len(vals))
		for i, v := range vals {
			// Clamp pathological magnitudes from quick.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				v = 1
			}
			x[i] = complex(v, 0)
		}
		orig := append([]complex128(nil), x...)
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-6*(1+cmplx.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 128
		x := make([]complex128, n)
		s := uint64(seed)
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			x[i] = complex(float64(int64(s>>33))/float64(1<<30), 0)
		}
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		X := append([]complex128(nil), x...)
		FFT(X)
		var freqE float64
		for _, v := range X {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) <= 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchFindsSinusoid(t *testing.T) {
	fs := 1000.0
	f0 := 120.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*f0*ti) + 0.2*math.Sin(2*math.Pi*333*ti)
	}
	psd := Welch(x, fs, DefaultWelch())
	peak := psd.PeakNear(f0, 5)
	floor := psd.MedianPower()
	if peak < 50*floor {
		t.Fatalf("sinusoid peak %.3g not well above floor %.3g", peak, floor)
	}
	// The strong peak must beat the weak one.
	weak := psd.PeakNear(333, 5)
	if peak <= weak {
		t.Fatalf("peak at f0 (%.3g) should exceed peak at 333 Hz (%.3g)", peak, weak)
	}
}

func TestWelchFlatForWhiteNoise(t *testing.T) {
	n := 8192
	x := make([]float64, n)
	s := uint64(42)
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(s>>33))/float64(1<<30) - 1
	}
	psd := Welch(x, 1.0, DefaultWelch())
	maxP, med := 0.0, psd.MedianPower()
	for _, p := range psd.Power[1:] {
		if p > maxP {
			maxP = p
		}
	}
	if maxP > 20*med {
		t.Fatalf("white noise PSD has a spurious peak: max %.3g median %.3g", maxP, med)
	}
}

func TestBinTrace(t *testing.T) {
	times := []uint64{100, 150, 250, 999, 1000}
	out := BinTrace(times, 100, 1100, 100)
	if len(out) != 10 {
		t.Fatalf("len=%d want 10", len(out))
	}
	if out[0] != 2 || out[1] != 1 || out[9] != 1 {
		t.Fatalf("bins = %v", out)
	}
}

func TestWindowsSymmetric(t *testing.T) {
	for _, w := range []Window{Hann, Hamming} {
		c := w.Coefficients(33)
		for i := range c {
			if math.Abs(c[i]-c[len(c)-1-i]) > 1e-12 {
				t.Fatalf("%v window asymmetric at %d", w, i)
			}
		}
	}
}
