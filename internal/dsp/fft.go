// Package dsp provides the signal-processing toolkit used for target-set
// identification in the frequency domain (§6.2): a complex FFT, window
// functions, Welch's power-spectral-density estimate [96], and peak
// utilities.
package dsp

import "math"

// FFT computes the in-place discrete Fourier transform of x. Any length
// is accepted: power-of-two lengths use the radix-2 Cooley–Tukey
// algorithm; other lengths use Bluestein's chirp-z transform.
func FFT(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		fftRadix2(x, false)
		return
	}
	bluestein(x, false)
}

// IFFT computes the inverse DFT of x in place (normalized by 1/n).
func IFFT(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		fftRadix2(x, true)
	} else {
		bluestein(x, true)
	}
	scale := 1 / float64(n)
	for i := range x {
		x[i] *= complex(scale, 0)
	}
}

// fftRadix2 is an iterative in-place radix-2 FFT (n must be a power of
// two). inverse selects the conjugate transform (unnormalized).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// reducing it to a power-of-two convolution.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). k^2 mod 2n avoids overflow
	// and precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	conj := func(c complex128) complex128 { return complex(real(c), -imag(c)) }
	b[0] = conj(chirp[0])
	for k := 1; k < n; k++ {
		b[k] = conj(chirp[k])
		b[m-k] = conj(chirp[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// Window is a taper applied to each PSD segment.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
)

// Coefficients returns the window's n coefficients.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		switch w {
		case Hann:
			c[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		default:
			c[i] = 1
		}
	}
	return c
}

// String names the window.
func (w Window) String() string {
	switch w {
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	default:
		return "rectangular"
	}
}
