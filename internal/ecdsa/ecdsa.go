// Package ecdsa implements the Elliptic Curve Digital Signature Algorithm
// over binary curves, with the *vulnerable* signing path of OpenSSL
// 1.0.1e [62]: the per-signature nonce k is consumed by a Montgomery
// ladder whose per-bit branch produces secret-dependent code fetches
// (paper §7.1). The signer exposes the nonce and the ladder's iteration
// hook so the victim harness can bind iterations to simulated cache
// accesses and the experiments can score extracted bits against ground
// truth.
//
// Recovering even a fraction of the nonce bits across signatures breaks
// the private key via lattice attacks [1, 37, 61]; this package's job is
// to reproduce the leaking signer, not the lattice post-processing.
package ecdsa

import (
	"errors"
	"math/big"

	"repro/internal/ec2m"
	"repro/internal/xrand"
)

// PrivateKey holds the signing key d and public point Q = d·G.
type PrivateKey struct {
	Curve *ec2m.Curve
	D     *big.Int
	Q     ec2m.Point
}

// Signature is an ECDSA signature.
type Signature struct {
	R, S *big.Int
}

// GenerateKey draws a key pair on the curve.
func GenerateKey(c *ec2m.Curve, rng *xrand.Rand) *PrivateKey {
	d := RandScalar(c.N, rng)
	return &PrivateKey{Curve: c, D: d, Q: c.ScalarMult(d, c.G)}
}

// RandScalar returns a uniform scalar in [1, n-1].
func RandScalar(n *big.Int, rng *xrand.Rand) *big.Int {
	bytes := (n.BitLen() + 7) / 8
	buf := make([]byte, bytes)
	for {
		rng.Bytes(buf)
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, n)
		if k.Sign() > 0 {
			return k
		}
	}
}

// ErrUnusableNonce is returned when a nonce yields r = 0 or s = 0 and
// must be redrawn.
var ErrUnusableNonce = errors.New("ecdsa: unusable nonce")

// SignWithNonce signs the message digest z with the given nonce k,
// running the vulnerable Montgomery ladder with the supplied hook. It is
// the core of the leaking signer and is exported so experiments can
// control the nonce.
func (k *PrivateKey) SignWithNonce(z, nonce *big.Int, hook ec2m.LadderHook) (Signature, error) {
	c := k.Curve
	n := c.N
	x, ok := c.LadderMultX(nonce, c.G, hook)
	if !ok {
		return Signature{}, ErrUnusableNonce
	}
	r := ec2m.ElemToInt(x)
	r.Mod(r, n)
	if r.Sign() == 0 {
		return Signature{}, ErrUnusableNonce
	}
	kInv := new(big.Int).ModInverse(nonce, n)
	if kInv == nil {
		return Signature{}, ErrUnusableNonce
	}
	s := new(big.Int).Mul(r, k.D)
	s.Add(s, new(big.Int).Mod(z, n))
	s.Mul(s, kInv)
	s.Mod(s, n)
	if s.Sign() == 0 {
		return Signature{}, ErrUnusableNonce
	}
	return Signature{R: r, S: s}, nil
}

// Sign signs digest z with a fresh random nonce, returning the signature
// and the nonce (the experiments' ground truth; a real API would never
// expose it).
func (k *PrivateKey) Sign(z *big.Int, rng *xrand.Rand, hook ec2m.LadderHook) (Signature, *big.Int, error) {
	for {
		nonce := RandScalar(k.Curve.N, rng)
		sig, err := k.SignWithNonce(z, nonce, hook)
		if err == nil {
			return sig, nonce, nil
		}
		if !errors.Is(err, ErrUnusableNonce) {
			return Signature{}, nil, err
		}
	}
}

// Verify checks the signature algebraically: u1·G + u2·Q must have
// x-coordinate r (mod n). Verification is exact on curves whose N is the
// true subgroup order (ToyCurve); on the reproduction-scale curves it
// holds only for recomputation-style checks (see ec2m parameter notes).
func Verify(pub *PrivateKey, z *big.Int, sig Signature) bool {
	c := pub.Curve
	n := c.N
	if sig.R == nil || sig.S == nil || sig.R.Sign() <= 0 || sig.S.Sign() <= 0 {
		return false
	}
	if sig.R.Cmp(n) >= 0 || sig.S.Cmp(n) >= 0 {
		return false
	}
	w := new(big.Int).ModInverse(sig.S, n)
	if w == nil {
		return false
	}
	u1 := new(big.Int).Mul(new(big.Int).Mod(z, n), w)
	u1.Mod(u1, n)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, n)
	p := c.Add(c.ScalarMult(u1, c.G), c.ScalarMult(u2, pub.Q))
	if p.Inf {
		return false
	}
	x := ec2m.ElemToInt(p.X)
	x.Mod(x, n)
	return x.Cmp(sig.R) == 0
}

// NonceBits returns the nonce bits as the ladder visits them: from bit
// BitLen-2 down to 0 (the top bit is implicit). This is the ground-truth
// sequence the attack's extracted bits are scored against (§7.3).
func NonceBits(nonce *big.Int) []uint {
	top := nonce.BitLen() - 1
	out := make([]uint, 0, top)
	for i := top - 1; i >= 0; i-- {
		out = append(out, nonce.Bit(i))
	}
	return out
}
