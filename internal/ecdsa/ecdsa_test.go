package ecdsa

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/ec2m"
	"repro/internal/xrand"
)

func TestSignVerifyRoundTripToy(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(1)
	key := GenerateKey(c, rng)
	for i := 0; i < 10; i++ {
		z := big.NewInt(int64(1000 + i))
		sig, nonce, err := key.Sign(z, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(key, z, sig) {
			t.Fatalf("signature %d did not verify (nonce %v)", i, nonce)
		}
		// A corrupted digest must fail.
		if Verify(key, new(big.Int).Add(z, big.NewInt(1)), sig) {
			t.Fatal("verification accepted a wrong digest")
		}
		// A corrupted signature must fail.
		bad := Signature{R: sig.R, S: new(big.Int).Add(sig.S, big.NewInt(1))}
		if Verify(key, z, bad) {
			t.Fatal("verification accepted a corrupted signature")
		}
	}
}

func TestSignatureDeterministicPerNonce(t *testing.T) {
	c := ec2m.Sect163()
	rng := xrand.New(2)
	key := GenerateKey(c, rng)
	z := big.NewInt(12345)
	nonce := RandScalar(c.N, rng)
	s1, err1 := key.SignWithNonce(z, nonce, nil)
	s2, err2 := key.SignWithNonce(z, nonce, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1.R.Cmp(s2.R) != 0 || s1.S.Cmp(s2.S) != 0 {
		t.Fatal("same nonce must give the same signature")
	}
}

func TestHookObservesExactNonceBits(t *testing.T) {
	c := ec2m.Sect163()
	rng := xrand.New(3)
	key := GenerateKey(c, rng)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nonce := RandScalar(c.N, r)
		var seen []uint
		_, err := key.SignWithNonce(big.NewInt(99), nonce, func(s ec2m.LadderStep) {
			seen = append(seen, s.Bit)
		})
		if err != nil {
			return true // unusable nonce: redraw in real flows
		}
		want := NonceBits(nonce)
		if len(seen) != len(want) {
			return false
		}
		for i := range want {
			if seen[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestNonceBitsLayout(t *testing.T) {
	n := big.NewInt(0b110101)
	bits := NonceBits(n)
	want := []uint{1, 0, 1, 0, 1}
	if len(bits) != len(want) {
		t.Fatalf("len = %d, want %d", len(bits), len(want))
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestRandScalarInRange(t *testing.T) {
	n := big.NewInt(1000)
	rng := xrand.New(4)
	for i := 0; i < 200; i++ {
		k := RandScalar(n, rng)
		if k.Sign() <= 0 || k.Cmp(n) >= 0 {
			t.Fatalf("scalar %v out of [1, n)", k)
		}
	}
}

// Failure-path coverage: degenerate nonces and malformed signatures must
// produce clean errors/rejections, never a bogus signature or a
// verification pass.

func TestSignWithDegenerateNonces(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(5)
	key := GenerateKey(c, rng)
	z := big.NewInt(777)
	for _, tc := range []struct {
		name  string
		nonce *big.Int
	}{
		{"zero", big.NewInt(0)},
		{"multiple of n", new(big.Int).Set(c.N)},
		{"2n", new(big.Int).Lsh(c.N, 1)},
	} {
		if _, err := key.SignWithNonce(z, tc.nonce, nil); err == nil {
			t.Errorf("%s nonce: expected an error", tc.name)
		}
	}
}

func TestVerifyRejectsMalformedSignatures(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(6)
	key := GenerateKey(c, rng)
	z := big.NewInt(4242)
	sig, _, err := key.Sign(z, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(key, z, sig) {
		t.Fatal("control signature did not verify")
	}
	bad := []Signature{
		{R: nil, S: sig.S},
		{R: sig.R, S: nil},
		{R: big.NewInt(0), S: sig.S},
		{R: sig.R, S: big.NewInt(0)},
		{R: new(big.Int).Neg(sig.R), S: sig.S},
		{R: sig.R, S: new(big.Int).Neg(sig.S)},
		{R: new(big.Int).Set(c.N), S: sig.S},
		{R: sig.R, S: new(big.Int).Set(c.N)},
		{R: new(big.Int).Add(c.N, big.NewInt(1)), S: sig.S},
	}
	for i, b := range bad {
		if Verify(key, z, b) {
			t.Errorf("malformed signature %d verified: %+v", i, b)
		}
	}
}

// TestVerifyRejectsWrongKey: a signature must not verify under another
// key pair (the scenario's key-recovery check depends on this).
func TestVerifyRejectsWrongKey(t *testing.T) {
	c := ec2m.ToyCurve()
	rng := xrand.New(7)
	key := GenerateKey(c, rng)
	other := GenerateKey(c, rng)
	if key.D.Cmp(other.D) == 0 {
		t.Skip("improbable: same key drawn twice")
	}
	z := big.NewInt(31337)
	sig, _, err := key.Sign(z, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(other, z, sig) {
		t.Fatal("signature verified under the wrong public key")
	}
}
