// Package ec2m implements elliptic curves over binary fields GF(2^m) —
// the setting of the paper's victim, OpenSSL 1.0.1e's ECDSA on curve
// sect571r1 (§7.1) — including the López–Dahab x-only Montgomery ladder
// whose secret-dependent control flow is the attack's leak (Figure 8a).
//
// Curves have the short Weierstrass binary form y² + xy = x³ + ax² + b.
package ec2m

import (
	"math/big"

	"repro/internal/gf2m"
	"repro/internal/xrand"
)

// Point is an affine curve point; Inf marks the point at infinity.
type Point struct {
	X, Y gf2m.Elem
	Inf  bool
}

// Curve bundles a binary field, coefficients and a base point.
type Curve struct {
	F    *gf2m.Field
	A, B gf2m.Elem
	// G is the base point and N the order of the subgroup it generates
	// (exact for ToyCurve, reproduction-scale for the Sect* curves; see
	// the package documentation of the parameter constructors).
	G Point
	N *big.Int

	Name string
}

// Infinity returns the point at infinity.
func (c *Curve) Infinity() Point { return Point{Inf: true} }

// OnCurve reports whether p satisfies y² + xy = x³ + ax² + b.
func (c *Curve) OnCurve(p Point) bool {
	if p.Inf {
		return true
	}
	f := c.F
	lhs, t := f.NewElem(), f.NewElem()
	f.Sqr(lhs, p.Y)
	f.Mul(t, p.X, p.Y)
	f.Add(lhs, lhs, t)

	rhs, x2 := f.NewElem(), f.NewElem()
	f.Sqr(x2, p.X)
	f.Mul(rhs, x2, p.X) // x³
	f.Mul(t, c.A, x2)
	f.Add(rhs, rhs, t)
	f.Add(rhs, rhs, c.B)
	return lhs.Equal(rhs)
}

// Add returns p+q using the affine group law.
func (c *Curve) Add(p, q Point) Point {
	if p.Inf {
		return q
	}
	if q.Inf {
		return p
	}
	f := c.F
	if p.X.Equal(q.X) {
		// Either q = -p (same x, y2 = x1+y1) or doubling.
		negY := f.NewElem()
		f.Add(negY, p.X, p.Y)
		if q.Y.Equal(negY) {
			return c.Infinity()
		}
		return c.Double(p)
	}
	// λ = (y1+y2)/(x1+x2)
	num, den, lam := f.NewElem(), f.NewElem(), f.NewElem()
	f.Add(num, p.Y, q.Y)
	f.Add(den, p.X, q.X)
	f.Inv(den, den)
	f.Mul(lam, num, den)
	// x3 = λ² + λ + x1 + x2 + a
	x3, t := f.NewElem(), f.NewElem()
	f.Sqr(x3, lam)
	f.Add(x3, x3, lam)
	f.Add(x3, x3, p.X)
	f.Add(x3, x3, q.X)
	f.Add(x3, x3, c.A)
	// y3 = λ(x1+x3) + x3 + y1
	y3 := f.NewElem()
	f.Add(t, p.X, x3)
	f.Mul(y3, lam, t)
	f.Add(y3, y3, x3)
	f.Add(y3, y3, p.Y)
	return Point{X: x3, Y: y3}
}

// Double returns 2p using the affine group law.
func (c *Curve) Double(p Point) Point {
	if p.Inf || p.X.Zero() {
		return c.Infinity()
	}
	f := c.F
	// λ = x + y/x
	lam, t := f.NewElem(), f.NewElem()
	f.Inv(t, p.X)
	f.Mul(lam, p.Y, t)
	f.Add(lam, lam, p.X)
	// x3 = λ² + λ + a
	x3 := f.NewElem()
	f.Sqr(x3, lam)
	f.Add(x3, x3, lam)
	f.Add(x3, x3, c.A)
	// y3 = x² + (λ+1)·x3
	y3 := f.NewElem()
	f.Sqr(y3, p.X)
	f.Add(t, lam, c.F.One())
	f.Mul(t, t, x3)
	f.Add(y3, y3, t)
	return Point{X: x3, Y: y3}
}

// Neg returns -p = (x, x+y).
func (c *Curve) Neg(p Point) Point {
	if p.Inf {
		return p
	}
	y := c.F.NewElem()
	c.F.Add(y, p.X, p.Y)
	return Point{X: p.X.Clone(), Y: y}
}

// ScalarMult returns k·p via affine double-and-add. It is used for
// non-secret operations (key generation, verification); the vulnerable
// signing path uses LadderMult.
func (c *Curve) ScalarMult(k *big.Int, p Point) Point {
	r := c.Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		r = c.Double(r)
		if k.Bit(i) == 1 {
			r = c.Add(r, p)
		}
	}
	return r
}

// SolveY derives a point with the given x (if one exists): y² + xy =
// x³ + ax² + b reduces to z² + z = rhs/x², solvable by half-trace when
// the trace is zero.
func (c *Curve) SolveY(x gf2m.Elem) (Point, bool) {
	f := c.F
	if x.Zero() {
		return Point{}, false
	}
	x2, rhs, t := f.NewElem(), f.NewElem(), f.NewElem()
	f.Sqr(x2, x)
	f.Mul(rhs, x2, x)
	f.Mul(t, c.A, x2)
	f.Add(rhs, rhs, t)
	f.Add(rhs, rhs, c.B)
	// cc = rhs / x²
	inv := f.NewElem()
	f.Inv(inv, x2)
	cc := f.NewElem()
	f.Mul(cc, rhs, inv)
	if f.Trace(cc) != 0 {
		return Point{}, false
	}
	z := f.HalfTrace(cc)
	y := f.NewElem()
	f.Mul(y, z, x)
	p := Point{X: x.Clone(), Y: y}
	return p, c.OnCurve(p)
}

// ElemToInt converts a field element to an integer (polynomial bits as a
// big-endian integer), the conversion ECDSA uses for r.
func ElemToInt(e gf2m.Elem) *big.Int {
	out := new(big.Int)
	for i := len(e) - 1; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Or(out, new(big.Int).SetUint64(e[i]))
	}
	return out
}

// IntToElem converts an integer to a field element, reducing bit-length
// by truncation to the field size (as standard implementations do).
func IntToElem(f *gf2m.Field, v *big.Int) gf2m.Elem {
	e := f.NewElem()
	words := v.Bits()
	for i := 0; i < len(words) && i < len(e); i++ {
		e[i] = uint64(words[i])
	}
	// Mask to field width.
	for i := f.M; i < len(e)*64; i++ {
		e.SetBit(i, 0)
	}
	return e
}

// randScalar returns a uniform scalar in [1, n-1].
func randScalar(n *big.Int, rng *xrand.Rand) *big.Int {
	bytes := (n.BitLen() + 7) / 8
	buf := make([]byte, bytes)
	for {
		rng.Bytes(buf)
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, n)
		if k.Sign() > 0 {
			return k
		}
	}
}
