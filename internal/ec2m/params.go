package ec2m

import (
	"math/big"

	"repro/internal/gf2m"
	"repro/internal/xrand"
)

// Curve parameters.
//
// The field polynomials are the genuine SEC 2 reduction polynomials for
// sect571r1 and sect163r2. The curve coefficient b, base point and
// subgroup order of the two large curves are REPRODUCTION constants
// derived deterministically here rather than the standardized values:
// the module is built offline and transcribing 571-bit constants from
// memory risks silent corruption, while nothing in the paper's attack
// depends on which b/G/n are used — the leak is the ladder's per-bit
// control flow. ToyCurve's group order is computed exactly by brute
// force, giving a curve on which ECDSA verification round-trips and the
// group law is fully testable.

// ToyCurve returns a complete, exactly-solved curve over GF(2^17) for
// round-trip tests: the base point's order is computed by enumeration.
func ToyCurve() *Curve {
	f := gf2m.NewField(gf2m.Toy17Poly)
	c := &Curve{F: f, A: f.One(), B: f.FromUint64(0x1d5a), Name: "toy17"}
	g := findGenerator(c, 2)
	order := bruteOrder(c, g)
	// ECDSA needs a prime-order subgroup: multiply the cofactor away so
	// G generates the largest prime factor of the point's order.
	p := largestPrimeFactor(order.Int64())
	h := new(big.Int).Div(order, big.NewInt(p))
	c.G = c.ScalarMult(h, g)
	c.N = big.NewInt(p)
	return c
}

// largestPrimeFactor factors small n by trial division.
func largestPrimeFactor(n int64) int64 {
	best := int64(1)
	for f := int64(2); f*f <= n; f++ {
		for n%f == 0 {
			best = f
			n /= f
		}
	}
	if n > best {
		best = n
	}
	return best
}

// Sect163 returns the reproduction-scale curve on sect163r2's field.
func Sect163() *Curve { return reproCurve(gf2m.Sect163Poly, "sect163r2-repro") }

// Sect571 returns the reproduction-scale curve on sect571r1's field —
// the victim configuration of the paper's end-to-end attack (571-bit
// nonces, §7.1).
func Sect571() *Curve { return reproCurve(gf2m.Sect571Poly, "sect571r1-repro") }

// reproCurve builds a curve with a = 1 (as on the real sect curves), a
// deterministic pseudorandom b, the least-x valid generator, and a
// deterministic probable-prime order-scale modulus n of full field size
// for the ECDSA scalar arithmetic.
func reproCurve(poly []int, name string) *Curve {
	f := gf2m.NewField(poly)
	rng := xrand.New(0xec2 ^ uint64(f.M))
	c := &Curve{F: f, A: f.One(), B: f.Rand(rng), Name: name}
	if c.B.Zero() {
		c.B = f.One()
	}
	c.G = findGenerator(c, 2)
	c.N = reproOrder(f.M, rng)
	return c
}

// findGenerator returns the curve point with the smallest x >= startX
// that has a solvable y.
func findGenerator(c *Curve, startX uint64) Point {
	for xv := startX; ; xv++ {
		x := c.F.FromUint64(xv)
		if p, ok := c.SolveY(x); ok {
			return p
		}
	}
}

// bruteOrder returns the exact order of g by enumeration (toy curves
// only).
func bruteOrder(c *Curve, g Point) *big.Int {
	p := g
	for n := int64(1); ; n++ {
		p = c.Add(p, g)
		if p.Inf {
			return big.NewInt(n + 1)
		}
		if n > 1<<22 {
			panic("ec2m: toy order search overflow")
		}
	}
}

// reproOrder returns a deterministic probable prime with the field's bit
// length, standing in for the subgroup order in scalar arithmetic.
func reproOrder(m int, rng *xrand.Rand) *big.Int {
	buf := make([]byte, (m+7)/8)
	mask := new(big.Int).Lsh(big.NewInt(1), uint(m))
	mask.Sub(mask, big.NewInt(1))
	for {
		rng.Bytes(buf)
		n := new(big.Int).SetBytes(buf)
		n.And(n, mask)      // exactly m bits
		n.SetBit(n, m-1, 1) // full bit length
		n.SetBit(n, 0, 1)   // odd
		if n.ProbablyPrime(32) {
			return n
		}
	}
}
