package ec2m

import (
	"math/big"

	"repro/internal/gf2m"
)

// LadderStep tells a ladder observer which half of the secret-dependent
// branch executed in one iteration — the control-flow signal the attack
// extracts through the instruction-fetch side channel (Figure 8a).
type LadderStep struct {
	// Index is the bit position being processed (high to low).
	Index int
	// Bit is the secret nonce bit driving the branch.
	Bit uint
}

// LadderHook observes each iteration of the Montgomery ladder. The
// victim package installs a hook that replays the iteration's
// instruction fetches on the simulated cache hierarchy; a nil hook runs
// the ladder silently.
type LadderHook func(step LadderStep)

// MAdd is the López–Dahab x-only differential addition from OpenSSL's
// gf2m_Madd: given projective x-coordinates (x1,z1) and (x2,z2) of two
// points whose affine difference has x-coordinate `x`, it overwrites
// (x1,z1) with the sum's projective x-coordinate:
//
//	u  = x1·z2,  v = x2·z1
//	z1' = (u+v)²
//	x1' = x·z1' + u·v
func (c *Curve) MAdd(x1, z1, x2, z2, x gf2m.Elem) {
	f := c.F
	u, v, t := ladderScratch(f)
	f.Mul(u, x1, z2)
	f.Mul(v, x2, z1)
	f.Add(t, u, v)
	f.Sqr(z1, t)
	f.Mul(t, u, v)
	f.Mul(x1, x, z1)
	f.Add(x1, x1, t)
}

// MDouble is the x-only doubling from OpenSSL's gf2m_Mdouble: it
// overwrites (x,z) with the double's projective x-coordinate:
//
//	z' = x²·z²
//	x' = x⁴ + b·z⁴
func (c *Curve) MDouble(x, z gf2m.Elem) {
	f := c.F
	x2, z2, t := ladderScratch(f)
	f.Sqr(x2, x)
	f.Sqr(z2, z)
	f.Mul(z, x2, z2)
	f.Sqr(x, x2)     // x⁴
	f.Sqr(t, z2)     // z⁴
	f.Mul(t, c.B, t) // b·z⁴
	f.Add(x, x, t)
}

// ladderScratchWords sizes the stack scratch used by the per-bit ladder
// steps; sect571 needs 9 words. Wider custom fields fall back to heap
// elements.
const ladderScratchWords = 9

// ladderScratch returns three zeroed temporaries for one ladder step.
// For the standard fields they live on the caller's stack (the arrays
// never escape: gf2m routines only read/write through them), which keeps
// the victim's ~2·163 steps per signature allocation-free.
func ladderScratch(f *gf2m.Field) (u, v, t gf2m.Elem) {
	n := f.Words()
	if n > ladderScratchWords {
		return f.NewElem(), f.NewElem(), f.NewElem()
	}
	var ub, vb, tb [ladderScratchWords]uint64
	return ub[:n], vb[:n], tb[:n]
}

// LadderMultX computes the affine x-coordinate of k·P with the
// Montgomery ladder exactly as the vulnerable OpenSSL 1.0.1e
// implementation does [62]: one iteration per nonce bit below the top
// bit, with the branch
//
//	if (bit) { MAdd(x1,z1,x2,z2); MDouble(x2,z2) }
//	else     { MAdd(x2,z2,x1,z1); MDouble(x1,z1) }
//
// The hook fires at the start of every iteration with the bit value. The
// boolean result is false when k·P is the point at infinity.
func (c *Curve) LadderMultX(k *big.Int, p Point, hook LadderHook) (gf2m.Elem, bool) {
	f := c.F
	if k.Sign() == 0 || p.Inf {
		return nil, false
	}
	x := p.X
	// Initialization: (x1,z1) = P, (x2,z2) = 2P.
	x1 := x.Clone()
	z1 := f.One()
	x2, z2 := f.NewElem(), f.NewElem()
	f.Sqr(z2, x)       // z2 = x²
	f.Sqr(x2, z2)      // x2 = x⁴
	f.Add(x2, x2, c.B) // x2 = x⁴ + b
	top := k.BitLen() - 1
	for i := top - 1; i >= 0; i-- {
		bit := k.Bit(i)
		if hook != nil {
			hook(LadderStep{Index: i, Bit: bit})
		}
		if bit == 1 {
			c.MAdd(x1, z1, x2, z2, x)
			c.MDouble(x2, z2)
		} else {
			c.MAdd(x2, z2, x1, z1, x)
			c.MDouble(x1, z1)
		}
	}
	if z1.Zero() {
		return nil, false
	}
	inv := f.NewElem()
	f.Inv(inv, z1)
	out := f.NewElem()
	f.Mul(out, x1, inv)
	return out, true
}
