package ec2m

import (
	"testing"

	"repro/internal/xrand"
)

func TestLadderStepAllocs(t *testing.T) {
	c := Sect163()
	f := c.F
	rng := xrand.New(3)
	x1, z1 := f.Rand(rng), f.Rand(rng)
	x2, z2 := f.Rand(rng), f.Rand(rng)
	x := f.Rand(rng)
	n := testing.AllocsPerRun(100, func() {
		c.MAdd(x1, z1, x2, z2, x)
		c.MDouble(x2, z2)
	})
	if n != 0 {
		t.Fatalf("ladder step allocates %v times, want 0", n)
	}
}
