package ec2m

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestToyGroupLaw(t *testing.T) {
	c := ToyCurve()
	if !c.OnCurve(c.G) {
		t.Fatal("generator not on curve")
	}
	g := c.G
	// Associativity on small multiples: (G+G)+G == G+(G+G).
	lhs := c.Add(c.Add(g, g), g)
	rhs := c.Add(g, c.Add(g, g))
	if !pointsEqual(lhs, rhs) {
		t.Fatal("associativity violated")
	}
	// Double == Add(p, p).
	if !pointsEqual(c.Double(g), c.Add(g, g)) {
		t.Fatal("double != add(p,p)")
	}
	// p + (-p) = O.
	if !c.Add(g, c.Neg(g)).Inf {
		t.Fatal("p + (-p) != infinity")
	}
	// n·G = O.
	if !c.ScalarMult(c.N, g).Inf {
		t.Fatalf("order %v does not annihilate G", c.N)
	}
}

func pointsEqual(p, q Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

func TestToyScalarMultMatchesRepeatedAdd(t *testing.T) {
	c := ToyCurve()
	acc := c.Infinity()
	for k := int64(1); k <= 20; k++ {
		acc = c.Add(acc, c.G)
		sm := c.ScalarMult(big.NewInt(k), c.G)
		if !pointsEqual(acc, sm) {
			t.Fatalf("k=%d: repeated add and double-and-add disagree", k)
		}
		if !c.OnCurve(sm) {
			t.Fatalf("k=%d: result off curve", k)
		}
	}
}

func TestLadderMatchesScalarMultToy(t *testing.T) {
	c := ToyCurve()
	f := func(kraw uint32) bool {
		k := new(big.Int).SetUint64(uint64(kraw%65535) + 2)
		want := c.ScalarMult(k, c.G)
		got, ok := c.LadderMultX(k, c.G, nil)
		if want.Inf {
			return !ok
		}
		return ok && got.Equal(want.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLadderMatchesScalarMult163(t *testing.T) {
	c := Sect163()
	rng := xrand.New(7)
	for i := 0; i < 3; i++ {
		k := randScalar(big.NewInt(1<<62), rng)
		want := c.ScalarMult(k, c.G)
		got, ok := c.LadderMultX(k, c.G, nil)
		if !ok || want.Inf {
			t.Fatalf("unexpected infinity for k=%v", k)
		}
		if !got.Equal(want.X) {
			t.Fatalf("ladder x mismatch for k=%v", k)
		}
	}
}

func TestLadderHookSeesAllBits(t *testing.T) {
	c := ToyCurve()
	k := big.NewInt(0b1011010111)
	var steps []LadderStep
	if _, ok := c.LadderMultX(k, c.G, func(s LadderStep) { steps = append(steps, s) }); !ok {
		t.Fatal("ladder returned infinity")
	}
	if len(steps) != k.BitLen()-1 {
		t.Fatalf("hook fired %d times, want %d", len(steps), k.BitLen()-1)
	}
	for i, s := range steps {
		wantIdx := k.BitLen() - 2 - i
		if s.Index != wantIdx {
			t.Fatalf("step %d index = %d, want %d", i, s.Index, wantIdx)
		}
		if s.Bit != k.Bit(wantIdx) {
			t.Fatalf("step %d bit = %d, want %d", i, s.Bit, k.Bit(wantIdx))
		}
	}
}

func TestSolveYProducesCurvePoints(t *testing.T) {
	for _, c := range []*Curve{ToyCurve(), Sect163()} {
		found := 0
		for xv := uint64(2); xv < 40 && found < 5; xv++ {
			if p, ok := c.SolveY(c.F.FromUint64(xv)); ok {
				if !c.OnCurve(p) {
					t.Fatalf("%s: solved point off curve at x=%d", c.Name, xv)
				}
				found++
			}
		}
		if found == 0 {
			t.Fatalf("%s: no solvable x found", c.Name)
		}
	}
}

func TestSect571Generator(t *testing.T) {
	c := Sect571()
	if !c.OnCurve(c.G) {
		t.Fatal("sect571 generator off curve")
	}
	if c.N.BitLen() != 571 {
		t.Fatalf("order bit length = %d, want 571", c.N.BitLen())
	}
	if !c.N.ProbablyPrime(16) {
		t.Fatal("order not prime")
	}
}

func TestElemIntRoundTrip(t *testing.T) {
	c := Sect163()
	rng := xrand.New(11)
	for i := 0; i < 10; i++ {
		e := c.F.Rand(rng)
		v := ElemToInt(e)
		back := IntToElem(c.F, v)
		if !back.Equal(e) {
			t.Fatalf("round trip failed: %v -> %v -> %v", e, v, back)
		}
	}
}
